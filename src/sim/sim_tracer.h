// SimTracer: the Tracer policy that feeds data-structure accesses into a
// process-global CacheModel. Bind a model with ScopedCacheSim, instantiate
// structures with Tracer = SimTracer, run the workload, read the stats.

#ifndef MEMAGG_SIM_SIM_TRACER_H_
#define MEMAGG_SIM_SIM_TRACER_H_

#include <cstddef>

#include "sim/cache_model.h"

namespace memagg {

namespace sim_internal {
/// The currently bound model (nullptr when none). Single-threaded by
/// design: the Figure 6 experiment is a serial workload.
// lint:allow(unguarded-global): bound only by ScopedCacheSim on one thread.
extern CacheModel* g_cache_model;
}  // namespace sim_internal

/// Tracer policy routing accesses into the bound CacheModel.
struct SimTracer {
  static constexpr bool kEnabled = true;
  static void OnAccess(const void* address, size_t bytes) {
    if (sim_internal::g_cache_model != nullptr) {
      sim_internal::g_cache_model->Access(address, bytes);
    }
  }
};

/// Binds `model` as the global simulation target for its lifetime.
class ScopedCacheSim {
 public:
  explicit ScopedCacheSim(CacheModel* model) {
    previous_ = sim_internal::g_cache_model;
    sim_internal::g_cache_model = model;
  }
  ~ScopedCacheSim() { sim_internal::g_cache_model = previous_; }

  ScopedCacheSim(const ScopedCacheSim&) = delete;
  ScopedCacheSim& operator=(const ScopedCacheSim&) = delete;

 private:
  CacheModel* previous_ = nullptr;
};

}  // namespace memagg

#endif  // MEMAGG_SIM_SIM_TRACER_H_
