// Factory for cache-simulation-instrumented aggregation operators.
//
// Mirrors core/engine.h's label registry, but instantiates every data
// structure with Tracer = SimTracer so all slot/node/bucket accesses flow
// into the bound CacheModel. Sort kernels are traced by wrapping the
// sorter's KeyOf functor: every key extraction reports the element's
// address, which covers the comparison- and radix-driven access patterns of
// the sorts. Input-column scans are deliberately untraced for all operators
// (they are identical sequential reads for every algorithm).
//
// Used by bench_cache_tlb's --mode=sim fallback (Figure 6 without perf).

#ifndef MEMAGG_SIM_TRACED_ENGINE_H_
#define MEMAGG_SIM_TRACED_ENGINE_H_

#include <memory>
#include <string>

#include "core/aggregate.h"
#include "core/operator.h"
#include "exec/executor.h"

namespace memagg {

/// Creates a traced vector aggregator for a Table 3 serial label. Supports
/// the Figure 6 functions (kCount for Q1, kMedian for Q3). The cache model
/// observes a single access stream, so `exec` must be serial
/// (num_threads == 1); the parameter exists so callers can thread one
/// ExecutionContext through both engines.
std::unique_ptr<VectorAggregator> MakeTracedVectorAggregator(
    const std::string& label, AggregateFunction function, size_t expected_size,
    const ExecutionContext& exec = {});

}  // namespace memagg

#endif  // MEMAGG_SIM_TRACED_ENGINE_H_
