// Trace-driven CPU cache and TLB simulator.
//
// Reproduces the paper's Figure 6 (cache misses and D-TLB misses per
// algorithm) in environments where perf_event_open is forbidden. The model
// is a classic inclusive three-level set-associative LRU hierarchy plus a
// two-level data TLB, configured by default to the paper's test machine
// (i7-6700HQ Skylake: 32 KB 8-way L1D, 256 KB 4-way L2, 6 MB 12-way shared
// L3; 64-entry 4-way L1 dTLB and 1536-entry 12-way shared L2 TLB, 4 KB
// pages).
//
// "Cache misses" are counted at the last level (the LLC-miss events perf
// reports); "dTLB misses" are accesses that miss both TLB levels and incur a
// page walk.

#ifndef MEMAGG_SIM_CACHE_MODEL_H_
#define MEMAGG_SIM_CACHE_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace memagg {

/// One set-associative LRU cache for 64-bit block/page ids.
class SetAssociativeCache {
 public:
  /// `num_sets` must be a power of two; `associativity` >= 1.
  SetAssociativeCache(size_t num_sets, int associativity);

  /// Looks up `id`, updating LRU state; inserts on miss (evicting the LRU
  /// way). Returns true on hit.
  bool Access(uint64_t id);

  size_t num_sets() const { return num_sets_; }
  int associativity() const { return associativity_; }

 private:
  size_t num_sets_;
  int associativity_;
  // ways_[set * associativity + i]: i = 0 is most recently used.
  std::vector<uint64_t> ways_;
};

/// Sizing of one cache level.
struct CacheLevelConfig {
  size_t size_bytes = 0;
  int associativity = 1;
};

/// Full hierarchy configuration; defaults model the paper's i7-6700HQ.
struct CacheHierarchyConfig {
  int line_bytes = 64;
  CacheLevelConfig l1{32 * 1024, 8};
  CacheLevelConfig l2{256 * 1024, 4};
  CacheLevelConfig l3{6 * 1024 * 1024, 12};
  int page_bytes = 4096;
  int tlb_l1_entries = 64;
  int tlb_l1_associativity = 4;
  int tlb_l2_entries = 1536;
  int tlb_l2_associativity = 12;
};

/// Paper-machine hierarchy with the L3 replaced by the *host's* detected
/// last-level cache (util/cpu_cache.h) — the same probe the adaptive
/// operator keys its switching thresholds to, so simulated LLC behavior and
/// runtime strategy decisions agree on where "cache-resident" ends.
CacheHierarchyConfig DetectedCacheHierarchyConfig();

/// Counters accumulated by the model.
struct CacheSimStats {
  uint64_t accesses = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_misses = 0;
  uint64_t llc_misses = 0;  ///< Paper Figure 6 "cache misses".
  uint64_t tlb_misses = 0;  ///< Paper Figure 6 "D-TLB misses" (page walks).
};

/// The three-level cache + two-level TLB model.
class CacheModel {
 public:
  explicit CacheModel(
      const CacheHierarchyConfig& config = CacheHierarchyConfig{});

  /// Simulates one data access of `bytes` bytes at `address` (every cache
  /// line and page the access touches is visited).
  void Access(const void* address, size_t bytes);

  const CacheSimStats& stats() const { return stats_; }

  void ResetStats() { stats_ = CacheSimStats{}; }

 private:
  void AccessLine(uint64_t line);
  void AccessPage(uint64_t page);

  CacheHierarchyConfig config_;
  SetAssociativeCache l1_;
  SetAssociativeCache l2_;
  SetAssociativeCache l3_;
  SetAssociativeCache tlb_l1_;
  SetAssociativeCache tlb_l2_;
  CacheSimStats stats_;
};

}  // namespace memagg

#endif  // MEMAGG_SIM_CACHE_MODEL_H_
