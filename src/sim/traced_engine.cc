#include "sim/traced_engine.h"

#include "core/hash_aggregator.h"
#include "core/sort_aggregator.h"
#include "core/sorters.h"
#include "core/tree_aggregator.h"
#include "hash/chaining_map.h"
#include "hash/cuckoo_map.h"
#include "hash/dense_map.h"
#include "hash/linear_probing_map.h"
#include "hash/sparse_map.h"
#include "sim/sim_tracer.h"
#include "tree/art.h"
#include "tree/btree.h"
#include "tree/judy.h"
#include "tree/ttree.h"
#include "util/macros.h"

namespace memagg {
namespace {

// Traced aliases: the same structures, reporting accesses to SimTracer.
template <typename V>
using TracedLp = LinearProbingMap<V, SimTracer>;
template <typename V>
using TracedSc = ChainingMap<V, SimTracer>;
template <typename V>
using TracedSparse = SparseMap<V, SimTracer>;
template <typename V>
using TracedDense = DenseMap<V, SimTracer>;
template <typename V>
using TracedCuckoo = CuckooMap<V, SimTracer>;
template <typename V>
using TracedArt = ArtTree<V, SimTracer>;
template <typename V>
using TracedJudy = JudyArray<V, SimTracer>;
template <typename V>
using TracedBtree = BTree<V, SimTracer>;
template <typename V>
using TracedTtree = TTree<V, SimTracer>;

/// KeyOf wrapper reporting each element access to the simulator. Sorting
/// algorithms read elements through KeyOf/comparisons, so this captures
/// their access pattern without modifying the kernels.
template <typename KeyOf>
struct TracingKeyOf {
  KeyOf inner;
  template <typename T>
  uint64_t operator()(const T& element) const {
    SimTracer::OnAccess(&element, sizeof(T));
    return inner(element);
  }
};

struct TracedIntrosortSorter {
  template <typename T, typename KeyOf>
  void operator()(T* first, T* last, KeyOf key_of) const {
    IntroSort(first, last, KeyLess<TracingKeyOf<KeyOf>>{{key_of}});
  }
};

struct TracedSpreadsortSorter {
  template <typename T, typename KeyOf>
  void operator()(T* first, T* last, KeyOf key_of) const {
    SpreadSort(first, last, TracingKeyOf<KeyOf>{key_of});
  }
};

template <typename Aggregate>
std::unique_ptr<VectorAggregator> MakeTracedForAggregate(
    const std::string& label, size_t expected_size) {
  if (label == "Hash_LP") {
    return std::make_unique<HashVectorAggregator<TracedLp, Aggregate>>(
        expected_size);
  }
  if (label == "Hash_SC") {
    return std::make_unique<HashVectorAggregator<TracedSc, Aggregate>>(
        expected_size);
  }
  if (label == "Hash_Sparse") {
    return std::make_unique<HashVectorAggregator<TracedSparse, Aggregate>>(
        expected_size);
  }
  if (label == "Hash_Dense") {
    return std::make_unique<HashVectorAggregator<TracedDense, Aggregate>>(
        expected_size);
  }
  if (label == "Hash_LC") {
    return std::make_unique<HashVectorAggregator<TracedCuckoo, Aggregate>>(
        expected_size);
  }
  if (label == "ART") {
    return std::make_unique<TreeVectorAggregator<TracedArt, Aggregate>>();
  }
  if (label == "Judy") {
    return std::make_unique<TreeVectorAggregator<TracedJudy, Aggregate>>();
  }
  if (label == "Btree") {
    return std::make_unique<TreeVectorAggregator<TracedBtree, Aggregate>>();
  }
  if (label == "Ttree") {
    return std::make_unique<TreeVectorAggregator<TracedTtree, Aggregate>>();
  }
  if (label == "Introsort") {
    return std::make_unique<SortVectorAggregator<TracedIntrosortSorter,
                                                 Aggregate, SimTracer>>();
  }
  if (label == "Spreadsort") {
    return std::make_unique<SortVectorAggregator<TracedSpreadsortSorter,
                                                 Aggregate, SimTracer>>();
  }
  std::fprintf(stderr, "No traced operator for label: %s\n", label.c_str());
  MEMAGG_CHECK(false);
  return nullptr;
}

}  // namespace

std::unique_ptr<VectorAggregator> MakeTracedVectorAggregator(
    const std::string& label, AggregateFunction function, size_t expected_size,
    const ExecutionContext& exec) {
  MEMAGG_CHECK(exec.num_threads == 1);
  switch (function) {
    case AggregateFunction::kCount:
      return MakeTracedForAggregate<CountAggregate>(label, expected_size);
    case AggregateFunction::kMedian:
      return MakeTracedForAggregate<MedianAggregate>(label, expected_size);
    default:
      break;
  }
  MEMAGG_CHECK(false && "traced operators support COUNT and MEDIAN");
  return nullptr;
}

}  // namespace memagg
