#include "sim/sim_tracer.h"

namespace memagg {
namespace sim_internal {

CacheModel* g_cache_model = nullptr;

}  // namespace sim_internal
}  // namespace memagg
