#include "sim/sim_tracer.h"

namespace memagg {
namespace sim_internal {

// lint:allow(unguarded-global): bound only by ScopedCacheSim on one thread.
CacheModel* g_cache_model = nullptr;

}  // namespace sim_internal
}  // namespace memagg
