#include "sim/cache_model.h"

#include "util/bits.h"
#include "util/cpu_cache.h"
#include "util/macros.h"

namespace memagg {
namespace {

constexpr uint64_t kEmptyWay = ~0ULL;

size_t SetsFor(const CacheLevelConfig& level, int line_bytes) {
  MEMAGG_CHECK(level.size_bytes > 0);
  MEMAGG_CHECK(level.associativity >= 1);
  const size_t lines = level.size_bytes / static_cast<size_t>(line_bytes);
  const size_t sets = lines / static_cast<size_t>(level.associativity);
  MEMAGG_CHECK(sets >= 1);
  return static_cast<size_t>(NextPowerOfTwo(sets));
}

size_t SetsForTlb(int entries, int associativity) {
  MEMAGG_CHECK(entries >= associativity);
  return static_cast<size_t>(
      NextPowerOfTwo(static_cast<uint64_t>(entries / associativity)));
}

}  // namespace

CacheHierarchyConfig DetectedCacheHierarchyConfig() {
  CacheHierarchyConfig config;
  config.l3.size_bytes = DetectedL3CacheBytes();
  return config;
}

SetAssociativeCache::SetAssociativeCache(size_t num_sets, int associativity)
    : num_sets_(num_sets),
      associativity_(associativity),
      ways_(num_sets * static_cast<size_t>(associativity), kEmptyWay) {
  MEMAGG_CHECK(IsPowerOfTwo(num_sets));
}

bool SetAssociativeCache::Access(uint64_t id) {
  const size_t set = static_cast<size_t>(id) & (num_sets_ - 1);
  uint64_t* ways = &ways_[set * static_cast<size_t>(associativity_)];
  // MRU-ordered linear scan; associativities are small (<= 12).
  for (int i = 0; i < associativity_; ++i) {
    if (ways[i] == id) {
      // Hit: move to front.
      for (int j = i; j > 0; --j) ways[j] = ways[j - 1];
      ways[0] = id;
      return true;
    }
  }
  // Miss: evict the LRU way (the last slot) and insert at the front.
  for (int j = associativity_ - 1; j > 0; --j) ways[j] = ways[j - 1];
  ways[0] = id;
  return false;
}

CacheModel::CacheModel(const CacheHierarchyConfig& config)
    : config_(config),
      l1_(SetsFor(config.l1, config.line_bytes), config.l1.associativity),
      l2_(SetsFor(config.l2, config.line_bytes), config.l2.associativity),
      l3_(SetsFor(config.l3, config.line_bytes), config.l3.associativity),
      tlb_l1_(SetsForTlb(config.tlb_l1_entries, config.tlb_l1_associativity),
              config.tlb_l1_associativity),
      tlb_l2_(SetsForTlb(config.tlb_l2_entries, config.tlb_l2_associativity),
              config.tlb_l2_associativity) {}

void CacheModel::Access(const void* address, size_t bytes) {
  if (bytes == 0) bytes = 1;
  const uint64_t addr = reinterpret_cast<uint64_t>(address);
  const uint64_t first_line = addr / static_cast<uint64_t>(config_.line_bytes);
  const uint64_t last_line =
      (addr + bytes - 1) / static_cast<uint64_t>(config_.line_bytes);
  for (uint64_t line = first_line; line <= last_line; ++line) {
    AccessLine(line);
  }
  const uint64_t first_page = addr / static_cast<uint64_t>(config_.page_bytes);
  const uint64_t last_page =
      (addr + bytes - 1) / static_cast<uint64_t>(config_.page_bytes);
  for (uint64_t page = first_page; page <= last_page; ++page) {
    AccessPage(page);
  }
}

void CacheModel::AccessLine(uint64_t line) {
  ++stats_.accesses;
  if (l1_.Access(line)) return;
  ++stats_.l1_misses;
  if (l2_.Access(line)) return;
  ++stats_.l2_misses;
  if (l3_.Access(line)) return;
  ++stats_.llc_misses;
}

void CacheModel::AccessPage(uint64_t page) {
  if (tlb_l1_.Access(page)) return;
  if (tlb_l2_.Access(page)) return;
  ++stats_.tlb_misses;
}

}  // namespace memagg
