// Allocator policies threaded through every node-based structure
// (src/hash/, src/tree/). Each structure takes an `Alloc` template
// parameter modeling the AllocatorPolicy concept below; the typed
// New<T>/Delete<T> node interface rides on top of the byte interface and is
// checked structurally at each call site (PoolAllocator deliberately
// restricts it to one node type).
//
// Three policies are provided:
//
//   * GlobalNewAllocator — plain new/delete; the ablation baseline standing
//     in for the paper's system malloc (ptmalloc) runs.
//   * ArenaAllocator — bump arena plus size-class freelists; serves
//     structures with several node sizes (ART, Judy, B+tree).
//   * PoolAllocator<T> — typed intrusive freelist over an arena; serves
//     single-node-type structures (chaining maps, T-tree) with zero
//     size-class bookkeeping.
//
// When `kWholesaleRelease` is true a structure's destructor may skip the
// per-node free walk entirely for trivially destructible nodes: the arena
// releases everything wholesale. That destructor fast path is one of the
// big wins the paper attributes to allocation strategy.

#ifndef MEMAGG_MEM_ALLOCATOR_H_
#define MEMAGG_MEM_ALLOCATOR_H_

#include <array>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "mem/arena.h"
#include "util/macros.h"

namespace memagg {

/// Contract for every allocator policy: the raw byte interface all slot- and
/// node-based structures draw from, a per-policy Stats() counter snapshot,
/// and the compile-time kWholesaleRelease flag destructor fast paths key on.
/// Modeled by GlobalNewAllocator, ArenaAllocator, and PoolAllocator<T>
/// (all below).
template <typename A>
concept AllocatorPolicy =
    std::move_constructible<A> &&
    requires(A alloc, const A& calloc, void* ptr, size_t bytes, size_t align) {
      requires std::same_as<
          std::remove_cv_t<decltype(A::kWholesaleRelease)>, bool>;
      { alloc.AllocateBytes(bytes, align) } -> std::same_as<void*>;
      alloc.DeallocateBytes(ptr, bytes);
      { calloc.Stats() } -> std::same_as<AllocStats>;
    };

/// Ablation baseline: every node is a separate global new/delete. This is
/// what all node-based structures did before the arena layer existed, and
/// it stays selectable (labels `Hash_SC_Global`, `ART_Global`) so the
/// allocator dimension can be measured rather than assumed.
struct GlobalNewAllocator {
  static constexpr bool kWholesaleRelease = false;

  template <typename T, typename... Args>
  T* New(Args&&... args) {
    return new T(std::forward<Args>(args)...);
  }

  template <typename T>
  void Delete(T* ptr) {
    delete ptr;
  }

  void* AllocateBytes(size_t bytes, size_t align) {
    MEMAGG_DCHECK(align <= alignof(std::max_align_t));
    return ::operator new(bytes);
  }

  void DeallocateBytes(void* ptr, size_t /*bytes*/) { ::operator delete(ptr); }

  AllocStats Stats() const { return {}; }
};

/// Arena-backed allocator with size-class freelists, for structures that
/// allocate several node sizes (ART node4/16/48/256, Judy branches, B+tree
/// leaf/inner, probing slot arrays). Deleted blocks up to kMaxFreelistBytes
/// go on an 8-byte-granularity freelist and are reused by later
/// allocations of the same class; larger blocks are counted as waste and
/// reclaimed only by the arena's wholesale release.
///
/// All freelisted blocks are allocated at alignof(std::max_align_t), so a
/// block freed as one type is always correctly aligned for reuse as
/// another type of the same size class.
///
/// Default-constructed allocators lazily own a private Arena; the
/// Arena* constructor borrows a caller-owned arena (e.g. a worker slot
/// from mem/worker_arenas.h), which must outlive every allocation.
/// Not thread-safe — one allocator per owner, like the arena itself.
class ArenaAllocator {
 public:
  static constexpr bool kWholesaleRelease = true;
  static constexpr size_t kMaxFreelistBytes = 2048;
  static constexpr size_t kBlockAlign = alignof(std::max_align_t);

  ArenaAllocator() = default;
  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}

  ArenaAllocator(const ArenaAllocator&) = delete;
  ArenaAllocator& operator=(const ArenaAllocator&) = delete;

  ArenaAllocator(ArenaAllocator&& other) noexcept
      : owned_(std::move(other.owned_)),
        arena_(other.arena_),
        free_heads_(other.free_heads_),
        freelist_reuses_(other.freelist_reuses_),
        freed_bytes_(other.freed_bytes_),
        stranded_bytes_(other.stranded_bytes_) {
    other.arena_ = nullptr;
    other.free_heads_.fill(nullptr);
    other.freelist_reuses_ = 0;
    other.freed_bytes_ = 0;
    other.stranded_bytes_ = 0;
  }

  ArenaAllocator& operator=(ArenaAllocator&& other) noexcept {
    if (this != &other) {
      owned_ = std::move(other.owned_);
      arena_ = other.arena_;
      free_heads_ = other.free_heads_;
      freelist_reuses_ = other.freelist_reuses_;
      freed_bytes_ = other.freed_bytes_;
      stranded_bytes_ = other.stranded_bytes_;
      other.arena_ = nullptr;
      other.free_heads_.fill(nullptr);
      other.freelist_reuses_ = 0;
      other.freed_bytes_ = 0;
      other.stranded_bytes_ = 0;
    }
    return *this;
  }

  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(alignof(T) <= kBlockAlign,
                  "over-aligned node types are not supported");
    void* mem = AllocateBytes(sizeof(T), alignof(T));
    return ::new (mem) T(std::forward<Args>(args)...);
  }

  /// Destroys *ptr and recycles its block onto the freelist (or counts it
  /// as waste if it is above the freelist cap). The memory itself is only
  /// reclaimed by the arena's wholesale release.
  template <typename T>
  void Delete(T* ptr) {
    ptr->~T();
    DeallocateBytes(ptr, sizeof(T));
  }

  void* AllocateBytes(size_t bytes, size_t align) {
    const size_t cls = SizeClass(bytes);
    if (cls < kNumClasses && align <= kBlockAlign) {
      FreeBlock* block = free_heads_[cls];
      if (block != nullptr) {
        free_heads_[cls] = block->next;
        ++freelist_reuses_;
        freed_bytes_ -= ClassBytes(cls);
        return block;
      }
      return arena().Allocate(ClassBytes(cls), kBlockAlign);
    }
    return arena().Allocate(bytes, align);
  }

  void DeallocateBytes(void* ptr, size_t bytes) {
    const size_t cls = SizeClass(bytes);
    if (cls < kNumClasses) {
      auto* block = static_cast<FreeBlock*>(ptr);
      block->next = free_heads_[cls];
      free_heads_[cls] = block;
      freed_bytes_ += ClassBytes(cls);
    } else {
      stranded_bytes_ += bytes;
    }
  }

  /// Freelist counters, plus the arena's counters when this allocator owns
  /// its arena. Borrowed arenas (worker slots) are reported once by their
  /// owner to avoid double counting.
  AllocStats Stats() const {
    AllocStats stats;
    if (owned_ != nullptr) stats = owned_->Stats();
    stats.freelist_reuses += freelist_reuses_;
    stats.bytes_wasted += freed_bytes_ + stranded_bytes_;
    return stats;
  }

 private:
  struct FreeBlock {
    FreeBlock* next;
  };

  // Size classes are 8-byte buckets: class c serves (8c, 8(c+1)] bytes.
  static constexpr size_t kClassGranularity = 8;
  static constexpr size_t kNumClasses = kMaxFreelistBytes / kClassGranularity;

  static size_t SizeClass(size_t bytes) {
    if (bytes < sizeof(FreeBlock)) bytes = sizeof(FreeBlock);
    return (bytes - 1) / kClassGranularity;
  }

  static size_t ClassBytes(size_t cls) { return (cls + 1) * kClassGranularity; }

  Arena& arena() {
    if (MEMAGG_UNLIKELY(arena_ == nullptr)) {
      owned_ = std::make_unique<Arena>();
      arena_ = owned_.get();
    }
    return *arena_;
  }

  std::unique_ptr<Arena> owned_;
  Arena* arena_ = nullptr;
  std::array<FreeBlock*, kNumClasses> free_heads_{};
  uint64_t freelist_reuses_ = 0;
  uint64_t freed_bytes_ = 0;
  uint64_t stranded_bytes_ = 0;
};

/// Typed freelist over an arena for structures with exactly one node type
/// (chaining-map nodes, T-tree nodes). Delete pushes the node's storage
/// onto an intrusive freelist; New pops it back before touching the arena.
/// The New/Delete signatures are shaped like the generic allocators' so
/// structure code is identical across policies.
///
/// Ownership and threading rules match ArenaAllocator: default-constructed
/// pools lazily own an arena, Arena* pools borrow one (which must outlive
/// the allocations), and a pool serves a single thread.
template <typename T>
class PoolAllocator {
 public:
  static constexpr bool kWholesaleRelease = true;

  PoolAllocator() = default;
  explicit PoolAllocator(Arena* arena) : arena_(arena) {}

  PoolAllocator(const PoolAllocator&) = delete;
  PoolAllocator& operator=(const PoolAllocator&) = delete;

  PoolAllocator(PoolAllocator&& other) noexcept
      : owned_(std::move(other.owned_)),
        arena_(other.arena_),
        free_(other.free_),
        free_count_(other.free_count_),
        freelist_reuses_(other.freelist_reuses_) {
    other.arena_ = nullptr;
    other.free_ = nullptr;
    other.free_count_ = 0;
    other.freelist_reuses_ = 0;
  }

  PoolAllocator& operator=(PoolAllocator&& other) noexcept {
    if (this != &other) {
      owned_ = std::move(other.owned_);
      arena_ = other.arena_;
      free_ = other.free_;
      free_count_ = other.free_count_;
      freelist_reuses_ = other.freelist_reuses_;
      other.arena_ = nullptr;
      other.free_ = nullptr;
      other.free_count_ = 0;
      other.freelist_reuses_ = 0;
    }
    return *this;
  }

  /// Binds a fresh (unused) pool to a borrowed arena; used to point
  /// default-constructed per-worker pool slots at their worker's arena.
  void Attach(Arena* arena) {
    // Always-on: re-attaching a used pool would recycle freelist nodes that
    // live in the *old* arena into structures tied to the new one — a
    // use-after-free once the old arena resets, mid concurrent build.
    MEMAGG_CHECK(owned_ == nullptr && free_ == nullptr);
    arena_ = arena;
  }

  template <typename U = T, typename... Args>
  U* New(Args&&... args) {
    static_assert(std::is_same_v<U, T>,
                  "PoolAllocator serves exactly one node type");
    void* mem;
    if (free_ != nullptr) {
      mem = free_;
      free_ = free_->next;
      --free_count_;
      ++freelist_reuses_;
    } else {
      mem = arena().Allocate(kSlotBytes, kSlotAlign);
    }
    return ::new (mem) T(std::forward<Args>(args)...);
  }

  template <typename U>
  void Delete(U* ptr) {
    static_assert(std::is_same_v<U, T>,
                  "PoolAllocator serves exactly one node type");
    ptr->~T();
    auto* node = ::new (static_cast<void*>(ptr)) FreeNode{free_};
    free_ = node;
    ++free_count_;
  }

  void* AllocateBytes(size_t bytes, size_t align) {
    return arena().Allocate(bytes, align);
  }

  void DeallocateBytes(void* /*ptr*/, size_t /*bytes*/) {}

  /// See ArenaAllocator::Stats() for the owned-vs-borrowed rule.
  AllocStats Stats() const {
    AllocStats stats;
    if (owned_ != nullptr) stats = owned_->Stats();
    stats.freelist_reuses += freelist_reuses_;
    stats.bytes_wasted += free_count_ * kSlotBytes;
    return stats;
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  static constexpr size_t kSlotBytes =
      sizeof(T) > sizeof(FreeNode) ? sizeof(T) : sizeof(FreeNode);
  static constexpr size_t kSlotAlign =
      alignof(T) > alignof(FreeNode) ? alignof(T) : alignof(FreeNode);
  static_assert(kSlotAlign <= alignof(std::max_align_t),
                "over-aligned node types are not supported");

  Arena& arena() {
    if (MEMAGG_UNLIKELY(arena_ == nullptr)) {
      owned_ = std::make_unique<Arena>();
      arena_ = owned_.get();
    }
    return *arena_;
  }

  std::unique_ptr<Arena> owned_;
  Arena* arena_ = nullptr;
  FreeNode* free_ = nullptr;
  uint64_t free_count_ = 0;
  uint64_t freelist_reuses_ = 0;
};

static_assert(AllocatorPolicy<GlobalNewAllocator>);
static_assert(AllocatorPolicy<ArenaAllocator>);
static_assert(AllocatorPolicy<PoolAllocator<uint64_t>>);

}  // namespace memagg

#endif  // MEMAGG_MEM_ALLOCATOR_H_
