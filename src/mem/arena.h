// Chunked bump-pointer arena — the backbone of the allocator dimension
// (paper Section 6). The paper shows node-based aggregation structures
// swing dramatically with the malloc implementation; this repo substitutes
// the five malloc libraries with a sharper ablation: all per-node
// allocations come either from a bump arena (this file) or from global
// new/delete (mem/allocator.h), so the allocation cost is isolated from
// the structure logic. See docs/memory.md.
//
// An Arena hands out memory by bumping a cursor through geometrically
// growing chunks. Individual allocations are never returned to the OS;
// the whole arena is released wholesale — either by Reset(), which keeps
// the largest chunk hot for the next query, or by destruction. Allocation
// is therefore one pointer bump on the fast path and the per-node free
// walk that dominates destructor time for chained/tree structures under
// global new is gone entirely.
//
// Not thread-safe: one Arena per owner (structure, worker, partition).
// Parallel operators use one arena per worker slot (mem/worker_arenas.h).

#ifndef MEMAGG_MEM_ARENA_H_
#define MEMAGG_MEM_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <new>

#include "util/macros.h"

namespace memagg {

/// Allocator observability counters, surfaced through CollectStats() into
/// QueryStats (obs/query_stats.h). Plain data; merge by summing.
struct AllocStats {
  uint64_t chunks = 0;           ///< Chunks currently reserved.
  uint64_t bytes_reserved = 0;   ///< Sum of reserved chunk capacities.
  uint64_t bytes_used = 0;       ///< Bytes bump-allocated since last Reset().
  uint64_t bytes_wasted = 0;     ///< Stranded tails + freed-in-place bytes.
  uint64_t freelist_reuses = 0;  ///< Allocations served from a freelist.

  void Merge(const AllocStats& other) {
    chunks += other.chunks;
    bytes_reserved += other.bytes_reserved;
    bytes_used += other.bytes_used;
    bytes_wasted += other.bytes_wasted;
    freelist_reuses += other.freelist_reuses;
  }
};

/// Chunked bump allocator with geometric chunk growth and wholesale
/// release. Allocations are uniform in cost (one bump) and are never freed
/// individually — callers that retire an object mid-life layer a freelist
/// on top (mem/allocator.h).
class Arena {
 public:
  static constexpr size_t kMinChunkBytes = 4096;
  static constexpr size_t kMaxChunkBytes = size_t{1} << 20;  // Growth cap.

  /// The first chunk is allocated lazily on first use, so idle arenas
  /// (e.g. unused worker slots) cost nothing.
  explicit Arena(size_t first_chunk_bytes = kMinChunkBytes)
      : next_chunk_bytes_(first_chunk_bytes) {}

  ~Arena() { FreeChunks(head_); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` bytes aligned to `align` (a power of two no larger
  /// than alignof(std::max_align_t)). Never returns nullptr.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    MEMAGG_DCHECK(align != 0 && (align & (align - 1)) == 0);
    char* aligned = AlignUp(cursor_, align);
    if (MEMAGG_UNLIKELY(aligned > limit_ ||
                        static_cast<size_t>(limit_ - aligned) < bytes)) {
      return AllocateSlow(bytes, align);
    }
    bytes_used_ += static_cast<uint64_t>(aligned - cursor_) + bytes;
    cursor_ = aligned + bytes;
    return aligned;
  }

  /// Constructs a T from the arena. The arena never runs destructors:
  /// owners of non-trivially-destructible objects destroy them explicitly
  /// (or via an allocator's Delete) before Reset()/destruction.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* mem = Allocate(sizeof(T), alignof(T));
    return ::new (mem) T(static_cast<Args&&>(args)...);
  }

  /// Wholesale release: every allocation made since the last Reset() dies
  /// at once. The newest (largest, thanks to geometric growth) chunk is
  /// kept hot for reuse across queries; older chunks are returned to the
  /// system. Callers must have destroyed any non-trivially-destructible
  /// objects still living in the arena.
  void Reset() {
    if (head_ != nullptr) {
      FreeChunks(head_->prev);
      head_->prev = nullptr;
      chunks_ = 1;
      bytes_reserved_ = head_->capacity;
      cursor_ = Payload(head_);
      limit_ = cursor_ + head_->capacity;
    }
    bytes_used_ = 0;
    bytes_wasted_ = 0;
    ++resets_;
  }

  uint64_t bytes_used() const { return bytes_used_; }
  uint64_t bytes_reserved() const { return bytes_reserved_; }
  uint64_t chunks() const { return chunks_; }
  uint64_t resets() const { return resets_; }

  AllocStats Stats() const {
    AllocStats stats;
    stats.chunks = chunks_;
    stats.bytes_reserved = bytes_reserved_;
    stats.bytes_used = bytes_used_;
    stats.bytes_wasted = bytes_wasted_;
    return stats;
  }

 private:
  struct Chunk {
    Chunk* prev;
    size_t capacity;  ///< Payload bytes following this header.
  };

  static char* AlignUp(char* ptr, size_t align) {
    const uintptr_t value = reinterpret_cast<uintptr_t>(ptr);
    const uintptr_t mask = static_cast<uintptr_t>(align - 1);
    return reinterpret_cast<char*>((value + mask) & ~mask);
  }

  static char* Payload(Chunk* chunk) {
    return reinterpret_cast<char*>(chunk) + sizeof(Chunk);
  }

  void* AllocateSlow(size_t bytes, size_t align) {
    if (head_ != nullptr) {
      bytes_wasted_ += static_cast<uint64_t>(limit_ - cursor_);
    }
    // Worst-case alignment slack: ::operator new aligns the chunk to
    // max_align_t, and sizeof(Chunk) preserves that for the payload, so
    // only over-aligned requests (none today) would need the extra slack.
    const size_t payload = bytes + align;
    size_t chunk_bytes = next_chunk_bytes_;
    if (chunk_bytes < payload + sizeof(Chunk)) {
      chunk_bytes = payload + sizeof(Chunk);
    }
    Chunk* chunk = static_cast<Chunk*>(::operator new(chunk_bytes));
    chunk->prev = head_;
    chunk->capacity = chunk_bytes - sizeof(Chunk);
    head_ = chunk;
    cursor_ = Payload(chunk);
    limit_ = cursor_ + chunk->capacity;
    ++chunks_;
    bytes_reserved_ += chunk->capacity;
    if (next_chunk_bytes_ < kMaxChunkBytes) {
      next_chunk_bytes_ = next_chunk_bytes_ * 2 < kMaxChunkBytes
                              ? next_chunk_bytes_ * 2
                              : kMaxChunkBytes;
    }
    char* aligned = AlignUp(cursor_, align);
    // Always-on (cold grow path): a short chunk here means the returned
    // block overruns into ::operator new's heap — silent corruption under
    // the concurrent builds that bump worker arenas in parallel.
    MEMAGG_CHECK(static_cast<size_t>(limit_ - aligned) >= bytes);
    bytes_used_ += static_cast<uint64_t>(aligned - cursor_) + bytes;
    cursor_ = aligned + bytes;
    return aligned;
  }

  static void FreeChunks(Chunk* chunk) {
    while (chunk != nullptr) {
      Chunk* prev = chunk->prev;
      ::operator delete(chunk);
      chunk = prev;
    }
  }

  Chunk* head_ = nullptr;
  char* cursor_ = nullptr;
  char* limit_ = nullptr;
  size_t next_chunk_bytes_;
  uint64_t chunks_ = 0;
  uint64_t bytes_reserved_ = 0;
  uint64_t bytes_used_ = 0;
  uint64_t bytes_wasted_ = 0;
  uint64_t resets_ = 0;
};

}  // namespace memagg

#endif  // MEMAGG_MEM_ARENA_H_
