// Per-worker arena pool for morsel-driven parallel builds.
//
// A shared structure built under ParallelFor (e.g. Hash_TBBSC's concurrent
// chaining map) would serialize on a global malloc lock if every worker
// called new per node — the exact effect the paper's allocator dimension
// measures. Instead each worker slot gets its own Arena: the morsel's
// stable `worker` index picks the slot, so allocation is thread-local and
// lock-free even though the structure being built is shared.
//
// The pool is reachable through ExecutionContext::arenas. The engine
// injects a query-local pool when the caller does not provide one; callers
// that share a pool across queries must keep it alive for as long as any
// structure whose nodes were allocated from it, and may ResetAll() only
// between queries.

#ifndef MEMAGG_MEM_WORKER_ARENAS_H_
#define MEMAGG_MEM_WORKER_ARENAS_H_

#include <atomic>
#include <memory>
#include <vector>

#include "mem/arena.h"
#include "util/macros.h"

namespace memagg {

/// One Arena per worker slot, cache-line padded so neighbouring workers'
/// bump cursors never share a line.
class WorkerArenas {
 public:
  /// RAII quiescence marker: while any Lease is alive, some structure still
  /// holds nodes allocated from this pool, so ResetAll() (and pool
  /// destruction) would turn those nodes into dangling memory. Operators
  /// that attach node allocators to the pool hold a Lease for their
  /// lifetime; ResetAll() asserts the count is zero.
  class Lease {
   public:
    Lease() = default;
    explicit Lease(WorkerArenas* arenas) : arenas_(arenas) {
      if (arenas_ != nullptr) {
        arenas_->active_leases_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    Lease(Lease&& other) noexcept : arenas_(other.arenas_) {
      other.arenas_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        arenas_ = other.arenas_;
        other.arenas_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Release(); }

    /// Drops the hold early (e.g. after the owning structure has been
    /// torn down but before the handle itself goes out of scope).
    void Release() {
      if (arenas_ != nullptr) {
        arenas_->active_leases_.fetch_sub(1, std::memory_order_relaxed);
        arenas_ = nullptr;
      }
    }

   private:
    WorkerArenas* arenas_ = nullptr;
  };

  explicit WorkerArenas(int num_workers) {
    MEMAGG_CHECK(num_workers >= 1);
    slots_.reserve(static_cast<size_t>(num_workers));
    for (int w = 0; w < num_workers; ++w) {
      slots_.push_back(std::make_unique<PaddedArena>());
    }
  }

  ~WorkerArenas() {
    // A live lease here means some structure's nodes are about to dangle.
    MEMAGG_CHECK(active_leases_.load(std::memory_order_acquire) == 0 &&
                 "WorkerArenas destroyed while leases are active");
  }

  /// Registers a holder of pool-allocated nodes; see Lease.
  Lease Acquire() { return Lease(this); }

  int active_leases() const {
    return active_leases_.load(std::memory_order_relaxed);
  }

  int num_workers() const { return static_cast<int>(slots_.size()); }

  /// The arena for worker slot `worker` (a Morsel::worker index). The
  /// returned arena is single-threaded: only that worker allocates from it
  /// during a parallel loop.
  Arena& ForWorker(int worker) {
    // Always-on: an out-of-range slot is out-of-bounds vector access in a
    // path where two workers would then bump the same arena concurrently.
    MEMAGG_CHECK(worker >= 0 && worker < num_workers());
    return slots_[static_cast<size_t>(worker)]->arena;
  }

  /// Wholesale release of every worker arena. Only between queries, and
  /// only once no structure holds nodes allocated from the pool — enforced
  /// through the lease count.
  void ResetAll() {
    MEMAGG_CHECK(active_leases_.load(std::memory_order_acquire) == 0 &&
                 "WorkerArenas reset while leases are active");
    for (auto& slot : slots_) slot->arena.Reset();
  }

  /// Merged counters across all worker arenas.
  AllocStats Stats() const {
    AllocStats stats;
    for (const auto& slot : slots_) stats.Merge(slot->arena.Stats());
    return stats;
  }

 private:
  struct alignas(64) PaddedArena {
    Arena arena;
  };

  // unique_ptr slots because Arena is intentionally immovable.
  std::vector<std::unique_ptr<PaddedArena>> slots_;
  std::atomic<int> active_leases_{0};
};

}  // namespace memagg

#endif  // MEMAGG_MEM_WORKER_ARENAS_H_
