// One-call convenience API: group-by aggregation over columns with the
// algorithm chosen automatically by the Figure 12 advisor (or pinned by
// label). This is the entry point most applications want; the two-phase
// operator API underneath remains available for phase-level control.

#ifndef MEMAGG_CORE_GROUPBY_H_
#define MEMAGG_CORE_GROUPBY_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "core/aggregate.h"
#include "core/result.h"

namespace memagg {

/// Options for the one-call API.
struct GroupByOptions {
  /// Algorithm label, or "auto" to let the Figure 12 advisor decide from the
  /// aggregate category / range condition / thread count.
  std::string algorithm = "auto";
  int num_threads = 1;
  /// Optional inclusive range condition on the group key (Q7-style). When
  /// set with "auto", the advisor routes to a tree operator.
  bool has_range_condition = false;
  uint64_t range_lo = 0;
  uint64_t range_hi = ~0ULL;
  /// Expected distinct group count, used to pre-size growable tables and
  /// avoid rehash churn. 0 = estimate from a key sample (see
  /// EstimateGroupCardinality in core/advisor.h).
  size_t expected_groups = 0;
};

/// SELECT key, fn(value) ... GROUP BY key. `values` may be empty for
/// COUNT(*); otherwise it must match `keys` in size. Returns one row per
/// group (sorted by key for tree/sort algorithms, hash order otherwise).
VectorResult GroupByAggregate(std::span<const uint64_t> keys,
                              std::span<const uint64_t> values,
                              AggregateFunction function,
                              const GroupByOptions& options = {});

/// SELECT fn(column): scalar aggregation over one column (COUNT / AVG /
/// MEDIAN and the other supported functions).
double ScalarAggregate(std::span<const uint64_t> column,
                       AggregateFunction function,
                       const GroupByOptions& options = {});

}  // namespace memagg

#endif  // MEMAGG_CORE_GROUPBY_H_
