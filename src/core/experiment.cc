#include "core/experiment.h"

#include <utility>
#include <vector>

#include "core/advisor.h"
#include "core/engine.h"
#include "util/cycle_timer.h"
#include "util/macros.h"

namespace memagg {
namespace {

PhaseTiming Time(CycleTimer& timer) {
  return {timer.ElapsedCycles(), timer.ElapsedMillis()};
}

}  // namespace

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  ExperimentResult result;
  if (config.algorithm == "auto") {
    // Vector group-bys without a range condition resolve to the runtime
    // adaptive operator, which picks (and re-picks) its strategy from
    // observed data instead of the static workload profile. Range queries
    // need ordered iteration and scalar queries their own operator family,
    // so those keep the Figure 12 advisor's static recommendation.
    result.algorithm = config.query.output == OutputFormat::kVector &&
                               !config.query.has_range_condition
                           ? "Adaptive"
                           : RecommendAlgorithm(ProfileForQuery(
                                 config.query, /*worm=*/false,
                                 /*prebuilt_index=*/false, config.num_threads));
  } else {
    result.algorithm = config.algorithm;
  }

  // Phase 0: dataset generation (the paper preloads data and excludes this
  // from query time; we report it separately).
  CycleTimer timer;
  timer.Start();
  const std::vector<uint64_t> keys = GenerateKeys(config.dataset);
  std::vector<uint64_t> values;
  if (NeedsValueColumn(config.query.function) &&
      config.query.output == OutputFormat::kVector) {
    values = GenerateValues(config.dataset.num_records, config.value_range,
                            config.value_seed);
  }
  timer.Stop();
  result.generate = Time(timer);

  if (config.query.output == OutputFormat::kScalar) {
    // Q4/Q5 are streaming; Q6 (median) uses the sort/tree operators.
    switch (config.query.function) {
      case AggregateFunction::kCount:
        timer.Start();
        result.scalar_value = static_cast<double>(keys.size());
        timer.Stop();
        result.build = Time(timer);
        return result;
      case AggregateFunction::kAverage: {
        values = GenerateValues(config.dataset.num_records, config.value_range,
                                config.value_seed);
        timer.Start();
        uint64_t sum = 0;
        for (uint64_t v : values) sum += v;
        result.scalar_value =
            static_cast<double>(sum) / static_cast<double>(values.size());
        timer.Stop();
        result.build = Time(timer);
        return result;
      }
      case AggregateFunction::kMedian: {
        auto aggregator =
            MakeScalarMedianAggregator(result.algorithm, config.num_threads);
        timer.Start();
        aggregator->Build(keys.data(), nullptr, keys.size());
        timer.Stop();
        result.build = Time(timer);
        timer.Start();
        result.scalar_value = aggregator->Finalize();
        timer.Stop();
        result.iterate = Time(timer);
        return result;
      }
      default:
        MEMAGG_CHECK(false && "unsupported scalar experiment function");
    }
  }

  // Vector queries (Q1/Q2/Q3/Q7).
  const int threads =
      CategoryOfLabel(result.algorithm) == AlgorithmCategory::kTree
          ? 1
          : config.num_threads;
  auto aggregator = MakeVectorAggregator(result.algorithm,
                                         config.query.function,
                                         config.dataset.num_records, threads);
  timer.Start();
  aggregator->Build(keys.data(), values.empty() ? nullptr : values.data(),
                    keys.size());
  timer.Stop();
  result.build = Time(timer);

  timer.Start();
  VectorResult rows =
      config.query.has_range_condition && aggregator->SupportsRange()
          ? aggregator->IterateRange(config.query.range_lo,
                                     config.query.range_hi)
          : aggregator->Iterate();
  timer.Stop();
  result.iterate = Time(timer);

  result.num_groups = rows.size();
  result.data_structure_bytes = aggregator->DataStructureBytes();
  if (config.keep_rows) result.rows = std::move(rows);
  return result;
}

}  // namespace memagg
