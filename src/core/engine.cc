#include "core/engine.h"

#include "core/adaptive_aggregator.h"
#include "core/advisor.h"
#include "core/concepts.h"
#include "core/hash_aggregator.h"
#include "core/hybrid_aggregator.h"
#include "core/local_partition_aggregator.h"
#include "core/radix_partition_aggregator.h"
#include "core/parallel_aggregator.h"
#include "core/scalar.h"
#include "core/sort_aggregator.h"
#include "core/sorters.h"
#include "core/tree_aggregator.h"
#include "hash/chaining_map.h"
#include "hash/concurrent_chaining_map.h"
#include "hash/cuckoo_map.h"
#include "hash/dense_map.h"
#include "hash/linear_probing_map.h"
#include "core/mph_aggregator.h"
#include "hash/sparse_map.h"
#include "mem/worker_arenas.h"
#include "tree/art.h"
#include "tree/btree.h"
#include "tree/judy.h"
#include "tree/ttree.h"
#include "util/macros.h"

namespace memagg {
namespace {

template <MergeableAggregatePolicy Aggregate>
std::unique_ptr<VectorAggregator> MakeForAggregate(
    const std::string& label, size_t expected_size,
    const ExecutionContext& exec) {
  const int num_threads = exec.num_threads;
  // --- Hash-based (Table 3 / Table 8) ---
  if (label == "Hash_LP") {
    MEMAGG_CHECK(num_threads == 1);
    return std::make_unique<HashVectorAggregator<LinearProbingMap, Aggregate>>(
        expected_size);
  }
  if (label == "Hash_SC") {
    MEMAGG_CHECK(num_threads == 1);
    return std::make_unique<HashVectorAggregator<ChainingMap, Aggregate>>(
        expected_size);
  }
  if (label == "Hash_SC_Global") {
    // Allocator-ablation twin of Hash_SC: identical chaining table, nodes
    // from global operator new instead of the arena pool (docs/memory.md).
    MEMAGG_CHECK(num_threads == 1);
    return std::make_unique<
        HashVectorAggregator<ChainingMapGlobalNew, Aggregate>>(expected_size);
  }
  if (label == "Hash_Sparse") {
    MEMAGG_CHECK(num_threads == 1);
    return std::make_unique<HashVectorAggregator<SparseMap, Aggregate>>(
        expected_size);
  }
  if (label == "Hash_Dense") {
    MEMAGG_CHECK(num_threads == 1);
    return std::make_unique<HashVectorAggregator<DenseMap, Aggregate>>(
        expected_size);
  }
  if (label == "Hash_LC") {
    if (num_threads == 1) {
      return std::make_unique<HashVectorAggregator<CuckooMap, Aggregate>>(
          expected_size);
    }
    return std::make_unique<CuckooParallelAggregator<Aggregate>>(
        expected_size, exec);
  }
  if (label == "Hash_TBBSC") {
    using Concurrent = typename ConcurrentAggregateFor<Aggregate>::type;
    return std::make_unique<TbbStyleParallelAggregator<Concurrent>>(
        expected_size, exec);
  }

  // --- Extensions beyond the paper's Table 3 ---
  if (label == "Adaptive") {
    return std::make_unique<AdaptiveAggregator<Aggregate>>(expected_size,
                                                           exec);
  }
  if (label == "Hybrid") {
    return std::make_unique<HybridVectorAggregator<Aggregate>>(expected_size,
                                                               exec);
  }
  if (label == "Hash_PLocal") {
    return std::make_unique<LocalPartitionAggregator<Aggregate>>(
        expected_size, exec);
  }
  if (label == "Hash_Striped") {
    return std::make_unique<StripedParallelAggregator<Aggregate>>(
        expected_size, exec);
  }
  if (label == "Hash_PRadix") {
    return std::make_unique<RadixPartitionAggregator<Aggregate>>(
        expected_size, exec);
  }
  if (label == "Hash_MPH") {
    MEMAGG_CHECK(num_threads == 1);
    return std::make_unique<MphVectorAggregator<Aggregate>>(expected_size);
  }

  // --- Tree-based (Table 3) ---
  if (label == "ART") {
    MEMAGG_CHECK(num_threads == 1);
    return std::make_unique<TreeVectorAggregator<ArtTree, Aggregate>>();
  }
  if (label == "ART_Global") {
    // Allocator-ablation twin of ART (see Hash_SC_Global above).
    MEMAGG_CHECK(num_threads == 1);
    return std::make_unique<
        TreeVectorAggregator<ArtTreeGlobalNew, Aggregate>>();
  }
  if (label == "Judy") {
    MEMAGG_CHECK(num_threads == 1);
    return std::make_unique<TreeVectorAggregator<JudyArray, Aggregate>>();
  }
  if (label == "Btree") {
    MEMAGG_CHECK(num_threads == 1);
    return std::make_unique<TreeVectorAggregator<BTree, Aggregate>>();
  }
  if (label == "Ttree") {
    MEMAGG_CHECK(num_threads == 1);
    return std::make_unique<TreeVectorAggregator<TTree, Aggregate>>();
  }

  // --- Sort-based (Table 3 / Table 8 / microbenchmarks) ---
  if (label == "Introsort") {
    MEMAGG_CHECK(num_threads == 1);
    return std::make_unique<
        SortVectorAggregator<IntrosortSorter, Aggregate>>();
  }
  if (label == "Spreadsort") {
    MEMAGG_CHECK(num_threads == 1);
    return std::make_unique<
        SortVectorAggregator<SpreadsortSorter, Aggregate>>();
  }
  if (label == "Quicksort") {
    MEMAGG_CHECK(num_threads == 1);
    return std::make_unique<
        SortVectorAggregator<QuicksortSorter, Aggregate>>();
  }
  if (label == "Sort_MSBRadix") {
    MEMAGG_CHECK(num_threads == 1);
    return std::make_unique<SortVectorAggregator<MsbRadixSorter, Aggregate>>();
  }
  if (label == "Sort_LSBRadix") {
    MEMAGG_CHECK(num_threads == 1);
    return std::make_unique<SortVectorAggregator<LsbRadixSorter, Aggregate>>();
  }
  if (label == "Sort_QSLB") {
    return std::make_unique<
        SortVectorAggregator<ParallelQuicksortSorter, Aggregate>>(
        ParallelQuicksortSorter{num_threads});
  }
  if (label == "Sort_BI") {
    return std::make_unique<
        SortVectorAggregator<BlockIndirectSorter, Aggregate>>(
        BlockIndirectSorter{num_threads});
  }
  if (label == "Sort_SS") {
    return std::make_unique<
        SortVectorAggregator<SamplesortSorter, Aggregate>>(
        SamplesortSorter{num_threads});
  }
  if (label == "Sort_TBB") {
    return std::make_unique<
        SortVectorAggregator<TaskQuicksortSorter, Aggregate>>(
        TaskQuicksortSorter{num_threads});
  }

  std::fprintf(stderr, "Unknown algorithm label: %s\n", label.c_str());
  MEMAGG_CHECK(false);
  return nullptr;
}

}  // namespace

AlgorithmCategory CategoryOfLabel(const std::string& label) {
  if (label == "Hybrid") return AlgorithmCategory::kHash;  // Starts hashing.
  if (label == "Adaptive") return AlgorithmCategory::kHash;  // Ditto.
  if (label.rfind("Hash", 0) == 0) return AlgorithmCategory::kHash;
  if (label == "ART" || label == "ART_Global" || label == "Judy" ||
      label == "Btree" || label == "Ttree") {
    return AlgorithmCategory::kTree;
  }
  if (label == "Introsort" || label == "Spreadsort" || label == "Quicksort" ||
      label.rfind("Sort_", 0) == 0) {
    return AlgorithmCategory::kSort;
  }
  std::fprintf(stderr, "Unknown algorithm label: %s\n", label.c_str());
  MEMAGG_CHECK(false);
  return AlgorithmCategory::kHash;
}

const std::vector<std::string>& SerialLabels() {
  static const std::vector<std::string>& labels = *new std::vector<std::string>{
      "ART",         "Judy",       "Btree",   "Hash_SC",   "Hash_LP",
      "Hash_Sparse", "Hash_Dense", "Hash_LC", "Introsort", "Spreadsort"};
  return labels;
}

const std::vector<std::string>& ConcurrentLabels() {
  static const std::vector<std::string>& labels =
      *new std::vector<std::string>{"Hash_TBBSC", "Hash_LC", "Sort_BI",
                                    "Sort_QSLB"};
  return labels;
}

const std::vector<std::string>& TreeLabels() {
  static const std::vector<std::string>& labels =
      *new std::vector<std::string>{"ART", "Judy", "Btree"};
  return labels;
}

const std::vector<std::string>& ScalarCapableLabels() {
  static const std::vector<std::string>& labels =
      *new std::vector<std::string>{"ART", "Judy", "Btree", "Introsort",
                                    "Spreadsort"};
  return labels;
}

std::unique_ptr<VectorAggregator> MakeVectorAggregator(
    const std::string& label, AggregateFunction function, size_t expected_size,
    const ExecutionContext& exec) {
  switch (function) {
    case AggregateFunction::kCount:
      return MakeForAggregate<CountAggregate>(label, expected_size, exec);
    case AggregateFunction::kSum:
      return MakeForAggregate<SumAggregate>(label, expected_size, exec);
    case AggregateFunction::kMin:
      return MakeForAggregate<MinAggregate>(label, expected_size, exec);
    case AggregateFunction::kMax:
      return MakeForAggregate<MaxAggregate>(label, expected_size, exec);
    case AggregateFunction::kAverage:
      return MakeForAggregate<AverageAggregate>(label, expected_size, exec);
    case AggregateFunction::kMedian:
      return MakeForAggregate<MedianAggregate>(label, expected_size, exec);
    case AggregateFunction::kMode:
      return MakeForAggregate<ModeAggregate>(label, expected_size, exec);
  }
  MEMAGG_CHECK(false);
  return nullptr;
}

VectorQueryExecution ExecuteVectorQuery(const std::string& label,
                                        AggregateFunction function,
                                        const uint64_t* keys,
                                        const uint64_t* values, size_t n,
                                        size_t expected_size,
                                        ExecutionContext exec) {
  StatsRegistry local_registry(exec.num_threads);
  if (exec.stats == nullptr) exec.stats = &local_registry;
  // Query-local per-worker arenas: parallel operators allocate their nodes
  // thread-locally from these and the whole pool is released when this frame
  // unwinds (declared before `aggregator` so it outlives the structures
  // whose nodes live in it).
  WorkerArenas local_arenas(exec.num_threads);
  if (exec.arenas == nullptr) exec.arenas = &local_arenas;
  auto aggregator = MakeVectorAggregator(label, function, expected_size, exec);
  // Pre-size growable tables from a sampled cardinality estimate; the
  // sampling cost stays outside the timed build phase.
  aggregator->ReserveGroups(EstimateGroupCardinality(keys, n));

  VectorQueryExecution execution;
  // The end-to-end build/iterate clocks are the bench contract, not
  // operator instrumentation: they are two timer reads per whole phase and
  // stay live even under MEMAGG_DISABLE_STATS (which is why CycleTimer is
  // used directly instead of the gated PhaseTimer).
  {
    CycleTimer timer;
    timer.Start();
    aggregator->Build(keys, values, n);
    timer.Stop();
    execution.stats.AddPhase(StatPhase::kBuild, timer.ElapsedCycles(),
                             timer.ElapsedMillis());
  }
  {
    CycleTimer timer;
    timer.Start();
    execution.result = aggregator->Iterate();
    timer.Stop();
    execution.stats.AddPhase(StatPhase::kIterate, timer.ElapsedCycles(),
                             timer.ElapsedMillis());
  }
  if (StatsConfig::kEnabled) {
    execution.stats.Add(StatCounter::kRowsBuilt, n);
    execution.stats.Add(StatCounter::kGroupsOut, execution.result.size());
    aggregator->CollectStats(&execution.stats);
    // Context-owned worker arenas are reported here, once per query;
    // operators report only the allocators they own (see mem/allocator.h).
    AddAllocStats(&execution.stats, exec.arenas->Stats());
    execution.stats.Merge(exec.stats->Collect());
  }
  return execution;
}

std::unique_ptr<ScalarAggregator> MakeScalarMedianAggregator(
    const std::string& label, const ExecutionContext& exec) {
  const int num_threads = exec.num_threads;
  if (label == "ART") {
    return std::make_unique<TreeScalarMedianAggregator<ArtTree>>();
  }
  if (label == "Judy") {
    return std::make_unique<TreeScalarMedianAggregator<JudyArray>>();
  }
  if (label == "Btree") {
    return std::make_unique<TreeScalarMedianAggregator<BTree>>();
  }
  if (label == "Ttree") {
    return std::make_unique<TreeScalarMedianAggregator<TTree>>();
  }
  if (label == "Introsort") {
    return std::make_unique<SortScalarMedianAggregator<IntrosortSorter>>();
  }
  if (label == "Spreadsort") {
    return std::make_unique<SortScalarMedianAggregator<SpreadsortSorter>>();
  }
  if (label == "Quicksort") {
    return std::make_unique<SortScalarMedianAggregator<QuicksortSorter>>();
  }
  if (label == "Sort_BI") {
    return std::make_unique<SortScalarMedianAggregator<BlockIndirectSorter>>(
        BlockIndirectSorter{num_threads});
  }
  if (label == "Sort_QSLB") {
    return std::make_unique<
        SortScalarMedianAggregator<ParallelQuicksortSorter>>(
        ParallelQuicksortSorter{num_threads});
  }
  std::fprintf(stderr, "Label unsuitable for scalar median: %s\n",
               label.c_str());
  MEMAGG_CHECK(false);
  return nullptr;
}

}  // namespace memagg
