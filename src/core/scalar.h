// Scalar aggregation operators (paper Table 1 Q4-Q6, Section 5.7).
//
// Q4 (COUNT) and Q5 (AVG) need no data structure at all — a single streaming
// pass suffices. Q6 (MEDIAN of the key column) is the interesting one:
//   * sort-based operators sort a copy of the column and read the middle;
//   * tree-based operators build key -> count index and walk it in order
//     until the middle rank — the WORM-friendly option the paper recommends
//     (Judy) when an index already exists;
//   * hash tables are unsuitable because the median requires ordered keys
//     (paper Section 5.7).

#ifndef MEMAGG_CORE_SCALAR_H_
#define MEMAGG_CORE_SCALAR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/aggregate.h"
#include "core/concepts.h"
#include "core/operator.h"
#include "sort/sort_common.h"
#include "util/encoded_key.h"
#include "util/macros.h"

namespace memagg {

/// Q4: scalar COUNT — a streaming counter.
class StreamingCountAggregator final : public ScalarAggregator {
 public:
  void Build(const uint64_t* /*keys*/, const uint64_t* /*values*/,
             size_t n) override {
    count_ += n;
  }

  double Finalize() override { return static_cast<double>(count_); }

 private:
  uint64_t count_ = 0;
};

/// Q5: scalar AVG(value) — a streaming sum/count pair.
class StreamingAverageAggregator final : public ScalarAggregator {
 public:
  void Build(const uint64_t* /*keys*/, const uint64_t* values,
             size_t n) override {
    for (size_t i = 0; i < n; ++i) state_.sum += values[i];
    state_.count += n;
  }

  double Finalize() override { return AverageAggregate::Finalize(state_); }

 private:
  AverageAggregate::State state_;
};

/// Q6 via sorting: sort a copy of the key column, read the middle.
template <Sorter SorterT>
class SortScalarMedianAggregator final : public ScalarAggregator {
 public:
  explicit SortScalarMedianAggregator(SorterT sorter = SorterT{})
      : sorter_(sorter) {}

  void Build(const uint64_t* keys, const uint64_t* /*values*/,
             size_t n) override {
    keys_.assign(keys, keys + n);
    sorter_(keys_.data(), keys_.data() + keys_.size(), IdentityKey{});
  }

  double Finalize() override {
    const size_t n = keys_.size();
    MEMAGG_CHECK(n > 0);
    // keys_ is fully sorted; the median is a direct lookup.
    if (n % 2 == 1) return static_cast<double>(keys_[n / 2]);
    return (static_cast<double>(keys_[n / 2 - 1]) +
            static_cast<double>(keys_[n / 2])) /
           2.0;
  }

 private:
  SorterT sorter_;
  std::vector<uint64_t> keys_;
};

/// Q6 via a tree index: build key -> multiplicity, then walk the sorted
/// groups accumulating counts until the middle rank(s).
template <template <typename> class TreeT>
  requires OrderedGroupStore<TreeT<uint64_t>, uint64_t>
class TreeScalarMedianAggregator final : public ScalarAggregator {
 public:
  void Build(const uint64_t* keys, const uint64_t* /*values*/,
             size_t n) override {
    for (size_t i = 0; i < n; ++i) {
      ++tree_.GetOrInsert(keys[i]);
    }
    total_ += n;
  }

  double Finalize() override {
    MEMAGG_CHECK(total_ > 0);
    // Ranks of the middle element(s), 0-based.
    const uint64_t rank_hi = total_ / 2;
    const uint64_t rank_lo = (total_ % 2 == 1) ? rank_hi : rank_hi - 1;
    uint64_t seen = 0;
    uint64_t lo_key = 0;
    uint64_t hi_key = 0;
    bool lo_found = false;
    bool hi_found = false;
    tree_.ForEach([&](EncodedKey key, const uint64_t& count) {
      if (hi_found) return;  // Walk completes; remaining groups are ignored.
      const uint64_t next_seen = seen + count;
      if (!lo_found && rank_lo < next_seen) {
        lo_key = key;
        lo_found = true;
      }
      if (!hi_found && rank_hi < next_seen) {
        hi_key = key;
        hi_found = true;
      }
      seen = next_seen;
    });
    MEMAGG_CHECK(lo_found && hi_found);
    return (static_cast<double>(lo_key) + static_cast<double>(hi_key)) / 2.0;
  }

  /// Direct access for tests.
  TreeT<uint64_t>& tree() { return tree_; }

 private:
  TreeT<uint64_t> tree_;
  uint64_t total_ = 0;
};

}  // namespace memagg

#endif  // MEMAGG_CORE_SCALAR_H_
