// MphVectorAggregator (paper Section 3.2): the vector-aggregation operator
// built on hash/ordered_mph.h's order-preserving minimal perfect hash. Split
// from that header so hash/ stays below the operator layer in the include
// DAG (tools/check_layering.py).

#ifndef MEMAGG_CORE_MPH_AGGREGATOR_H_
#define MEMAGG_CORE_MPH_AGGREGATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/aggregate.h"
#include "core/concepts.h"
#include "core/operator.h"
#include "core/result.h"
#include "hash/ordered_mph.h"
#include "obs/query_stats.h"
#include "util/encoded_key.h"
#include "util/macros.h"

namespace memagg {

/// Vector aggregation via an order-preserving MPHF: the §3.2 design the
/// paper dismisses, implemented so bench_ablation can quantify the cost.
template <AggregatePolicy Aggregate>
class MphVectorAggregator final : public VectorAggregator {
 public:
  using State = typename Aggregate::State;

  explicit MphVectorAggregator(size_t /*expected_size*/ = 0) {}

  void Build(const uint64_t* keys, const uint64_t* values,
             size_t n) override {
    // The MPHF needs the complete key set, so records are buffered across
    // Build calls and the function + dense states are rebuilt from scratch
    // each time (the two-pass cost the paper anticipates).
    buffered_keys_.insert(buffered_keys_.end(), keys, keys + n);
    if constexpr (Aggregate::kNeedsValues) {
      MEMAGG_CHECK(values != nullptr || n == 0);
      buffered_values_.insert(buffered_values_.end(), values, values + n);
    }
    mph_.Build(buffered_keys_.data(), buffered_keys_.size());
    states_.clear();
    states_.resize(mph_.size());
    for (size_t i = 0; i < buffered_keys_.size(); ++i) {
      const size_t slot = mph_.Slot(buffered_keys_[i]);
      MEMAGG_DCHECK(slot < states_.size());
      Aggregate::Update(states_[slot], Aggregate::kNeedsValues
                                           ? buffered_values_[i]
                                           : 0);
    }
  }

  VectorResult Iterate() override {
    VectorResult result;
    result.reserve(states_.size());
    for (size_t slot = 0; slot < states_.size(); ++slot) {
      result.push_back(
          {mph_.KeyAt(slot), Aggregate::Finalize(states_[slot])});
    }
    return result;
  }

  bool SupportsRange() const override { return true; }

  VectorResult IterateRange(uint64_t lo, uint64_t hi) override {
    VectorResult result;
    for (size_t slot = 0; slot < states_.size(); ++slot) {
      const EncodedKey key = mph_.KeyAt(slot);
      if (key < lo) continue;
      if (key > hi) break;  // Slots are key-ordered.
      result.push_back({key, Aggregate::Finalize(states_[slot])});
    }
    return result;
  }

  size_t NumGroups() const override { return states_.size(); }

  size_t DataStructureBytes() const override {
    return mph_.MemoryBytes() + states_.capacity() * sizeof(State);
  }

  void CollectStats(QueryStats* stats) const override {
    stats->Add(StatCounter::kHashEntries, states_.size());
  }

 private:
  OrderedMinimalPerfectHash mph_;
  std::vector<State> states_;
  std::vector<uint64_t> buffered_keys_;
  std::vector<uint64_t> buffered_values_;
};

}  // namespace memagg

#endif  // MEMAGG_CORE_MPH_AGGREGATOR_H_
