// Tree-based vector aggregation (paper Section 3.3).
//
// Identical two-phase structure to the hash operators, with two extras the
// paper studies: the iterate phase emits groups in sorted key order, and the
// operator supports native range-filtered iteration (Q7) because radix and
// comparison trees order their keys.

#ifndef MEMAGG_CORE_TREE_AGGREGATOR_H_
#define MEMAGG_CORE_TREE_AGGREGATOR_H_

#include <cstddef>
#include <cstdint>

#include "core/aggregate.h"
#include "core/concepts.h"
#include "core/operator.h"
#include "core/result.h"
#include "obs/query_stats.h"

namespace memagg {

/// Vector aggregation over any memagg tree index. `TreeT` is the tree
/// template (ArtTree, JudyArray, BTree, TTree); `Aggregate` is an aggregate
/// policy from core/aggregate.h. The tree instantiated at the aggregate's
/// State type must model OrderedGroupStore (core/concepts.h).
template <template <typename> class TreeT, AggregatePolicy Aggregate>
  requires OrderedGroupStore<TreeT<typename Aggregate::State>,
                             typename Aggregate::State>
class TreeVectorAggregator final : public VectorAggregator {
 public:
  using State = typename Aggregate::State;

  /// Trees grow dynamically with the data (paper Section 3.3); no
  /// pre-sizing is needed or possible.
  TreeVectorAggregator() = default;

  void Build(const uint64_t* keys, const uint64_t* values,
             size_t n) override {
    if constexpr (Aggregate::kNeedsValues) {
      for (size_t i = 0; i < n; ++i) {
        Aggregate::Update(tree_.GetOrInsert(keys[i]), values[i]);
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        Aggregate::Update(tree_.GetOrInsert(keys[i]), 0);
      }
    }
  }

  VectorResult Iterate() override {
    VectorResult result;
    result.reserve(tree_.size());
    tree_.ForEach([&result](uint64_t key, const State& state) {
      result.push_back({key, Aggregate::Finalize(const_cast<State&>(state))});
    });
    return result;
  }

  bool SupportsRange() const override { return true; }

  VectorResult IterateRange(uint64_t lo, uint64_t hi) override {
    VectorResult result;
    tree_.ForEachInRange(lo, hi, [&result](uint64_t key, const State& state) {
      result.push_back({key, Aggregate::Finalize(const_cast<State&>(state))});
    });
    return result;
  }

  size_t NumGroups() const override { return tree_.size(); }

  size_t DataStructureBytes() const override { return tree_.MemoryBytes(); }

  void CollectStats(QueryStats* stats) const override {
    // Map whichever diagnostic struct this tree family exposes (ART/Judy
    // node censuses, B-tree/T-tree shape stats) onto the uniform counters.
    if constexpr (requires { tree_.ComputeNodeStats(); }) {
      const auto node_stats = tree_.ComputeNodeStats();
      if constexpr (requires { node_stats.inner_nodes(); }) {  // ART
        stats->Add(StatCounter::kTreeNodes,
                   node_stats.inner_nodes() + node_stats.leaves);
        stats->MaxOf(StatCounter::kTreeHeight, node_stats.max_depth);
      } else {  // Judy
        stats->Add(StatCounter::kTreeNodes, node_stats.linear_branches +
                                                node_stats.bitmap_branches +
                                                node_stats.bitmap_leaves);
      }
    } else if constexpr (requires { tree_.ComputeTreeStats(); }) {
      const auto tree_stats = tree_.ComputeTreeStats();
      if constexpr (requires { tree_stats.inner_nodes; }) {  // B-tree
        stats->Add(StatCounter::kTreeNodes,
                   tree_stats.inner_nodes + tree_stats.leaves);
      } else {  // T-tree
        stats->Add(StatCounter::kTreeNodes, tree_stats.nodes);
      }
      stats->MaxOf(StatCounter::kTreeHeight, tree_stats.height);
    }
    if constexpr (requires { tree_.AllocatorStats(); }) {
      AddAllocStats(stats, tree_.AllocatorStats());
    }
  }

  /// Direct access for tests.
  TreeT<State>& tree() { return tree_; }

 private:
  TreeT<State> tree_;
};

}  // namespace memagg

#endif  // MEMAGG_CORE_TREE_AGGREGATOR_H_
