// Tree-based vector aggregation (paper Section 3.3).
//
// Identical two-phase structure to the hash operators, with two extras the
// paper studies: the iterate phase emits groups in sorted key order, and the
// operator supports native range-filtered iteration (Q7) because radix and
// comparison trees order their keys.

#ifndef MEMAGG_CORE_TREE_AGGREGATOR_H_
#define MEMAGG_CORE_TREE_AGGREGATOR_H_

#include <cstddef>
#include <cstdint>
#include <utility>

#include "core/aggregate.h"
#include "core/concepts.h"
#include "core/migratable.h"
#include "core/operator.h"
#include "core/result.h"
#include "obs/query_stats.h"
#include "util/encoded_key.h"
#include "util/macros.h"

namespace memagg {

/// Vector aggregation over any memagg tree index. `TreeT` is the tree
/// template (ArtTree, JudyArray, BTree, TTree); `Aggregate` is an aggregate
/// policy from core/aggregate.h. The tree instantiated at the aggregate's
/// State type must model OrderedGroupStore (core/concepts.h).
template <template <typename> class TreeT, AggregatePolicy Aggregate>
  requires OrderedGroupStore<TreeT<typename Aggregate::State>,
                             typename Aggregate::State>
class TreeVectorAggregator final : public VectorAggregator,
                                   public MigratableAggregator<Aggregate> {
 public:
  using State = typename Aggregate::State;
  using Partial = PartialAggState<Aggregate>;

  /// Trees grow dynamically with the data (paper Section 3.3); no
  /// pre-sizing is needed or possible.
  TreeVectorAggregator() = default;

  void Build(const uint64_t* keys, const uint64_t* values,
             size_t n) override {
    if constexpr (Aggregate::kNeedsValues) {
      for (size_t i = 0; i < n; ++i) {
        Aggregate::Update(tree_.GetOrInsert(keys[i]), values[i]);
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        Aggregate::Update(tree_.GetOrInsert(keys[i]), 0);
      }
    }
  }

  VectorResult Iterate() override {
    VectorResult result;
    result.reserve(tree_.size());
    tree_.ForEach([&result](EncodedKey key, const State& state) {
      result.push_back({key, Aggregate::Finalize(const_cast<State&>(state))});
    });
    return result;
  }

  bool SupportsRange() const override { return true; }

  VectorResult IterateRange(uint64_t lo, uint64_t hi) override {
    VectorResult result;
    tree_.ForEachInRange(lo, hi, [&result](EncodedKey key, const State& state) {
      result.push_back({key, Aggregate::Finalize(const_cast<State&>(state))});
    });
    return result;
  }

  // --- MigratableAggregator (core/migratable.h) -----------------------------
  // Single-worker strategy, like the hash operator: ConsumeMorsel never runs
  // concurrently with itself.

  void ConsumeMorsel(const uint64_t* keys, const uint64_t* values,
                     const Morsel& m) override {
    Build(keys + m.begin, values == nullptr ? nullptr : values + m.begin,
          m.end - m.begin);
    rows_consumed_ += m.end - m.begin;
  }

  ProgressSnapshot Progress() const override {
    return {rows_consumed_, tree_.size(), tree_.MemoryBytes()};
  }

  Partial ExtractPartialState() override {
    // Trees are not movable, so extraction moves the States out and leaves
    // the (drained) node skeleton behind — only destruction is valid
    // afterwards, per the interface contract.
    Partial out;
    out.partials.reserve(tree_.size());
    tree_.ForEach([&out](EncodedKey key, const State& state) {
      out.partials.emplace_back(key, std::move(const_cast<State&>(state)));
    });
    out.rows = rows_consumed_;
    rows_consumed_ = 0;
    return out;
  }

  void AbsorbPartialState(Partial&& partial) override {
    for (auto& [key, state] : partial.partials) {
      if constexpr (MergeableAggregatePolicy<Aggregate>) {
        Aggregate::Merge(tree_.GetOrInsert(key), state);
      } else {
        MEMAGG_CHECK(false && "aggregate has no Merge; cannot absorb partials");
      }
    }
    for (const auto& [key, value] : partial.records) {
      Aggregate::Update(tree_.GetOrInsert(key), value);
    }
    rows_consumed_ += partial.rows;
  }

  VectorResult Finish() override { return Iterate(); }

  size_t NumGroups() const override { return tree_.size(); }

  size_t DataStructureBytes() const override { return tree_.MemoryBytes(); }

  void CollectStats(QueryStats* stats) const override {
    // Map whichever diagnostic struct this tree family exposes (ART/Judy
    // node censuses, B-tree/T-tree shape stats) onto the uniform counters.
    if constexpr (requires { tree_.ComputeNodeStats(); }) {
      const auto node_stats = tree_.ComputeNodeStats();
      if constexpr (requires { node_stats.inner_nodes(); }) {  // ART
        stats->Add(StatCounter::kTreeNodes,
                   node_stats.inner_nodes() + node_stats.leaves);
        stats->MaxOf(StatCounter::kTreeHeight, node_stats.max_depth);
      } else {  // Judy
        stats->Add(StatCounter::kTreeNodes, node_stats.linear_branches +
                                                node_stats.bitmap_branches +
                                                node_stats.bitmap_leaves);
      }
    } else if constexpr (requires { tree_.ComputeTreeStats(); }) {
      const auto tree_stats = tree_.ComputeTreeStats();
      if constexpr (requires { tree_stats.inner_nodes; }) {  // B-tree
        stats->Add(StatCounter::kTreeNodes,
                   tree_stats.inner_nodes + tree_stats.leaves);
      } else {  // T-tree
        stats->Add(StatCounter::kTreeNodes, tree_stats.nodes);
      }
      stats->MaxOf(StatCounter::kTreeHeight, tree_stats.height);
    }
    if constexpr (requires { tree_.AllocatorStats(); }) {
      AddAllocStats(stats, tree_.AllocatorStats());
    }
  }

  /// Direct access for tests.
  TreeT<State>& tree() { return tree_; }

 private:
  TreeT<State> tree_;
  uint64_t rows_consumed_ = 0;  ///< Morsel-path rows (Progress reporting).
};

}  // namespace memagg

#endif  // MEMAGG_CORE_TREE_AGGREGATOR_H_
