// Adaptive aggregation operator: online strategy selection with mid-query
// switching (ROADMAP open item #1).
//
// The Figure 12 advisor (core/advisor.h) picks a strategy before execution,
// but its decisive inputs — group cardinality, skew, working-set size versus
// the last-level cache — are only reliably known once data flows (the
// hash-vs-sort empirical study arXiv 2411.13245; Graefe's in-stream vs.
// sort-based merge analysis arXiv 2010.00152). This operator instead:
//
//   1. samples the first K morsels with the cheapest strategy (worker-local
//      tables — contention-free and trivially extractable);
//   2. at each chunk barrier feeds EstimateGroupCardinality plus an online
//      skew estimate into per-strategy cost models whose thresholds are
//      keyed to the detected L3 size (util/cpu_cache.h, shared with
//      sim/cache_model.h's detected hierarchy);
//   3. switches among local-partition/central-merge, local-partition/
//      tree-merge, radix-partition, shared-map, and the hash→sort fallback
//      by moving the partially built group state through the
//      MigratableAggregator interface (core/migratable.h) — consumed rows
//      are never reprocessed;
//   4. re-dispatches the remaining morsels of the same deterministic grid to
//      the new strategy (Executor::ParallelForMorsels).
//
// Chunks grow geometrically, so the barrier count is O(log morsels) and the
// decision overhead amortizes to nothing. Switch points, rows migrated, and
// the final strategy are recorded in QueryStats (kStrategySwitches,
// kRowsMigrated, kAdaptiveStrategy); switch_trace() exposes the full
// decision path for benchmark reports. Cost-model details and calibration
// notes live in docs/adaptive.md.

#ifndef MEMAGG_CORE_ADAPTIVE_AGGREGATOR_H_
#define MEMAGG_CORE_ADAPTIVE_AGGREGATOR_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "core/advisor.h"
#include "core/aggregate.h"
#include "core/concepts.h"
#include "core/hash_aggregator.h"
#include "core/local_partition_aggregator.h"
#include "core/migratable.h"
#include "core/operator.h"
#include "core/parallel_aggregator.h"
#include "core/radix_partition_aggregator.h"
#include "core/result.h"
#include "core/sort_aggregator.h"
#include "core/sorters.h"
#include "exec/executor.h"
#include "hash/linear_probing_map.h"
#include "obs/query_stats.h"
#include "util/cpu_cache.h"
#include "util/macros.h"

namespace memagg {

/// The adaptive operator's strategy inventory. kSerialHash is the
/// single-worker degenerate case; the parallel five are the classic
/// parallel-aggregation designs (Cieslewicz & Ross lineage).
enum class AggStrategy : int {
  kSerialHash = 0,  ///< HashVectorAggregator<LinearProbingMap> (1 worker).
  kLocalCentral,    ///< Worker-local tables, serial central merge.
  kLocalTree,       ///< Worker-local tables, parallel pairwise-tree merge.
  kRadix,           ///< Incremental radix partitioning, per-partition tables.
  kSharedMap,       ///< One lock-striped shared table, no merge phase.
  kSort,            ///< Buffer + parallel sort + run scan (high-cardinality
                    ///< fallback: aggregation degenerates, sorting streams).
};
inline constexpr int kNumAggStrategies = 6;

/// Stable lowercase identifier (switch traces, bench JSON).
const char* AggStrategyName(AggStrategy strategy);

/// Tuning knobs; the defaults are the measured configuration. The test
/// hooks (force_strategy, rotate, chunk_morsels) exist so correctness tests
/// can pin or exercise the switching machinery deterministically.
struct AdaptiveOptions {
  size_t sample_morsels = 2;    ///< K: morsels consumed before first decision.
  size_t l3_bytes = 0;          ///< Cost-model LLC size; 0 = detect.
  double switch_margin = 0.8;   ///< Switch only if predicted cost (incl.
                                ///< migration) < margin × staying cost.
  int force_strategy = -1;      ///< >= 0: pin to this AggStrategy, never switch.
  bool rotate = false;          ///< Ignore the cost model; switch to the next
                                ///< applicable strategy at every barrier.
  size_t chunk_morsels = 0;     ///< Fixed chunk size; 0 = geometric doubling.
};

/// Cheap strided sample statistics over the key column (the online skew
/// estimate): fraction of the sample occupied by its most frequent key, the
/// fraction of sampled keys seen once, and the distinct count.
struct KeySampleStats {
  double top_frac = 0.0;
  double singleton_frac = 0.0;
  size_t distinct = 0;
  size_t sampled = 0;
};
KeySampleStats MeasureKeySample(const uint64_t* keys, size_t n);

/// Everything the cost models consume at a decision barrier.
struct StrategyCostInputs {
  double rows_remaining = 0;  ///< Rows not yet consumed.
  double rows_total = 0;      ///< n.
  double est_groups = 1;      ///< Estimated total distinct groups.
  double skew = 0;            ///< KeySampleStats::top_frac.
  int workers = 1;
  double l3_bytes = 0;        ///< Detected LLC size.
  double entry_bytes = 24;    ///< Estimated bytes per resident group entry.
};

/// True if `strategy` can run under `workers` workers at all.
bool StrategyApplicable(AggStrategy strategy, int workers);

/// Predicted cycles to finish the remaining rows with `strategy` (build +
/// its merge/finish obligations; excludes migration). +inf if inapplicable.
double EstimatedStrategyCost(AggStrategy strategy,
                             const StrategyCostInputs& in);

/// Cycles to move the current partial state into `to`. Free for the
/// central-merge ↔ tree-merge pair: they share the structure and differ only
/// in how the finish phase merges it.
double EstimatedMigrationCost(AggStrategy from, AggStrategy to,
                              const ProgressSnapshot& progress);

/// argmin of EstimatedStrategyCost over the applicable strategies.
AggStrategy ChooseAggStrategy(const StrategyCostInputs& in);

/// Next applicable strategy after `current` in enum order (rotation hook).
AggStrategy NextApplicableStrategy(AggStrategy current, int workers);

/// The adaptive operator. Registered in the engine as "Adaptive" and used by
/// the experiment driver's "auto" label for vector queries.
template <MergeableAggregatePolicy Aggregate>
class AdaptiveAggregator final : public VectorAggregator {
 public:
  using State = typename Aggregate::State;
  using Partial = PartialAggState<Aggregate>;

  /// Holistic aggregates buffer every value per group (the FinalizeRun
  /// probe, as in core/hybrid_aggregator.h) — their resident entries are
  /// fat, which the cost models must know.
  static constexpr bool kHolistic =
      requires(uint64_t* v, size_t c) { Aggregate::FinalizeRun(v, c); };

  AdaptiveAggregator(size_t expected_size, ExecutionContext exec,
                     AdaptiveOptions options = {})
      : exec_(exec), opt_(options), expected_size_(expected_size) {
    if (opt_.l3_bytes == 0) opt_.l3_bytes = DetectedL3CacheBytes();
    // Calibration aid (docs/adaptive.md): log every barrier decision.
    debug_ = std::getenv("MEMAGG_ADAPTIVE_DEBUG") != nullptr;
  }

  void ReserveGroups(size_t expected_groups) override {
    reserve_hint_ = expected_groups;
  }

  void Build(const uint64_t* keys, const uint64_t* values, size_t n) override {
    Executor executor(exec_);
    const int workers = executor.num_workers();
    rows_total_ = n;

    AggStrategy first = workers > 1 ? AggStrategy::kLocalCentral
                                    : AggStrategy::kSerialHash;
    if (opt_.force_strategy >= 0) {
      first = static_cast<AggStrategy>(opt_.force_strategy);
      MEMAGG_CHECK(StrategyApplicable(first, workers));
    }
    // One-time strided probes over the full (in-memory) column — O(4096)
    // each, independent of n — run *before* the first strategy exists: the
    // group estimate sizes its tables. Reserving for n rows (the fixed
    // operators' safe bound) would zero tens of MB inside the query.
    const KeySampleStats sample = MeasureKeySample(keys, n);
    const size_t estimated =
        n == 0 ? 1
               : (reserve_hint_ != 0 ? reserve_hint_
                                     : EstimateGroupCardinality(keys, n));
    const double est_groups =
        static_cast<double>(std::max<size_t>(1, estimated));
    StartStrategy(first, GroupCapacityFor(first, est_groups, n == 0 ? 1 : n),
                  n == 0 ? 1 : n);
    if (n == 0) return;

    const size_t grain = executor.MorselRows(n);
    const size_t num_morsels = NumMorselsFor(n, grain);

    size_t next_morsel = 0;
    // Geometric mode starts with at least one morsel per worker, so the
    // sampling chunk already runs at full parallelism.
    size_t chunk = std::max<size_t>(
        1, opt_.chunk_morsels != 0
               ? opt_.chunk_morsels
               : std::max(opt_.sample_morsels, static_cast<size_t>(workers)));
    while (next_morsel < num_morsels) {
      const size_t until = std::min(num_morsels, next_morsel + chunk);
      executor.ParallelForMorsels(
          n, next_morsel, until,
          [&](const Morsel& m) { mig_->ConsumeMorsel(keys, values, m); },
          grain);
      next_morsel = until;
      if (next_morsel >= num_morsels) break;
      if (opt_.force_strategy >= 0) {
        chunk = num_morsels;  // Pinned: consume the rest in one go.
        continue;
      }
      DecideAtBarrier(n, est_groups, sample, workers);
      if (opt_.chunk_morsels == 0) chunk *= 2;
    }
  }

  VectorResult Iterate() override {
    if (mig_ == nullptr) StartStrategy(AggStrategy::kSerialHash, 1, 1);
    return mig_->Finish();
  }

  size_t NumGroups() const override {
    return op_ == nullptr ? 0 : op_->NumGroups();
  }

  size_t DataStructureBytes() const override {
    return op_ == nullptr ? 0 : op_->DataStructureBytes();
  }

  void CollectStats(QueryStats* stats) const override {
    stats->Merge(stats_);
    stats->MaxOf(StatCounter::kAdaptiveStrategy,
                 static_cast<uint64_t>(current_) + 1);
    // Only the strategy the query ended on still holds structures; the
    // stats of switched-away strategies died with them (their rows are
    // accounted by kRowsMigrated).
    if (op_ != nullptr) op_->CollectStats(stats);
  }

  /// Decision path, e.g. "local-central@0->radix@262144": strategy names
  /// joined by the row counts at which each switch happened.
  const std::string& switch_trace() const { return trace_; }

  AggStrategy current_strategy() const { return current_; }

  uint64_t strategy_switches() const {
    return stats_.Get(StatCounter::kStrategySwitches);
  }

 private:
  /// Table capacity for a strategy's constructor: twice the group estimate
  /// (headroom for the GEE error band — the maps rehash-grow past it), never
  /// more than the rows it could possibly hold. The worker-local designs
  /// split the capacity across workers but every worker can meet every group
  /// on shuffled data, so their budget scales back up by the worker count.
  size_t GroupCapacityFor(AggStrategy strategy, double est_groups,
                          size_t max_rows) const {
    if (strategy == AggStrategy::kSort) return max_rows;  // Buffers rows.
    double capacity = std::max(64.0, 2.0 * est_groups);
    if (strategy == AggStrategy::kLocalCentral ||
        strategy == AggStrategy::kLocalTree) {
      capacity *= Executor(exec_).num_workers();
    }
    return static_cast<size_t>(
        std::min(static_cast<double>(max_rows), capacity));
  }

  void StartStrategy(AggStrategy strategy, size_t expected_groups,
                     size_t expected_rows) {
    const int workers = Executor(exec_).num_workers();
    switch (strategy) {
      case AggStrategy::kSerialHash: {
        MEMAGG_CHECK(workers == 1);
        auto op = std::make_unique<
            HashVectorAggregator<LinearProbingMap, Aggregate>>(expected_groups);
        mig_ = op.get();
        op_ = std::move(op);
        break;
      }
      case AggStrategy::kLocalCentral:
      case AggStrategy::kLocalTree: {
        auto op = std::make_unique<LocalPartitionAggregator<Aggregate>>(
            expected_groups, exec_,
            strategy == AggStrategy::kLocalTree ? LocalMergeMode::kTree
                                                : LocalMergeMode::kCentral);
        mig_ = op.get();
        op_ = std::move(op);
        break;
      }
      case AggStrategy::kRadix: {
        auto op = std::make_unique<RadixPartitionAggregator<Aggregate>>(
            expected_groups, exec_);
        mig_ = op.get();
        op_ = std::move(op);
        break;
      }
      case AggStrategy::kSharedMap: {
        auto op = std::make_unique<StripedParallelAggregator<Aggregate>>(
            expected_groups, exec_);
        mig_ = op.get();
        op_ = std::move(op);
        break;
      }
      case AggStrategy::kSort: {
        BlockIndirectSorter sorter;
        sorter.num_threads = exec_.num_threads;
        auto op = std::make_unique<
            SortVectorAggregator<BlockIndirectSorter, Aggregate>>(sorter);
        mig_ = op.get();
        op_ = std::move(op);
        break;
      }
    }
    mig_->BeginConsume(workers, expected_rows);
    current_ = strategy;
    if (trace_.empty()) {
      trace_ = std::string(AggStrategyName(strategy)) + "@0";
    }
  }

  void DecideAtBarrier(size_t n, double est_groups_full,
                       const KeySampleStats& sample, int workers) {
    const ProgressSnapshot progress = mig_->Progress();
    const double rows_seen = static_cast<double>(progress.rows);
    const double rows_remaining =
        static_cast<double>(n) - std::min(static_cast<double>(n), rows_seen);
    if (rows_remaining <= 0) return;

    // Group estimate: before any data flowed, the strided column estimate
    // (GEE) is all there is — but its scale-up both overshoots mid-range
    // cardinalities and sits a sqrt(n/sample) band below the truth on
    // all-distinct data. Once rows flowed, the live structures carry a
    // strictly better signal: under a uniform draw from C groups the
    // expected distinct count after r rows is D = C(1 - e^(-r/C)) (coupon
    // collector), so the observed (r, D) pair inverts to C by bisection.
    // Worker-local tables count a global group once per worker that saw it,
    // which is exactly the discovery curve of r/workers draws — hence the
    // basis division. The sort strategy reports groups == 0 and keeps the
    // sample estimate.
    double est_groups = est_groups_full;
    if (progress.groups > 0) {
      const bool local_tables = current_ == AggStrategy::kLocalCentral ||
                                current_ == AggStrategy::kLocalTree;
      const double basis = local_tables ? workers : 1.0;
      const double d = static_cast<double>(progress.groups) / basis;
      const double r = rows_seen / basis;
      double live = static_cast<double>(n);
      if (d < 0.98 * r) {  // Any saturation signal yet?
        double lo = d;
        double hi = static_cast<double>(n);
        for (int it = 0; it < 40; ++it) {
          const double mid = 0.5 * (lo + hi);
          const double predicted = mid * (1.0 - std::exp(-r / mid));
          (predicted < d ? lo : hi) = mid;
        }
        live = 0.5 * (lo + hi);
      }
      est_groups =
          std::min(static_cast<double>(n), std::max(d, live));
    }

    StrategyCostInputs in;
    in.rows_remaining = rows_remaining;
    in.rows_total = static_cast<double>(n);
    in.est_groups = est_groups;
    in.skew = sample.top_frac;
    in.workers = workers;
    in.l3_bytes = static_cast<double>(opt_.l3_bytes);
    in.entry_bytes = static_cast<double>(sizeof(State)) + 16.0 +
                     (kHolistic ? 8.0 * in.rows_total / est_groups : 0.0);

    AggStrategy best = opt_.rotate ? NextApplicableStrategy(current_, workers)
                                   : ChooseAggStrategy(in);
    const double stay = EstimatedStrategyCost(current_, in);
    const double migration = EstimatedMigrationCost(current_, best, progress);
    const double go = EstimatedStrategyCost(best, in) + migration;
    if (debug_) {
      std::fprintf(stderr,
                   "[adaptive] rows=%.0f/%zu est=%.0f (sample %.0f) "
                   "stay=%s %.3gMcy best=%s %.3gMcy(+mig)\n",
                   rows_seen, n, est_groups, est_groups_full,
                   AggStrategyName(current_), stay / 1e6,
                   AggStrategyName(best), go / 1e6);
    }
    if (best == current_) return;
    // The margin hedges against migration that the model got wrong; a free
    // migration has nothing to hedge, so any predicted gain is worth taking.
    const double margin = migration == 0.0 ? 1.0 : opt_.switch_margin;
    if (!opt_.rotate && go >= margin * stay) return;
    SwitchTo(best, rows_remaining, est_groups, progress);
  }

  void SwitchTo(AggStrategy next, double rows_remaining, double est_groups,
                const ProgressSnapshot& progress) {
    const auto is_local = [](AggStrategy s) {
      return s == AggStrategy::kLocalCentral || s == AggStrategy::kLocalTree;
    };
    if (is_local(current_) && is_local(next)) {
      // Same structure, different finish: flip the merge mode in place.
      static_cast<LocalPartitionAggregator<Aggregate>*>(op_.get())
          ->set_merge_mode(next == AggStrategy::kLocalTree
                               ? LocalMergeMode::kTree
                               : LocalMergeMode::kCentral);
      current_ = next;
      stats_.Add(StatCounter::kStrategySwitches, 1);
      trace_ += "->";
      trace_ += AggStrategyName(next);
      trace_ += "@0";
      return;
    }
    Partial partial = mig_->ExtractPartialState();
    const uint64_t moved = partial.rows;
    // Destroy the drained strategy before building its successor so peak
    // memory holds one structure plus the (compact) partial state.
    mig_ = nullptr;
    op_.reset();
    const size_t max_rows = static_cast<size_t>(rows_remaining) +
                            std::max<uint64_t>(moved, progress.groups);
    StartStrategy(next, GroupCapacityFor(next, est_groups, max_rows),
                  max_rows);
    mig_->AbsorbPartialState(std::move(partial));
    stats_.Add(StatCounter::kStrategySwitches, 1);
    stats_.Add(StatCounter::kRowsMigrated, moved);
    trace_ += "->";
    trace_ += AggStrategyName(next);
    trace_ += "@";
    trace_ += std::to_string(moved);
  }

  ExecutionContext exec_;
  AdaptiveOptions opt_;
  size_t expected_size_;
  size_t reserve_hint_ = 0;
  uint64_t rows_total_ = 0;
  std::unique_ptr<VectorAggregator> op_;           ///< Owning handle.
  MigratableAggregator<Aggregate>* mig_ = nullptr; ///< Same object, migratable view.
  AggStrategy current_ = AggStrategy::kSerialHash;
  bool debug_ = false;        ///< MEMAGG_ADAPTIVE_DEBUG decision logging.
  std::string trace_;
  QueryStats stats_;  ///< Switch accounting (merged in CollectStats).
};

}  // namespace memagg

#endif  // MEMAGG_CORE_ADAPTIVE_AGGREGATOR_H_
