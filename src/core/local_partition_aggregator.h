// Thread-local partitioned aggregation (extension).
//
// The paper's Section 5.8/7 frames the key design question for parallel
// aggregation: should threads share one concurrent structure, or work
// independently and merge (Cieslewicz & Ross VLDB'07; Ye et al.'s PLAT)?
// The Table 8 operators answer "share"; this operator implements the
// "independent" strategy so the two can be compared: each worker aggregates
// the morsels it claims into a private linear-probing table (no
// synchronization at all during the build), and the iterate phase merges the
// per-worker tables.
//
// The classic trade-off reproduces directly: with few groups the merge is
// negligible and local tables scale perfectly; with many groups the merge
// re-processes every group once per thread. Works for all aggregate
// categories — holistic states merge by buffer concatenation.

#ifndef MEMAGG_CORE_LOCAL_PARTITION_AGGREGATOR_H_
#define MEMAGG_CORE_LOCAL_PARTITION_AGGREGATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/aggregate.h"
#include "core/concepts.h"
#include "core/migratable.h"
#include "core/operator.h"
#include "core/result.h"
#include "exec/executor.h"
#include "hash/linear_probing_map.h"
#include "obs/query_stats.h"
#include "util/encoded_key.h"
#include "util/macros.h"

namespace memagg {

/// How LocalPartitionAggregator combines its per-worker tables at iterate
/// time. kCentral merges every table into the first serially (cheap when
/// groups are few); kTree merges disjoint pairs in parallel rounds, halving
/// the table count per round (log2(workers) parallel rounds — wins when the
/// per-table group count is large enough that one thread's merge dominates).
enum class LocalMergeMode { kCentral, kTree };

/// Independent worker-local tables, merged at iterate time — which is why
/// the aggregate must be mergeable.
template <MergeableAggregatePolicy Aggregate>
class LocalPartitionAggregator final : public VectorAggregator,
                                       public MigratableAggregator<Aggregate> {
 public:
  using State = typename Aggregate::State;
  using Partial = PartialAggState<Aggregate>;

  LocalPartitionAggregator(size_t expected_size, ExecutionContext exec,
                           LocalMergeMode merge_mode = LocalMergeMode::kCentral)
      : exec_(exec),
        merge_mode_(merge_mode),
        rows_consumed_(Executor(exec_).num_workers()) {
    const int num_workers = Executor(exec_).num_workers();
    locals_.reserve(static_cast<size_t>(num_workers));
    for (int t = 0; t < num_workers; ++t) {
      locals_.push_back(std::make_unique<LinearProbingMap<State>>(
          expected_size / static_cast<size_t>(num_workers) + 1));
    }
  }

  /// The merge mode only matters at iterate time, so the adaptive operator
  /// can flip it mid-build without touching the tables — a "switch" between
  /// the central-merge and tree-merge strategies migrates no state.
  void set_merge_mode(LocalMergeMode merge_mode) { merge_mode_ = merge_mode; }

  void Build(const uint64_t* keys, const uint64_t* values,
             size_t n) override {
    // Each worker owns locals_[worker]; a worker folds every morsel it
    // claims into its own table, so no synchronization is needed.
    Executor(exec_).ParallelFor(n, [&](const Morsel& m) {
      BuildSlice(m.worker, keys, values, m.begin, m.end);
    });
  }

  VectorResult Iterate() override {
    // Merge the thread-local tables into the first, per the merge mode.
    {
      PhaseTimer merge_timer(&stats_, StatPhase::kMerge);
      if (merge_mode_ == LocalMergeMode::kCentral) {
        MergeCentral();
      } else {
        MergeTree();
      }
    }
    LinearProbingMap<State>& merged = *locals_[0];
    VectorResult result;
    result.reserve(merged.size());
    merged.ForEach([&result](EncodedKey key, const State& state) {
      result.push_back({key, Aggregate::Finalize(const_cast<State&>(state))});
    });
    return result;
  }

  // --- MigratableAggregator (core/migratable.h) -----------------------------

  void ConsumeMorsel(const uint64_t* keys, const uint64_t* values,
                     const Morsel& m) override {
    BuildSlice(m.worker, keys, values, m.begin, m.end);
    rows_consumed_[m.worker] += m.end - m.begin;
  }

  ProgressSnapshot Progress() const override {
    uint64_t rows = 0;
    for (int w = 0; w < rows_consumed_.size(); ++w) rows += rows_consumed_[w];
    return {rows, NumGroups(), DataStructureBytes()};
  }

  Partial ExtractPartialState() override {
    Partial out;
    for (int w = 0; w < rows_consumed_.size(); ++w) {
      out.rows += rows_consumed_[w];
      rows_consumed_[w] = 0;
    }
    // Keys present in several worker tables appear once per table; the
    // absorber's Merge recombines them, so no pre-merge pass is needed.
    out.partials.reserve(NumGroups());
    for (auto& local : locals_) {
      local->ForEach([&out](EncodedKey key, const State& state) {
        out.partials.emplace_back(key, std::move(const_cast<State&>(state)));
      });
      *local = LinearProbingMap<State>(2);
    }
    return out;
  }

  void AbsorbPartialState(Partial&& partial) override {
    LinearProbingMap<State>& local = *locals_[0];
    for (auto& [key, state] : partial.partials) {
      Aggregate::Merge(local.GetOrInsert(key), state);
    }
    for (const auto& [key, value] : partial.records) {
      Aggregate::Update(local.GetOrInsert(key), value);
    }
    rows_consumed_[0] += partial.rows;
  }

  VectorResult Finish() override { return Iterate(); }

  size_t NumGroups() const override {
    // Before the merge this is an upper bound; exact after Iterate().
    size_t total = 0;
    for (const auto& local : locals_) total += local->size();
    return total;
  }

  size_t DataStructureBytes() const override {
    size_t total = 0;
    for (const auto& local : locals_) total += local->MemoryBytes();
    return total;
  }

  void CollectStats(QueryStats* stats) const override {
    stats->Merge(stats_);
    stats->Add(StatCounter::kPartitions, locals_.size());
    for (const auto& local : locals_) {
      stats->Add(StatCounter::kHashEntries, local->size());
      stats->Add(StatCounter::kRehashes, local->rehashes());
      const auto probe = local->ComputeProbeStats();
      stats->Add(StatCounter::kProbeTotal, probe.total_probes);
      stats->MaxOf(StatCounter::kProbeMax, probe.max_probe);
      AddAllocStats(stats, local->AllocatorStats());
    }
  }

 private:
  void BuildSlice(int t, const uint64_t* keys, const uint64_t* values,
                  size_t begin, size_t end) {
    LinearProbingMap<State>& local = *locals_[t];
    if constexpr (Aggregate::kNeedsValues) {
      for (size_t i = begin; i < end; ++i) {
        Aggregate::Update(local.GetOrInsert(keys[i]), values[i]);
      }
    } else {
      for (size_t i = begin; i < end; ++i) {
        Aggregate::Update(local.GetOrInsert(keys[i]), 0);
      }
    }
  }

  /// Folds `from` into `into` and frees the merged-away table eagerly.
  /// Move-assignment releases the old table's slots and its arena chunks
  /// wholesale — one deallocation per partition, not one per entry.
  static void MergeInto(LinearProbingMap<State>& into,
                        LinearProbingMap<State>& from) {
    from.ForEach([&into](EncodedKey key, const State& state) {
      Aggregate::Merge(into.GetOrInsert(key), const_cast<State&>(state));
    });
    from = LinearProbingMap<State>(2);
  }

  void MergeCentral() {
    for (size_t t = 1; t < locals_.size(); ++t) {
      if (locals_[t]->size() > 0) {
        stats_.Add(StatCounter::kMergeRounds, 1);
      }
      MergeInto(*locals_[0], *locals_[t]);
    }
  }

  void MergeTree() {
    // Round r merges table t+stride into table t; the pairs of one round are
    // disjoint, so each round runs in parallel (grain 1). log2(workers)
    // rounds total, versus (workers-1) serial table walks for kCentral.
    Executor executor(exec_);
    for (size_t stride = 1; stride < locals_.size(); stride *= 2) {
      std::vector<std::pair<size_t, size_t>> pairs;
      for (size_t t = 0; t + stride < locals_.size(); t += 2 * stride) {
        pairs.emplace_back(t, t + stride);
      }
      if (pairs.empty()) continue;
      stats_.Add(StatCounter::kMergeRounds, 1);
      executor.ParallelFor(
          pairs.size(),
          [&](const Morsel& m) {
            for (size_t i = m.begin; i < m.end; ++i) {
              MergeInto(*locals_[pairs[i].first], *locals_[pairs[i].second]);
            }
          },
          /*grain=*/1);
    }
  }

  ExecutionContext exec_;
  LocalMergeMode merge_mode_;
  WorkerLocal<uint64_t> rows_consumed_;  ///< Morsel-path rows, per worker.
  std::vector<std::unique_ptr<LinearProbingMap<State>>> locals_;
  QueryStats stats_;  // Merge-subphase timing and merge-round counts.
};

}  // namespace memagg

#endif  // MEMAGG_CORE_LOCAL_PARTITION_AGGREGATOR_H_
