// Thread-local partitioned aggregation (extension).
//
// The paper's Section 5.8/7 frames the key design question for parallel
// aggregation: should threads share one concurrent structure, or work
// independently and merge (Cieslewicz & Ross VLDB'07; Ye et al.'s PLAT)?
// The Table 8 operators answer "share"; this operator implements the
// "independent" strategy so the two can be compared: each worker aggregates
// the morsels it claims into a private linear-probing table (no
// synchronization at all during the build), and the iterate phase merges the
// per-worker tables.
//
// The classic trade-off reproduces directly: with few groups the merge is
// negligible and local tables scale perfectly; with many groups the merge
// re-processes every group once per thread. Works for all aggregate
// categories — holistic states merge by buffer concatenation.

#ifndef MEMAGG_CORE_LOCAL_PARTITION_AGGREGATOR_H_
#define MEMAGG_CORE_LOCAL_PARTITION_AGGREGATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/aggregate.h"
#include "core/concepts.h"
#include "core/operator.h"
#include "core/result.h"
#include "exec/executor.h"
#include "hash/linear_probing_map.h"
#include "obs/query_stats.h"
#include "util/macros.h"

namespace memagg {

/// Independent worker-local tables, merged at iterate time — which is why
/// the aggregate must be mergeable.
template <MergeableAggregatePolicy Aggregate>
class LocalPartitionAggregator final : public VectorAggregator {
 public:
  using State = typename Aggregate::State;

  LocalPartitionAggregator(size_t expected_size, ExecutionContext exec)
      : exec_(exec) {
    const int num_workers = Executor(exec_).num_workers();
    locals_.reserve(static_cast<size_t>(num_workers));
    for (int t = 0; t < num_workers; ++t) {
      locals_.push_back(std::make_unique<LinearProbingMap<State>>(
          expected_size / static_cast<size_t>(num_workers) + 1));
    }
  }

  void Build(const uint64_t* keys, const uint64_t* values,
             size_t n) override {
    // Each worker owns locals_[worker]; a worker folds every morsel it
    // claims into its own table, so no synchronization is needed.
    Executor(exec_).ParallelFor(n, [&](const Morsel& m) {
      BuildSlice(m.worker, keys, values, m.begin, m.end);
    });
  }

  VectorResult Iterate() override {
    // Merge all thread-local tables into the first.
    PhaseTimer merge_timer(&stats_, StatPhase::kMerge);
    LinearProbingMap<State>& merged = *locals_[0];
    for (size_t t = 1; t < locals_.size(); ++t) {
      if (locals_[t]->size() > 0) {
        stats_.Add(StatCounter::kMergeRounds, 1);
      }
      locals_[t]->ForEach([&merged](uint64_t key, const State& state) {
        Aggregate::Merge(merged.GetOrInsert(key), const_cast<State&>(state));
      });
      // Free the merged-away table eagerly. Move-assignment releases the old
      // table's slots and its arena chunks wholesale — one deallocation per
      // partition, not one per entry.
      *locals_[t] = LinearProbingMap<State>(2);
    }
    merge_timer.Stop();
    VectorResult result;
    result.reserve(merged.size());
    merged.ForEach([&result](uint64_t key, const State& state) {
      result.push_back({key, Aggregate::Finalize(const_cast<State&>(state))});
    });
    return result;
  }

  size_t NumGroups() const override {
    // Before the merge this is an upper bound; exact after Iterate().
    size_t total = 0;
    for (const auto& local : locals_) total += local->size();
    return total;
  }

  size_t DataStructureBytes() const override {
    size_t total = 0;
    for (const auto& local : locals_) total += local->MemoryBytes();
    return total;
  }

  void CollectStats(QueryStats* stats) const override {
    stats->Merge(stats_);
    stats->Add(StatCounter::kPartitions, locals_.size());
    for (const auto& local : locals_) {
      stats->Add(StatCounter::kHashEntries, local->size());
      stats->Add(StatCounter::kRehashes, local->rehashes());
      const auto probe = local->ComputeProbeStats();
      stats->Add(StatCounter::kProbeTotal, probe.total_probes);
      stats->MaxOf(StatCounter::kProbeMax, probe.max_probe);
      AddAllocStats(stats, local->AllocatorStats());
    }
  }

 private:
  void BuildSlice(int t, const uint64_t* keys, const uint64_t* values,
                  size_t begin, size_t end) {
    LinearProbingMap<State>& local = *locals_[t];
    if constexpr (Aggregate::kNeedsValues) {
      for (size_t i = begin; i < end; ++i) {
        Aggregate::Update(local.GetOrInsert(keys[i]), values[i]);
      }
    } else {
      for (size_t i = begin; i < end; ++i) {
        Aggregate::Update(local.GetOrInsert(keys[i]), 0);
      }
    }
  }

  ExecutionContext exec_;
  std::vector<std::unique_ptr<LinearProbingMap<State>>> locals_;
  QueryStats stats_;  // Merge-subphase timing and merge-round counts.
};

}  // namespace memagg

#endif  // MEMAGG_CORE_LOCAL_PARTITION_AGGREGATOR_H_
