// The memagg engine: a registry mapping the paper's algorithm labels
// (Table 3 and Table 8) to aggregation operators.
//
// Serial labels (Table 3): ART, Judy, Btree, Ttree, Hash_SC, Hash_LP,
// Hash_Sparse, Hash_Dense, Hash_LC, Introsort, Spreadsort, plus the extra
// sort algorithms evaluated in the microbenchmarks (Quicksort,
// Sort_MSBRadix, Sort_LSBRadix).
//
// Concurrent labels (Table 8): Hash_TBBSC, Hash_LC, Sort_BI, Sort_QSLB,
// plus Sort_SS and Sort_TBB from the parallel sort microbenchmark.

#ifndef MEMAGG_CORE_ENGINE_H_
#define MEMAGG_CORE_ENGINE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/aggregate.h"
#include "core/operator.h"
#include "exec/executor.h"
#include "obs/query_stats.h"

namespace memagg {

/// Which family a label belongs to (paper Dimension 1).
enum class AlgorithmCategory { kHash, kTree, kSort };

/// Category of a known label; aborts on unknown labels.
AlgorithmCategory CategoryOfLabel(const std::string& label);

/// The ten Table 3 labels, in paper order.
const std::vector<std::string>& SerialLabels();

/// The four Table 8 concurrent labels, in paper order.
const std::vector<std::string>& ConcurrentLabels();

/// The tree labels (Q7 / range-search capable).
const std::vector<std::string>& TreeLabels();

/// Labels usable for scalar median (Q6): trees and sorts.
const std::vector<std::string>& ScalarCapableLabels();

/// Creates a vector-aggregation operator for `label` computing `function`.
/// `expected_size` pre-sizes hash tables (pass the record count, per the
/// paper's assumption). `exec` carries the thread budget (an int converts
/// implicitly): num_threads > 1 selects the concurrent variant for
/// concurrent-capable labels (Hash_TBBSC, Hash_LC, Hybrid, Sort_BI,
/// Sort_QSLB, Sort_SS, Sort_TBB and the Hash_P*/Hash_Striped extensions);
/// serial-only labels require num_threads == 1. All parallel operators run
/// on the shared morsel-driven scheduler (src/exec/) — no operator spawns
/// threads of its own.
std::unique_ptr<VectorAggregator> MakeVectorAggregator(
    const std::string& label, AggregateFunction function, size_t expected_size,
    const ExecutionContext& exec = {});

/// Creates a scalar-median (Q6) operator for a tree or sort label.
std::unique_ptr<ScalarAggregator> MakeScalarMedianAggregator(
    const std::string& label, const ExecutionContext& exec = {});

/// A query result paired with the execution statistics of the run that
/// produced it (phase timings, operator counters, morsel accounting — see
/// obs/query_stats.h).
struct VectorQueryExecution {
  VectorResult result;
  QueryStats stats;
};

/// Runs one vector aggregation end to end through the engine registry and
/// returns the result rows next to a QueryStats snapshot: build/iterate
/// phase timings measured here, the operator's own phase splits and
/// structure counters (CollectStats), and — for parallel labels — the
/// morsel/worker accounting recorded by the executor. If `exec.stats` is
/// null a private StatsRegistry sized to `exec.num_threads` is used.
/// `values` may be nullptr for value-less aggregates (COUNT).
VectorQueryExecution ExecuteVectorQuery(const std::string& label,
                                        AggregateFunction function,
                                        const uint64_t* keys,
                                        const uint64_t* values, size_t n,
                                        size_t expected_size,
                                        ExecutionContext exec = {});

}  // namespace memagg

#endif  // MEMAGG_CORE_ENGINE_H_
