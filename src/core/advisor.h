// The paper's Figure 12 decision flow chart as an executable planner.
//
// Given a workload profile (output format, write-once-read-once vs
// write-once-read-many, aggregate category, range condition, prebuilt index,
// thread count) the advisor returns the algorithm label the paper's
// experiments found fastest for that situation.

#ifndef MEMAGG_CORE_ADVISOR_H_
#define MEMAGG_CORE_ADVISOR_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/aggregate.h"
#include "core/query.h"

namespace memagg {

/// Inputs to the Figure 12 decision flow.
struct WorkloadProfile {
  /// Vector (GROUP BY) or scalar output.
  OutputFormat output = OutputFormat::kVector;
  /// Aggregate category (only consulted for vector queries).
  FunctionCategory category = FunctionCategory::kDistributive;
  /// Write-once-read-many: the structure will serve multiple queries.
  bool worm = false;
  /// The query carries a range condition on the group key (Q7-style).
  bool has_range_condition = false;
  /// A suitable index over the keys already exists.
  bool prebuilt_index = false;
  /// Threads available for this query.
  int num_threads = 1;
  /// Effective width of the group key in bits — the KeyCodec's packed width
  /// for composite keys (core/table_exec.h sets this from the codec), or
  /// the key domain's bit width for raw columns. The hash-vs-sort empirical
  /// study (arXiv 2411.13245) shows byte-oriented radix sorts lose their
  /// edge as keys widen: each extra byte is another full distribution pass.
  /// Defaults to 32, the paper's synthetic key domain (cardinality <= 10^7).
  int key_width_bits = 32;
};

/// Returns the recommended algorithm label (as used by MakeVectorAggregator
/// / MakeScalarMedianAggregator) for `profile`, following Figure 12.
std::string RecommendAlgorithm(const WorkloadProfile& profile);

/// Convenience: derives a profile from a Table 1 query descriptor.
WorkloadProfile ProfileForQuery(const Query& query, bool worm = false,
                                bool prebuilt_index = false,
                                int num_threads = 1);

/// Human-readable explanation of the decision path taken for `profile`.
std::string ExplainRecommendation(const WorkloadProfile& profile);

/// Estimates the number of distinct group keys in `keys[0..n)` from a
/// deterministic sample (at most a few thousand probes, so the cost is
/// negligible next to any build). Returns 0 for n == 0; for n > 0 the
/// estimate is clamped to [1, n] (in fact to [distinct-in-sample, n]) and
/// is exact when the input fits in the sample (n <= 4096). The GEE
/// scale-up bounds the ratio error by sqrt(n / sample_size) in either
/// direction — ~16x at n = 10^6 — which is the documented error band.
/// Intended for pre-sizing growable structures
/// (VectorAggregator::ReserveGroups) and the adaptive operator's cost
/// models: an overestimate wastes some table space, an underestimate merely
/// re-enables growth, so a rough scale-up of the sample's distinct count is
/// sufficient.
size_t EstimateGroupCardinality(const uint64_t* keys, size_t n);

}  // namespace memagg

#endif  // MEMAGG_CORE_ADVISOR_H_
