#include "core/groupby.h"

#include <algorithm>

#include "core/advisor.h"
#include "core/engine.h"
#include "core/query.h"
#include "util/macros.h"

namespace memagg {
namespace {

std::string ResolveLabel(AggregateFunction function,
                         const GroupByOptions& options, OutputFormat output) {
  if (options.algorithm != "auto") return options.algorithm;
  WorkloadProfile profile;
  profile.output = output;
  profile.category = CategoryOf(function);
  profile.has_range_condition = options.has_range_condition;
  profile.prebuilt_index = false;
  profile.num_threads = options.num_threads;
  return RecommendAlgorithm(profile);
}

}  // namespace

VectorResult GroupByAggregate(std::span<const uint64_t> keys,
                              std::span<const uint64_t> values,
                              AggregateFunction function,
                              const GroupByOptions& options) {
  MEMAGG_CHECK(values.empty() || values.size() == keys.size());
  MEMAGG_CHECK(!NeedsValueColumn(function) || !values.empty() ||
               keys.empty());
  const std::string label =
      ResolveLabel(function, options, OutputFormat::kVector);
  // Tree recommendations from the range branch are single-threaded.
  const int threads = CategoryOfLabel(label) == AlgorithmCategory::kTree
                          ? 1
                          : options.num_threads;
  auto aggregator =
      MakeVectorAggregator(label, function, keys.size(), threads);
  aggregator->ReserveGroups(
      options.expected_groups != 0
          ? options.expected_groups
          : EstimateGroupCardinality(keys.data(), keys.size()));
  aggregator->Build(keys.data(), values.empty() ? nullptr : values.data(),
                    keys.size());
  if (options.has_range_condition && aggregator->SupportsRange()) {
    return aggregator->IterateRange(options.range_lo, options.range_hi);
  }
  VectorResult result = aggregator->Iterate();
  if (options.has_range_condition) {
    // Hash operator with a range condition: post-filter.
    result.erase(std::remove_if(result.begin(), result.end(),
                                [&options](const GroupResult& row) {
                                  return row.key < options.range_lo ||
                                         row.key > options.range_hi;
                                }),
                 result.end());
  }
  return result;
}

double ScalarAggregate(std::span<const uint64_t> column,
                       AggregateFunction function,
                       const GroupByOptions& options) {
  MEMAGG_CHECK(!column.empty());
  switch (function) {
    case AggregateFunction::kCount:
      return static_cast<double>(column.size());
    case AggregateFunction::kSum: {
      uint64_t sum = 0;
      for (uint64_t v : column) sum += v;
      return static_cast<double>(sum);
    }
    case AggregateFunction::kMin:
      return static_cast<double>(
          *std::min_element(column.begin(), column.end()));
    case AggregateFunction::kMax:
      return static_cast<double>(
          *std::max_element(column.begin(), column.end()));
    case AggregateFunction::kAverage: {
      uint64_t sum = 0;
      for (uint64_t v : column) sum += v;
      return static_cast<double>(sum) / static_cast<double>(column.size());
    }
    case AggregateFunction::kMedian: {
      const std::string label =
          ResolveLabel(function, options, OutputFormat::kScalar);
      auto aggregator =
          MakeScalarMedianAggregator(label, options.num_threads);
      aggregator->Build(column.data(), nullptr, column.size());
      return aggregator->Finalize();
    }
    case AggregateFunction::kMode: {
      // Scalar mode via one global sort-based group.
      std::vector<uint64_t> copy(column.begin(), column.end());
      return ModeAggregate::FinalizeRun(copy.data(), copy.size());
    }
  }
  MEMAGG_CHECK(false);
  return 0.0;
}

}  // namespace memagg
