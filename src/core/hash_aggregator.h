// Hash-based vector aggregation (paper Section 3.2).
//
// Build phase: each key is looked up in the hash table; distributive and
// algebraic aggregates fold the record into the group's state eagerly
// ("early aggregation"), while holistic aggregates buffer every value of the
// group. Iterate phase: walk the table and finalize each group.

#ifndef MEMAGG_CORE_HASH_AGGREGATOR_H_
#define MEMAGG_CORE_HASH_AGGREGATOR_H_

#include <cstddef>
#include <cstdint>
#include <utility>

#include "core/aggregate.h"
#include "core/concepts.h"
#include "core/migratable.h"
#include "core/operator.h"
#include "core/result.h"
#include "obs/query_stats.h"
#include "util/encoded_key.h"
#include "util/macros.h"

namespace memagg {

/// Vector aggregation over any memagg hash map. `MapT` is the map template
/// (LinearProbingMap, ChainingMap, SparseMap, DenseMap, CuckooMap,
/// ConcurrentChainingMap); `Aggregate` is an aggregate policy from
/// core/aggregate.h. The map instantiated at the aggregate's State type
/// must model GroupMap (core/concepts.h).
template <template <typename> class MapT, AggregatePolicy Aggregate>
  requires GroupMap<MapT<typename Aggregate::State>, typename Aggregate::State>
class HashVectorAggregator final : public VectorAggregator,
                                   public MigratableAggregator<Aggregate> {
 public:
  using State = typename Aggregate::State;
  using Partial = PartialAggState<Aggregate>;

  /// `expected_size` pre-sizes the table. The paper assumes only the dataset
  /// size is known (cardinality estimation is unreliable), so callers pass
  /// the record count.
  explicit HashVectorAggregator(size_t expected_size) : map_(expected_size) {}

  void ReserveGroups(size_t expected_groups) override {
    // GroupMap guarantees Reserve, so no feature probe is needed.
    map_.Reserve(expected_groups);
  }

  void Build(const uint64_t* keys, const uint64_t* values,
             size_t n) override {
    if constexpr (Aggregate::kNeedsValues) {
      for (size_t i = 0; i < n; ++i) {
        Aggregate::Update(map_.GetOrInsert(keys[i]), values[i]);
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        Aggregate::Update(map_.GetOrInsert(keys[i]), 0);
      }
    }
  }

  VectorResult Iterate() override {
    VectorResult result;
    result.reserve(map_.size());
    map_.ForEach([&result](EncodedKey key, const State& state) {
      // Holistic finalizers reorder their buffered values in place; the
      // entries are not actually const.
      result.push_back({key, Aggregate::Finalize(const_cast<State&>(state))});
    });
    return result;
  }

  // --- MigratableAggregator (core/migratable.h) -----------------------------
  // Single-worker strategy: the adaptive operator only dispatches to it with
  // one worker, so ConsumeMorsel never runs concurrently with itself.

  void ConsumeMorsel(const uint64_t* keys, const uint64_t* values,
                     const Morsel& m) override {
    Build(keys + m.begin, values == nullptr ? nullptr : values + m.begin,
          m.end - m.begin);
    rows_consumed_ += m.end - m.begin;
  }

  ProgressSnapshot Progress() const override {
    return {rows_consumed_, map_.size(), map_.MemoryBytes()};
  }

  Partial ExtractPartialState() override {
    Partial out;
    out.partials.reserve(map_.size());
    map_.ForEach([&out](EncodedKey key, const State& state) {
      out.partials.emplace_back(key, std::move(const_cast<State&>(state)));
    });
    out.rows = rows_consumed_;
    rows_consumed_ = 0;
    return out;
  }

  void AbsorbPartialState(Partial&& partial) override {
    for (auto& [key, state] : partial.partials) {
      if constexpr (MergeableAggregatePolicy<Aggregate>) {
        Aggregate::Merge(map_.GetOrInsert(key), state);
      } else {
        MEMAGG_CHECK(false && "aggregate has no Merge; cannot absorb partials");
      }
    }
    for (const auto& [key, value] : partial.records) {
      Aggregate::Update(map_.GetOrInsert(key), value);
    }
    rows_consumed_ += partial.rows;
  }

  VectorResult Finish() override { return Iterate(); }

  size_t NumGroups() const override { return map_.size(); }

  size_t DataStructureBytes() const override { return map_.MemoryBytes(); }

  void CollectStats(QueryStats* stats) const override {
    stats->Add(StatCounter::kHashEntries, map_.size());
    if constexpr (requires { map_.rehashes(); }) {
      stats->Add(StatCounter::kRehashes, map_.rehashes());
    }
    if constexpr (requires { map_.kicks(); }) {
      stats->Add(StatCounter::kCuckooKicks, map_.kicks());
    }
    if constexpr (requires { map_.ComputeProbeStats(); }) {
      const auto probe = map_.ComputeProbeStats();
      stats->Add(StatCounter::kProbeTotal, probe.total_probes);
      stats->MaxOf(StatCounter::kProbeMax, probe.max_probe);
    }
    if constexpr (requires { map_.ComputeChainStats(); }) {
      stats->MaxOf(StatCounter::kChainMax, map_.ComputeChainStats().max_chain);
    }
    if constexpr (requires { map_.rehashes_saved(); }) {
      stats->Add(StatCounter::kRehashesSaved, map_.rehashes_saved());
    }
    if constexpr (requires { map_.AllocatorStats(); }) {
      AddAllocStats(stats, map_.AllocatorStats());
    }
  }

  /// Direct access for tests.
  MapT<State>& map() { return map_; }

 private:
  MapT<State> map_;
  uint64_t rows_consumed_ = 0;  ///< Morsel-path rows (Progress reporting).
};

}  // namespace memagg

#endif  // MEMAGG_CORE_HASH_AGGREGATOR_H_
