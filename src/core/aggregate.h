// Aggregate-function framework (paper Section 2).
//
// Functions are classified into the three categories of Gray et al.'s data
// cube taxonomy:
//   * distributive (Count, Sum, Min, Max) — computable over partitions and
//     merged, so operators may aggregate eagerly during the build phase;
//   * algebraic (Average) — a fixed-size combination of distributive
//     aggregates (Sum + Count);
//   * holistic (Median, Mode) — need every value of a group together, so
//     hash/tree operators must buffer all values per group and sort-based
//     operators aggregate over contiguous runs.
//
// Each aggregate is a policy struct with a per-group State, an Update step
// applied during the build phase, and a Finalize step applied during the
// iterate phase. The aggregation operators are templated on these policies.

#ifndef MEMAGG_CORE_AGGREGATE_H_
#define MEMAGG_CORE_AGGREGATE_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "util/macros.h"

namespace memagg {

/// Gray et al.'s aggregate-function taxonomy.
enum class FunctionCategory { kDistributive, kAlgebraic, kHolistic };

/// The aggregate functions exercised by the Table 1 queries, plus the other
/// common distributive functions.
enum class AggregateFunction { kCount, kSum, kMin, kMax, kAverage, kMedian,
                               kMode };

/// Category of `fn` per the taxonomy above.
inline FunctionCategory CategoryOf(AggregateFunction fn) {
  switch (fn) {
    case AggregateFunction::kCount:
    case AggregateFunction::kSum:
    case AggregateFunction::kMin:
    case AggregateFunction::kMax:
      return FunctionCategory::kDistributive;
    case AggregateFunction::kAverage:
      return FunctionCategory::kAlgebraic;
    case AggregateFunction::kMedian:
    case AggregateFunction::kMode:
      return FunctionCategory::kHolistic;
  }
  MEMAGG_CHECK(false);
  return FunctionCategory::kDistributive;
}

/// True if `fn` aggregates a measure column (COUNT(*) does not).
inline bool NeedsValueColumn(AggregateFunction fn) {
  return fn != AggregateFunction::kCount;
}

inline std::string AggregateFunctionName(AggregateFunction fn) {
  switch (fn) {
    case AggregateFunction::kCount:
      return "COUNT";
    case AggregateFunction::kSum:
      return "SUM";
    case AggregateFunction::kMin:
      return "MIN";
    case AggregateFunction::kMax:
      return "MAX";
    case AggregateFunction::kAverage:
      return "AVG";
    case AggregateFunction::kMedian:
      return "MEDIAN";
    case AggregateFunction::kMode:
      return "MODE";
  }
  MEMAGG_CHECK(false);
  return "";
}

// --- Aggregate policies -----------------------------------------------------

/// COUNT(*): distributive, ignores the value column.
struct CountAggregate {
  using State = uint64_t;
  static constexpr AggregateFunction kFunction = AggregateFunction::kCount;
  static constexpr bool kNeedsValues = false;
  static void Update(State& state, uint64_t /*value*/) { ++state; }
  static void Merge(State& into, const State& from) { into += from; }
  static double Finalize(const State& state) {
    return static_cast<double>(state);
  }
};

/// SUM(value): distributive.
struct SumAggregate {
  using State = uint64_t;
  static constexpr AggregateFunction kFunction = AggregateFunction::kSum;
  static constexpr bool kNeedsValues = true;
  static void Update(State& state, uint64_t value) { state += value; }
  static void Merge(State& into, const State& from) { into += from; }
  static double Finalize(const State& state) {
    return static_cast<double>(state);
  }
};

/// MIN(value): distributive.
struct MinAggregate {
  struct State {
    uint64_t min = ~0ULL;
  };
  static constexpr AggregateFunction kFunction = AggregateFunction::kMin;
  static constexpr bool kNeedsValues = true;
  static void Update(State& state, uint64_t value) {
    state.min = std::min(state.min, value);
  }
  static void Merge(State& into, const State& from) {
    into.min = std::min(into.min, from.min);
  }
  static double Finalize(const State& state) {
    return static_cast<double>(state.min);
  }
};

/// MAX(value): distributive.
struct MaxAggregate {
  struct State {
    uint64_t max = 0;
  };
  static constexpr AggregateFunction kFunction = AggregateFunction::kMax;
  static constexpr bool kNeedsValues = true;
  static void Update(State& state, uint64_t value) {
    state.max = std::max(state.max, value);
  }
  static void Merge(State& into, const State& from) {
    into.max = std::max(into.max, from.max);
  }
  static double Finalize(const State& state) {
    return static_cast<double>(state.max);
  }
};

/// AVG(value): algebraic — the composition of SUM and COUNT (paper Section 2).
struct AverageAggregate {
  struct State {
    uint64_t sum = 0;
    uint64_t count = 0;
  };
  static constexpr AggregateFunction kFunction = AggregateFunction::kAverage;
  static constexpr bool kNeedsValues = true;
  static void Update(State& state, uint64_t value) {
    state.sum += value;
    ++state.count;
  }
  static void Merge(State& into, const State& from) {
    into.sum += from.sum;
    into.count += from.count;
  }
  static double Finalize(const State& state) {
    return state.count == 0
               ? 0.0
               : static_cast<double>(state.sum) /
                     static_cast<double>(state.count);
  }
};

/// Median of a mutable run of values: the canonical even/odd definition
/// (mean of the two middle values for even counts). Reorders `values`.
inline double MedianOfRun(uint64_t* values, size_t count) {
  MEMAGG_CHECK(count > 0);
  const size_t mid = count / 2;
  std::nth_element(values, values + mid, values + count);
  const uint64_t upper = values[mid];
  if (count % 2 == 1) return static_cast<double>(upper);
  const uint64_t lower = *std::max_element(values, values + mid);
  return (static_cast<double>(lower) + static_cast<double>(upper)) / 2.0;
}

/// MEDIAN(value): holistic — hash/tree operators must buffer every value of
/// the group; sort operators evaluate it over the group's contiguous run.
struct MedianAggregate {
  using State = std::vector<uint64_t>;
  static constexpr AggregateFunction kFunction = AggregateFunction::kMedian;
  static constexpr bool kNeedsValues = true;
  static void Update(State& state, uint64_t value) { state.push_back(value); }
  static void Merge(State& into, State& from) {
    into.insert(into.end(), from.begin(), from.end());
  }
  static double Finalize(State& state) {
    return MedianOfRun(state.data(), state.size());
  }
  /// Sort-based fast path: aggregate directly over the group's run.
  static double FinalizeRun(uint64_t* values, size_t count) {
    return MedianOfRun(values, count);
  }
};

/// P-th percentile of a mutable run of values (nearest-rank definition);
/// P = 50 matches MedianOfRun for odd counts. Reorders `values`.
inline double PercentileOfRun(uint64_t* values, size_t count, int percent) {
  MEMAGG_CHECK(count > 0);
  MEMAGG_CHECK(percent >= 0 && percent <= 100);
  size_t rank = static_cast<size_t>(
      (static_cast<unsigned __int128>(count) * percent + 99) / 100);
  if (rank > 0) --rank;  // Nearest-rank is 1-based; clamp to [0, count).
  std::nth_element(values, values + rank, values + count);
  return static_cast<double>(values[rank]);
}

/// QUANTILE(value, P): holistic, nearest-rank P-th percentile. A
/// compile-time-parameterized generalization of MEDIAN (the paper lists
/// Quantile with Median and Rank as the canonical holistic functions,
/// Section 2). Use directly with the operator templates, e.g.
/// HashVectorAggregator<LinearProbingMap, QuantileAggregate<90>>.
template <int P>
struct QuantileAggregate {
  static_assert(P >= 0 && P <= 100, "percentile must be within [0, 100]");
  using State = std::vector<uint64_t>;
  static constexpr bool kNeedsValues = true;
  static void Update(State& state, uint64_t value) { state.push_back(value); }
  static void Merge(State& into, State& from) {
    into.insert(into.end(), from.begin(), from.end());
  }
  static double Finalize(State& state) {
    return PercentileOfRun(state.data(), state.size(), P);
  }
  static double FinalizeRun(uint64_t* values, size_t count) {
    return PercentileOfRun(values, count, P);
  }
};

/// MODE(value): holistic — most frequent value; ties break to the smallest.
struct ModeAggregate {
  using State = std::vector<uint64_t>;
  static constexpr AggregateFunction kFunction = AggregateFunction::kMode;
  static constexpr bool kNeedsValues = true;
  static void Update(State& state, uint64_t value) { state.push_back(value); }
  static void Merge(State& into, State& from) {
    into.insert(into.end(), from.begin(), from.end());
  }
  static double Finalize(State& state) {
    return FinalizeRun(state.data(), state.size());
  }
  static double FinalizeRun(uint64_t* values, size_t count) {
    MEMAGG_CHECK(count > 0);
    std::sort(values, values + count);
    uint64_t best = values[0];
    size_t best_run = 1;
    size_t run = 1;
    for (size_t i = 1; i < count; ++i) {
      run = values[i] == values[i - 1] ? run + 1 : 1;
      if (run > best_run) {
        best_run = run;
        best = values[i];
      }
    }
    return static_cast<double>(best);
  }
};

}  // namespace memagg

#endif  // MEMAGG_CORE_AGGREGATE_H_
