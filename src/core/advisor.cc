#include "core/advisor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

namespace memagg {

std::string RecommendAlgorithm(const WorkloadProfile& profile) {
  // Figure 12, left branch: scalar output.
  if (profile.output == OutputFormat::kScalar) {
    // WORO workload: sort and read the middle once — Spreadsort was the
    // overall fastest (Section 5.7). A reusable structure favors Judy.
    return profile.worm ? "Judy" : "Spreadsort";
  }

  // Right branch: vector output.
  if (profile.category == FunctionCategory::kHolistic) {
    // Holistic aggregates: sorting wins (Sections 5.2, 5.8, 6). Which sort
    // depends on key width: Spreadsort's byte-oriented passes pay per key
    // byte, so past half the word the comparison sort takes over
    // (arXiv 2411.13245 measures the same crossover for radix kernels).
    if (profile.num_threads > 1) return "Sort_BI";
    return profile.key_width_bits > 32 ? "Introsort" : "Spreadsort";
  }

  // Distributive / algebraic.
  if (profile.has_range_condition) {
    // Range search: Btree if the index is prebuilt (leaf links make the
    // scan cheap); otherwise ART, whose build time dominates (Section 5.6).
    return profile.prebuilt_index ? "Btree" : "ART";
  }
  return profile.num_threads > 1 ? "Hash_TBBSC" : "Hash_LP";
}

WorkloadProfile ProfileForQuery(const Query& query, bool worm,
                                bool prebuilt_index, int num_threads) {
  WorkloadProfile profile;
  profile.output = query.output;
  profile.category = query.category();
  profile.worm = worm;
  profile.has_range_condition = query.has_range_condition;
  profile.prebuilt_index = prebuilt_index;
  profile.num_threads = num_threads;
  return profile;
}

std::string ExplainRecommendation(const WorkloadProfile& profile) {
  std::string explanation = "output=";
  explanation +=
      profile.output == OutputFormat::kScalar ? "scalar" : "vector";
  if (profile.output == OutputFormat::kScalar) {
    explanation += profile.worm ? " -> WORM workload -> reusable index"
                                : " -> WORO workload -> one-shot sort";
  } else {
    switch (profile.category) {
      case FunctionCategory::kHolistic:
        explanation += " -> holistic aggregate -> sort-based";
        if (profile.num_threads <= 1) {
          explanation += profile.key_width_bits > 32
                             ? " (wide key: comparison sort)"
                             : " (narrow key: byte-radix sort)";
        }
        break;
      case FunctionCategory::kAlgebraic:
      case FunctionCategory::kDistributive:
        explanation += " -> distributive/algebraic";
        if (profile.has_range_condition) {
          explanation += " -> range search -> tree-based";
          explanation += profile.prebuilt_index ? " (index prebuilt)"
                                                : " (index must be built)";
        } else {
          explanation += " -> hash-based";
        }
        break;
    }
  }
  if (profile.num_threads > 1) explanation += " (multithreaded)";
  explanation += " => " + RecommendAlgorithm(profile);
  return explanation;
}

size_t EstimateGroupCardinality(const uint64_t* keys, size_t n) {
  if (n == 0) return 0;
  constexpr size_t kSampleSize = 4096;
  if (n <= kSampleSize) {
    // Small input: count distinct keys exactly.
    std::unordered_map<uint64_t, uint32_t> counts;
    counts.reserve(n * 2);
    for (size_t i = 0; i < n; ++i) ++counts[keys[i]];
    return counts.size();
  }
  // Strided deterministic sample of exactly kSampleSize rows, then the GEE
  // estimator (Charikar et al.): keys seen once in the sample are scaled by
  // sqrt(n/r) — they are the evidence for unseen groups — while repeated
  // keys count once.
  //
  // The stride is nudged to be coprime with n and walked with mod-n
  // wraparound: the naive stride n/kSampleSize resonates with cyclic key
  // layouts (keys[i] = i mod C with gcd(stride, C) > 1 only ever visits a
  // fraction of the residues and collapses the estimate). A coprime stride
  // makes the walk a full cycle through [0, n), so every position — hence
  // every residue class of any period — is reachable and the kSampleSize
  // probe positions are distinct.
  size_t stride = n / kSampleSize;
  while (std::gcd(stride, n) != 1) ++stride;
  std::unordered_map<uint64_t, uint32_t> counts;
  counts.reserve(kSampleSize * 2);
  size_t sampled = 0;
  size_t index = 0;
  for (size_t s = 0; s < kSampleSize; ++s) {
    ++counts[keys[index]];
    ++sampled;
    index += stride;
    if (index >= n) index -= n;
  }
  size_t singletons = 0;
  for (const auto& [key, count] : counts) {
    if (count == 1) ++singletons;
  }
  const double scale =
      std::sqrt(static_cast<double>(n) / static_cast<double>(sampled));
  const double estimate =
      scale * static_cast<double>(singletons) +
      static_cast<double>(counts.size() - singletons);
  const size_t distinct_in_sample = counts.size();
  return std::clamp(static_cast<size_t>(estimate), distinct_in_sample, n);
}

}  // namespace memagg
