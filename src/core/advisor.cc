#include "core/advisor.h"

namespace memagg {

std::string RecommendAlgorithm(const WorkloadProfile& profile) {
  // Figure 12, left branch: scalar output.
  if (profile.output == OutputFormat::kScalar) {
    // WORO workload: sort and read the middle once — Spreadsort was the
    // overall fastest (Section 5.7). A reusable structure favors Judy.
    return profile.worm ? "Judy" : "Spreadsort";
  }

  // Right branch: vector output.
  if (profile.category == FunctionCategory::kHolistic) {
    // Holistic aggregates: sorting wins (Sections 5.2, 5.8, 6).
    return profile.num_threads > 1 ? "Sort_BI" : "Spreadsort";
  }

  // Distributive / algebraic.
  if (profile.has_range_condition) {
    // Range search: Btree if the index is prebuilt (leaf links make the
    // scan cheap); otherwise ART, whose build time dominates (Section 5.6).
    return profile.prebuilt_index ? "Btree" : "ART";
  }
  return profile.num_threads > 1 ? "Hash_TBBSC" : "Hash_LP";
}

WorkloadProfile ProfileForQuery(const Query& query, bool worm,
                                bool prebuilt_index, int num_threads) {
  WorkloadProfile profile;
  profile.output = query.output;
  profile.category = query.category();
  profile.worm = worm;
  profile.has_range_condition = query.has_range_condition;
  profile.prebuilt_index = prebuilt_index;
  profile.num_threads = num_threads;
  return profile;
}

std::string ExplainRecommendation(const WorkloadProfile& profile) {
  std::string explanation = "output=";
  explanation +=
      profile.output == OutputFormat::kScalar ? "scalar" : "vector";
  if (profile.output == OutputFormat::kScalar) {
    explanation += profile.worm ? " -> WORM workload -> reusable index"
                                : " -> WORO workload -> one-shot sort";
  } else {
    switch (profile.category) {
      case FunctionCategory::kHolistic:
        explanation += " -> holistic aggregate -> sort-based";
        break;
      case FunctionCategory::kAlgebraic:
      case FunctionCategory::kDistributive:
        explanation += " -> distributive/algebraic";
        if (profile.has_range_condition) {
          explanation += " -> range search -> tree-based";
          explanation += profile.prebuilt_index ? " (index prebuilt)"
                                                : " (index must be built)";
        } else {
          explanation += " -> hash-based";
        }
        break;
    }
  }
  if (profile.num_threads > 1) explanation += " (multithreaded)";
  explanation += " => " + RecommendAlgorithm(profile);
  return explanation;
}

}  // namespace memagg
