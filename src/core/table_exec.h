// Typed execution front-end: declarative queries over columnar Tables.
//
// The engine's operator families all consume one fixed-width EncodedKey
// column plus an optional uint64_t measure column (core/engine.h). This
// layer is the bridge from real workload shapes to that surface:
//
//   TableQuery q;
//   q.group_by = {"l_returnflag", "l_linestatus"};
//   q.aggregates = {{AggregateFunction::kSum, "l_quantity", "sum_qty"},
//                   {AggregateFunction::kCount, "", "count_order"}};
//   TableQueryResult r = ExecuteTableQuery(table, q, "Hash_LP");
//
// Execution plan:
//   1. optional row filter (filter_column <= filter_max) selects row ids;
//   2. the group-by columns are packed into EncodedKeys by a KeyCodec —
//      PackedKeyCodec when the composite fits 63 bits, DictKeyCodec
//      otherwise (data/key_codec.h);
//   3. an optional Q7-style range on the leading key column narrows the
//      rows via the codec's contiguous encoded range (order-preserving
//      codecs only — aborts loudly otherwise);
//   4. one ExecuteVectorQuery per aggregate runs over the shared key
//      column (families, threading, and the adaptive operator all work
//      unchanged — they never learn the key was composite);
//   5. per-aggregate results are aligned by encoded key, sorted into
//      canonical group order, and decoded back to column values.
//
// The label may be "auto": the advisor picks it from the query shape and
// the codec's key width (core/advisor.h).
//
// Measure columns must be kU64 — aggregate states stay integer-exact, which
// is what makes golden-file validation byte-stable across every family and
// merge order (see data/lineitem.h).

#ifndef MEMAGG_CORE_TABLE_EXEC_H_
#define MEMAGG_CORE_TABLE_EXEC_H_

#include <string>
#include <vector>

#include "core/aggregate.h"
#include "core/concepts.h"
#include "data/key_codec.h"
#include "data/table.h"
#include "exec/executor.h"
#include "obs/query_stats.h"
#include "util/encoded_key.h"

namespace memagg {

/// One aggregate of a TableQuery: AGG(column) AS output_name.
struct AggregateSpec {
  AggregateFunction function = AggregateFunction::kCount;
  /// Measure column (must be kU64); ignored by COUNT (use "").
  std::string column;
  /// Result column name; defaults to "AGG(column)" when empty.
  std::string output_name;
};

/// A declarative aggregation query over a Table: multi-column GROUP BY,
/// several aggregates, an optional row filter, and an optional Q7-style
/// range over the leading group-by column.
struct TableQuery {
  std::vector<std::string> group_by;
  std::vector<AggregateSpec> aggregates;

  /// Row filter: keep rows with filter_column <= filter_max (the TPC-H Q1
  /// shipdate predicate shape). filter_column must be kU64.
  bool has_filter = false;
  std::string filter_column;
  uint64_t filter_max = 0;

  /// Range condition on the LEADING group-by column (inclusive bounds in
  /// the column's own domain). Requires an order-preserving codec: packed,
  /// with sorted string dictionaries.
  bool has_key_range = false;
  KeyFieldValue key_range_lo;
  KeyFieldValue key_range_hi;
};

/// Result rows in canonical group order (natural multi-column order), with
/// decoded keys and one output column per aggregate.
struct TableQueryResult {
  /// group_keys[g] is the decoded key of output row g, one KeyFieldValue
  /// per group-by column. string_views point into the source Table.
  std::vector<DecodedKey> group_keys;
  std::vector<std::string> aggregate_names;
  /// aggregate_columns[a][g]: value of aggregate a for output row g.
  std::vector<std::vector<double>> aggregate_columns;

  /// The label that actually ran ("auto" resolved).
  std::string label;
  /// Codec facts, surfaced for cost-model studies and the bench harness.
  int key_width_bits = 0;
  bool order_preserving = false;
  /// Rows that survived filtering and were fed to the operators.
  size_t rows_scanned = 0;

  QueryStats stats;
};

/// Decodes an encoded group-key column back into per-column values.
template <TableKeyCodec Codec>
std::vector<DecodedKey> DecodeKeyColumn(const Codec& codec,
                                        const std::vector<EncodedKey>& keys) {
  std::vector<DecodedKey> decoded;
  decoded.reserve(keys.size());
  for (const EncodedKey key : keys) decoded.push_back(codec.Decode(key));
  return decoded;
}

/// Bytes of column storage `query` touches in `table` (group-by, measure,
/// and filter columns) — the query's input working set, for cost models and
/// bench reports.
template <ColumnarTable T>
size_t QueryFootprintBytes(const T& table, const TableQuery& query) {
  size_t bytes = 0;
  for (const std::string& name : query.group_by) {
    bytes += table.ColumnAt(table.ColumnIndex(name)).MemoryBytes();
  }
  for (const AggregateSpec& spec : query.aggregates) {
    if (!NeedsValueColumn(spec.function)) continue;
    bytes += table.ColumnAt(table.ColumnIndex(spec.column)).MemoryBytes();
  }
  if (query.has_filter) {
    bytes += table.ColumnAt(table.ColumnIndex(query.filter_column))
                 .MemoryBytes();
  }
  return bytes;
}

/// The most demanding Gray-taxonomy category across the query's aggregates
/// (holistic > algebraic > distributive) — what the advisor plans for.
FunctionCategory QueryCategory(const TableQuery& query);

/// Runs `query` end to end through the engine. `label` is any
/// MakeVectorAggregator label, or "auto" for the advisor's pick. Aborts
/// loudly on malformed queries (unknown columns, non-u64 measures, a range
/// condition without an order-preserving codec).
TableQueryResult ExecuteTableQuery(const Table& table, const TableQuery& query,
                                   const std::string& label,
                                   ExecutionContext exec = {});

}  // namespace memagg

#endif  // MEMAGG_CORE_TABLE_EXEC_H_
