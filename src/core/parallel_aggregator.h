// Multithreaded vector aggregation (paper Section 5.8).
//
// The paper's three concurrency requirements for a shared data structure:
// thread-safe insert AND update (not just put/get), scaling with threads,
// and full iteration. Two operator families qualify:
//
//   * concurrent hash tables — all threads build one shared table.
//     Hash_TBBSC updates group state with atomics / per-group locks (the
//     analogue of the paper storing a tbb::concurrent_vector per group,
//     including its synchronization overhead on Q3); Hash_LC applies updates
//     through the upsert callback, which runs under the table's own bucket
//     locks (libcuckoo's user-defined upsert, which the paper calls out as
//     the feature that avoids TBB's Q3 overhead).
//
//   * parallel sorts — SortVectorAggregator already handles these: pass a
//     parallel sorter (BlockIndirectSorter / ParallelQuicksortSorter) from
//     core/sorters.h. The iterate scan is sequential; sorting dominates.

#ifndef MEMAGG_CORE_PARALLEL_AGGREGATOR_H_
#define MEMAGG_CORE_PARALLEL_AGGREGATOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/aggregate.h"
#include "core/concepts.h"
#include "core/migratable.h"
#include "core/operator.h"
#include "core/result.h"
#include "exec/executor.h"
#include "hash/concurrent_chaining_map.h"
#include "hash/cuckoo_map.h"
#include "hash/linear_probing_map.h"
#include "hash/striped_map.h"
#include "mem/worker_arenas.h"
#include "obs/query_stats.h"
#include "util/encoded_key.h"
#include "util/macros.h"
#include "util/spinlock.h"
#include "util/thread_annotations.h"

namespace memagg {

// --- Concurrent aggregate states for Hash_TBBSC ----------------------------

/// COUNT state updated with a relaxed atomic increment.
struct ConcurrentCountAggregate {
  struct State {
    std::atomic<uint64_t> count{0};
  };
  static constexpr bool kNeedsValues = false;
  static void Update(State& state, uint64_t /*value*/) {
    state.count.fetch_add(1, std::memory_order_relaxed);
  }
  static double Finalize(const State& state) {
    return static_cast<double>(state.count.load(std::memory_order_relaxed));
  }
};

/// AVG state updated with relaxed atomic adds.
struct ConcurrentAverageAggregate {
  struct State {
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> count{0};
  };
  static constexpr bool kNeedsValues = true;
  static void Update(State& state, uint64_t value) {
    state.sum.fetch_add(value, std::memory_order_relaxed);
    state.count.fetch_add(1, std::memory_order_relaxed);
  }
  static double Finalize(const State& state) {
    const uint64_t count = state.count.load(std::memory_order_relaxed);
    if (count == 0) return 0.0;
    return static_cast<double>(state.sum.load(std::memory_order_relaxed)) /
           static_cast<double>(count);
  }
};

/// SUM state updated with a relaxed atomic add.
struct ConcurrentSumAggregate {
  struct State {
    std::atomic<uint64_t> sum{0};
  };
  static constexpr bool kNeedsValues = true;
  static void Update(State& state, uint64_t value) {
    state.sum.fetch_add(value, std::memory_order_relaxed);
  }
  static double Finalize(const State& state) {
    return static_cast<double>(state.sum.load(std::memory_order_relaxed));
  }
};

/// MIN state maintained with a compare-exchange loop.
struct ConcurrentMinAggregate {
  struct State {
    std::atomic<uint64_t> min{~0ULL};
  };
  static constexpr bool kNeedsValues = true;
  static void Update(State& state, uint64_t value) {
    uint64_t current = state.min.load(std::memory_order_relaxed);
    while (value < current &&
           !state.min.compare_exchange_weak(current, value,
                                            std::memory_order_relaxed)) {
    }
  }
  static double Finalize(const State& state) {
    return static_cast<double>(state.min.load(std::memory_order_relaxed));
  }
};

/// MAX state maintained with a compare-exchange loop.
struct ConcurrentMaxAggregate {
  struct State {
    std::atomic<uint64_t> max{0};
  };
  static constexpr bool kNeedsValues = true;
  static void Update(State& state, uint64_t value) {
    uint64_t current = state.max.load(std::memory_order_relaxed);
    while (value > current &&
           !state.max.compare_exchange_weak(current, value,
                                            std::memory_order_relaxed)) {
    }
  }
  static double Finalize(const State& state) {
    return static_cast<double>(state.max.load(std::memory_order_relaxed));
  }
};

/// MEDIAN state: a lock-guarded per-group buffer — the analogue of the
/// paper's tbb::concurrent_vector value type, including the synchronization
/// and fragmentation overhead it attributes to Hash_TBBSC on Q3.
struct ConcurrentMedianAggregate {
  struct State {
    SpinLock lock{LockRank::kAggregateState};
    std::vector<uint64_t> values GUARDED_BY(lock);
  };
  static constexpr bool kNeedsValues = true;
  static void Update(State& state, uint64_t value) {
    SpinLockGuard guard(state.lock);
    state.values.push_back(value);
  }
  static double Finalize(State& state) {
    // Finalize runs after the parallel build; the uncontended guard keeps
    // the buffer's locking protocol uniform for the analysis.
    SpinLockGuard guard(state.lock);
    return MedianOfRun(state.values.data(), state.values.size());
  }
};

/// MODE state: a lock-guarded per-group buffer, finalized like ModeAggregate.
struct ConcurrentModeAggregate {
  struct State {
    SpinLock lock{LockRank::kAggregateState};
    std::vector<uint64_t> values GUARDED_BY(lock);
  };
  static constexpr bool kNeedsValues = true;
  static void Update(State& state, uint64_t value) {
    SpinLockGuard guard(state.lock);
    state.values.push_back(value);
  }
  static double Finalize(State& state) {
    SpinLockGuard guard(state.lock);
    return ModeAggregate::FinalizeRun(state.values.data(),
                                      state.values.size());
  }
};

/// Maps a serial aggregate policy to its Hash_TBBSC concurrent counterpart.
template <AggregatePolicy Aggregate>
struct ConcurrentAggregateFor;
template <>
struct ConcurrentAggregateFor<CountAggregate> {
  using type = ConcurrentCountAggregate;
};
template <>
struct ConcurrentAggregateFor<SumAggregate> {
  using type = ConcurrentSumAggregate;
};
template <>
struct ConcurrentAggregateFor<MinAggregate> {
  using type = ConcurrentMinAggregate;
};
template <>
struct ConcurrentAggregateFor<MaxAggregate> {
  using type = ConcurrentMaxAggregate;
};
template <>
struct ConcurrentAggregateFor<AverageAggregate> {
  using type = ConcurrentAverageAggregate;
};
template <>
struct ConcurrentAggregateFor<MedianAggregate> {
  using type = ConcurrentMedianAggregate;
};
template <>
struct ConcurrentAggregateFor<ModeAggregate> {
  using type = ConcurrentModeAggregate;
};

/// Hash_TBBSC-style parallel aggregation: all threads share one
/// ConcurrentChainingMap; group states synchronize themselves. Nodes are
/// allocated from the claiming worker's arena (one pool handle per worker
/// slot), so the parallel build never touches the global heap: workers that
/// lose an insert race recycle the node through their own freelist.
template <AggregatePolicy ConcurrentAggregate>
class TbbStyleParallelAggregator final : public VectorAggregator {
 public:
  using State = typename ConcurrentAggregate::State;
  using NodeAlloc = typename ConcurrentChainingMap<State>::Alloc;
  static_assert(ConcurrentGroupMap<ConcurrentChainingMap<State>, State>);

  /// Borrows the context's per-worker arenas when they cover the thread
  /// budget; otherwise owns a private pool so direct construction (tests,
  /// benches) works without an engine.
  TbbStyleParallelAggregator(size_t expected_size, ExecutionContext exec)
      : exec_(exec),
        owned_arenas_(exec.arenas != nullptr &&
                              exec.arenas->num_workers() >= exec.num_threads
                          ? nullptr
                          : std::make_unique<WorkerArenas>(exec.num_threads)),
        arenas_(owned_arenas_ != nullptr ? owned_arenas_.get() : exec.arenas),
        lease_(arenas_->Acquire()),
        pools_(exec.num_threads),
        map_(expected_size) {
    for (int w = 0; w < pools_.size(); ++w) {
      pools_[w].Attach(&arenas_->ForWorker(w));
    }
  }

  void Build(const uint64_t* keys, const uint64_t* values,
             size_t n) override {
    Executor(exec_).ParallelFor(n, [&](const Morsel& m) {
      NodeAlloc& pool = pools_[m.worker];
      for (size_t i = m.begin; i < m.end; ++i) {
        ConcurrentAggregate::Update(
            map_.GetOrInsert(keys[i], pool),
            ConcurrentAggregate::kNeedsValues ? values[i] : 0);
      }
    });
  }

  VectorResult Iterate() override {
    VectorResult result;
    result.reserve(map_.size());
    map_.ForEach([&result](EncodedKey key, const State& state) {
      result.push_back(
          {key, ConcurrentAggregate::Finalize(const_cast<State&>(state))});
    });
    return result;
  }

  size_t NumGroups() const override { return map_.size(); }

  size_t DataStructureBytes() const override { return map_.MemoryBytes(); }

  void CollectStats(QueryStats* stats) const override {
    stats->Add(StatCounter::kHashEntries, map_.size());
    // Pool handles report their freelist traffic; arena backing is counted
    // here only when this operator owns it (borrowed pools belong to the
    // context, which reports them once for the whole query).
    for (int w = 0; w < pools_.size(); ++w) {
      AddAllocStats(stats, pools_[w].Stats());
    }
    if (owned_arenas_ != nullptr) AddAllocStats(stats, owned_arenas_->Stats());
  }

 private:
  ExecutionContext exec_;
  std::unique_ptr<WorkerArenas> owned_arenas_;
  WorkerArenas* arenas_;
  // Declared between arenas_ and the node-holding members: reverse
  // destruction releases the lease only after map_ and pools_ have torn
  // down, so a context pool cannot be ResetAll()'d out from under them.
  WorkerArenas::Lease lease_;
  WorkerLocal<NodeAlloc> pools_;
  // Declared last: the map's destructor runs node destructors while the
  // arenas holding those nodes are still alive.
  ConcurrentChainingMap<State> map_;
};

/// Hash_LC-style parallel aggregation: updates run inside CuckooMap::Upsert
/// under the table's bucket locks, so plain (non-atomic) aggregate policies
/// from core/aggregate.h are used directly.
template <AggregatePolicy Aggregate>
class CuckooParallelAggregator final : public VectorAggregator {
 public:
  using State = typename Aggregate::State;
  static_assert(ConcurrentGroupMap<CuckooMap<State>, State>);

  CuckooParallelAggregator(size_t expected_size, ExecutionContext exec)
      : map_(expected_size), exec_(exec) {}

  void Build(const uint64_t* keys, const uint64_t* values,
             size_t n) override {
    Executor(exec_).ParallelFor(n, [&](const Morsel& m) {
      for (size_t i = m.begin; i < m.end; ++i) {
        const uint64_t value = Aggregate::kNeedsValues ? values[i] : 0;
        map_.Upsert(keys[i],
                    [value](State& state) { Aggregate::Update(state, value); });
      }
    });
  }

  VectorResult Iterate() override {
    VectorResult result;
    result.reserve(map_.size());
    map_.ForEach([&result](EncodedKey key, const State& state) {
      result.push_back({key, Aggregate::Finalize(const_cast<State&>(state))});
    });
    return result;
  }

  size_t NumGroups() const override { return map_.size(); }

  size_t DataStructureBytes() const override { return map_.MemoryBytes(); }

  void CollectStats(QueryStats* stats) const override {
    stats->Add(StatCounter::kHashEntries, map_.size());
    stats->Add(StatCounter::kCuckooKicks, map_.kicks());
  }

 private:
  CuckooMap<State> map_;
  ExecutionContext exec_;
};

/// Hash_Striped-style parallel aggregation: lock-striped serial
/// linear-probing maps (see hash/striped_map.h). Updates run under the
/// stripe lock, so plain aggregate policies work unchanged.
template <AggregatePolicy Aggregate>
class StripedParallelAggregator final : public VectorAggregator,
                                        public MigratableAggregator<Aggregate> {
 public:
  using State = typename Aggregate::State;
  using Partial = PartialAggState<Aggregate>;
  static_assert(
      ConcurrentGroupMap<StripedMap<LinearProbingMap<State>>, State>);

  StripedParallelAggregator(size_t expected_size, ExecutionContext exec)
      : map_(expected_size),
        exec_(exec),
        rows_consumed_(Executor(exec).num_workers()) {}

  void Build(const uint64_t* keys, const uint64_t* values,
             size_t n) override {
    Executor(exec_).ParallelFor(n, [&](const Morsel& m) {
      for (size_t i = m.begin; i < m.end; ++i) {
        const uint64_t value = Aggregate::kNeedsValues ? values[i] : 0;
        map_.Upsert(keys[i],
                    [value](State& state) { Aggregate::Update(state, value); });
      }
    });
  }

  VectorResult Iterate() override {
    VectorResult result;
    result.reserve(map_.size());
    map_.ForEach([&result](EncodedKey key, const State& state) {
      result.push_back({key, Aggregate::Finalize(const_cast<State&>(state))});
    });
    return result;
  }

  // --- MigratableAggregator (core/migratable.h) -----------------------------
  // The shared-map strategy: every worker upserts into the one striped table,
  // so there is no merge phase at all — ConsumeMorsel is just the Build body,
  // and Finish() is a plain iterate.

  void ConsumeMorsel(const uint64_t* keys, const uint64_t* values,
                     const Morsel& m) override {
    for (size_t i = m.begin; i < m.end; ++i) {
      const uint64_t value =
          Aggregate::kNeedsValues && values != nullptr ? values[i] : 0;
      map_.Upsert(keys[i],
                  [value](State& state) { Aggregate::Update(state, value); });
    }
    rows_consumed_[m.worker] += m.end - m.begin;
  }

  ProgressSnapshot Progress() const override {
    uint64_t rows = 0;
    for (int w = 0; w < rows_consumed_.size(); ++w) rows += rows_consumed_[w];
    return {rows, map_.size(), map_.MemoryBytes()};
  }

  Partial ExtractPartialState() override {
    Partial out;
    out.partials.reserve(map_.size());
    map_.ForEach([&out](EncodedKey key, const State& state) {
      out.partials.emplace_back(key, std::move(const_cast<State&>(state)));
    });
    for (int w = 0; w < rows_consumed_.size(); ++w) {
      out.rows += rows_consumed_[w];
      rows_consumed_[w] = 0;
    }
    return out;
  }

  void AbsorbPartialState(Partial&& partial) override {
    for (auto& [key, state] : partial.partials) {
      if constexpr (MergeableAggregatePolicy<Aggregate>) {
        State& from = state;
        map_.Upsert(key, [&from](State& into) { Aggregate::Merge(into, from); });
      } else {
        MEMAGG_CHECK(false && "aggregate has no Merge; cannot absorb partials");
      }
    }
    for (const auto& [key, value] : partial.records) {
      map_.Upsert(key,
                  [value](State& state) { Aggregate::Update(state, value); });
    }
    rows_consumed_[0] += partial.rows;
  }

  VectorResult Finish() override { return Iterate(); }

  size_t NumGroups() const override { return map_.size(); }

  size_t DataStructureBytes() const override { return map_.MemoryBytes(); }

  void CollectStats(QueryStats* stats) const override {
    stats->Add(StatCounter::kHashEntries, map_.size());
    stats->Add(StatCounter::kPartitions, map_.num_stripes());
    map_.ForEachStripe([stats](const LinearProbingMap<State>& stripe) {
      stats->Add(StatCounter::kRehashes, stripe.rehashes());
      const auto probe = stripe.ComputeProbeStats();
      stats->Add(StatCounter::kProbeTotal, probe.total_probes);
      stats->MaxOf(StatCounter::kProbeMax, probe.max_probe);
      AddAllocStats(stats, stripe.AllocatorStats());
    });
  }

 private:
  StripedMap<LinearProbingMap<State>> map_;
  ExecutionContext exec_;
  WorkerLocal<uint64_t> rows_consumed_;  ///< Morsel-path rows, per worker.
};

}  // namespace memagg

#endif  // MEMAGG_CORE_PARALLEL_AGGREGATOR_H_
