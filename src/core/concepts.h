// Concept vocabulary for every pluggable role in the engine.
//
// The paper's six-dimensional sweep is only trustworthy because all 7 hash
// tables, 4 trees, 10 sorts, and the operator templates over them are
// interchangeable behind a common interface. Before this header that
// interface was duck-typed: a container missing a member surfaced as a
// cryptic instantiation error three templates deep, or worse, silently
// skipped an `if constexpr (requires ...)` feature probe. These concepts
// make the contract explicit and checkable:
//
//   role                         concept                 modeled by
//   ---------------------------  ----------------------  -------------------
//   serial group hash table      GroupMap                LinearProbingMap,
//                                                        ChainingMap,
//                                                        SparseMap, DenseMap,
//                                                        CuckooMap
//   ordered group index          OrderedGroupStore       ArtTree, JudyArray,
//                                                        BTree, TTree
//   concurrent group table       ConcurrentGroupMap      CuckooMap,
//                                                        StripedMap,
//                                                        ConcurrentChainingMap
//   aggregate function policy    AggregatePolicy         core/aggregate.h +
//                                  (+ Mergeable...)      the Concurrent*
//                                                        policies
//   sort kernel functor          Sorter / ParallelSorter core/sorters.h
//   allocation strategy          AllocatorPolicy         mem/allocator.h
//   memory-access tracing        MemoryTracer            util/tracer.h
//   aggregation operator         AggregationOperator /   all operator
//                                  ScalarOperator        families
//   adaptive-switchable strategy MigratableOperator      the five vector
//                                                        families + striped
//   columnar input table         ColumnarTable           Table (data/table.h)
//   composite key codec          TableKeyCodec           PackedKeyCodec,
//                                                        DictKeyCodec
//
// Placement note: AllocatorPolicy and MemoryTracer are defined in their own
// layers (mem/, util/) because the container headers below core/ constrain
// their template parameters with them; this header re-exports them by
// inclusion. The container/operator concepts live here because only core/
// (and tests) name them — keeping the include DAG acyclic
// (tools/check_layering.py enforces it).
//
// tests/static_checks/ pins every concrete type to its row in the table
// above with static_asserts; tests/compile_fail/ proves each concept
// rejects ill-formed instantiations with the concept's name in the
// diagnostic.

#ifndef MEMAGG_CORE_CONCEPTS_H_
#define MEMAGG_CORE_CONCEPTS_H_

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>

#include "core/operator.h"
#include "data/key_codec.h"
#include "data/table.h"
#include "exec/morsel.h"
#include "mem/allocator.h"
#include "sort/sort_common.h"
#include "util/encoded_key.h"
#include "util/tracer.h"

namespace memagg {

namespace concept_internal {

/// Probe functors used inside requires-expressions; declarations only —
/// they are never evaluated.
template <typename V>
struct GroupVisitor {
  void operator()(EncodedKey key, const V& value) const;
};

template <typename V>
struct MutatingGroupVisitor {
  void operator()(V& value) const;
};

}  // namespace concept_internal

// --- Group containers -------------------------------------------------------

/// The observable surface shared by every serial group container, hash or
/// tree: keyed upsert slots, const-correct lookup, size and footprint
/// introspection, and whole-structure iteration.
template <typename M, typename V>
concept GroupStoreBase =
    requires(M map, const M& cmap, EncodedKey key) {
      { map.GetOrInsert(key) } -> std::same_as<V&>;
      { cmap.Find(key) } -> std::same_as<const V*>;
      { map.Find(key) } -> std::same_as<V*>;
      { cmap.size() } -> std::convertible_to<size_t>;
      { cmap.MemoryBytes() } -> std::convertible_to<size_t>;
      cmap.ForEach(concept_internal::GroupVisitor<V>{});
    };

/// Serial hash-table role (paper Section 3.2): pre-sized from an expected
/// record count, growable, and reservable ahead of the build phase so
/// ReserveGroups() can pre-size every backend uniformly.
template <typename M, typename V>
concept GroupMap =
    GroupStoreBase<M, V> && std::constructible_from<M, size_t> &&
    requires(M map, size_t expected_entries) { map.Reserve(expected_entries); };

/// Ordered index role (paper Section 3.3): grows with the data (no
/// pre-sizing), iterates in key order, and supports native range-filtered
/// iteration (Q7).
template <typename T, typename V>
concept OrderedGroupStore =
    GroupStoreBase<T, V> && std::default_initializable<T> &&
    requires(const T& ctree, uint64_t lo, uint64_t hi) {
      ctree.ForEachInRange(lo, hi, concept_internal::GroupVisitor<V>{});
    };

/// Thread-safe mutation via a callback run under the structure's own locks
/// (libcuckoo-style upsert; paper Section 5.8).
template <typename M, typename V>
concept UpsertGroupMap = requires(M map, EncodedKey key) {
  map.Upsert(key, concept_internal::MutatingGroupVisitor<V>{});
};

/// Thread-safe insertion with caller-supplied (per-worker) allocation: the
/// structure is shared, the memory behind it is thread-local.
template <typename M, typename V>
concept SharedAllocGroupMap =
    requires(M map, EncodedKey key, typename M::Alloc& alloc) {
      { map.GetOrInsert(key, alloc) } -> std::same_as<V&>;
    };

/// Concurrent group-table role (paper Section 5.8): thread-safe insert AND
/// update — via either locked upsert or shared insertion with per-worker
/// allocators — plus quiescent iteration and introspection.
template <typename M, typename V>
concept ConcurrentGroupMap =
    std::constructible_from<M, size_t> &&
    requires(const M& cmap) {
      { cmap.size() } -> std::convertible_to<size_t>;
      { cmap.MemoryBytes() } -> std::convertible_to<size_t>;
      cmap.ForEach(concept_internal::GroupVisitor<V>{});
    } &&
    (UpsertGroupMap<M, V> || SharedAllocGroupMap<M, V>);

// --- Aggregate function policies --------------------------------------------

/// Aggregate-function policy role (core/aggregate.h): a default-initializable
/// per-group State, an Update step folding one record into it, a Finalize
/// step producing the output value, and the kNeedsValues flag that lets
/// COUNT(*) skip the value column entirely.
///
/// Note: the *runtime* identifier for an aggregate is the AggregateFunction
/// enum (core/aggregate.h); this concept is the compile-time policy those
/// enum values dispatch to.
template <typename A>
concept AggregatePolicy =
    std::default_initializable<typename A::State> &&
    requires(typename A::State& state, uint64_t value) {
      { A::kNeedsValues } -> std::convertible_to<bool>;
      A::Update(state, value);
      { A::Finalize(state) } -> std::convertible_to<double>;
    };

/// Aggregates usable by partitioned operators, which must combine partial
/// per-partition/per-thread states (Gray et al.'s distributive/algebraic
/// requirement, plus buffering holistic states).
template <typename A>
concept MergeableAggregatePolicy =
    AggregatePolicy<A> &&
    requires(typename A::State& into, typename A::State& from) {
      A::Merge(into, from);
    };

// --- Sort kernels -----------------------------------------------------------

/// Record types the sort substrate may permute: plain values moved with
/// memcpy-equivalent stores. Spelled as trivially copy-constructible +
/// trivially destructible (not is_trivially_copyable) because std::pair of
/// scalars — the operators' (key, value) record type — has a formally
/// non-trivial assignment operator.
template <typename T>
concept SortableRecord = std::copyable<T> &&
                         std::is_trivially_copy_constructible_v<T> &&
                         std::is_trivially_destructible_v<T>;

/// Key extractor over a record type: IdentityKey for key columns,
/// PairFirstKey for (key, value) records (sort/sort_common.h).
template <typename F, typename T>
concept KeyExtractor = requires(const F& key_of, const T& record) {
  { key_of(record) } -> std::convertible_to<uint64_t>;
};

/// Sort-kernel functor role (core/sorters.h): sorts both plain key arrays
/// and (key, value) record arrays by the extracted key.
template <typename S>
concept Sorter =
    std::move_constructible<S> &&
    requires(const S& sorter, uint64_t* keys,
             std::pair<uint64_t, uint64_t>* records) {
      sorter(keys, keys, IdentityKey{});
      sorter(records, records, PairFirstKey{});
    };

/// Parallel sort-kernel role: a Sorter with a configurable thread budget
/// (set from ExecutionContext::num_threads by the engine factories).
template <typename S>
concept ParallelSorter = Sorter<S> && requires(S sorter, int num_threads) {
  sorter.num_threads = num_threads;
};

// --- Columnar tables and key codecs -----------------------------------------

/// Columnar input-table role (data/table.h): equal-length typed columns
/// addressable by name or index, with footprint introspection. The typed
/// execution front-end (core/table_exec.h) is written against this surface.
template <typename T>
concept ColumnarTable =
    requires(const T& table, const std::string& name, size_t index) {
      { table.num_rows() } -> std::convertible_to<size_t>;
      { table.num_columns() } -> std::convertible_to<size_t>;
      { table.HasColumn(name) } -> std::convertible_to<bool>;
      { table.ColumnIndex(name) } -> std::convertible_to<size_t>;
      { table.ColumnAt(index) } -> std::same_as<const Column&>;
      { table.MemoryBytes() } -> std::convertible_to<size_t>;
    };

/// Composite-key codec role (data/key_codec.h): maps multi-column group
/// keys to the engine's fixed-width EncodedKey and back. Operators never
/// see this interface — they keep running over raw EncodedKey columns; the
/// execution front-end uses it to build the key column, decide whether
/// encoded order is natural order (order_preserving), feed the advisor's
/// cost model (width_bits), and decode result keys into column values.
template <typename C>
concept TableKeyCodec = requires(const C& codec, EncodedKey key) {
  { codec.num_fields() } -> std::convertible_to<size_t>;
  { codec.width_bits() } -> std::convertible_to<int>;
  { codec.order_preserving() } -> std::convertible_to<bool>;
  { codec.Decode(key) } -> std::same_as<DecodedKey>;
};

// --- Operators --------------------------------------------------------------

/// Concrete vector (GROUP BY) aggregation operator: instantiable and
/// pluggable wherever the engine registry hands out operators.
template <typename Op>
concept AggregationOperator =
    std::derived_from<Op, VectorAggregator> && !std::is_abstract_v<Op>;

/// Concrete scalar aggregation operator (Q4-Q6).
template <typename Op>
concept ScalarOperator =
    std::derived_from<Op, ScalarAggregator> && !std::is_abstract_v<Op>;

/// Strategy usable by the adaptive operator (core/adaptive_aggregator.h):
/// consumes individual morsels, reports cheap progress, and can move its
/// partially built group state to another strategy mid-query. Structural
/// twin of the MigratableAggregator interface (core/migratable.h) — spelled
/// as a requires-expression so the compile-fail harness can name the exact
/// missing operation, and so non-virtual implementations also qualify.
template <typename Op>
concept MigratableOperator =
    AggregationOperator<Op> &&
    requires(Op op, const Op& cop, const uint64_t* keys, const Morsel& m,
             typename Op::Partial partial, int num_workers,
             size_t expected_rows) {
      typename Op::Partial;
      op.BeginConsume(num_workers, expected_rows);
      op.ConsumeMorsel(keys, keys, m);
      { cop.Progress() } -> std::same_as<ProgressSnapshot>;
      { op.ExtractPartialState() } -> std::same_as<typename Op::Partial>;
      op.AbsorbPartialState(std::move(partial));
      { op.Finish() } -> std::same_as<VectorResult>;
    };

}  // namespace memagg

#endif  // MEMAGG_CORE_CONCEPTS_H_
