// Sort-based vector aggregation (paper Section 3.1).
//
// Build phase: copy the input into a scratch array (keys only, or
// (key, value) records when the aggregate reads values) and sort it by key,
// which places each group's records in one contiguous run. Iterate phase:
// scan the runs; distributive/algebraic aggregates fold each run into a
// state, and holistic aggregates evaluate directly over the run — the reason
// sorting wins on holistic queries (paper Sections 5.2 and 6): no per-group
// buffering is ever needed.

#ifndef MEMAGG_CORE_SORT_AGGREGATOR_H_
#define MEMAGG_CORE_SORT_AGGREGATOR_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/aggregate.h"
#include "core/concepts.h"
#include "core/migratable.h"
#include "core/operator.h"
#include "core/result.h"
#include "exec/executor.h"
#include "obs/query_stats.h"
#include "sort/sort_common.h"
#include "util/encoded_key.h"
#include "util/macros.h"
#include "util/tracer.h"

namespace memagg {

/// Vector aggregation via sorting. `SorterT` is a functor from
/// core/sorters.h modeling the Sorter concept; `Aggregate` is an aggregate
/// policy. `Tracer` reports the operator's scratch-array accesses (the sort
/// kernel itself is traced by wrapping the sorter's KeyOf — see
/// sim/traced_engine.h).
template <Sorter SorterT, AggregatePolicy Aggregate,
          MemoryTracer Tracer = NullTracer>
class SortVectorAggregator final : public VectorAggregator,
                                   public MigratableAggregator<Aggregate> {
 public:
  using Partial = PartialAggState<Aggregate>;

  explicit SortVectorAggregator(SorterT sorter = SorterT{})
      : sorter_(std::move(sorter)) {}

  void Build(const uint64_t* keys, const uint64_t* values,
             size_t n) override {
    if constexpr (Aggregate::kNeedsValues) {
      records_.resize(n);
      for (size_t i = 0; i < n; ++i) {
        records_[i] = {keys[i], values[i]};
        Tracer::OnAccess(&records_[i], sizeof(records_[i]));
      }
      PhaseTimer sort_timer(&stats_, StatPhase::kSort);
      sorter_(records_.data(), records_.data() + n, PairFirstKey{});
    } else {
      keys_.assign(keys, keys + n);
      if constexpr (Tracer::kEnabled) {
        for (size_t i = 0; i < n; ++i) {
          Tracer::OnAccess(&keys_[i], sizeof(uint64_t));
        }
      }
      PhaseTimer sort_timer(&stats_, StatPhase::kSort);
      sorter_(keys_.data(), keys_.data() + n, IdentityKey{});
    }
    stats_.Add(StatCounter::kRowsSorted, n);
  }

  void BuildOwned(std::vector<uint64_t>&& keys,
                  std::vector<uint64_t>&& values) override {
    if constexpr (Aggregate::kNeedsValues) {
      // (key, value) records must be materialized, but the source columns
      // are released as soon as they are zipped.
      const size_t n = keys.size();
      records_.resize(n);
      for (size_t i = 0; i < n; ++i) {
        records_[i] = {keys[i], values[i]};
      }
      std::vector<uint64_t>().swap(keys);
      std::vector<uint64_t>().swap(values);
      PhaseTimer sort_timer(&stats_, StatPhase::kSort);
      sorter_(records_.data(), records_.data() + n, PairFirstKey{});
      sort_timer.Stop();
      stats_.Add(StatCounter::kRowsSorted, n);
    } else {
      // In-place: adopt the caller's array and sort it directly — no copy,
      // the paper's memory-efficient sort path.
      keys_ = std::move(keys);
      values.clear();
      PhaseTimer sort_timer(&stats_, StatPhase::kSort);
      sorter_(keys_.data(), keys_.data() + keys_.size(), IdentityKey{});
      sort_timer.Stop();
      stats_.Add(StatCounter::kRowsSorted, keys_.size());
    }
  }

  VectorResult Iterate() override { return IterateImpl(0, ~0ULL); }

  // --- MigratableAggregator (core/migratable.h) -----------------------------
  // Morsel-path consumption only buffers (key, value) records per worker —
  // no aggregation work happens until Finish(), which sorts the gathered
  // buffers and merge-joins them with any partial states absorbed from a
  // predecessor hash strategy (the hybrid operator's SortedIterate shape).

  void BeginConsume(int num_workers, size_t expected_rows) override {
    MEMAGG_CHECK(consume_buffers_ == nullptr && "BeginConsume is once-only");
    consume_buffers_ = std::make_unique<WorkerLocal<RecordVec>>(num_workers);
    const size_t per_worker =
        expected_rows / static_cast<size_t>(num_workers) + 1;
    consume_buffers_->ForEach(
        [per_worker](RecordVec& buf) { buf.reserve(per_worker); });
  }

  void ConsumeMorsel(const uint64_t* keys, const uint64_t* values,
                     const Morsel& m) override {
    RecordVec& buf = (*consume_buffers_)[m.worker];
    for (size_t i = m.begin; i < m.end; ++i) {
      buf.emplace_back(keys[i], values == nullptr ? 0 : values[i]);
    }
  }

  ProgressSnapshot Progress() const override {
    ProgressSnapshot snapshot;
    snapshot.rows = partial_rows_;
    snapshot.bytes =
        absorbed_.capacity() * sizeof(typename AbsorbedVec::value_type);
    if (consume_buffers_ != nullptr) {
      for (int w = 0; w < consume_buffers_->size(); ++w) {
        snapshot.rows += (*consume_buffers_)[w].size();
        snapshot.bytes += (*consume_buffers_)[w].capacity() *
                          sizeof(std::pair<uint64_t, uint64_t>);
      }
    }
    snapshot.groups = 0;  // Unknown until the sort; 0 means "no estimate".
    return snapshot;
  }

  Partial ExtractPartialState() override {
    Partial out;
    if (consume_buffers_ != nullptr) {
      size_t total = 0;
      consume_buffers_->ForEach(
          [&total](RecordVec& buf) { total += buf.size(); });
      out.records.reserve(total);
      consume_buffers_->ForEach([&out](RecordVec& buf) {
        out.records.insert(out.records.end(), buf.begin(), buf.end());
        RecordVec().swap(buf);
      });
    }
    out.partials = std::move(absorbed_);
    absorbed_.clear();
    out.rows = out.records.size() + partial_rows_;
    partial_rows_ = 0;
    return out;
  }

  void AbsorbPartialState(Partial&& partial) override {
    MEMAGG_CHECK(consume_buffers_ != nullptr && "call BeginConsume first");
    RecordVec& buf = (*consume_buffers_)[0];
    buf.insert(buf.end(), partial.records.begin(), partial.records.end());
    partial_rows_ += partial.rows - partial.records.size();
    absorbed_.reserve(absorbed_.size() + partial.partials.size());
    for (auto& entry : partial.partials) {
      absorbed_.push_back(std::move(entry));
    }
  }

  VectorResult Finish() override {
    RecordVec records;
    if (consume_buffers_ != nullptr) {
      size_t total = 0;
      consume_buffers_->ForEach(
          [&total](RecordVec& buf) { total += buf.size(); });
      records.reserve(total);
      consume_buffers_->ForEach([&records](RecordVec& buf) {
        records.insert(records.end(), buf.begin(), buf.end());
        RecordVec().swap(buf);
      });
    }
    {
      PhaseTimer sort_timer(&stats_, StatPhase::kSort);
      sorter_(records.data(), records.data() + records.size(), PairFirstKey{});
    }
    stats_.Add(StatCounter::kRowsSorted, records.size());
    // Partials sort by key so the scan below is a linear merge-join;
    // duplicate keys (one per predecessor worker table) coalesce via Merge.
    std::sort(absorbed_.begin(), absorbed_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    VectorResult result;
    size_t pi = 0;
    auto emit_partials_below = [&](uint64_t bound, bool inclusive) {
      while (pi < absorbed_.size() &&
             (absorbed_[pi].first < bound ||
              (inclusive && absorbed_[pi].first == bound))) {
        const EncodedKey key = absorbed_[pi].first;
        typename Aggregate::State state = std::move(absorbed_[pi].second);
        ++pi;
        MergeSameKeyPartials(key, &state, &pi);
        result.push_back({key, Aggregate::Finalize(state)});
      }
    };
    const size_t n = records.size();
    size_t run_start = 0;
    while (run_start < n) {
      const EncodedKey key = records[run_start].first;
      size_t run_end = run_start + 1;
      while (run_end < n && records[run_end].first == key) ++run_end;
      emit_partials_below(key, /*inclusive=*/false);
      typename Aggregate::State state{};
      for (size_t i = run_start; i < run_end; ++i) {
        Aggregate::Update(state, records[i].second);
      }
      MergeSameKeyPartials(key, &state, &pi);
      result.push_back({key, Aggregate::Finalize(state)});
      run_start = run_end;
    }
    emit_partials_below(~0ULL, /*inclusive=*/true);
    return result;
  }

  /// Sorted data admits range filtering by scanning the bounded subrange;
  /// exposed for completeness (the paper's Q7 focuses on trees).
  bool SupportsRange() const override { return true; }

  VectorResult IterateRange(uint64_t lo, uint64_t hi) override {
    return IterateImpl(lo, hi);
  }

  size_t NumGroups() const override {
    size_t groups = 0;
    if constexpr (Aggregate::kNeedsValues) {
      for (size_t i = 0; i < records_.size(); ++i) {
        if (i == 0 || records_[i].first != records_[i - 1].first) ++groups;
      }
    } else {
      for (size_t i = 0; i < keys_.size(); ++i) {
        if (i == 0 || keys_[i] != keys_[i - 1]) ++groups;
      }
    }
    return groups;
  }

  size_t DataStructureBytes() const override {
    return keys_.capacity() * sizeof(uint64_t) +
           records_.capacity() * sizeof(std::pair<uint64_t, uint64_t>);
  }

  void CollectStats(QueryStats* stats) const override {
    stats->Merge(stats_);
  }

 private:
  VectorResult IterateImpl(uint64_t lo, uint64_t hi) {
    VectorResult result;
    if constexpr (Aggregate::kNeedsValues) {
      const size_t n = records_.size();
      size_t run_start = 0;
      while (run_start < n) {
        const EncodedKey key = records_[run_start].first;
        size_t run_end = run_start + 1;
        Tracer::OnAccess(&records_[run_start], sizeof(records_[run_start]));
        while (run_end < n && records_[run_end].first == key) {
          Tracer::OnAccess(&records_[run_end], sizeof(records_[run_end]));
          ++run_end;
        }
        if (key >= lo && key <= hi) {
          result.push_back({key, AggregateRun(run_start, run_end)});
        }
        run_start = run_end;
      }
    } else {
      const size_t n = keys_.size();
      size_t run_start = 0;
      while (run_start < n) {
        const EncodedKey key = keys_[run_start];
        size_t run_end = run_start + 1;
        Tracer::OnAccess(&keys_[run_start], sizeof(uint64_t));
        while (run_end < n && keys_[run_end] == key) {
          Tracer::OnAccess(&keys_[run_end], sizeof(uint64_t));
          ++run_end;
        }
        if (key >= lo && key <= hi) {
          typename Aggregate::State state{};
          for (size_t i = run_start; i < run_end; ++i) {
            Aggregate::Update(state, 0);
          }
          result.push_back({key, Aggregate::Finalize(state)});
        }
        run_start = run_end;
      }
    }
    return result;
  }

  /// Aggregates one group's run of records. Holistic aggregates with a
  /// FinalizeRun fast path operate on the run's values in place; others fold
  /// through their state.
  double AggregateRun(size_t run_start, size_t run_end) {
    const size_t count = run_end - run_start;
    if constexpr (requires(uint64_t* v, size_t c) {
                    Aggregate::FinalizeRun(v, c);
                  }) {
      run_values_.resize(count);
      for (size_t i = 0; i < count; ++i) {
        run_values_[i] = records_[run_start + i].second;
      }
      return Aggregate::FinalizeRun(run_values_.data(), count);
    } else {
      typename Aggregate::State state{};
      for (size_t i = run_start; i < run_end; ++i) {
        Aggregate::Update(state, records_[i].second);
      }
      return Aggregate::Finalize(state);
    }
  }

  using RecordVec = std::vector<std::pair<uint64_t, uint64_t>>;
  using AbsorbedVec =
      std::vector<std::pair<uint64_t, typename Aggregate::State>>;

  /// Folds every absorbed partial whose key equals `key` into `state`,
  /// advancing `*pi` past them. Requires absorbed_ sorted by key.
  void MergeSameKeyPartials(EncodedKey key, typename Aggregate::State* state,
                            size_t* pi) {
    while (*pi < absorbed_.size() && absorbed_[*pi].first == key) {
      if constexpr (MergeableAggregatePolicy<Aggregate>) {
        Aggregate::Merge(*state, absorbed_[*pi].second);
      } else {
        MEMAGG_CHECK(false && "aggregate has no Merge; cannot absorb partials");
      }
      ++*pi;
    }
  }

  SorterT sorter_;
  std::vector<uint64_t> keys_;
  std::vector<std::pair<uint64_t, uint64_t>> records_;
  std::vector<uint64_t> run_values_;  // Scratch for holistic runs.
  // Migratable-path state: per-worker record buffers and partial states
  // absorbed from a predecessor strategy (merged at Finish).
  std::unique_ptr<WorkerLocal<RecordVec>> consume_buffers_;
  AbsorbedVec absorbed_;
  uint64_t partial_rows_ = 0;  ///< Rows represented by absorbed_ partials.
  QueryStats stats_;           // Sort-kernel subphase + row counts.
};

}  // namespace memagg

#endif  // MEMAGG_CORE_SORT_AGGREGATOR_H_
