// Sort-based vector aggregation (paper Section 3.1).
//
// Build phase: copy the input into a scratch array (keys only, or
// (key, value) records when the aggregate reads values) and sort it by key,
// which places each group's records in one contiguous run. Iterate phase:
// scan the runs; distributive/algebraic aggregates fold each run into a
// state, and holistic aggregates evaluate directly over the run — the reason
// sorting wins on holistic queries (paper Sections 5.2 and 6): no per-group
// buffering is ever needed.

#ifndef MEMAGG_CORE_SORT_AGGREGATOR_H_
#define MEMAGG_CORE_SORT_AGGREGATOR_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/aggregate.h"
#include "core/concepts.h"
#include "core/operator.h"
#include "core/result.h"
#include "obs/query_stats.h"
#include "sort/sort_common.h"
#include "util/tracer.h"

namespace memagg {

/// Vector aggregation via sorting. `SorterT` is a functor from
/// core/sorters.h modeling the Sorter concept; `Aggregate` is an aggregate
/// policy. `Tracer` reports the operator's scratch-array accesses (the sort
/// kernel itself is traced by wrapping the sorter's KeyOf — see
/// sim/traced_engine.h).
template <Sorter SorterT, AggregatePolicy Aggregate,
          MemoryTracer Tracer = NullTracer>
class SortVectorAggregator final : public VectorAggregator {
 public:
  explicit SortVectorAggregator(SorterT sorter = SorterT{})
      : sorter_(std::move(sorter)) {}

  void Build(const uint64_t* keys, const uint64_t* values,
             size_t n) override {
    if constexpr (Aggregate::kNeedsValues) {
      records_.resize(n);
      for (size_t i = 0; i < n; ++i) {
        records_[i] = {keys[i], values[i]};
        Tracer::OnAccess(&records_[i], sizeof(records_[i]));
      }
      PhaseTimer sort_timer(&stats_, StatPhase::kSort);
      sorter_(records_.data(), records_.data() + n, PairFirstKey{});
    } else {
      keys_.assign(keys, keys + n);
      if constexpr (Tracer::kEnabled) {
        for (size_t i = 0; i < n; ++i) {
          Tracer::OnAccess(&keys_[i], sizeof(uint64_t));
        }
      }
      PhaseTimer sort_timer(&stats_, StatPhase::kSort);
      sorter_(keys_.data(), keys_.data() + n, IdentityKey{});
    }
    stats_.Add(StatCounter::kRowsSorted, n);
  }

  void BuildOwned(std::vector<uint64_t>&& keys,
                  std::vector<uint64_t>&& values) override {
    if constexpr (Aggregate::kNeedsValues) {
      // (key, value) records must be materialized, but the source columns
      // are released as soon as they are zipped.
      const size_t n = keys.size();
      records_.resize(n);
      for (size_t i = 0; i < n; ++i) {
        records_[i] = {keys[i], values[i]};
      }
      std::vector<uint64_t>().swap(keys);
      std::vector<uint64_t>().swap(values);
      PhaseTimer sort_timer(&stats_, StatPhase::kSort);
      sorter_(records_.data(), records_.data() + n, PairFirstKey{});
      sort_timer.Stop();
      stats_.Add(StatCounter::kRowsSorted, n);
    } else {
      // In-place: adopt the caller's array and sort it directly — no copy,
      // the paper's memory-efficient sort path.
      keys_ = std::move(keys);
      values.clear();
      PhaseTimer sort_timer(&stats_, StatPhase::kSort);
      sorter_(keys_.data(), keys_.data() + keys_.size(), IdentityKey{});
      sort_timer.Stop();
      stats_.Add(StatCounter::kRowsSorted, keys_.size());
    }
  }

  VectorResult Iterate() override { return IterateImpl(0, ~0ULL); }

  /// Sorted data admits range filtering by scanning the bounded subrange;
  /// exposed for completeness (the paper's Q7 focuses on trees).
  bool SupportsRange() const override { return true; }

  VectorResult IterateRange(uint64_t lo, uint64_t hi) override {
    return IterateImpl(lo, hi);
  }

  size_t NumGroups() const override {
    size_t groups = 0;
    if constexpr (Aggregate::kNeedsValues) {
      for (size_t i = 0; i < records_.size(); ++i) {
        if (i == 0 || records_[i].first != records_[i - 1].first) ++groups;
      }
    } else {
      for (size_t i = 0; i < keys_.size(); ++i) {
        if (i == 0 || keys_[i] != keys_[i - 1]) ++groups;
      }
    }
    return groups;
  }

  size_t DataStructureBytes() const override {
    return keys_.capacity() * sizeof(uint64_t) +
           records_.capacity() * sizeof(std::pair<uint64_t, uint64_t>);
  }

  void CollectStats(QueryStats* stats) const override {
    stats->Merge(stats_);
  }

 private:
  VectorResult IterateImpl(uint64_t lo, uint64_t hi) {
    VectorResult result;
    if constexpr (Aggregate::kNeedsValues) {
      const size_t n = records_.size();
      size_t run_start = 0;
      while (run_start < n) {
        const uint64_t key = records_[run_start].first;
        size_t run_end = run_start + 1;
        Tracer::OnAccess(&records_[run_start], sizeof(records_[run_start]));
        while (run_end < n && records_[run_end].first == key) {
          Tracer::OnAccess(&records_[run_end], sizeof(records_[run_end]));
          ++run_end;
        }
        if (key >= lo && key <= hi) {
          result.push_back({key, AggregateRun(run_start, run_end)});
        }
        run_start = run_end;
      }
    } else {
      const size_t n = keys_.size();
      size_t run_start = 0;
      while (run_start < n) {
        const uint64_t key = keys_[run_start];
        size_t run_end = run_start + 1;
        Tracer::OnAccess(&keys_[run_start], sizeof(uint64_t));
        while (run_end < n && keys_[run_end] == key) {
          Tracer::OnAccess(&keys_[run_end], sizeof(uint64_t));
          ++run_end;
        }
        if (key >= lo && key <= hi) {
          typename Aggregate::State state{};
          for (size_t i = run_start; i < run_end; ++i) {
            Aggregate::Update(state, 0);
          }
          result.push_back({key, Aggregate::Finalize(state)});
        }
        run_start = run_end;
      }
    }
    return result;
  }

  /// Aggregates one group's run of records. Holistic aggregates with a
  /// FinalizeRun fast path operate on the run's values in place; others fold
  /// through their state.
  double AggregateRun(size_t run_start, size_t run_end) {
    const size_t count = run_end - run_start;
    if constexpr (requires(uint64_t* v, size_t c) {
                    Aggregate::FinalizeRun(v, c);
                  }) {
      run_values_.resize(count);
      for (size_t i = 0; i < count; ++i) {
        run_values_[i] = records_[run_start + i].second;
      }
      return Aggregate::FinalizeRun(run_values_.data(), count);
    } else {
      typename Aggregate::State state{};
      for (size_t i = run_start; i < run_end; ++i) {
        Aggregate::Update(state, records_[i].second);
      }
      return Aggregate::Finalize(state);
    }
  }

  SorterT sorter_;
  std::vector<uint64_t> keys_;
  std::vector<std::pair<uint64_t, uint64_t>> records_;
  std::vector<uint64_t> run_values_;  // Scratch for holistic runs.
  QueryStats stats_;                  // Sort-kernel subphase + row counts.
};

}  // namespace memagg

#endif  // MEMAGG_CORE_SORT_AGGREGATOR_H_
