// Adaptive hybrid sort/hash aggregation — the extension the paper's Section
// 5.5 calls for ("it may be worth revisiting hybrid sort-hash aggregation
// algorithms"), modelled on the switching idea of Müller et al. (SIGMOD'15,
// "Cache-efficient aggregation: hashing is sorting").
//
// The operator starts in hashing mode with a cache-resident linear-probing
// table — the paper's best distributive performer at low cardinality. While
// consuming input it watches the number of groups discovered; once the table
// would outgrow the cache (high group-by cardinality — the regime where the
// paper shows sorting winning), it flushes the accumulated state into a
// record buffer and continues in sort mode, finishing with the sort-based
// run aggregation. Low-cardinality inputs therefore never pay for sorting,
// and high-cardinality inputs never thrash the cache with a giant table.
//
// Works for every aggregate policy: distributive/algebraic states are
// flushed as pre-aggregated (key, state) partials and merged after the final
// sort; holistic states are flushed back as raw (key, value) records, so the
// result is exactly what a pure sort-based operator produces.

#ifndef MEMAGG_CORE_HYBRID_AGGREGATOR_H_
#define MEMAGG_CORE_HYBRID_AGGREGATOR_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/aggregate.h"
#include "core/concepts.h"
#include "core/operator.h"
#include "core/result.h"
#include "exec/executor.h"
#include "hash/linear_probing_map.h"
#include "obs/query_stats.h"
#include "sort/block_indirect_sort.h"
#include "sort/sort_common.h"
#include "sort/spreadsort.h"
#include "util/encoded_key.h"

namespace memagg {

/// Adaptive hybrid aggregation operator. The flush-to-sort path combines
/// partial states, so the aggregate must be mergeable.
template <MergeableAggregatePolicy Aggregate>
class HybridVectorAggregator final : public VectorAggregator {
 public:
  using State = typename Aggregate::State;

  /// `max_hash_groups` is the switch threshold: once the hash table holds
  /// this many groups the operator flushes to sort mode. The default keeps
  /// the table inside a ~1 MB L2 cache (16-byte slots at 70% load).
  explicit HybridVectorAggregator(size_t expected_size = 0,
                                  size_t max_hash_groups = 44000)
      : HybridVectorAggregator(expected_size, ExecutionContext{},
                               max_hash_groups) {}

  /// With `exec.num_threads > 1` the sort-mode final sort runs on the
  /// morsel executor (Sort_BI); the hash phase stays serial.
  HybridVectorAggregator(size_t /*expected_size*/, ExecutionContext exec,
                         size_t max_hash_groups = 44000)
      : exec_(exec),
        max_hash_groups_(max_hash_groups),
        map_(2 * max_hash_groups) {}

  void Build(const uint64_t* keys, const uint64_t* values,
             size_t n) override {
    for (size_t i = 0; i < n; ++i) {
      const uint64_t value =
          Aggregate::kNeedsValues && values != nullptr ? values[i] : 0;
      if (!sort_mode_) {
        Aggregate::Update(map_.GetOrInsert(keys[i]), value);
        if (MEMAGG_UNLIKELY(map_.size() > max_hash_groups_)) {
          SwitchToSortMode();
        }
      } else {
        records_.push_back({keys[i], value});
      }
    }
  }

  VectorResult Iterate() override {
    if (!sort_mode_) {
      // Pure hashing: the low-cardinality fast path.
      VectorResult result;
      result.reserve(map_.size());
      map_.ForEach([&result](EncodedKey key, const State& state) {
        result.push_back(
            {key, Aggregate::Finalize(const_cast<State&>(state))});
      });
      return result;
    }
    return SortedIterate();
  }

  size_t NumGroups() const override {
    if (!sort_mode_) return map_.size();
    // Sort-mode group count = distinct keys across the spilled records and
    // the hash-phase partials. Counted over a key *copy* so `records_` is
    // never reordered under a const method (safe to poll concurrently with
    // other const calls, and Iterate() still sees its own input order).
    std::vector<uint64_t> keys;
    keys.reserve(records_.size() + partials_.size());
    for (const auto& record : records_) keys.push_back(record.first);
    for (const Partial& partial : partials_) keys.push_back(partial.key);
    std::sort(keys.begin(), keys.end());
    size_t groups = 0;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (i == 0 || keys[i] != keys[i - 1]) ++groups;
    }
    return groups;
  }

  size_t DataStructureBytes() const override {
    return map_.MemoryBytes() +
           records_.capacity() * sizeof(std::pair<uint64_t, uint64_t>) +
           partials_.capacity() * sizeof(Partial);
  }

  /// True once the operator has flushed to sort mode (for tests/benches).
  bool in_sort_mode() const { return sort_mode_; }

  void CollectStats(QueryStats* stats) const override {
    stats->Merge(stats_);
    stats->Add(StatCounter::kHashEntries,
               sort_mode_ ? partials_.size() : map_.size());
    stats->Add(StatCounter::kHybridSpills, sort_mode_ ? 1 : 0);
    if (sort_mode_) stats->Add(StatCounter::kRowsSorted, records_.size());
    if (!sort_mode_) {
      const auto probe = map_.ComputeProbeStats();
      stats->Add(StatCounter::kProbeTotal, probe.total_probes);
      stats->MaxOf(StatCounter::kProbeMax, probe.max_probe);
    }
  }

 private:
  struct Partial {
    EncodedKey key;
    State state;
  };

  static constexpr bool kHolistic =
      requires(uint64_t* v, size_t c) { Aggregate::FinalizeRun(v, c); };

  void SwitchToSortMode() {
    sort_mode_ = true;
    if constexpr (kHolistic) {
      // Holistic states are raw value buffers: spill them back as records so
      // the final sort sees exactly the original input.
      map_.ForEach([this](EncodedKey key, const State& state) {
        for (uint64_t value : state) {
          records_.push_back({key, value});
        }
      });
    } else {
      // Distributive/algebraic states are flushed as mergeable partials.
      map_.ForEach([this](EncodedKey key, const State& state) {
        partials_.push_back({key, state});
      });
    }
    // Release the table; a fresh (empty) small map keeps the class invariant
    // simple and the memory bounded.
    map_ = LinearProbingMap<State>(2);
  }

  VectorResult SortedIterate() {
    {
      PhaseTimer sort_timer(&stats_, StatPhase::kSort);
      if (exec_.num_threads > 1) {
        BlockIndirectSort(records_.data(), records_.data() + records_.size(),
                          KeyLess<PairFirstKey>{}, exec_.num_threads);
      } else {
        SpreadSort(records_.data(), records_.data() + records_.size(),
                   PairFirstKey{});
      }
    }
    VectorResult result;
    if constexpr (kHolistic) {
      // Pure run aggregation (partials_ is unused for holistic policies).
      const size_t n = records_.size();
      size_t run_start = 0;
      std::vector<uint64_t> run_values;
      while (run_start < n) {
        const EncodedKey key = records_[run_start].first;
        size_t run_end = run_start + 1;
        while (run_end < n && records_[run_end].first == key) ++run_end;
        run_values.resize(run_end - run_start);
        for (size_t i = run_start; i < run_end; ++i) {
          run_values[i - run_start] = records_[i].second;
        }
        result.push_back(
            {key, Aggregate::FinalizeRun(run_values.data(),
                                         run_values.size())});
        run_start = run_end;
      }
    } else {
      // Fold sorted records into per-run states, then merge-join with the
      // hash-phase partials (both sides sorted by key).
      std::sort(partials_.begin(), partials_.end(),
                [](const Partial& a, const Partial& b) {
                  return a.key < b.key;
                });
      const size_t n = records_.size();
      size_t run_start = 0;
      size_t partial_at = 0;
      auto emit_partials_below = [&](uint64_t bound) {
        while (partial_at < partials_.size() &&
               partials_[partial_at].key < bound) {
          result.push_back(
              {partials_[partial_at].key,
               Aggregate::Finalize(partials_[partial_at].state)});
          ++partial_at;
        }
      };
      while (run_start < n) {
        const EncodedKey key = records_[run_start].first;
        size_t run_end = run_start + 1;
        while (run_end < n && records_[run_end].first == key) ++run_end;
        emit_partials_below(key);
        State state{};
        for (size_t i = run_start; i < run_end; ++i) {
          Aggregate::Update(state, records_[i].second);
        }
        if (partial_at < partials_.size() &&
            partials_[partial_at].key == key) {
          Aggregate::Merge(state, partials_[partial_at].state);
          ++partial_at;
        }
        result.push_back({key, Aggregate::Finalize(state)});
        run_start = run_end;
      }
      emit_partials_below(~0ULL);
      // ~0ULL itself may be a partial key (datasets avoid it, but stay
      // correct for arbitrary callers).
      while (partial_at < partials_.size()) {
        result.push_back({partials_[partial_at].key,
                          Aggregate::Finalize(partials_[partial_at].state)});
        ++partial_at;
      }
    }
    return result;
  }

  ExecutionContext exec_;
  size_t max_hash_groups_;
  LinearProbingMap<State> map_;
  std::vector<std::pair<uint64_t, uint64_t>> records_;
  std::vector<Partial> partials_;
  bool sort_mode_ = false;
  QueryStats stats_;  // Sort-subphase timing (spill/probe stats on demand).
};

}  // namespace memagg

#endif  // MEMAGG_CORE_HYBRID_AGGREGATOR_H_
