// The paper's experimental framework as a library API.
//
// Table 5 defines the paper's parameter space: dataset distribution, dataset
// size, group-by cardinality, algorithm, thread count, and query. An
// ExperimentConfig is exactly one point in that space; RunExperiment
// generates the dataset, runs the query through the chosen operator, and
// returns phase-separated timings plus result metadata. The bench binaries
// are thin sweeps over this function's parameter space; applications can use
// it to calibrate algorithm choice on their own hardware.

#ifndef MEMAGG_CORE_EXPERIMENT_H_
#define MEMAGG_CORE_EXPERIMENT_H_

#include <cstdint>
#include <string>

#include "core/query.h"
#include "core/result.h"
#include "data/dataset.h"

namespace memagg {

/// One point in the paper's Table 5 parameter space.
struct ExperimentConfig {
  Query query = MakeQ1();
  DatasetSpec dataset{Distribution::kRseq, 1000000, 1000,
                      0x5eed5eed5eed5eedULL};
  /// Algorithm label, or "auto": vector group-bys without a range condition
  /// run the runtime-adaptive operator ("Adaptive", docs/adaptive.md);
  /// range and scalar queries take the Figure 12 advisor's static pick.
  std::string algorithm = "auto";
  int num_threads = 1;
  /// Value column parameters (used when the query aggregates values).
  uint64_t value_range = 1000000;
  uint64_t value_seed = 0xa11fa135ULL;
  /// Keep the result rows in ExperimentResult (off by default: a 10^7-group
  /// result is large).
  bool keep_rows = false;
};

/// Timing of one phase in cycles and milliseconds.
struct PhaseTiming {
  uint64_t cycles = 0;
  double millis = 0.0;
};

/// Outcome of one experiment run.
struct ExperimentResult {
  std::string algorithm;  ///< Resolved label (after "auto").
  PhaseTiming generate;   ///< Dataset generation (excluded by the paper).
  PhaseTiming build;
  PhaseTiming iterate;
  size_t num_groups = 0;
  size_t data_structure_bytes = 0;
  double scalar_value = 0.0;  ///< For scalar queries.
  VectorResult rows;          ///< Populated when config.keep_rows.

  uint64_t query_cycles() const { return build.cycles + iterate.cycles; }
  double query_millis() const { return build.millis + iterate.millis; }
};

/// Runs one experiment. Aborts on invalid configs (unknown label,
/// infeasible dataset spec — check IsValidSpec first when sweeping).
ExperimentResult RunExperiment(const ExperimentConfig& config);

}  // namespace memagg

#endif  // MEMAGG_CORE_EXPERIMENT_H_
