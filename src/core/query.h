// The aggregation queries of the paper's Table 1.
//
//   Q1  SELECT k, COUNT(*)   ... GROUP BY k            distributive, vector
//   Q2  SELECT k, AVG(v)     ... GROUP BY k            algebraic,   vector
//   Q3  SELECT k, MEDIAN(v)  ... GROUP BY k            holistic,    vector
//   Q4  SELECT COUNT(v)      ...                       distributive, scalar
//   Q5  SELECT AVG(v)        ...                       algebraic,   scalar
//   Q6  SELECT MEDIAN(k)     ...                       holistic,    scalar
//   Q7  SELECT k, COUNT(*) WHERE k BETWEEN lo AND hi
//                            ... GROUP BY k            distributive, vector

#ifndef MEMAGG_CORE_QUERY_H_
#define MEMAGG_CORE_QUERY_H_

#include <cstdint>
#include <string>

#include "core/aggregate.h"

namespace memagg {

/// Whether the query returns one row per group or a single value.
enum class OutputFormat { kVector, kScalar };

/// Descriptor for one Table 1 query.
struct Query {
  std::string id;
  AggregateFunction function = AggregateFunction::kCount;
  OutputFormat output = OutputFormat::kVector;
  bool has_range_condition = false;
  uint64_t range_lo = 0;
  uint64_t range_hi = 0;

  FunctionCategory category() const { return CategoryOf(function); }
};

/// Q1: vector COUNT(*) GROUP BY key.
inline Query MakeQ1() {
  return {"Q1", AggregateFunction::kCount, OutputFormat::kVector, false, 0, 0};
}

/// Q2: vector AVG(value) GROUP BY key.
inline Query MakeQ2() {
  return {"Q2", AggregateFunction::kAverage, OutputFormat::kVector, false, 0,
          0};
}

/// Q3: vector MEDIAN(value) GROUP BY key.
inline Query MakeQ3() {
  return {"Q3", AggregateFunction::kMedian, OutputFormat::kVector, false, 0,
          0};
}

/// Q4: scalar COUNT.
inline Query MakeQ4() {
  return {"Q4", AggregateFunction::kCount, OutputFormat::kScalar, false, 0, 0};
}

/// Q5: scalar AVG(value).
inline Query MakeQ5() {
  return {"Q5", AggregateFunction::kAverage, OutputFormat::kScalar, false, 0,
          0};
}

/// Q6: scalar MEDIAN(key).
inline Query MakeQ6() {
  return {"Q6", AggregateFunction::kMedian, OutputFormat::kScalar, false, 0,
          0};
}

/// Q7: vector COUNT(*) with `key BETWEEN lo AND hi` (paper example:
/// BETWEEN 500 AND 1000).
inline Query MakeQ7(uint64_t lo = 500, uint64_t hi = 1000) {
  return {"Q7", AggregateFunction::kCount, OutputFormat::kVector, true, lo,
          hi};
}

}  // namespace memagg

#endif  // MEMAGG_CORE_QUERY_H_
