// Migratable-state aggregation interface (the substrate for the adaptive
// operator, core/adaptive_aggregator.h).
//
// The Figure 12 advisor commits to one strategy before any data flows, but
// the inputs that decide the winner — group cardinality, skew, working-set
// size vs. cache — are only observable once rows start moving (the hash-vs-
// sort study arXiv 2411.13245; Graefe's in-stream vs. sort-based merge,
// arXiv 2010.00152). MigratableAggregator is the contract that makes
// mid-query strategy changes possible: an operator consumes individual
// morsels (instead of the whole input at once), reports cheap progress
// snapshots, and can hand its partially built group state to a different
// strategy without reprocessing the consumed rows.
//
// Migration protocol (same partial-state shape as the hybrid operator's
// hash→sort spill, core/hybrid_aggregator.h):
//
//   * Distributive/algebraic aggregates travel as (key, State) partials and
//     recombine with Aggregate::Merge — order-independent, so results are
//     bit-identical to a single-strategy run.
//   * Holistic aggregates' States are value buffers; they travel as partials
//     too (Merge concatenates buffers) and sort-based absorbers may instead
//     keep them aside and merge-join at Finish.
//   * Raw (key, value) records are the fallback representation: sort-based
//     strategies that have not aggregated yet extract them verbatim, and
//     every hash/tree strategy absorbs them through ordinary Updates.
//
// Lifecycle: BeginConsume → ConsumeMorsel (concurrently, one worker per
// morsel) → [barrier: Progress / ExtractPartialState] → Finish. After
// ExtractPartialState the operator is *drained*: its state has been moved
// out and only destruction is valid (extraction exists to feed a successor
// strategy, not to checkpoint a live one).

#ifndef MEMAGG_CORE_MIGRATABLE_H_
#define MEMAGG_CORE_MIGRATABLE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/concepts.h"
#include "core/operator.h"
#include "core/result.h"
#include "exec/morsel.h"

namespace memagg {

/// Partially built aggregation state in transit between strategies.
/// `partials` carries already-aggregated groups; `records` carries rows that
/// were consumed but not yet aggregated (sort-strategy buffers). Either side
/// may be empty; `rows` counts the input rows both sides represent together.
template <AggregatePolicy Aggregate>
struct PartialAggState {
  using State = typename Aggregate::State;

  std::vector<std::pair<uint64_t, State>> partials;
  std::vector<std::pair<uint64_t, uint64_t>> records;
  uint64_t rows = 0;

  bool empty() const { return partials.empty() && records.empty(); }
};

/// Interface every migratable strategy implements, templated on the
/// aggregate policy so partial states are typed end-to-end. The five
/// operator families in src/core/ implement it alongside VectorAggregator;
/// the structural twin is the MigratableOperator concept (core/concepts.h).
template <AggregatePolicy Aggregate>
class MigratableAggregator {
 public:
  using Partial = PartialAggState<Aggregate>;

  virtual ~MigratableAggregator() = default;

  /// Called once per instance, from a single thread, before the first
  /// ConsumeMorsel or AbsorbPartialState. `num_workers` bounds the
  /// Morsel::worker ids later ConsumeMorsel calls will carry (sizes
  /// per-worker slots); `expected_rows` is the number of rows the strategy
  /// is expected to consume in total (pre-sizes buffers). Default: no-op.
  virtual void BeginConsume(int num_workers, size_t expected_rows) {
    (void)num_workers;
    (void)expected_rows;
  }

  /// Consumes the rows of one claimed morsel. `values` may be nullptr when
  /// the aggregate ignores the value column. Safe to call concurrently for
  /// distinct morsels; `m.worker` is a stable slot id (exec/executor.h).
  virtual void ConsumeMorsel(const uint64_t* keys, const uint64_t* values,
                             const Morsel& m) = 0;

  /// Cheap progress report; called from a single thread at a barrier (no
  /// concurrent ConsumeMorsel calls in flight).
  virtual ProgressSnapshot Progress() const = 0;

  /// Moves the accumulated state out. Single-threaded, at a barrier. The
  /// operator is drained afterwards — see the header comment.
  virtual Partial ExtractPartialState() = 0;

  /// Folds a predecessor strategy's extracted state in. Single-threaded, at
  /// a barrier, before the next ConsumeMorsel wave.
  virtual void AbsorbPartialState(Partial&& partial) = 0;

  /// Finalizes and emits the result rows (the iterate phase of the strategy
  /// the query ended on).
  virtual VectorResult Finish() = 0;
};

}  // namespace memagg

#endif  // MEMAGG_CORE_MIGRATABLE_H_
