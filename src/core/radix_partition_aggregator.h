// Radix-partitioned parallel aggregation (extension).
//
// The third classic parallel strategy from the paper's related work (Ye et
// al.'s PLAT lineage, §7): partition the input by key so that partitions are
// disjoint, then aggregate each partition in a private table with no
// synchronization *and no merge* — unlike LocalPartitionAggregator, whose
// thread-local tables overlap and must be merged. The price is a full
// partitioning pass (histogram + scatter) over the input.
//
// Partitions are assigned by hash bits, so identical keys always land in the
// same partition and skew spreads uniformly.

#ifndef MEMAGG_CORE_RADIX_PARTITION_AGGREGATOR_H_
#define MEMAGG_CORE_RADIX_PARTITION_AGGREGATOR_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/aggregate.h"
#include "core/operator.h"
#include "core/result.h"
#include "hash/hash_fn.h"
#include "hash/linear_probing_map.h"
#include "util/bits.h"
#include "util/macros.h"

namespace memagg {

/// Partition-then-aggregate parallel operator.
template <typename Aggregate>
class RadixPartitionAggregator final : public VectorAggregator {
 public:
  using State = typename Aggregate::State;

  RadixPartitionAggregator(size_t expected_size, int num_threads)
      : num_threads_(num_threads),
        num_partitions_(NextPowerOfTwo(
            static_cast<uint64_t>(std::max(1, num_threads)))) {
    MEMAGG_CHECK(num_threads >= 1);
    partitions_.reserve(num_partitions_);
    for (size_t p = 0; p < num_partitions_; ++p) {
      partitions_.push_back(std::make_unique<LinearProbingMap<State>>(
          expected_size / num_partitions_ + 1));
    }
  }

  void Build(const uint64_t* keys, const uint64_t* values,
             size_t n) override {
    // Phase 1: per-chunk partition histograms (parallel).
    const size_t chunks = static_cast<size_t>(num_threads_);
    const size_t chunk_size = (n + chunks - 1) / chunks;
    std::vector<std::vector<size_t>> counts(
        chunks, std::vector<size_t>(num_partitions_, 0));
    RunChunks(n, chunk_size, [&](size_t c, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        ++counts[c][PartitionOf(keys[i])];
      }
    });

    // Prefix sums -> per-(chunk, partition) scatter offsets.
    std::vector<size_t> partition_starts(num_partitions_ + 1, 0);
    std::vector<std::vector<size_t>> offsets(
        chunks, std::vector<size_t>(num_partitions_, 0));
    {
      size_t running = 0;
      for (size_t p = 0; p < num_partitions_; ++p) {
        partition_starts[p] = running;
        for (size_t c = 0; c < chunks; ++c) {
          offsets[c][p] = running;
          running += counts[c][p];
        }
      }
      partition_starts[num_partitions_] = running;
    }

    // Phase 2: scatter records into partition-contiguous buffers (parallel).
    std::vector<std::pair<uint64_t, uint64_t>> scattered(n);
    RunChunks(n, chunk_size, [&](size_t c, size_t begin, size_t end) {
      auto chunk_offsets = offsets[c];
      for (size_t i = begin; i < end; ++i) {
        const uint64_t value =
            Aggregate::kNeedsValues && values != nullptr ? values[i] : 0;
        scattered[chunk_offsets[PartitionOf(keys[i])]++] = {keys[i], value};
      }
    });

    // Phase 3: aggregate each partition privately — disjoint key sets, so
    // no locks and no merge.
    RunPartitions([&](size_t p) {
      LinearProbingMap<State>& map = *partitions_[p];
      for (size_t i = partition_starts[p]; i < partition_starts[p + 1]; ++i) {
        Aggregate::Update(map.GetOrInsert(scattered[i].first),
                          scattered[i].second);
      }
    });
  }

  VectorResult Iterate() override {
    VectorResult result;
    result.reserve(NumGroups());
    for (const auto& partition : partitions_) {
      partition->ForEach([&result](uint64_t key, const State& state) {
        result.push_back(
            {key, Aggregate::Finalize(const_cast<State&>(state))});
      });
    }
    return result;
  }

  size_t NumGroups() const override {
    size_t total = 0;
    for (const auto& partition : partitions_) total += partition->size();
    return total;
  }

  size_t DataStructureBytes() const override {
    size_t total = 0;
    for (const auto& partition : partitions_) total += partition->MemoryBytes();
    return total;
  }

 private:
  size_t PartitionOf(uint64_t key) const {
    return (HashKey(key) >> 40) & (num_partitions_ - 1);
  }

  template <typename Fn>
  void RunChunks(size_t n, size_t chunk_size, Fn fn) {
    if (num_threads_ == 1) {
      fn(size_t{0}, size_t{0}, n);
      return;
    }
    std::vector<std::thread> threads;
    for (size_t c = 0; c < static_cast<size_t>(num_threads_); ++c) {
      const size_t begin = std::min(n, c * chunk_size);
      const size_t end = std::min(n, begin + chunk_size);
      threads.emplace_back([fn, c, begin, end] { fn(c, begin, end); });
    }
    for (auto& thread : threads) thread.join();
  }

  template <typename Fn>
  void RunPartitions(Fn fn) {
    if (num_threads_ == 1) {
      for (size_t p = 0; p < num_partitions_; ++p) fn(p);
      return;
    }
    std::vector<std::thread> threads;
    std::atomic<size_t> next{0};
    for (int t = 0; t < num_threads_; ++t) {
      threads.emplace_back([this, &fn, &next] {
        while (true) {
          const size_t p = next.fetch_add(1);
          if (p >= num_partitions_) return;
          fn(p);
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }

  int num_threads_;
  size_t num_partitions_;
  std::vector<std::unique_ptr<LinearProbingMap<State>>> partitions_;
};

}  // namespace memagg

#endif  // MEMAGG_CORE_RADIX_PARTITION_AGGREGATOR_H_
