// Radix-partitioned parallel aggregation (extension).
//
// The third classic parallel strategy from the paper's related work (Ye et
// al.'s PLAT lineage, §7): partition the input by key so that partitions are
// disjoint, then aggregate each partition in a private table with no
// synchronization *and no merge* — unlike LocalPartitionAggregator, whose
// thread-local tables overlap and must be merged. The price is a full
// partitioning pass (histogram + scatter) over the input.
//
// Partitions are assigned by hash bits, so identical keys always land in the
// same partition and skew spreads uniformly. Both input passes run on the
// morsel executor with per-*morsel* histograms/offsets: the morsel grid is
// deterministic (exec/morsel.h), so the scatter offsets line up no matter
// which worker claims which morsel.

#ifndef MEMAGG_CORE_RADIX_PARTITION_AGGREGATOR_H_
#define MEMAGG_CORE_RADIX_PARTITION_AGGREGATOR_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/aggregate.h"
#include "core/concepts.h"
#include "core/migratable.h"
#include "core/operator.h"
#include "core/result.h"
#include "exec/executor.h"
#include "hash/hash_fn.h"
#include "hash/linear_probing_map.h"
#include "obs/query_stats.h"
#include "util/bits.h"
#include "util/encoded_key.h"
#include "util/macros.h"

namespace memagg {

/// Partition-then-aggregate parallel operator. Radix partitions are
/// disjoint, so no state merging happens and any aggregate policy works
/// (the paper's route to parallel holistic aggregation).
template <AggregatePolicy Aggregate>
class RadixPartitionAggregator final : public VectorAggregator,
                                       public MigratableAggregator<Aggregate> {
 public:
  using State = typename Aggregate::State;
  using Partial = PartialAggState<Aggregate>;

  RadixPartitionAggregator(size_t expected_size, ExecutionContext exec)
      : exec_(exec),
        num_partitions_(NextPowerOfTwo(static_cast<uint64_t>(
            std::max(1, exec.num_threads)))) {
    partitions_.reserve(num_partitions_);
    for (size_t p = 0; p < num_partitions_; ++p) {
      partitions_.push_back(std::make_unique<LinearProbingMap<State>>(
          expected_size / num_partitions_ + 1));
    }
  }

  void Build(const uint64_t* keys, const uint64_t* values,
             size_t n) override {
    Executor executor(exec_);
    // Fix the morsel grain once so phases 1 and 2 see the same grid.
    const size_t grain = executor.MorselRows(n);
    const size_t num_morsels = NumMorselsFor(n, grain);

    // Phase 1: per-morsel partition histograms (parallel). The key hashes
    // are computed a batch at a time through the SIMD lane (hash_fn.h);
    // the histogram update itself stays scalar (scattered increments).
    PhaseTimer partition_timer(&stats_, StatPhase::kPartition);
    std::vector<std::vector<size_t>> counts(
        num_morsels, std::vector<size_t>(num_partitions_, 0));
    executor.ParallelFor(
        n,
        [&](const Morsel& m) {
          auto& morsel_counts = counts[m.index];
          uint64_t hashes[kHashBatch];
          for (size_t i = m.begin; i < m.end; i += kHashBatch) {
            const size_t chunk = std::min(kHashBatch, m.end - i);
            HashKeysBatch(keys + i, chunk, hashes);
            for (size_t j = 0; j < chunk; ++j) {
              ++morsel_counts[PartitionOfHash(hashes[j])];
            }
          }
        },
        grain);

    // Prefix sums -> per-(morsel, partition) scatter offsets.
    std::vector<size_t> partition_starts(num_partitions_ + 1, 0);
    std::vector<std::vector<size_t>> offsets(
        num_morsels, std::vector<size_t>(num_partitions_, 0));
    {
      size_t running = 0;
      for (size_t p = 0; p < num_partitions_; ++p) {
        partition_starts[p] = running;
        for (size_t m = 0; m < num_morsels; ++m) {
          offsets[m][p] = running;
          running += counts[m][p];
        }
      }
      partition_starts[num_partitions_] = running;
    }

    // Phase 2: scatter records into partition-contiguous buffers (parallel).
    std::vector<std::pair<uint64_t, uint64_t>> scattered(n);
    executor.ParallelFor(
        n,
        [&](const Morsel& m) {
          auto morsel_offsets = offsets[m.index];
          uint64_t hashes[kHashBatch];
          for (size_t i = m.begin; i < m.end; i += kHashBatch) {
            const size_t chunk = std::min(kHashBatch, m.end - i);
            HashKeysBatch(keys + i, chunk, hashes);
            for (size_t j = 0; j < chunk; ++j) {
              const uint64_t value = Aggregate::kNeedsValues && values != nullptr
                                         ? values[i + j]
                                         : 0;
              scattered[morsel_offsets[PartitionOfHash(hashes[j])]++] = {
                  keys[i + j], value};
            }
          }
        },
        grain);
    partition_timer.Stop();

    // Phase 3: aggregate each partition privately — disjoint key sets, so
    // no locks and no merge. Partitions are claimed one at a time (grain 1)
    // so skewed partition sizes balance across workers.
    executor.ParallelFor(
        num_partitions_,
        [&](const Morsel& m) {
          for (size_t p = m.begin; p < m.end; ++p) {
            LinearProbingMap<State>& map = *partitions_[p];
            for (size_t i = partition_starts[p]; i < partition_starts[p + 1];
                 ++i) {
              Aggregate::Update(map.GetOrInsert(scattered[i].first),
                                scattered[i].second);
            }
          }
        },
        /*grain=*/1);
  }

  VectorResult Iterate() override {
    VectorResult result;
    result.reserve(NumGroups());
    for (const auto& partition : partitions_) {
      partition->ForEach([&result](EncodedKey key, const State& state) {
        result.push_back(
            {key, Aggregate::Finalize(const_cast<State&>(state))});
      });
    }
    return result;
  }

  // --- MigratableAggregator (core/migratable.h) -----------------------------
  // The fixed Build above needs the whole input up front (histogram pass).
  // The morsel path instead routes rows *incrementally*: worker w aggregates
  // partition p's keys into a private table incr_[w * P + p] — each table
  // covers 1/P of the key space, so it stays cache-resident; Finish() merges
  // the worker copies of each partition in parallel (disjoint key ranges).

  void BeginConsume(int num_workers, size_t expected_rows) override {
    MEMAGG_CHECK(incr_.empty() && "BeginConsume is once-only");
    incr_workers_ = num_workers;
    incr_rows_ = std::make_unique<WorkerLocal<uint64_t>>(num_workers);
    const size_t tables = static_cast<size_t>(num_workers) * num_partitions_;
    incr_.reserve(tables);
    for (size_t t = 0; t < tables; ++t) {
      incr_.push_back(std::make_unique<LinearProbingMap<State>>(
          expected_rows / tables + 1));
    }
  }

  void ConsumeMorsel(const uint64_t* keys, const uint64_t* values,
                     const Morsel& m) override {
    const size_t base = static_cast<size_t>(m.worker) * num_partitions_;
    for (size_t i = m.begin; i < m.end; ++i) {
      const uint64_t value =
          Aggregate::kNeedsValues && values != nullptr ? values[i] : 0;
      LinearProbingMap<State>& table = *incr_[base + PartitionOf(keys[i])];
      Aggregate::Update(table.GetOrInsert(keys[i]), value);
    }
    (*incr_rows_)[m.worker] += m.end - m.begin;
  }

  ProgressSnapshot Progress() const override {
    ProgressSnapshot snapshot;
    if (incr_rows_ != nullptr) {
      for (int w = 0; w < incr_rows_->size(); ++w) {
        snapshot.rows += (*incr_rows_)[w];
      }
    }
    for (const auto& table : incr_) {
      snapshot.groups += table->size();  // Upper bound across worker copies.
      snapshot.bytes += table->MemoryBytes();
    }
    return snapshot;
  }

  Partial ExtractPartialState() override {
    Partial out;
    if (incr_rows_ != nullptr) {
      for (int w = 0; w < incr_rows_->size(); ++w) {
        out.rows += (*incr_rows_)[w];
        (*incr_rows_)[w] = 0;
      }
    }
    for (auto& table : incr_) {
      table->ForEach([&out](EncodedKey key, const State& state) {
        out.partials.emplace_back(key, std::move(const_cast<State&>(state)));
      });
    }
    incr_.clear();
    return out;
  }

  void AbsorbPartialState(Partial&& partial) override {
    MEMAGG_CHECK(!incr_.empty() && "call BeginConsume first");
    for (auto& [key, state] : partial.partials) {
      LinearProbingMap<State>& table = *incr_[PartitionOf(key)];
      if constexpr (MergeableAggregatePolicy<Aggregate>) {
        Aggregate::Merge(table.GetOrInsert(key), state);
      } else {
        MEMAGG_CHECK(false && "aggregate has no Merge; cannot absorb partials");
      }
    }
    for (const auto& [key, value] : partial.records) {
      LinearProbingMap<State>& table = *incr_[PartitionOf(key)];
      Aggregate::Update(table.GetOrInsert(key), value);
    }
    (*incr_rows_)[0] += partial.rows;
  }

  VectorResult Finish() override {
    if (incr_.empty()) return Iterate();
    // Fold every worker's copy of partition p into partitions_[p]; the
    // per-partition key ranges are disjoint, so partitions merge in parallel.
    if (incr_workers_ > 1) stats_.Add(StatCounter::kMergeRounds, 1);
    Executor(exec_).ParallelFor(
        num_partitions_,
        [&](const Morsel& m) {
          for (size_t p = m.begin; p < m.end; ++p) {
            LinearProbingMap<State>& into = *partitions_[p];
            for (int w = 0; w < incr_workers_; ++w) {
              LinearProbingMap<State>& from =
                  *incr_[static_cast<size_t>(w) * num_partitions_ + p];
              from.ForEach([&into](EncodedKey key, const State& state) {
                if constexpr (MergeableAggregatePolicy<Aggregate>) {
                  Aggregate::Merge(into.GetOrInsert(key),
                                   const_cast<State&>(state));
                } else {
                  MEMAGG_CHECK(false &&
                               "aggregate has no Merge; cannot finish the "
                               "incremental radix path");
                }
              });
              from = LinearProbingMap<State>(2);
            }
          }
        },
        /*grain=*/1);
    incr_.clear();
    return Iterate();
  }

  size_t NumGroups() const override {
    size_t total = 0;
    for (const auto& partition : partitions_) total += partition->size();
    return total;
  }

  size_t DataStructureBytes() const override {
    size_t total = 0;
    for (const auto& partition : partitions_) total += partition->MemoryBytes();
    return total;
  }

  void CollectStats(QueryStats* stats) const override {
    stats->Merge(stats_);
    stats->Add(StatCounter::kPartitions, num_partitions_);
    for (const auto& partition : partitions_) {
      stats->Add(StatCounter::kHashEntries, partition->size());
      stats->Add(StatCounter::kRehashes, partition->rehashes());
      const auto probe = partition->ComputeProbeStats();
      stats->Add(StatCounter::kProbeTotal, probe.total_probes);
      stats->MaxOf(StatCounter::kProbeMax, probe.max_probe);
      // Each partition table owns a private arena, freed wholesale with the
      // table after the merge-free iterate.
      AddAllocStats(stats, partition->AllocatorStats());
    }
  }

 private:
  /// Stack-buffer length for the batched hash passes: big enough to amortize
  /// the dispatch call, small enough to stay in L1 alongside the histogram.
  static constexpr size_t kHashBatch = 256;

  size_t PartitionOfHash(uint64_t hash) const {
    return (hash >> 40) & (num_partitions_ - 1);
  }

  size_t PartitionOf(EncodedKey key) const {
    return PartitionOfHash(HashKey(key));
  }

  ExecutionContext exec_;
  size_t num_partitions_;
  std::vector<std::unique_ptr<LinearProbingMap<State>>> partitions_;
  // Migratable-path tables: worker w, partition p at incr_[w * P + p].
  std::vector<std::unique_ptr<LinearProbingMap<State>>> incr_;
  std::unique_ptr<WorkerLocal<uint64_t>> incr_rows_;
  int incr_workers_ = 0;
  QueryStats stats_;  // Partition-subphase timing (histogram + scatter).
};

}  // namespace memagg

#endif  // MEMAGG_CORE_RADIX_PARTITION_AGGREGATOR_H_
