#include "core/table_exec.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "core/advisor.h"
#include "core/engine.h"

namespace memagg {
namespace {

void ValidateQuery(const Table& table, const TableQuery& query) {
  MEMAGG_CHECK(!query.group_by.empty() &&
               "a TableQuery needs at least one group-by column");
  MEMAGG_CHECK(!query.aggregates.empty() &&
               "a TableQuery needs at least one aggregate");
  for (const AggregateSpec& spec : query.aggregates) {
    if (!NeedsValueColumn(spec.function)) continue;
    MEMAGG_CHECK(table.ColumnNamed(spec.column).type() == ColumnType::kU64 &&
                 "aggregate measure columns must be u64 fixed-point");
  }
  if (query.has_filter) {
    MEMAGG_CHECK(table.ColumnNamed(query.filter_column).type() ==
                     ColumnType::kU64 &&
                 "filter columns must be u64");
  }
}

std::vector<uint64_t> FilterRows(const Table& table, const TableQuery& query) {
  const std::vector<uint64_t>& values =
      table.ColumnNamed(query.filter_column).u64();
  std::vector<uint64_t> rows;
  rows.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] <= query.filter_max) rows.push_back(i);
  }
  return rows;
}

/// Measure column for one aggregate, gathered through the selected rows
/// (or the column itself when the whole table runs).
std::vector<uint64_t> GatherValues(const Table& table,
                                   const std::string& column,
                                   const std::vector<uint64_t>* rows) {
  const std::vector<uint64_t>& source = table.ColumnNamed(column).u64();
  if (rows == nullptr) return source;
  std::vector<uint64_t> gathered(rows->size());
  for (size_t i = 0; i < rows->size(); ++i) {
    gathered[i] = source[(*rows)[i]];
  }
  return gathered;
}

std::string ResolveLabel(const std::string& label, const TableQuery& query,
                         int key_width_bits, const ExecutionContext& exec) {
  if (label != "auto") return label;
  WorkloadProfile profile;
  profile.output = OutputFormat::kVector;
  profile.category = QueryCategory(query);
  profile.has_range_condition = query.has_key_range;
  profile.num_threads = exec.num_threads;
  profile.key_width_bits = key_width_bits;
  return RecommendAlgorithm(profile);
}

std::string DefaultName(const AggregateSpec& spec) {
  if (!spec.output_name.empty()) return spec.output_name;
  return AggregateFunctionName(spec.function) + "(" + spec.column + ")";
}

/// Runs every aggregate over the shared encoded key column, aligns the
/// per-aggregate results by key, and emits canonical group order.
template <TableKeyCodec Codec>
TableQueryResult RunAggregates(const Table& table, const TableQuery& query,
                               const Codec& codec,
                               const std::vector<EncodedKey>& keys,
                               const std::vector<uint64_t>* rows,
                               const std::string& label,
                               const ExecutionContext& exec) {
  TableQueryResult result;
  result.label = label;
  result.key_width_bits = codec.width_bits();
  result.order_preserving = codec.order_preserving();
  result.rows_scanned = keys.size();

  // Pre-size to the record count, the paper's standing assumption; growable
  // structures shrink this via their own cardinality estimate.
  const size_t expected = keys.size();

  std::vector<EncodedKey> group_keys;
  std::unordered_map<EncodedKey, size_t> row_of;
  for (size_t a = 0; a < query.aggregates.size(); ++a) {
    const AggregateSpec& spec = query.aggregates[a];
    std::vector<uint64_t> values;
    const uint64_t* values_ptr = nullptr;
    if (NeedsValueColumn(spec.function)) {
      values = GatherValues(table, spec.column, rows);
      values_ptr = values.data();
    }
    VectorQueryExecution run =
        ExecuteVectorQuery(label, spec.function, keys.data(), values_ptr,
                           keys.size(), expected, exec);
    result.stats.Merge(run.stats);
    result.aggregate_names.push_back(DefaultName(spec));
    if (a == 0) {
      group_keys.reserve(run.result.size());
      row_of.reserve(run.result.size() * 2);
      std::vector<double> column(run.result.size());
      for (size_t g = 0; g < run.result.size(); ++g) {
        row_of.emplace(run.result[g].key, g);
        group_keys.push_back(run.result[g].key);
        column[g] = run.result[g].value;
      }
      MEMAGG_CHECK(row_of.size() == run.result.size() &&
                   "operator emitted a duplicate group key");
      result.aggregate_columns.push_back(std::move(column));
      continue;
    }
    // Later aggregates see the same key column, so their group sets must
    // match the first run's exactly; any drift is an operator bug.
    MEMAGG_CHECK(run.result.size() == group_keys.size() &&
                 "aggregate runs disagree on the group set");
    std::vector<double> column(group_keys.size());
    for (const GroupResult& group : run.result) {
      const auto it = row_of.find(group.key);
      MEMAGG_CHECK(it != row_of.end() &&
                   "aggregate runs disagree on the group set");
      column[it->second] = group.value;
    }
    result.aggregate_columns.push_back(std::move(column));
  }

  // Canonical output order. An order-preserving codec makes encoded order
  // the natural multi-column order; otherwise (DictKeyCodec, unsorted
  // dictionaries) sort by the decoded tuples — distinct keys decode to
  // distinct tuples, so the order is total either way.
  std::vector<DecodedKey> decoded = DecodeKeyColumn(codec, group_keys);
  std::vector<size_t> order(group_keys.size());
  std::iota(order.begin(), order.end(), size_t{0});
  if (codec.order_preserving()) {
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return group_keys[a] < group_keys[b];
    });
  } else {
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return std::lexicographical_compare(decoded[a].begin(), decoded[a].end(),
                                          decoded[b].begin(),
                                          decoded[b].end());
    });
  }
  result.group_keys.reserve(order.size());
  for (const size_t g : order) {
    result.group_keys.push_back(std::move(decoded[g]));
  }
  for (std::vector<double>& column : result.aggregate_columns) {
    std::vector<double> sorted_column(order.size());
    for (size_t g = 0; g < order.size(); ++g) {
      sorted_column[g] = column[order[g]];
    }
    column = std::move(sorted_column);
  }
  return result;
}

}  // namespace

FunctionCategory QueryCategory(const TableQuery& query) {
  FunctionCategory category = FunctionCategory::kDistributive;
  for (const AggregateSpec& spec : query.aggregates) {
    const FunctionCategory c = CategoryOf(spec.function);
    if (c == FunctionCategory::kHolistic) return FunctionCategory::kHolistic;
    if (c == FunctionCategory::kAlgebraic) category = c;
  }
  return category;
}

TableQueryResult ExecuteTableQuery(const Table& table, const TableQuery& query,
                                   const std::string& label,
                                   ExecutionContext exec) {
  ValidateQuery(table, query);

  std::vector<uint64_t> rows_storage;
  const std::vector<uint64_t>* rows = nullptr;
  if (query.has_filter) {
    rows_storage = FilterRows(table, query);
    rows = &rows_storage;
  }

  if (auto packed = PackedKeyCodec::TryBuild(table, query.group_by)) {
    std::vector<EncodedKey> keys =
        rows == nullptr ? packed->EncodeAll() : packed->EncodeRows(*rows);
    if (query.has_key_range) {
      const auto range =
          packed->LeadingFieldRange(query.key_range_lo, query.key_range_hi);
      std::vector<uint64_t> kept_rows;
      std::vector<EncodedKey> kept_keys;
      if (range.has_value()) {
        kept_rows.reserve(keys.size());
        kept_keys.reserve(keys.size());
        for (size_t i = 0; i < keys.size(); ++i) {
          if (keys[i] >= range->first && keys[i] <= range->second) {
            kept_rows.push_back(rows == nullptr ? i : (*rows)[i]);
            kept_keys.push_back(keys[i]);
          }
        }
      }
      rows_storage = std::move(kept_rows);
      rows = &rows_storage;
      keys = std::move(kept_keys);
    }
    const std::string resolved =
        ResolveLabel(label, query, packed->width_bits(), exec);
    return RunAggregates(table, query, *packed, keys, rows, resolved, exec);
  }

  // Wide composite: dictionary fallback. Its code space is dense and
  // unordered, so a key-range condition cannot map to an encoded range.
  MEMAGG_CHECK(!query.has_key_range &&
               "range conditions need an order-preserving key codec");
  const DictKeyCodec codec = DictKeyCodec::Build(table, query.group_by, rows);
  const std::string resolved =
      ResolveLabel(label, query, codec.width_bits(), exec);
  return RunAggregates(table, query, codec, codec.encoded(), rows, resolved,
                       exec);
}

}  // namespace memagg
