// Result types produced by the aggregation operators.

#ifndef MEMAGG_CORE_RESULT_H_
#define MEMAGG_CORE_RESULT_H_

#include <cstdint>
#include <vector>

#include "util/encoded_key.h"

namespace memagg {

/// One output row of a vector aggregation: a group key and its aggregate.
struct GroupResult {
  EncodedKey key = 0;
  double value = 0.0;

  friend bool operator==(const GroupResult& a, const GroupResult& b) {
    return a.key == b.key && a.value == b.value;
  }
};

/// Vector aggregation output: one row per distinct group key.
using VectorResult = std::vector<GroupResult>;

}  // namespace memagg

#endif  // MEMAGG_CORE_RESULT_H_
