#include "core/adaptive_aggregator.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace memagg {
namespace {

// Cost-model constants, in cycles. These are coarse calibrations against
// bench_figure12 on the reference machine — the model only has to rank
// strategies correctly near the decision boundaries, not predict absolute
// runtimes (see docs/adaptive.md for the calibration sweep).
constexpr double kProbeBase = 3.0;        // Cache-resident probe + update.
constexpr double kMissPenalty = 24.0;     // Added as the working set swamps L3.
constexpr double kPartitionPerRow = 2.5;  // Incremental radix routing.
constexpr double kAtomicPerRow = 20.0;    // Striped-lock acquire/release +
                                          // the fenced update (measured: the
                                          // striped map trails the private
                                          // tables ~2.5x per row at low
                                          // cardinality and the sort fallback
                                          // ~1.7x at high).
constexpr double kContentionPerRow = 30.0;  // Hot-stripe serialization, scaled
                                            // by skew and worker overlap.
constexpr double kMergePerGroup = 6.0;    // Move one group across tables.
constexpr double kSortPerRowLog = 1.2;    // Comparison sort, per row per log2.
constexpr double kScanPerRow = 1.5;       // Sorted-run aggregation scan.
constexpr double kMigratePerGroup = 150.0;   // Extract + re-insert one group
                                             // into a hash destination: walk
                                             // the drained tables, move the
                                             // state, re-probe the new
                                             // structure (measured end to end
                                             // on the Rseq-Shf sweep, not just
                                             // the pair move).
constexpr double kMigrateAppendPerGroup = 20.0;  // Into sort: buffer append.
constexpr double kMigratePerRecord = 25.0;   // Re-probe one buffered record
                                             // when leaving sort.
constexpr double kSwitchFixedCycles = 2e5;   // Tear down + construct + rewire.
constexpr double kBarrierCycles = 20000.0;  // Fork/join of one parallel phase.

constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

/// Expected cycles for one probe+update against a table whose working set is
/// `ws` bytes: the base cost plus a miss penalty that grows smoothly with
/// cache pressure. Hot keys under skew are effectively cache-resident, so the
/// caller passes a skew-discounted working set where appropriate.
double ProbeCost(double ws, double l3) {
  if (ws < 0) ws = 0;
  const double pressure = ws / (ws + l3);  // 0 when resident, → 1 past LLC.
  return kProbeBase + kMissPenalty * pressure;
}

double Log2AtLeast1(double x) { return std::log2(std::max(2.0, x)); }

}  // namespace

const char* AggStrategyName(AggStrategy strategy) {
  switch (strategy) {
    case AggStrategy::kSerialHash:
      return "hash";
    case AggStrategy::kLocalCentral:
      return "local-central";
    case AggStrategy::kLocalTree:
      return "local-tree";
    case AggStrategy::kRadix:
      return "radix";
    case AggStrategy::kSharedMap:
      return "shared-map";
    case AggStrategy::kSort:
      return "sort";
  }
  return "?";
}

bool StrategyApplicable(AggStrategy strategy, int workers) {
  switch (strategy) {
    case AggStrategy::kSerialHash:
      return workers == 1;
    case AggStrategy::kLocalCentral:
    case AggStrategy::kLocalTree:
    case AggStrategy::kRadix:
    case AggStrategy::kSharedMap:
      // The parallel designs degenerate to serial hash + merge overhead at
      // one worker; keep the inventory minimal there.
      return workers > 1;
    case AggStrategy::kSort:
      return true;
  }
  return false;
}

KeySampleStats MeasureKeySample(const uint64_t* keys, size_t n) {
  KeySampleStats stats;
  if (n == 0 || keys == nullptr) return stats;
  constexpr size_t kMaxSample = 4096;
  // Prime stride with wraparound so cyclic key layouts cannot resonate with
  // the sampling grid (the same defense as core/advisor.cc).
  constexpr size_t kPrimeStride = 2654435761u % 4093u;  // = Knuth mod prime.
  uint64_t sample[kMaxSample];
  const size_t count = std::min(n, kMaxSample);
  if (count == n) {
    for (size_t i = 0; i < count; ++i) sample[i] = keys[i];
  } else {
    size_t index = 0;
    for (size_t i = 0; i < count; ++i) {
      sample[i] = keys[index];
      index += kPrimeStride;
      if (index >= n) index -= n;
    }
  }
  std::sort(sample, sample + count);
  size_t distinct = 0;
  size_t singletons = 0;
  size_t top_run = 0;
  size_t run = 0;
  for (size_t i = 0; i < count; ++i) {
    if (i == 0 || sample[i] != sample[i - 1]) {
      if (run == 1) ++singletons;
      top_run = std::max(top_run, run);
      run = 0;
      ++distinct;
    }
    ++run;
  }
  if (run == 1) ++singletons;
  top_run = std::max(top_run, run);
  stats.sampled = count;
  stats.distinct = distinct;
  stats.top_frac = static_cast<double>(top_run) / static_cast<double>(count);
  stats.singleton_frac =
      static_cast<double>(singletons) / static_cast<double>(count);
  return stats;
}

double EstimatedStrategyCost(AggStrategy strategy,
                             const StrategyCostInputs& in) {
  const int w = std::max(1, in.workers);
  if (!StrategyApplicable(strategy, w)) return kInfiniteCost;
  const double rows = std::max(1.0, in.rows_remaining);
  const double groups = std::max(1.0, in.est_groups);
  const double workers = static_cast<double>(w);
  const double ws = groups * in.entry_bytes;
  // Under skew the hot head of the distribution stays resident regardless of
  // the table size, so discount the effective working set by the top-key mass.
  const double skew = std::min(0.9, std::max(0.0, in.skew));
  const double ws_hot = ws * (1.0 - skew);

  switch (strategy) {
    case AggStrategy::kSerialHash:
      return rows * ProbeCost(ws_hot, in.l3_bytes);
    case AggStrategy::kLocalCentral: {
      // Contention-free build on W private tables, then a serial walk of the
      // other W-1 tables into the first: merge cost scales with W·G wall-clock.
      const double build = rows / workers * ProbeCost(ws_hot, in.l3_bytes);
      const double merge = (workers - 1.0) * groups * kMergePerGroup;
      return build + merge + kBarrierCycles;
    }
    case AggStrategy::kLocalTree: {
      // Same build; pairwise merge rounds run in parallel, so wall-clock merge
      // is G per round times ceil(log2 W) rounds.
      const double build = rows / workers * ProbeCost(ws_hot, in.l3_bytes);
      const double rounds = std::ceil(Log2AtLeast1(workers));
      const double merge = rounds * (groups * kMergePerGroup + kBarrierCycles);
      return build + merge;
    }
    case AggStrategy::kRadix: {
      // Each key is routed to one of P ≈ W partitions, so every per-partition
      // table holds ~ws/P bytes — partitioning buys back cache residency at
      // high cardinality. The per-partition worker copies merge in parallel.
      const double partitions = workers;
      const double build =
          rows / workers *
          (kPartitionPerRow + ProbeCost(ws_hot / partitions, in.l3_bytes));
      // The incremental path keeps one table per (worker, partition); the
      // finish merges the W worker copies of each partition. Partitions
      // merge in parallel, but each holds up to W copies of its groups, so
      // the wall-clock merge is ~G·(W-1)/W ≈ G.
      const double merge = groups * kMergePerGroup;
      return build + merge + kBarrierCycles;
    }
    case AggStrategy::kSharedMap: {
      // One table, no merge phase, but every update pays an atomic and hot
      // stripes serialize under skew. The shared working set gets no skew
      // discount benefit multiplier beyond residency (hot keys = hot locks).
      const double contention =
          kContentionPerRow * skew * (1.0 - 1.0 / workers);
      return rows / workers *
             (ProbeCost(ws, in.l3_bytes) + kAtomicPerRow + contention);
    }
    case AggStrategy::kSort: {
      // Buffering is ~free; the bill is one parallel sort of the remaining
      // rows plus a serial aggregation scan. Cache-oblivious: no ws term —
      // which is exactly why sort wins once groups ≈ rows (the hash→sort
      // fallback regime).
      const double sort_cost =
          rows * kSortPerRowLog * Log2AtLeast1(rows) / workers;
      const double scan = rows * kScanPerRow;
      return sort_cost + scan + kBarrierCycles;
    }
  }
  return kInfiniteCost;
}

bool IsLocalPartitionPair(AggStrategy from, AggStrategy to) {
  const auto is_local = [](AggStrategy s) {
    return s == AggStrategy::kLocalCentral || s == AggStrategy::kLocalTree;
  };
  return is_local(from) && is_local(to);
}

double EstimatedMigrationCost(AggStrategy from, AggStrategy to,
                              const ProgressSnapshot& progress) {
  if (IsLocalPartitionPair(from, to)) return 0.0;  // Merge-mode flip only.
  if (from == AggStrategy::kSort) {
    // Sort buffers raw records; migration re-probes each one.
    return kSwitchFixedCycles +
           kMigratePerRecord * static_cast<double>(progress.rows);
  }
  // Hash-family states append into sort's buffers but re-probe into another
  // table — the hash→sort fallback is an order of magnitude cheaper than a
  // hash→hash move, which is what makes it viable late in a query.
  const double per_group =
      to == AggStrategy::kSort ? kMigrateAppendPerGroup : kMigratePerGroup;
  return kSwitchFixedCycles +
         per_group * static_cast<double>(progress.groups);
}

AggStrategy ChooseAggStrategy(const StrategyCostInputs& in) {
  AggStrategy best = AggStrategy::kSerialHash;
  double best_cost = kInfiniteCost;
  for (int s = 0; s < kNumAggStrategies; ++s) {
    const AggStrategy strategy = static_cast<AggStrategy>(s);
    const double cost = EstimatedStrategyCost(strategy, in);
    if (cost < best_cost) {
      best_cost = cost;
      best = strategy;
    }
  }
  return best;
}

AggStrategy NextApplicableStrategy(AggStrategy current, int workers) {
  int s = static_cast<int>(current);
  for (int step = 0; step < kNumAggStrategies; ++step) {
    s = (s + 1) % kNumAggStrategies;
    const AggStrategy candidate = static_cast<AggStrategy>(s);
    if (StrategyApplicable(candidate, workers)) return candidate;
  }
  return current;
}

}  // namespace memagg
