// Abstract aggregation-operator interfaces (paper Section 3).
//
// Every operator runs in two phases: a build phase that consumes the key
// column (and, for value-aggregating functions, the value column), and an
// iterate phase that emits the result rows. The phases are separate virtual
// calls so benchmarks can time them independently, as the paper's Figure 3
// and Figure 8 do.

#ifndef MEMAGG_CORE_OPERATOR_H_
#define MEMAGG_CORE_OPERATOR_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/result.h"
#include "util/macros.h"

namespace memagg {

struct QueryStats;  // obs/query_stats.h

/// Cheap point-in-time progress report from an aggregation operator, used by
/// the adaptive operator's cost models (core/adaptive_aggregator.h). All
/// three fields must be O(workers) to compute — never O(rows) or O(groups):
/// the adaptive operator polls this at every morsel-chunk barrier.
struct ProgressSnapshot {
  uint64_t rows = 0;    ///< Input rows consumed so far.
  uint64_t groups = 0;  ///< Distinct groups materialized so far (upper bound
                        ///< for per-worker structures before their merge).
  uint64_t bytes = 0;   ///< Bytes held by the operator's data structures
                        ///< (arena-backed containers report reserved bytes).
};

/// Operator for vector (GROUP BY) aggregation queries.
class VectorAggregator {
 public:
  virtual ~VectorAggregator() = default;

  /// Build phase: consumes `n` records. `values` may be nullptr when the
  /// aggregate ignores the value column (COUNT(*)).
  virtual void Build(const uint64_t* keys, const uint64_t* values,
                     size_t n) = 0;

  /// Ownership-transferring build: the operator may consume the columns
  /// in place instead of copying them. Sort-based operators override this to
  /// sort the caller's key array directly — the paper's in-place sorting,
  /// which is what makes sorting the most memory-efficient approach in its
  /// Tables 6-7. The default implementation builds from the columns and then
  /// discards them. `values` may be empty for COUNT(*). May be called only
  /// once, on an empty operator.
  virtual void BuildOwned(std::vector<uint64_t>&& keys,
                          std::vector<uint64_t>&& values) {
    Build(keys.data(), values.empty() ? nullptr : values.data(), keys.size());
  }

  /// Hint: the query will produce roughly `expected_groups` distinct groups.
  /// Operators backed by growable tables pre-size themselves to avoid rehash
  /// churn; others ignore it. Call before Build(), at most once.
  virtual void ReserveGroups(size_t expected_groups) { (void)expected_groups; }

  /// Iterate phase: emits one row per group. Row order is
  /// implementation-defined (sorted for trees/sorts, arbitrary for hashes).
  virtual VectorResult Iterate() = 0;

  /// True if the operator supports a native range-filtered iterate (Q7).
  /// Hash tables do not (paper Section 5.6).
  virtual bool SupportsRange() const { return false; }

  /// Iterate restricted to group keys in [lo, hi]. Only valid when
  /// SupportsRange().
  virtual VectorResult IterateRange(uint64_t lo, uint64_t hi) {
    (void)lo;
    (void)hi;
    MEMAGG_CHECK(false && "operator has no native range search");
    return {};
  }

  /// Number of groups currently held.
  virtual size_t NumGroups() const = 0;

  /// Approximate bytes held by the operator's data structure.
  virtual size_t DataStructureBytes() const = 0;

  /// Folds the operator's execution statistics (internal phase timings and
  /// structure-specific counters — see obs/query_stats.h) into `stats`.
  /// Called after the phases being reported have completed; walking the
  /// finished structure here is allowed (the cost is paid on demand, never
  /// on the build/iterate hot path).
  virtual void CollectStats(QueryStats* stats) const { (void)stats; }
};

/// Operator for scalar aggregation queries.
class ScalarAggregator {
 public:
  virtual ~ScalarAggregator() = default;

  /// Build phase (e.g. sorting the column or building an index).
  virtual void Build(const uint64_t* keys, const uint64_t* values,
                     size_t n) = 0;

  /// Iterate phase: produces the single scalar result.
  virtual double Finalize() = 0;
};

}  // namespace memagg

#endif  // MEMAGG_CORE_OPERATOR_H_
