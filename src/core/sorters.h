// Sorter functors bridging the sort substrate to the aggregation operators
// and benchmarks. Each sorter sorts a range of trivially copyable records by
// the EncodedKey key produced by a KeyOf functor, so the same functor works on
// plain key arrays (IdentityKey) and on (key, value) records (PairFirstKey).

#ifndef MEMAGG_CORE_SORTERS_H_
#define MEMAGG_CORE_SORTERS_H_

#include "core/concepts.h"
#include "sort/block_indirect_sort.h"
#include "sort/introsort.h"
#include "sort/parallel_quicksort.h"
#include "sort/quicksort.h"
#include "sort/radix_sort.h"
#include "sort/samplesort.h"
#include "sort/sort_common.h"
#include "sort/spreadsort.h"
#include "sort/task_quicksort.h"
#include "util/encoded_key.h"

namespace memagg {

/// Quicksort (paper: "Quicksort").
struct QuicksortSorter {
  template <SortableRecord T, KeyExtractor<T> KeyOf>
  void operator()(T* first, T* last, KeyOf key_of) const {
    QuickSort(first, last, KeyLess<KeyOf>{key_of});
  }
};

/// Introsort, the GCC std::sort strategy (paper: "Introsort").
struct IntrosortSorter {
  template <SortableRecord T, KeyExtractor<T> KeyOf>
  void operator()(T* first, T* last, KeyOf key_of) const {
    IntroSort(first, last, KeyLess<KeyOf>{key_of});
  }
};

/// Most-significant-bit radix sort (paper: "MSB Radix Sort").
struct MsbRadixSorter {
  template <SortableRecord T, KeyExtractor<T> KeyOf>
  void operator()(T* first, T* last, KeyOf key_of) const {
    MsbRadixSort(first, last, key_of);
  }
};

/// Least-significant-bit radix sort (paper: "LSB Radix Sort").
struct LsbRadixSorter {
  template <SortableRecord T, KeyExtractor<T> KeyOf>
  void operator()(T* first, T* last, KeyOf key_of) const {
    LsbRadixSort(first, last, key_of);
  }
};

/// Boost-style hybrid radix/comparison sort (paper: "Spreadsort").
struct SpreadsortSorter {
  template <SortableRecord T, KeyExtractor<T> KeyOf>
  void operator()(T* first, T* last, KeyOf key_of) const {
    SpreadSort(first, last, key_of);
  }
};

/// Parallel quicksort with load balancing (paper: "Sort_QSLB").
struct ParallelQuicksortSorter {
  int num_threads = 1;
  template <SortableRecord T, KeyExtractor<T> KeyOf>
  void operator()(T* first, T* last, KeyOf key_of) const {
    ParallelQuickSort(first, last, KeyLess<KeyOf>{key_of}, num_threads);
  }
};

/// Parallel sort-then-merge (paper: "Sort_BI").
struct BlockIndirectSorter {
  int num_threads = 1;
  template <SortableRecord T, KeyExtractor<T> KeyOf>
  void operator()(T* first, T* last, KeyOf key_of) const {
    BlockIndirectSort(first, last, KeyLess<KeyOf>{key_of}, num_threads);
  }
};

/// Parallel samplesort (paper: "Sort_SS").
struct SamplesortSorter {
  int num_threads = 1;
  template <SortableRecord T, KeyExtractor<T> KeyOf>
  void operator()(T* first, T* last, KeyOf key_of) const {
    SampleSort(first, last, KeyLess<KeyOf>{key_of}, num_threads);
  }
};

/// Task-pool quicksort (paper: "Sort_TBB").
struct TaskQuicksortSorter {
  int num_threads = 1;
  template <SortableRecord T, KeyExtractor<T> KeyOf>
  void operator()(T* first, T* last, KeyOf key_of) const {
    TaskQuickSort(first, last, KeyLess<KeyOf>{key_of}, num_threads);
  }
};

// Every functor above models Sorter; the thread-budgeted ones also model
// ParallelSorter (core/concepts.h).
static_assert(Sorter<QuicksortSorter>);
static_assert(Sorter<IntrosortSorter>);
static_assert(Sorter<MsbRadixSorter>);
static_assert(Sorter<LsbRadixSorter>);
static_assert(Sorter<SpreadsortSorter>);
static_assert(ParallelSorter<ParallelQuicksortSorter>);
static_assert(ParallelSorter<BlockIndirectSorter>);
static_assert(ParallelSorter<SamplesortSorter>);
static_assert(ParallelSorter<TaskQuicksortSorter>);

}  // namespace memagg

#endif  // MEMAGG_CORE_SORTERS_H_
