// Introsort (paper Section 3.1.2): quicksort with a 2*log2(n) recursion
// bound, switching to heapsort when the bound is exceeded and to insertion
// sort on small ranges — the GCC std::sort strategy the paper benchmarks as
// "Introsort".

#ifndef MEMAGG_SORT_INTROSORT_H_
#define MEMAGG_SORT_INTROSORT_H_

#include <cstddef>
#include <cstdint>

#include "sort/heapsort.h"
#include "sort/insertion_sort.h"
#include "sort/quicksort.h"
#include "sort/sort_common.h"
#include "util/bits.h"

namespace memagg {

namespace sort_internal {

template <typename T, typename Less>
void IntroSortImpl(T* first, T* last, int depth_budget, Less less) {
  while (last - first > kQuicksortInsertionThreshold) {
    if (depth_budget == 0) {
      HeapSort(first, last, less);
      return;
    }
    --depth_budget;
    T pivot = MedianOfThree(first, first + (last - first) / 2, last - 1, less);
    T* split = HoarePartition(first, last, pivot, less);
    if (split - first < last - split) {
      IntroSortImpl(first, split, depth_budget, less);
      first = split;
    } else {
      IntroSortImpl(split, last, depth_budget, less);
      last = split;
    }
  }
  InsertionSort(first, last, less);
}

}  // namespace sort_internal

/// Sorts [first, last) in place with introsort.
template <typename T, typename Less>
void IntroSort(T* first, T* last, Less less) {
  const ptrdiff_t n = last - first;
  if (n < 2) return;
  // GCC sets the recursion budget to 2 * log2(n).
  const int depth_budget = 2 * Log2Floor(static_cast<uint64_t>(n));
  sort_internal::IntroSortImpl(first, last, depth_budget, less);
}

/// Convenience overload for integer keys.
inline void IntroSort(uint64_t* first, uint64_t* last) {
  IntroSort(first, last, KeyLess<IdentityKey>{});
}

}  // namespace memagg

#endif  // MEMAGG_SORT_INTROSORT_H_
