// Spreadsort (paper Section 3.1.4): the Boost integer_sort hybrid invented by
// Steven J. Ross. MSB-radix "spreading" over up to 2^kMaxSplits buckets per
// level (bucket index = (key - min) >> log_divisor) until partitions fall
// below a threshold, at which point it switches to comparison sorting
// (Introsort). Combines radix throughput on large partitions with
// comparison-sort efficiency on small ones.

#ifndef MEMAGG_SORT_SPREADSORT_H_
#define MEMAGG_SORT_SPREADSORT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sort/introsort.h"
#include "sort/sort_common.h"
#include "util/bits.h"

namespace memagg {

namespace sort_internal {

/// Maximum number of bits split per radix level (Boost default for integers).
inline constexpr int kSpreadMaxSplits = 11;
/// Partitions at or below this size are finished with comparison sorting.
inline constexpr ptrdiff_t kSpreadComparisonThreshold = 512;

template <typename T, typename KeyOf>
void SpreadSortImpl(T* first, T* last, KeyOf key_of) {
  const ptrdiff_t n = last - first;
  if (n <= kSpreadComparisonThreshold) {
    IntroSort(first, last, KeyLess<KeyOf>{key_of});
    return;
  }

  uint64_t min_key = key_of(*first);
  uint64_t max_key = min_key;
  for (T* p = first + 1; p < last; ++p) {
    const uint64_t k = key_of(*p);
    if (k < min_key) min_key = k;
    if (k > max_key) max_key = k;
  }
  if (min_key == max_key) return;

  // Split on the top kSpreadMaxSplits bits of the remaining key range.
  const int log_range = Log2Floor(max_key - min_key) + 1;
  const int log_divisor = log_range > kSpreadMaxSplits
                              ? log_range - kSpreadMaxSplits
                              : 0;
  const size_t num_buckets =
      static_cast<size_t>(((max_key - min_key) >> log_divisor)) + 1;

  std::vector<size_t> counts(num_buckets, 0);
  for (T* p = first; p < last; ++p) {
    ++counts[(key_of(*p) - min_key) >> log_divisor];
  }

  std::vector<T*> heads(num_buckets);
  std::vector<T*> tails(num_buckets);
  {
    T* at = first;
    for (size_t b = 0; b < num_buckets; ++b) {
      heads[b] = at;
      at += counts[b];
      tails[b] = at;
    }
  }
  for (size_t b = 0; b < num_buckets; ++b) {
    while (heads[b] < tails[b]) {
      size_t dest = (key_of(*heads[b]) - min_key) >> log_divisor;
      if (dest == b) {
        ++heads[b];
      } else {
        std::swap(*heads[b], *heads[dest]);
        ++heads[dest];
      }
    }
  }

  if (log_divisor == 0) return;  // Each bucket holds one distinct key.
  T* at = first;
  for (size_t b = 0; b < num_buckets; ++b) {
    T* bucket_end = at + counts[b];
    if (bucket_end - at > 1) {
      SpreadSortImpl(at, bucket_end, key_of);
    }
    at = bucket_end;
  }
}

}  // namespace sort_internal

/// Sorts [first, last) in place with Spreadsort.
template <typename T, typename KeyOf>
void SpreadSort(T* first, T* last, KeyOf key_of) {
  if (last - first < 2) return;
  sort_internal::SpreadSortImpl(first, last, key_of);
}

inline void SpreadSort(uint64_t* first, uint64_t* last) {
  SpreadSort(first, last, IdentityKey{});
}

}  // namespace memagg

#endif  // MEMAGG_SORT_SPREADSORT_H_
