// Sort_TBB (paper Section 5.8): task-pool quicksort modelled on
// tbb::parallel_sort — a quicksort whose recursive halves are spawned as
// tasks into the process-wide scheduler (exec/task_scheduler.h), creating
// parallelism on demand up to the configured thread count.

#ifndef MEMAGG_SORT_TASK_QUICKSORT_H_
#define MEMAGG_SORT_TASK_QUICKSORT_H_

#include <cstddef>

#include "exec/task_scheduler.h"
#include "sort/introsort.h"
#include "sort/quicksort.h"
#include "sort/sort_common.h"

namespace memagg {

namespace sort_internal {

template <typename T, typename Less>
void TaskQuickSortBody(TaskGroup& group, T* first, T* last, Less less) {
  while (last - first > kParallelSequentialThreshold) {
    T pivot = MedianOfThree(first, first + (last - first) / 2, last - 1, less);
    T* split = HoarePartition(first, last, pivot, less);
    // Spawn the smaller half as a task, continue on the larger in-place.
    T* task_first;
    T* task_last;
    if (split - first < last - split) {
      task_first = first;
      task_last = split;
      first = split;
    } else {
      task_first = split;
      task_last = last;
      last = split;
    }
    group.Submit([&group, task_first, task_last, less] {
      TaskQuickSortBody(group, task_first, task_last, less);
    });
  }
  IntroSort(first, last, less);
}

}  // namespace sort_internal

/// Sorts [first, last) with `num_threads` workers.
template <typename T, typename Less>
void TaskQuickSort(T* first, T* last, Less less, int num_threads) {
  if (last - first < 2) return;
  if (num_threads <= 1 ||
      last - first <= sort_internal::kParallelSequentialThreshold) {
    IntroSort(first, last, less);
    return;
  }
  // The Wait()ing caller participates, so num_threads - 1 pool helpers give
  // num_threads total workers.
  TaskGroup group(num_threads - 1);
  group.Submit([&group, first, last, less] {
    sort_internal::TaskQuickSortBody(group, first, last, less);
  });
  group.Wait();
}

inline void TaskQuickSort(uint64_t* first, uint64_t* last, int num_threads) {
  TaskQuickSort(first, last, KeyLess<IdentityKey>{}, num_threads);
}

}  // namespace memagg

#endif  // MEMAGG_SORT_TASK_QUICKSORT_H_
