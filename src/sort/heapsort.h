// Heapsort: guaranteed O(n log n), used by Introsort when the quicksort
// recursion exceeds its depth bound (paper Section 3.1.2).

#ifndef MEMAGG_SORT_HEAPSORT_H_
#define MEMAGG_SORT_HEAPSORT_H_

#include <cstddef>
#include <utility>

namespace memagg {

namespace sort_internal {

template <typename T, typename Less>
void SiftDown(T* data, size_t start, size_t end, Less less) {
  size_t root = start;
  while (true) {
    size_t child = 2 * root + 1;
    if (child >= end) break;
    if (child + 1 < end && less(data[child], data[child + 1])) ++child;
    if (!less(data[root], data[child])) break;
    std::swap(data[root], data[child]);
    root = child;
  }
}

}  // namespace sort_internal

/// Sorts [first, last) in place using `less`.
template <typename T, typename Less>
void HeapSort(T* first, T* last, Less less) {
  const size_t n = static_cast<size_t>(last - first);
  if (n < 2) return;
  for (size_t i = n / 2; i-- > 0;) {
    sort_internal::SiftDown(first, i, n, less);
  }
  for (size_t end = n - 1; end > 0; --end) {
    std::swap(first[0], first[end]);
    sort_internal::SiftDown(first, 0, end, less);
  }
}

}  // namespace memagg

#endif  // MEMAGG_SORT_HEAPSORT_H_
