// Sort_SS (paper Section 5.8): Samplesort — a generalization of quicksort
// that derives p-1 splitters from an oversampled random sample, scatters the
// input into p buckets, and sorts the buckets in parallel.

#ifndef MEMAGG_SORT_SAMPLESORT_H_
#define MEMAGG_SORT_SAMPLESORT_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "exec/executor.h"
#include "sort/introsort.h"
#include "sort/sort_common.h"
#include "util/rng.h"

namespace memagg {

namespace sort_internal {

inline constexpr int kSampleOversampling = 32;

/// Routes records to samplesort buckets over a sorted splitter set.
///
/// A record strictly between two splitters has exactly one valid bucket. A
/// record *equal* to one or more splitters may go to any bucket in the span
/// [lower_bound, upper_bound] over the splitter array: equal elements need
/// no mutual ordering, so per-bucket sorting plus in-place concatenation is
/// globally sorted however ties are distributed. Plain upper_bound routing
/// sends every duplicate of a splitter value to one bucket, which collapses
/// duplicate-heavy inputs onto a single worker; instead ties are spread
/// round-robin across their valid span, keyed on the record's global index
/// so the histogram and scatter phases (which see the same indices) agree.
template <typename T, typename Less>
class SplitterRouter {
 public:
  SplitterRouter(std::vector<T> splitters, Less less)
      : splitters_(std::move(splitters)), less_(less) {}

  /// Bucket for the record at global position `index` with value `value`.
  size_t BucketOf(const T& value, size_t index) const {
    const size_t lo = static_cast<size_t>(
        std::lower_bound(splitters_.begin(), splitters_.end(), value, less_) -
        splitters_.begin());
    const size_t hi = static_cast<size_t>(
        std::upper_bound(splitters_.begin(), splitters_.end(), value, less_) -
        splitters_.begin());
    if (lo == hi) return lo;  // Not equal to any splitter: one valid bucket.
    return lo + index % (hi - lo + 1);
  }

  size_t num_buckets() const { return splitters_.size() + 1; }

 private:
  std::vector<T> splitters_;
  Less less_;
};

}  // namespace sort_internal

/// Sorts [first, last) with `num_threads` workers using samplesort.
template <typename T, typename Less>
void SampleSort(T* first, T* last, Less less, int num_threads) {
  const ptrdiff_t n = last - first;
  if (n < 2) return;
  if (num_threads <= 1 ||
      n <= sort_internal::kParallelSequentialThreshold) {
    IntroSort(first, last, less);
    return;
  }

  const size_t num_buckets = static_cast<size_t>(num_threads);
  const size_t sample_size =
      num_buckets * sort_internal::kSampleOversampling;

  // Draw and sort an oversampled set, then take every oversampling-th
  // element as a splitter.
  Rng rng;
  std::vector<T> sample(sample_size);
  for (auto& s : sample) {
    s = first[rng.NextBounded(static_cast<uint64_t>(n))];
  }
  IntroSort(sample.data(), sample.data() + sample.size(), less);
  std::vector<T> splitters(num_buckets - 1);
  for (size_t i = 0; i + 1 < num_buckets; ++i) {
    splitters[i] = sample[(i + 1) * sort_internal::kSampleOversampling];
  }
  const sort_internal::SplitterRouter<T, Less> router(std::move(splitters),
                                                      less);

  // Phase 1: per-morsel bucket histograms in parallel. The morsel grid is
  // deterministic, so the same grid indexes the scatter offsets in phase 2
  // regardless of which worker claims which morsel.
  Executor executor{ExecutionContext{num_threads}};
  const size_t rows = static_cast<size_t>(n);
  const size_t grain = executor.MorselRows(rows);
  const size_t num_morsels = NumMorselsFor(rows, grain);
  std::vector<std::vector<size_t>> morsel_counts(
      num_morsels, std::vector<size_t>(num_buckets, 0));
  executor.ParallelFor(
      rows,
      [&](const Morsel& m) {
        auto& counts = morsel_counts[m.index];
        for (size_t i = m.begin; i < m.end; ++i) {
          ++counts[router.BucketOf(first[i], i)];
        }
      },
      grain);

  // Exclusive prefix sums give each (morsel, bucket) its scatter offset.
  std::vector<std::vector<size_t>> morsel_offsets(
      num_morsels, std::vector<size_t>(num_buckets, 0));
  std::vector<size_t> bucket_starts(num_buckets + 1, 0);
  {
    size_t running = 0;
    for (size_t b = 0; b < num_buckets; ++b) {
      bucket_starts[b] = running;
      for (size_t m = 0; m < num_morsels; ++m) {
        morsel_offsets[m][b] = running;
        running += morsel_counts[m][b];
      }
    }
    bucket_starts[num_buckets] = running;
  }

  // Phase 2: parallel scatter into a temporary buffer.
  std::vector<T> scattered(rows);
  executor.ParallelFor(
      rows,
      [&](const Morsel& m) {
        auto offsets = morsel_offsets[m.index];
        for (size_t i = m.begin; i < m.end; ++i) {
          scattered[offsets[router.BucketOf(first[i], i)]++] = first[i];
        }
      },
      grain);

  // Phase 3: sort each bucket in parallel and copy back (buckets are already
  // in their final global positions). Grain 1: buckets are claimed one at a
  // time so skewed bucket sizes load-balance.
  executor.ParallelFor(
      num_buckets,
      [&](const Morsel& m) {
        for (size_t b = m.begin; b < m.end; ++b) {
          T* bucket_first = scattered.data() + bucket_starts[b];
          T* bucket_last = scattered.data() + bucket_starts[b + 1];
          IntroSort(bucket_first, bucket_last, less);
          std::copy(bucket_first, bucket_last, first + bucket_starts[b]);
        }
      },
      /*grain=*/1);
}

inline void SampleSort(uint64_t* first, uint64_t* last, int num_threads) {
  SampleSort(first, last, KeyLess<IdentityKey>{}, num_threads);
}

}  // namespace memagg

#endif  // MEMAGG_SORT_SAMPLESORT_H_
