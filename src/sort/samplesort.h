// Sort_SS (paper Section 5.8): Samplesort — a generalization of quicksort
// that derives p-1 splitters from an oversampled random sample, scatters the
// input into p buckets, and sorts the buckets in parallel.

#ifndef MEMAGG_SORT_SAMPLESORT_H_
#define MEMAGG_SORT_SAMPLESORT_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "sort/introsort.h"
#include "sort/sort_common.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace memagg {

namespace sort_internal {

inline constexpr int kSampleOversampling = 32;

}  // namespace sort_internal

/// Sorts [first, last) with `num_threads` workers using samplesort.
template <typename T, typename Less>
void SampleSort(T* first, T* last, Less less, int num_threads) {
  const ptrdiff_t n = last - first;
  if (n < 2) return;
  if (num_threads <= 1 ||
      n <= sort_internal::kParallelSequentialThreshold) {
    IntroSort(first, last, less);
    return;
  }

  const size_t num_buckets = static_cast<size_t>(num_threads);
  const size_t sample_size =
      num_buckets * sort_internal::kSampleOversampling;

  // Draw and sort an oversampled set, then take every oversampling-th
  // element as a splitter.
  Rng rng;
  std::vector<T> sample(sample_size);
  for (auto& s : sample) {
    s = first[rng.NextBounded(static_cast<uint64_t>(n))];
  }
  IntroSort(sample.data(), sample.data() + sample.size(), less);
  std::vector<T> splitters(num_buckets - 1);
  for (size_t i = 0; i + 1 < num_buckets; ++i) {
    splitters[i] = sample[(i + 1) * sort_internal::kSampleOversampling];
  }

  const auto bucket_of = [&](const T& value) {
    // Upper-bound over the sorted splitters.
    return static_cast<size_t>(
        std::upper_bound(splitters.begin(), splitters.end(), value, less) -
        splitters.begin());
  };

  // Phase 1: per-chunk bucket histograms in parallel.
  const int64_t chunks = num_threads;
  const ptrdiff_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::vector<size_t>> chunk_counts(
      static_cast<size_t>(chunks), std::vector<size_t>(num_buckets, 0));
  ThreadPool pool(num_threads);
  pool.ParallelFor(chunks, [&](int64_t c) {
    T* chunk_first = first + c * chunk_size;
    T* chunk_last = std::min(chunk_first + chunk_size, last);
    auto& counts = chunk_counts[static_cast<size_t>(c)];
    for (T* p = chunk_first; p < chunk_last; ++p) ++counts[bucket_of(*p)];
  });

  // Exclusive prefix sums give each (chunk, bucket) its scatter offset.
  std::vector<std::vector<size_t>> chunk_offsets(
      static_cast<size_t>(chunks), std::vector<size_t>(num_buckets, 0));
  std::vector<size_t> bucket_starts(num_buckets + 1, 0);
  {
    size_t running = 0;
    for (size_t b = 0; b < num_buckets; ++b) {
      bucket_starts[b] = running;
      for (int64_t c = 0; c < chunks; ++c) {
        chunk_offsets[static_cast<size_t>(c)][b] = running;
        running += chunk_counts[static_cast<size_t>(c)][b];
      }
    }
    bucket_starts[num_buckets] = running;
  }

  // Phase 2: parallel scatter into a temporary buffer.
  std::vector<T> scattered(static_cast<size_t>(n));
  pool.ParallelFor(chunks, [&](int64_t c) {
    T* chunk_first = first + c * chunk_size;
    T* chunk_last = std::min(chunk_first + chunk_size, last);
    auto offsets = chunk_offsets[static_cast<size_t>(c)];
    for (T* p = chunk_first; p < chunk_last; ++p) {
      scattered[offsets[bucket_of(*p)]++] = *p;
    }
  });

  // Phase 3: sort each bucket in parallel and copy back (buckets are already
  // in their final global positions).
  pool.ParallelFor(static_cast<int64_t>(num_buckets), [&](int64_t b) {
    T* bucket_first = scattered.data() + bucket_starts[static_cast<size_t>(b)];
    T* bucket_last = scattered.data() + bucket_starts[static_cast<size_t>(b) + 1];
    IntroSort(bucket_first, bucket_last, less);
    std::copy(bucket_first, bucket_last,
              first + bucket_starts[static_cast<size_t>(b)]);
  });
}

inline void SampleSort(uint64_t* first, uint64_t* last, int num_threads) {
  SampleSort(first, last, KeyLess<IdentityKey>{}, num_threads);
}

}  // namespace memagg

#endif  // MEMAGG_SORT_SAMPLESORT_H_
