// Insertion sort: O(n^2) worst case but the fastest option on tiny or
// nearly-sorted ranges. Used as the base case of Introsort, MSB radix sort,
// and Spreadsort (mirroring the GCC/Boost hybrids the paper evaluates).

#ifndef MEMAGG_SORT_INSERTION_SORT_H_
#define MEMAGG_SORT_INSERTION_SORT_H_

#include <cstddef>
#include <utility>

namespace memagg {

/// Sorts [first, last) in place using `less`.
template <typename T, typename Less>
void InsertionSort(T* first, T* last, Less less) {
  for (T* i = first + (last - first > 0 ? 1 : 0); i < last; ++i) {
    T value = std::move(*i);
    T* j = i;
    while (j > first && less(value, *(j - 1))) {
      *j = std::move(*(j - 1));
      --j;
    }
    *j = std::move(value);
  }
}

}  // namespace memagg

#endif  // MEMAGG_SORT_INSERTION_SORT_H_
