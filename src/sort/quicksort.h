// Quicksort (paper Section 3.1.1): Hoare-style partitioning with a
// median-of-three pivot and tail-recursion elimination on the larger side.
// Average O(n log n); no depth bound, so adversarial inputs can reach
// O(n^2) — that is the behaviour the paper contrasts with Introsort.

#ifndef MEMAGG_SORT_QUICKSORT_H_
#define MEMAGG_SORT_QUICKSORT_H_

#include <cstddef>
#include <utility>

#include "sort/insertion_sort.h"
#include "sort/sort_common.h"

namespace memagg {

namespace sort_internal {

inline constexpr ptrdiff_t kQuicksortInsertionThreshold = 16;

/// Median-of-three pivot selection: sorts *lo, *mid, *hi and returns *mid.
template <typename T, typename Less>
const T& MedianOfThree(T* lo, T* mid, T* hi, Less less) {
  if (less(*mid, *lo)) std::swap(*mid, *lo);
  if (less(*hi, *mid)) {
    std::swap(*hi, *mid);
    if (less(*mid, *lo)) std::swap(*mid, *lo);
  }
  return *mid;
}

/// Hoare partition around `pivot`; returns the split point. All elements in
/// [first, split) are <= pivot and all in [split, last) are >= pivot.
template <typename T, typename Less>
T* HoarePartition(T* first, T* last, T pivot, Less less) {
  T* lo = first - 1;
  T* hi = last;
  while (true) {
    do {
      ++lo;
    } while (less(*lo, pivot));
    do {
      --hi;
    } while (less(pivot, *hi));
    if (lo >= hi) return lo;
    std::swap(*lo, *hi);
  }
}

template <typename T, typename Less>
void QuickSortImpl(T* first, T* last, Less less) {
  while (last - first > kQuicksortInsertionThreshold) {
    T pivot = MedianOfThree(first, first + (last - first) / 2, last - 1, less);
    T* split = HoarePartition(first, last, pivot, less);
    // Recurse into the smaller side; loop on the larger to bound stack depth.
    if (split - first < last - split) {
      QuickSortImpl(first, split, less);
      first = split;
    } else {
      QuickSortImpl(split, last, less);
      last = split;
    }
  }
  InsertionSort(first, last, less);
}

}  // namespace sort_internal

/// Sorts [first, last) in place with quicksort.
template <typename T, typename Less>
void QuickSort(T* first, T* last, Less less) {
  if (last - first < 2) return;
  sort_internal::QuickSortImpl(first, last, less);
}

/// Convenience overload for integer keys.
inline void QuickSort(uint64_t* first, uint64_t* last) {
  QuickSort(first, last, KeyLess<IdentityKey>{});
}

}  // namespace memagg

#endif  // MEMAGG_SORT_QUICKSORT_H_
