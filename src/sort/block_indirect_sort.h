// Sort_BI (paper Section 5.8): block-based parallel merge sort modelled on
// Boost block_indirect_sort — "dividing the data into many parts, sorting
// them in parallel, and then merging them". Parts are introsorted in
// parallel, then merged pairwise in parallel rounds through a swap buffer.
// (Boost avoids the full-size buffer via block indirection; the merge
// schedule and scaling behaviour are the same.)

#ifndef MEMAGG_SORT_BLOCK_INDIRECT_SORT_H_
#define MEMAGG_SORT_BLOCK_INDIRECT_SORT_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "exec/executor.h"
#include "sort/introsort.h"
#include "sort/sort_common.h"
#include "util/bits.h"

namespace memagg {

/// Sorts [first, last) with `num_threads` workers.
template <typename T, typename Less>
void BlockIndirectSort(T* first, T* last, Less less, int num_threads) {
  const ptrdiff_t n = last - first;
  if (n < 2) return;
  if (num_threads <= 1 ||
      n <= sort_internal::kParallelSequentialThreshold) {
    IntroSort(first, last, less);
    return;
  }

  // Use ~4 parts per thread so the sort phase load-balances even when part
  // runtimes are uneven.
  const size_t num_parts = static_cast<size_t>(
      NextPowerOfTwo(static_cast<uint64_t>(num_threads) * 4));
  std::vector<ptrdiff_t> bounds(num_parts + 1);
  for (size_t p = 0; p <= num_parts; ++p) {
    bounds[p] = static_cast<ptrdiff_t>(
        (static_cast<unsigned __int128>(n) * p) / num_parts);
  }

  Executor executor{ExecutionContext{num_threads}};
  executor.ParallelFor(
      num_parts,
      [&](const Morsel& morsel) {
        for (size_t p = morsel.begin; p < morsel.end; ++p) {
          IntroSort(first + bounds[p], first + bounds[p + 1], less);
        }
      },
      /*grain=*/1);

  // log2(num_parts) rounds of pairwise parallel merges, ping-ponging between
  // the input array and a buffer.
  std::vector<T> buffer(static_cast<size_t>(n));
  T* src = first;
  T* dst = buffer.data();
  for (size_t width = 1; width < num_parts; width *= 2) {
    const size_t num_merges = num_parts / (2 * width);
    executor.ParallelFor(
        num_merges,
        [&](const Morsel& morsel) {
          for (size_t m = morsel.begin; m < morsel.end; ++m) {
            const size_t lo_part = m * 2 * width;
            const ptrdiff_t lo = bounds[lo_part];
            const ptrdiff_t mid = bounds[lo_part + width];
            const ptrdiff_t hi = bounds[lo_part + 2 * width];
            std::merge(src + lo, src + mid, src + mid, src + hi, dst + lo,
                       less);
          }
        },
        /*grain=*/1);
    std::swap(src, dst);
  }
  if (src != first) {
    std::copy(src, src + n, first);
  }
}

inline void BlockIndirectSort(uint64_t* first, uint64_t* last,
                              int num_threads) {
  BlockIndirectSort(first, last, KeyLess<IdentityKey>{}, num_threads);
}

}  // namespace memagg

#endif  // MEMAGG_SORT_BLOCK_INDIRECT_SORT_H_
