// Radix sorts (paper Section 3.1.3): byte-wise LSB (stable, out-of-place
// counting passes) and MSB (in-place American-flag partitioning, recursing
// top-down). Both are O(k*n) in the key width k and both skip byte positions
// that are constant across the input, so narrow key ranges cost fewer passes.

#ifndef MEMAGG_SORT_RADIX_SORT_H_
#define MEMAGG_SORT_RADIX_SORT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sort/insertion_sort.h"
#include "sort/sort_common.h"
#include "util/bits.h"

namespace memagg {

namespace sort_internal {

inline constexpr ptrdiff_t kRadixInsertionThreshold = 64;
inline constexpr int kRadixBits = 8;
inline constexpr size_t kRadixBuckets = 1u << kRadixBits;

template <typename T, typename KeyOf>
void MsbRadixSortImpl(T* first, T* last, int shift, KeyOf key_of) {
  const ptrdiff_t n = last - first;
  if (n <= kRadixInsertionThreshold) {
    InsertionSort(first, last, KeyLess<KeyOf>{key_of});
    return;
  }

  size_t counts[kRadixBuckets] = {};
  for (T* p = first; p < last; ++p) {
    ++counts[(key_of(*p) >> shift) & 0xff];
  }

  // Bucket boundaries: heads advance as elements settle; tails are fixed.
  T* heads[kRadixBuckets];
  T* tails[kRadixBuckets];
  {
    T* at = first;
    for (size_t b = 0; b < kRadixBuckets; ++b) {
      heads[b] = at;
      at += counts[b];
      tails[b] = at;
    }
  }

  // American-flag in-place permutation: repeatedly move the element at each
  // bucket head to its destination bucket until every bucket is full.
  for (size_t b = 0; b < kRadixBuckets; ++b) {
    while (heads[b] < tails[b]) {
      size_t dest = (key_of(*heads[b]) >> shift) & 0xff;
      if (dest == b) {
        ++heads[b];
      } else {
        std::swap(*heads[b], *heads[dest]);
        ++heads[dest];
      }
    }
  }

  if (shift == 0) return;
  T* at = first;
  for (size_t b = 0; b < kRadixBuckets; ++b) {
    T* bucket_end = at + counts[b];
    if (bucket_end - at > 1) {
      MsbRadixSortImpl(at, bucket_end, shift - kRadixBits, key_of);
    }
    at = bucket_end;
  }
}

}  // namespace sort_internal

/// Most-significant-byte radix sort: in-place, not stable.
template <typename T, typename KeyOf>
void MsbRadixSort(T* first, T* last, KeyOf key_of) {
  const ptrdiff_t n = last - first;
  if (n < 2) return;
  // Find the highest byte where keys differ; bytes above it are constant and
  // need no pass.
  uint64_t or_all = 0;
  uint64_t and_all = ~0ULL;
  for (T* p = first; p < last; ++p) {
    const uint64_t k = key_of(*p);
    or_all |= k;
    and_all &= k;
  }
  const uint64_t diff = or_all ^ and_all;
  if (diff == 0) return;  // All keys identical.
  const int top_byte = Log2Floor(diff) / sort_internal::kRadixBits;
  sort_internal::MsbRadixSortImpl(first, last,
                                  top_byte * sort_internal::kRadixBits, key_of);
}

inline void MsbRadixSort(uint64_t* first, uint64_t* last) {
  MsbRadixSort(first, last, IdentityKey{});
}

/// Least-significant-byte radix sort: stable, uses an n-element buffer.
template <typename T, typename KeyOf>
void LsbRadixSort(T* first, T* last, KeyOf key_of) {
  const size_t n = static_cast<size_t>(last - first);
  if (n < 2) return;

  uint64_t or_all = 0;
  uint64_t and_all = ~0ULL;
  for (T* p = first; p < last; ++p) {
    const uint64_t k = key_of(*p);
    or_all |= k;
    and_all &= k;
  }
  const uint64_t diff = or_all ^ and_all;
  if (diff == 0) return;

  std::vector<T> buffer(n);
  T* src = first;
  T* dst = buffer.data();
  for (int shift = 0; shift < 64; shift += sort_internal::kRadixBits) {
    if (((diff >> shift) & 0xff) == 0) continue;  // Constant byte: skip pass.
    size_t counts[sort_internal::kRadixBuckets] = {};
    for (size_t i = 0; i < n; ++i) {
      ++counts[(key_of(src[i]) >> shift) & 0xff];
    }
    size_t offsets[sort_internal::kRadixBuckets];
    size_t running = 0;
    for (size_t b = 0; b < sort_internal::kRadixBuckets; ++b) {
      offsets[b] = running;
      running += counts[b];
    }
    for (size_t i = 0; i < n; ++i) {
      dst[offsets[(key_of(src[i]) >> shift) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != first) {
    for (size_t i = 0; i < n; ++i) first[i] = src[i];
  }
}

inline void LsbRadixSort(uint64_t* first, uint64_t* last) {
  LsbRadixSort(first, last, IdentityKey{});
}

}  // namespace memagg

#endif  // MEMAGG_SORT_RADIX_SORT_H_
