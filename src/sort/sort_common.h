// Shared helpers for the sorting algorithms.
//
// All memagg sorts are written against random-access ranges of trivially
// copyable elements. Radix-based sorts additionally need a KeyOf functor that
// maps an element to its uint64_t sort key; comparison sorts derive their
// ordering from the same key so that every algorithm sorts identically.

#ifndef MEMAGG_SORT_SORT_COMMON_H_
#define MEMAGG_SORT_SORT_COMMON_H_

#include <cstddef>
#include <cstdint>
#include <utility>

namespace memagg {

/// KeyOf for plain integer arrays.
struct IdentityKey {
  uint64_t operator()(uint64_t v) const { return v; }
};

/// KeyOf for (key, value) records sorted by key.
struct PairFirstKey {
  uint64_t operator()(const std::pair<uint64_t, uint64_t>& v) const {
    return v.first;
  }
};

namespace sort_internal {

/// Ranges at or below this size are sorted sequentially by the parallel
/// sorts; it bounds task-spawning overhead.
inline constexpr ptrdiff_t kParallelSequentialThreshold = 1 << 14;

}  // namespace sort_internal

/// Comparator induced by a KeyOf functor.
template <typename KeyOf>
struct KeyLess {
  KeyOf key_of;
  template <typename T>
  bool operator()(const T& a, const T& b) const {
    return key_of(a) < key_of(b);
  }
};

}  // namespace memagg

#endif  // MEMAGG_SORT_SORT_COMMON_H_
