// Sort_QSLB (paper Section 5.8): parallel quicksort with dynamic load
// balancing, modelled on GCC's parallel-mode balanced quicksort. Unsorted
// ranges are published as tasks on the process-wide scheduler
// (exec/task_scheduler.h): each worker takes a range, partitions it,
// publishes the larger half for any idle worker to pick up, and keeps
// refining the smaller half. Small ranges are finished locally with
// Introsort.

#ifndef MEMAGG_SORT_PARALLEL_QUICKSORT_H_
#define MEMAGG_SORT_PARALLEL_QUICKSORT_H_

#include <cstddef>

#include "exec/task_scheduler.h"
#include "sort/introsort.h"
#include "sort/quicksort.h"
#include "sort/sort_common.h"

namespace memagg {

namespace sort_internal {

template <typename T, typename Less>
void BalancedQuickSortRange(TaskGroup& group, T* first, T* last, Less less) {
  while (last - first > kParallelSequentialThreshold) {
    T pivot = MedianOfThree(first, first + (last - first) / 2, last - 1, less);
    T* split = HoarePartition(first, last, pivot, less);
    // Publish the larger half for idle workers; keep refining the smaller.
    T* publish_first;
    T* publish_last;
    if (split - first < last - split) {
      publish_first = split;
      publish_last = last;
      last = split;
    } else {
      publish_first = first;
      publish_last = split;
      first = split;
    }
    group.Submit([&group, publish_first, publish_last, less] {
      BalancedQuickSortRange(group, publish_first, publish_last, less);
    });
  }
  IntroSort(first, last, less);
}

}  // namespace sort_internal

/// Sorts [first, last) with `num_threads` cooperating workers.
template <typename T, typename Less>
void ParallelQuickSort(T* first, T* last, Less less, int num_threads) {
  if (last - first < 2) return;
  if (num_threads <= 1 ||
      last - first <= sort_internal::kParallelSequentialThreshold) {
    IntroSort(first, last, less);
    return;
  }
  TaskGroup group(num_threads - 1);
  group.Submit([&group, first, last, less] {
    sort_internal::BalancedQuickSortRange(group, first, last, less);
  });
  group.Wait();
}

inline void ParallelQuickSort(uint64_t* first, uint64_t* last,
                              int num_threads) {
  ParallelQuickSort(first, last, KeyLess<IdentityKey>{}, num_threads);
}

}  // namespace memagg

#endif  // MEMAGG_SORT_PARALLEL_QUICKSORT_H_
