// Sort_QSLB (paper Section 5.8): parallel quicksort with dynamic load
// balancing, modelled on GCC's parallel-mode balanced quicksort. Workers
// share a stack of unsorted ranges: each worker pops a range, partitions it,
// pushes one half back for any idle worker to steal, and keeps refining the
// other half. Small ranges are finished locally with Introsort.

#ifndef MEMAGG_SORT_PARALLEL_QUICKSORT_H_
#define MEMAGG_SORT_PARALLEL_QUICKSORT_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "sort/introsort.h"
#include "sort/quicksort.h"
#include "sort/sort_common.h"

namespace memagg {

namespace sort_internal {

template <typename T, typename Less>
class QuicksortLoadBalancer {
 public:
  QuicksortLoadBalancer(Less less) : less_(less) {}

  void Run(T* first, T* last, int num_threads) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ranges_.push_back({first, last});
    }
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
      threads.emplace_back([this] { WorkerLoop(); });
    }
    for (auto& t : threads) t.join();
  }

 private:
  struct Range {
    T* first;
    T* last;
  };

  void WorkerLoop() {
    while (true) {
      Range range;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_changed_.wait(lock, [this] {
          return !ranges_.empty() || busy_workers_ == 0;
        });
        if (ranges_.empty()) {
          // No queued work and nobody can produce more: sorting is complete.
          work_changed_.notify_all();
          return;
        }
        range = ranges_.back();
        ranges_.pop_back();
        ++busy_workers_;
      }
      ProcessRange(range);
      {
        std::unique_lock<std::mutex> lock(mutex_);
        --busy_workers_;
      }
      work_changed_.notify_all();
    }
  }

  void ProcessRange(Range range) {
    T* first = range.first;
    T* last = range.last;
    while (last - first > kParallelSequentialThreshold) {
      T pivot =
          MedianOfThree(first, first + (last - first) / 2, last - 1, less_);
      T* split = HoarePartition(first, last, pivot, less_);
      // Publish the larger half for idle workers; keep refining the smaller.
      Range publish;
      if (split - first < last - split) {
        publish = {split, last};
        last = split;
      } else {
        publish = {first, split};
        first = split;
      }
      {
        std::unique_lock<std::mutex> lock(mutex_);
        ranges_.push_back(publish);
      }
      work_changed_.notify_one();
    }
    IntroSort(first, last, less_);
  }

  Less less_;
  std::mutex mutex_;
  std::condition_variable work_changed_;
  std::vector<Range> ranges_;
  int busy_workers_ = 0;
};

}  // namespace sort_internal

/// Sorts [first, last) with `num_threads` cooperating workers.
template <typename T, typename Less>
void ParallelQuickSort(T* first, T* last, Less less, int num_threads) {
  if (last - first < 2) return;
  if (num_threads <= 1 ||
      last - first <= sort_internal::kParallelSequentialThreshold) {
    IntroSort(first, last, less);
    return;
  }
  sort_internal::QuicksortLoadBalancer<T, Less> balancer(less);
  balancer.Run(first, last, num_threads);
}

inline void ParallelQuickSort(uint64_t* first, uint64_t* last,
                              int num_threads) {
  ParallelQuickSort(first, last, KeyLess<IdentityKey>{}, num_threads);
}

}  // namespace memagg

#endif  // MEMAGG_SORT_PARALLEL_QUICKSORT_H_
