// Lock ranks: a total order over every lock in memagg, plus a debug-mode
// runtime enforcer that turns deadlock freedom into a checked property.
//
// The Clang thread-safety annotations (util/thread_annotations.h) prove
// *which* lock guards *what*; they say nothing about the *order* locks are
// taken in. A cycle in the acquires-while-holding relation is a deadlock
// waiting for the right interleaving, so every lock declares a LockRank and
// the rule is: a thread may only acquire a lock whose rank is strictly
// greater than every rank it already holds. Ranks ascend from the scheduling
// substrate down to leaf locks, mirroring the call direction (schedulers
// call into operators call into maps, never back up).
//
// Two deliberate relaxations:
//   * kUnranked locks (the default for wrappers constructed without a rank —
//     tests, scratch code) are recorded for re-acquisition detection but are
//     exempt from the ordering check.
//   * Ranks listed by AllowsSameRank() may be held several at a time, but
//     only in ascending *address* order — the classic stripe-lock protocol
//     (CuckooMap::StripePair locks its two stripes in index order, and the
//     stripes live in one array, so index order is address order).
//
// Enforcement (cmake -DMEMAGG_LOCK_RANK=ON) keeps a per-thread stack of
// held (lock, rank) entries; an out-of-order acquisition, a same-rank
// acquisition outside the stripe protocol, re-acquiring a held lock, or
// blocking in TaskGroup::Wait/ThreadPool::Wait while holding any lock
// aborts with both ranks named. The static counterpart is
// tools/astlint/astlint.py, which extracts the whole-repo
// acquires-while-holding graph from the sources and fails CI on any cycle
// or rank inversion — the enforcer checks the orders that ran, astlint
// checks the orders that could.
//
// The rank map (which lock holds which rank and why) is documented in
// docs/static_analysis.md; keep the two in sync.

#ifndef MEMAGG_UTIL_LOCK_RANK_H_
#define MEMAGG_UTIL_LOCK_RANK_H_

namespace memagg {

/// One level per lock (or per lock family, for stripe arrays). Numeric gaps
/// leave room to slot new locks between existing levels without renumbering.
enum class LockRank : int {
  kUnranked = 0,  ///< Opt-out: recorded but not ordered (tests, scratch).

  // Scheduling substrate. These are never held while calling into operator
  // or structure code (task bodies run with every scheduler lock released),
  // so everything below may submit work without inverting.
  kSchedulerPool = 100,   ///< TaskScheduler::pool_mutex_ (lazy pool init).
  kTaskGroup = 200,       ///< TaskGroup::State::mutex (queue + in-flight).
  kThreadPoolQueue = 300, ///< ThreadPool::mutex_ (shared FIFO queue).

  // Concurrent hash structures. The cuckoo chain resize -> eviction ->
  // stripe is the deepest real nesting in the repo.
  kCuckooResize = 400,    ///< CuckooMap::resize_mutex_ (bucket array).
  kCuckooEviction = 410,  ///< CuckooMap::eviction_mutex_ (BFS paths).
  kCuckooStripe = 450,    ///< CuckooMap::locks_[] — lockrank:same-rank(address-ordered)
  kMapStripe = 500,       ///< StripedMap::locks_[] (one at a time).

  // Leaf locks: nothing is ever acquired under these.
  kAggregateState = 600,  ///< Per-group holistic aggregate buffers.
};

/// Ranks that may be held several at a time, in ascending address order.
constexpr bool AllowsSameRank(LockRank rank) {
  return rank == LockRank::kCuckooStripe;
}

namespace lockrank {

#if defined(MEMAGG_LOCK_RANK)

/// Records `lock` as held by this thread and checks the ordering rule.
/// `try_acquire` entries are recorded but exempt from the ordering check
/// (a failed try_lock cannot deadlock; backoff protocols legitimately probe
/// out of order).
void OnAcquire(const void* lock, LockRank rank, bool try_acquire = false);

/// Removes `lock` from this thread's held stack; aborts if it is not held.
void OnRelease(const void* lock);

/// Aborts if this thread holds any lock (ranked or not). Called on entry to
/// cooperative/blocking waits: a thread that drains other tasks (or parks)
/// while holding a lock deadlocks as soon as one of those tasks wants it.
void AssertNoneHeld(const char* what);

/// Number of locks this thread currently holds (tests).
int HeldCount();

#else  // !MEMAGG_LOCK_RANK — zero-overhead no-ops.

inline void OnAcquire(const void*, LockRank, bool = false) {}
inline void OnRelease(const void*) {}
inline void AssertNoneHeld(const char*) {}
inline int HeldCount() { return 0; }

#endif  // MEMAGG_LOCK_RANK

}  // namespace lockrank
}  // namespace memagg

#endif  // MEMAGG_UTIL_LOCK_RANK_H_
