#include "util/simd.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace memagg {
namespace simd {
namespace {

template <SimdOps Ops>
constexpr SimdDispatchTable MakeTable() {
  return SimdDispatchTable{
      Ops::Lane(),          Ops::Name(),      &Ops::MatchByteTag,
      &Ops::MatchEmpty,     &Ops::FindByte16, &Ops::FindByte32,
      &Ops::MatchKey4,      &Ops::HashBatch,
  };
}

constexpr SimdDispatchTable kScalarTable = MakeTable<ScalarOps>();
constexpr SimdDispatchTable kSse42Table = MakeTable<Sse42Ops>();
constexpr SimdDispatchTable kAvx2Table = MakeTable<Avx2Ops>();

const SimdDispatchTable& TableFor(SimdLane lane) {
  switch (lane) {
    case SimdLane::kSse42:
      return kSse42Table;
    case SimdLane::kAvx2:
      return kAvx2Table;
    case SimdLane::kScalar:
      break;
  }
  return kScalarTable;
}

SimdLane WidestSupported() {
  if (SimdLaneSupported(SimdLane::kAvx2)) return SimdLane::kAvx2;
  if (SimdLaneSupported(SimdLane::kSse42)) return SimdLane::kSse42;
  return SimdLane::kScalar;
}

/// Parses MEMAGG_SIMD. Returns true and sets `lane` on a recognized value;
/// unrecognized values warn and fall through to auto-detection.
bool ParseLaneOverride(SimdLane& lane) {
  const char* env = std::getenv("MEMAGG_SIMD");
  if (env == nullptr || *env == '\0') return false;
  if (std::strcmp(env, "scalar") == 0) {
    lane = SimdLane::kScalar;
  } else if (std::strcmp(env, "sse42") == 0) {
    lane = SimdLane::kSse42;
  } else if (std::strcmp(env, "avx2") == 0) {
    lane = SimdLane::kAvx2;
  } else {
    std::fprintf(stderr,
                 "memagg: ignoring MEMAGG_SIMD=%s "
                 "(expected scalar|sse42|avx2)\n",
                 env);
    return false;
  }
  return true;
}

SimdLane SelectLane() {
  SimdLane lane;
  if (ParseLaneOverride(lane)) {
    if (SimdLaneSupported(lane)) return lane;
    const SimdLane fallback = WidestSupported();
    std::fprintf(stderr,
                 "memagg: MEMAGG_SIMD=%s not supported on this CPU; "
                 "using %s\n",
                 SimdLaneName(lane), SimdLaneName(fallback));
    return fallback;
  }
  return WidestSupported();
}

}  // namespace

bool SimdLaneSupported(SimdLane lane) {
#if MEMAGG_SIMD_X86
  switch (lane) {
    case SimdLane::kScalar:
      return true;
    case SimdLane::kSse42:
      return __builtin_cpu_supports("sse4.2") != 0;
    case SimdLane::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
  }
  return false;
#else
  return lane == SimdLane::kScalar;
#endif
}

const char* SimdLaneName(SimdLane lane) {
  switch (lane) {
    case SimdLane::kScalar:
      return "scalar";
    case SimdLane::kSse42:
      return "sse42";
    case SimdLane::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const SimdDispatchTable& ActiveSimd() {
  // Selected exactly once, on first use, thread-safely (magic static).
  // Re-reading MEMAGG_SIMD mid-run is deliberately impossible: a table
  // probed under one lane keeps that lane for its lifetime.
  static const SimdDispatchTable& table = TableFor(SelectLane());
  return table;
}

}  // namespace simd
}  // namespace memagg
