// Project-wide helper macros: contract checks and branch hints.
//
// memagg follows the Google C++ style rule of not using exceptions. Contract
// violations abort the process through MEMAGG_CHECK; recoverable conditions
// are reported through return values.

#ifndef MEMAGG_UTIL_MACROS_H_
#define MEMAGG_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a diagnostic if `condition` is false. Enabled in all builds.
#define MEMAGG_CHECK(condition)                                           \
  do {                                                                    \
    if (!(condition)) {                                                   \
      std::fprintf(stderr, "MEMAGG_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #condition);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

/// Debug-only variant of MEMAGG_CHECK; compiles to nothing under NDEBUG.
#ifdef NDEBUG
#define MEMAGG_DCHECK(condition) \
  do {                           \
  } while (0)
#else
#define MEMAGG_DCHECK(condition) MEMAGG_CHECK(condition)
#endif

#define MEMAGG_LIKELY(x) __builtin_expect(!!(x), 1)
#define MEMAGG_UNLIKELY(x) __builtin_expect(!!(x), 0)

#endif  // MEMAGG_UTIL_MACROS_H_
