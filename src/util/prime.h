// Prime sizing helpers for the linear-probing hash table's modulo fallback
// (Section 3.2.1 of the paper: when a power-of-two capacity would overshoot
// memory, the table falls back to a prime capacity with modulo addressing).

#ifndef MEMAGG_UTIL_PRIME_H_
#define MEMAGG_UTIL_PRIME_H_

#include <cstdint>

namespace memagg {

/// Deterministic primality test valid for all 64-bit integers
/// (Miller-Rabin with a fixed witness set).
bool IsPrime(uint64_t n);

/// Smallest prime >= n (n >= 0; returns 2 for n <= 2).
uint64_t NextPrime(uint64_t n);

}  // namespace memagg

#endif  // MEMAGG_UTIL_PRIME_H_
