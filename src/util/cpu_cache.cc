#include "util/cpu_cache.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace memagg {
namespace {

/// Parses a sysfs cache-size string like "6144K" or "8M"; 0 on failure.
size_t ParseSysfsCacheSize(const char* text) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || value == 0) return 0;
  size_t bytes = static_cast<size_t>(value);
  if (*end == 'K' || *end == 'k') bytes *= 1024;
  if (*end == 'M' || *end == 'm') bytes *= 1024 * 1024;
  return bytes;
}

size_t ProbeL3CacheBytes() {
#if defined(_SC_LEVEL3_CACHE_SIZE)
  {
    const long bytes = sysconf(_SC_LEVEL3_CACHE_SIZE);
    if (bytes > 0) return static_cast<size_t>(bytes);
  }
#endif
  // sysconf commonly reports 0 in containers; the sysfs topology still works
  // there. index3 is the unified L3 on every Linux x86/arm layout.
  if (std::FILE* f = std::fopen(
          "/sys/devices/system/cpu/cpu0/cache/index3/size", "re")) {
    char buffer[32] = {};
    const size_t read = std::fread(buffer, 1, sizeof(buffer) - 1, f);
    std::fclose(f);
    if (read > 0) {
      const size_t bytes = ParseSysfsCacheSize(buffer);
      if (bytes > 0) return bytes;
    }
  }
  return kDefaultL3CacheBytes;
}

}  // namespace

size_t DetectedL3CacheBytes() {
  static const size_t bytes = ProbeL3CacheBytes();
  return bytes;
}

}  // namespace memagg
