// Hardware performance-counter access for the Figure 6 experiments
// (CPU cache misses and data-TLB misses).
//
// The paper measured these with the `perf` CLI; we read the same kernel
// counters in-process through perf_event_open(2). Containers frequently
// forbid perf (perf_event_paranoid, seccomp), so the wrapper degrades
// gracefully: `available()` reports whether real counters are being read and
// all getters return 0 when they are not.

#ifndef MEMAGG_UTIL_PERF_COUNTERS_H_
#define MEMAGG_UTIL_PERF_COUNTERS_H_

#include <cstdint>

namespace memagg {

/// Counter readings for one measured region.
struct PerfReading {
  uint64_t cache_misses = 0;  ///< LLC / generalized cache misses.
  uint64_t dtlb_misses = 0;   ///< Data-TLB load misses.
  bool valid = false;         ///< False when perf events were unavailable.
};

/// Opens cache-miss and dTLB-miss counters for the calling thread.
class PerfCounters {
 public:
  PerfCounters();
  ~PerfCounters();

  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True if at least one hardware counter could be opened.
  bool available() const { return cache_fd_ >= 0 || tlb_fd_ >= 0; }

  /// Resets and enables the counters.
  void Start();

  /// Disables the counters and returns the accumulated readings.
  PerfReading Stop();

 private:
  int cache_fd_ = -1;
  int tlb_fd_ = -1;
};

}  // namespace memagg

#endif  // MEMAGG_UTIL_PERF_COUNTERS_H_
