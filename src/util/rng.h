// Fixed-seed pseudo-random number generation.
//
// The paper (Section 4) specifies that all "random" data uses a uniform
// random function with a fixed seed so that datasets are reproducible. We use
// splitmix64 for seeding and xoshiro256** for the stream: both are fast,
// well-distributed, and deterministic across platforms.

#ifndef MEMAGG_UTIL_RNG_H_
#define MEMAGG_UTIL_RNG_H_

#include <cstdint>

namespace memagg {

/// splitmix64 step; used to expand a single seed into xoshiro state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic uniform random generator (xoshiro256**).
class Rng {
 public:
  /// Default seed matches the generators' notion of "the fixed seed".
  explicit Rng(uint64_t seed = kDefaultSeed) { Reseed(seed); }

  static constexpr uint64_t kDefaultSeed = 0x5eed5eed5eed5eedULL;

  void Reseed(uint64_t seed) {
    for (auto& word : state_) word = SplitMix64(seed);
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). `bound` must be non-zero. Uses Lemire's
  /// multiply-shift rejection method to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound) {
    // 128-bit multiply keeps the fast path branch-free in the common case.
    unsigned __int128 m = static_cast<unsigned __int128>(Next()) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = static_cast<unsigned __int128>(Next()) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform value in the inclusive range [lo, hi].
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    return lo + NextBounded(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace memagg

#endif  // MEMAGG_UTIL_RNG_H_
