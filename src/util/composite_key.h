// Composite group-by keys.
//
// The paper's cardinality discussion (Section 3.2) notes that group-by
// clauses often cover several columns, which makes cardinality estimation
// hard. memagg operators take a single uint64_t key, so multi-column
// group-bys are expressed by packing the columns into one key. Packing is
// order-preserving (lexicographic column order == numeric key order), so
// tree/sort operators still emit groups in the natural multi-column order
// and range conditions on the leading column translate to key ranges.

#ifndef MEMAGG_UTIL_COMPOSITE_KEY_H_
#define MEMAGG_UTIL_COMPOSITE_KEY_H_

#include <cstdint>

#include "util/macros.h"

namespace memagg {

/// Packs two 32-bit columns; `major` compares first.
inline uint64_t PackKey2(uint32_t major, uint32_t minor) {
  return (static_cast<uint64_t>(major) << 32) | minor;
}

/// Inverse of PackKey2.
inline void UnpackKey2(uint64_t key, uint32_t* major, uint32_t* minor) {
  *major = static_cast<uint32_t>(key >> 32);
  *minor = static_cast<uint32_t>(key);
}

/// Packs four 16-bit columns; earlier arguments compare first.
inline uint64_t PackKey4(uint16_t a, uint16_t b, uint16_t c, uint16_t d) {
  return (static_cast<uint64_t>(a) << 48) | (static_cast<uint64_t>(b) << 32) |
         (static_cast<uint64_t>(c) << 16) | d;
}

/// Inverse of PackKey4.
inline void UnpackKey4(uint64_t key, uint16_t* a, uint16_t* b, uint16_t* c,
                       uint16_t* d) {
  *a = static_cast<uint16_t>(key >> 48);
  *b = static_cast<uint16_t>(key >> 32);
  *c = static_cast<uint16_t>(key >> 16);
  *d = static_cast<uint16_t>(key);
}

/// Packs variable-width columns: `widths_bits` must sum to <= 64 and each
/// value must fit its width. Earlier columns compare first.
template <int N>
uint64_t PackKeyN(const uint64_t (&values)[N], const int (&widths_bits)[N]) {
  uint64_t key = 0;
  int used = 0;
  for (int i = 0; i < N; ++i) {
    MEMAGG_DCHECK(widths_bits[i] > 0 && widths_bits[i] <= 64);
    MEMAGG_DCHECK(widths_bits[i] == 64 ||
                  values[i] < (1ULL << widths_bits[i]));
    used += widths_bits[i];
    key = (key << widths_bits[i]) | values[i];
  }
  MEMAGG_DCHECK(used <= 64);
  (void)used;
  return key;
}

}  // namespace memagg

#endif  // MEMAGG_UTIL_COMPOSITE_KEY_H_
