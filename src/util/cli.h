// Minimal --key=value command-line flag parser for the benchmark binaries.
//
// All bench binaries accept the same style of flags, e.g.
//   bench_vector_q1 --records=8000000 --datasets=Rseq,Zipf --threads=4

#ifndef MEMAGG_UTIL_CLI_H_
#define MEMAGG_UTIL_CLI_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace memagg {

/// Parses `--key=value` (and bare `--key`, treated as "true") arguments.
class CliFlags {
 public:
  CliFlags(int argc, char** argv);

  /// Integer flag with default. Accepts scientific shorthands: "4e6", "10M",
  /// "100k".
  int64_t GetInt(const std::string& key, int64_t default_value) const;

  double GetDouble(const std::string& key, double default_value) const;

  std::string GetString(const std::string& key,
                        const std::string& default_value) const;

  bool GetBool(const std::string& key, bool default_value) const;

  /// Comma-separated list flag, e.g. --datasets=Rseq,Zipf.
  std::vector<std::string> GetList(
      const std::string& key, const std::vector<std::string>& defaults) const;

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

/// Parses "4e6", "10M", "100k", "1G", or plain digits into an integer.
int64_t ParseHumanInt(const std::string& text);

}  // namespace memagg

#endif  // MEMAGG_UTIL_CLI_H_
