// The engine-wide fixed-width group-key representation.
//
// Every hash map, tree, sorter, and aggregation operator in this repo
// traffics in one 64-bit key type. That is not an accident but the load-
// bearing contract that keeps the paper's six-dimensional comparison fair:
// all operator families get the same cheap hashing, radix passes, and node
// layouts because the key is always a fixed-width integer. Multi-column and
// string group-bys do not widen this type — they are packed into it by the
// KeyCodec layer (data/key_codec.h), which bias-encodes each column into a
// bit field (order-preserving when everything fits) or falls back to dense
// dictionary codes for wide composites.
//
// The alias exists so the contract is visible in signatures: a parameter or
// member spelled `EncodedKey` is a codec-produced (or synthetic-benchmark)
// group key, not an arbitrary integer. tools/lint_invariants.py enforces
// the vocabulary (`raw-key-type`): `uint64_t key` declarations in the
// operator/container layers are flagged.

#ifndef MEMAGG_UTIL_ENCODED_KEY_H_
#define MEMAGG_UTIL_ENCODED_KEY_H_

#include <cstdint>

namespace memagg {

/// A group key in its engine representation: a packed, fixed-width 64-bit
/// encoding of one or more key columns (data/key_codec.h), or a raw
/// synthetic key in the paper benchmarks. Numeric order equals the
/// lexicographic multi-column order whenever the producing codec reports
/// order_preserving().
using EncodedKey = uint64_t;

/// Width of the engine key representation. Schemas that pack wider than
/// this go through the dictionary-code fallback (DictKeyCodec).
inline constexpr int kEncodedKeyBits = 64;

}  // namespace memagg

#endif  // MEMAGG_UTIL_ENCODED_KEY_H_
