// Clang thread-safety-analysis annotations (no-ops on other compilers).
//
// These macros attach locking contracts to types, members, and functions so
// `clang -Wthread-safety` can prove at compile time that every access to
// lock-protected state happens with the right capability held. GCC and MSVC
// compile them away, so the annotated code builds everywhere; the analysis
// itself runs in the MEMAGG_ANALYZE=ON CI job (see docs/static_analysis.md).
//
// Vocabulary (matching the Clang documentation):
//   CAPABILITY(name)       — this type is a lock ("capability") named `name`.
//   SCOPED_CAPABILITY      — RAII type that acquires in its constructor and
//                            releases in its destructor (MutexLock).
//   GUARDED_BY(mu)         — reads need `mu` held (shared suffices for a
//                            shared capability); writes need it exclusively.
//   PT_GUARDED_BY(mu)      — same, for the data a pointer points to.
//   REQUIRES(mu)           — caller must hold `mu` exclusively.
//   REQUIRES_SHARED(mu)    — caller must hold `mu` at least shared.
//   ACQUIRE/RELEASE        — this function takes / drops the capability.
//   TRY_ACQUIRE(ok, mu)    — acquires only when the function returns `ok`.
//   EXCLUDES(mu)           — caller must NOT already hold `mu` (non-reentrant
//                            entry points that lock internally).
//   NO_THREAD_SAFETY_ANALYSIS — escape hatch; every use must carry a comment
//                            explaining why the analysis cannot apply (policy
//                            in docs/static_analysis.md).

#ifndef MEMAGG_UTIL_THREAD_ANNOTATIONS_H_
#define MEMAGG_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define MEMAGG_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MEMAGG_THREAD_ANNOTATION(x)  // no-op
#endif

#define CAPABILITY(x) MEMAGG_THREAD_ANNOTATION(capability(x))

#define SCOPED_CAPABILITY MEMAGG_THREAD_ANNOTATION(scoped_lockable)

#define GUARDED_BY(x) MEMAGG_THREAD_ANNOTATION(guarded_by(x))

#define PT_GUARDED_BY(x) MEMAGG_THREAD_ANNOTATION(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  MEMAGG_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  MEMAGG_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  MEMAGG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  MEMAGG_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  MEMAGG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  MEMAGG_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  MEMAGG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  MEMAGG_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  MEMAGG_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  MEMAGG_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  MEMAGG_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) MEMAGG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) MEMAGG_THREAD_ANNOTATION(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  MEMAGG_THREAD_ANNOTATION(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) MEMAGG_THREAD_ANNOTATION(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  MEMAGG_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // MEMAGG_UTIL_THREAD_ANNOTATIONS_H_
