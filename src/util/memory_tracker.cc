#include "util/memory_tracker.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#if defined(__linux__)
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace memagg {
namespace {

// Parses a "<Field>: <kB> kB" line from /proc/self/status.
uint64_t ReadStatusField(const char* field) {
#if defined(__linux__)
  FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  char line[256];
  uint64_t kb = 0;
  const size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      // "%lu" would write an unsigned long into a uint64_t, which differs in
      // width on LP32/LLP64 ABIs; SCNu64 matches uint64_t everywhere.
      std::sscanf(line + field_len + 1, "%" SCNu64, &kb);
      break;
    }
  }
  std::fclose(file);
  return kb * 1024;
#else
  (void)field;
  return 0;
#endif
}

}  // namespace

uint64_t CurrentRssBytes() { return ReadStatusField("VmRSS"); }

uint64_t PeakRssBytes() { return ReadStatusField("VmHWM"); }

bool TryResetPeakRss() {
#if defined(__linux__)
  FILE* file = std::fopen("/proc/self/clear_refs", "w");
  if (file == nullptr) return false;
  const bool ok = std::fputs("5", file) >= 0;
  std::fclose(file);
  return ok;
#else
  return false;
#endif
}

uint64_t MeasurePeakRssInChild(const std::function<uint64_t()>& workload,
                               uint64_t* aux_out) {
#if defined(__linux__)
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) return 0;
  const pid_t pid = fork();
  if (pid < 0) {
    close(pipe_fds[0]);
    close(pipe_fds[1]);
    return 0;
  }
  if (pid == 0) {
    // Child: run the workload, report our peak RSS, and exit without running
    // atexit handlers (the parent owns shared state such as gtest/benchmark).
    close(pipe_fds[0]);
    // The child inherits the parent's VmHWM watermark; reset it so the
    // reported peak reflects this workload, not the parent's history. If the
    // kernel forbids clear_refs, fall back to subtracting the inherited
    // baseline above the current RSS.
    uint64_t inherited_overshoot = 0;
    if (!TryResetPeakRss()) {
      const uint64_t entry_peak = PeakRssBytes();
      const uint64_t entry_rss = CurrentRssBytes();
      inherited_overshoot = entry_peak > entry_rss ? entry_peak - entry_rss : 0;
    }
    uint64_t report[2];
    report[1] = workload();
    report[0] = PeakRssBytes() - inherited_overshoot;
    ssize_t written = write(pipe_fds[1], report, sizeof(report));
    (void)written;
    close(pipe_fds[1]);
    _exit(0);
  }
  close(pipe_fds[1]);
  uint64_t report[2] = {0, 0};
  const ssize_t got = read(pipe_fds[0], report, sizeof(report));
  close(pipe_fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (got != sizeof(report) || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    return 0;
  }
  if (aux_out != nullptr) *aux_out = report[1];
  return report[0];
#else
  (void)workload;
  (void)aux_out;
  return 0;
#endif
}

uint64_t MeasurePeakRssInChild(const std::function<void()>& workload) {
  return MeasurePeakRssInChild(
      [&workload]() -> uint64_t {
        workload();
        return 0;
      },
      nullptr);
}

}  // namespace memagg
