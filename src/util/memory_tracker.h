// Peak-memory measurement for the Table 6/7 experiments.
//
// The paper used `/usr/bin/time -v` (maximum resident set size). We read the
// same kernel metric (VmHWM) in-process and, because VmHWM is monotonic per
// process, provide a fork-based measurement helper that runs a workload in a
// child process so each configuration gets an isolated peak.

#ifndef MEMAGG_UTIL_MEMORY_TRACKER_H_
#define MEMAGG_UTIL_MEMORY_TRACKER_H_

#include <cstdint>
#include <functional>

namespace memagg {

/// Current resident set size in bytes (0 if unreadable).
uint64_t CurrentRssBytes();

/// Peak resident set size (VmHWM) in bytes (0 if unreadable).
uint64_t PeakRssBytes();

/// Attempts to reset the kernel's peak-RSS watermark for this process
/// (Linux: write "5" to /proc/self/clear_refs). Returns true on success.
bool TryResetPeakRss();

/// Runs `workload` in a forked child process and returns the child's peak RSS
/// in bytes, or 0 if fork/measurement failed. This gives each measured
/// configuration an isolated, monotonic-safe peak — the in-process equivalent
/// of the paper's per-run `/usr/bin/time -v`.
///
/// NOTE: the child inherits the parent's resident pages, so callers that
/// measure several configurations should avoid large allocations between
/// forks (use the aux-returning overload to ship results out of the child
/// instead of recomputing them in the parent).
uint64_t MeasurePeakRssInChild(const std::function<void()>& workload);

/// Like MeasurePeakRssInChild, but the workload also returns an auxiliary
/// value (e.g. a data-structure byte count) that is shipped back to the
/// parent through the result pipe, stored in `*aux_out`.
uint64_t MeasurePeakRssInChild(const std::function<uint64_t()>& workload,
                               uint64_t* aux_out);

}  // namespace memagg

#endif  // MEMAGG_UTIL_MEMORY_TRACKER_H_
