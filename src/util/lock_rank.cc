#include "util/lock_rank.h"

#if defined(MEMAGG_LOCK_RANK)

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace memagg {
namespace lockrank {
namespace {

struct Held {
  const void* lock;
  LockRank rank;
};

/// Per-thread stack of held locks, in acquisition order. A vector (not a
/// fixed array) because the cuckoo eviction path can hold resize + eviction
/// + two stripes, and tests push deeper chains on purpose.
thread_local std::vector<Held> tls_held;

[[noreturn]] void Fail(const char* what, LockRank acquiring,
                       const void* lock) {
  std::fprintf(stderr,
               "MEMAGG_LOCK_RANK violation: %s (acquiring rank %d, lock %p)\n"
               "held by this thread (acquisition order):\n",
               what, static_cast<int>(acquiring), lock);
  for (const Held& held : tls_held) {
    std::fprintf(stderr, "  rank %4d  lock %p\n",
                 static_cast<int>(held.rank), held.lock);
  }
  std::abort();
}

}  // namespace

void OnAcquire(const void* lock, LockRank rank, bool try_acquire) {
  for (const Held& held : tls_held) {
    if (held.lock == lock) {
      // None of the wrapped primitives are recursive: re-acquisition is a
      // guaranteed self-deadlock, caught here before the real lock call.
      Fail("re-acquiring a lock this thread already holds", rank, lock);
    }
  }
  if (rank != LockRank::kUnranked && !try_acquire) {
    // The ordering rule compares against the highest ranked entry held; for
    // same-rank stripe protocols the *latest* entry of that rank carries the
    // address to order against, so ties prefer the later entry.
    const Held* top = nullptr;
    for (const Held& held : tls_held) {
      if (held.rank == LockRank::kUnranked) continue;
      if (top == nullptr || held.rank >= top->rank) top = &held;
    }
    if (top != nullptr) {
      if (rank < top->rank) {
        Fail("rank inversion: acquiring a lower rank than one already held",
             rank, lock);
      }
      if (rank == top->rank) {
        if (!AllowsSameRank(rank)) {
          Fail("same-rank acquisition on a rank without a same-rank protocol",
               rank, lock);
        }
        if (lock <= top->lock) {
          Fail("same-rank acquisition out of address order", rank, lock);
        }
      }
    }
  }
  tls_held.push_back({lock, rank});
}

void OnRelease(const void* lock) {
  // Search from the back: releases are almost always LIFO, but manual
  // Unlock/Lock dances (TaskGroup::State::DrainLocked) may release out of
  // order, which is legal.
  for (size_t i = tls_held.size(); i-- > 0;) {
    if (tls_held[i].lock == lock) {
      tls_held.erase(tls_held.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
  Fail("releasing a lock this thread does not hold", LockRank::kUnranked,
       lock);
}

void AssertNoneHeld(const char* what) {
  if (tls_held.empty()) return;
  std::fprintf(stderr,
               "MEMAGG_LOCK_RANK violation: %s while holding %zu lock(s) — "
               "a blocking or cooperative wait under a lock deadlocks as "
               "soon as a drained task wants that lock.\n",
               what, tls_held.size());
  for (const Held& held : tls_held) {
    std::fprintf(stderr, "  rank %4d  lock %p\n",
                 static_cast<int>(held.rank), held.lock);
  }
  std::abort();
}

int HeldCount() { return static_cast<int>(tls_held.size()); }

}  // namespace lockrank
}  // namespace memagg

#endif  // MEMAGG_LOCK_RANK
