#include "util/perf_counters.h"

#include <cstring>
#include <initializer_list>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace memagg {

#if defined(__linux__)
namespace {

int OpenCounter(uint32_t type, uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0 /*this thread*/, -1 /*any cpu*/,
              -1 /*no group*/, 0));
}

uint64_t ReadCounter(int fd) {
  if (fd < 0) return 0;
  uint64_t value = 0;
  if (read(fd, &value, sizeof(value)) != sizeof(value)) return 0;
  return value;
}

}  // namespace

PerfCounters::PerfCounters() {
  cache_fd_ = OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
  tlb_fd_ = OpenCounter(
      PERF_TYPE_HW_CACHE,
      PERF_COUNT_HW_CACHE_DTLB | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
          (PERF_COUNT_HW_CACHE_RESULT_MISS << 16));
}

PerfCounters::~PerfCounters() {
  if (cache_fd_ >= 0) close(cache_fd_);
  if (tlb_fd_ >= 0) close(tlb_fd_);
}

void PerfCounters::Start() {
  for (int fd : {cache_fd_, tlb_fd_}) {
    if (fd >= 0) {
      ioctl(fd, PERF_EVENT_IOC_RESET, 0);
      ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
    }
  }
}

PerfReading PerfCounters::Stop() {
  for (int fd : {cache_fd_, tlb_fd_}) {
    if (fd >= 0) ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
  }
  PerfReading reading;
  reading.cache_misses = ReadCounter(cache_fd_);
  reading.dtlb_misses = ReadCounter(tlb_fd_);
  reading.valid = available();
  return reading;
}

#else  // !__linux__

PerfCounters::PerfCounters() = default;
PerfCounters::~PerfCounters() = default;
void PerfCounters::Start() {}
PerfReading PerfCounters::Stop() { return PerfReading{}; }

#endif

}  // namespace memagg
