// SIMD hot-path kernels with runtime lane dispatch.
//
// The paper's compare-bound inner loops — hash-table tag probing, ART child
// key scans, cuckoo bucket scans, and the radix histogram's hash pass — are
// all "find a byte/word among N" problems that vectorize directly. This
// header names those kernels once, behind the `SimdOps` concept, and
// provides three interchangeable lanes:
//
//   ScalarOps   portable reference loops (also the ablation baseline),
//   Sse42Ops    128-bit kernels (SSE4.2-and-below instructions),
//   Avx2Ops     256-bit kernels where width pays (Node32 scan, 4-wide
//               bucket compare, 4-wide batch hash); 128-bit otherwise.
//
// `DispatchOps` models the same concept but resolves to the widest lane the
// CPU supports, selected once via CPUID on first use (override with the
// MEMAGG_SIMD=scalar|sse42|avx2 environment variable — see docs/simd.md).
// Data structures take a `SimdOps Ops` template parameter defaulting to
// DispatchOps, so benchmarks and the lane-equivalence suite can pin any
// lane explicitly while production code tracks the hardware.
//
// The non-scalar lanes carry GCC/Clang `target` attributes, so every lane
// compiles regardless of -m flags (the -mno-avx2 CI job proves it); only
// dispatch decides what runs. All raw intrinsics in the repo live in this
// header — tools/lint_invariants.py (rule raw-simd-intrinsic) rejects them
// anywhere outside src/util/simd*.

#ifndef MEMAGG_UTIL_SIMD_H_
#define MEMAGG_UTIL_SIMD_H_

#include <concepts>
#include <cstddef>
#include <cstdint>

#include "util/macros.h"

#if defined(__x86_64__) || defined(__i386__)
#define MEMAGG_SIMD_X86 1
#include <immintrin.h>
#else
#define MEMAGG_SIMD_X86 0
#endif

namespace memagg {
namespace simd {

/// Implementation lane of a SimdOps model.
enum class SimdLane : uint8_t { kScalar = 0, kSse42 = 1, kAvx2 = 2 };

/// Width of one control-byte probe group (Swiss-table style): all lanes
/// match 16 tag bytes per step, so scalar and vector probes visit slots in
/// the same group order and tables stay lane-portable on disk and in tests.
inline constexpr size_t kGroupWidth = 16;

/// Control byte marking an empty slot. Full slots store a 7-bit tag (high
/// bit clear), so "any empty in group" is exactly the sign-bit mask of the
/// group — one movemask in the vector lanes.
inline constexpr uint8_t kCtrlEmpty = 0x80;

/// 7-bit tag of a hash for the control-byte array. Uses the top bits; the
/// table index uses the low bits, so tag and position stay independent.
inline constexpr uint8_t TagOfHash(uint64_t hash) {
  return static_cast<uint8_t>(hash >> 57);
}

/// The 64-bit finalizer mix behind HashKey (hash/hash_fn.h delegates here).
/// The vector lanes re-express these exact constants 2- and 4-wide; the
/// lane-equivalence suite (tests/simd_test.cc) pins them bit-identical.
inline constexpr uint64_t kHashMulA = 0xff51afd7ed558ccdULL;
inline constexpr uint64_t kHashMulB = 0xc4ceb9fe1a85ec53ULL;

inline uint64_t HashMix64(uint64_t key) {
  uint64_t h = key;
  h ^= h >> 33;
  h *= kHashMulA;
  h ^= h >> 33;
  h *= kHashMulB;
  h ^= h >> 33;
  return h;
}

/// The kernel vocabulary every lane implements.
///
///   MatchByteTag(group, tag)  bitmask (bit i set <=> group[i] == tag) over
///                             one kGroupWidth control-byte group
///   MatchEmpty(group)         bitmask of kCtrlEmpty bytes in the group
///   FindByte16/32(keys, n, b) first index i < n with keys[i] == b, else -1;
///                             may read the full 16/32-byte array (callers
///                             pass fixed-size node arrays)
///   MatchKey4(keys, key)      first slot s < 4 with keys[s] == key, else -1
///                             (cuckoo bucket scan; pass kEmptyKey to find a
///                             free slot)
///   HashBatch(keys, n, out)   out[i] = HashMix64(keys[i]) for i < n
template <typename T>
concept SimdOps =
    requires(const uint8_t* group, uint8_t byte, int count,
             const uint64_t* keys, uint64_t key, size_t n, uint64_t* out) {
      { T::Lane() } -> std::convertible_to<SimdLane>;
      { T::Name() } -> std::convertible_to<const char*>;
      { T::MatchByteTag(group, byte) } -> std::same_as<uint32_t>;
      { T::MatchEmpty(group) } -> std::same_as<uint32_t>;
      { T::FindByte16(group, count, byte) } -> std::same_as<int>;
      { T::FindByte32(group, count, byte) } -> std::same_as<int>;
      { T::MatchKey4(keys, key) } -> std::same_as<int>;
      T::HashBatch(keys, n, out);
    };

// --- Scalar lane -------------------------------------------------------------

/// Portable reference lane: the byte/word loops the vector lanes replace.
/// Also the correctness oracle for the lane-equivalence suite.
struct ScalarOps {
  static constexpr SimdLane Lane() { return SimdLane::kScalar; }
  static constexpr const char* Name() { return "scalar"; }

  static uint32_t MatchByteTag(const uint8_t* group, uint8_t tag) {
    uint32_t mask = 0;
    for (size_t i = 0; i < kGroupWidth; ++i) {
      mask |= static_cast<uint32_t>(group[i] == tag) << i;
    }
    return mask;
  }

  static uint32_t MatchEmpty(const uint8_t* group) {
    return MatchByteTag(group, kCtrlEmpty);
  }

  static int FindByte16(const uint8_t* keys, int count, uint8_t byte) {
    for (int i = 0; i < count; ++i) {
      if (keys[i] == byte) return i;
    }
    return -1;
  }

  static int FindByte32(const uint8_t* keys, int count, uint8_t byte) {
    for (int i = 0; i < count; ++i) {
      if (keys[i] == byte) return i;
    }
    return -1;
  }

  static int MatchKey4(const uint64_t* keys, uint64_t key) {
    for (int s = 0; s < 4; ++s) {
      if (keys[s] == key) return s;
    }
    return -1;
  }

  static void HashBatch(const uint64_t* keys, size_t n, uint64_t* out) {
    for (size_t i = 0; i < n; ++i) out[i] = HashMix64(keys[i]);
  }
};

#if MEMAGG_SIMD_X86

#define MEMAGG_TARGET_SSE42 __attribute__((target("sse4.2")))
#define MEMAGG_TARGET_AVX2 __attribute__((target("avx2")))

// --- SSE4.2 lane -------------------------------------------------------------

/// 128-bit kernels. One pcmpeqb+pmovmskb replaces the 16-iteration tag
/// loop; pcmpeqq pairs replace the 4-slot bucket walk; the batch hash runs
/// two mixes per step (64-bit low-multiply decomposed into pmuludq).
struct Sse42Ops {
  static constexpr SimdLane Lane() { return SimdLane::kSse42; }
  static constexpr const char* Name() { return "sse42"; }

  MEMAGG_TARGET_SSE42
  static uint32_t MatchByteTag(const uint8_t* group, uint8_t tag) {
    const __m128i g =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(group));
    const __m128i eq = _mm_cmpeq_epi8(g, _mm_set1_epi8(static_cast<char>(tag)));
    return static_cast<uint32_t>(_mm_movemask_epi8(eq));
  }

  MEMAGG_TARGET_SSE42
  static uint32_t MatchEmpty(const uint8_t* group) {
    // kCtrlEmpty is the only control byte with the sign bit set, so the
    // empties of a group are exactly its byte-sign mask.
    const __m128i g =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(group));
    return static_cast<uint32_t>(_mm_movemask_epi8(g));
  }

  MEMAGG_TARGET_SSE42
  static int FindByte16(const uint8_t* keys, int count, uint8_t byte) {
    const __m128i k = _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys));
    const __m128i eq =
        _mm_cmpeq_epi8(k, _mm_set1_epi8(static_cast<char>(byte)));
    const uint32_t mask = static_cast<uint32_t>(_mm_movemask_epi8(eq)) &
                          ((count >= 16 ? 0u : 1u << count) - 1u);
    return mask == 0 ? -1 : __builtin_ctz(mask);
  }

  MEMAGG_TARGET_SSE42
  static int FindByte32(const uint8_t* keys, int count, uint8_t byte) {
    const __m128i needle = _mm_set1_epi8(static_cast<char>(byte));
    const __m128i lo =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys));
    const __m128i hi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + 16));
    const uint32_t mask =
        (static_cast<uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(hi, needle)))
         << 16) |
        static_cast<uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(lo, needle)));
    const uint32_t bounded =
        mask & (count >= 32 ? ~0u : (1u << count) - 1u);
    return bounded == 0 ? -1 : __builtin_ctz(bounded);
  }

  MEMAGG_TARGET_SSE42
  static int MatchKey4(const uint64_t* keys, uint64_t key) {
    const __m128i needle = _mm_set1_epi64x(static_cast<long long>(key));
    const __m128i lo =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys));
    const __m128i hi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + 2));
    const uint32_t mask =
        (static_cast<uint32_t>(
             _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpeq_epi64(hi, needle))))
         << 2) |
        static_cast<uint32_t>(
            _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpeq_epi64(lo, needle))));
    return mask == 0 ? -1 : __builtin_ctz(mask);
  }

  MEMAGG_TARGET_SSE42
  static void HashBatch(const uint64_t* keys, size_t n, uint64_t* out) {
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      __m128i h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
      h = _mm_xor_si128(h, _mm_srli_epi64(h, 33));
      h = MulLo64(h, _mm_set1_epi64x(static_cast<long long>(kHashMulA)));
      h = _mm_xor_si128(h, _mm_srli_epi64(h, 33));
      h = MulLo64(h, _mm_set1_epi64x(static_cast<long long>(kHashMulB)));
      h = _mm_xor_si128(h, _mm_srli_epi64(h, 33));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), h);
    }
    for (; i < n; ++i) out[i] = HashMix64(keys[i]);
  }

 private:
  /// 64-bit low-half multiply from 32-bit multiplies (no pmullq below
  /// AVX-512): a*b = lo(a)lo(b) + ((lo(a)hi(b) + hi(a)lo(b)) << 32).
  MEMAGG_TARGET_SSE42
  static __m128i MulLo64(__m128i a, __m128i b) {
    const __m128i lolo = _mm_mul_epu32(a, b);
    const __m128i lohi = _mm_mul_epu32(a, _mm_srli_epi64(b, 32));
    const __m128i hilo = _mm_mul_epu32(_mm_srli_epi64(a, 32), b);
    return _mm_add_epi64(
        lolo, _mm_slli_epi64(_mm_add_epi64(lohi, hilo), 32));
  }
};

// --- AVX2 lane ---------------------------------------------------------------

/// 256-bit kernels where the extra width pays: one-shot Node32 scans, the
/// whole 4-slot cuckoo bucket in one vpcmpeqq, and a 4-wide batch hash.
/// Group-tag probing stays 128-bit (the group is 16 bytes by design), but
/// compiles VEX-encoded under this lane's target.
struct Avx2Ops {
  static constexpr SimdLane Lane() { return SimdLane::kAvx2; }
  static constexpr const char* Name() { return "avx2"; }

  MEMAGG_TARGET_AVX2
  static uint32_t MatchByteTag(const uint8_t* group, uint8_t tag) {
    const __m128i g =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(group));
    const __m128i eq = _mm_cmpeq_epi8(g, _mm_set1_epi8(static_cast<char>(tag)));
    return static_cast<uint32_t>(_mm_movemask_epi8(eq));
  }

  MEMAGG_TARGET_AVX2
  static uint32_t MatchEmpty(const uint8_t* group) {
    const __m128i g =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(group));
    return static_cast<uint32_t>(_mm_movemask_epi8(g));
  }

  MEMAGG_TARGET_AVX2
  static int FindByte16(const uint8_t* keys, int count, uint8_t byte) {
    const __m128i k = _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys));
    const __m128i eq =
        _mm_cmpeq_epi8(k, _mm_set1_epi8(static_cast<char>(byte)));
    const uint32_t mask = static_cast<uint32_t>(_mm_movemask_epi8(eq)) &
                          ((count >= 16 ? 0u : 1u << count) - 1u);
    return mask == 0 ? -1 : __builtin_ctz(mask);
  }

  MEMAGG_TARGET_AVX2
  static int FindByte32(const uint8_t* keys, int count, uint8_t byte) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys));
    const __m256i eq =
        _mm256_cmpeq_epi8(k, _mm256_set1_epi8(static_cast<char>(byte)));
    const uint32_t mask = static_cast<uint32_t>(_mm256_movemask_epi8(eq)) &
                          (count >= 32 ? ~0u : (1u << count) - 1u);
    return mask == 0 ? -1 : __builtin_ctz(mask);
  }

  MEMAGG_TARGET_AVX2
  static int MatchKey4(const uint64_t* keys, uint64_t key) {
    const __m256i bucket =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys));
    const __m256i eq = _mm256_cmpeq_epi64(
        bucket, _mm256_set1_epi64x(static_cast<long long>(key)));
    const uint32_t mask = static_cast<uint32_t>(
        _mm256_movemask_pd(_mm256_castsi256_pd(eq)));
    return mask == 0 ? -1 : __builtin_ctz(mask);
  }

  MEMAGG_TARGET_AVX2
  static void HashBatch(const uint64_t* keys, size_t n, uint64_t* out) {
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      __m256i h =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
      h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
      h = MulLo64(h, _mm256_set1_epi64x(static_cast<long long>(kHashMulA)));
      h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
      h = MulLo64(h, _mm256_set1_epi64x(static_cast<long long>(kHashMulB)));
      h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
    }
    for (; i < n; ++i) out[i] = HashMix64(keys[i]);
  }

 private:
  MEMAGG_TARGET_AVX2
  static __m256i MulLo64(__m256i a, __m256i b) {
    const __m256i lolo = _mm256_mul_epu32(a, b);
    const __m256i lohi = _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
    const __m256i hilo = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
    return _mm256_add_epi64(
        lolo, _mm256_slli_epi64(_mm256_add_epi64(lohi, hilo), 32));
  }
};

#undef MEMAGG_TARGET_SSE42
#undef MEMAGG_TARGET_AVX2

#else  // !MEMAGG_SIMD_X86

/// Non-x86 builds: the vector lanes exist (so lane-parameterized code and
/// the concept checks compile everywhere) but run the scalar loops;
/// SimdLaneSupported() reports them unavailable so dispatch never picks one.
struct Sse42Ops : ScalarOps {
  static constexpr SimdLane Lane() { return SimdLane::kSse42; }
  static constexpr const char* Name() { return "sse42"; }
};

struct Avx2Ops : ScalarOps {
  static constexpr SimdLane Lane() { return SimdLane::kAvx2; }
  static constexpr const char* Name() { return "avx2"; }
};

#endif  // MEMAGG_SIMD_X86

// --- Runtime dispatch --------------------------------------------------------

/// Function-pointer table behind DispatchOps. One table per lane; selection
/// happens once (CPUID + the MEMAGG_SIMD override) in util/simd.cc.
struct SimdDispatchTable {
  SimdLane lane;
  const char* name;
  uint32_t (*match_byte_tag)(const uint8_t*, uint8_t);
  uint32_t (*match_empty)(const uint8_t*);
  int (*find_byte16)(const uint8_t*, int, uint8_t);
  int (*find_byte32)(const uint8_t*, int, uint8_t);
  int (*match_key4)(const uint64_t*, uint64_t);
  void (*hash_batch)(const uint64_t*, size_t, uint64_t*);
};

/// The active lane's table, selected once on first use: the widest lane
/// CPUID reports, unless MEMAGG_SIMD=scalar|sse42|avx2 forces one (forcing
/// an unsupported lane falls back to the widest supported, with a warning).
const SimdDispatchTable& ActiveSimd();

/// True if this machine can run `lane` (kScalar is always true).
bool SimdLaneSupported(SimdLane lane);

/// Human-readable lane name ("scalar", "sse42", "avx2").
const char* SimdLaneName(SimdLane lane);

/// The default SimdOps model: forwards every kernel through the
/// once-selected dispatch table. Hot loops pay one predicted indirect call
/// per 16-wide group — amortized across the lanes' 16x wider compares.
struct DispatchOps {
  static SimdLane Lane() { return ActiveSimd().lane; }
  static const char* Name() { return ActiveSimd().name; }

  static uint32_t MatchByteTag(const uint8_t* group, uint8_t tag) {
    return ActiveSimd().match_byte_tag(group, tag);
  }
  static uint32_t MatchEmpty(const uint8_t* group) {
    return ActiveSimd().match_empty(group);
  }
  static int FindByte16(const uint8_t* keys, int count, uint8_t byte) {
    return ActiveSimd().find_byte16(keys, count, byte);
  }
  static int FindByte32(const uint8_t* keys, int count, uint8_t byte) {
    return ActiveSimd().find_byte32(keys, count, byte);
  }
  static int MatchKey4(const uint64_t* keys, uint64_t key) {
    return ActiveSimd().match_key4(keys, key);
  }
  static void HashBatch(const uint64_t* keys, size_t n, uint64_t* out) {
    ActiveSimd().hash_batch(keys, n, out);
  }
};

static_assert(SimdOps<ScalarOps>);
static_assert(SimdOps<Sse42Ops>);
static_assert(SimdOps<Avx2Ops>);
static_assert(SimdOps<DispatchOps>);

}  // namespace simd
}  // namespace memagg

#endif  // MEMAGG_UTIL_SIMD_H_
