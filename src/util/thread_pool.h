// Minimal thread pool used by the parallel sorts and the multithreaded
// aggregation operators. Tasks may submit further tasks; Wait() blocks until
// the whole task graph has drained. Tasks must not block on other tasks.

#ifndef MEMAGG_UTIL_THREAD_POOL_H_
#define MEMAGG_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/macros.h"

namespace memagg {

/// Hardware thread count, clamped to >= 1 (hardware_concurrency() may
/// return 0 when unknown). The default pool size everywhere.
inline int Parallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Fixed-size worker pool with a shared FIFO queue.
class ThreadPool {
 public:
  /// Defaults to one worker per hardware thread.
  ThreadPool() : ThreadPool(Parallelism()) {}

  explicit ThreadPool(int num_threads) {
    MEMAGG_CHECK(num_threads >= 1);
    workers_.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      shutting_down_ = true;
    }
    work_available_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Safe to call from within a task.
  void Submit(std::function<void()> task) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++pending_;
      queue_.push_back(std::move(task));
    }
    work_available_.notify_one();
  }

  /// Blocks until every submitted task (including transitively submitted
  /// ones) has finished.
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return pending_ == 0; });
  }

  /// Runs fn(i) for i in [0, count) across the pool and waits.
  void ParallelFor(int64_t count, const std::function<void(int64_t)>& fn) {
    for (int64_t i = 0; i < count; ++i) {
      Submit([&fn, i] { fn(i); });
    }
    Wait();
  }

 private:
  void WorkerLoop() {
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_available_.wait(
            lock, [this] { return shutting_down_ || !queue_.empty(); });
        if (queue_.empty()) return;  // Shutting down.
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      bool drained;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        drained = (--pending_ == 0);
      }
      // Notify after releasing the lock: waiters woken while the lock is
      // still held immediately block on it again (hurry-up-and-wait).
      if (drained) all_done_.notify_all();
    }
  }

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  int64_t pending_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace memagg

#endif  // MEMAGG_UTIL_THREAD_POOL_H_
