// Memory-access tracing hooks.
//
// Data structures take a `Tracer` policy (defaulted to NullTracer) and
// report every slot/node/bucket they touch through Tracer::OnAccess. With
// NullTracer the calls compile to nothing, so production instantiations pay
// zero cost. The simulation layer (src/sim/) provides a tracer that feeds
// the accesses into a cache/TLB model — the fallback used to reproduce the
// paper's Figure 6 when hardware perf counters are unavailable.

#ifndef MEMAGG_UTIL_TRACER_H_
#define MEMAGG_UTIL_TRACER_H_

#include <concepts>
#include <cstddef>

namespace memagg {

/// Contract for the `Tracer` policy every traced structure accepts: a
/// static OnAccess hook plus a compile-time kEnabled flag that lets
/// operators skip access loops entirely when tracing is off. Modeled by
/// NullTracer (below) and SimTracer (sim/sim_tracer.h).
template <typename T>
concept MemoryTracer = requires(const void* address, size_t bytes) {
  { T::kEnabled } -> std::convertible_to<bool>;
  T::OnAccess(address, bytes);
};

/// Default tracer: all hooks are no-ops the optimizer removes.
struct NullTracer {
  static constexpr bool kEnabled = false;
  static void OnAccess(const void* /*address*/, size_t /*bytes*/) {}
};

static_assert(MemoryTracer<NullTracer>);

}  // namespace memagg

#endif  // MEMAGG_UTIL_TRACER_H_
