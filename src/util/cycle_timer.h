// CPU-cycle timing. The paper reports query execution times in CPU cycles
// (billions); we use rdtsc on x86-64 and fall back to steady_clock scaled by
// an estimated TSC frequency elsewhere.

#ifndef MEMAGG_UTIL_CYCLE_TIMER_H_
#define MEMAGG_UTIL_CYCLE_TIMER_H_

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace memagg {

/// Returns the current timestamp-counter value (serialized enough for
/// before/after measurement of multi-millisecond regions).
inline uint64_t ReadCycleCounter() {
#if defined(__x86_64__) || defined(_M_X64)
  unsigned aux;
  return __rdtscp(&aux);
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// Simple start/stop cycle + wall-clock timer.
class CycleTimer {
 public:
  void Start() {
    wall_start_ = std::chrono::steady_clock::now();
    cycle_start_ = ReadCycleCounter();
  }

  void Stop() {
    cycle_end_ = ReadCycleCounter();
    wall_end_ = std::chrono::steady_clock::now();
  }

  /// Elapsed cycles between Start() and Stop().
  uint64_t ElapsedCycles() const { return cycle_end_ - cycle_start_; }

  /// Elapsed wall-clock milliseconds between Start() and Stop().
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(wall_end_ - wall_start_)
        .count();
  }

  double ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

 private:
  uint64_t cycle_start_ = 0;
  uint64_t cycle_end_ = 0;
  std::chrono::steady_clock::time_point wall_start_;
  std::chrono::steady_clock::time_point wall_end_;
};

}  // namespace memagg

#endif  // MEMAGG_UTIL_CYCLE_TIMER_H_
