#include "util/cli.h"

#include <cmath>
#include <cstdlib>

#include "util/macros.h"

namespace memagg {

CliFlags::CliFlags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

int64_t ParseHumanInt(const std::string& text) {
  MEMAGG_CHECK(!text.empty());
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  double multiplier = 1.0;
  if (end != nullptr && *end != '\0') {
    switch (*end) {
      case 'k':
      case 'K':
        multiplier = 1e3;
        break;
      case 'm':
      case 'M':
        multiplier = 1e6;
        break;
      case 'g':
      case 'G':
        multiplier = 1e9;
        break;
      default:
        break;
    }
  }
  return static_cast<int64_t>(std::llround(value * multiplier));
}

int64_t CliFlags::GetInt(const std::string& key, int64_t default_value) const {
  const auto it = values_.find(key);
  return it == values_.end() ? default_value : ParseHumanInt(it->second);
}

double CliFlags::GetDouble(const std::string& key, double default_value) const {
  const auto it = values_.find(key);
  return it == values_.end() ? default_value : std::strtod(it->second.c_str(), nullptr);
}

std::string CliFlags::GetString(const std::string& key,
                                const std::string& default_value) const {
  const auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

bool CliFlags::GetBool(const std::string& key, bool default_value) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> CliFlags::GetList(
    const std::string& key, const std::vector<std::string>& defaults) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return defaults;
  std::vector<std::string> items;
  std::string current;
  for (char c : it->second) {
    if (c == ',') {
      if (!current.empty()) items.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) items.push_back(current);
  return items;
}

}  // namespace memagg
