// Tiny test-and-test-and-set spinlock used for lock striping in the
// concurrent hash tables. Critical sections there are a handful of loads and
// stores, so spinning beats parking the thread.

#ifndef MEMAGG_UTIL_SPINLOCK_H_
#define MEMAGG_UTIL_SPINLOCK_H_

#include <atomic>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace memagg {

/// Spinlock satisfying the Lockable requirements (usable with
/// std::lock_guard).
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    while (true) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) {
        Pause();
      }
    }
  }

  bool try_lock() {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  static void Pause() {
#if defined(__x86_64__) || defined(_M_X64)
    _mm_pause();
#endif
  }

  std::atomic<bool> locked_{false};
};

}  // namespace memagg

#endif  // MEMAGG_UTIL_SPINLOCK_H_
