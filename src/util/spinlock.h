// Tiny test-and-test-and-set spinlock used for lock striping in the
// concurrent hash tables. Critical sections there are a handful of loads and
// stores, so spinning beats parking the thread.
//
// SpinLock is an annotated capability (util/thread_annotations.h): guard
// state with GUARDED_BY(lock) and acquire through SpinLockGuard so
// clang -Wthread-safety can verify the locking protocol. The std Lockable
// API (lock/unlock/try_lock) is kept so std::lock_guard continues to work in
// contexts outside the analysis.

#ifndef MEMAGG_UTIL_SPINLOCK_H_
#define MEMAGG_UTIL_SPINLOCK_H_

#include <atomic>

#include "util/thread_annotations.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace memagg {

/// Spinlock satisfying the Lockable requirements (usable with
/// std::lock_guard).
class CAPABILITY("mutex") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() ACQUIRE() {
    while (true) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) {
        Pause();
      }
    }
  }

  bool try_lock() TRY_ACQUIRE(true) {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() RELEASE() { locked_.store(false, std::memory_order_release); }

 private:
  static void Pause() {
#if defined(__x86_64__) || defined(_M_X64)
    // lint:allow(raw-simd-intrinsic): spin-wait scheduling hint, not a data
    _mm_pause();  // kernel — nothing for the SimdOps lane ablation to cover.
#endif
  }

  std::atomic<bool> locked_{false};
};

/// RAII guard over a SpinLock, visible to the thread-safety analysis
/// (std::lock_guard is not annotated, so locking through it is invisible
/// to -Wthread-safety).
class SCOPED_CAPABILITY SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }
  ~SpinLockGuard() RELEASE() { lock_.unlock(); }

  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace memagg

#endif  // MEMAGG_UTIL_SPINLOCK_H_
