// Tiny test-and-test-and-set spinlock used for lock striping in the
// concurrent hash tables. Critical sections there are a handful of loads and
// stores, so spinning beats parking the thread.
//
// SpinLock is an annotated capability (util/thread_annotations.h): guard
// state with GUARDED_BY(lock) and acquire through SpinLockGuard so
// clang -Wthread-safety can verify the locking protocol. The std Lockable
// API (lock/unlock/try_lock) is kept so std::lock_guard continues to work in
// contexts outside the analysis.

#ifndef MEMAGG_UTIL_SPINLOCK_H_
#define MEMAGG_UTIL_SPINLOCK_H_

#include <atomic>

#include "util/lock_rank.h"
#include "util/thread_annotations.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace memagg {

/// Spinlock satisfying the Lockable requirements (usable with
/// std::lock_guard).
class CAPABILITY("mutex") SpinLock {
 public:
  SpinLock() = default;
  explicit SpinLock(LockRank rank) { SetRank(rank); }
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  /// Assigns the rank after construction, for stripe arrays built with
  /// std::make_unique<SpinLock[]> (array new only default-constructs). Must
  /// be called before the array is published to any other thread.
  void SetRank(LockRank rank) {
#if defined(MEMAGG_LOCK_RANK)
    rank_ = rank;
#else
    (void)rank;
#endif
  }

  void lock() ACQUIRE() {
    lockrank::OnAcquire(this, Rank());
    while (true) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) {
        Pause();
      }
    }
  }

  bool try_lock() TRY_ACQUIRE(true) {
    if (!locked_.load(std::memory_order_relaxed) &&
        !locked_.exchange(true, std::memory_order_acquire)) {
      lockrank::OnAcquire(this, Rank(), /*try_acquire=*/true);
      return true;
    }
    return false;
  }

  void unlock() RELEASE() {
    lockrank::OnRelease(this);
    locked_.store(false, std::memory_order_release);
  }

 private:
  LockRank Rank() const {
#if defined(MEMAGG_LOCK_RANK)
    return rank_;
#else
    return LockRank::kUnranked;
#endif
  }

  static void Pause() {
#if defined(__x86_64__) || defined(_M_X64)
    // lint:allow(raw-simd-intrinsic): spin-wait scheduling hint, not a data
    _mm_pause();  // kernel — nothing for the SimdOps lane ablation to cover.
#endif
  }

  std::atomic<bool> locked_{false};
#if defined(MEMAGG_LOCK_RANK)
  LockRank rank_{LockRank::kUnranked};
#endif
};

/// RAII guard over a SpinLock, visible to the thread-safety analysis
/// (std::lock_guard is not annotated, so locking through it is invisible
/// to -Wthread-safety).
class SCOPED_CAPABILITY SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }
  ~SpinLockGuard() RELEASE() { lock_.unlock(); }

  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace memagg

#endif  // MEMAGG_UTIL_SPINLOCK_H_
