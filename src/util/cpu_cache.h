// Host CPU cache-size detection.
//
// The adaptive operator's cost models (core/adaptive_aggregator.h) key their
// working-set thresholds to the actual last-level cache of the machine the
// query runs on, and the cache simulator (sim/cache_model.h) offers a
// detected-hierarchy configuration next to its paper-machine default. Both
// sit in layers that may not depend on each other (core must not include
// sim — tools/check_layering.py), so the probe lives here at the bottom of
// the DAG.

#ifndef MEMAGG_UTIL_CPU_CACHE_H_
#define MEMAGG_UTIL_CPU_CACHE_H_

#include <cstddef>

namespace memagg {

/// L3 size of the paper's test machine (i7-6700HQ, 6 MB shared L3) — the
/// fallback when the host exposes nothing.
inline constexpr size_t kDefaultL3CacheBytes = 6 * 1024 * 1024;

/// Detected last-level (L3) data cache size in bytes. Tries sysconf, then
/// the sysfs cache topology; falls back to kDefaultL3CacheBytes (never
/// returns 0). The probe runs once; subsequent calls return the cached
/// value.
size_t DetectedL3CacheBytes();

}  // namespace memagg

#endif  // MEMAGG_UTIL_CPU_CACHE_H_
