#include "util/prime.h"

#include <initializer_list>

namespace memagg {
namespace {

uint64_t MulMod(uint64_t a, uint64_t b, uint64_t m) {
  return static_cast<uint64_t>(static_cast<unsigned __int128>(a) * b % m);
}

uint64_t PowMod(uint64_t base, uint64_t exp, uint64_t m) {
  uint64_t result = 1;
  base %= m;
  while (exp != 0) {
    if (exp & 1) result = MulMod(result, base, m);
    base = MulMod(base, base, m);
    exp >>= 1;
  }
  return result;
}

// One Miller-Rabin round: returns true if n passes for witness a.
bool MillerRabinRound(uint64_t n, uint64_t a, uint64_t d, int r) {
  uint64_t x = PowMod(a, d, n);
  if (x == 1 || x == n - 1) return true;
  for (int i = 1; i < r; ++i) {
    x = MulMod(x, x, n);
    if (x == n - 1) return true;
  }
  return false;
}

}  // namespace

bool IsPrime(uint64_t n) {
  if (n < 2) return false;
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                     23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // This witness set is deterministic for all n < 2^64.
  for (uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                     23ULL, 29ULL, 31ULL, 37ULL}) {
    if (!MillerRabinRound(n, a, d, r)) return false;
  }
  return true;
}

uint64_t NextPrime(uint64_t n) {
  if (n <= 2) return 2;
  if ((n & 1) == 0) ++n;
  while (!IsPrime(n)) n += 2;
  return n;
}

}  // namespace memagg
