// Annotated locking primitives: thin wrappers over the standard mutexes that
// carry Clang thread-safety capabilities (util/thread_annotations.h).
//
// libstdc++'s std::mutex / std::lock_guard are not annotated, so code locking
// them is invisible to -Wthread-safety. Every mutex-guarded structure in
// memagg therefore uses these wrappers instead; GUARDED_BY(mu) members are
// then machine-checked against MutexLock scopes at compile time. The wrappers
// are zero-overhead: each call forwards to the underlying std primitive.
//
// Each wrapper also carries a LockRank (util/lock_rank.h) fixing its position
// in the repo-wide acquisition order. Under -DMEMAGG_LOCK_RANK=ON the rank is
// stored and every acquisition/release is checked against a per-thread held
// stack; in normal builds the rank argument compiles away entirely.

#ifndef MEMAGG_UTIL_MUTEX_H_
#define MEMAGG_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace memagg {

/// Annotated exclusive mutex (wraps std::mutex).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank) { SetRank(rank); }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    lockrank::OnAcquire(this, Rank());
    mu_.lock();
  }
  void Unlock() RELEASE() {
    lockrank::OnRelease(this);
    mu_.unlock();
  }
  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lockrank::OnAcquire(this, Rank(), /*try_acquire=*/true);
    return true;
  }

 private:
  friend class CondVar;

  void SetRank(LockRank rank) {
#if defined(MEMAGG_LOCK_RANK)
    rank_ = rank;
#else
    (void)rank;
#endif
  }
  LockRank Rank() const {
#if defined(MEMAGG_LOCK_RANK)
    return rank_;
#else
    return LockRank::kUnranked;
#endif
  }

  std::mutex mu_;
#if defined(MEMAGG_LOCK_RANK)
  LockRank rank_{LockRank::kUnranked};
#endif
};

/// RAII exclusive lock over a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait() atomically releases the
/// mutex, blocks, and re-acquires it before returning — the capability is
/// held again on return, so the analysis treats Wait as REQUIRES(mu).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold `mu`; holds it again when Wait returns. Use in the
  /// standard `while (!predicate) cv.Wait(mu);` loop.
  ///
  /// The lock-rank held stack is deliberately left untouched across the
  /// wait: the same capability is held again on return, and the transient
  /// release is invisible to every other lock this thread might order
  /// against (the stack is per-thread).
  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held std::mutex for the duration of the wait, then
    // release the std::unique_lock's ownership claim without unlocking: the
    // caller's MutexLock still owns the re-acquired lock.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Annotated reader/writer mutex (wraps std::shared_mutex).
///
/// Shared and exclusive acquisitions occupy the same rank slot: a reader
/// still orders against every other lock the thread holds, and re-acquiring
/// the shared side on a thread that already holds it (shared or exclusive)
/// is flagged — writer-preferring implementations deadlock that pattern.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(LockRank rank) { SetRank(rank); }
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
    lockrank::OnAcquire(this, Rank());
    mu_.lock();
  }
  void Unlock() RELEASE() {
    lockrank::OnRelease(this);
    mu_.unlock();
  }
  void LockShared() ACQUIRE_SHARED() {
    lockrank::OnAcquire(this, Rank());
    mu_.lock_shared();
  }
  void UnlockShared() RELEASE_SHARED() {
    lockrank::OnRelease(this);
    mu_.unlock_shared();
  }

 private:
  void SetRank(LockRank rank) {
#if defined(MEMAGG_LOCK_RANK)
    rank_ = rank;
#else
    (void)rank;
#endif
  }
  LockRank Rank() const {
#if defined(MEMAGG_LOCK_RANK)
    return rank_;
#else
    return LockRank::kUnranked;
#endif
  }

  std::shared_mutex mu_;
#if defined(MEMAGG_LOCK_RANK)
  LockRank rank_{LockRank::kUnranked};
#endif
};

/// RAII exclusive (writer) lock over a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RELEASE() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace memagg

#endif  // MEMAGG_UTIL_MUTEX_H_
