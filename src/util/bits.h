// Bit-manipulation helpers used by the hash tables and radix sorts.

#ifndef MEMAGG_UTIL_BITS_H_
#define MEMAGG_UTIL_BITS_H_

#include <bit>
#include <cstdint>

namespace memagg {

/// Returns the smallest power of two >= `v` (and >= 1). `v` must be
/// representable, i.e. <= 2^63.
inline uint64_t NextPowerOfTwo(uint64_t v) {
  return v <= 1 ? 1 : std::bit_ceil(v);
}

/// Returns floor(log2(v)); `v` must be non-zero.
inline int Log2Floor(uint64_t v) { return 63 - std::countl_zero(v); }

/// Returns ceil(log2(v)); `v` must be non-zero.
inline int Log2Ceil(uint64_t v) {
  return v <= 1 ? 0 : 64 - std::countl_zero(v - 1);
}

/// True if `v` is a power of two (and non-zero).
inline bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace memagg

#endif  // MEMAGG_UTIL_BITS_H_
