// Columnar input tables.
//
// The paper's harness feeds operators two raw uint64_t arrays (keys,
// values). Real workloads arrive as typed, named columns — TPC-H lineitem
// is the canonical shape — so this layer adds a minimal columnar Table:
// named columns of u64 / i64 / double / dictionary-encoded string, all the
// same length. It deliberately stops short of a storage engine: columns are
// immutable after AddColumn, there are no nulls, and string data lives in a
// per-column StringDict (data/string_dict.h).
//
// Group-by over a Table never widens the engine's key type: the KeyCodec
// layer (data/key_codec.h) packs the selected key columns into the
// fixed-width EncodedKey that every operator family already handles, and
// value columns are read out as uint64_t measures (kU64 only — aggregate
// states are integer-exact, which is what makes the golden-file validation
// byte-stable across operator families and merge orders).

#ifndef MEMAGG_DATA_TABLE_H_
#define MEMAGG_DATA_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "data/string_dict.h"
#include "util/macros.h"

namespace memagg {

/// Storage type of one Table column.
enum class ColumnType { kU64, kI64, kF64, kString };

/// Paper-style short name ("u64", "i64", "f64", "str").
std::string ColumnTypeName(ColumnType type);

/// One typed, immutable column. Construct through the factory functions;
/// the typed accessors abort loudly on type mismatch instead of returning
/// junk.
class Column {
 public:
  static Column U64(std::vector<uint64_t> values) {
    return Column(ColumnType::kU64, std::move(values));
  }
  static Column I64(std::vector<int64_t> values) {
    return Column(ColumnType::kI64, std::move(values));
  }
  static Column F64(std::vector<double> values) {
    return Column(ColumnType::kF64, std::move(values));
  }
  /// Dictionary-encoded string column: `codes[i]` indexes into `dict`.
  static Column String(StringDict dict, std::vector<uint32_t> codes);

  ColumnType type() const { return type_; }
  size_t size() const;

  const std::vector<uint64_t>& u64() const {
    CheckType(ColumnType::kU64);
    return std::get<std::vector<uint64_t>>(storage_);
  }
  const std::vector<int64_t>& i64() const {
    CheckType(ColumnType::kI64);
    return std::get<std::vector<int64_t>>(storage_);
  }
  const std::vector<double>& f64() const {
    CheckType(ColumnType::kF64);
    return std::get<std::vector<double>>(storage_);
  }

  /// String-column accessors.
  const StringDict& dict() const { return strings().dict; }
  const std::vector<uint32_t>& codes() const { return strings().codes; }

  /// Rewrites every code through `remap` (old code -> new code), e.g. after
  /// StringDict::FreezeSorted(). String columns only.
  void RemapCodes(const std::vector<uint32_t>& remap);

  /// Sorts the owned dictionary (StringDict::FreezeSorted) and rewrites the
  /// codes to match, making numeric code order equal lexicographic string
  /// order — the precondition for order-preserving key packing. String
  /// columns only.
  void FreezeDictSorted();

  /// Approximate bytes held by the column's storage.
  size_t MemoryBytes() const;

 private:
  struct StringStorage {
    StringDict dict;
    std::vector<uint32_t> codes;
  };

  template <typename Storage>
  Column(ColumnType type, Storage storage)
      : type_(type), storage_(std::move(storage)) {}

  void CheckType(ColumnType expected) const {
    MEMAGG_CHECK(type_ == expected && "Column accessed as the wrong type");
  }

  const StringStorage& strings() const {
    CheckType(ColumnType::kString);
    return std::get<StringStorage>(storage_);
  }

  ColumnType type_;
  std::variant<std::vector<uint64_t>, std::vector<int64_t>,
               std::vector<double>, StringStorage>
      storage_;
};

/// A set of equal-length named columns.
class Table {
 public:
  /// Adds a column and returns its index. All columns must have the same
  /// row count; duplicate names abort.
  size_t AddColumn(std::string name, Column column);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  bool HasColumn(const std::string& name) const;

  /// Index of `name`; aborts (loudly, naming the column) if absent.
  size_t ColumnIndex(const std::string& name) const;

  const Column& ColumnAt(size_t index) const {
    MEMAGG_CHECK(index < columns_.size() && "column index out of range");
    return columns_[index];
  }
  const std::string& ColumnNameAt(size_t index) const {
    MEMAGG_CHECK(index < names_.size() && "column index out of range");
    return names_[index];
  }

  /// Convenience: ColumnAt(ColumnIndex(name)).
  const Column& ColumnNamed(const std::string& name) const {
    return ColumnAt(ColumnIndex(name));
  }

  /// Mutable access for in-place maintenance (RemapCodes); the column set
  /// itself stays fixed.
  Column& MutableColumnAt(size_t index) {
    MEMAGG_CHECK(index < columns_.size() && "column index out of range");
    return columns_[index];
  }

  /// Approximate bytes held by all columns.
  size_t MemoryBytes() const;

 private:
  std::vector<std::string> names_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace memagg

#endif  // MEMAGG_DATA_TABLE_H_
