// Synthetic dataset generators (paper Section 4, Table 4).
//
// Each generator produces a key column of `num_records` 64-bit keys with a
// target group-by cardinality. Distributions:
//
//   Rseq      repeating sequential — keys cycle 0,1,...,c-1,0,1,... so the
//             key incrementally increases within each segment (deterministic
//             cardinality; mimics transactional data).
//   Rseq-Shf  Rseq uniformly shuffled.
//   Hhit      heavy hitter — one random key accounts for 50% of all records;
//             every other key appears at least once (deterministic
//             cardinality); heavy hitters concentrated in the first half.
//   Hhit-Shf  Hhit uniformly shuffled.
//   Zipf      Zipfian with exponent e = 0.5 (probabilistic cardinality: the
//             realized number of distinct keys may drift below the target as
//             c approaches n).
//   MovC      moving cluster — key i drawn uniformly from a window of width
//             W = 64 that slides from 0 to c - W across the dataset.
//
// All generators are deterministic given (distribution, n, c, seed).

#ifndef MEMAGG_DATA_DATASET_H_
#define MEMAGG_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

namespace memagg {

/// The six Table 4 distributions.
enum class Distribution {
  kRseq,
  kRseqShuffled,
  kHhit,
  kHhitShuffled,
  kZipf,
  kMovingCluster,
};

/// All Table 4 distributions in paper order.
inline constexpr Distribution kAllDistributions[] = {
    Distribution::kRseq, Distribution::kRseqShuffled,
    Distribution::kHhit, Distribution::kHhitShuffled,
    Distribution::kZipf, Distribution::kMovingCluster,
};

/// Paper abbreviation ("Rseq", "Rseq-Shf", "Hhit", "Hhit-Shf", "Zipf",
/// "MovC") for a distribution.
std::string DistributionName(Distribution distribution);

/// Inverse of DistributionName. Aborts on unknown names.
Distribution DistributionFromName(const std::string& name);

/// Parameters for one synthetic dataset.
struct DatasetSpec {
  Distribution distribution = Distribution::kRseq;
  uint64_t num_records = 0;
  /// Target group-by cardinality; must satisfy 1 <= cardinality and, for
  /// MovC, cardinality >= 64 (the window size).
  uint64_t cardinality = 1;
  uint64_t seed = 0x5eed5eed5eed5eedULL;
};

/// True if `spec` is generatable: 1 <= cardinality <= num_records, plus the
/// per-distribution constraints (Hhit needs cardinality <= n/2 + 1 so the
/// heavy hitter can cover half the records; MovC needs cardinality >= its
/// 64-wide window). Benches use this to skip infeasible sweep points.
bool IsValidSpec(const DatasetSpec& spec);

/// Generates the key column for `spec`. Aborts if !IsValidSpec(spec).
std::vector<uint64_t> GenerateKeys(const DatasetSpec& spec);

/// Generates a value column of `num_records` uniform random values in
/// [0, value_range). Used as the aggregated measure for Q2/Q3/Q5 queries.
std::vector<uint64_t> GenerateValues(uint64_t num_records,
                                     uint64_t value_range = 1000000,
                                     uint64_t seed = 0xa11fa135ULL);

/// Uniformly shuffles `keys` in place with a fixed-seed Fisher-Yates pass.
void ShuffleKeys(std::vector<uint64_t>& keys, uint64_t seed);

/// Number of distinct keys in `keys` (helper for tests and benches; sorts a
/// copy, O(n log n)).
uint64_t CountDistinct(const std::vector<uint64_t>& keys);

// --- Section 3.1.5 sorting-microbenchmark distributions (Figure 2). ---

/// The five micro distributions: random 1-5, random 1-1M, random 1k-1M,
/// presorted sequential, reverse-sorted sequential.
enum class MicroDistribution {
  kRandom1To5,
  kRandom1To1M,
  kRandom1kTo1M,
  kPresortedSequential,
  kReversedSequential,
};

inline constexpr MicroDistribution kAllMicroDistributions[] = {
    MicroDistribution::kRandom1To5,        MicroDistribution::kRandom1To1M,
    MicroDistribution::kRandom1kTo1M,      MicroDistribution::kPresortedSequential,
    MicroDistribution::kReversedSequential,
};

/// Display name matching the Figure 2 x-axis labels.
std::string MicroDistributionName(MicroDistribution distribution);

/// Generates `num_records` keys from a micro distribution.
std::vector<uint64_t> GenerateMicroKeys(MicroDistribution distribution,
                                        uint64_t num_records,
                                        uint64_t seed = 0x5eed5eed5eed5eedULL);

}  // namespace memagg

#endif  // MEMAGG_DATA_DATASET_H_
