#include "data/zipf.h"

#include <cmath>

#include "util/macros.h"

namespace memagg {

// Rejection-inversion after W. Hörmann & G. Derflinger, "Rejection-inversion
// to generate variates from monotone discrete distributions" (1996). The
// sampled value k in [1, n] has P(k) ~ 1/k^e; we return k-1.

ZipfGenerator::ZipfGenerator(uint64_t num_items, double exponent)
    : num_items_(num_items), exponent_(exponent) {
  MEMAGG_CHECK(num_items >= 1);
  MEMAGG_CHECK(exponent >= 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_num_items_ = H(static_cast<double>(num_items_) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -exponent_));
}

double ZipfGenerator::H(double x) const {
  if (exponent_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - exponent_) - 1.0) / (1.0 - exponent_);
}

double ZipfGenerator::HInverse(double x) const {
  if (exponent_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - exponent_), 1.0 / (1.0 - exponent_));
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  if (num_items_ == 1) return 0;
  while (true) {
    const double u = h_num_items_ + rng.NextDouble() * (h_x1_ - h_num_items_);
    const double x = HInverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > static_cast<double>(num_items_)) k = static_cast<double>(num_items_);
    if (k - x <= s_ || u >= H(k + 0.5) - std::pow(k, -exponent_)) {
      return static_cast<uint64_t>(k) - 1;
    }
  }
}

}  // namespace memagg
