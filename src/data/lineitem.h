// TPC-H Q1-shaped lineitem generator.
//
// Produces a columnar Table (data/table.h) with the columns TPC-H Q1
// touches, shaped like dbgen's lineitem but generated dependency-free and
// deterministically from (num_rows, seed):
//
//   l_returnflag    str   "A" / "N" / "R"; "N" for recent shipments,
//                         A/R split for older ones (dbgen ties the flag to
//                         receipt date; we tie it to ship date).
//   l_linestatus    str   "O" for shipments after the open/closed split,
//                         "F" before it.
//   l_quantity      u64   uniform 1..50.
//   l_extendedprice u64   price in CENTS, quantity-correlated like dbgen
//                         (unit price uniform ~$9..$1000).
//   l_discount      u64   percent points, uniform 0..10.
//   l_tax           u64   percent points, uniform 0..8.
//   l_shipdate      u64   days since the epoch start, uniform over ~7 years.
//   disc_price      u64   derived: extendedprice * (100 - discount), i.e.
//                         extendedprice*(1-discount) in units of 1e-4
//                         dollars.
//
// All money amounts are integer fixed-point so every SUM the engine
// computes is exact in uint64_t regardless of operator family, partition
// split, or merge order — which is what makes byte-exact golden-file
// validation (tools/make_golden.py, bench/bench_tpch_q1.cc) possible
// without a reference DBMS in the container.
//
// Preconditions are loud MEMAGG_CHECKs: num_rows is in [1, 16M]. The row
// cap is the exactness bound: the widest summed measure (disc_price, at
// most 50 * 100000 * 110 per row) times 16M rows stays below 2^53, so every
// Q1 sum is exactly representable as a double on the result surface even if
// all rows land in one group.

#ifndef MEMAGG_DATA_LINEITEM_H_
#define MEMAGG_DATA_LINEITEM_H_

#include <cstdint>

#include "data/table.h"

namespace memagg {

/// Day span of the generated l_shipdate column: [0, kLineitemShipdateDays).
inline constexpr uint64_t kLineitemShipdateDays = 2526;

/// The Q1 predicate cutoff: l_shipdate <= delivery date - 90 days, scaled
/// to our day span (keeps ~96% of rows, like the real query).
inline constexpr uint64_t kLineitemQ1ShipdateCutoff =
    kLineitemShipdateDays - 91;

/// Generates `num_rows` lineitem-shaped rows. Deterministic in
/// (num_rows, seed). Aborts loudly for num_rows == 0 or num_rows > 16M
/// (the fixed-point exactness bound documented above).
Table GenerateLineitem(uint64_t num_rows, uint64_t seed = 0x11e171ULL);

}  // namespace memagg

#endif  // MEMAGG_DATA_LINEITEM_H_
