// Zipfian key sampler (paper Section 4, "Zipf" dataset).
//
// Produces ranks in [0, cardinality) with P(rank k) proportional to
// 1/(k+1)^e. Uses Hörmann's rejection-inversion method so sampling is O(1)
// per draw regardless of cardinality (a CDF table for 10^7 ranks would not
// fit in cache and a linear scan would dominate dataset generation).

#ifndef MEMAGG_DATA_ZIPF_H_
#define MEMAGG_DATA_ZIPF_H_

#include <cstdint>

#include "util/rng.h"

namespace memagg {

/// Zipf(e) sampler over ranks [0, n).
class ZipfGenerator {
 public:
  /// `num_items` must be >= 1; `exponent` is the Zipf exponent (the paper
  /// uses e = 0.5).
  ZipfGenerator(uint64_t num_items, double exponent);

  /// Next Zipf-distributed rank in [0, num_items).
  uint64_t Next(Rng& rng);

  uint64_t num_items() const { return num_items_; }
  double exponent() const { return exponent_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t num_items_;
  double exponent_;
  double h_x1_;
  double h_num_items_;
  double s_;
};

}  // namespace memagg

#endif  // MEMAGG_DATA_ZIPF_H_
