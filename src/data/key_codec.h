// KeyCodec: multi-column group keys packed into the engine's fixed-width
// EncodedKey.
//
// The operator families (hash, tree, sort, adaptive) all run over
// EncodedKey (util/encoded_key.h) — that fixed width is what keeps their
// probe kernels, radix passes, and node layouts fast. Composite and string
// group-bys therefore go through a codec rather than widening the key type:
//
//   PackedKeyCodec  bias-encodes each key column into a bit field
//                   (value - min for integers, dictionary code for
//                   strings) and concatenates the fields MSB-first. Fits
//                   whenever the per-column ranges pack into 63 bits (the
//                   top bit stays clear so a packed key can never collide
//                   with the open-addressing empty/deleted sentinels).
//                   Order-preserving (numeric key order == lexicographic
//                   column order) when every string field's dictionary is
//                   sorted — so tree/sort operators emit natural multi-
//                   column order and leading-column ranges map to key
//                   ranges.
//
//   DictKeyCodec    fallback for wide schemas (packed width 64..128 bits):
//                   packs into a 128-bit composite, then interns distinct
//                   composites into dense 64-bit codes — the same
//                   dictionary trick string columns use, applied to the
//                   whole key. Encoding costs one hash probe per row; the
//                   code space is dense in first-appearance order, so the
//                   codec is NOT order-preserving and range conditions on
//                   the key are rejected upstream.
//
// Both codecs decode an EncodedKey back to the original column values
// (integer, or string via the column's dictionary), which is how
// TableQuery results surface real multi-column groups. The concept
// contract (TableKeyCodec, core/concepts.h) is what the execution layer
// instantiates over.
//
// Schemas wider than 128 bits are rejected loudly; nothing in the TPC-H
// workloads needs them and silently hashing would break decode.

#ifndef MEMAGG_DATA_KEY_CODEC_H_
#define MEMAGG_DATA_KEY_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "data/table.h"
#include "util/encoded_key.h"
#include "util/macros.h"

namespace memagg {

/// One decoded key column value. `type` selects which member is meaningful;
/// `text` views into the source column's StringDict and lives as long as
/// the Table the codec was built over.
struct KeyFieldValue {
  ColumnType type = ColumnType::kU64;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  std::string_view text{};

  /// Canonical textual form (used by golden files): the integer value, or
  /// the string itself.
  std::string ToString() const;

  friend bool operator==(const KeyFieldValue& a, const KeyFieldValue& b);
  /// Lexicographic-within-field order (strings by text, integers by value).
  friend bool operator<(const KeyFieldValue& a, const KeyFieldValue& b);
};

/// One decoded multi-column group key, in key-schema column order.
using DecodedKey = std::vector<KeyFieldValue>;

/// Per-field encoding plan shared by both codecs: which column, how many
/// bits, and the bias subtracted before packing.
struct KeyFieldPlan {
  size_t column = 0;       ///< Column index in the source table.
  ColumnType type = ColumnType::kU64;
  int bits = 0;            ///< Encoded width of this field.
  uint64_t bias = 0;       ///< Subtracted before packing (two's-complement
                           ///< bit pattern of the minimum for kI64).
};

/// Computes the field plans for `key_columns` by scanning the table's
/// column ranges: integers get bias = min and width = bit_width(max - min),
/// strings get width = bit_width(dict size - 1). f64 key columns are
/// rejected loudly (no total order worth packing under NaN). Returns the
/// plans and the total packed width in bits.
std::pair<std::vector<KeyFieldPlan>, int> PlanKeyFields(
    const Table& table, const std::vector<std::string>& key_columns);

/// Order-preserving packed codec for schemas whose plan fits in 64 bits.
class PackedKeyCodec {
 public:
  /// Builds the codec, or nullopt when the packed width needs 64 or more
  /// bits (use DictKeyCodec). The codec keeps a pointer to `table`; it must
  /// outlive the codec.
  static std::optional<PackedKeyCodec> TryBuild(
      const Table& table, const std::vector<std::string>& key_columns);

  size_t num_fields() const { return plans_.size(); }
  int width_bits() const { return width_bits_; }

  /// True when numeric EncodedKey order equals lexicographic column order:
  /// always for integer fields, for string fields iff their dictionary is
  /// sorted.
  bool order_preserving() const { return order_preserving_; }

  /// Encodes every table row (or the given subset of row indices).
  std::vector<EncodedKey> EncodeAll() const;
  std::vector<EncodedKey> EncodeRows(
      const std::vector<uint64_t>& row_indices) const;

  /// Packs one row.
  EncodedKey EncodeRow(size_t row) const;

  /// Inverse of EncodeRow: unpacks `key` into per-column values.
  DecodedKey Decode(EncodedKey key) const;

  /// The inclusive EncodedKey range covering every key whose LEADING field
  /// lies in [lo, hi] (bounds in the field's own domain; they need not be
  /// values present in the column). This is the Q7 range-condition bridge:
  /// because packing is MSB-first, a leading-field range is one contiguous
  /// encoded range — but only on an order-preserving codec; aborts loudly
  /// otherwise. Returns nullopt when the range selects nothing.
  std::optional<std::pair<EncodedKey, EncodedKey>> LeadingFieldRange(
      const KeyFieldValue& lo, const KeyFieldValue& hi) const;

 private:
  PackedKeyCodec(const Table& table, std::vector<KeyFieldPlan> plans,
                 int width_bits);

  uint64_t FieldRaw(const KeyFieldPlan& plan, size_t row) const;

  const Table* table_;
  std::vector<KeyFieldPlan> plans_;
  int width_bits_;
  bool order_preserving_;
};

/// Dictionary-code fallback for schemas packing into 65..128 bits: distinct
/// wide composites are interned into dense EncodedKeys (first-appearance
/// order, NOT order-preserving). Unlike PackedKeyCodec this codec is
/// stateful — Build() performs the encode pass so the decode table exists —
/// so construction returns the codec and the encoded column together.
class DictKeyCodec {
 public:
  /// Builds the codec over all rows (or `row_indices` when non-null) and
  /// encodes them in one pass. Aborts loudly when the packed width exceeds
  /// 128 bits. `table` must outlive the codec.
  static DictKeyCodec Build(const Table& table,
                            const std::vector<std::string>& key_columns,
                            const std::vector<uint64_t>* row_indices = nullptr);

  size_t num_fields() const { return plans_.size(); }

  /// Width of the *code* space actually handed to operators (bits needed
  /// for the dense codes), not of the underlying composite.
  int width_bits() const;

  /// Width of the underlying wide composite, for cost models.
  int composite_bits() const { return composite_bits_; }

  bool order_preserving() const { return false; }

  /// The encoded key column produced by Build(), aligned with the encoded
  /// rows (all rows, or the row_indices subset).
  const std::vector<EncodedKey>& encoded() const { return encoded_; }
  std::vector<EncodedKey> TakeEncoded() { return std::move(encoded_); }

  /// Number of distinct composites seen.
  size_t num_distinct() const { return composites_.size(); }

  /// Unpacks the composite behind dense code `key`.
  DecodedKey Decode(EncodedKey key) const;

 private:
  DictKeyCodec(const Table& table, std::vector<KeyFieldPlan> plans,
               int composite_bits);

  void EncodeRowsInternal(const std::vector<uint64_t>* row_indices);

  struct CompositeHash {
    size_t operator()(unsigned __int128 v) const {
      return std::hash<uint64_t>{}(static_cast<uint64_t>(v) ^
                                   (static_cast<uint64_t>(v >> 64) *
                                    0x9e3779b97f4a7c15ULL));
    }
  };

  const Table* table_;
  std::vector<KeyFieldPlan> plans_;
  int composite_bits_;
  std::vector<unsigned __int128> composites_;  ///< code -> composite.
  std::unordered_map<unsigned __int128, uint32_t, CompositeHash> code_of_;
  std::vector<EncodedKey> encoded_;
};

}  // namespace memagg

#endif  // MEMAGG_DATA_KEY_CODEC_H_
