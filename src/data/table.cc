#include "data/table.h"

#include <cstdio>

namespace memagg {

std::string ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kU64:
      return "u64";
    case ColumnType::kI64:
      return "i64";
    case ColumnType::kF64:
      return "f64";
    case ColumnType::kString:
      return "str";
  }
  MEMAGG_CHECK(false);
  return "";
}

Column Column::String(StringDict dict, std::vector<uint32_t> codes) {
  for (uint32_t code : codes) {
    MEMAGG_CHECK(code < dict.size() &&
                 "string column code not present in its dictionary");
  }
  return Column(ColumnType::kString,
                StringStorage{std::move(dict), std::move(codes)});
}

size_t Column::size() const {
  switch (type_) {
    case ColumnType::kU64:
      return u64().size();
    case ColumnType::kI64:
      return i64().size();
    case ColumnType::kF64:
      return f64().size();
    case ColumnType::kString:
      return codes().size();
  }
  MEMAGG_CHECK(false);
  return 0;
}

void Column::RemapCodes(const std::vector<uint32_t>& remap) {
  MEMAGG_CHECK(type_ == ColumnType::kString &&
               "RemapCodes on a non-string column");
  StringStorage& storage = std::get<StringStorage>(storage_);
  MEMAGG_CHECK(remap.size() == storage.dict.size());
  for (uint32_t& code : storage.codes) code = remap[code];
}

void Column::FreezeDictSorted() {
  MEMAGG_CHECK(type_ == ColumnType::kString &&
               "FreezeDictSorted on a non-string column");
  StringStorage& storage = std::get<StringStorage>(storage_);
  RemapCodes(storage.dict.FreezeSorted());
}

size_t Column::MemoryBytes() const {
  switch (type_) {
    case ColumnType::kU64:
      return u64().capacity() * sizeof(uint64_t);
    case ColumnType::kI64:
      return i64().capacity() * sizeof(int64_t);
    case ColumnType::kF64:
      return f64().capacity() * sizeof(double);
    case ColumnType::kString:
      return codes().capacity() * sizeof(uint32_t) + dict().MemoryBytes();
  }
  MEMAGG_CHECK(false);
  return 0;
}

size_t Table::AddColumn(std::string name, Column column) {
  MEMAGG_CHECK(!name.empty() && "column name must not be empty");
  MEMAGG_CHECK(!HasColumn(name) && "duplicate column name");
  if (!columns_.empty()) {
    MEMAGG_CHECK(column.size() == num_rows_ &&
                 "column row count does not match the table");
  }
  num_rows_ = column.size();
  names_.push_back(std::move(name));
  columns_.push_back(std::move(column));
  return columns_.size() - 1;
}

bool Table::HasColumn(const std::string& name) const {
  for (const std::string& existing : names_) {
    if (existing == name) return true;
  }
  return false;
}

size_t Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  std::fprintf(stderr, "Unknown column: %s\n", name.c_str());
  MEMAGG_CHECK(false);
  return 0;
}

size_t Table::MemoryBytes() const {
  size_t bytes = 0;
  for (const Column& column : columns_) bytes += column.MemoryBytes();
  return bytes;
}

}  // namespace memagg
