// Dictionary encoding for string columns.
//
// A StringDict interns distinct strings and hands out dense uint32_t codes.
// String columns in a Table (data/table.h) store only the codes; the
// KeyCodec layer (data/key_codec.h) packs those codes into the engine's
// fixed-width EncodedKey, so string group-bys run at integer-key speed
// through every operator family.
//
// Code order vs string order: codes are assigned in first-intern order, so
// numeric code order only matches lexicographic string order if strings
// were interned sorted. `sorted()` tracks this; a codec over an unsorted
// dict must not claim order preservation. Populate the dictionary with its
// domain in sorted order up front (or call FreezeSorted()) when tree/sort
// operators should emit groups in natural string order.

#ifndef MEMAGG_DATA_STRING_DICT_H_
#define MEMAGG_DATA_STRING_DICT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/macros.h"

namespace memagg {

class StringDict {
 public:
  /// Code returned by Find() when the string was never interned.
  static constexpr uint32_t kNoCode = ~0u;

  /// Returns the code for `text`, interning it if new. Codes are dense:
  /// the i-th distinct string interned gets code i.
  uint32_t Intern(std::string_view text) {
    auto it = code_of_.find(text);
    if (it != code_of_.end()) return it->second;
    MEMAGG_CHECK(strings_.size() < kNoCode && "StringDict overflow");
    const uint32_t code = static_cast<uint32_t>(strings_.size());
    if (code > 0 && !(strings_.back() < text)) sorted_ = false;
    strings_.emplace_back(text);
    code_of_.emplace(strings_.back(), code);
    return code;
  }

  /// Code of `text`, or kNoCode if it was never interned.
  uint32_t Find(std::string_view text) const {
    auto it = code_of_.find(text);
    return it == code_of_.end() ? kNoCode : it->second;
  }

  /// The string behind `code`. Aborts on out-of-range codes.
  const std::string& String(uint32_t code) const {
    MEMAGG_CHECK(code < strings_.size() && "StringDict code out of range");
    return strings_[code];
  }

  /// Number of distinct strings interned.
  size_t size() const { return strings_.size(); }

  /// First code whose string is >= `text`; size() when every string is
  /// smaller. Requires sorted() — code order is string order only then.
  uint32_t LowerBound(std::string_view text) const {
    MEMAGG_CHECK(sorted_ && "LowerBound requires a sorted dictionary");
    const auto it = std::lower_bound(strings_.begin(), strings_.end(), text);
    return static_cast<uint32_t>(it - strings_.begin());
  }

  /// First code whose string is > `text`; size() when none is. Requires
  /// sorted().
  uint32_t UpperBound(std::string_view text) const {
    MEMAGG_CHECK(sorted_ && "UpperBound requires a sorted dictionary");
    const auto it = std::upper_bound(strings_.begin(), strings_.end(), text);
    return static_cast<uint32_t>(it - strings_.begin());
  }

  /// True while numeric code order equals lexicographic string order (always
  /// true for an empty or freshly frozen dict).
  bool sorted() const { return sorted_; }

  /// Re-assigns codes so code order equals lexicographic string order.
  /// Returns the remap table: remap[old_code] == new_code. Columns holding
  /// old codes must be rewritten through it (Column::RemapCodes).
  std::vector<uint32_t> FreezeSorted() {
    std::vector<uint32_t> order(strings_.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return strings_[a] < strings_[b];
    });
    std::vector<uint32_t> remap(strings_.size());
    std::vector<std::string> sorted_strings(strings_.size());
    for (uint32_t new_code = 0; new_code < order.size(); ++new_code) {
      remap[order[new_code]] = new_code;
      sorted_strings[new_code] = std::move(strings_[order[new_code]]);
    }
    strings_ = std::move(sorted_strings);
    code_of_.clear();
    for (uint32_t code = 0; code < strings_.size(); ++code) {
      code_of_.emplace(strings_[code], code);
    }
    sorted_ = true;
    return remap;
  }

  /// Approximate bytes held by the dictionary.
  size_t MemoryBytes() const {
    size_t bytes = strings_.capacity() * sizeof(std::string) +
                   code_of_.size() * (sizeof(std::string_view) +
                                      sizeof(uint32_t) + sizeof(void*));
    for (const std::string& s : strings_) bytes += s.capacity();
    return bytes;
  }

 private:
  // Heterogeneous lookup so Intern/Find take string_view without allocating.
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  std::vector<std::string> strings_;
  std::unordered_map<std::string, uint32_t, Hash, Eq> code_of_;
  bool sorted_ = true;
};

}  // namespace memagg

#endif  // MEMAGG_DATA_STRING_DICT_H_
