#include "data/dataset.h"

#include <algorithm>

#include "data/zipf.h"
#include "util/macros.h"
#include "util/rng.h"

namespace memagg {
namespace {

constexpr uint64_t kMovingClusterWindow = 64;

std::vector<uint64_t> GenerateRseq(uint64_t n, uint64_t c) {
  std::vector<uint64_t> keys(n);
  uint64_t next = 0;
  for (uint64_t i = 0; i < n; ++i) {
    keys[i] = next;
    if (++next == c) next = 0;
  }
  return keys;
}

std::vector<uint64_t> GenerateHhit(uint64_t n, uint64_t c, uint64_t seed) {
  MEMAGG_CHECK(c <= n / 2 + 1 &&
               "Hhit needs cardinality <= n/2 + 1 so the heavy hitter can "
               "cover half the records");
  Rng rng(seed);
  const uint64_t heavy_key = rng.NextBounded(c);
  std::vector<uint64_t> keys;
  keys.reserve(n);
  // The heavy hitter accounts for 50% of all records and (unshuffled) is
  // concentrated in the first half of the dataset.
  const uint64_t heavy_count = n / 2;
  keys.insert(keys.end(), heavy_count, heavy_key);
  // Every remaining key appears at least once so the realized cardinality is
  // deterministic.
  for (uint64_t k = 0; k < c; ++k) {
    if (k != heavy_key) keys.push_back(k);
  }
  // Fill the rest with uniform random picks from the non-heavy keys.
  while (keys.size() < n) {
    uint64_t k = rng.NextBounded(c);
    if (c > 1 && k == heavy_key) k = (k + 1) % c;
    keys.push_back(k);
  }
  return keys;
}

std::vector<uint64_t> GenerateZipf(uint64_t n, uint64_t c, uint64_t seed) {
  Rng rng(seed);
  ZipfGenerator zipf(c, 0.5);
  std::vector<uint64_t> keys(n);
  for (uint64_t i = 0; i < n; ++i) keys[i] = zipf.Next(rng);
  return keys;
}

std::vector<uint64_t> GenerateMovingCluster(uint64_t n, uint64_t c,
                                            uint64_t seed) {
  MEMAGG_CHECK(c >= kMovingClusterWindow &&
               "MovC needs cardinality >= 64 (the sliding window size)");
  Rng rng(seed);
  std::vector<uint64_t> keys(n);
  const uint64_t span = c - kMovingClusterWindow;
  for (uint64_t i = 0; i < n; ++i) {
    // Window base slides from 0 to c - W; key i is uniform in
    // [base, base + W].
    const uint64_t base =
        n == 0 ? 0
               : static_cast<uint64_t>(
                     (static_cast<unsigned __int128>(span) * i) / n);
    keys[i] = base + rng.NextBounded(kMovingClusterWindow + 1);
  }
  return keys;
}

}  // namespace

std::string DistributionName(Distribution distribution) {
  switch (distribution) {
    case Distribution::kRseq:
      return "Rseq";
    case Distribution::kRseqShuffled:
      return "Rseq-Shf";
    case Distribution::kHhit:
      return "Hhit";
    case Distribution::kHhitShuffled:
      return "Hhit-Shf";
    case Distribution::kZipf:
      return "Zipf";
    case Distribution::kMovingCluster:
      return "MovC";
  }
  MEMAGG_CHECK(false);
  return "";
}

Distribution DistributionFromName(const std::string& name) {
  for (Distribution d : kAllDistributions) {
    if (DistributionName(d) == name) return d;
  }
  std::fprintf(stderr, "Unknown distribution: %s\n", name.c_str());
  MEMAGG_CHECK(false);
  return Distribution::kRseq;
}

bool IsValidSpec(const DatasetSpec& spec) {
  if (spec.cardinality < 1 || spec.cardinality > spec.num_records) {
    return false;
  }
  switch (spec.distribution) {
    case Distribution::kHhit:
    case Distribution::kHhitShuffled:
      return spec.cardinality <= spec.num_records / 2 + 1;
    case Distribution::kMovingCluster:
      return spec.cardinality >= 64;
    default:
      return true;
  }
}

std::vector<uint64_t> GenerateKeys(const DatasetSpec& spec) {
  // Each precondition aborts with its own message (the per-distribution
  // ones fire inside the generators above); IsValidSpec stays the quiet
  // queryable form for sweep drivers that skip invalid combinations.
  MEMAGG_CHECK(spec.cardinality >= 1 && "cardinality must be at least 1");
  MEMAGG_CHECK(spec.cardinality <= spec.num_records &&
               "cardinality cannot exceed the record count");
  std::vector<uint64_t> keys;
  switch (spec.distribution) {
    case Distribution::kRseq:
      return GenerateRseq(spec.num_records, spec.cardinality);
    case Distribution::kRseqShuffled:
      keys = GenerateRseq(spec.num_records, spec.cardinality);
      ShuffleKeys(keys, spec.seed);
      return keys;
    case Distribution::kHhit:
      return GenerateHhit(spec.num_records, spec.cardinality, spec.seed);
    case Distribution::kHhitShuffled:
      keys = GenerateHhit(spec.num_records, spec.cardinality, spec.seed);
      ShuffleKeys(keys, spec.seed + 1);
      return keys;
    case Distribution::kZipf:
      return GenerateZipf(spec.num_records, spec.cardinality, spec.seed);
    case Distribution::kMovingCluster:
      return GenerateMovingCluster(spec.num_records, spec.cardinality,
                                   spec.seed);
  }
  MEMAGG_CHECK(false);
  return keys;
}

std::vector<uint64_t> GenerateValues(uint64_t num_records, uint64_t value_range,
                                     uint64_t seed) {
  MEMAGG_CHECK(value_range >= 1 && "value_range must be at least 1");
  Rng rng(seed);
  std::vector<uint64_t> values(num_records);
  for (auto& v : values) v = rng.NextBounded(value_range);
  return values;
}

void ShuffleKeys(std::vector<uint64_t>& keys, uint64_t seed) {
  Rng rng(seed);
  for (uint64_t i = keys.size(); i > 1; --i) {
    const uint64_t j = rng.NextBounded(i);
    std::swap(keys[i - 1], keys[j]);
  }
}

uint64_t CountDistinct(const std::vector<uint64_t>& keys) {
  std::vector<uint64_t> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  return static_cast<uint64_t>(
      std::unique(sorted.begin(), sorted.end()) - sorted.begin());
}

std::string MicroDistributionName(MicroDistribution distribution) {
  switch (distribution) {
    case MicroDistribution::kRandom1To5:
      return "Random(1-5)";
    case MicroDistribution::kRandom1To1M:
      return "Random(1-1M)";
    case MicroDistribution::kRandom1kTo1M:
      return "Random(1k-1M)";
    case MicroDistribution::kPresortedSequential:
      return "Pre-sorted Sequential";
    case MicroDistribution::kReversedSequential:
      return "Reversed Sequential";
  }
  MEMAGG_CHECK(false);
  return "";
}

std::vector<uint64_t> GenerateMicroKeys(MicroDistribution distribution,
                                        uint64_t num_records, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> keys(num_records);
  switch (distribution) {
    case MicroDistribution::kRandom1To5:
      for (auto& k : keys) k = rng.NextInRange(1, 5);
      break;
    case MicroDistribution::kRandom1To1M:
      for (auto& k : keys) k = rng.NextInRange(1, 1000000);
      break;
    case MicroDistribution::kRandom1kTo1M:
      for (auto& k : keys) k = rng.NextInRange(1000, 1000000);
      break;
    case MicroDistribution::kPresortedSequential:
      for (uint64_t i = 0; i < num_records; ++i) keys[i] = i;
      break;
    case MicroDistribution::kReversedSequential:
      for (uint64_t i = 0; i < num_records; ++i) keys[i] = num_records - 1 - i;
      break;
  }
  return keys;
}

}  // namespace memagg
