#include "data/key_codec.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace memagg {
namespace {

/// Two's-complement bit pattern of an int64_t, biased so numeric order is
/// preserved under unsigned comparison (flip the sign bit).
uint64_t OrderedBits(int64_t value) {
  return static_cast<uint64_t>(value) ^ (1ULL << 63);
}

int WidthForRange(uint64_t range) {
  // bit_width(0) == 0; every field occupies at least one bit so decode can
  // always split the key deterministically.
  return std::max(1, static_cast<int>(std::bit_width(range)));
}

}  // namespace

std::string KeyFieldValue::ToString() const {
  switch (type) {
    case ColumnType::kU64:
      return std::to_string(u64);
    case ColumnType::kI64:
      return std::to_string(i64);
    case ColumnType::kString:
      return std::string(text);
    case ColumnType::kF64:
      break;  // Unreachable: PlanKeyFields rejects f64 key columns.
  }
  MEMAGG_CHECK(false);
  return "";
}

bool operator==(const KeyFieldValue& a, const KeyFieldValue& b) {
  if (a.type != b.type) return false;
  switch (a.type) {
    case ColumnType::kU64:
      return a.u64 == b.u64;
    case ColumnType::kI64:
      return a.i64 == b.i64;
    case ColumnType::kString:
      return a.text == b.text;
    case ColumnType::kF64:
      break;
  }
  MEMAGG_CHECK(false);
  return false;
}

bool operator<(const KeyFieldValue& a, const KeyFieldValue& b) {
  MEMAGG_CHECK(a.type == b.type && "comparing key fields of different types");
  switch (a.type) {
    case ColumnType::kU64:
      return a.u64 < b.u64;
    case ColumnType::kI64:
      return a.i64 < b.i64;
    case ColumnType::kString:
      return a.text < b.text;
    case ColumnType::kF64:
      break;
  }
  MEMAGG_CHECK(false);
  return false;
}

std::pair<std::vector<KeyFieldPlan>, int> PlanKeyFields(
    const Table& table, const std::vector<std::string>& key_columns) {
  MEMAGG_CHECK(!key_columns.empty() &&
               "a group-by key needs at least one column");
  MEMAGG_CHECK(table.num_rows() > 0 &&
               "cannot plan key fields over an empty table");
  std::vector<KeyFieldPlan> plans;
  plans.reserve(key_columns.size());
  int total_bits = 0;
  for (const std::string& name : key_columns) {
    KeyFieldPlan plan;
    plan.column = table.ColumnIndex(name);
    const Column& column = table.ColumnAt(plan.column);
    plan.type = column.type();
    switch (column.type()) {
      case ColumnType::kU64: {
        const auto& values = column.u64();
        const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
        plan.bias = *lo;
        plan.bits = WidthForRange(*hi - *lo);
        break;
      }
      case ColumnType::kI64: {
        const auto& values = column.i64();
        const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
        // Bias in the order-preserving unsigned image so subtraction never
        // wraps across the sign boundary.
        plan.bias = OrderedBits(*lo);
        plan.bits = WidthForRange(OrderedBits(*hi) - OrderedBits(*lo));
        break;
      }
      case ColumnType::kString: {
        plan.bias = 0;
        plan.bits = WidthForRange(
            column.dict().size() == 0 ? 0 : column.dict().size() - 1);
        break;
      }
      case ColumnType::kF64:
        std::fprintf(stderr, "f64 column '%s' cannot be a group-by key\n",
                     name.c_str());
        MEMAGG_CHECK(false);
    }
    total_bits += plan.bits;
    plans.push_back(plan);
  }
  return {std::move(plans), total_bits};
}

// --- PackedKeyCodec ----------------------------------------------------------

PackedKeyCodec::PackedKeyCodec(const Table& table,
                               std::vector<KeyFieldPlan> plans, int width_bits)
    : table_(&table), plans_(std::move(plans)), width_bits_(width_bits) {
  order_preserving_ = true;
  for (const KeyFieldPlan& plan : plans_) {
    if (plan.type == ColumnType::kString &&
        !table.ColumnAt(plan.column).dict().sorted()) {
      order_preserving_ = false;
    }
  }
}

std::optional<PackedKeyCodec> PackedKeyCodec::TryBuild(
    const Table& table, const std::vector<std::string>& key_columns) {
  auto [plans, total_bits] = PlanKeyFields(table, key_columns);
  // Strictly below the engine width: a full 64-bit pack could produce
  // ~0ULL, which the open-addressing maps reserve as their empty-slot
  // sentinel (hash/hash_fn.h). Schemas needing 64+ bits take the dictionary
  // fallback, whose dense codes stay far below the sentinel.
  if (total_bits >= kEncodedKeyBits) return std::nullopt;
  return PackedKeyCodec(table, std::move(plans), total_bits);
}

uint64_t PackedKeyCodec::FieldRaw(const KeyFieldPlan& plan, size_t row) const {
  const Column& column = table_->ColumnAt(plan.column);
  switch (plan.type) {
    case ColumnType::kU64:
      return column.u64()[row] - plan.bias;
    case ColumnType::kI64:
      return OrderedBits(column.i64()[row]) - plan.bias;
    case ColumnType::kString:
      return column.codes()[row];
    case ColumnType::kF64:
      break;
  }
  MEMAGG_CHECK(false);
  return 0;
}

EncodedKey PackedKeyCodec::EncodeRow(size_t row) const {
  MEMAGG_CHECK(row < table_->num_rows());
  EncodedKey key = 0;
  for (const KeyFieldPlan& plan : plans_) {
    key = (key << plan.bits) | FieldRaw(plan, row);
  }
  return key;
}

std::vector<EncodedKey> PackedKeyCodec::EncodeAll() const {
  std::vector<EncodedKey> keys(table_->num_rows());
  for (size_t row = 0; row < keys.size(); ++row) keys[row] = EncodeRow(row);
  return keys;
}

std::vector<EncodedKey> PackedKeyCodec::EncodeRows(
    const std::vector<uint64_t>& row_indices) const {
  std::vector<EncodedKey> keys(row_indices.size());
  for (size_t i = 0; i < row_indices.size(); ++i) {
    keys[i] = EncodeRow(row_indices[i]);
  }
  return keys;
}

DecodedKey PackedKeyCodec::Decode(EncodedKey key) const {
  DecodedKey decoded(plans_.size());
  int shift = width_bits_;
  for (size_t i = 0; i < plans_.size(); ++i) {
    const KeyFieldPlan& plan = plans_[i];
    shift -= plan.bits;
    const uint64_t mask =
        plan.bits == 64 ? ~0ULL : (1ULL << plan.bits) - 1;
    const uint64_t raw = (key >> shift) & mask;
    KeyFieldValue& value = decoded[i];
    value.type = plan.type;
    switch (plan.type) {
      case ColumnType::kU64:
        value.u64 = raw + plan.bias;
        break;
      case ColumnType::kI64:
        value.i64 = static_cast<int64_t>((raw + plan.bias) ^ (1ULL << 63));
        break;
      case ColumnType::kString:
        value.text = table_->ColumnAt(plan.column).dict().String(
            static_cast<uint32_t>(raw));
        break;
      case ColumnType::kF64:
        MEMAGG_CHECK(false);
    }
  }
  return decoded;
}

std::optional<std::pair<EncodedKey, EncodedKey>>
PackedKeyCodec::LeadingFieldRange(const KeyFieldValue& lo,
                                  const KeyFieldValue& hi) const {
  MEMAGG_CHECK(order_preserving_ &&
               "range conditions need an order-preserving key codec");
  const KeyFieldPlan& plan = plans_.front();
  MEMAGG_CHECK(lo.type == plan.type && hi.type == plan.type &&
               "range bound type does not match the leading key column");
  const uint64_t field_max = (1ULL << plan.bits) - 1;  // bits <= 63 (TryBuild).
  uint64_t raw_lo = 0;
  uint64_t raw_hi = 0;
  switch (plan.type) {
    case ColumnType::kU64:
    case ColumnType::kI64: {
      // Work in the biased unsigned image so both integer types clamp the
      // same way against the field's observed domain [bias, bias+field_max].
      const uint64_t image_lo = plan.type == ColumnType::kU64
                                    ? lo.u64
                                    : OrderedBits(lo.i64);
      const uint64_t image_hi = plan.type == ColumnType::kU64
                                    ? hi.u64
                                    : OrderedBits(hi.i64);
      if (image_lo > image_hi) return std::nullopt;
      if (image_hi < plan.bias) return std::nullopt;
      raw_lo = image_lo <= plan.bias ? 0 : image_lo - plan.bias;
      if (raw_lo > field_max) return std::nullopt;
      raw_hi = std::min(image_hi - plan.bias, field_max);
      break;
    }
    case ColumnType::kString: {
      const StringDict& dict = table_->ColumnAt(plan.column).dict();
      const uint32_t first = dict.LowerBound(lo.text);
      const uint32_t past = dict.UpperBound(hi.text);
      if (first >= past) return std::nullopt;
      raw_lo = first;
      raw_hi = past - 1;
      break;
    }
    case ColumnType::kF64:
      MEMAGG_CHECK(false);
  }
  const int rest_bits = width_bits_ - plan.bits;
  const uint64_t rest_mask = rest_bits == 0 ? 0 : (1ULL << rest_bits) - 1;
  return std::make_pair(static_cast<EncodedKey>(raw_lo) << rest_bits,
                        (static_cast<EncodedKey>(raw_hi) << rest_bits) |
                            rest_mask);
}

// --- DictKeyCodec ------------------------------------------------------------

DictKeyCodec::DictKeyCodec(const Table& table, std::vector<KeyFieldPlan> plans,
                           int composite_bits)
    : table_(&table),
      plans_(std::move(plans)),
      composite_bits_(composite_bits) {}

DictKeyCodec DictKeyCodec::Build(const Table& table,
                                 const std::vector<std::string>& key_columns,
                                 const std::vector<uint64_t>* row_indices) {
  auto [plans, total_bits] = PlanKeyFields(table, key_columns);
  MEMAGG_CHECK(total_bits <= 2 * kEncodedKeyBits &&
               "group-by key schema packs wider than 128 bits");
  DictKeyCodec codec(table, std::move(plans), total_bits);
  codec.EncodeRowsInternal(row_indices);
  return codec;
}

int DictKeyCodec::width_bits() const {
  return WidthForRange(composites_.empty() ? 0 : composites_.size() - 1);
}

void DictKeyCodec::EncodeRowsInternal(
    const std::vector<uint64_t>* row_indices) {
  const size_t n =
      row_indices == nullptr ? table_->num_rows() : row_indices->size();
  encoded_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t row = row_indices == nullptr ? i : (*row_indices)[i];
    unsigned __int128 composite = 0;
    for (const KeyFieldPlan& plan : plans_) {
      uint64_t raw = 0;
      const Column& column = table_->ColumnAt(plan.column);
      switch (plan.type) {
        case ColumnType::kU64:
          raw = column.u64()[row] - plan.bias;
          break;
        case ColumnType::kI64:
          raw = OrderedBits(column.i64()[row]) - plan.bias;
          break;
        case ColumnType::kString:
          raw = column.codes()[row];
          break;
        case ColumnType::kF64:
          MEMAGG_CHECK(false);
      }
      composite = (composite << plan.bits) | raw;
    }
    auto [it, inserted] =
        code_of_.try_emplace(composite, static_cast<uint32_t>(
                                            composites_.size()));
    if (inserted) composites_.push_back(composite);
    encoded_[i] = it->second;
  }
}

DecodedKey DictKeyCodec::Decode(EncodedKey key) const {
  MEMAGG_CHECK(key < composites_.size() &&
               "EncodedKey is not a code this DictKeyCodec produced");
  unsigned __int128 composite = composites_[static_cast<size_t>(key)];
  DecodedKey decoded(plans_.size());
  int shift = composite_bits_;
  for (size_t i = 0; i < plans_.size(); ++i) {
    const KeyFieldPlan& plan = plans_[i];
    shift -= plan.bits;
    const unsigned __int128 mask =
        (static_cast<unsigned __int128>(1) << plan.bits) - 1;
    const uint64_t raw = static_cast<uint64_t>((composite >> shift) & mask);
    KeyFieldValue& value = decoded[i];
    value.type = plan.type;
    switch (plan.type) {
      case ColumnType::kU64:
        value.u64 = raw + plan.bias;
        break;
      case ColumnType::kI64:
        value.i64 = static_cast<int64_t>((raw + plan.bias) ^ (1ULL << 63));
        break;
      case ColumnType::kString:
        value.text = table_->ColumnAt(plan.column).dict().String(
            static_cast<uint32_t>(raw));
        break;
      case ColumnType::kF64:
        MEMAGG_CHECK(false);
    }
  }
  return decoded;
}

}  // namespace memagg
