#include "data/lineitem.h"

#include <vector>

#include "data/string_dict.h"
#include "util/macros.h"
#include "util/rng.h"

namespace memagg {
namespace {

/// Exactness bound: with <= 16M rows, the largest Q1 sum (disc_price,
/// capped at 50 * 100'000 cents * 110 per row) stays below 2^53 even if
/// every row lands in one group, so u64 aggregate states convert to double
/// losslessly on the result surface.
constexpr uint64_t kMaxRows = 16ULL << 20;

/// Unit price range in cents (~$9.00 .. $1000.00), dbgen-ish.
constexpr uint64_t kMinUnitPriceCents = 900;
constexpr uint64_t kMaxUnitPriceCents = 100000;

/// The open/closed l_linestatus split sits two "years" before the end of
/// the ship-date span, like dbgen's currentdate.
constexpr uint64_t kLinestatusSplitDay = kLineitemShipdateDays - 730;

}  // namespace

Table GenerateLineitem(uint64_t num_rows, uint64_t seed) {
  MEMAGG_CHECK(num_rows >= 1 && "lineitem needs at least one row");
  MEMAGG_CHECK(num_rows <= kMaxRows &&
               "lineitem exceeds the 16M-row fixed-point exactness bound");

  Rng rng(seed);

  // Pre-populate both dictionaries with their full domains in sorted order
  // so PackedKeyCodec over (l_returnflag, l_linestatus) is order-preserving
  // and tree/sort operators emit groups in natural string order.
  StringDict returnflag_dict;
  const uint32_t kFlagA = returnflag_dict.Intern("A");
  const uint32_t kFlagN = returnflag_dict.Intern("N");
  const uint32_t kFlagR = returnflag_dict.Intern("R");
  StringDict linestatus_dict;
  const uint32_t kStatusF = linestatus_dict.Intern("F");
  const uint32_t kStatusO = linestatus_dict.Intern("O");
  MEMAGG_CHECK(returnflag_dict.sorted() && linestatus_dict.sorted());

  const size_t n = static_cast<size_t>(num_rows);
  std::vector<uint32_t> returnflag(n);
  std::vector<uint32_t> linestatus(n);
  std::vector<uint64_t> quantity(n);
  std::vector<uint64_t> extendedprice(n);
  std::vector<uint64_t> discount(n);
  std::vector<uint64_t> tax(n);
  std::vector<uint64_t> shipdate(n);
  std::vector<uint64_t> disc_price(n);

  for (size_t i = 0; i < n; ++i) {
    const uint64_t day = rng.NextBounded(kLineitemShipdateDays);
    shipdate[i] = day;
    // dbgen ties linestatus/returnflag to dates: recent shipments are still
    // open ("N"/"O"), older ones are finished and split between accepted
    // and returned. The correlation is what gives Q1 its classic four-group
    // result instead of all six flag/status combinations.
    if (day >= kLinestatusSplitDay) {
      linestatus[i] = kStatusO;
      returnflag[i] = kFlagN;
    } else {
      linestatus[i] = kStatusF;
      const uint64_t pick = rng.NextBounded(3);
      returnflag[i] = pick == 0 ? kFlagA : (pick == 1 ? kFlagR : kFlagN);
    }
    const uint64_t qty = rng.NextInRange(1, 50);
    quantity[i] = qty;
    const uint64_t unit_price =
        rng.NextInRange(kMinUnitPriceCents, kMaxUnitPriceCents);
    extendedprice[i] = qty * unit_price;
    discount[i] = rng.NextBounded(11);  // 0..10 percent.
    tax[i] = rng.NextBounded(9);        // 0..8 percent.
    // Fixed-point derived measure in units of 1e-4 dollars: the integer
    // product keeps every engine-side SUM exact (see header comment).
    disc_price[i] = extendedprice[i] * (100 - discount[i]);
  }

  Table table;
  table.AddColumn("l_returnflag",
                  Column::String(std::move(returnflag_dict),
                                 std::move(returnflag)));
  table.AddColumn("l_linestatus",
                  Column::String(std::move(linestatus_dict),
                                 std::move(linestatus)));
  table.AddColumn("l_quantity", Column::U64(std::move(quantity)));
  table.AddColumn("l_extendedprice", Column::U64(std::move(extendedprice)));
  table.AddColumn("l_discount", Column::U64(std::move(discount)));
  table.AddColumn("l_tax", Column::U64(std::move(tax)));
  table.AddColumn("l_shipdate", Column::U64(std::move(shipdate)));
  table.AddColumn("disc_price", Column::U64(std::move(disc_price)));
  return table;
}

}  // namespace memagg
