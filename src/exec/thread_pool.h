// Minimal thread pool used by the task scheduler (exec/task_scheduler.h) —
// the only place in memagg that constructs OS threads. Tasks may submit
// further tasks; Wait() blocks until the whole task graph has drained. Tasks
// must not block on other tasks.
//
// All queue state is guarded by one annotated Mutex (util/mutex.h), so
// clang -Wthread-safety proves every access happens under the lock.

#ifndef MEMAGG_EXEC_THREAD_POOL_H_
#define MEMAGG_EXEC_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/lock_rank.h"
#include "util/macros.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace memagg {

/// Hardware thread count, clamped to >= 1 (hardware_concurrency() may
/// return 0 when unknown). The default pool size everywhere.
inline int Parallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Fixed-size worker pool with a shared FIFO queue.
class ThreadPool {
 public:
  /// Defaults to one worker per hardware thread.
  ThreadPool() : ThreadPool(Parallelism()) {}

  explicit ThreadPool(int num_threads) {
    MEMAGG_CHECK(num_threads >= 1);
    workers_.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      MutexLock lock(mutex_);
      shutting_down_ = true;
    }
    work_available_.NotifyAll();
    for (auto& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Safe to call from within a task.
  void Submit(std::function<void()> task) EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      ++pending_;
      queue_.push_back(std::move(task));
    }
    work_available_.NotifyOne();
  }

  /// Blocks until every submitted task (including transitively submitted
  /// ones) has finished.
  ///
  /// Unlike TaskGroup::Wait this wait is NOT cooperative — the caller parks
  /// on a condvar instead of draining the queue. Calling it from inside a
  /// pool task therefore self-deadlocks (the parked worker is one of the
  /// threads `pending_` is waiting on), and holding any lock across it
  /// deadlocks any task that wants that lock. Both are checked: the former
  /// always, the latter under MEMAGG_LOCK_RANK.
  void Wait() EXCLUDES(mutex_) {
    MEMAGG_CHECK(!tls_is_pool_worker &&
                 "ThreadPool::Wait called from a pool task; use a "
                 "cooperative TaskGroup::Wait instead");
    lockrank::AssertNoneHeld("ThreadPool::Wait entered");
    MutexLock lock(mutex_);
    while (pending_ != 0) all_done_.Wait(mutex_);
  }

  /// Runs fn(i) for i in [0, count) across the pool and waits.
  void ParallelFor(int64_t count, const std::function<void(int64_t)>& fn) {
    for (int64_t i = 0; i < count; ++i) {
      Submit([&fn, i] { fn(i); });
    }
    Wait();
  }

 private:
  void WorkerLoop() EXCLUDES(mutex_) {
    tls_is_pool_worker = true;
    while (true) {
      std::function<void()> task;
      {
        MutexLock lock(mutex_);
        while (!shutting_down_ && queue_.empty()) work_available_.Wait(mutex_);
        if (queue_.empty()) return;  // Shutting down.
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      bool drained;
      {
        MutexLock lock(mutex_);
        drained = (--pending_ == 0);
      }
      // Notify after releasing the lock: waiters woken while the lock is
      // still held immediately block on it again (hurry-up-and-wait).
      if (drained) all_done_.NotifyAll();
    }
  }

  // True on threads owned by *any* ThreadPool. A per-pool flag would miss
  // nothing today (there is one global pool), and a cross-pool blocking wait
  // is just as much a bug under pool nesting.
  static inline thread_local bool tls_is_pool_worker = false;

  Mutex mutex_{LockRank::kThreadPoolQueue};
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  int64_t pending_ GUARDED_BY(mutex_) = 0;
  bool shutting_down_ GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace memagg

#endif  // MEMAGG_EXEC_THREAD_POOL_H_
