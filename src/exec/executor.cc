#include "exec/executor.h"

namespace memagg {

ExecutionContext HardwareExecution() {
  return ExecutionContext(Parallelism());
}

void WarmUpScheduler() { TaskScheduler::Global().pool(); }

}  // namespace memagg
