// Process-wide task scheduling substrate for all parallel operators.
//
// One lazily-initialized ThreadPool (sized to hardware parallelism) is shared
// by every query, operator, and parallel sort in the process. Operators never
// construct std::thread themselves: they submit work through a TaskGroup,
// which scopes completion tracking to one parallel operation so unrelated
// queries on the same pool never wait on each other.
//
// TaskGroup rules:
//   * Submit() may be called from anywhere, including from inside a task of
//     the same group (nested submits are how the task-pool quicksorts spawn
//     subranges).
//   * Wait() is cooperative: the calling thread drains the group's queue
//     itself while waiting, so a group always completes even when every pool
//     worker is busy with other groups (and on machines with one core).
//     Tasks must not block on other tasks.
//   * Group state is reference-counted; pool-side driver tickets that fire
//     after the group is destroyed are harmless no-ops.
//
// The scheduler exposes a stats hook (threads created, tasks run, groups
// opened) so benchmarks can assert that steady-state queries create zero
// threads.

#ifndef MEMAGG_EXEC_TASK_SCHEDULER_H_
#define MEMAGG_EXEC_TASK_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "exec/thread_pool.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace memagg {

/// Owner of the process-wide worker pool, plus scheduling counters.
class TaskScheduler {
 public:
  /// Monotonic counters; read deltas around a region of interest.
  struct Stats {
    uint64_t threads_created = 0;  ///< OS threads started by the scheduler.
    uint64_t tasks_run = 0;        ///< Tasks executed (on pool or helpers).
    uint64_t groups_opened = 0;    ///< TaskGroups constructed.
  };

  /// The process-wide scheduler. The pool itself is created on first use.
  static TaskScheduler& Global();

  /// The shared pool, constructing it (once) with Parallelism() threads.
  ThreadPool& pool() EXCLUDES(pool_mutex_);

  /// True once pool() has been called (for tests; never starts the pool).
  bool pool_started() const EXCLUDES(pool_mutex_);

  Stats stats() const;

 private:
  friend class TaskGroup;
  TaskScheduler() = default;

  mutable Mutex pool_mutex_{LockRank::kSchedulerPool};
  std::unique_ptr<ThreadPool> pool_ GUARDED_BY(pool_mutex_);
  std::atomic<uint64_t> threads_created_{0};
  std::atomic<uint64_t> tasks_run_{0};
  std::atomic<uint64_t> groups_opened_{0};
};

/// A set of tasks tracked as one unit on the global pool.
class TaskGroup {
 public:
  /// `max_helpers` bounds how many pool workers may drive this group
  /// concurrently (the Wait()ing caller always participates on top).
  explicit TaskGroup(int max_helpers);
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues a task. Safe to call from inside a task of this group.
  void Submit(std::function<void()> task);

  /// Runs queued tasks on the calling thread until the group is fully
  /// drained (queue empty and no task in flight), then returns.
  ///
  /// Must be called with no locks held (enforced under MEMAGG_LOCK_RANK):
  /// Wait drains arbitrary tasks of this group on the calling thread, and a
  /// drained task that wants a lock the waiter holds deadlocks the query.
  void Wait();

  /// Shared between the group handle, its pool driver tickets, and the
  /// Wait()ing caller; defined in task_scheduler.cc.
  struct State;

 private:
  std::shared_ptr<State> state_;
};

}  // namespace memagg

#endif  // MEMAGG_EXEC_TASK_SCHEDULER_H_
