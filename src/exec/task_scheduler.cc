#include "exec/task_scheduler.h"

#include <utility>

#include "util/lock_rank.h"
#include "util/macros.h"
#include "util/mutex.h"

namespace memagg {

TaskScheduler& TaskScheduler::Global() {
  static TaskScheduler* scheduler = new TaskScheduler();
  return *scheduler;
}

ThreadPool& TaskScheduler::pool() {
  MutexLock lock(pool_mutex_);
  if (!pool_) {
    pool_ = std::make_unique<ThreadPool>(Parallelism());
    threads_created_.fetch_add(static_cast<uint64_t>(pool_->num_threads()),
                               std::memory_order_relaxed);
  }
  return *pool_;
}

bool TaskScheduler::pool_started() const {
  MutexLock lock(pool_mutex_);
  return pool_ != nullptr;
}

TaskScheduler::Stats TaskScheduler::stats() const {
  Stats stats;
  stats.threads_created = threads_created_.load(std::memory_order_relaxed);
  stats.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  stats.groups_opened = groups_opened_.load(std::memory_order_relaxed);
  return stats;
}

struct TaskGroup::State {
  Mutex mutex{LockRank::kTaskGroup};
  CondVar changed;
  std::deque<std::function<void()>> queue GUARDED_BY(mutex);
  int in_flight GUARDED_BY(mutex) = 0;  // Tasks currently executing.
  int drivers GUARDED_BY(mutex) = 0;    // Pool driver tickets outstanding.
  int max_helpers GUARDED_BY(mutex) = 0;
  // Scheduler counter; the pointer is set once at group construction.
  std::atomic<uint64_t>* tasks_run GUARDED_BY(mutex) = nullptr;

  // Pops and runs queued tasks until the queue is empty. Entered and exited
  // with `mutex` held; drops it around each task body. Returns with the
  // queue empty *at that instant*; other tasks may still be in flight and
  // may refill the queue.
  void DrainLocked() REQUIRES(mutex) {
    while (!queue.empty()) {
      std::function<void()> task = std::move(queue.front());
      queue.pop_front();
      ++in_flight;
      std::atomic<uint64_t>* counter = tasks_run;
      mutex.Unlock();
      task();
      counter->fetch_add(1, std::memory_order_relaxed);
      mutex.Lock();
      --in_flight;
      if (in_flight == 0 && queue.empty()) {
        // Completion edge: wake the Wait()er (and any idle drivers so they
        // can retire).
        changed.NotifyAll();
      }
    }
  }
};

namespace {

/// Body of a pool driver ticket: drain the group's queue, then retire.
void DriveGroup(const std::shared_ptr<TaskGroup::State>& state) {
  MutexLock lock(state->mutex);
  state->DrainLocked();
  --state->drivers;
}

}  // namespace

TaskGroup::TaskGroup(int max_helpers) : state_(std::make_shared<State>()) {
  MEMAGG_CHECK(max_helpers >= 0);
  TaskScheduler& scheduler = TaskScheduler::Global();
  {
    MutexLock lock(state_->mutex);
    state_->max_helpers = max_helpers;
    state_->tasks_run = &scheduler.tasks_run_;
  }
  scheduler.groups_opened_.fetch_add(1, std::memory_order_relaxed);
}

TaskGroup::~TaskGroup() { Wait(); }

void TaskGroup::Submit(std::function<void()> task) {
  bool need_driver = false;
  {
    MutexLock lock(state_->mutex);
    state_->queue.push_back(std::move(task));
    if (state_->drivers < state_->max_helpers) {
      ++state_->drivers;
      need_driver = true;
    }
  }
  // Wake a blocked Wait()er so it can help with the new task.
  state_->changed.NotifyOne();
  if (need_driver) {
    // The ticket holds only a reference to the shared state: if it fires
    // after this group drained (or died), it finds an empty queue and
    // retires immediately.
    std::shared_ptr<State> state = state_;
    TaskScheduler::Global().pool().Submit([state] { DriveGroup(state); });
  }
}

void TaskGroup::Wait() {
  // Wait drains tasks of this group on the calling thread; holding any lock
  // here deadlocks as soon as a drained task wants it.
  lockrank::AssertNoneHeld("TaskGroup::Wait entered");
  MutexLock lock(state_->mutex);
  while (true) {
    state_->DrainLocked();
    if (state_->in_flight == 0 && state_->queue.empty()) return;
    while (state_->queue.empty() && state_->in_flight != 0) {
      state_->changed.Wait(state_->mutex);
    }
  }
}

}  // namespace memagg
