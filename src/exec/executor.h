// Morsel-driven parallel execution API — the one way memagg operators run
// work on multiple threads.
//
// An ExecutionContext carries the caller's thread budget (and an optional
// morsel-grain override) from the engine factories down into operators and
// sorts. An Executor turns that context into parallel loops over the shared
// process-wide pool (exec/task_scheduler.h):
//
//   Executor exec(ctx);
//   exec.ParallelFor(n, [&](const Morsel& m) {
//     for (size_t i = m.begin; i < m.end; ++i) Consume(i);   // m.worker is a
//   });                                                      // stable slot id
//
// Guarantees:
//   * Every row in [0, n) is covered by exactly one Morsel invocation.
//   * Morsel::worker ids are unique per concurrently-live worker and lie in
//     [0, num_workers()), so per-worker state slots (WorkerLocal) need no
//     synchronization.
//   * num_threads == 1 (or a single-morsel input) runs entirely on the
//     calling thread: no pool, no tasks, no atomics.
//   * The calling thread always participates, so nested ParallelFor calls
//     and one-core machines cannot deadlock.
//
// The morsel grid is deterministic (see exec/morsel.h): operators needing
// per-morsel side arrays size them with NumMorsels()/MorselRows() and index
// by Morsel::index.

#ifndef MEMAGG_EXEC_EXECUTOR_H_
#define MEMAGG_EXEC_EXECUTOR_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "exec/morsel.h"
#include "exec/task_scheduler.h"
#include "obs/query_stats.h"
#include "util/macros.h"

namespace memagg {

class WorkerArenas;  // mem/worker_arenas.h

/// How a query (or one operator) is allowed to execute. Implicitly
/// constructible from a thread count so existing `num_threads` call sites
/// read naturally.
struct ExecutionContext {
  int num_threads = 1;     ///< Max workers per parallel operation (>= 1).
  size_t morsel_rows = 0;  ///< Grain override; 0 = ChooseMorselRows policy.
  /// Optional observability sink: when set, every parallel loop records its
  /// morsel/worker accounting into the per-worker shards (obs/query_stats.h).
  /// Not owned; must outlive the operators running under this context.
  StatsRegistry* stats = nullptr;
  /// Optional per-worker arena pool (mem/worker_arenas.h): operators that
  /// build shared structures in parallel allocate nodes from the claiming
  /// worker's arena instead of the global heap. Not owned; must outlive both
  /// the operators running under this context and any structure whose nodes
  /// were allocated from it. The engine injects a query-local pool when this
  /// is null.
  WorkerArenas* arenas = nullptr;

  ExecutionContext() = default;
  ExecutionContext(int threads) : num_threads(threads) {}  // NOLINT(runtime/explicit)
};

/// Fixed-size per-worker slots, one per possible worker id, padded to a
/// cache line so workers never false-share.
template <typename T>
class WorkerLocal {
 public:
  explicit WorkerLocal(int num_workers)
      : slots_(static_cast<size_t>(num_workers)) {}

  int size() const { return static_cast<int>(slots_.size()); }
  T& operator[](int worker) { return slots_[static_cast<size_t>(worker)].value; }
  const T& operator[](int worker) const {
    return slots_[static_cast<size_t>(worker)].value;
  }

  /// Serial visit of every slot (call after the parallel phase).
  template <typename Fn>
  void ForEach(Fn fn) {
    for (auto& slot : slots_) fn(slot.value);
  }

 private:
  struct alignas(64) Padded {
    T value{};
  };
  std::vector<Padded> slots_;
};

/// Stateless façade running parallel loops for one ExecutionContext.
class Executor {
 public:
  explicit Executor(const ExecutionContext& ctx) : ctx_(ctx) {
    MEMAGG_CHECK(ctx_.num_threads >= 1);
  }

  const ExecutionContext& context() const { return ctx_; }

  /// Upper bound on distinct Morsel::worker ids any loop of this executor
  /// can produce; sizes WorkerLocal slots.
  int num_workers() const { return ctx_.num_threads; }

  /// Grain the default policy picks for an n-row loop (honors the context's
  /// morsel_rows override).
  size_t MorselRows(size_t n) const {
    return ctx_.morsel_rows != 0 ? ctx_.morsel_rows
                                 : ChooseMorselRows(n, ctx_.num_threads);
  }

  /// Morsel count of the grid ParallelFor(n) iterates (same policy).
  size_t NumMorsels(size_t n) const { return NumMorselsFor(n, MorselRows(n)); }

  /// Runs fn(const Morsel&) over [0, n), splitting into morsels claimed
  /// dynamically by up to num_workers() workers. `grain` overrides the
  /// default morsel size (pass 1 for item-level loops over partitions,
  /// buckets, merge pairs, ...). Blocks until every morsel completed.
  template <typename Fn>
  void ParallelFor(size_t n, Fn&& fn, size_t grain = 0) {
    if (n == 0) return;
    if (grain == 0) grain = MorselRows(n);
    ParallelForMorsels(n, 0, NumMorselsFor(n, grain), std::forward<Fn>(fn),
                       grain);
  }

  /// Runs fn over the morsel-index sub-range [first_morsel, last_morsel) of
  /// the (n, grain) grid — morsel indices and row spans are those of the full
  /// grid. This is the adaptive operator's re-dispatch primitive: after a
  /// strategy switch at a chunk barrier, the remaining morsels are dispatched
  /// to the new strategy without renumbering the grid. `grain` must be the
  /// grain the grid was laid out with (non-zero).
  template <typename Fn>
  void ParallelForMorsels(size_t n, size_t first_morsel, size_t last_morsel,
                          Fn&& fn, size_t grain) {
    MEMAGG_CHECK(grain != 0);
    last_morsel = std::min(last_morsel, NumMorselsFor(n, grain));
    if (first_morsel >= last_morsel) return;
    const size_t num_morsels = last_morsel - first_morsel;
    const int workers = static_cast<int>(std::min<size_t>(
        static_cast<size_t>(ctx_.num_threads), num_morsels));
    MorselCursor cursor(n, grain, first_morsel, last_morsel);
    if (workers <= 1) {
      // Serial fallthrough: the caller does everything, touching no pool.
      Morsel morsel;
      uint64_t claimed = 0;
      while (cursor.TryClaim(0, &morsel)) {
        fn(morsel);
        ++claimed;
      }
      RecordWorkerClaims(0, claimed);
      return;
    }
    std::atomic<int> next_worker{0};
    auto run_worker = [this, &cursor, &next_worker, &fn] {
      const int worker = next_worker.fetch_add(1, std::memory_order_relaxed);
      Morsel morsel;
      uint64_t claimed = 0;
      while (cursor.TryClaim(worker, &morsel)) {
        fn(morsel);
        ++claimed;
      }
      RecordWorkerClaims(worker, claimed);
    };
    TaskGroup group(workers - 1);
    for (int t = 0; t < workers - 1; ++t) group.Submit(run_worker);
    run_worker();   // The caller is always one of the workers.
    group.Wait();   // Helps drain, then blocks for stragglers.
  }

  /// Parallel map-reduce: each worker folds its morsels into a private
  /// accumulator seeded with `identity`; accumulators are then combined
  /// serially (in worker-id order) into the result.
  ///   map(T& acc, const Morsel& m)   — fold one morsel into acc
  ///   combine(T& into, T& from)      — merge a worker accumulator
  template <typename T, typename MapFn, typename CombineFn>
  T ParallelReduce(size_t n, T identity, MapFn map, CombineFn combine,
                   size_t grain = 0) {
    WorkerLocal<T> accumulators(num_workers());
    accumulators.ForEach([&identity](T& acc) { acc = identity; });
    ParallelFor(
        n, [&](const Morsel& m) { map(accumulators[m.worker], m); }, grain);
    T result = std::move(accumulators[0]);
    for (int w = 1; w < accumulators.size(); ++w) {
      combine(result, accumulators[w]);
    }
    return result;
  }

 private:
  /// Flushes one worker's morsel count into its registry shard. Runs once
  /// per worker per loop (not per morsel); compiled out entirely under
  /// MEMAGG_DISABLE_STATS.
  void RecordWorkerClaims(int worker, uint64_t claimed) {
    if (!StatsConfig::kEnabled) return;
    if (ctx_.stats == nullptr || claimed == 0) return;
    QueryStats& shard = ctx_.stats->WorkerShard(worker);
    shard.Add(StatCounter::kMorselsClaimed, claimed);
    shard.MaxOf(StatCounter::kWorkersUsed, static_cast<uint64_t>(worker) + 1);
  }

  ExecutionContext ctx_;
};

/// Context using every hardware thread (ThreadPool::Parallelism()).
ExecutionContext HardwareExecution();

/// Starts the process-wide pool if it is not running yet, so later queries
/// create zero threads. Benchmarks call this before the measured region.
void WarmUpScheduler();

}  // namespace memagg

#endif  // MEMAGG_EXEC_EXECUTOR_H_
