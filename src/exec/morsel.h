// Morsel-driven work division (the execution layer's unit of scheduling).
//
// An input range [0, n) is split into fixed-size "morsels" of consecutive
// rows. Workers claim morsels through an atomic cursor instead of receiving
// one static chunk each, so skewed per-row costs (Zipf keys, holistic
// aggregates with fat groups) balance dynamically: a worker that draws an
// expensive morsel simply claims fewer of them. Morsel sizes are chosen so a
// morsel's working set stays cache-friendly while the claim overhead stays
// negligible (Leis et al., "Morsel-Driven Parallelism", SIGMOD'14).
//
// The morsel grid is a pure function of (n, grain): morsel i always covers
// [i * grain, min(n, (i+1) * grain)). Operators that need per-morsel side
// arrays (radix histograms, scatter offsets) can therefore size and index
// them deterministically, independent of which worker runs which morsel.

#ifndef MEMAGG_EXEC_MORSEL_H_
#define MEMAGG_EXEC_MORSEL_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace memagg {

/// Smallest morsel the default policy hands out; bounds claim overhead.
inline constexpr size_t kMinMorselRows = size_t{1} << 14;  // 16K rows

/// Largest morsel the default policy hands out; bounds load imbalance.
inline constexpr size_t kMaxMorselRows = size_t{1} << 16;  // 64K rows

/// One claimed unit of work.
struct Morsel {
  size_t index;  ///< Position in the morsel grid (0-based, deterministic).
  size_t begin;  ///< First row (inclusive).
  size_t end;    ///< Last row (exclusive).
  int worker;    ///< Slot id of the claiming worker, in [0, num_workers).
};

/// Default grain: aim for several morsels per worker so the cursor can
/// balance skew, clamped to [kMinMorselRows, kMaxMorselRows].
inline size_t ChooseMorselRows(size_t n, int num_workers) {
  const size_t target = n / (static_cast<size_t>(num_workers) * 8 + 1);
  return std::clamp(target, kMinMorselRows, kMaxMorselRows);
}

/// Number of morsels in the grid for (n, grain).
inline size_t NumMorselsFor(size_t n, size_t grain) {
  return grain == 0 ? 0 : (n + grain - 1) / grain;
}

/// Atomic claim cursor over a morsel grid. Shared by all workers of one
/// parallel operation; each TryClaim hands out the next unclaimed morsel.
class MorselCursor {
 public:
  MorselCursor(size_t n, size_t grain)
      : MorselCursor(n, grain, 0, NumMorselsFor(n, grain)) {}

  /// Cursor over the sub-range [first_morsel, last_morsel) of the (n, grain)
  /// grid. Morsel indices and row spans are those of the full grid, so side
  /// arrays indexed by Morsel::index keep working — this is how the adaptive
  /// operator re-dispatches the remaining morsels after a strategy switch.
  MorselCursor(size_t n, size_t grain, size_t first_morsel, size_t last_morsel)
      : n_(n),
        grain_(grain),
        num_morsels_(std::min(last_morsel, NumMorselsFor(n, grain))),
        next_(first_morsel) {}

  size_t num_morsels() const { return num_morsels_; }
  size_t grain() const { return grain_; }

  /// Claims the next morsel for `worker`. Returns false once the grid is
  /// exhausted.
  bool TryClaim(int worker, Morsel* out) {
    const size_t index = next_.fetch_add(1, std::memory_order_relaxed);
    if (index >= num_morsels_) return false;
    out->index = index;
    out->begin = index * grain_;
    out->end = std::min(n_, out->begin + grain_);
    out->worker = worker;
    return true;
  }

 private:
  size_t n_;
  size_t grain_;
  size_t num_morsels_;
  std::atomic<size_t> next_{0};
};

}  // namespace memagg

#endif  // MEMAGG_EXEC_MORSEL_H_
