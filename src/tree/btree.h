// Btree (paper Section 3.3.1): cache-optimized in-memory B+tree modelled on
// the STX B+tree. Inner and leaf nodes are sized to a few cache lines of
// keys; leaves are linked so range scans cost one O(log n) descent plus a
// linear leaf walk — the property behind Btree's Figure 8 range-search win.
//
// Insert-only, not thread-safe.

#ifndef MEMAGG_TREE_BTREE_H_
#define MEMAGG_TREE_BTREE_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "mem/allocator.h"
#include "util/encoded_key.h"
#include "util/macros.h"
#include "util/tracer.h"

namespace memagg {

/// B+tree from uint64_t keys to Value. `Tracer` reports every node visited
/// (see util/tracer.h). `Alloc` serves the two node sizes (Leaf/Inner); the
/// default arena allocator recycles split-away nodes through its size-class
/// freelists and releases everything wholesale at destruction.
template <typename Value, MemoryTracer Tracer = NullTracer,
          AllocatorPolicy Alloc = ArenaAllocator>
class BTree {
 public:
  using mapped_type = Value;

  /// Slots per node (STX sizes nodes to ~256 bytes of keys).
  static constexpr int kLeafSlots = 16;
  static constexpr int kInnerSlots = 16;

  BTree() = default;

  ~BTree() {
    // Wholesale-release fast path: the arena reclaims all nodes at once.
    if constexpr (!(Alloc::kWholesaleRelease &&
                    std::is_trivially_destructible_v<Value>)) {
      DestroyNode(root_);
    }
  }

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Returns the value slot for `key`, default-constructing it on first use.
  Value& GetOrInsert(EncodedKey key) {
    if (root_ == nullptr) {
      Leaf* leaf = NewLeaf();
      root_ = leaf;
      first_leaf_ = leaf;
    }
    SplitResult split;
    Value* value = InsertImpl(root_, key, &split);
    if (split.new_node != nullptr) {
      Inner* new_root = NewInner();
      new_root->count = 1;
      new_root->keys[0] = split.separator;
      new_root->children[0] = root_;
      new_root->children[1] = split.new_node;
      root_ = new_root;
    }
    return *value;
  }

  /// Returns the value for `key` or nullptr if absent.
  const Value* Find(EncodedKey key) const {
    const Node* node = root_;
    if (node == nullptr) return nullptr;
    while (!node->is_leaf) {
      const Inner* inner = static_cast<const Inner*>(node);
      Tracer::OnAccess(inner, sizeof(Inner));
      node = inner->children[UpperBound(inner->keys, inner->count, key)];
    }
    const Leaf* leaf = static_cast<const Leaf*>(node);
    Tracer::OnAccess(leaf, sizeof(Leaf));
    const int pos = LowerBound(leaf->keys, leaf->count, key);
    if (pos < leaf->count && leaf->keys[pos] == key) return &leaf->values[pos];
    return nullptr;
  }

  Value* Find(EncodedKey key) {
    return const_cast<Value*>(static_cast<const BTree*>(this)->Find(key));
  }

  size_t size() const { return size_; }

  /// Invokes fn(key, value) in ascending key order, walking the leaf chain.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const Leaf* leaf = first_leaf_; leaf != nullptr; leaf = leaf->next) {
      Tracer::OnAccess(leaf, sizeof(Leaf));
      for (int i = 0; i < leaf->count; ++i) {
        fn(leaf->keys[i], leaf->values[i]);
      }
    }
  }

  /// Invokes fn(key, value) in ascending key order for keys in [lo, hi]:
  /// one descent to the lower bound, then a linked-leaf walk.
  template <typename Fn>
  void ForEachInRange(uint64_t lo, uint64_t hi, Fn fn) const {
    if (lo > hi || root_ == nullptr) return;
    const Node* node = root_;
    while (!node->is_leaf) {
      const Inner* inner = static_cast<const Inner*>(node);
      Tracer::OnAccess(inner, sizeof(Inner));
      node = inner->children[UpperBound(inner->keys, inner->count, lo)];
    }
    const Leaf* leaf = static_cast<const Leaf*>(node);
    int pos = LowerBound(leaf->keys, leaf->count, lo);
    while (leaf != nullptr) {
      Tracer::OnAccess(leaf, sizeof(Leaf));
      for (; pos < leaf->count; ++pos) {
        if (leaf->keys[pos] > hi) return;
        fn(leaf->keys[pos], leaf->values[pos]);
      }
      leaf = leaf->next;
      pos = 0;
    }
  }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const { return memory_bytes_; }

  /// Node-allocator counters (see mem/arena.h).
  AllocStats AllocatorStats() const { return alloc_.Stats(); }

  /// Shape diagnostics, computed on demand.
  struct TreeStats {
    size_t height = 0;  ///< Levels including the leaf level.
    size_t inner_nodes = 0;
    size_t leaves = 0;
    double leaf_fill = 0.0;  ///< Mean occupied fraction of leaf slots.
  };

  TreeStats ComputeTreeStats() const {
    TreeStats stats;
    for (const Node* node = root_; node != nullptr;) {
      ++stats.height;
      if (node->is_leaf) break;
      node = static_cast<const Inner*>(node)->children[0];
    }
    size_t leaf_entries = 0;
    for (const Leaf* leaf = first_leaf_; leaf != nullptr; leaf = leaf->next) {
      ++stats.leaves;
      leaf_entries += static_cast<size_t>(leaf->count);
    }
    stats.leaf_fill = stats.leaves == 0
                          ? 0.0
                          : static_cast<double>(leaf_entries) /
                                static_cast<double>(stats.leaves * kLeafSlots);
    stats.inner_nodes = CountInner(root_);
    return stats;
  }

 private:
  struct Node {
    explicit Node(bool leaf) : is_leaf(leaf) {}
    bool is_leaf;
    int count = 0;  // Keys in use.
  };

  struct Leaf : Node {
    Leaf() : Node(true) {}
    uint64_t keys[kLeafSlots];
    Value values[kLeafSlots];
    Leaf* next = nullptr;
  };

  struct Inner : Node {
    Inner() : Node(false) {}
    uint64_t keys[kInnerSlots];
    Node* children[kInnerSlots + 1] = {};
  };

  struct SplitResult {
    uint64_t separator = 0;
    Node* new_node = nullptr;
  };

  /// First index with keys[i] >= key.
  static int LowerBound(const uint64_t* keys, int count, EncodedKey key) {
    int lo = 0;
    int hi = count;
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      if (keys[mid] < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// First index with keys[i] > key.
  static int UpperBound(const uint64_t* keys, int count, EncodedKey key) {
    int lo = 0;
    int hi = count;
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      if (keys[mid] <= key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Recursive insert; fills `*split` if `node` split.
  Value* InsertImpl(Node* node, EncodedKey key, SplitResult* split) {
    split->new_node = nullptr;
    Tracer::OnAccess(node, node->is_leaf ? sizeof(Leaf) : sizeof(Inner));
    if (node->is_leaf) {
      Leaf* leaf = static_cast<Leaf*>(node);
      int pos = LowerBound(leaf->keys, leaf->count, key);
      if (pos < leaf->count && leaf->keys[pos] == key) {
        return &leaf->values[pos];
      }
      if (leaf->count == kLeafSlots) {
        // Split the leaf in half, keep the leaf chain intact.
        Leaf* right = NewLeaf();
        const int half = kLeafSlots / 2;
        for (int i = half; i < kLeafSlots; ++i) {
          right->keys[i - half] = leaf->keys[i];
          right->values[i - half] = std::move(leaf->values[i]);
        }
        right->count = kLeafSlots - half;
        leaf->count = half;
        right->next = leaf->next;
        leaf->next = right;
        split->separator = right->keys[0];
        split->new_node = right;
        if (key >= right->keys[0]) {
          leaf = right;
          pos -= half;
        }
      }
      for (int i = leaf->count; i > pos; --i) {
        leaf->keys[i] = leaf->keys[i - 1];
        leaf->values[i] = std::move(leaf->values[i - 1]);
      }
      leaf->keys[pos] = key;
      leaf->values[pos] = Value{};
      ++leaf->count;
      ++size_;
      return &leaf->values[pos];
    }

    Inner* inner = static_cast<Inner*>(node);
    const int child_pos = UpperBound(inner->keys, inner->count, key);
    SplitResult child_split;
    Value* value = InsertImpl(inner->children[child_pos], key, &child_split);
    if (child_split.new_node == nullptr) return value;

    // Insert the new separator/child into this inner node.
    uint64_t sep = child_split.separator;
    Node* new_child = child_split.new_node;
    int pos = child_pos;
    if (inner->count == kInnerSlots) {
      Inner* right = NewInner();
      const int half = kInnerSlots / 2;
      // Separator promoted to the parent.
      split->separator = inner->keys[half];
      for (int i = half + 1; i < kInnerSlots; ++i) {
        right->keys[i - half - 1] = inner->keys[i];
        right->children[i - half - 1] = inner->children[i];
      }
      right->children[kInnerSlots - half - 1] = inner->children[kInnerSlots];
      right->count = kInnerSlots - half - 1;
      inner->count = half;
      split->new_node = right;
      if (pos > half) {
        inner = right;
        pos -= half + 1;
      } else if (pos == half && sep >= split->separator) {
        inner = right;
        pos = 0;
      }
    }
    for (int i = inner->count; i > pos; --i) {
      inner->keys[i] = inner->keys[i - 1];
      inner->children[i + 1] = inner->children[i];
    }
    inner->keys[pos] = sep;
    inner->children[pos + 1] = new_child;
    ++inner->count;
    return value;
  }

  Leaf* NewLeaf() {
    memory_bytes_ += sizeof(Leaf);
    return alloc_.template New<Leaf>();
  }

  Inner* NewInner() {
    memory_bytes_ += sizeof(Inner);
    return alloc_.template New<Inner>();
  }

  static size_t CountInner(const Node* node) {
    if (node == nullptr || node->is_leaf) return 0;
    const Inner* inner = static_cast<const Inner*>(node);
    size_t count = 1;
    for (int i = 0; i <= inner->count; ++i) {
      count += CountInner(inner->children[i]);
    }
    return count;
  }

  void DestroyNode(Node* node) {
    if (node == nullptr) return;
    if (node->is_leaf) {
      alloc_.Delete(static_cast<Leaf*>(node));
      return;
    }
    Inner* inner = static_cast<Inner*>(node);
    for (int i = 0; i <= inner->count; ++i) DestroyNode(inner->children[i]);
    alloc_.Delete(inner);
  }

  Node* root_ = nullptr;
  Leaf* first_leaf_ = nullptr;
  size_t size_ = 0;
  size_t memory_bytes_ = 0;
  Alloc alloc_;
};

}  // namespace memagg

#endif  // MEMAGG_TREE_BTREE_H_
