// Judy (paper Section 3.3.4; Baskins): a 256-way radix tree tuned for memory
// frugality. This analogue reproduces Judy's signature techniques on 64-bit
// keys:
//   * branch compression — small branches are sorted linear arrays (up to 7
//     children, one cache line); dense branches are 256-bit bitmaps with a
//     packed, exact-fit child array;
//   * leaf compression — the final key byte is resolved in a bitmap leaf
//     (256-bit bitmap + packed value array) instead of another branch level;
//   * skipped decoding ("narrow pointers") — runs of single-child branches
//     are collapsed into a per-node skip prefix.
// All packed arrays are reallocated to exact size on insert, so the
// structure grows with the data and needs no pre-allocation.
//
// Insert-only, not thread-safe.

#ifndef MEMAGG_TREE_JUDY_H_
#define MEMAGG_TREE_JUDY_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "mem/allocator.h"
#include "util/encoded_key.h"
#include "util/macros.h"
#include "util/tracer.h"

namespace memagg {

/// Judy-style radix tree from uint64_t keys to Value. `Tracer` reports every
/// node and packed-array access (see util/tracer.h). `Alloc` serves both the
/// node structs and the exact-fit packed arrays, whose constant reallocation
/// makes Judy the most allocator-bound structure in the repo — the default
/// arena allocator recycles the retired arrays through size-class freelists.
template <typename Value, MemoryTracer Tracer = NullTracer,
          AllocatorPolicy Alloc = ArenaAllocator>
class JudyArray {
 public:
  using mapped_type = Value;

  JudyArray() = default;

  ~JudyArray() {
    // Wholesale-release fast path: the arena reclaims nodes and packed
    // arrays at once; only non-trivial packed values need destructor runs.
    if constexpr (!(Alloc::kWholesaleRelease &&
                    std::is_trivially_destructible_v<Value>)) {
      DestroyNode(root_);
    }
  }

  JudyArray(const JudyArray&) = delete;
  JudyArray& operator=(const JudyArray&) = delete;

  /// Returns the value slot for `key`, default-constructing it on first use.
  Value& GetOrInsert(EncodedKey key) {
    uint8_t bytes[8];
    EncodeKey(key, bytes);
    return InsertImpl(&root_, bytes, 0, key);
  }

  /// Returns the value for `key` or nullptr if absent.
  const Value* Find(EncodedKey key) const {
    uint8_t bytes[8];
    EncodeKey(key, bytes);
    const Node* node = root_;
    size_t depth = 0;
    while (node != nullptr) {
      Tracer::OnAccess(node, NodeBytes(node));
      for (int i = 0; i < node->skip_len; ++i) {
        if (node->skip[i] != bytes[depth + i]) return nullptr;
      }
      depth += node->skip_len;
      const uint8_t byte = bytes[depth];
      switch (node->type) {
        case NodeType::kBranchLinear: {
          const BranchLinear* n = static_cast<const BranchLinear*>(node);
          const Node* child = nullptr;
          for (int i = 0; i < n->count; ++i) {
            if (n->bytes[i] == byte) {
              child = n->children[i];
              break;
            }
          }
          if (child == nullptr) return nullptr;
          node = child;
          ++depth;
          break;
        }
        case NodeType::kBranchBitmap: {
          const BranchBitmap* n = static_cast<const BranchBitmap*>(node);
          if (!n->Test(byte)) return nullptr;
          Tracer::OnAccess(&n->children[n->Rank(byte)], sizeof(Node*));
          node = n->children[n->Rank(byte)];
          ++depth;
          break;
        }
        case NodeType::kLeafBitmap: {
          const LeafBitmap* n = static_cast<const LeafBitmap*>(node);
          if (!n->Test(byte)) return nullptr;
          Tracer::OnAccess(&n->values[n->Rank(byte)], sizeof(Value));
          return &n->values[n->Rank(byte)];
        }
      }
    }
    return nullptr;
  }

  Value* Find(EncodedKey key) {
    return const_cast<Value*>(static_cast<const JudyArray*>(this)->Find(key));
  }

  size_t size() const { return size_; }

  /// Invokes fn(key, value) in ascending key order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    ForEachImpl(root_, 0, 0, fn);
  }

  /// Invokes fn(key, value) in ascending key order for keys in [lo, hi].
  template <typename Fn>
  void ForEachInRange(uint64_t lo, uint64_t hi, Fn fn) const {
    if (lo > hi) return;
    RangeImpl(root_, 0, 0, lo, hi, fn);
  }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const { return memory_bytes_; }

  /// Node-allocator counters (see mem/arena.h).
  AllocStats AllocatorStats() const { return alloc_.Stats(); }

  /// Node-population diagnostics, computed on demand; shows how much of the
  /// structure uses linear vs bitmap compression and how many key bytes the
  /// narrow-pointer skips absorb.
  struct NodeStats {
    size_t linear_branches = 0;
    size_t bitmap_branches = 0;
    size_t bitmap_leaves = 0;
    size_t total_skip_bytes = 0;
  };

  NodeStats ComputeNodeStats() const {
    NodeStats stats;
    CollectNodeStats(root_, stats);
    return stats;
  }

 private:
  enum class NodeType : uint8_t { kBranchLinear, kBranchBitmap, kLeafBitmap };

  static constexpr int kLinearMax = 7;
  static constexpr int kMaxSkip = 6;

  struct Node {
    explicit Node(NodeType t) : type(t) {}
    NodeType type;
    uint8_t skip_len = 0;
    uint8_t skip[kMaxSkip] = {};
  };

  struct BranchLinear : Node {
    BranchLinear() : Node(NodeType::kBranchLinear) {}
    uint8_t count = 0;
    uint8_t bytes[kLinearMax] = {};
    Node* children[kLinearMax] = {};
  };

  struct Bitmap256 {
    uint64_t words[4] = {};

    bool Test(uint8_t b) const { return (words[b >> 6] >> (b & 63)) & 1; }

    void Set(uint8_t b) { words[b >> 6] |= 1ULL << (b & 63); }

    /// Number of set bits strictly below b.
    int Rank(uint8_t b) const {
      int rank = 0;
      for (int w = 0; w < (b >> 6); ++w) rank += std::popcount(words[w]);
      rank += std::popcount(words[b >> 6] & ((1ULL << (b & 63)) - 1));
      return rank;
    }

    int Count() const {
      return std::popcount(words[0]) + std::popcount(words[1]) +
             std::popcount(words[2]) + std::popcount(words[3]);
    }
  };

  struct BranchBitmap : Node {
    BranchBitmap() : Node(NodeType::kBranchBitmap) {}
    Bitmap256 bitmap;
    Node** children = nullptr;  // Packed, exact-fit.

    bool Test(uint8_t b) const { return bitmap.Test(b); }
    int Rank(uint8_t b) const { return bitmap.Rank(b); }
  };

  struct LeafBitmap : Node {
    LeafBitmap() : Node(NodeType::kLeafBitmap) {}
    Bitmap256 bitmap;
    Value* values = nullptr;  // Packed, exact-fit.

    bool Test(uint8_t b) const { return bitmap.Test(b); }
    int Rank(uint8_t b) const { return bitmap.Rank(b); }
  };

  static void EncodeKey(EncodedKey key, uint8_t out[8]) {
    for (int i = 0; i < 8; ++i) {
      out[i] = static_cast<uint8_t>(key >> (56 - 8 * i));
    }
  }

  /// Inserts along the path for `bytes`, creating nodes as needed. `depth`
  /// counts consumed key bytes.
  static size_t NodeBytes(const Node* node) {
    switch (node->type) {
      case NodeType::kBranchLinear:
        return sizeof(BranchLinear);
      case NodeType::kBranchBitmap:
        return sizeof(BranchBitmap);
      case NodeType::kLeafBitmap:
        return sizeof(LeafBitmap);
    }
    return sizeof(Node);
  }

  Value& InsertImpl(Node** slot, const uint8_t bytes[8], size_t depth,
                    EncodedKey key) {
    Node* node = *slot;
    if (node != nullptr) Tracer::OnAccess(node, NodeBytes(node));
    if (node == nullptr) {
      // Fresh path: collapse everything up to the final byte into the skip
      // prefix of a new bitmap leaf (narrow-pointer compression). The final
      // key byte indexes the leaf bitmap.
      size_t remaining = 7 - depth;  // Bytes before the final one.
      if (remaining <= kMaxSkip) {
        LeafBitmap* leaf = NewLeaf();
        leaf->skip_len = static_cast<uint8_t>(remaining);
        std::memcpy(leaf->skip, bytes + depth, remaining);
        *slot = leaf;
        return LeafInsert(leaf, bytes[7], key);
      }
      // Path longer than the skip field: chain one linear branch.
      BranchLinear* branch = NewBranchLinear();
      branch->skip_len = kMaxSkip;
      std::memcpy(branch->skip, bytes + depth, kMaxSkip);
      *slot = branch;
      depth += kMaxSkip;
      branch->count = 1;
      branch->bytes[0] = bytes[depth];
      branch->children[0] = nullptr;
      return InsertImpl(&branch->children[0], bytes, depth + 1, key);
    }

    // Check the skip prefix; on mismatch, split this node.
    for (int i = 0; i < node->skip_len; ++i) {
      if (node->skip[i] != bytes[depth + i]) {
        return SplitSkip(slot, bytes, depth, static_cast<size_t>(i), key);
      }
    }
    depth += node->skip_len;
    const uint8_t byte = bytes[depth];

    switch (node->type) {
      case NodeType::kBranchLinear: {
        BranchLinear* n = static_cast<BranchLinear*>(node);
        for (int i = 0; i < n->count; ++i) {
          if (n->bytes[i] == byte) {
            return InsertImpl(&n->children[i], bytes, depth + 1, key);
          }
        }
        if (n->count < kLinearMax) {
          int pos = 0;
          while (pos < n->count && n->bytes[pos] < byte) ++pos;
          for (int i = n->count; i > pos; --i) {
            n->bytes[i] = n->bytes[i - 1];
            n->children[i] = n->children[i - 1];
          }
          n->bytes[pos] = byte;
          n->children[pos] = nullptr;
          ++n->count;
          return InsertImpl(&n->children[pos], bytes, depth + 1, key);
        }
        // Grow the linear branch into a bitmap branch.
        BranchBitmap* grown = NewBranchBitmap();
        grown->skip_len = n->skip_len;
        std::memcpy(grown->skip, n->skip, n->skip_len);
        grown->children = AllocChildren(kLinearMax);
        for (int i = 0; i < kLinearMax; ++i) {
          grown->bitmap.Set(n->bytes[i]);
        }
        // Packed order must follow byte order; linear node is sorted.
        for (int i = 0; i < kLinearMax; ++i) {
          grown->children[i] = n->children[i];
        }
        FreeBranchLinear(n);
        *slot = grown;
        return InsertImpl(slot, bytes, depth - grown->skip_len, key);
      }
      case NodeType::kBranchBitmap: {
        BranchBitmap* n = static_cast<BranchBitmap*>(node);
        const int rank = n->Rank(byte);
        if (!n->Test(byte)) {
          const int count = n->bitmap.Count();
          Node** grown = AllocChildren(count + 1);
          std::memcpy(grown, n->children, sizeof(Node*) * rank);
          grown[rank] = nullptr;
          std::memcpy(grown + rank + 1, n->children + rank,
                      sizeof(Node*) * (count - rank));
          FreeChildren(n->children, count);
          n->children = grown;
          n->bitmap.Set(byte);
          Tracer::OnAccess(grown, sizeof(Node*) * (count + 1));
        }
        return InsertImpl(&n->children[rank], bytes, depth + 1, key);
      }
      case NodeType::kLeafBitmap: {
        LeafBitmap* n = static_cast<LeafBitmap*>(node);
        return LeafInsert(n, byte, key);
      }
    }
    MEMAGG_CHECK(false);
    return *static_cast<Value*>(nullptr);
  }

  /// Splits `*slot`'s skip prefix at `split_at` (where it diverges from the
  /// inserted key) by interposing a linear branch.
  Value& SplitSkip(Node** slot, const uint8_t bytes[8], size_t depth,
                   size_t split_at, EncodedKey key) {
    Node* node = *slot;
    BranchLinear* branch = NewBranchLinear();
    branch->skip_len = static_cast<uint8_t>(split_at);
    std::memcpy(branch->skip, node->skip, split_at);
    const uint8_t node_byte = node->skip[split_at];
    // The existing node keeps the tail of its skip prefix.
    const uint8_t tail_len =
        static_cast<uint8_t>(node->skip_len - split_at - 1);
    std::memmove(node->skip, node->skip + split_at + 1, tail_len);
    node->skip_len = tail_len;
    const uint8_t new_byte = bytes[depth + split_at];
    MEMAGG_DCHECK(node_byte != new_byte);
    const int node_first = node_byte < new_byte ? 0 : 1;
    branch->count = 2;
    branch->bytes[node_first] = node_byte;
    branch->children[node_first] = node;
    branch->bytes[1 - node_first] = new_byte;
    branch->children[1 - node_first] = nullptr;
    *slot = branch;
    return InsertImpl(&branch->children[1 - node_first], bytes,
                      depth + split_at + 1, key);
  }

  /// Inserts `byte` into a bitmap leaf, keeping the packed value array
  /// exact-fit and in byte order.
  Value& LeafInsert(LeafBitmap* leaf, uint8_t byte, uint64_t /*key*/) {
    const int rank = leaf->Rank(byte);
    if (leaf->Test(byte)) return leaf->values[rank];
    const int count = leaf->bitmap.Count();
    Value* grown = static_cast<Value*>(
        alloc_.AllocateBytes(sizeof(Value) * (count + 1), alignof(Value)));
    for (int i = 0; i < rank; ++i) {
      new (&grown[i]) Value(std::move(leaf->values[i]));
    }
    new (&grown[rank]) Value();
    for (int i = rank; i < count; ++i) {
      new (&grown[i + 1]) Value(std::move(leaf->values[i]));
    }
    for (int i = 0; i < count; ++i) leaf->values[i].~Value();
    if (leaf->values != nullptr) {
      alloc_.DeallocateBytes(leaf->values, sizeof(Value) * count);
    }
    leaf->values = grown;
    leaf->bitmap.Set(byte);
    ++size_;
    memory_bytes_ += sizeof(Value);
    Tracer::OnAccess(grown, sizeof(Value) * (count + 1));
    return leaf->values[rank];
  }

  template <typename Fn>
  void ForEachImpl(const Node* node, uint64_t acc, size_t depth, Fn& fn) const {
    RangeImpl(node, acc, depth, 0, ~0ULL, fn);
  }

  template <typename Fn>
  void RangeImpl(const Node* node, uint64_t acc, size_t depth, uint64_t lo,
                 uint64_t hi, Fn& fn) const {
    if (node == nullptr) return;
    Tracer::OnAccess(node, NodeBytes(node));
    for (int i = 0; i < node->skip_len; ++i) {
      acc |= static_cast<uint64_t>(node->skip[i]) << (56 - 8 * depth);
      ++depth;
    }
    if (!SubtreeOverlaps(acc, depth, lo, hi)) return;
    switch (node->type) {
      case NodeType::kBranchLinear: {
        const BranchLinear* n = static_cast<const BranchLinear*>(node);
        for (int i = 0; i < n->count; ++i) {
          const uint64_t child_acc =
              acc | (static_cast<uint64_t>(n->bytes[i]) << (56 - 8 * depth));
          if (SubtreeOverlaps(child_acc, depth + 1, lo, hi)) {
            RangeImpl(n->children[i], child_acc, depth + 1, lo, hi, fn);
          }
        }
        return;
      }
      case NodeType::kBranchBitmap: {
        const BranchBitmap* n = static_cast<const BranchBitmap*>(node);
        int rank = 0;
        for (int b = 0; b < 256; ++b) {
          if (!n->Test(static_cast<uint8_t>(b))) continue;
          const uint64_t child_acc =
              acc | (static_cast<uint64_t>(b) << (56 - 8 * depth));
          if (SubtreeOverlaps(child_acc, depth + 1, lo, hi)) {
            RangeImpl(n->children[rank], child_acc, depth + 1, lo, hi, fn);
          }
          ++rank;
        }
        return;
      }
      case NodeType::kLeafBitmap: {
        const LeafBitmap* n = static_cast<const LeafBitmap*>(node);
        int rank = 0;
        for (int b = 0; b < 256; ++b) {
          if (!n->Test(static_cast<uint8_t>(b))) continue;
          const uint64_t full_key = acc | static_cast<uint64_t>(b);
          if (full_key >= lo && full_key <= hi) {
            fn(full_key, n->values[rank]);
          }
          ++rank;
        }
        return;
      }
    }
  }

  static bool SubtreeOverlaps(uint64_t acc, size_t depth, uint64_t lo,
                              uint64_t hi) {
    if (depth == 0) return true;
    if (depth >= 8) return acc >= lo && acc <= hi;
    const uint64_t span = (1ULL << (8 * (8 - depth))) - 1;
    return (acc | span) >= lo && acc <= hi;
  }

  LeafBitmap* NewLeaf() {
    memory_bytes_ += sizeof(LeafBitmap);
    return alloc_.template New<LeafBitmap>();
  }

  BranchLinear* NewBranchLinear() {
    memory_bytes_ += sizeof(BranchLinear);
    return alloc_.template New<BranchLinear>();
  }

  BranchBitmap* NewBranchBitmap() {
    memory_bytes_ += sizeof(BranchBitmap);
    return alloc_.template New<BranchBitmap>();
  }

  void FreeBranchLinear(BranchLinear* n) {
    memory_bytes_ -= sizeof(BranchLinear);
    alloc_.Delete(n);
  }

  Node** AllocChildren(int count) {
    memory_bytes_ += sizeof(Node*) * static_cast<size_t>(count);
    return static_cast<Node**>(
        alloc_.AllocateBytes(sizeof(Node*) * count, alignof(Node*)));
  }

  void FreeChildren(Node** children, int count) {
    memory_bytes_ -= sizeof(Node*) * static_cast<size_t>(count);
    alloc_.DeallocateBytes(children, sizeof(Node*) * count);
  }

  static void CollectNodeStats(const Node* node, NodeStats& stats) {
    if (node == nullptr) return;
    stats.total_skip_bytes += node->skip_len;
    switch (node->type) {
      case NodeType::kBranchLinear: {
        ++stats.linear_branches;
        const BranchLinear* n = static_cast<const BranchLinear*>(node);
        for (int i = 0; i < n->count; ++i) {
          CollectNodeStats(n->children[i], stats);
        }
        return;
      }
      case NodeType::kBranchBitmap: {
        ++stats.bitmap_branches;
        const BranchBitmap* n = static_cast<const BranchBitmap*>(node);
        const int count = n->bitmap.Count();
        for (int i = 0; i < count; ++i) {
          CollectNodeStats(n->children[i], stats);
        }
        return;
      }
      case NodeType::kLeafBitmap:
        ++stats.bitmap_leaves;
        return;
    }
  }

  void DestroyNode(Node* node) {
    if (node == nullptr) return;
    switch (node->type) {
      case NodeType::kBranchLinear: {
        BranchLinear* n = static_cast<BranchLinear*>(node);
        for (int i = 0; i < n->count; ++i) DestroyNode(n->children[i]);
        alloc_.Delete(n);
        return;
      }
      case NodeType::kBranchBitmap: {
        BranchBitmap* n = static_cast<BranchBitmap*>(node);
        const int count = n->bitmap.Count();
        for (int i = 0; i < count; ++i) DestroyNode(n->children[i]);
        if (n->children != nullptr) {
          alloc_.DeallocateBytes(n->children, sizeof(Node*) * count);
        }
        alloc_.Delete(n);
        return;
      }
      case NodeType::kLeafBitmap: {
        LeafBitmap* n = static_cast<LeafBitmap*>(node);
        const int count = n->bitmap.Count();
        for (int i = 0; i < count; ++i) n->values[i].~Value();
        if (n->values != nullptr) {
          alloc_.DeallocateBytes(n->values, sizeof(Value) * count);
        }
        alloc_.Delete(n);
        return;
      }
    }
  }

  Node* root_ = nullptr;
  size_t size_ = 0;
  size_t memory_bytes_ = 0;
  Alloc alloc_;
};

}  // namespace memagg

#endif  // MEMAGG_TREE_JUDY_H_
