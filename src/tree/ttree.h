// Ttree (paper Section 3.3.2; Lehman & Carey, VLDB 1986): an AVL-balanced
// binary tree whose nodes each hold a sorted array of entries. Designed for
// 1980s main-memory systems; the paper's microbenchmark (Figure 3) shows it
// is no longer competitive on modern cache hierarchies, which this
// implementation lets you reproduce.
//
// Insert-only, not thread-safe.

#ifndef MEMAGG_TREE_TTREE_H_
#define MEMAGG_TREE_TTREE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "mem/allocator.h"
#include "util/encoded_key.h"
#include "util/macros.h"
#include "util/tracer.h"

namespace memagg {

/// T-tree from uint64_t keys to Value. `Tracer` reports every node visited
/// (see util/tracer.h). `AllocPolicy` selects the node allocator;
/// `void` resolves to PoolAllocator<Node> (the node type is private, so the
/// default is spelled through this indirection).
template <typename Value, MemoryTracer Tracer = NullTracer,
          typename AllocPolicy = void>
class TTree {
 public:
  using mapped_type = Value;

  /// Entries per node (Lehman & Carey found moderate node sizes best).
  static constexpr int kNodeCapacity = 32;

 private:
  struct Node {
    uint64_t keys[kNodeCapacity];
    Value values[kNodeCapacity];
    Node* left = nullptr;
    Node* right = nullptr;
    int count = 0;
    int height = 1;
  };

 public:
  using Alloc = std::conditional_t<std::is_void_v<AllocPolicy>,
                                   PoolAllocator<Node>, AllocPolicy>;
  static_assert(AllocatorPolicy<Alloc>,
                "AllocPolicy must model AllocatorPolicy (or be void for the "
                "default PoolAllocator<Node>)");

  TTree() = default;

  ~TTree() {
    // Wholesale-release fast path: the arena reclaims all nodes at once.
    if constexpr (!(Alloc::kWholesaleRelease &&
                    std::is_trivially_destructible_v<Value>)) {
      DestroyNode(root_);
    }
  }

  TTree(const TTree&) = delete;
  TTree& operator=(const TTree&) = delete;

  /// Returns the value slot for `key`, default-constructing it on first use.
  Value& GetOrInsert(EncodedKey key) {
    Value* result = nullptr;
    root_ = InsertRec(root_, key, &result);
    MEMAGG_DCHECK(result != nullptr);
    return *result;
  }

  /// Returns the value for `key` or nullptr if absent.
  const Value* Find(EncodedKey key) const {
    const Node* node = root_;
    while (node != nullptr) {
      Tracer::OnAccess(node, sizeof(Node));
      if (key < node->keys[0]) {
        node = node->left;
      } else if (key > node->keys[node->count - 1]) {
        node = node->right;
      } else {
        const int pos = LowerBound(node, key);
        if (pos < node->count && node->keys[pos] == key) {
          return &node->values[pos];
        }
        return nullptr;
      }
    }
    return nullptr;
  }

  Value* Find(EncodedKey key) {
    return const_cast<Value*>(static_cast<const TTree*>(this)->Find(key));
  }

  size_t size() const { return size_; }

  /// Invokes fn(key, value) in ascending key order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    ForEachRec(root_, fn);
  }

  /// Invokes fn(key, value) in ascending key order for keys in [lo, hi].
  template <typename Fn>
  void ForEachInRange(uint64_t lo, uint64_t hi, Fn fn) const {
    if (lo <= hi) RangeRec(root_, lo, hi, fn);
  }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const { return num_nodes_ * sizeof(Node); }

  /// Node-allocator counters (see mem/arena.h).
  AllocStats AllocatorStats() const { return alloc_.Stats(); }

  /// Shape diagnostics, computed on demand. AVL balance keeps
  /// height <= ~1.44 log2(num_nodes).
  struct TreeStats {
    size_t nodes = 0;
    size_t height = 0;
    double node_fill = 0.0;  ///< Mean occupied fraction of node arrays.
  };

  TreeStats ComputeTreeStats() const {
    TreeStats stats;
    stats.nodes = num_nodes_;
    stats.height = static_cast<size_t>(Height(root_));
    stats.node_fill =
        num_nodes_ == 0
            ? 0.0
            : static_cast<double>(size_) /
                  static_cast<double>(num_nodes_ * kNodeCapacity);
    return stats;
  }

 private:
  static int LowerBound(const Node* node, EncodedKey key) {
    return static_cast<int>(
        std::lower_bound(node->keys, node->keys + node->count, key) -
        node->keys);
  }

  static int Height(const Node* node) {
    return node == nullptr ? 0 : node->height;
  }

  static void UpdateHeight(Node* node) {
    node->height = 1 + std::max(Height(node->left), Height(node->right));
  }

  static Node* RotateRight(Node* node) {
    Node* pivot = node->left;
    node->left = pivot->right;
    pivot->right = node;
    UpdateHeight(node);
    UpdateHeight(pivot);
    return pivot;
  }

  static Node* RotateLeft(Node* node) {
    Node* pivot = node->right;
    node->right = pivot->left;
    pivot->left = node;
    UpdateHeight(node);
    UpdateHeight(pivot);
    return pivot;
  }

  static Node* Rebalance(Node* node) {
    UpdateHeight(node);
    const int balance = Height(node->left) - Height(node->right);
    if (balance > 1) {
      if (Height(node->left->left) < Height(node->left->right)) {
        node->left = RotateLeft(node->left);
      }
      return RotateRight(node);
    }
    if (balance < -1) {
      if (Height(node->right->right) < Height(node->right->left)) {
        node->right = RotateRight(node->right);
      }
      return RotateLeft(node);
    }
    return node;
  }

  Node* NewNode(EncodedKey key, Value** result) {
    Node* node = alloc_.template New<Node>();
    node->keys[0] = key;
    node->values[0] = Value{};
    node->count = 1;
    ++num_nodes_;
    ++size_;
    *result = &node->values[0];
    return node;
  }

  /// Inserts `key` into the entry array of `node` at sorted position `pos`.
  Value* InsertIntoNode(Node* node, int pos, EncodedKey key) {
    for (int i = node->count; i > pos; --i) {
      node->keys[i] = node->keys[i - 1];
      node->values[i] = std::move(node->values[i - 1]);
    }
    node->keys[pos] = key;
    node->values[pos] = Value{};
    ++node->count;
    ++size_;
    return &node->values[pos];
  }

  Node* InsertRec(Node* node, EncodedKey key, Value** result) {
    if (node == nullptr) return NewNode(key, result);
    Tracer::OnAccess(node, sizeof(Node));
    if (key < node->keys[0]) {
      // Below this node's range: absorb if this is the boundary leaf with
      // room, otherwise descend left.
      if (node->left == nullptr && node->count < kNodeCapacity) {
        *result = InsertIntoNode(node, 0, key);
        return node;
      }
      node->left = InsertRec(node->left, key, result);
      return Rebalance(node);
    }
    if (key > node->keys[node->count - 1]) {
      if (node->right == nullptr && node->count < kNodeCapacity) {
        *result = InsertIntoNode(node, node->count, key);
        return node;
      }
      node->right = InsertRec(node->right, key, result);
      return Rebalance(node);
    }
    // Bounding node.
    const int pos = LowerBound(node, key);
    if (pos < node->count && node->keys[pos] == key) {
      *result = &node->values[pos];
      return node;
    }
    if (node->count < kNodeCapacity) {
      *result = InsertIntoNode(node, pos, key);
      return node;
    }
    // Node full: displace the current maximum into the right subtree to make
    // room (the classic T-tree overflow rule).
    uint64_t displaced_key = node->keys[node->count - 1];
    Value displaced_value = std::move(node->values[node->count - 1]);
    --node->count;
    --size_;  // Re-counted when the displaced entry is reinserted.
    *result = InsertIntoNode(node, pos, key);
    Value* displaced_slot = nullptr;
    node->right = InsertRec(node->right, displaced_key, &displaced_slot);
    *displaced_slot = std::move(displaced_value);
    return Rebalance(node);
  }

  template <typename Fn>
  static void ForEachRec(const Node* node, Fn& fn) {
    if (node == nullptr) return;
    Tracer::OnAccess(node, sizeof(Node));
    ForEachRec(node->left, fn);
    for (int i = 0; i < node->count; ++i) fn(node->keys[i], node->values[i]);
    ForEachRec(node->right, fn);
  }

  template <typename Fn>
  static void RangeRec(const Node* node, uint64_t lo, uint64_t hi, Fn& fn) {
    if (node == nullptr) return;
    Tracer::OnAccess(node, sizeof(Node));
    if (lo < node->keys[0]) RangeRec(node->left, lo, hi, fn);
    for (int i = 0; i < node->count; ++i) {
      if (node->keys[i] > hi) return;
      if (node->keys[i] >= lo) fn(node->keys[i], node->values[i]);
    }
    if (hi > node->keys[node->count - 1]) RangeRec(node->right, lo, hi, fn);
  }

  void DestroyNode(Node* node) {
    if (node == nullptr) return;
    DestroyNode(node->left);
    DestroyNode(node->right);
    alloc_.Delete(node);
  }

  Node* root_ = nullptr;
  size_t size_ = 0;
  size_t num_nodes_ = 0;
  Alloc alloc_;
};

}  // namespace memagg

#endif  // MEMAGG_TREE_TTREE_H_
