// ART — Adaptive Radix Tree (paper Section 3.3.3; Leis et al., ICDE 2013).
//
// A 256-way radix tree over the big-endian bytes of a 64-bit key, so an
// in-order traversal yields keys in ascending numeric order. Inner nodes
// adapt among five sizes (Node4, Node16, Node32, Node48, Node256) as their
// fan-out grows, and pessimistic path compression stores up to 8 skipped
// prefix bytes per inner node. Height therefore depends on key length (<= 8
// levels), not on the number of keys, and no rebalancing is ever required —
// the radix-tree properties the paper contrasts with comparison trees.
//
// Node16 and Node32 keep their key arrays sorted and search them with one
// 16/32-wide SIMD byte compare (util/simd.h); Node32 exists because a
// single 32-wide compare makes fan-outs 17..32 cheaper than the Node48
// indirection that used to absorb them (cf. Leis et al.'s SSE Node16
// search — the 256-bit lane extends the same trick one size up).
//
// Insert-only (aggregation workloads never erase), not thread-safe.

#ifndef MEMAGG_TREE_ART_H_
#define MEMAGG_TREE_ART_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>

#include "mem/allocator.h"
#include "util/encoded_key.h"
#include "util/macros.h"
#include "util/simd.h"
#include "util/tracer.h"

namespace memagg {

/// Adaptive radix tree from uint64_t keys to Value. `Tracer` reports every
/// node visited (see util/tracer.h). `Alloc` serves the six node sizes;
/// the default arena allocator recycles outgrown inner nodes (Node4 →
/// Node16 → Node32 → Node48 → Node256 leaves the smaller shell on a
/// freelist for the next split) and releases everything wholesale at
/// destruction. `Ops` selects the node-scan kernel lane (default: runtime
/// dispatch, pin simd::ScalarOps etc. for ablation).
template <typename Value, MemoryTracer Tracer = NullTracer,
          AllocatorPolicy Alloc = ArenaAllocator,
          simd::SimdOps Ops = simd::DispatchOps>
class ArtTree {
 public:
  using mapped_type = Value;

  ArtTree() = default;

  ~ArtTree() {
    // Wholesale-release fast path: the arena reclaims all nodes at once.
    if constexpr (!(Alloc::kWholesaleRelease &&
                    std::is_trivially_destructible_v<Value>)) {
      DestroySubtree(root_);
    }
  }

  ArtTree(const ArtTree&) = delete;
  ArtTree& operator=(const ArtTree&) = delete;

  /// Returns the value slot for `key`, default-constructing it on first use.
  Value& GetOrInsert(EncodedKey key) {
    uint8_t bytes[8];
    EncodeKey(key, bytes);
    return InsertImpl(&root_, bytes, 0, key);
  }

  /// Returns the value for `key` or nullptr if absent.
  const Value* Find(EncodedKey key) const {
    uint8_t bytes[8];
    EncodeKey(key, bytes);
    const Node* node = root_;
    size_t depth = 0;
    while (node != nullptr) {
      Tracer::OnAccess(node, NodeBytes(node));
      if (node->type == NodeType::kLeaf) {
        const Leaf* leaf = static_cast<const Leaf*>(node);
        return leaf->key == key ? &leaf->value : nullptr;
      }
      const Inner* inner = static_cast<const Inner*>(node);
      if (inner->prefix_len > 0) {
        if (std::memcmp(inner->prefix, bytes + depth, inner->prefix_len) != 0) {
          return nullptr;
        }
        depth += inner->prefix_len;
      }
      node = FindChild(inner, bytes[depth]);
      ++depth;
    }
    return nullptr;
  }

  Value* Find(EncodedKey key) {
    return const_cast<Value*>(static_cast<const ArtTree*>(this)->Find(key));
  }

  /// Number of distinct keys stored.
  size_t size() const { return size_; }

  /// Invokes fn(key, value) in ascending key order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    ForEachInSubtree(root_, fn);
  }

  /// Invokes fn(key, value) in ascending key order for keys in [lo, hi].
  template <typename Fn>
  void ForEachInRange(uint64_t lo, uint64_t hi, Fn fn) const {
    if (lo > hi) return;
    RangeInSubtree(root_, 0, 0, lo, hi, fn);
  }

  /// Approximate heap footprint in bytes (node structs only).
  size_t MemoryBytes() const { return memory_bytes_; }

  /// Node-allocator counters (see mem/arena.h).
  AllocStats AllocatorStats() const { return alloc_.Stats(); }

  /// Node-population diagnostics, computed on demand. The adaptive node mix
  /// is ART's defining feature (and, per the paper's Section 5.3, the source
  /// of its distribution-sensitive cache behaviour when many small nodes
  /// are created).
  struct NodeStats {
    size_t leaves = 0;
    size_t node4 = 0;
    size_t node16 = 0;
    size_t node32 = 0;
    size_t node48 = 0;
    size_t node256 = 0;
    size_t max_depth = 0;            ///< In nodes along the deepest path.
    size_t total_prefix_bytes = 0;   ///< Path-compressed bytes saved.

    size_t inner_nodes() const {
      return node4 + node16 + node32 + node48 + node256;
    }
  };

  NodeStats ComputeNodeStats() const {
    NodeStats stats;
    CollectNodeStats(root_, 1, stats);
    return stats;
  }

 private:
  enum class NodeType : uint8_t {
    kLeaf,
    kNode4,
    kNode16,
    kNode32,
    kNode48,
    kNode256
  };

  // Pessimistic path compression never overflows for 8-byte keys: two
  // distinct keys share at most 7 leading bytes, so every stored prefix fits
  // and no optimistic "compare overflow bytes at the leaf" pass is needed.
  // InsertImpl DCHECKs the bound where prefixes are built.
  static constexpr int kMaxPrefix = 8;

  struct Node {
    explicit Node(NodeType t) : type(t) {}
    NodeType type;
  };

  struct Leaf : Node {
    explicit Leaf(uint64_t k) : Node(NodeType::kLeaf), key(k) {}
    EncodedKey key;
    Value value{};
  };

  struct Inner : Node {
    Inner(NodeType t) : Node(t) {}
    uint16_t num_children = 0;
    uint8_t prefix_len = 0;
    uint8_t prefix[kMaxPrefix] = {};
  };

  struct Node4 : Inner {
    Node4() : Inner(NodeType::kNode4) {}
    uint8_t keys[4] = {};
    Node* children[4] = {};
  };

  struct Node16 : Inner {
    Node16() : Inner(NodeType::kNode16) {}
    uint8_t keys[16] = {};
    Node* children[16] = {};
  };

  struct Node32 : Inner {
    Node32() : Inner(NodeType::kNode32) {}
    uint8_t keys[32] = {};
    Node* children[32] = {};
  };

  struct Node48 : Inner {
    Node48() : Inner(NodeType::kNode48) {
      std::memset(child_index, 0xff, sizeof(child_index));
    }
    uint8_t child_index[256];  // 0xff = absent.
    Node* children[48] = {};
  };

  struct Node256 : Inner {
    Node256() : Inner(NodeType::kNode256) {}
    Node* children[256] = {};
  };

  static void EncodeKey(EncodedKey key, uint8_t out[8]) {
    for (int i = 0; i < 8; ++i) {
      out[i] = static_cast<uint8_t>(key >> (56 - 8 * i));
    }
  }

  template <typename T>
  T* NewNode() {
    memory_bytes_ += sizeof(T);
    return alloc_.template New<T>();
  }

  Leaf* NewLeaf(EncodedKey key) {
    memory_bytes_ += sizeof(Leaf);
    ++size_;
    return alloc_.template New<Leaf>(key);
  }

  static Node* const* FindChildSlot(const Inner* inner, uint8_t byte) {
    switch (inner->type) {
      case NodeType::kNode4: {
        const Node4* n = static_cast<const Node4*>(inner);
        for (int i = 0; i < n->num_children; ++i) {
          if (n->keys[i] == byte) return &n->children[i];
        }
        return nullptr;
      }
      case NodeType::kNode16: {
        // One 16-wide byte compare over the full key array, masked down to
        // num_children (the array is always fully readable).
        const Node16* n = static_cast<const Node16*>(inner);
        const int i = Ops::FindByte16(n->keys, n->num_children, byte);
        return i < 0 ? nullptr : &n->children[i];
      }
      case NodeType::kNode32: {
        const Node32* n = static_cast<const Node32*>(inner);
        const int i = Ops::FindByte32(n->keys, n->num_children, byte);
        return i < 0 ? nullptr : &n->children[i];
      }
      case NodeType::kNode48: {
        const Node48* n = static_cast<const Node48*>(inner);
        if (n->child_index[byte] == 0xff) return nullptr;
        return &n->children[n->child_index[byte]];
      }
      case NodeType::kNode256: {
        const Node256* n = static_cast<const Node256*>(inner);
        if (n->children[byte] == nullptr) return nullptr;
        return &n->children[byte];
      }
      default:
        MEMAGG_CHECK(false);
        return nullptr;
    }
  }

  static const Node* FindChild(const Inner* inner, uint8_t byte) {
    Node* const* slot = FindChildSlot(inner, byte);
    return slot == nullptr ? nullptr : *slot;
  }

  /// Inserts `byte -> child` into `*inner_slot`, growing the node type if
  /// full. `*inner_slot` may be replaced.
  void AddChild(Node** inner_slot, uint8_t byte, Node* child) {
    Inner* inner = static_cast<Inner*>(*inner_slot);
    switch (inner->type) {
      case NodeType::kNode4: {
        Node4* n = static_cast<Node4*>(inner);
        if (n->num_children < 4) {
          int pos = 0;
          while (pos < n->num_children && n->keys[pos] < byte) ++pos;
          for (int i = n->num_children; i > pos; --i) {
            n->keys[i] = n->keys[i - 1];
            n->children[i] = n->children[i - 1];
          }
          n->keys[pos] = byte;
          n->children[pos] = child;
          ++n->num_children;
          return;
        }
        Node16* grown = NewNode<Node16>();
        CopyHeader(grown, n);
        std::memcpy(grown->keys, n->keys, 4);
        std::memcpy(grown->children, n->children, 4 * sizeof(Node*));
        grown->num_children = 4;
        FreeInner(n);
        *inner_slot = grown;
        AddChild(inner_slot, byte, child);
        return;
      }
      case NodeType::kNode16: {
        Node16* n = static_cast<Node16*>(inner);
        if (n->num_children < 16) {
          int pos = 0;
          while (pos < n->num_children && n->keys[pos] < byte) ++pos;
          for (int i = n->num_children; i > pos; --i) {
            n->keys[i] = n->keys[i - 1];
            n->children[i] = n->children[i - 1];
          }
          n->keys[pos] = byte;
          n->children[pos] = child;
          ++n->num_children;
          return;
        }
        // The keys are sorted, so a straight copy keeps Node32 sorted too —
        // order is preserved no matter what order the inserts arrived in.
        Node32* grown = NewNode<Node32>();
        CopyHeader(grown, n);
        std::memcpy(grown->keys, n->keys, 16);
        std::memcpy(grown->children, n->children, 16 * sizeof(Node*));
        grown->num_children = 16;
        FreeInner(n);
        *inner_slot = grown;
        AddChild(inner_slot, byte, child);
        return;
      }
      case NodeType::kNode32: {
        Node32* n = static_cast<Node32*>(inner);
        if (n->num_children < 32) {
          int pos = 0;
          while (pos < n->num_children && n->keys[pos] < byte) ++pos;
          for (int i = n->num_children; i > pos; --i) {
            n->keys[i] = n->keys[i - 1];
            n->children[i] = n->children[i - 1];
          }
          n->keys[pos] = byte;
          n->children[pos] = child;
          ++n->num_children;
          return;
        }
        Node48* grown = NewNode<Node48>();
        CopyHeader(grown, n);
        // child_index is keyed by byte value, so Node48's in-order
        // traversal stays correct regardless of insertion order.
        for (int i = 0; i < 32; ++i) {
          grown->child_index[n->keys[i]] = static_cast<uint8_t>(i);
          grown->children[i] = n->children[i];
        }
        grown->num_children = 32;
        FreeInner(n);
        *inner_slot = grown;
        AddChild(inner_slot, byte, child);
        return;
      }
      case NodeType::kNode48: {
        Node48* n = static_cast<Node48*>(inner);
        if (n->num_children < 48) {
          n->child_index[byte] = static_cast<uint8_t>(n->num_children);
          n->children[n->num_children] = child;
          ++n->num_children;
          return;
        }
        Node256* grown = NewNode<Node256>();
        CopyHeader(grown, n);
        for (int b = 0; b < 256; ++b) {
          if (n->child_index[b] != 0xff) {
            grown->children[b] = n->children[n->child_index[b]];
          }
        }
        grown->num_children = 48;
        FreeInner(n);
        *inner_slot = grown;
        AddChild(inner_slot, byte, child);
        return;
      }
      case NodeType::kNode256: {
        Node256* n = static_cast<Node256*>(inner);
        MEMAGG_DCHECK(n->children[byte] == nullptr);
        n->children[byte] = child;
        ++n->num_children;
        return;
      }
      default:
        MEMAGG_CHECK(false);
    }
  }

  static void CopyHeader(Inner* dst, const Inner* src) {
    dst->prefix_len = src->prefix_len;
    std::memcpy(dst->prefix, src->prefix, src->prefix_len);
  }

  void FreeInner(Inner* inner) {
    switch (inner->type) {
      case NodeType::kNode4:
        memory_bytes_ -= sizeof(Node4);
        alloc_.Delete(static_cast<Node4*>(inner));
        break;
      case NodeType::kNode16:
        memory_bytes_ -= sizeof(Node16);
        alloc_.Delete(static_cast<Node16*>(inner));
        break;
      case NodeType::kNode32:
        memory_bytes_ -= sizeof(Node32);
        alloc_.Delete(static_cast<Node32*>(inner));
        break;
      case NodeType::kNode48:
        memory_bytes_ -= sizeof(Node48);
        alloc_.Delete(static_cast<Node48*>(inner));
        break;
      case NodeType::kNode256:
        memory_bytes_ -= sizeof(Node256);
        alloc_.Delete(static_cast<Node256*>(inner));
        break;
      default:
        MEMAGG_CHECK(false);
    }
  }

  static size_t NodeBytes(const Node* node) {
    switch (node->type) {
      case NodeType::kLeaf:
        return sizeof(Leaf);
      case NodeType::kNode4:
        return sizeof(Node4);
      case NodeType::kNode16:
        return sizeof(Node16);
      case NodeType::kNode32:
        return sizeof(Node32);
      case NodeType::kNode48:
        return sizeof(Node48);
      case NodeType::kNode256:
        return sizeof(Node256);
    }
    return sizeof(Node);
  }

  Value& InsertImpl(Node** slot, const uint8_t bytes[8], size_t depth,
                    EncodedKey key) {
    Node* node = *slot;
    if (node != nullptr) Tracer::OnAccess(node, NodeBytes(node));
    if (node == nullptr) {
      Leaf* leaf = NewLeaf(key);
      *slot = leaf;
      return leaf->value;
    }
    if (node->type == NodeType::kLeaf) {
      Leaf* leaf = static_cast<Leaf*>(node);
      if (leaf->key == key) return leaf->value;
      // Split: create a Node4 holding the common prefix of the two keys.
      uint8_t existing[8];
      EncodeKey(leaf->key, existing);
      size_t common = depth;
      while (existing[common] == bytes[common]) ++common;
      // The keys differ (checked above), so the scan stops within the 8 key
      // bytes and the new prefix fits kMaxPrefix — prefixes never truncate.
      MEMAGG_DCHECK(common < 8);
      MEMAGG_DCHECK(common - depth <= static_cast<size_t>(kMaxPrefix));
      Node4* split = NewNode<Node4>();
      split->prefix_len = static_cast<uint8_t>(common - depth);
      std::memcpy(split->prefix, bytes + depth, split->prefix_len);
      Leaf* new_leaf = NewLeaf(key);
      Node* split_node = split;
      AddChild(&split_node, existing[common], leaf);
      AddChild(&split_node, bytes[common], new_leaf);
      *slot = split_node;
      return new_leaf->value;
    }

    Inner* inner = static_cast<Inner*>(node);
    // Compare the compressed prefix.
    size_t mismatch = 0;
    while (mismatch < inner->prefix_len &&
           inner->prefix[mismatch] == bytes[depth + mismatch]) {
      ++mismatch;
    }
    if (mismatch < inner->prefix_len) {
      // Split the prefix: new Node4 with the matching part; the existing
      // node keeps the tail.
      Node4* split = NewNode<Node4>();
      split->prefix_len = static_cast<uint8_t>(mismatch);
      std::memcpy(split->prefix, inner->prefix, mismatch);
      const uint8_t inner_byte = inner->prefix[mismatch];
      const uint8_t tail_len =
          static_cast<uint8_t>(inner->prefix_len - mismatch - 1);
      std::memmove(inner->prefix, inner->prefix + mismatch + 1, tail_len);
      inner->prefix_len = tail_len;
      Leaf* new_leaf = NewLeaf(key);
      Node* split_node = split;
      AddChild(&split_node, inner_byte, inner);
      AddChild(&split_node, bytes[depth + mismatch], new_leaf);
      *slot = split_node;
      return new_leaf->value;
    }
    depth += inner->prefix_len;

    Node* const* child_slot = FindChildSlot(inner, bytes[depth]);
    if (child_slot == nullptr) {
      Leaf* leaf = NewLeaf(key);
      AddChild(slot, bytes[depth], leaf);
      return leaf->value;
    }
    return InsertImpl(const_cast<Node**>(child_slot), bytes, depth + 1, key);
  }

  template <typename Fn>
  static void ForEachInSubtree(const Node* node, Fn& fn) {
    if (node == nullptr) return;
    Tracer::OnAccess(node, NodeBytes(node));
    if (node->type == NodeType::kLeaf) {
      const Leaf* leaf = static_cast<const Leaf*>(node);
      fn(leaf->key, leaf->value);
      return;
    }
    VisitChildrenInOrder(static_cast<const Inner*>(node),
                         [&fn](uint8_t, const Node* child) {
                           ForEachInSubtree(child, fn);
                         });
  }

  template <typename Visit>
  static void VisitChildrenInOrder(const Inner* inner, Visit visit) {
    switch (inner->type) {
      case NodeType::kNode4: {
        const Node4* n = static_cast<const Node4*>(inner);
        for (int i = 0; i < n->num_children; ++i) {
          visit(n->keys[i], n->children[i]);
        }
        return;
      }
      case NodeType::kNode16: {
        const Node16* n = static_cast<const Node16*>(inner);
        for (int i = 0; i < n->num_children; ++i) {
          visit(n->keys[i], n->children[i]);
        }
        return;
      }
      case NodeType::kNode32: {
        const Node32* n = static_cast<const Node32*>(inner);
        for (int i = 0; i < n->num_children; ++i) {
          visit(n->keys[i], n->children[i]);
        }
        return;
      }
      case NodeType::kNode48: {
        const Node48* n = static_cast<const Node48*>(inner);
        for (int b = 0; b < 256; ++b) {
          if (n->child_index[b] != 0xff) {
            visit(static_cast<uint8_t>(b), n->children[n->child_index[b]]);
          }
        }
        return;
      }
      case NodeType::kNode256: {
        const Node256* n = static_cast<const Node256*>(inner);
        for (int b = 0; b < 256; ++b) {
          if (n->children[b] != nullptr) {
            visit(static_cast<uint8_t>(b), n->children[b]);
          }
        }
        return;
      }
      default:
        MEMAGG_CHECK(false);
    }
  }

  /// Range traversal. `acc` holds the key bytes fixed so far (left-aligned);
  /// `depth` is the number of fixed bytes. Subtrees whose possible key range
  /// [acc|00.., acc|ff..] misses [lo, hi] are pruned.
  template <typename Fn>
  static void RangeInSubtree(const Node* node, uint64_t acc, size_t depth,
                             uint64_t lo, uint64_t hi, Fn& fn) {
    if (node == nullptr) return;
    Tracer::OnAccess(node, NodeBytes(node));
    if (node->type == NodeType::kLeaf) {
      const Leaf* leaf = static_cast<const Leaf*>(node);
      if (leaf->key >= lo && leaf->key <= hi) fn(leaf->key, leaf->value);
      return;
    }
    const Inner* inner = static_cast<const Inner*>(node);
    for (int i = 0; i < inner->prefix_len; ++i) {
      acc |= static_cast<uint64_t>(inner->prefix[i]) << (56 - 8 * depth);
      ++depth;
    }
    if (!SubtreeOverlaps(acc, depth, lo, hi)) return;
    VisitChildrenInOrder(inner, [&](uint8_t byte, const Node* child) {
      const uint64_t child_acc =
          acc | (static_cast<uint64_t>(byte) << (56 - 8 * depth));
      if (SubtreeOverlaps(child_acc, depth + 1, lo, hi)) {
        RangeInSubtree(child, child_acc, depth + 1, lo, hi, fn);
      }
    });
  }

  static bool SubtreeOverlaps(uint64_t acc, size_t depth, uint64_t lo,
                              uint64_t hi) {
    if (depth == 0) return true;  // No bytes fixed: whole key space.
    if (depth >= 8) return acc >= lo && acc <= hi;
    const uint64_t span = (1ULL << (8 * (8 - depth))) - 1;
    const uint64_t min_key = acc;
    const uint64_t max_key = acc | span;
    return max_key >= lo && min_key <= hi;
  }

  static void CollectNodeStats(const Node* node, size_t depth,
                               NodeStats& stats) {
    if (node == nullptr) return;
    stats.max_depth = std::max(stats.max_depth, depth);
    if (node->type == NodeType::kLeaf) {
      ++stats.leaves;
      return;
    }
    const Inner* inner = static_cast<const Inner*>(node);
    stats.total_prefix_bytes += inner->prefix_len;
    switch (inner->type) {
      case NodeType::kNode4:
        ++stats.node4;
        break;
      case NodeType::kNode16:
        ++stats.node16;
        break;
      case NodeType::kNode32:
        ++stats.node32;
        break;
      case NodeType::kNode48:
        ++stats.node48;
        break;
      case NodeType::kNode256:
        ++stats.node256;
        break;
      default:
        break;
    }
    VisitChildrenInOrder(inner, [&stats, depth](uint8_t, const Node* child) {
      CollectNodeStats(child, depth + 1, stats);
    });
  }

  void DestroySubtree(Node* node) {
    if (node == nullptr) return;
    if (node->type == NodeType::kLeaf) {
      alloc_.Delete(static_cast<Leaf*>(node));
      return;
    }
    Inner* inner = static_cast<Inner*>(node);
    VisitChildrenInOrder(inner, [this](uint8_t, const Node* child) {
      DestroySubtree(const_cast<Node*>(child));
    });
    FreeInner(inner);
  }

  Node* root_ = nullptr;
  size_t size_ = 0;
  size_t memory_bytes_ = 0;
  Alloc alloc_;
};

/// Ablation alias: ART on global new/delete (label ART_Global).
template <typename Value>
using ArtTreeGlobalNew = ArtTree<Value, NullTracer, GlobalNewAllocator>;

}  // namespace memagg

#endif  // MEMAGG_TREE_ART_H_
