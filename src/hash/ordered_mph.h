// Order-preserving minimal perfect hashing (paper Section 3.2).
//
// The paper notes that a hash table *could* produce ordered output by
// pre-sorting the data and using an order-preserving minimal perfect hash
// function, "however, the impact on query execution time would be quite
// severe." This module implements that design so the claim can be measured
// (bench_ablation, label `Hash_MPH`):
//
//   * OrderedMinimalPerfectHash — the canonical order-preserving MPHF over
//     integers: the rank function of the sorted distinct-key set, evaluated
//     with a cache-friendly Eytzinger-layout binary search. Minimal (image
//     is exactly [0, c)), perfect (no collisions), order-preserving
//     (key order == slot order).
//   * MphVectorAggregator (core/mph_aggregator.h) — the two-pass operator
//     the scheme forces: pass 1 sorts and deduplicates the keys to build the
//     MPHF; pass 2 aggregates into a dense value array indexed by mph(key).
//     It lives in core/ so this header stays below the operator layer
//     (tools/check_layering.py).

#ifndef MEMAGG_HASH_ORDERED_MPH_H_
#define MEMAGG_HASH_ORDERED_MPH_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sort/spreadsort.h"
#include "util/encoded_key.h"
#include "util/macros.h"

namespace memagg {

/// Order-preserving minimal perfect hash over a fixed key set.
class OrderedMinimalPerfectHash {
 public:
  OrderedMinimalPerfectHash() = default;

  /// Builds from an arbitrary key column (duplicates allowed; they share a
  /// slot). O(n log n).
  void Build(const uint64_t* keys, size_t n) {
    sorted_keys_.assign(keys, keys + n);
    SpreadSort(sorted_keys_.data(), sorted_keys_.data() + sorted_keys_.size(),
               IdentityKey{});
    sorted_keys_.erase(
        std::unique(sorted_keys_.begin(), sorted_keys_.end()),
        sorted_keys_.end());
    BuildEytzinger();
  }

  /// Number of distinct keys (the size of the hash image).
  size_t size() const { return sorted_keys_.size(); }

  /// The slot of `key` in [0, size()), or size() if the key was not in the
  /// build set. Slots are ordered: key1 < key2 implies slot1 < slot2.
  size_t Slot(EncodedKey key) const {
    // Eytzinger (BFS-order) binary search: the next probe is a predictable
    // child index, and the hot top levels share cache lines.
    const size_t n = eytzinger_.size();
    size_t i = 0;
    while (i < n) {
      i = 2 * i + 1 + (eytzinger_[i] < key ? 1 : 0);
    }
    // Cancel the trailing right-turns plus one step: standard Eytzinger
    // lower_bound restoration. j is 1-based; 0 means every key < `key`.
    const size_t j = (i + 1) >> (std::countr_one(i + 1) + 1);
    const size_t rank = j == 0 ? n : rank_of_[j - 1];
    if (rank < sorted_keys_.size() && sorted_keys_[rank] == key) return rank;
    return sorted_keys_.size();
  }

  /// The key stored at `slot` (inverse of Slot for present keys).
  uint64_t KeyAt(size_t slot) const {
    MEMAGG_DCHECK(slot < sorted_keys_.size());
    return sorted_keys_[slot];
  }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const {
    return (sorted_keys_.size() + eytzinger_.size() + rank_of_.size()) *
           sizeof(uint64_t);
  }

 private:
  void BuildEytzinger() {
    const size_t n = sorted_keys_.size();
    eytzinger_.assign(n, 0);
    rank_of_.assign(n, 0);
    size_t next = 0;
    FillEytzinger(0, next);
  }

  // Places sorted_keys_ into BFS order; rank_of_[i] is the sorted rank of
  // eytzinger_[i].
  void FillEytzinger(size_t i, size_t& next) {
    if (i >= eytzinger_.size()) return;
    FillEytzinger(2 * i + 1, next);
    eytzinger_[i] = sorted_keys_[next];
    rank_of_[i] = next;
    ++next;
    FillEytzinger(2 * i + 2, next);
  }

  std::vector<uint64_t> sorted_keys_;
  std::vector<uint64_t> eytzinger_;
  std::vector<size_t> rank_of_;
};

}  // namespace memagg

#endif  // MEMAGG_HASH_ORDERED_MPH_H_
