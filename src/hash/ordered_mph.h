// Order-preserving minimal perfect hashing (paper Section 3.2).
//
// The paper notes that a hash table *could* produce ordered output by
// pre-sorting the data and using an order-preserving minimal perfect hash
// function, "however, the impact on query execution time would be quite
// severe." This module implements that design so the claim can be measured
// (bench_ablation, label `Hash_MPH`):
//
//   * OrderedMinimalPerfectHash — the canonical order-preserving MPHF over
//     integers: the rank function of the sorted distinct-key set, evaluated
//     with a cache-friendly Eytzinger-layout binary search. Minimal (image
//     is exactly [0, c)), perfect (no collisions), order-preserving
//     (key order == slot order).
//   * MphVectorAggregator — the two-pass operator the scheme forces: pass 1
//     sorts and deduplicates the keys to build the MPHF; pass 2 aggregates
//     into a dense value array indexed by mph(key). Iterate is a dense
//     in-order scan — the nicest iterate phase of any hash operator, paid
//     for by the extra pass and the per-record rank evaluation.

#ifndef MEMAGG_HASH_ORDERED_MPH_H_
#define MEMAGG_HASH_ORDERED_MPH_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/aggregate.h"
#include "core/operator.h"
#include "core/result.h"
#include "obs/query_stats.h"
#include "sort/spreadsort.h"
#include "util/macros.h"

namespace memagg {

/// Order-preserving minimal perfect hash over a fixed key set.
class OrderedMinimalPerfectHash {
 public:
  OrderedMinimalPerfectHash() = default;

  /// Builds from an arbitrary key column (duplicates allowed; they share a
  /// slot). O(n log n).
  void Build(const uint64_t* keys, size_t n) {
    sorted_keys_.assign(keys, keys + n);
    SpreadSort(sorted_keys_.data(), sorted_keys_.data() + sorted_keys_.size(),
               IdentityKey{});
    sorted_keys_.erase(
        std::unique(sorted_keys_.begin(), sorted_keys_.end()),
        sorted_keys_.end());
    BuildEytzinger();
  }

  /// Number of distinct keys (the size of the hash image).
  size_t size() const { return sorted_keys_.size(); }

  /// The slot of `key` in [0, size()), or size() if the key was not in the
  /// build set. Slots are ordered: key1 < key2 implies slot1 < slot2.
  size_t Slot(uint64_t key) const {
    // Eytzinger (BFS-order) binary search: the next probe is a predictable
    // child index, and the hot top levels share cache lines.
    const size_t n = eytzinger_.size();
    size_t i = 0;
    while (i < n) {
      i = 2 * i + 1 + (eytzinger_[i] < key ? 1 : 0);
    }
    // Cancel the trailing right-turns plus one step: standard Eytzinger
    // lower_bound restoration. j is 1-based; 0 means every key < `key`.
    const size_t j = (i + 1) >> (std::countr_one(i + 1) + 1);
    const size_t rank = j == 0 ? n : rank_of_[j - 1];
    if (rank < sorted_keys_.size() && sorted_keys_[rank] == key) return rank;
    return sorted_keys_.size();
  }

  /// The key stored at `slot` (inverse of Slot for present keys).
  uint64_t KeyAt(size_t slot) const {
    MEMAGG_DCHECK(slot < sorted_keys_.size());
    return sorted_keys_[slot];
  }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const {
    return (sorted_keys_.size() + eytzinger_.size() + rank_of_.size()) *
           sizeof(uint64_t);
  }

 private:
  void BuildEytzinger() {
    const size_t n = sorted_keys_.size();
    eytzinger_.assign(n, 0);
    rank_of_.assign(n, 0);
    size_t next = 0;
    FillEytzinger(0, next);
  }

  // Places sorted_keys_ into BFS order; rank_of_[i] is the sorted rank of
  // eytzinger_[i].
  void FillEytzinger(size_t i, size_t& next) {
    if (i >= eytzinger_.size()) return;
    FillEytzinger(2 * i + 1, next);
    eytzinger_[i] = sorted_keys_[next];
    rank_of_[i] = next;
    ++next;
    FillEytzinger(2 * i + 2, next);
  }

  std::vector<uint64_t> sorted_keys_;
  std::vector<uint64_t> eytzinger_;
  std::vector<size_t> rank_of_;
};

/// Vector aggregation via an order-preserving MPHF: the §3.2 design the
/// paper dismisses, implemented so bench_ablation can quantify the cost.
template <typename Aggregate>
class MphVectorAggregator final : public VectorAggregator {
 public:
  using State = typename Aggregate::State;

  explicit MphVectorAggregator(size_t /*expected_size*/ = 0) {}

  void Build(const uint64_t* keys, const uint64_t* values,
             size_t n) override {
    // The MPHF needs the complete key set, so records are buffered across
    // Build calls and the function + dense states are rebuilt from scratch
    // each time (the two-pass cost the paper anticipates).
    buffered_keys_.insert(buffered_keys_.end(), keys, keys + n);
    if constexpr (Aggregate::kNeedsValues) {
      MEMAGG_CHECK(values != nullptr || n == 0);
      buffered_values_.insert(buffered_values_.end(), values, values + n);
    }
    mph_.Build(buffered_keys_.data(), buffered_keys_.size());
    states_.clear();
    states_.resize(mph_.size());
    for (size_t i = 0; i < buffered_keys_.size(); ++i) {
      const size_t slot = mph_.Slot(buffered_keys_[i]);
      MEMAGG_DCHECK(slot < states_.size());
      Aggregate::Update(states_[slot], Aggregate::kNeedsValues
                                           ? buffered_values_[i]
                                           : 0);
    }
  }

  VectorResult Iterate() override {
    VectorResult result;
    result.reserve(states_.size());
    for (size_t slot = 0; slot < states_.size(); ++slot) {
      result.push_back(
          {mph_.KeyAt(slot), Aggregate::Finalize(states_[slot])});
    }
    return result;
  }

  bool SupportsRange() const override { return true; }

  VectorResult IterateRange(uint64_t lo, uint64_t hi) override {
    VectorResult result;
    for (size_t slot = 0; slot < states_.size(); ++slot) {
      const uint64_t key = mph_.KeyAt(slot);
      if (key < lo) continue;
      if (key > hi) break;  // Slots are key-ordered.
      result.push_back({key, Aggregate::Finalize(states_[slot])});
    }
    return result;
  }

  size_t NumGroups() const override { return states_.size(); }

  size_t DataStructureBytes() const override {
    return mph_.MemoryBytes() + states_.capacity() * sizeof(State);
  }

  void CollectStats(QueryStats* stats) const override {
    stats->Add(StatCounter::kHashEntries, states_.size());
  }

 private:
  OrderedMinimalPerfectHash mph_;
  std::vector<State> states_;
  std::vector<uint64_t> buffered_keys_;
  std::vector<uint64_t> buffered_values_;
};

}  // namespace memagg

#endif  // MEMAGG_HASH_ORDERED_MPH_H_
