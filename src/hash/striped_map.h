// StripedMap: a generic lock-striping wrapper that turns any serial memagg
// map into a concurrent one.
//
// The paper's Section 5.8 asks what a concurrent aggregation structure needs
// (thread-safe insert *and update*, scaling, iteration) and evaluates two
// purpose-built answers (Hash_TBBSC, Hash_LC). This wrapper provides the
// classic third answer — partition the key space into S independent serial
// maps, each guarded by its own spinlock — so the repo can also measure how
// far simple striping gets compared to purpose-built concurrent designs
// (label `Hash_Striped` in bench_mt_scaling).
//
// Keys are routed by hash, so each stripe sees a uniform slice. Upsert runs
// the user function under the stripe lock (like Hash_LC's upsert), which
// makes every aggregate policy safe without atomics.

#ifndef MEMAGG_HASH_STRIPED_MAP_H_
#define MEMAGG_HASH_STRIPED_MAP_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "hash/hash_fn.h"
#include "util/bits.h"
#include "util/encoded_key.h"
#include "util/macros.h"
#include "util/spinlock.h"
#include "util/thread_annotations.h"

namespace memagg {

/// Lock-striped concurrent wrapper over a serial map type.
/// `InnerMap` must provide GetOrInsert/Find/size/ForEach/MemoryBytes and a
/// (size_t expected_size) constructor, e.g. LinearProbingMap<V>.
template <typename InnerMap>
class StripedMap {
 public:
  using mapped_type = typename InnerMap::mapped_type;

  /// `num_stripes` is rounded up to a power of two. More stripes = less
  /// contention but worse per-stripe locality; 64 suits up to ~16 threads.
  explicit StripedMap(size_t expected_size, size_t num_stripes = 64)
      : num_stripes_(NextPowerOfTwo(num_stripes)),
        locks_(std::make_unique<SpinLock[]>(num_stripes_)) {
    MEMAGG_CHECK(num_stripes >= 1);
    stripes_.reserve(num_stripes_);
    for (size_t s = 0; s < num_stripes_; ++s) {
      locks_[s].SetRank(LockRank::kMapStripe);
      stripes_.push_back(
          std::make_unique<InnerMap>(expected_size / num_stripes_ + 1));
    }
  }

  StripedMap(const StripedMap&) = delete;
  StripedMap& operator=(const StripedMap&) = delete;

  /// Applies `fn(Value&)` under the stripe lock, inserting a default value
  /// first if `key` is absent. Thread-safe.
  ///
  /// Stripe data is guarded by the same-index stripe lock — a runtime
  /// association the thread-safety analysis cannot express as GUARDED_BY, so
  /// the protocol is kept locally obvious: every stripe access in this class
  /// sits directly under its SpinLockGuard.
  template <typename Fn>
  void Upsert(EncodedKey key, Fn fn) {
    const size_t stripe = StripeOf(key);
    SpinLockGuard guard(locks_[stripe]);
    fn(stripes_[stripe]->GetOrInsert(key));
  }

  /// Applies `fn(const Value&)` under the stripe lock if present; returns
  /// whether the key was found. Thread-safe.
  template <typename Fn>
  bool WithValue(EncodedKey key, Fn fn) const {
    const size_t stripe = StripeOf(key);
    SpinLockGuard guard(locks_[stripe]);
    const auto* value = stripes_[stripe]->Find(key);
    if (value == nullptr) return false;
    fn(*value);
    return true;
  }

  /// Total entries across stripes. Not linearizable under concurrent writes.
  size_t size() const {
    size_t total = 0;
    for (const auto& stripe : stripes_) total += stripe->size();
    return total;
  }

  /// Invokes fn(key, value) for every entry. Must not race with writers.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const auto& stripe : stripes_) stripe->ForEach(fn);
  }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const {
    size_t total = num_stripes_ * sizeof(SpinLock);
    for (const auto& stripe : stripes_) total += stripe->MemoryBytes();
    return total;
  }

  size_t num_stripes() const { return num_stripes_; }

  /// Serial visit of every inner stripe map (diagnostics/stats collection;
  /// must not race with writers).
  template <typename Fn>
  void ForEachStripe(Fn fn) const {
    for (const auto& stripe : stripes_) fn(*stripe);
  }

 private:
  size_t StripeOf(EncodedKey key) const {
    // Use high hash bits for the stripe so the inner map's low-bit masking
    // stays independent.
    return (HashKey(key) >> 48) & (num_stripes_ - 1);
  }

  size_t num_stripes_;
  std::unique_ptr<SpinLock[]> locks_;
  std::vector<std::unique_ptr<InnerMap>> stripes_;
};

}  // namespace memagg

#endif  // MEMAGG_HASH_STRIPED_MAP_H_
