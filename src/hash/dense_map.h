// Hash_Dense (paper Section 3.2.2): open-addressing hash table with
// quadratic (triangular) probing in the style of Google dense_hash_map —
// one dense slot array, power-of-two capacity, and a growth policy that
// trades memory for speed. As the paper notes, during a resize the table
// briefly holds both the old and new arrays, which is what produces
// Hash_Dense's peak-memory spikes in Tables 6 and 7.

#ifndef MEMAGG_HASH_DENSE_MAP_H_
#define MEMAGG_HASH_DENSE_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "hash/hash_fn.h"
#include "util/bits.h"
#include "util/macros.h"
#include "util/tracer.h"

namespace memagg {

/// Quadratic-probing dense hash map from uint64_t keys to Value.
/// Keys must not be kEmptyKey. Not thread-safe. `Tracer` reports every slot
/// touched (see util/tracer.h).
template <typename Value, MemoryTracer Tracer = NullTracer>
class DenseMap {
 public:
  using mapped_type = Value;

  explicit DenseMap(size_t expected_size) {
    // dense_hash keeps occupancy below 50%, so pre-sizing for `expected_size`
    // items allocates twice that many slots — the "speed at the expense of
    // memory" trade the paper describes (and the reason Hash_Dense tops
    // Tables 6-7).
    Rebuild(static_cast<size_t>(NextPowerOfTwo(2 * (expected_size + 1))));
  }

  /// Returns the value slot for `key`, default-constructing it on first use.
  Value& GetOrInsert(uint64_t key) {
    MEMAGG_DCHECK(key != kEmptyKey);
    // dense_hash grows at 50% occupancy to keep probe sequences short.
    if (MEMAGG_UNLIKELY((size_ + 1) * 2 > capacity_)) {
      Rebuild(capacity_ * 2);
    }
    size_t idx = HashKey(key) & mask_;
    size_t step = 0;
    while (true) {
      Slot& slot = slots_[idx];
      Tracer::OnAccess(&slot, sizeof(Slot));
      if (slot.key == key) return slot.value;
      if (slot.key == kEmptyKey) {
        slot.key = key;
        slot.value = Value{};
        ++size_;
        return slot.value;
      }
      // Triangular-number quadratic probing visits every slot of a
      // power-of-two table exactly once.
      idx = (idx + ++step) & mask_;
    }
  }

  /// Pre-sizes the table for `expected_entries` keys at dense_hash's 50%
  /// occupancy ceiling so the build loop never rebuilds. Grow-only.
  void Reserve(size_t expected_entries) {
    const size_t target =
        static_cast<size_t>(NextPowerOfTwo(2 * (expected_entries + 1)));
    if (target > capacity_) Rebuild(target);
  }

  /// Returns the value for `key` or nullptr if absent.
  const Value* Find(uint64_t key) const {
    MEMAGG_DCHECK(key != kEmptyKey);
    size_t idx = HashKey(key) & mask_;
    size_t step = 0;
    while (true) {
      const Slot& slot = slots_[idx];
      Tracer::OnAccess(&slot, sizeof(Slot));
      if (slot.key == key) return &slot.value;
      if (slot.key == kEmptyKey) return nullptr;
      idx = (idx + ++step) & mask_;
    }
  }

  Value* Find(uint64_t key) {
    return const_cast<Value*>(static_cast<const DenseMap*>(this)->Find(key));
  }

  size_t size() const { return size_; }

  size_t capacity() const { return capacity_; }

  /// Invokes fn(key, value) for every stored entry, in table order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const Slot& slot : slots_) {
      Tracer::OnAccess(&slot, sizeof(Slot));
      if (slot.key != kEmptyKey) fn(slot.key, slot.value);
    }
  }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const { return capacity_ * sizeof(Slot); }

 private:
  struct Slot {
    uint64_t key = kEmptyKey;
    Value value{};
  };

  void Rebuild(size_t new_capacity) {
    std::vector<Slot> old_slots = std::move(slots_);
    capacity_ = new_capacity;
    mask_ = capacity_ - 1;
    slots_.assign(capacity_, Slot{});
    size_ = 0;
    for (Slot& slot : old_slots) {
      if (slot.key != kEmptyKey) {
        GetOrInsert(slot.key) = std::move(slot.value);
      }
    }
  }

  std::vector<Slot> slots_;
  size_t capacity_ = 0;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace memagg

#endif  // MEMAGG_HASH_DENSE_MAP_H_
