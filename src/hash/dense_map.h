// Hash_Dense (paper Section 3.2.2): open-addressing hash table with
// quadratic (triangular) probing in the style of Google dense_hash_map —
// one dense slot array, power-of-two capacity, and a growth policy that
// trades memory for speed. As the paper notes, during a resize the table
// briefly holds both the old and new arrays, which is what produces
// Hash_Dense's peak-memory spikes in Tables 6 and 7.
//
// Probing is group-at-a-time over a Swiss-table-style control-byte array
// kept alongside the slots: each slot's control byte is either kCtrlEmpty
// or the 7-bit tag of its key's hash, so one 16-wide tag compare
// (Ops::MatchByteTag) filters a whole group before any 16-byte slot is
// touched. The probe sequence walks group *starts* by triangular numbers
// scaled by the group width — triangular numbers cover every residue mod a
// power of two, so the group starts cover every 16-aligned offset from the
// home slot and the groups cover every slot; occupancy ≤ 50% guarantees an
// empty byte is found.

#ifndef MEMAGG_HASH_DENSE_MAP_H_
#define MEMAGG_HASH_DENSE_MAP_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "hash/hash_fn.h"
#include "util/bits.h"
#include "util/encoded_key.h"
#include "util/macros.h"
#include "util/simd.h"
#include "util/tracer.h"

namespace memagg {

/// Quadratic-probing dense hash map from uint64_t keys to Value, with
/// SIMD-probed control bytes. Keys must not be kEmptyKey (checked loudly).
/// Not thread-safe. `Tracer` reports every byte range touched (see
/// util/tracer.h); `Ops` selects the probe kernel lane (default: runtime
/// dispatch, pin simd::ScalarOps etc. for ablation).
template <typename Value, MemoryTracer Tracer = NullTracer,
          simd::SimdOps Ops = simd::DispatchOps>
class DenseMap {
 public:
  using mapped_type = Value;

  explicit DenseMap(size_t expected_size) {
    // dense_hash keeps occupancy below 50%, so pre-sizing for `expected_size`
    // items allocates twice that many slots — the "speed at the expense of
    // memory" trade the paper describes (and the reason Hash_Dense tops
    // Tables 6-7).
    Rebuild(static_cast<size_t>(NextPowerOfTwo(2 * (expected_size + 1))));
  }

  /// Returns the value slot for `key`, default-constructing it on first use.
  Value& GetOrInsert(EncodedKey key) {
    // The empty sentinel would silently alias every empty slot; reject it
    // before it can corrupt the table (always on, not just in debug builds —
    // the branch is perfectly predicted and the aliasing is unrecoverable).
    MEMAGG_CHECK(key != kEmptyKey);
    // dense_hash grows at 50% occupancy to keep probe sequences short.
    if (MEMAGG_UNLIKELY((size_ + 1) * 2 > capacity_)) {
      Rebuild(capacity_ * 2);
    }
    const uint64_t hash = HashKey(key);
    const uint8_t tag = simd::TagOfHash(hash);
    size_t idx = hash & mask_;
    size_t step = 0;
    while (true) {
      const uint8_t* group = ctrl_.data() + idx;
      Tracer::OnAccess(group, simd::kGroupWidth);
      // Full slots first: with no deletions a key is never stored past the
      // first empty byte of its probe sequence, so tag hits can be checked
      // before the empty mask without missing a match.
      for (uint32_t match = Ops::MatchByteTag(group, tag); match != 0;
           match &= match - 1) {
        Slot& slot = slots_[(idx + std::countr_zero(match)) & mask_];
        Tracer::OnAccess(&slot, sizeof(Slot));
        if (MEMAGG_LIKELY(slot.key == key)) return slot.value;
      }
      const uint32_t empty = Ops::MatchEmpty(group);
      if (MEMAGG_LIKELY(empty != 0)) {
        const size_t pos = (idx + std::countr_zero(empty)) & mask_;
        Slot& slot = slots_[pos];
        Tracer::OnAccess(&slot, sizeof(Slot));
        slot.key = key;
        slot.value = Value{};
        SetCtrl(pos, tag);
        ++size_;
        return slot.value;
      }
      // Triangular-number probing over group starts: visits every
      // group-width-aligned offset from home exactly once per cycle.
      idx = (idx + simd::kGroupWidth * ++step) & mask_;
    }
  }

  /// Pre-sizes the table for `expected_entries` keys at dense_hash's 50%
  /// occupancy ceiling so the build loop never rebuilds. Grow-only.
  void Reserve(size_t expected_entries) {
    const size_t target =
        static_cast<size_t>(NextPowerOfTwo(2 * (expected_entries + 1)));
    if (target > capacity_) Rebuild(target);
  }

  /// Returns the value for `key` or nullptr if absent.
  const Value* Find(EncodedKey key) const {
    MEMAGG_CHECK(key != kEmptyKey);
    const uint64_t hash = HashKey(key);
    const uint8_t tag = simd::TagOfHash(hash);
    size_t idx = hash & mask_;
    size_t step = 0;
    while (true) {
      const uint8_t* group = ctrl_.data() + idx;
      Tracer::OnAccess(group, simd::kGroupWidth);
      for (uint32_t match = Ops::MatchByteTag(group, tag); match != 0;
           match &= match - 1) {
        const Slot& slot = slots_[(idx + std::countr_zero(match)) & mask_];
        Tracer::OnAccess(&slot, sizeof(Slot));
        if (MEMAGG_LIKELY(slot.key == key)) return &slot.value;
      }
      if (MEMAGG_LIKELY(Ops::MatchEmpty(group) != 0)) return nullptr;
      idx = (idx + simd::kGroupWidth * ++step) & mask_;
    }
  }

  Value* Find(EncodedKey key) {
    return const_cast<Value*>(static_cast<const DenseMap*>(this)->Find(key));
  }

  size_t size() const { return size_; }

  size_t capacity() const { return capacity_; }

  /// Invokes fn(key, value) for every stored entry, in table order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const Slot& slot : slots_) {
      Tracer::OnAccess(&slot, sizeof(Slot));
      if (slot.key != kEmptyKey) fn(slot.key, slot.value);
    }
  }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const {
    return capacity_ * sizeof(Slot) + ctrl_.size();
  }

 private:
  struct Slot {
    EncodedKey key = kEmptyKey;
    Value value{};
  };

  /// Writes a control byte, mirroring the first group-width-1 bytes past the
  /// array end so an unaligned group load from any slot never wraps.
  void SetCtrl(size_t pos, uint8_t v) {
    ctrl_[pos] = v;
    if (pos < simd::kGroupWidth - 1) ctrl_[capacity_ + pos] = v;
  }

  void Rebuild(size_t new_capacity) {
    // One full group must exist for the mirror trick to be valid.
    if (new_capacity < simd::kGroupWidth) new_capacity = simd::kGroupWidth;
    std::vector<Slot> old_slots = std::move(slots_);
    capacity_ = new_capacity;
    mask_ = capacity_ - 1;
    slots_.assign(capacity_, Slot{});
    ctrl_.assign(capacity_ + simd::kGroupWidth - 1, simd::kCtrlEmpty);
    size_ = 0;
    for (Slot& slot : old_slots) {
      if (slot.key != kEmptyKey) {
        GetOrInsert(slot.key) = std::move(slot.value);
      }
    }
  }

  std::vector<Slot> slots_;
  std::vector<uint8_t> ctrl_;
  size_t capacity_ = 0;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace memagg

#endif  // MEMAGG_HASH_DENSE_MAP_H_
