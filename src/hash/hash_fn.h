// The hash function shared by all memagg hash tables: a 64-bit finalizer-style
// mixer (Murmur3/splitmix lineage). It is cheap (~5 ops), avalanches well so
// that power-of-two tables can mask the low bits, and is invertible (a
// bijection), so distinct keys never collide before the table reduction.
//
// The scalar mix itself lives in util/simd.h (simd::HashMix64) so the SIMD
// lanes can vectorize the identical constants; HashKey delegates to it and
// HashKeysBatch exposes the dispatched N-at-a-time form for columnar passes
// (radix-partition histogram/scatter). HashKeyAlt stays a hand-written
// scalar on purpose: cuckoo hashing needs its two hash families independent,
// and keeping Alt out of the shared-mixer path means a future batch-hash
// rewrite cannot quietly collapse them into one family
// (tests/hash_fn_test.cc pins the independence statistically).

#ifndef MEMAGG_HASH_HASH_FN_H_
#define MEMAGG_HASH_HASH_FN_H_

#include <cstddef>
#include <cstdint>

#include "util/encoded_key.h"
#include "util/simd.h"

namespace memagg {

/// Mixes `key` into a uniformly distributed 64-bit hash.
inline uint64_t HashKey(EncodedKey key) { return simd::HashMix64(key); }

/// Hashes `n` keys at once through the active SIMD lane: out[i] =
/// HashKey(keys[i]), bit-identical to the scalar loop on every lane.
inline void HashKeysBatch(const uint64_t* keys, size_t n, uint64_t* out) {
  simd::DispatchOps::HashBatch(keys, n, out);
}

/// A second, independent hash for cuckoo hashing's alternate table.
/// Deliberately NOT routed through simd::HashMix64 — see the header comment.
inline uint64_t HashKeyAlt(EncodedKey key) {
  uint64_t h = key + 0x9e3779b97f4a7c15ULL;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/// Sentinel key used by the open-addressing tables to mark empty slots
/// (mirrors Google densehash's required "empty key"). Dataset keys must not
/// equal this value; the generators never produce it, and the serial
/// open-addressing maps reject it loudly (MEMAGG_CHECK) rather than alias.
inline constexpr uint64_t kEmptyKey = ~0ULL;

/// Sentinel for deleted slots (open addressing tables with erase support).
inline constexpr uint64_t kDeletedKey = ~0ULL - 1;

}  // namespace memagg

#endif  // MEMAGG_HASH_HASH_FN_H_
