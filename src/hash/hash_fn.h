// The hash function shared by all memagg hash tables: a 64-bit finalizer-style
// mixer (Murmur3/splitmix lineage). It is cheap (~5 ops), avalanches well so
// that power-of-two tables can mask the low bits, and is invertible (a
// bijection), so distinct keys never collide before the table reduction.

#ifndef MEMAGG_HASH_HASH_FN_H_
#define MEMAGG_HASH_HASH_FN_H_

#include <cstdint>

namespace memagg {

/// Mixes `key` into a uniformly distributed 64-bit hash.
inline uint64_t HashKey(uint64_t key) {
  uint64_t h = key;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

/// A second, independent hash for cuckoo hashing's alternate table.
inline uint64_t HashKeyAlt(uint64_t key) {
  uint64_t h = key + 0x9e3779b97f4a7c15ULL;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/// Sentinel key used by the open-addressing tables to mark empty slots
/// (mirrors Google densehash's required "empty key"). Dataset keys must not
/// equal this value; the generators never produce it.
inline constexpr uint64_t kEmptyKey = ~0ULL;

/// Sentinel for deleted slots (open addressing tables with erase support).
inline constexpr uint64_t kDeletedKey = ~0ULL - 1;

}  // namespace memagg

#endif  // MEMAGG_HASH_HASH_FN_H_
