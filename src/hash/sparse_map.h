// Hash_Sparse (paper Section 3.2.2): quadratic-probing hash table in the
// style of Google sparse_hash_map. The logical slot array is split into
// 48-slot groups; each group stores a 48-bit occupancy bitmap plus an
// exact-fit packed array holding only the occupied entries. Lookups cost one
// popcount per probe; inserts shift the packed array (the "memory efficiency
// over speed" trade the paper describes).

#ifndef MEMAGG_HASH_SPARSE_MAP_H_
#define MEMAGG_HASH_SPARSE_MAP_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "hash/hash_fn.h"
#include "mem/allocator.h"
#include "util/bits.h"
#include "util/encoded_key.h"
#include "util/macros.h"
#include "util/tracer.h"

namespace memagg {

/// Sparse quadratic-probing hash map from uint64_t keys to Value.
/// Value must be movable. Not thread-safe. `Tracer` reports group-bitmap and
/// packed-entry accesses (see util/tracer.h). `Alloc` serves the exact-fit
/// packed entry arrays, whose per-insert reallocation makes Hash_Sparse
/// heavily allocator-bound — the default arena allocator recycles retired
/// arrays through its size-class freelists.
template <typename Value, MemoryTracer Tracer = NullTracer,
          AllocatorPolicy Alloc = ArenaAllocator>
class SparseMap {
 public:
  using mapped_type = Value;

  explicit SparseMap(size_t expected_size) {
    Rebuild(static_cast<size_t>(NextPowerOfTwo(expected_size + 1)));
  }

  ~SparseMap() {
    // Wholesale-release fast path: the arena reclaims all packed arrays at
    // once when trivially destructible.
    if constexpr (!(Alloc::kWholesaleRelease &&
                    std::is_trivially_destructible_v<Value>)) {
      DestroyGroups();
    }
  }

  SparseMap(const SparseMap&) = delete;
  SparseMap& operator=(const SparseMap&) = delete;

  /// Returns the value slot for `key`, default-constructing it on first use.
  Value& GetOrInsert(EncodedKey key) {
    // sparsehash grows at 80% occupancy.
    if (MEMAGG_UNLIKELY((size_ + 1) * 5 > capacity_ * 4)) {
      Rebuild(capacity_ * 2);
    }
    size_t idx = HashKey(key) & mask_;
    size_t step = 0;
    while (true) {
      Group& group = groups_[idx / kGroupSize];
      Tracer::OnAccess(&group, sizeof(Group));
      const uint32_t bit = static_cast<uint32_t>(idx % kGroupSize);
      const size_t rank = group.RankOf(bit);
      if (group.IsOccupied(bit)) {
        Tracer::OnAccess(&group.entries[rank], sizeof(Entry));
        if (group.entries[rank].key == key) return group.entries[rank].value;
      } else {
        Entry& entry = group.InsertAt(alloc_, rank, bit, key);
        ++size_;
        return entry.value;
      }
      idx = (idx + ++step) & mask_;
    }
  }

  /// Pre-sizes the table for `expected_entries` keys at sparsehash's 80%
  /// occupancy ceiling so the build loop never rebuilds. Grow-only.
  void Reserve(size_t expected_entries) {
    const size_t target = static_cast<size_t>(
        NextPowerOfTwo(((expected_entries + 1) * 5 + 3) / 4));
    if (target > capacity_) Rebuild(target);
  }

  /// Returns the value for `key` or nullptr if absent.
  const Value* Find(EncodedKey key) const {
    size_t idx = HashKey(key) & mask_;
    size_t step = 0;
    while (true) {
      const Group& group = groups_[idx / kGroupSize];
      Tracer::OnAccess(&group, sizeof(Group));
      const uint32_t bit = static_cast<uint32_t>(idx % kGroupSize);
      if (!group.IsOccupied(bit)) return nullptr;
      const Entry& entry = group.entries[group.RankOf(bit)];
      Tracer::OnAccess(&entry, sizeof(Entry));
      if (entry.key == key) return &entry.value;
      idx = (idx + ++step) & mask_;
    }
  }

  Value* Find(EncodedKey key) {
    return const_cast<Value*>(static_cast<const SparseMap*>(this)->Find(key));
  }

  size_t size() const { return size_; }

  size_t capacity() const { return capacity_; }

  /// Invokes fn(key, value) for every stored entry, in table order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const Group& group : groups_) {
      Tracer::OnAccess(&group, sizeof(Group));
      const size_t count = group.Count();
      for (size_t i = 0; i < count; ++i) {
        Tracer::OnAccess(&group.entries[i], sizeof(Entry));
        fn(group.entries[i].key, group.entries[i].value);
      }
    }
  }

  /// Approximate heap footprint in bytes: bitmaps plus exact-fit entries.
  size_t MemoryBytes() const {
    return groups_.size() * sizeof(Group) + size_ * sizeof(Entry);
  }

  /// Entry-array allocator counters (see mem/arena.h).
  AllocStats AllocatorStats() const { return alloc_.Stats(); }

 private:
  static constexpr size_t kGroupSize = 48;  // sparsehash's group width.

  struct Entry {
    EncodedKey key;
    Value value;
  };

  struct Group {
    uint64_t bitmap = 0;
    Entry* entries = nullptr;

    bool IsOccupied(uint32_t bit) const { return (bitmap >> bit) & 1; }

    /// Number of occupied slots before `bit`.
    size_t RankOf(uint32_t bit) const {
      return static_cast<size_t>(
          std::popcount(bitmap & ((1ULL << bit) - 1)));
    }

    size_t Count() const { return static_cast<size_t>(std::popcount(bitmap)); }

    /// Inserts a default-valued entry for `key` at packed position `rank`,
    /// reallocating the packed array to the exact new size.
    Entry& InsertAt(Alloc& alloc, size_t rank, uint32_t bit, EncodedKey key) {
      const size_t old_count = Count();
      Entry* new_entries = static_cast<Entry*>(
          alloc.AllocateBytes(sizeof(Entry) * (old_count + 1), alignof(Entry)));
      for (size_t i = 0; i < rank; ++i) {
        new (&new_entries[i]) Entry{entries[i].key, std::move(entries[i].value)};
      }
      new (&new_entries[rank]) Entry{key, Value{}};
      for (size_t i = rank; i < old_count; ++i) {
        new (&new_entries[i + 1])
            Entry{entries[i].key, std::move(entries[i].value)};
      }
      FreeEntries(alloc, old_count);
      entries = new_entries;
      bitmap |= 1ULL << bit;
      // The exact-fit reallocation rewrites the whole packed array — the
      // insert cost that makes Hash_Sparse trade speed for memory.
      Tracer::OnAccess(entries, sizeof(Entry) * (old_count + 1));
      return entries[rank];
    }

    void FreeEntries(Alloc& alloc, size_t count) {
      if (entries == nullptr) return;
      for (size_t i = 0; i < count; ++i) entries[i].~Entry();
      alloc.DeallocateBytes(entries, sizeof(Entry) * count);
      entries = nullptr;
    }
  };

  void DestroyGroups() {
    for (Group& group : groups_) group.FreeEntries(alloc_, group.Count());
    groups_.clear();
  }

  void Rebuild(size_t new_capacity) {
    std::vector<Group> old_groups = std::move(groups_);
    capacity_ = new_capacity;
    mask_ = capacity_ - 1;
    groups_.assign((capacity_ + kGroupSize - 1) / kGroupSize, Group{});
    size_ = 0;
    for (Group& group : old_groups) {
      const size_t count = group.Count();
      for (size_t i = 0; i < count; ++i) {
        GetOrInsert(group.entries[i].key) = std::move(group.entries[i].value);
      }
      group.FreeEntries(alloc_, count);
    }
  }

  std::vector<Group> groups_;
  size_t capacity_ = 0;
  size_t mask_ = 0;
  size_t size_ = 0;
  Alloc alloc_;
};

}  // namespace memagg

#endif  // MEMAGG_HASH_SPARSE_MAP_H_
