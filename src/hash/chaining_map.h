// Hash_SC (paper Section 3.2.3): separate-chaining hash table in the style
// of libstdc++'s std::unordered_map — a prime-sized bucket array of pointers
// into heap-allocated singly linked nodes. Inserts are fast (no displacement,
// no clustering); the pointer-chased layout costs locality on lookups, which
// is exactly the trade-off the paper measures.
//
// Nodes come from an allocator policy (mem/allocator.h). The default is a
// typed PoolAllocator over a private arena, which makes node allocation a
// pointer bump and turns the destructor into a wholesale arena release for
// trivially destructible values; `GlobalNewAllocator` restores the original
// per-node new/delete behaviour as the ablation baseline (`Hash_SC_Global`).

#ifndef MEMAGG_HASH_CHAINING_MAP_H_
#define MEMAGG_HASH_CHAINING_MAP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "hash/hash_fn.h"
#include "mem/allocator.h"
#include "util/encoded_key.h"
#include "util/macros.h"
#include "util/prime.h"
#include "util/tracer.h"

namespace memagg {

/// Separate-chaining hash map from uint64_t keys to Value. Not thread-safe.
/// `Tracer` reports the bucket-head and node accesses (see util/tracer.h).
/// `AllocPolicy` selects the node allocator; `void` resolves to
/// PoolAllocator<Node> (the node type is private, so the default is spelled
/// through this indirection).
template <typename Value, MemoryTracer Tracer = NullTracer,
          typename AllocPolicy = void>
class ChainingMap {
 private:
  struct Node {
    // Constructs the value in place (no temporary), so non-trivial values
    // are created and destroyed exactly once per node.
    Node(uint64_t k, Node* nxt) : key(k), next(nxt) {}
    EncodedKey key;
    Value value{};
    Node* next;
  };

 public:
  using Alloc = std::conditional_t<std::is_void_v<AllocPolicy>,
                                   PoolAllocator<Node>, AllocPolicy>;
  static_assert(AllocatorPolicy<Alloc>,
                "AllocPolicy must model AllocatorPolicy (or be void for the "
                "default PoolAllocator<Node>)");

  using mapped_type = Value;

  explicit ChainingMap(size_t expected_size, Alloc alloc = Alloc())
      : alloc_(std::move(alloc)) {
    buckets_.assign(static_cast<size_t>(NextPrime(expected_size | 1)), nullptr);
  }

  ~ChainingMap() { Clear(); }

  ChainingMap(const ChainingMap&) = delete;
  ChainingMap& operator=(const ChainingMap&) = delete;

  /// Returns the value slot for `key`, default-constructing it on first use.
  Value& GetOrInsert(EncodedKey key) {
    if (MEMAGG_UNLIKELY(size_ >= buckets_.size())) {
      // libstdc++ grows when the load factor would exceed 1.0.
      ++rehashes_;
      Rehash(static_cast<size_t>(NextPrime(buckets_.size() * 2)));
    }
    const size_t idx = HashKey(key) % buckets_.size();
    Tracer::OnAccess(&buckets_[idx], sizeof(Node*));
    for (Node* node = buckets_[idx]; node != nullptr; node = node->next) {
      Tracer::OnAccess(node, sizeof(Node));
      if (node->key == key) return node->value;
    }
    Node* node = alloc_.template New<Node>(key, buckets_[idx]);
    Tracer::OnAccess(node, sizeof(Node));
    buckets_[idx] = node;
    ++size_;
    return node->value;
  }

  /// Pre-sizes the bucket array for `expected_entries` keys so the build
  /// loop never rehashes. Credits the load-factor-1.0 doublings a growth
  /// path from the current size would have performed to `rehashes_saved()`.
  void Reserve(size_t expected_entries) {
    const size_t target =
        static_cast<size_t>(NextPrime(expected_entries | 1));
    if (target <= buckets_.size()) return;
    for (size_t b = buckets_.size(); b < target; b *= 2) ++rehashes_saved_;
    Rehash(target);
  }

  /// Returns the value for `key` or nullptr if absent.
  const Value* Find(EncodedKey key) const {
    const size_t idx = HashKey(key) % buckets_.size();
    Tracer::OnAccess(&buckets_[idx], sizeof(Node*));
    for (const Node* node = buckets_[idx]; node != nullptr;
         node = node->next) {
      Tracer::OnAccess(node, sizeof(Node));
      if (node->key == key) return &node->value;
    }
    return nullptr;
  }

  Value* Find(EncodedKey key) {
    return const_cast<Value*>(
        static_cast<const ChainingMap*>(this)->Find(key));
  }

  size_t size() const { return size_; }

  size_t bucket_count() const { return buckets_.size(); }

  /// Load-factor rehashes performed / avoided thanks to Reserve().
  uint64_t rehashes() const { return rehashes_; }
  uint64_t rehashes_saved() const { return rehashes_saved_; }

  /// Node-allocator counters (see mem/arena.h).
  AllocStats AllocatorStats() const { return alloc_.Stats(); }

  /// Invokes fn(key, value) for every stored entry.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (size_t b = 0; b < buckets_.size(); ++b) {
      Tracer::OnAccess(&buckets_[b], sizeof(Node*));
      for (const Node* node = buckets_[b]; node != nullptr;
           node = node->next) {
        Tracer::OnAccess(node, sizeof(Node));
        fn(node->key, node->value);
      }
    }
  }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const {
    return buckets_.size() * sizeof(Node*) + size_ * sizeof(Node);
  }

  /// Chain-length diagnostics, computed on demand.
  struct ChainStats {
    size_t used_buckets = 0;
    size_t max_chain = 0;
    double average_chain = 0.0;  ///< Over non-empty buckets.
  };

  ChainStats ComputeChainStats() const {
    ChainStats stats;
    size_t total = 0;
    for (const Node* head : buckets_) {
      size_t length = 0;
      for (const Node* node = head; node != nullptr; node = node->next) {
        ++length;
      }
      if (length > 0) {
        ++stats.used_buckets;
        total += length;
        stats.max_chain = std::max(stats.max_chain, length);
      }
    }
    stats.average_chain =
        stats.used_buckets == 0
            ? 0.0
            : static_cast<double>(total) /
                  static_cast<double>(stats.used_buckets);
    return stats;
  }

 private:
  void Rehash(size_t new_bucket_count) {
    std::vector<Node*> new_buckets(new_bucket_count, nullptr);
    for (Node* head : buckets_) {
      while (head != nullptr) {
        Node* next = head->next;
        const size_t idx = HashKey(head->key) % new_bucket_count;
        head->next = new_buckets[idx];
        new_buckets[idx] = head;
        head = next;
      }
    }
    buckets_ = std::move(new_buckets);
  }

  void Clear() {
    // Wholesale-release fast path: with trivially destructible nodes the
    // arena reclaims everything at once, so the per-node walk disappears.
    if constexpr (!(Alloc::kWholesaleRelease &&
                    std::is_trivially_destructible_v<Node>)) {
      for (Node* head : buckets_) {
        while (head != nullptr) {
          Node* next = head->next;
          alloc_.Delete(head);
          head = next;
        }
      }
    }
    buckets_.clear();
    size_ = 0;
  }

  std::vector<Node*> buckets_;
  size_t size_ = 0;
  uint64_t rehashes_ = 0;
  uint64_t rehashes_saved_ = 0;
  Alloc alloc_;
};

/// Ablation alias: chaining map on global new/delete (label Hash_SC_Global).
template <typename Value>
using ChainingMapGlobalNew =
    ChainingMap<Value, NullTracer, GlobalNewAllocator>;

}  // namespace memagg

#endif  // MEMAGG_HASH_CHAINING_MAP_H_
