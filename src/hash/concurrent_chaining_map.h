// Hash_TBBSC (paper Section 5.8): concurrent separate-chaining hash table
// modelled on tbb::concurrent_unordered_map. Inserts are lock-free
// compare-and-swap pushes onto per-bucket singly linked lists; lookups are
// wait-free list walks. Like the TBB container, the map supports concurrent
// insertion and traversal but no erasure, and — also like TBB — it does not
// protect the *values*: concurrent mutation of a group's aggregate state is
// the caller's job (the aggregation operators use atomics or per-group
// locks, matching how the paper's Q1/Q3 operators were built).

#ifndef MEMAGG_HASH_CONCURRENT_CHAINING_MAP_H_
#define MEMAGG_HASH_CONCURRENT_CHAINING_MAP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "hash/hash_fn.h"
#include "mem/allocator.h"
#include "util/bits.h"
#include "util/encoded_key.h"
#include "util/macros.h"

namespace memagg {

/// Concurrent separate-chaining hash map from uint64_t keys to Value.
///
/// The bucket array is sized once at construction (the paper's operators
/// size tables to the dataset size); chains absorb any excess. GetOrInsert /
/// Find are thread-safe; ForEach must not race with writers.
///
/// Node allocation is explicit: GetOrInsert takes an allocator handle, and
/// each worker passes its own (typically a PoolAllocator over that worker's
/// arena slot from mem/worker_arenas.h). Allocation therefore never
/// synchronizes — the published structure is shared, the memory behind it
/// is thread-local. Every allocator handle (and any arena it draws from)
/// must outlive the map. `AllocPolicy = void` resolves to
/// PoolAllocator<Node> (the node type is private, hence the indirection).
template <typename Value, typename AllocPolicy = void>
class ConcurrentChainingMap {
 private:
  struct Node {
    // Value is default-constructed in place so non-movable values (atomics,
    // lock-guarded buffers) are supported.
    Node(uint64_t k, Node* nxt) : key(k), next(nxt) {}
    EncodedKey key;
    Value value{};
    Node* next;
  };

 public:
  using Alloc = std::conditional_t<std::is_void_v<AllocPolicy>,
                                   PoolAllocator<Node>, AllocPolicy>;
  static_assert(AllocatorPolicy<Alloc>,
                "AllocPolicy must model AllocatorPolicy (or be void for the "
                "default PoolAllocator<Node>)");

  using mapped_type = Value;

  explicit ConcurrentChainingMap(size_t expected_size)
      : buckets_(static_cast<size_t>(NextPowerOfTwo(expected_size + 1))),
        mask_(buckets_.size() - 1) {
    // Always-on: every concurrent probe indexes by `hash & mask_`, so a
    // non-power-of-two bucket array would alias buckets for the whole run.
    // The array is fixed for the map's lifetime — this is the one place the
    // invariant can be enforced before publication.
    MEMAGG_CHECK(!buckets_.empty() && (buckets_.size() & mask_) == 0);
    for (auto& head : buckets_) head.store(nullptr, std::memory_order_relaxed);
  }

  ~ConcurrentChainingMap() {
    if constexpr (Alloc::kWholesaleRelease) {
      // The arenas behind the workers' allocator handles release the node
      // memory wholesale; only non-trivial values need their destructors
      // run (exactly once — race-loss nodes were already destroyed by the
      // losing worker's Delete and are unreachable from the buckets).
      if constexpr (!std::is_trivially_destructible_v<Node>) {
        ForEachNode([](Node* node) { node->~Node(); });
      }
    } else {
      static_assert(std::is_empty_v<Alloc>,
                    "non-wholesale allocators must be stateless so the map "
                    "can free nodes without the workers' handles");
      Alloc alloc;
      ForEachNode([&alloc](Node* node) { alloc.Delete(node); });
    }
  }

  ConcurrentChainingMap(const ConcurrentChainingMap&) = delete;
  ConcurrentChainingMap& operator=(const ConcurrentChainingMap&) = delete;

  /// Returns the value slot for `key`, inserting a default-constructed value
  /// if absent. Thread-safe as long as `alloc` is the calling worker's own
  /// handle; on insert races exactly one node wins, all callers converge on
  /// it, and the loser's node goes back to the loser's own freelist (it was
  /// never published, so no other thread can observe it).
  Value& GetOrInsert(EncodedKey key, Alloc& alloc) {
    std::atomic<Node*>& head = buckets_[HashKey(key) & mask_];
    Node* first = head.load(std::memory_order_acquire);
    if (Value* found = FindInChain(first, key)) return *found;
    Node* node = alloc.template New<Node>(key, first);
    while (!head.compare_exchange_weak(node->next, node,
                                       std::memory_order_release,
                                       std::memory_order_acquire)) {
      // Another thread pushed; someone may have inserted our key. Only the
      // freshly pushed prefix needs rescanning.
      if (Value* found =
              FindInChain(node->next, key, /*stop_at=*/first)) {
        alloc.Delete(node);
        return *found;
      }
      first = node->next;
    }
    size_.fetch_add(1, std::memory_order_relaxed);
    return node->value;
  }

  /// Returns the value for `key` or nullptr. Thread-safe.
  const Value* Find(EncodedKey key) const {
    const std::atomic<Node*>& head = buckets_[HashKey(key) & mask_];
    return FindInChain(head.load(std::memory_order_acquire), key);
  }

  Value* Find(EncodedKey key) {
    const auto* self = this;
    return const_cast<Value*>(self->Find(key));
  }

  size_t size() const { return size_.load(std::memory_order_relaxed); }

  size_t bucket_count() const { return buckets_.size(); }

  /// Invokes fn(key, value) for every stored entry. Must not race with
  /// writers.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const auto& head : buckets_) {
      for (const Node* node = head.load(std::memory_order_acquire);
           node != nullptr; node = node->next) {
        fn(node->key, node->value);
      }
    }
  }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const {
    return buckets_.size() * sizeof(std::atomic<Node*>) +
           size() * sizeof(Node);
  }

 private:
  /// Visits every published node (single-threaded; destruction only).
  template <typename Fn>
  void ForEachNode(Fn fn) {
    for (auto& head : buckets_) {
      Node* node = head.load(std::memory_order_relaxed);
      while (node != nullptr) {
        Node* next = node->next;
        fn(node);
        node = next;
      }
    }
  }

  static const Value* FindInChain(const Node* node, EncodedKey key,
                                  const Node* stop_at = nullptr) {
    for (; node != stop_at; node = node->next) {
      if (node->key == key) return &node->value;
    }
    return nullptr;
  }

  static Value* FindInChain(Node* node, EncodedKey key,
                            const Node* stop_at = nullptr) {
    for (; node != stop_at; node = node->next) {
      if (node->key == key) return &node->value;
    }
    return nullptr;
  }

  std::vector<std::atomic<Node*>> buckets_;
  size_t mask_;
  std::atomic<size_t> size_{0};
};

}  // namespace memagg

#endif  // MEMAGG_HASH_CONCURRENT_CHAINING_MAP_H_
