// Hash_LP (paper Section 3.2.1): custom open-addressing hash table with
// linear probing.
//
// Follows the paper's described "industry best practices":
//   * capacity is kept at a power of two so the modulo reduction is a bitwise
//     AND (SizingPolicy::kPowerOfTwo, the default);
//   * if a power-of-two capacity would overshoot the memory budget, the
//     caller can fall back to a prime capacity (kPrime) or the exact
//     requested size (kExact), both of which use the slower modulo reduction;
//   * all items live in one contiguous slot array — no pointers — which is
//     what gives Hash_LP its cache-friendly layout.
//
// The slot array comes from an allocator policy (mem/allocator.h). With the
// default arena allocator each map owns a private arena released wholesale
// when the map dies — partitioned aggregators exploit this to free a whole
// partition's table in one shot after merging it.

#ifndef MEMAGG_HASH_LINEAR_PROBING_MAP_H_
#define MEMAGG_HASH_LINEAR_PROBING_MAP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "hash/hash_fn.h"
#include "mem/allocator.h"
#include "util/bits.h"
#include "util/macros.h"
#include "util/prime.h"
#include "util/tracer.h"

namespace memagg {

/// How the table picks its slot-array capacity (paper Section 3.2.1).
enum class SizingPolicy {
  kPowerOfTwo,  ///< Round up to a power of two; reduce with bitwise AND.
  kPrime,       ///< Round up to a prime; reduce with modulo.
  kExact,       ///< Use the requested size as-is; reduce with modulo.
};

/// Open-addressing hash map with linear probing from uint64_t keys to Value.
/// Keys must not be kEmptyKey. Not thread-safe. `Tracer` reports every slot
/// touched (see util/tracer.h); `Alloc` provides the slot array.
template <typename Value, MemoryTracer Tracer = NullTracer,
          AllocatorPolicy Alloc = ArenaAllocator>
class LinearProbingMap {
 public:
  using mapped_type = Value;

  /// `expected_size` pre-sizes the table; the paper sizes tables to the
  /// dataset size since group-by cardinality is unknown in advance.
  explicit LinearProbingMap(size_t expected_size,
                            SizingPolicy policy = SizingPolicy::kPowerOfTwo,
                            Alloc alloc = Alloc())
      : policy_(policy), alloc_(std::move(alloc)) {
    Rebuild(DesiredCapacity(expected_size + 1));
  }

  ~LinearProbingMap() { DestroySlots(); }

  LinearProbingMap(const LinearProbingMap&) = delete;
  LinearProbingMap& operator=(const LinearProbingMap&) = delete;

  LinearProbingMap(LinearProbingMap&& other) noexcept
      : policy_(other.policy_),
        alloc_(std::move(other.alloc_)),
        slots_(other.slots_),
        capacity_(other.capacity_),
        size_(other.size_),
        rehashes_(other.rehashes_),
        rehashes_saved_(other.rehashes_saved_) {
    other.slots_ = nullptr;
    other.capacity_ = 0;
    other.size_ = 0;
    other.rehashes_ = 0;
    other.rehashes_saved_ = 0;
  }

  LinearProbingMap& operator=(LinearProbingMap&& other) noexcept {
    if (this != &other) {
      DestroySlots();  // Before alloc_ is replaced: the slots live in it.
      policy_ = other.policy_;
      alloc_ = std::move(other.alloc_);
      slots_ = other.slots_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      rehashes_ = other.rehashes_;
      rehashes_saved_ = other.rehashes_saved_;
      other.slots_ = nullptr;
      other.capacity_ = 0;
      other.size_ = 0;
      other.rehashes_ = 0;
      other.rehashes_saved_ = 0;
    }
    return *this;
  }

  /// Returns the value slot for `key`, default-constructing it on first use.
  Value& GetOrInsert(uint64_t key) {
    MEMAGG_DCHECK(key != kEmptyKey);
    if (MEMAGG_UNLIKELY((size_ + 1) * 10 > capacity_ * 7)) {
      Rebuild(DesiredCapacity(capacity_ * 2));
    }
    size_t idx = Reduce(HashKey(key));
    while (true) {
      Slot& slot = slots_[idx];
      Tracer::OnAccess(&slot, sizeof(Slot));
      if (slot.key == key) return slot.value;
      if (slot.key == kEmptyKey) {
        slot.key = key;
        slot.value = Value{};
        ++size_;
        return slot.value;
      }
      idx = Advance(idx);
    }
  }

  /// Pre-sizes the slot array for `expected_entries` keys so the build loop
  /// never rebuilds. Grow-only; credits the growth doublings a build from
  /// the current capacity would have performed to rehashes_saved().
  void Reserve(size_t expected_entries) {
    // Invert the 70% growth trigger: capacity must satisfy
    // (entries + 1) * 10 <= capacity * 7.
    const size_t target =
        DesiredCapacity(((expected_entries + 1) * 10 + 6) / 7);
    if (target <= capacity_) return;
    for (size_t c = capacity_; c < target; c *= 2) ++rehashes_saved_;
    Rebuild(target);
  }

  /// Returns the value for `key` or nullptr if absent.
  const Value* Find(uint64_t key) const {
    MEMAGG_DCHECK(key != kEmptyKey);
    size_t idx = Reduce(HashKey(key));
    while (true) {
      const Slot& slot = slots_[idx];
      Tracer::OnAccess(&slot, sizeof(Slot));
      if (slot.key == key) return &slot.value;
      if (slot.key == kEmptyKey) return nullptr;
      idx = Advance(idx);
    }
  }

  Value* Find(uint64_t key) {
    return const_cast<Value*>(
        static_cast<const LinearProbingMap*>(this)->Find(key));
  }

  /// Number of distinct keys stored.
  size_t size() const { return size_; }

  size_t capacity() const { return capacity_; }

  SizingPolicy policy() const { return policy_; }

  /// Growth rebuilds since construction (cold-path counter; the initial
  /// sizing does not count).
  size_t rehashes() const { return rehashes_; }

  /// Growth rebuilds avoided thanks to Reserve().
  size_t rehashes_saved() const { return rehashes_saved_; }

  /// Slot-array allocator counters (see mem/arena.h).
  AllocStats AllocatorStats() const { return alloc_.Stats(); }

  /// Invokes fn(key, value) for every stored entry, in table order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (size_t idx = 0; idx < capacity_; ++idx) {
      const Slot& slot = slots_[idx];
      Tracer::OnAccess(&slot, sizeof(Slot));
      if (slot.key != kEmptyKey) fn(slot.key, slot.value);
    }
  }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const { return capacity_ * sizeof(Slot); }

  /// Probe-distance diagnostics, computed on demand (no hot-path counters).
  /// `max_probe`/`total_probes` measure each key's displacement from its
  /// home slot + 1; primary clustering shows up as a heavy tail.
  struct ProbeStats {
    size_t entries = 0;
    size_t max_probe = 0;
    size_t total_probes = 0;
    double load_factor = 0.0;

    double average_probe() const {
      return entries == 0 ? 0.0
                          : static_cast<double>(total_probes) /
                                static_cast<double>(entries);
    }
  };

  ProbeStats ComputeProbeStats() const {
    ProbeStats stats;
    stats.load_factor =
        static_cast<double>(size_) / static_cast<double>(capacity_);
    for (size_t idx = 0; idx < capacity_; ++idx) {
      const Slot& slot = slots_[idx];
      if (slot.key == kEmptyKey) continue;
      const size_t home = Reduce(HashKey(slot.key));
      const size_t distance =
          idx >= home ? idx - home : idx + capacity_ - home;
      ++stats.entries;
      stats.total_probes += distance + 1;
      stats.max_probe = std::max(stats.max_probe, distance + 1);
    }
    return stats;
  }

 private:
  struct Slot {
    uint64_t key = kEmptyKey;
    Value value{};
  };

  size_t DesiredCapacity(size_t at_least) const {
    switch (policy_) {
      case SizingPolicy::kPowerOfTwo:
        return static_cast<size_t>(NextPowerOfTwo(at_least));
      case SizingPolicy::kPrime:
        return static_cast<size_t>(NextPrime(at_least));
      case SizingPolicy::kExact:
        return at_least;
    }
    MEMAGG_CHECK(false);
    return at_least;
  }

  size_t Reduce(uint64_t hash) const {
    // Power-of-two capacity: modulo becomes a mask (the optimization the
    // paper highlights). Other policies pay the division.
    if (policy_ == SizingPolicy::kPowerOfTwo) return hash & (capacity_ - 1);
    return hash % capacity_;
  }

  size_t Advance(size_t idx) const {
    return MEMAGG_UNLIKELY(idx + 1 == capacity_) ? 0 : idx + 1;
  }

  void Rebuild(size_t new_capacity) {
    Slot* old_slots = slots_;
    const size_t old_capacity = capacity_;
    if (old_slots != nullptr) ++rehashes_;
    capacity_ = new_capacity;
    slots_ = static_cast<Slot*>(
        alloc_.AllocateBytes(new_capacity * sizeof(Slot), alignof(Slot)));
    for (size_t i = 0; i < new_capacity; ++i) new (&slots_[i]) Slot();
    size_ = 0;
    for (size_t i = 0; i < old_capacity; ++i) {
      Slot& slot = old_slots[i];
      if (slot.key != kEmptyKey) {
        GetOrInsert(slot.key) = std::move(slot.value);
      }
    }
    if (old_slots != nullptr) {
      ReleaseSlots(old_slots, old_capacity);
    }
  }

  void DestroySlots() {
    if (slots_ == nullptr) return;
    ReleaseSlots(slots_, capacity_);
    slots_ = nullptr;
    capacity_ = 0;
    size_ = 0;
  }

  void ReleaseSlots(Slot* slots, size_t count) {
    if constexpr (!std::is_trivially_destructible_v<Slot>) {
      for (size_t i = 0; i < count; ++i) slots[i].~Slot();
    }
    alloc_.DeallocateBytes(slots, count * sizeof(Slot));
  }

  SizingPolicy policy_;
  Alloc alloc_;
  Slot* slots_ = nullptr;
  size_t capacity_ = 0;
  size_t size_ = 0;
  size_t rehashes_ = 0;
  size_t rehashes_saved_ = 0;
};

}  // namespace memagg

#endif  // MEMAGG_HASH_LINEAR_PROBING_MAP_H_
