// Hash_LP (paper Section 3.2.1): custom open-addressing hash table with
// linear probing.
//
// Follows the paper's described "industry best practices":
//   * capacity is kept at a power of two so the modulo reduction is a bitwise
//     AND (SizingPolicy::kPowerOfTwo, the default);
//   * if a power-of-two capacity would overshoot the memory budget, the
//     caller can fall back to a prime capacity (kPrime) or the exact
//     requested size (kExact), both of which use the slower modulo reduction;
//   * all items live in one contiguous slot array — no pointers — which is
//     what gives Hash_LP its cache-friendly layout.
//
// The slot array comes from an allocator policy (mem/allocator.h). With the
// default arena allocator each map owns a private arena released wholesale
// when the map dies — partitioned aggregators exploit this to free a whole
// partition's table in one shot after merging it.
//
// Probing is group-at-a-time over a Swiss-table-style control-byte array:
// one 16-wide tag compare (Ops::MatchByteTag) filters a whole group of
// slots before any slot is loaded. The groups tile the classic linear scan
// in order (window k covers probe offsets 16k..16k+15 from the home slot),
// and the first empty control byte is exactly where the scalar scan would
// have inserted — so slot placement, and therefore ComputeProbeStats, is
// bit-identical to the pre-SIMD layout on every lane. The control array
// carries a group-width-1 mirror tail (written modulo capacity) so an
// unaligned group load from any home slot never wraps, for any capacity
// the three sizing policies can produce.

#ifndef MEMAGG_HASH_LINEAR_PROBING_MAP_H_
#define MEMAGG_HASH_LINEAR_PROBING_MAP_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "hash/hash_fn.h"
#include "mem/allocator.h"
#include "util/bits.h"
#include "util/encoded_key.h"
#include "util/macros.h"
#include "util/prime.h"
#include "util/simd.h"
#include "util/tracer.h"

namespace memagg {

/// How the table picks its slot-array capacity (paper Section 3.2.1).
enum class SizingPolicy {
  kPowerOfTwo,  ///< Round up to a power of two; reduce with bitwise AND.
  kPrime,       ///< Round up to a prime; reduce with modulo.
  kExact,       ///< Use the requested size as-is; reduce with modulo.
};

/// Open-addressing hash map with linear probing from uint64_t keys to Value.
/// Keys must not be kEmptyKey (checked loudly). Not thread-safe. `Tracer`
/// reports every byte range touched (see util/tracer.h); `Alloc` provides
/// the slot and control arrays; `Ops` selects the probe kernel lane
/// (default: runtime dispatch, pin simd::ScalarOps etc. for ablation).
template <typename Value, MemoryTracer Tracer = NullTracer,
          AllocatorPolicy Alloc = ArenaAllocator,
          simd::SimdOps Ops = simd::DispatchOps>
class LinearProbingMap {
 public:
  using mapped_type = Value;

  /// `expected_size` pre-sizes the table; the paper sizes tables to the
  /// dataset size since group-by cardinality is unknown in advance.
  explicit LinearProbingMap(size_t expected_size,
                            SizingPolicy policy = SizingPolicy::kPowerOfTwo,
                            Alloc alloc = Alloc())
      : policy_(policy), alloc_(std::move(alloc)) {
    Rebuild(DesiredCapacity(expected_size + 1));
  }

  ~LinearProbingMap() { DestroySlots(); }

  LinearProbingMap(const LinearProbingMap&) = delete;
  LinearProbingMap& operator=(const LinearProbingMap&) = delete;

  LinearProbingMap(LinearProbingMap&& other) noexcept
      : policy_(other.policy_),
        alloc_(std::move(other.alloc_)),
        slots_(other.slots_),
        ctrl_(other.ctrl_),
        capacity_(other.capacity_),
        size_(other.size_),
        rehashes_(other.rehashes_),
        rehashes_saved_(other.rehashes_saved_) {
    other.slots_ = nullptr;
    other.ctrl_ = nullptr;
    other.capacity_ = 0;
    other.size_ = 0;
    other.rehashes_ = 0;
    other.rehashes_saved_ = 0;
  }

  LinearProbingMap& operator=(LinearProbingMap&& other) noexcept {
    if (this != &other) {
      DestroySlots();  // Before alloc_ is replaced: the slots live in it.
      policy_ = other.policy_;
      alloc_ = std::move(other.alloc_);
      slots_ = other.slots_;
      ctrl_ = other.ctrl_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      rehashes_ = other.rehashes_;
      rehashes_saved_ = other.rehashes_saved_;
      other.slots_ = nullptr;
      other.ctrl_ = nullptr;
      other.capacity_ = 0;
      other.size_ = 0;
      other.rehashes_ = 0;
      other.rehashes_saved_ = 0;
    }
    return *this;
  }

  /// Returns the value slot for `key`, default-constructing it on first use.
  Value& GetOrInsert(EncodedKey key) {
    // The empty sentinel would silently alias every empty slot; reject it
    // before it can corrupt the table (always on, not just in debug builds).
    MEMAGG_CHECK(key != kEmptyKey);
    if (MEMAGG_UNLIKELY((size_ + 1) * 10 > capacity_ * 7)) {
      Rebuild(DesiredCapacity(capacity_ * 2));
    }
    const uint64_t hash = HashKey(key);
    const uint8_t tag = simd::TagOfHash(hash);
    size_t idx = Reduce(hash);
    while (true) {
      const uint8_t* group = ctrl_ + idx;
      Tracer::OnAccess(group, simd::kGroupWidth);
      // Tag hits first: with no deletions a key never sits past the first
      // empty byte of its probe sequence, so a stale hit past it just
      // fails the full-key compare.
      for (uint32_t match = Ops::MatchByteTag(group, tag); match != 0;
           match &= match - 1) {
        Slot& slot = slots_[WrapSlot(idx + std::countr_zero(match))];
        Tracer::OnAccess(&slot, sizeof(Slot));
        if (MEMAGG_LIKELY(slot.key == key)) return slot.value;
      }
      const uint32_t empty = Ops::MatchEmpty(group);
      if (MEMAGG_LIKELY(empty != 0)) {
        // First empty byte in scan order == where the scalar linear probe
        // would have inserted; placement stays lane-independent.
        const size_t pos = WrapSlot(idx + std::countr_zero(empty));
        Slot& slot = slots_[pos];
        Tracer::OnAccess(&slot, sizeof(Slot));
        slot.key = key;
        slot.value = Value{};
        SetCtrl(pos, tag);
        ++size_;
        return slot.value;
      }
      idx = AdvanceGroup(idx);
    }
  }

  /// Pre-sizes the slot array for `expected_entries` keys so the build loop
  /// never rebuilds. Grow-only; credits the growth doublings a build from
  /// the current capacity would have performed to rehashes_saved().
  void Reserve(size_t expected_entries) {
    // Invert the 70% growth trigger: capacity must satisfy
    // (entries + 1) * 10 <= capacity * 7.
    const size_t target =
        DesiredCapacity(((expected_entries + 1) * 10 + 6) / 7);
    if (target <= capacity_) return;
    for (size_t c = capacity_; c < target; c *= 2) ++rehashes_saved_;
    Rebuild(target);
  }

  /// Returns the value for `key` or nullptr if absent.
  const Value* Find(EncodedKey key) const {
    MEMAGG_CHECK(key != kEmptyKey);
    const uint64_t hash = HashKey(key);
    const uint8_t tag = simd::TagOfHash(hash);
    size_t idx = Reduce(hash);
    while (true) {
      const uint8_t* group = ctrl_ + idx;
      Tracer::OnAccess(group, simd::kGroupWidth);
      for (uint32_t match = Ops::MatchByteTag(group, tag); match != 0;
           match &= match - 1) {
        const Slot& slot = slots_[WrapSlot(idx + std::countr_zero(match))];
        Tracer::OnAccess(&slot, sizeof(Slot));
        if (MEMAGG_LIKELY(slot.key == key)) return &slot.value;
      }
      if (MEMAGG_LIKELY(Ops::MatchEmpty(group) != 0)) return nullptr;
      idx = AdvanceGroup(idx);
    }
  }

  Value* Find(EncodedKey key) {
    return const_cast<Value*>(
        static_cast<const LinearProbingMap*>(this)->Find(key));
  }

  /// Number of distinct keys stored.
  size_t size() const { return size_; }

  size_t capacity() const { return capacity_; }

  SizingPolicy policy() const { return policy_; }

  /// Growth rebuilds since construction (cold-path counter; the initial
  /// sizing does not count).
  size_t rehashes() const { return rehashes_; }

  /// Growth rebuilds avoided thanks to Reserve().
  size_t rehashes_saved() const { return rehashes_saved_; }

  /// Slot-array allocator counters (see mem/arena.h).
  AllocStats AllocatorStats() const { return alloc_.Stats(); }

  /// Invokes fn(key, value) for every stored entry, in table order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (size_t idx = 0; idx < capacity_; ++idx) {
      const Slot& slot = slots_[idx];
      Tracer::OnAccess(&slot, sizeof(Slot));
      if (slot.key != kEmptyKey) fn(slot.key, slot.value);
    }
  }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const {
    return capacity_ * sizeof(Slot) + CtrlBytes(capacity_);
  }

  /// Probe-distance diagnostics, computed on demand (no hot-path counters).
  /// `max_probe`/`total_probes` measure each key's displacement from its
  /// home slot + 1; primary clustering shows up as a heavy tail.
  struct ProbeStats {
    size_t entries = 0;
    size_t max_probe = 0;
    size_t total_probes = 0;
    double load_factor = 0.0;

    double average_probe() const {
      return entries == 0 ? 0.0
                          : static_cast<double>(total_probes) /
                                static_cast<double>(entries);
    }
  };

  ProbeStats ComputeProbeStats() const {
    ProbeStats stats;
    stats.load_factor =
        static_cast<double>(size_) / static_cast<double>(capacity_);
    for (size_t idx = 0; idx < capacity_; ++idx) {
      const Slot& slot = slots_[idx];
      if (slot.key == kEmptyKey) continue;
      const size_t home = Reduce(HashKey(slot.key));
      const size_t distance =
          idx >= home ? idx - home : idx + capacity_ - home;
      ++stats.entries;
      stats.total_probes += distance + 1;
      stats.max_probe = std::max(stats.max_probe, distance + 1);
    }
    return stats;
  }

 private:
  struct Slot {
    EncodedKey key = kEmptyKey;
    Value value{};
  };

  static size_t CtrlBytes(size_t capacity) {
    return capacity + simd::kGroupWidth - 1;
  }

  size_t DesiredCapacity(size_t at_least) const {
    switch (policy_) {
      case SizingPolicy::kPowerOfTwo:
        return static_cast<size_t>(NextPowerOfTwo(at_least));
      case SizingPolicy::kPrime:
        return static_cast<size_t>(NextPrime(at_least));
      case SizingPolicy::kExact:
        return at_least;
    }
    MEMAGG_CHECK(false);
    return at_least;
  }

  size_t Reduce(uint64_t hash) const {
    // Power-of-two capacity: modulo becomes a mask (the optimization the
    // paper highlights). Other policies pay the division.
    if (policy_ == SizingPolicy::kPowerOfTwo) return hash & (capacity_ - 1);
    return hash % capacity_;
  }

  /// Wraps a group-relative position (< capacity + group width) back into
  /// the slot array. Prime/exact capacities may be smaller than a group, so
  /// the general case is a modulo, not a single subtraction.
  size_t WrapSlot(size_t pos) const {
    if (policy_ == SizingPolicy::kPowerOfTwo) return pos & (capacity_ - 1);
    return pos % capacity_;
  }

  size_t AdvanceGroup(size_t idx) const {
    // Only reachable when a full group held no empty byte, which requires
    // capacity > group width (smaller tables are fully covered by one
    // mirrored group and always contain an empty at ≤70% load) — so one
    // subtraction wraps.
    const size_t next = idx + simd::kGroupWidth;
    return next >= capacity_ ? next - capacity_ : next;
  }

  /// Writes a control byte at `pos`, plus every mirror image of `pos` in the
  /// tail (positions pos + k*capacity below capacity + group width - 1), so
  /// unaligned group loads from any home slot see consistent bytes even when
  /// the capacity is smaller than a group.
  void SetCtrl(size_t pos, uint8_t v) {
    for (size_t i = pos; i < CtrlBytes(capacity_); i += capacity_) {
      ctrl_[i] = v;
    }
  }

  void Rebuild(size_t new_capacity) {
    Slot* old_slots = slots_;
    uint8_t* old_ctrl = ctrl_;
    const size_t old_capacity = capacity_;
    if (old_slots != nullptr) ++rehashes_;
    capacity_ = new_capacity;
    slots_ = static_cast<Slot*>(
        alloc_.AllocateBytes(new_capacity * sizeof(Slot), alignof(Slot)));
    for (size_t i = 0; i < new_capacity; ++i) new (&slots_[i]) Slot();
    ctrl_ = static_cast<uint8_t*>(
        alloc_.AllocateBytes(CtrlBytes(new_capacity), simd::kGroupWidth));
    std::memset(ctrl_, simd::kCtrlEmpty, CtrlBytes(new_capacity));
    size_ = 0;
    for (size_t i = 0; i < old_capacity; ++i) {
      Slot& slot = old_slots[i];
      if (slot.key != kEmptyKey) {
        GetOrInsert(slot.key) = std::move(slot.value);
      }
    }
    if (old_slots != nullptr) {
      ReleaseSlots(old_slots, old_ctrl, old_capacity);
    }
  }

  void DestroySlots() {
    if (slots_ == nullptr) return;
    ReleaseSlots(slots_, ctrl_, capacity_);
    slots_ = nullptr;
    ctrl_ = nullptr;
    capacity_ = 0;
    size_ = 0;
  }

  void ReleaseSlots(Slot* slots, uint8_t* ctrl, size_t count) {
    if constexpr (!std::is_trivially_destructible_v<Slot>) {
      for (size_t i = 0; i < count; ++i) slots[i].~Slot();
    }
    alloc_.DeallocateBytes(slots, count * sizeof(Slot));
    alloc_.DeallocateBytes(ctrl, CtrlBytes(count));
  }

  SizingPolicy policy_;
  Alloc alloc_;
  Slot* slots_ = nullptr;
  uint8_t* ctrl_ = nullptr;
  size_t capacity_ = 0;
  size_t size_ = 0;
  size_t rehashes_ = 0;
  size_t rehashes_saved_ = 0;
};

}  // namespace memagg

#endif  // MEMAGG_HASH_LINEAR_PROBING_MAP_H_
