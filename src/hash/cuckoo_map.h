// Hash_LC (paper Sections 3.2.4 and 5.8): concurrent bucketized cuckoo hash
// table modelled on Intel's libcuckoo. Every key lives in one of two
// 4-slot buckets (chosen by two independent hash functions), so reads touch
// at most two cache lines. Inserts that find both buckets full displace
// existing items along a breadth-first eviction path.
//
// Concurrency: striped spinlocks over buckets; an operation on a key locks
// the (at most two) stripes of its candidate buckets in index order.
// Displacement paths are serialized by an eviction mutex, and each single
// displacement additionally takes the stripe locks of the two buckets it
// touches, so readers never observe a key mid-move. libcuckoo's HTM fast
// path is replaced by this lock striping (see DESIGN.md §4); the
// characteristic behaviour — comparatively slow single-threaded build,
// scalable concurrent throughput, bounded two-lookup reads — is preserved.

#ifndef MEMAGG_HASH_CUCKOO_MAP_H_
#define MEMAGG_HASH_CUCKOO_MAP_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "hash/hash_fn.h"
#include "util/bits.h"
#include "util/encoded_key.h"
#include "util/macros.h"
#include "util/mutex.h"
#include "util/simd.h"
#include "util/spinlock.h"
#include "util/thread_annotations.h"
#include "util/tracer.h"

namespace memagg {

/// Concurrent cuckoo hash map from uint64_t keys to Value. Keys must not be
/// kEmptyKey (checked loudly). Value must be default-constructible and
/// movable.
///
/// Thread-safe operations: Upsert, Contains, WithValue. Iteration (ForEach)
/// and MemoryBytes must not race with writers. `Tracer` reports bucket
/// accesses (see util/tracer.h); tracing is meaningful for single-threaded
/// use. `Ops` selects the bucket-scan kernel lane: one 4-wide 64-bit
/// compare (Ops::MatchKey4) covers a whole bucket, for lookups and for
/// free-slot searches (match against kEmptyKey). Scans run under the same
/// stripe locks as before — vectorization changes the compare width, not
/// the locking protocol.
template <typename Value, MemoryTracer Tracer = NullTracer,
          simd::SimdOps Ops = simd::DispatchOps>
class CuckooMap {
 public:
  using mapped_type = Value;

  explicit CuckooMap(size_t expected_size) {
    // Two tables' worth of 4-slot buckets at ~80% max load.
    const size_t buckets =
        static_cast<size_t>(NextPowerOfTwo(expected_size / 3 + 1));
    buckets_.assign(std::max<size_t>(buckets, 2), Bucket{});
    mask_ = buckets_.size() - 1;
    locks_ = std::make_unique<SpinLock[]>(kNumLocks);
    // Same-rank family: StripePair acquires two stripes in index order,
    // which is address order within this one array (see AllowsSameRank).
    for (size_t s = 0; s < kNumLocks; ++s) {
      locks_[s].SetRank(LockRank::kCuckooStripe);
    }
  }

  CuckooMap(const CuckooMap&) = delete;
  CuckooMap& operator=(const CuckooMap&) = delete;

  /// Applies `fn(Value&)` to the value for `key`, inserting a
  /// default-constructed value first if the key is absent. This mirrors
  /// libcuckoo's upsert, which the paper highlights as the feature that lets
  /// Hash_LC support holistic aggregation (Section 5.8).
  template <typename Fn>
  void Upsert(EncodedKey key, Fn fn) EXCLUDES(resize_mutex_) {
    // The empty sentinel would match every free slot's key; reject it loudly
    // (always on — aliasing a sentinel corrupts the table unrecoverably).
    MEMAGG_CHECK(key != kEmptyKey);
    while (true) {
      size_t buckets_seen;
      {
        ReaderMutexLock resize_guard(resize_mutex_);
        const size_t b1 = HashKey(key) & mask_;
        const size_t b2 = HashKeyAlt(key) & mask_;
        {
          StripePair stripes(*this, b1, b2);
          if (Value* value = FindInBuckets(key, b1, b2)) {
            fn(*value);
            return;
          }
          if (Value* value = TryInsertEmpty(key, b1, b2)) {
            fn(*value);
            size_.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        }
        // Both buckets full: displace along a BFS path, then retry the
        // insert.
        if (MakeSpace(b1, b2)) continue;
        buckets_seen = buckets_.size();
      }
      Grow(buckets_seen);
    }
  }

  /// True if `key` is present. Thread-safe.
  bool Contains(EncodedKey key) const {
    return const_cast<CuckooMap*>(this)->WithValue(
        key, [](const Value&) {});
  }

  /// Applies `fn(Value&)` to the value for `key` if present; returns whether
  /// the key was found. Thread-safe.
  template <typename Fn>
  bool WithValue(EncodedKey key, Fn fn) EXCLUDES(resize_mutex_) {
    ReaderMutexLock resize_guard(resize_mutex_);
    const size_t b1 = HashKey(key) & mask_;
    const size_t b2 = HashKeyAlt(key) & mask_;
    StripePair stripes(*this, b1, b2);
    if (Value* value = FindInBuckets(key, b1, b2)) {
      fn(*value);
      return true;
    }
    return false;
  }

  /// Single-threaded convenience: returns the value slot for `key`,
  /// inserting a default if absent.
  Value& GetOrInsert(EncodedKey key) {
    Value* result = nullptr;
    Upsert(key, [&result](Value& v) { result = &v; });
    return *result;
  }

  /// Single-threaded convenience lookup.
  // NO_THREAD_SAFETY_ANALYSIS: documented lock-free single-threaded API —
  // takes neither the resize lock nor stripe locks by contract.
  const Value* Find(EncodedKey key) const NO_THREAD_SAFETY_ANALYSIS {
    const size_t b1 = HashKey(key) & mask_;
    const size_t b2 = HashKeyAlt(key) & mask_;
    return const_cast<CuckooMap*>(this)->FindInBuckets(key, b1, b2);
  }

  Value* Find(EncodedKey key) {
    return const_cast<Value*>(
        static_cast<const CuckooMap*>(this)->Find(key));
  }

  /// Pre-sizes the bucket array for `expected_entries` keys so the build
  /// phase avoids growth rehashes. Grow-only; must not race with writers
  /// (quiescent-only, like ForEach) — it takes the resize lock exclusively,
  /// which drains in-flight operations first.
  void Reserve(size_t expected_entries) EXCLUDES(resize_mutex_) {
    const size_t target = std::max<size_t>(
        static_cast<size_t>(NextPowerOfTwo(expected_entries / 3 + 1)), 2);
    WriterMutexLock resize_guard(resize_mutex_);
    if (target > buckets_.size()) RehashToLocked(target);
  }

  size_t size() const { return size_.load(std::memory_order_relaxed); }

  /// Current bucket-array length. Thread-safe; bounds the table's footprint
  /// (see the growth regression test in tests/concurrent_map_test.cc).
  size_t bucket_count() const EXCLUDES(resize_mutex_) {
    ReaderMutexLock resize_guard(resize_mutex_);
    return buckets_.size();
  }

  /// Displacement moves executed along eviction paths (and table-growth
  /// rehash walks) since construction. Already on the slow path — counting
  /// adds nothing to the two-bucket fast path.
  size_t kicks() const { return kicks_.load(std::memory_order_relaxed); }

  /// Invokes fn(key, value) for every stored entry. Not thread-safe.
  // NO_THREAD_SAFETY_ANALYSIS: documented single-threaded iteration — must
  // not race with writers, so it deliberately takes no locks.
  template <typename Fn>
  void ForEach(Fn fn) const NO_THREAD_SAFETY_ANALYSIS {
    for (const Bucket& bucket : buckets_) {
      Tracer::OnAccess(&bucket, sizeof(Bucket));
      for (int slot = 0; slot < kSlotsPerBucket; ++slot) {
        if (bucket.keys[slot] != kEmptyKey) {
          fn(bucket.keys[slot], bucket.values[slot]);
        }
      }
    }
  }

  /// Approximate heap footprint in bytes.
  // NO_THREAD_SAFETY_ANALYSIS: diagnostics-only read; must not race with a
  // concurrent resize by contract.
  size_t MemoryBytes() const NO_THREAD_SAFETY_ANALYSIS {
    return buckets_.size() * sizeof(Bucket) + kNumLocks * sizeof(SpinLock);
  }

 private:
  static constexpr int kSlotsPerBucket = 4;
  static constexpr size_t kNumLocks = 4096;
  static constexpr int kMaxBfsDepth = 5;

  struct Bucket {
    uint64_t keys[kSlotsPerBucket] = {kEmptyKey, kEmptyKey, kEmptyKey,
                                      kEmptyKey};
    Value values[kSlotsPerBucket] = {};
  };

  /// RAII lock over the (deduplicated, index-ordered) stripes of two buckets.
  /// Bucket *contents* are guarded by these stripe locks; the association is
  /// a runtime index computation the thread-safety analysis cannot express,
  /// so both ends of the pair are opted out with a documented escape.
  class StripePair {
   public:
    // NO_THREAD_SAFETY_ANALYSIS: acquires locks_[s1]/locks_[s2] where the
    // stripe indices are runtime values; the deduplicated index-ordered
    // acquisition below is the deadlock-avoidance protocol.
    StripePair(CuckooMap& map, size_t b1, size_t b2)
        NO_THREAD_SAFETY_ANALYSIS {
      size_t s1 = b1 & (kNumLocks - 1);
      size_t s2 = b2 & (kNumLocks - 1);
      if (s1 > s2) std::swap(s1, s2);
      first_ = &map.locks_[s1];
      first_->lock();
      if (s2 != s1) {
        second_ = &map.locks_[s2];
        second_->lock();
      }
    }
    // NO_THREAD_SAFETY_ANALYSIS: releases the dynamically chosen stripes in
    // reverse acquisition order.
    ~StripePair() NO_THREAD_SAFETY_ANALYSIS {
      if (second_ != nullptr) second_->unlock();
      first_->unlock();
    }
    StripePair(const StripePair&) = delete;
    StripePair& operator=(const StripePair&) = delete;

   private:
    SpinLock* first_ = nullptr;
    SpinLock* second_ = nullptr;
  };

  Value* FindInBuckets(EncodedKey key, size_t b1, size_t b2)
      REQUIRES_SHARED(resize_mutex_) {
    for (size_t b : {b1, b2}) {
      Bucket& bucket = buckets_[b];
      Tracer::OnAccess(bucket.keys, sizeof(bucket.keys));
      const int slot = Ops::MatchKey4(bucket.keys, key);
      if (slot >= 0) return &bucket.values[slot];
    }
    return nullptr;
  }

  Value* TryInsertEmpty(EncodedKey key, size_t b1, size_t b2)
      REQUIRES_SHARED(resize_mutex_) {
    for (size_t b : {b1, b2}) {
      Bucket& bucket = buckets_[b];
      Tracer::OnAccess(bucket.keys, sizeof(bucket.keys));
      const int slot = Ops::MatchKey4(bucket.keys, kEmptyKey);
      if (slot >= 0) {
        bucket.keys[slot] = key;
        bucket.values[slot] = Value{};
        return &bucket.values[slot];
      }
    }
    return nullptr;
  }

  /// BFS over displacement paths from {b1, b2}; executes the shortest path
  /// that reaches a bucket with a free slot. Returns false if no path within
  /// the depth bound exists (caller grows the table). Called with the resize
  /// lock held (shared).
  struct PathNode {
    size_t bucket;
    int parent;  // Index into the BFS node array, -1 for roots.
    int parent_slot;
  };

  bool MakeSpace(size_t b1, size_t b2) REQUIRES_SHARED(resize_mutex_)
      EXCLUDES(eviction_mutex_) {
    MutexLock eviction_guard(eviction_mutex_);
    std::vector<PathNode> nodes;
    nodes.push_back({b1, -1, -1});
    nodes.push_back({b2, -1, -1});
    size_t frontier_begin = 0;
    for (int depth = 0; depth < kMaxBfsDepth; ++depth) {
      const size_t frontier_end = nodes.size();
      for (size_t i = frontier_begin; i < frontier_end; ++i) {
        const size_t b = nodes[i].bucket;
        // Snapshot the keys under the stripe lock, then expand. The stripe
        // lock must be released before ExecutePath re-locks buckets.
        uint64_t keys[kSlotsPerBucket];
        bool has_free_slot = false;
        {
          StripePair stripes(*this, b, b);
          for (int slot = 0; slot < kSlotsPerBucket; ++slot) {
            keys[slot] = buckets_[b].keys[slot];
          }
          has_free_slot = Ops::MatchKey4(keys, kEmptyKey) >= 0;
        }
        if (has_free_slot) {
          // Free slot found: walk the path back, displacing items.
          return ExecutePath(nodes, static_cast<int>(i));
        }
        for (int slot = 0; slot < kSlotsPerBucket; ++slot) {
          const EncodedKey key = keys[slot];
          const size_t alt = ((HashKey(key) & mask_) == b ? HashKeyAlt(key)
                                                          : HashKey(key)) &
                             mask_;
          nodes.push_back({alt, static_cast<int>(i), slot});
        }
      }
      frontier_begin = frontier_end;
    }
    return false;
  }

  /// Moves items along the displacement path ending at nodes[leaf], freeing a
  /// slot in one of the two root buckets. Each hop locks the two buckets it
  /// touches and revalidates the key (a concurrent writer may have changed
  /// the slot; in that case we abort and let the caller retry).
  bool ExecutePath(const std::vector<PathNode>& nodes, int leaf)
      REQUIRES_SHARED(resize_mutex_) {
    // Collect the chain root -> leaf.
    std::vector<int> chain;
    for (int at = leaf; at != -1; at = nodes[at].parent) chain.push_back(at);
    std::reverse(chain.begin(), chain.end());
    // Move backwards: the last hop moves an item into the free bucket, etc.
    for (size_t i = chain.size(); i-- > 1;) {
      const PathNode& to_node = nodes[chain[i]];
      const PathNode& from_node = nodes[chain[i - 1]];
      const size_t from = from_node.bucket;
      const size_t to = to_node.bucket;
      const int from_slot = to_node.parent_slot;
      StripePair stripes(*this, from, to);
      Bucket& from_bucket = buckets_[from];
      Bucket& to_bucket = buckets_[to];
      const EncodedKey key = from_bucket.keys[from_slot];
      if (key == kEmptyKey) return true;  // Slot already freed; done early.
      // Revalidate that `to` is still this key's alternate bucket and find a
      // free slot in it.
      const size_t alt =
          ((HashKey(key) & mask_) == from ? HashKeyAlt(key) : HashKey(key)) &
          mask_;
      if (alt != to) return false;
      const int free_slot = Ops::MatchKey4(to_bucket.keys, kEmptyKey);
      if (free_slot < 0) return false;  // Raced; caller retries.
      to_bucket.keys[free_slot] = key;
      to_bucket.values[free_slot] = std::move(from_bucket.values[from_slot]);
      from_bucket.keys[from_slot] = kEmptyKey;
      from_bucket.values[from_slot] = Value{};
      kicks_.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }

  /// Doubles the bucket array and rehashes. Takes the resize lock
  /// exclusively, so all concurrent operations are drained first.
  /// `buckets_seen` is the bucket count the caller observed when its insert
  /// failed: if the table has already grown past it by the time the
  /// exclusive lock is acquired, the grow is skipped — otherwise N threads
  /// failing MakeSpace at the same size would stack N doublings (each
  /// waiting thread re-doubling a table that is no longer full).
  void Grow(size_t buckets_seen) EXCLUDES(resize_mutex_) {
    WriterMutexLock resize_guard(resize_mutex_);
    if (buckets_.size() != buckets_seen) return;  // Lost the grow race.
    RehashToLocked(buckets_.size() * 2);
  }

  /// Replaces the bucket array with one of `new_bucket_count` buckets and
  /// reinserts every item. Shared by Grow and Reserve.
  void RehashToLocked(size_t new_bucket_count) REQUIRES(resize_mutex_) {
    std::vector<Bucket> old_buckets(new_bucket_count, Bucket{});
    old_buckets.swap(buckets_);
    mask_ = buckets_.size() - 1;
    size_.store(0, std::memory_order_relaxed);
    for (Bucket& bucket : old_buckets) {
      for (int slot = 0; slot < kSlotsPerBucket; ++slot) {
        if (bucket.keys[slot] == kEmptyKey) continue;
        ReinsertLocked(bucket.keys[slot], std::move(bucket.values[slot]));
      }
    }
  }

  /// Insert used during Grow (exclusive lock held: no striping needed).
  /// The displacement walk is bounded; after a doubling the table is below
  /// 50% load, where 4-way bucketized cuckoo insertion cannot fail short of
  /// an adversarial hash collision — which the CHECK converts into a loud
  /// failure instead of a livelock.
  void ReinsertLocked(EncodedKey key, Value value) REQUIRES(resize_mutex_) {
    size_t b = HashKey(key) & mask_;
    for (int displacements = 0; displacements < 10000; ++displacements) {
      const size_t alt =
          ((HashKey(key) & mask_) == b ? HashKeyAlt(key) : HashKey(key)) &
          mask_;
      if (Value* slot = TryInsertEmpty(key, b, alt)) {
        *slot = std::move(value);
        size_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // Displace a pseudo-random victim from bucket b and continue with it.
      // Mixing the displacement counter in keeps the walk from entering a
      // deterministic cycle between a small set of keys.
      Bucket& bucket = buckets_[b];
      const int victim = static_cast<int>(
          ((HashKeyAlt(key) >> 32) ^ static_cast<uint64_t>(displacements)) %
          kSlotsPerBucket);
      std::swap(key, bucket.keys[victim]);
      std::swap(value, bucket.values[victim]);
      kicks_.fetch_add(1, std::memory_order_relaxed);
      // The victim just lost the slot in bucket b; continue at its other
      // candidate bucket.
      b = ((HashKey(key) & mask_) == b ? HashKeyAlt(key) : HashKey(key)) &
          mask_;
    }
    MEMAGG_CHECK(false && "cuckoo rehash failed below 50% load");
  }

  // The bucket *array* (its length and storage) is guarded by resize_mutex_:
  // shared holders may index it, only the exclusive holder (Grow) may swap
  // it. Bucket *contents* are additionally guarded by the stripe locks —
  // see StripePair.
  std::vector<Bucket> buckets_ GUARDED_BY(resize_mutex_);
  size_t mask_ GUARDED_BY(resize_mutex_) = 0;
  std::unique_ptr<SpinLock[]> locks_;
  mutable SharedMutex resize_mutex_{LockRank::kCuckooResize};
  Mutex eviction_mutex_ ACQUIRED_AFTER(resize_mutex_){
      LockRank::kCuckooEviction};
  std::atomic<size_t> size_{0};
  std::atomic<size_t> kicks_{0};
};

}  // namespace memagg

#endif  // MEMAGG_HASH_CUCKOO_MAP_H_
