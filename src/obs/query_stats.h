// Query-execution observability (the measurement substrate for perf work).
//
// QueryStats is a flat snapshot of one query's execution: per-phase timings
// (partition/build/sort/iterate/merge) plus monotonic counters reported by
// the operators and the morsel executor (rehashes, probe distances, cuckoo
// kicks, hybrid spills, morsels claimed, merge rounds, ...). StatsRegistry
// holds one cache-line-padded QueryStats shard per worker slot so parallel
// phases record without synchronization; Collect() merges the shards.
//
// Cost model: there is no per-row instrumentation anywhere. Counters are
// either cold-path (a rehash, a spill), once-per-morsel (claims), or
// computed on demand at collection time by walking the finished structure
// (probe distances). Phase timers are two clock reads per phase. Building
// with -DMEMAGG_DISABLE_STATS (cmake -DMEMAGG_STATS=OFF) compiles even
// those residues out: StatsConfig::kEnabled folds every recording helper to
// a no-op.

#ifndef MEMAGG_OBS_QUERY_STATS_H_
#define MEMAGG_OBS_QUERY_STATS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/arena.h"
#include "util/cycle_timer.h"

namespace memagg {

/// Compile-time stats switch; see the header comment.
struct StatsConfig {
#if defined(MEMAGG_DISABLE_STATS)
  static constexpr bool kEnabled = false;
#else
  static constexpr bool kEnabled = true;
#endif
};

/// Execution phases. kBuild and kIterate are the end-to-end operator phases
/// (recorded by the caller — ExecuteVectorQuery or a bench harness); the
/// others are operator-internal attribution *inside* those phases, recorded
/// by the operator itself (a radix build's partitioning passes, a sort
/// operator's sort kernel, a local-partition iterate's merge). Subphase
/// time is therefore contained in — not additive with — its enclosing
/// phase, and TotalCycles()/TotalMillis() sum only kBuild + kIterate.
enum class StatPhase : size_t {
  kPartition = 0,  ///< Subphase: histogram + scatter passes.
  kBuild,          ///< Phase: consuming input into the data structure.
  kSort,           ///< Subphase: the sort kernel.
  kIterate,        ///< Phase: emitting result rows.
  kMerge,          ///< Subphase: combining per-worker partial states.
};
inline constexpr size_t kNumStatPhases = 5;

/// Monotonic counters. kMaxMerged counters merge by max, the rest by sum.
enum class StatCounter : size_t {
  kRowsBuilt = 0,      ///< Input rows consumed.
  kGroupsOut,          ///< Result rows produced.
  kHashEntries,        ///< Entries resident in hash structures.
  kRehashes,           ///< Table growth/rebuild events.
  kProbeTotal,         ///< Sum of probe distances (open addressing).
  kProbeMax,           ///< Longest probe distance (max-merged).
  kChainMax,           ///< Longest collision chain (max-merged).
  kCuckooKicks,        ///< Cuckoo displacement moves.
  kHybridSpills,       ///< Hybrid hash→sort switch events.
  kRowsSorted,         ///< Rows passed through a sort kernel.
  kTreeNodes,          ///< Inner + leaf nodes of tree structures.
  kTreeHeight,         ///< Structure depth (max-merged).
  kPartitions,         ///< Partitions/buckets fanned out to.
  kMergeRounds,        ///< Per-worker partials merged at iterate time.
  kMorselsClaimed,     ///< Morsels claimed across all parallel loops.
  kWorkersUsed,        ///< Distinct workers that claimed work (max-merged).
  kArenaChunks,        ///< Arena chunks reserved (mem/arena.h).
  kArenaBytesReserved, ///< Bytes of arena chunk capacity reserved.
  kArenaBytesUsed,     ///< Bytes bump-allocated out of arenas.
  kArenaBytesWasted,   ///< Stranded chunk tails + freed-in-place bytes.
  kFreelistReuses,     ///< Allocations served from allocator freelists.
  kRehashesSaved,      ///< Rehashes avoided by cardinality-driven Reserve().
  kStrategySwitches,   ///< Adaptive operator mid-query strategy switches.
  kRowsMigrated,       ///< Rows' worth of partial state moved across a switch.
  kAdaptiveStrategy,   ///< Final adaptive strategy id + 1 (max-merged).
};
inline constexpr size_t kNumStatCounters = 25;

/// Stable lowercase identifier (JSON key) for a phase / counter.
const char* StatPhaseName(StatPhase phase);
const char* StatCounterName(StatCounter counter);

/// One query's (or one shard's) execution statistics. Plain data: cheap to
/// copy, merge, and serialize. Not internally synchronized — each shard has
/// a single writer (see StatsRegistry).
struct QueryStats {
  uint64_t phase_cycles[kNumStatPhases] = {};
  double phase_millis[kNumStatPhases] = {};
  uint64_t counters[kNumStatCounters] = {};

  void AddPhase(StatPhase phase, uint64_t cycles, double millis) {
    phase_cycles[static_cast<size_t>(phase)] += cycles;
    phase_millis[static_cast<size_t>(phase)] += millis;
  }

  void Add(StatCounter counter, uint64_t delta) {
    counters[static_cast<size_t>(counter)] += delta;
  }

  /// Raises a max-merged counter to at least `value`.
  void MaxOf(StatCounter counter, uint64_t value) {
    uint64_t& slot = counters[static_cast<size_t>(counter)];
    slot = std::max(slot, value);
  }

  uint64_t Get(StatCounter counter) const {
    return counters[static_cast<size_t>(counter)];
  }

  uint64_t PhaseCycles(StatPhase phase) const {
    return phase_cycles[static_cast<size_t>(phase)];
  }

  double PhaseMillis(StatPhase phase) const {
    return phase_millis[static_cast<size_t>(phase)];
  }

  /// End-to-end query time: build + iterate (subphases overlap those two
  /// and are excluded — see StatPhase).
  uint64_t TotalCycles() const {
    return PhaseCycles(StatPhase::kBuild) + PhaseCycles(StatPhase::kIterate);
  }

  double TotalMillis() const {
    return PhaseMillis(StatPhase::kBuild) + PhaseMillis(StatPhase::kIterate);
  }

  /// Folds `other` into this snapshot (sums, max for max-merged counters).
  void Merge(const QueryStats& other);

  /// Serializes the non-zero phases and counters as one JSON object, e.g.
  /// {"phases":{"build":{"cycles":12,"millis":0.5}},"counters":{...}}.
  std::string ToJson() const;
};

/// Folds an allocator-stats snapshot (mem/arena.h) into the arena counters.
/// Call once per allocator/arena at collection time; snapshots from the same
/// arena must not be added twice (see ArenaAllocator::Stats() ownership rule).
inline void AddAllocStats(QueryStats* stats, const AllocStats& alloc) {
  if (!StatsConfig::kEnabled || stats == nullptr) return;
  stats->Add(StatCounter::kArenaChunks, alloc.chunks);
  stats->Add(StatCounter::kArenaBytesReserved, alloc.bytes_reserved);
  stats->Add(StatCounter::kArenaBytesUsed, alloc.bytes_used);
  stats->Add(StatCounter::kArenaBytesWasted, alloc.bytes_wasted);
  stats->Add(StatCounter::kFreelistReuses, alloc.freelist_reuses);
}

/// Per-worker QueryStats shards. Shard `w` is written only by the worker
/// occupying slot `w` of a parallel loop (slots never run concurrently for
/// the same id — see exec/executor.h), so writes need no synchronization;
/// Collect() is called between parallel phases.
class StatsRegistry {
 public:
  explicit StatsRegistry(int num_workers)
      : shards_(static_cast<size_t>(num_workers < 1 ? 1 : num_workers)) {}

  int num_shards() const { return static_cast<int>(shards_.size()); }

  QueryStats& WorkerShard(int worker) {
    // Hard bounds check (not a modulo wrap): an out-of-range worker id
    // aliasing another worker's shard silently breaks the single-writer
    // contract above — two "slots" racing unsynchronized on one QueryStats.
    MEMAGG_CHECK(worker >= 0 && worker < num_shards());
    return shards_[static_cast<size_t>(worker)].stats;
  }

  /// Merged snapshot of every shard.
  QueryStats Collect() const {
    QueryStats merged;
    for (const Shard& shard : shards_) merged.Merge(shard.stats);
    return merged;
  }

  void Reset() {
    for (Shard& shard : shards_) shard.stats = QueryStats{};
  }

 private:
  struct alignas(64) Shard {
    QueryStats stats;
  };
  std::vector<Shard> shards_;
};

/// RAII phase timer. Records into `stats` on Stop()/destruction; a null
/// target (or a stats-disabled build) makes it a no-op.
class PhaseTimer {
 public:
  PhaseTimer(QueryStats* stats, StatPhase phase)
      : stats_(StatsConfig::kEnabled ? stats : nullptr), phase_(phase) {
    if (stats_ != nullptr) timer_.Start();
  }

  ~PhaseTimer() { Stop(); }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  void Stop() {
    if (stats_ == nullptr) return;
    timer_.Stop();
    stats_->AddPhase(phase_, timer_.ElapsedCycles(), timer_.ElapsedMillis());
    stats_ = nullptr;
  }

 private:
  CycleTimer timer_;
  QueryStats* stats_;
  StatPhase phase_;
};

}  // namespace memagg

#endif  // MEMAGG_OBS_QUERY_STATS_H_
