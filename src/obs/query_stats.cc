#include "obs/query_stats.h"

#include <cinttypes>
#include <cstdio>

namespace memagg {
namespace {

constexpr const char* kPhaseNames[kNumStatPhases] = {
    "partition", "build", "sort", "iterate", "merge"};

constexpr const char* kCounterNames[kNumStatCounters] = {
    "rows_built",    "groups_out",    "hash_entries",   "rehashes",
    "probe_total",   "probe_max",     "chain_max",      "cuckoo_kicks",
    "hybrid_spills", "rows_sorted",   "tree_nodes",     "tree_height",
    "partitions",    "merge_rounds",  "morsels_claimed", "workers_used",
    "arena_chunks",  "arena_bytes_reserved", "arena_bytes_used",
    "arena_bytes_wasted", "freelist_reuses", "rehashes_saved",
    "strategy_switches", "rows_migrated", "adaptive_strategy"};

bool MergesByMax(StatCounter counter) {
  switch (counter) {
    case StatCounter::kProbeMax:
    case StatCounter::kChainMax:
    case StatCounter::kTreeHeight:
    case StatCounter::kWorkersUsed:
    case StatCounter::kAdaptiveStrategy:
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* StatPhaseName(StatPhase phase) {
  return kPhaseNames[static_cast<size_t>(phase)];
}

const char* StatCounterName(StatCounter counter) {
  return kCounterNames[static_cast<size_t>(counter)];
}

void QueryStats::Merge(const QueryStats& other) {
  for (size_t p = 0; p < kNumStatPhases; ++p) {
    phase_cycles[p] += other.phase_cycles[p];
    phase_millis[p] += other.phase_millis[p];
  }
  for (size_t c = 0; c < kNumStatCounters; ++c) {
    if (MergesByMax(static_cast<StatCounter>(c))) {
      counters[c] = std::max(counters[c], other.counters[c]);
    } else {
      counters[c] += other.counters[c];
    }
  }
}

std::string QueryStats::ToJson() const {
  std::string out = "{\"phases\":{";
  char buffer[160];
  bool first = true;
  for (size_t p = 0; p < kNumStatPhases; ++p) {
    if (phase_cycles[p] == 0 && phase_millis[p] == 0.0) continue;
    std::snprintf(buffer, sizeof(buffer),
                  "%s\"%s\":{\"cycles\":%" PRIu64 ",\"millis\":%.3f}",
                  first ? "" : ",", kPhaseNames[p], phase_cycles[p],
                  phase_millis[p]);
    out += buffer;
    first = false;
  }
  out += "},\"counters\":{";
  first = true;
  for (size_t c = 0; c < kNumStatCounters; ++c) {
    if (counters[c] == 0) continue;
    std::snprintf(buffer, sizeof(buffer), "%s\"%s\":%" PRIu64,
                  first ? "" : ",", kCounterNames[c], counters[c]);
    out += buffer;
    first = false;
  }
  out += "}}";
  return out;
}

}  // namespace memagg
