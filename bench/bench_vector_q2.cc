// Vector aggregation Q2 (AVG GROUP BY): the algebraic query the paper
// describes in Table 1 but omits from its result figures "due to space
// constraints and the similarity between Algebraic and Distributive
// functions" (Section 5.2). Included here for completeness so all seven
// Table 1 queries have a harness; expect Figure 4-like shapes.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/engine.h"
#include "data/dataset.h"

namespace memagg {
namespace {

int Run(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const uint64_t records =
      static_cast<uint64_t>(flags.GetInt("records", 4000000));
  const auto cardinalities = CardinalitySweep(flags, records);
  const auto labels = flags.GetList("algorithms", SerialLabels());
  const auto dataset_names =
      flags.GetList("datasets", {"Rseq", "Rseq-Shf", "Hhit", "Hhit-Shf",
                                 "Zipf", "MovC"});
  const auto values = GenerateValues(records, 1000000, 90);

  PrintBanner("Q2 (vector AVG, algebraic) - " + std::to_string(records) +
                  " records",
              "completeness companion to Figure 4; not plotted in the paper");
  std::printf("dataset,cardinality,algorithm,total_cycles,build_ms,iterate_ms\n");

  BenchReport report("vector_q2");
  report.SetParam("records", records);

  for (const std::string& dataset_name : dataset_names) {
    const Distribution distribution = DistributionFromName(dataset_name);
    for (uint64_t cardinality : cardinalities) {
      DatasetSpec spec{distribution, records, cardinality, 91};
      if (!IsValidSpec(spec)) continue;
      const auto keys = GenerateKeys(spec);
      for (const std::string& label : labels) {
        const VectorQueryExecution execution = ExecuteVectorQuery(
            label, AggregateFunction::kAverage, keys.data(), values.data(),
            keys.size(), records);
        const QueryStats& stats = execution.stats;
        std::printf("%s,%llu,%s,%llu,%.1f,%.1f\n", dataset_name.c_str(),
                    static_cast<unsigned long long>(cardinality),
                    label.c_str(),
                    static_cast<unsigned long long>(stats.TotalCycles()),
                    stats.PhaseMillis(StatPhase::kBuild),
                    stats.PhaseMillis(StatPhase::kIterate));
        report.AddRow(dataset_name + "/" + label, cardinality,
                      stats.TotalCycles(), stats.TotalMillis(), &stats);
        std::fflush(stdout);
      }
    }
  }
  report.WriteFile();
  return 0;
}

}  // namespace
}  // namespace memagg

int main(int argc, char** argv) { return memagg::Run(argc, argv); }
