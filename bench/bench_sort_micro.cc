// Figure 2: sorting-algorithm microbenchmark.
//
// Times five sort algorithms (MSB Radix, LSB Radix, Introsort, Spreadsort,
// Quicksort) sorting --records keys (paper: 10M) drawn from the five Section
// 3.1.5 distributions. Output: one row per (distribution, algorithm) with
// the time in milliseconds, matching the Figure 2 bars.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/sorters.h"
#include "data/dataset.h"

namespace memagg {
namespace {

struct NamedSort {
  std::string name;
  std::function<void(uint64_t*, uint64_t*)> fn;
};

int Run(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const uint64_t records =
      static_cast<uint64_t>(flags.GetInt("records", 10000000));

  const std::vector<NamedSort> sorts = {
      {"MSB Radix Sort",
       [](uint64_t* f, uint64_t* l) { MsbRadixSorter{}(f, l, IdentityKey{}); }},
      {"LSB Radix Sort",
       [](uint64_t* f, uint64_t* l) { LsbRadixSorter{}(f, l, IdentityKey{}); }},
      {"Introsort",
       [](uint64_t* f, uint64_t* l) { IntrosortSorter{}(f, l, IdentityKey{}); }},
      {"Spreadsort",
       [](uint64_t* f, uint64_t* l) {
         SpreadsortSorter{}(f, l, IdentityKey{});
       }},
      {"Quicksort",
       [](uint64_t* f, uint64_t* l) { QuicksortSorter{}(f, l, IdentityKey{}); }},
  };

  PrintBanner("Figure 2: Sort Algorithm Microbenchmark",
              "time to sort " + std::to_string(records) +
                  " keys per distribution");
  std::printf("distribution,algorithm,time_ms,cycles\n");

  for (MicroDistribution d : kAllMicroDistributions) {
    const auto input = GenerateMicroKeys(d, records);
    for (const NamedSort& sort : sorts) {
      std::vector<uint64_t> keys = input;  // Fresh copy per run.
      const BenchTiming timing = TimeOnce(
          [&] { sort.fn(keys.data(), keys.data() + keys.size()); });
      std::printf("%s,%s,%.1f,%llu\n", MicroDistributionName(d).c_str(),
                  sort.name.c_str(), timing.millis,
                  static_cast<unsigned long long>(timing.cycles));
      std::fflush(stdout);
    }
  }
  return 0;
}

}  // namespace
}  // namespace memagg

int main(int argc, char** argv) { return memagg::Run(argc, argv); }
