// Tables 6 and 7: peak memory usage for Q1 and Q3 on Rseq with 10^3 groups,
// dataset size swept 10^5..10^8.
//
// The paper used `/usr/bin/time -v` per run; this bench forks a child
// process per configuration and reads its VmHWM, giving each run an isolated
// peak-RSS watermark. It also reports each operator's own data-structure
// byte estimate for cross-checking.
//
// Paper sweep: 1e5..1e8 records. Container default caps at 1e7 (override
// with --sizes=100k,1M,10M,100M).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/engine.h"
#include "data/dataset.h"
#include "util/memory_tracker.h"

namespace memagg {
namespace {

int Run(int argc, char** argv) {
  CliFlags flags(argc, argv);
  std::vector<uint64_t> sizes;
  for (const std::string& text :
       flags.GetList("sizes", {"100k", "1M", "10M"})) {
    sizes.push_back(static_cast<uint64_t>(ParseHumanInt(text)));
  }
  const uint64_t cardinality =
      static_cast<uint64_t>(flags.GetInt("cardinality", 1000));
  const auto labels = flags.GetList("algorithms", SerialLabels());

  PrintBanner("Tables 6-7: Peak Memory Usage - Q1/Q3 on Rseq, " +
                  std::to_string(cardinality) + " groups",
              "peak RSS (MB) measured in a forked child per configuration");
  std::printf("query,records,algorithm,peak_rss_mb,ds_bytes_mb\n");

  for (const char* query : {"Q1", "Q3"}) {
    const bool holistic = std::string(query) == "Q3";
    for (uint64_t records : sizes) {
      if (!IsValidSpec({Distribution::kRseq, records, cardinality, 82})) {
        continue;
      }
      for (const std::string& label : labels) {
        // Both the peak RSS and the operator's own byte estimate are
        // measured in the forked child, so the parent process never holds
        // large allocations that would contaminate later children.
        uint64_t ds_bytes = 0;
        const uint64_t peak = MeasurePeakRssInChild(
            [&]() -> uint64_t {
              DatasetSpec spec{Distribution::kRseq, records, cardinality, 82};
              auto keys = GenerateKeys(spec);
              std::vector<uint64_t> values;
              if (holistic) values = GenerateValues(records, 1000000, 83);
              auto aggregator = MakeVectorAggregator(
                  label,
                  holistic ? AggregateFunction::kMedian
                           : AggregateFunction::kCount,
                  records);
              if (CategoryOfLabel(label) == AlgorithmCategory::kSort) {
                // The paper's sort operators consume the preloaded dataset
                // in place; hand the columns over instead of copying.
                aggregator->BuildOwned(std::move(keys), std::move(values));
              } else {
                aggregator->Build(keys.data(),
                                  holistic ? values.data() : nullptr,
                                  keys.size());
              }
              VectorResult result = aggregator->Iterate();
              if (result.empty()) std::abort();
              return aggregator->DataStructureBytes();
            },
            &ds_bytes);
        const double ds_mb =
            static_cast<double>(ds_bytes) / (1024.0 * 1024.0);
        std::printf("%s,%llu,%s,%.2f,%.2f\n", query,
                    static_cast<unsigned long long>(records), label.c_str(),
                    static_cast<double>(peak) / (1024.0 * 1024.0), ds_mb);
        std::fflush(stdout);
      }
    }
  }

  // Allocator ablation (paper Section 6): the paper swept five malloc
  // libraries; this repo isolates the same dimension as arena-backed vs
  // global-new twins of the chaining-map and ART build paths. Runs
  // in-process through ExecuteVectorQuery so the QueryStats rows carry the
  // allocator counters (arena_chunks, arena_bytes_*, freelist_reuses) into
  // BENCH_memory.json.
  BenchReport report("memory");
  report.SetParam("cardinality", cardinality);
  report.SetParam("query", "Q1");
  const auto alloc_labels = flags.GetList(
      "alloc_algorithms", {"Hash_SC", "Hash_SC_Global", "ART", "ART_Global"});
  std::printf("\n# Allocator ablation: arena vs global new (Q1 count)\n");
  std::printf(
      "records,algorithm,millis,arena_chunks,arena_bytes_reserved,"
      "arena_bytes_used\n");
  for (uint64_t records : sizes) {
    const DatasetSpec spec{Distribution::kRseq, records, cardinality, 82};
    if (!IsValidSpec(spec)) continue;
    const auto keys = GenerateKeys(spec);
    for (const std::string& label : alloc_labels) {
      const VectorQueryExecution execution =
          ExecuteVectorQuery(label, AggregateFunction::kCount, keys.data(),
                             nullptr, keys.size(), keys.size());
      if (execution.result.empty()) std::abort();
      const QueryStats& stats = execution.stats;
      report.AddRow(label, records, stats.TotalCycles(), stats.TotalMillis(),
                    &stats);
      std::printf("%llu,%s,%.3f,%llu,%llu,%llu\n",
                  static_cast<unsigned long long>(records), label.c_str(),
                  stats.TotalMillis(),
                  static_cast<unsigned long long>(
                      stats.Get(StatCounter::kArenaChunks)),
                  static_cast<unsigned long long>(
                      stats.Get(StatCounter::kArenaBytesReserved)),
                  static_cast<unsigned long long>(
                      stats.Get(StatCounter::kArenaBytesUsed)));
      std::fflush(stdout);
    }
  }
  report.WriteFile();
  return 0;
}

}  // namespace
}  // namespace memagg

int main(int argc, char** argv) { return memagg::Run(argc, argv); }
