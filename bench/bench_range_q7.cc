// Figure 8: range-search aggregation Q7 over the tree structures.
//
// Measures (a) the time to range-scan a prebuilt tree for ranges covering
// 25% / 50% / 75% of the group-by cardinality (Figures 8a/8b) and (b) the
// time to build the tree at low and high cardinality (Figure 8c).
//
// Paper scale: 100M records. Container default: 4M.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/engine.h"
#include "data/dataset.h"

namespace memagg {
namespace {

int Run(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const uint64_t records =
      static_cast<uint64_t>(flags.GetInt("records", 4000000));
  std::vector<uint64_t> cardinalities;
  for (const std::string& text :
       flags.GetList("cardinalities", {"1000", "1000000"})) {
    cardinalities.push_back(static_cast<uint64_t>(ParseHumanInt(text)));
  }
  const auto labels = flags.GetList("algorithms", TreeLabels());

  PrintBanner("Figure 8: Range Search Aggregation Q7 - " +
                  std::to_string(records) + " records",
              "build time per tree, then prebuilt range scans at 25/50/75% "
              "of the cardinality (smaller ranges first, as in the paper)");
  std::printf(
      "cardinality,algorithm,build_cycles,range_pct,range_cycles,groups\n");

  for (uint64_t cardinality : cardinalities) {
    if (cardinality > records) continue;
    DatasetSpec spec{Distribution::kRseqShuffled, records, cardinality, 85};
    if (!IsValidSpec(spec)) continue;
    const auto keys = GenerateKeys(spec);
    for (const std::string& label : labels) {
      auto aggregator =
          MakeVectorAggregator(label, AggregateFunction::kCount, records);
      const BenchTiming build = TimeOnce(
          [&] { aggregator->Build(keys.data(), nullptr, keys.size()); });
      for (int pct : {25, 50, 75}) {
        const uint64_t hi = cardinality * pct / 100;
        VectorResult result;
        const BenchTiming scan =
            TimeOnce([&] { result = aggregator->IterateRange(0, hi); });
        std::printf("%llu,%s,%llu,%d,%llu,%zu\n",
                    static_cast<unsigned long long>(cardinality),
                    label.c_str(),
                    static_cast<unsigned long long>(build.cycles), pct,
                    static_cast<unsigned long long>(scan.cycles),
                    result.size());
        std::fflush(stdout);
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace memagg

int main(int argc, char** argv) { return memagg::Run(argc, argv); }
