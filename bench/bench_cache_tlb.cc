// Figure 6: CPU cache misses and data-TLB misses for Q1 and Q3 on the Rseq
// dataset at low (10^3) and high (10^6) cardinality.
//
// The paper used the `perf` CLI; this bench reads the same kernel counters
// in-process via perf_event_open (--mode=perf). Where the container forbids
// perf, --mode=sim (the default under --mode=auto when perf is unavailable)
// replays the operators' exact data-structure access traces through a
// set-associative cache/TLB model configured to the paper's i7-6700HQ
// (see src/sim/). Simulated runs default to fewer records — every access is
// modelled — and report counters in the same row format.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/engine.h"
#include "data/dataset.h"
#include "sim/cache_model.h"
#include "sim/sim_tracer.h"
#include "sim/traced_engine.h"
#include "util/perf_counters.h"

namespace memagg {
namespace {

int Run(int argc, char** argv) {
  CliFlags flags(argc, argv);
  PerfCounters counters;
  std::string mode = flags.GetString("mode", "auto");
  if (mode == "auto") mode = counters.available() ? "perf" : "sim";
  const bool simulated = mode == "sim";
  const uint64_t records = static_cast<uint64_t>(
      flags.GetInt("records", simulated ? 1000000 : 4000000));
  std::vector<uint64_t> cardinalities;
  for (const std::string& text :
       flags.GetList("cardinalities", {"1000", "1000000"})) {
    cardinalities.push_back(static_cast<uint64_t>(ParseHumanInt(text)));
  }
  const auto labels = flags.GetList("algorithms", SerialLabels());
  const auto values = GenerateValues(records, 1000000, 80);

  PrintBanner(
      "Figure 6: Cache and TLB misses - Rseq " + std::to_string(records) +
          " records",
      simulated
          ? "mode=sim: trace-driven i7-6700HQ cache/TLB model (hardware perf "
            "counters unavailable or --mode=sim requested)"
          : "mode=perf: hardware counters via perf_event_open");
  std::printf(
      "query,cardinality,algorithm,cache_misses,dtlb_misses,mode\n");

  for (const char* query : {"Q1", "Q3"}) {
    const bool holistic = std::string(query) == "Q3";
    for (uint64_t cardinality : cardinalities) {
      if (cardinality > records) continue;
      DatasetSpec spec{Distribution::kRseq, records, cardinality, 81};
      if (!IsValidSpec(spec)) continue;
      const auto keys = GenerateKeys(spec);
      for (const std::string& label : labels) {
        uint64_t cache_misses = 0;
        uint64_t tlb_misses = 0;
        const AggregateFunction function = holistic
                                               ? AggregateFunction::kMedian
                                               : AggregateFunction::kCount;
        if (simulated) {
          CacheModel model;
          ScopedCacheSim bind(&model);
          auto aggregator =
              MakeTracedVectorAggregator(label, function, records);
          aggregator->Build(keys.data(), holistic ? values.data() : nullptr,
                            keys.size());
          VectorResult result = aggregator->Iterate();
          cache_misses = model.stats().llc_misses;
          tlb_misses = model.stats().tlb_misses;
        } else {
          auto aggregator = MakeVectorAggregator(label, function, records);
          counters.Start();
          aggregator->Build(keys.data(), holistic ? values.data() : nullptr,
                            keys.size());
          VectorResult result = aggregator->Iterate();
          const PerfReading reading = counters.Stop();
          cache_misses = reading.cache_misses;
          tlb_misses = reading.dtlb_misses;
        }
        std::printf("%s,%llu,%s,%llu,%llu,%s\n", query,
                    static_cast<unsigned long long>(cardinality),
                    label.c_str(),
                    static_cast<unsigned long long>(cache_misses),
                    static_cast<unsigned long long>(tlb_misses),
                    mode.c_str());
        std::fflush(stdout);
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace memagg

int main(int argc, char** argv) { return memagg::Run(argc, argv); }
