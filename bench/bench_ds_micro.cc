// Figure 3: data-structure microbenchmark.
//
// A store-and-lookup workload over every data structure (including Ttree,
// which this experiment eliminates from the rest of the paper): the build
// phase inserts key -> value for --records random keys, the iterate phase
// reads back every stored item. Output: one row per structure with build and
// iterate cycle counts, matching the Figure 3 stacked bars.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/engine.h"
#include "data/dataset.h"

namespace memagg {
namespace {

int Run(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const uint64_t records =
      static_cast<uint64_t>(flags.GetInt("records", 10000000));
  // Random keys over a wide range, like the paper's store/lookup workload.
  const auto keys = GenerateMicroKeys(MicroDistribution::kRandom1To1M, records);

  // All Table 3 structures plus Ttree. Sort algorithms "build" by sorting
  // and "iterate" by scanning, per Section 3.
  std::vector<std::string> labels = SerialLabels();
  labels.push_back("Ttree");

  PrintBanner("Figure 3: Data Structure Microbenchmark",
              "build vs iterate, " + std::to_string(records) +
                  " random keys (1-1M); hash tables sized to the input");
  std::printf("structure,build_cycles,iterate_cycles,build_ms,iterate_ms\n");

  for (const std::string& label : labels) {
    auto aggregator =
        MakeVectorAggregator(label, AggregateFunction::kCount, records);
    const BenchTiming build = TimeOnce(
        [&] { aggregator->Build(keys.data(), nullptr, keys.size()); });
    size_t rows = 0;
    const BenchTiming iterate =
        TimeOnce([&] { rows = aggregator->Iterate().size(); });
    std::printf("%s,%llu,%llu,%.1f,%.1f\n", label.c_str(),
                static_cast<unsigned long long>(build.cycles),
                static_cast<unsigned long long>(iterate.cycles), build.millis,
                iterate.millis);
    std::fflush(stdout);
    if (rows == 0) std::fprintf(stderr, "warning: empty result for %s\n",
                                label.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace memagg

int main(int argc, char** argv) { return memagg::Run(argc, argv); }
