// Figure 3: data-structure microbenchmark.
//
// A store-and-lookup workload over every data structure (including Ttree,
// which this experiment eliminates from the rest of the paper): the build
// phase inserts key -> value for --records random keys, the iterate phase
// reads back every stored item. Output: one row per structure with build and
// iterate cycle counts, matching the Figure 3 stacked bars.
//
// On top of the paper's figure, a SIMD-lane section builds the two probed
// hash maps with each SimdOps lane pinned (LinearProbingMap<..., ScalarOps>
// etc.) so the probe-loop vectorization shows up at the data-structure
// level, not just in bench_simd's kernel loops. Everything is also recorded
// to BENCH_ds_micro.json for tools/bench_compare.py.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/engine.h"
#include "data/dataset.h"
#include "hash/dense_map.h"
#include "hash/linear_probing_map.h"
#include "util/simd.h"

namespace memagg {
namespace {

/// Build + lookup of one lane-pinned map type over the shared key set.
/// Reports build cycles (x = records) and lookup cycles under the given
/// series names; `sum` guards against dead-code elimination.
template <typename Map>
void RunLaneMap(BenchReport& report, const std::string& map_name,
                const char* lane, const std::vector<uint64_t>& keys) {
  Map map(keys.size());
  const BenchTiming build = TimeOnce([&] {
    // lint:allow(raw-key-type): legacy paper bench over raw synthetic keys
    for (const uint64_t key : keys) map.GetOrInsert(key) += 1;
  });
  uint64_t sum = 0;
  const BenchTiming lookup = TimeOnce([&] {
    // lint:allow(raw-key-type): legacy paper bench over raw synthetic keys
    for (const uint64_t key : keys) {
      const uint64_t* value = map.Find(key);
      if (value != nullptr) sum += *value;
    }
  });
  const std::string series = map_name + "/" + lane;
  std::printf("%s,%llu,%llu,%.1f,%.1f\n", series.c_str(),
              static_cast<unsigned long long>(build.cycles),
              static_cast<unsigned long long>(lookup.cycles), build.millis,
              lookup.millis);
  std::fflush(stdout);
  report.AddRow(series + "/build", keys.size(), build.cycles, build.millis);
  report.AddRow(series + "/lookup", keys.size(), lookup.cycles,
                lookup.millis);
  if (sum < keys.size()) {
    std::fprintf(stderr, "warning: lookup sum %llu below record count\n",
                 static_cast<unsigned long long>(sum));
  }
}

int Run(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const uint64_t records =
      static_cast<uint64_t>(flags.GetInt("records", 10000000));
  // Random keys over a wide range, like the paper's store/lookup workload.
  const auto keys = GenerateMicroKeys(MicroDistribution::kRandom1To1M, records);

  // All Table 3 structures plus Ttree. Sort algorithms "build" by sorting
  // and "iterate" by scanning, per Section 3.
  std::vector<std::string> labels = SerialLabels();
  labels.push_back("Ttree");

  PrintBanner("Figure 3: Data Structure Microbenchmark",
              "build vs iterate, " + std::to_string(records) +
                  " random keys (1-1M); hash tables sized to the input");
  std::printf("structure,build_cycles,iterate_cycles,build_ms,iterate_ms\n");

  BenchReport report("ds_micro");
  report.SetParam("records", records);
  report.SetParam("active_lane", simd::DispatchOps::Name());

  for (const std::string& label : labels) {
    auto aggregator =
        MakeVectorAggregator(label, AggregateFunction::kCount, records);
    const BenchTiming build = TimeOnce(
        [&] { aggregator->Build(keys.data(), nullptr, keys.size()); });
    size_t rows = 0;
    const BenchTiming iterate =
        TimeOnce([&] { rows = aggregator->Iterate().size(); });
    std::printf("%s,%llu,%llu,%.1f,%.1f\n", label.c_str(),
                static_cast<unsigned long long>(build.cycles),
                static_cast<unsigned long long>(iterate.cycles), build.millis,
                iterate.millis);
    std::fflush(stdout);
    report.AddRow(label + "/build", records, build.cycles, build.millis);
    report.AddRow(label + "/iterate", records, iterate.cycles,
                  iterate.millis);
    if (rows == 0) std::fprintf(stderr, "warning: empty result for %s\n",
                                label.c_str());
  }

  // SIMD-lane ablation of the probed maps: same keys, lane pinned per run.
  std::printf("# lane-pinned probe maps (series,build_cycles,lookup_cycles,"
              "build_ms,lookup_ms)\n");
  using LpScalar =
      LinearProbingMap<uint64_t, NullTracer, ArenaAllocator, simd::ScalarOps>;
  using LpDispatch = LinearProbingMap<uint64_t, NullTracer, ArenaAllocator,
                                      simd::DispatchOps>;
  using DenseScalar = DenseMap<uint64_t, NullTracer, simd::ScalarOps>;
  using DenseDispatch = DenseMap<uint64_t, NullTracer, simd::DispatchOps>;
  RunLaneMap<LpScalar>(report, "Hash_LP", "scalar", keys);
  RunLaneMap<LpDispatch>(report, "Hash_LP", "dispatch", keys);
  RunLaneMap<DenseScalar>(report, "Hash_Dense", "scalar", keys);
  RunLaneMap<DenseDispatch>(report, "Hash_Dense", "dispatch", keys);

  report.WriteFile();
  return 0;
}

}  // namespace
}  // namespace memagg

int main(int argc, char** argv) { return memagg::Run(argc, argv); }
