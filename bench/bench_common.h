// Shared helpers for the per-figure benchmark binaries.
//
// Every bench prints a header comment describing the experiment, then CSV
// rows (one per paper data point) so the figures can be re-plotted directly.
// Common flags: --records=N (dataset size), --threads=T, --cardinalities=...
// (see each binary's --help).

#ifndef MEMAGG_BENCH_BENCH_COMMON_H_
#define MEMAGG_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "util/cli.h"
#include "util/cycle_timer.h"

namespace memagg {

/// Timing of one measured region.
struct BenchTiming {
  uint64_t cycles = 0;
  double millis = 0.0;
};

/// Runs `fn` once and returns its cycle/wall timing.
inline BenchTiming TimeOnce(const std::function<void()>& fn) {
  CycleTimer timer;
  timer.Start();
  fn();
  timer.Stop();
  return {timer.ElapsedCycles(), timer.ElapsedMillis()};
}

/// Parses --cardinalities=100,1000,... (defaults to the paper's sweep,
/// capped so the smallest of them stays below the record count).
inline std::vector<uint64_t> CardinalitySweep(const CliFlags& flags,
                                              uint64_t records) {
  std::vector<uint64_t> cardinalities;
  for (const std::string& text : flags.GetList(
           "cardinalities",
           {"100", "1000", "10000", "100000", "1000000", "10000000"})) {
    const uint64_t c = static_cast<uint64_t>(ParseHumanInt(text));
    if (c <= records) cardinalities.push_back(c);
  }
  return cardinalities;
}

/// Prints the standard experiment banner.
inline void PrintBanner(const std::string& experiment,
                        const std::string& description) {
  std::printf("# %s\n# %s\n", experiment.c_str(), description.c_str());
}

}  // namespace memagg

#endif  // MEMAGG_BENCH_BENCH_COMMON_H_
