// Shared helpers for the per-figure benchmark binaries.
//
// Every bench prints a header comment describing the experiment, then CSV
// rows (one per paper data point) so the figures can be re-plotted directly.
// Common flags: --records=N (dataset size), --threads=T, --cardinalities=...
// (see each binary's --help).

#ifndef MEMAGG_BENCH_BENCH_COMMON_H_
#define MEMAGG_BENCH_BENCH_COMMON_H_

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/query_stats.h"
#include "util/cli.h"
#include "util/cycle_timer.h"

namespace memagg {

/// Timing of one measured region.
struct BenchTiming {
  uint64_t cycles = 0;
  double millis = 0.0;
};

/// Runs `fn` once and returns its cycle/wall timing.
inline BenchTiming TimeOnce(const std::function<void()>& fn) {
  CycleTimer timer;
  timer.Start();
  fn();
  timer.Stop();
  return {timer.ElapsedCycles(), timer.ElapsedMillis()};
}

/// Parses --cardinalities=100,1000,... (defaults to the paper's sweep,
/// capped so the smallest of them stays below the record count).
inline std::vector<uint64_t> CardinalitySweep(const CliFlags& flags,
                                              uint64_t records) {
  std::vector<uint64_t> cardinalities;
  for (const std::string& text : flags.GetList(
           "cardinalities",
           {"100", "1000", "10000", "100000", "1000000", "10000000"})) {
    const uint64_t c = static_cast<uint64_t>(ParseHumanInt(text));
    if (c <= records) {
      cardinalities.push_back(c);
    } else {
      std::printf("# dropped cardinality %" PRIu64
                  " (exceeds --records=%" PRIu64 ")\n",
                  c, records);
    }
  }
  return cardinalities;
}

/// Prints the standard experiment banner.
inline void PrintBanner(const std::string& experiment,
                        const std::string& description) {
  std::printf("# %s\n# %s\n", experiment.c_str(), description.c_str());
}

/// Machine-readable run report written next to the CSV output.
///
/// Each bench binary keeps printing its CSV rows to stdout (the human /
/// re-plotting interface) and additionally records every data point here;
/// `WriteFile()` emits `BENCH_<bench>.json` for `tools/bench_compare.py`.
/// Schema (documented in EXPERIMENTS.md):
///
///   {"bench": "<name>",
///    "params": {"records": "1000000", ...},
///    "rows": [{"series": "Hash_LP", "x": 1000,
///              "cycles": 12345, "millis": 1.25,
///              "stats": {"phases": {...}, "counters": {...}},
///              "meta": {"algorithm": "Adaptive",
///                       "switch_trace": "local-central@0->radix@65536"}},
///             ...]}
///
/// `series` is the line label (algorithm/engine), `x` the sweep coordinate
/// (cardinality, threads, ...), `stats` the optional QueryStats snapshot.
/// `meta` is an optional string->string object for decision provenance: the
/// resolved algorithm label behind an "auto"/adaptive run and its switch
/// trace, so `tools/bench_compare.py` can diff decision quality between
/// runs, not just timings.
class BenchReport {
 public:
  explicit BenchReport(std::string bench) : bench_(std::move(bench)) {}

  void SetParam(const std::string& key, const std::string& value) {
    params_.push_back({key, value});
  }

  void SetParam(const std::string& key, uint64_t value) {
    SetParam(key, std::to_string(value));
  }

  void AddRow(const std::string& series, uint64_t x, uint64_t cycles,
              double millis, const QueryStats* stats = nullptr) {
    Row row;
    row.series = series;
    row.x = x;
    row.cycles = cycles;
    row.millis = millis;
    if (stats != nullptr) row.stats_json = stats->ToJson();
    rows_.push_back(std::move(row));
  }

  /// Attaches a meta key/value to the most recently added row (call after
  /// AddRow; decision provenance such as the resolved label or the adaptive
  /// operator's switch trace).
  void SetRowMeta(const std::string& key, const std::string& value) {
    if (!rows_.empty()) rows_.back().meta.push_back({key, value});
  }

  /// Writes `BENCH_<bench>.json` in the working directory (or `path` if
  /// given). Returns false if the file could not be opened.
  bool WriteFile(const std::string& path = "") const {
    const std::string file_name =
        path.empty() ? "BENCH_" + bench_ + ".json" : path;
    FILE* file = std::fopen(file_name.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "# failed to open %s for writing\n",
                   file_name.c_str());
      return false;
    }
    std::fprintf(file, "{\"bench\": \"%s\",\n \"params\": {",
                 JsonEscaped(bench_).c_str());
    for (size_t i = 0; i < params_.size(); ++i) {
      std::fprintf(file, "%s\"%s\": \"%s\"", i == 0 ? "" : ", ",
                   JsonEscaped(params_[i].first).c_str(),
                   JsonEscaped(params_[i].second).c_str());
    }
    std::fprintf(file, "},\n \"rows\": [");
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      std::fprintf(file,
                   "%s\n  {\"series\": \"%s\", \"x\": %" PRIu64
                   ", \"cycles\": %" PRIu64 ", \"millis\": %.6f",
                   i == 0 ? "" : ",", JsonEscaped(row.series).c_str(), row.x,
                   row.cycles, row.millis);
      if (!row.stats_json.empty()) {
        std::fprintf(file, ", \"stats\": %s", row.stats_json.c_str());
      }
      if (!row.meta.empty()) {
        std::fprintf(file, ", \"meta\": {");
        for (size_t j = 0; j < row.meta.size(); ++j) {
          std::fprintf(file, "%s\"%s\": \"%s\"", j == 0 ? "" : ", ",
                       JsonEscaped(row.meta[j].first).c_str(),
                       JsonEscaped(row.meta[j].second).c_str());
        }
        std::fprintf(file, "}");
      }
      std::fprintf(file, "}");
    }
    std::fprintf(file, "\n ]}\n");
    std::fclose(file);
    std::printf("# wrote %s (%zu rows)\n", file_name.c_str(), rows_.size());
    return true;
  }

 private:
  struct Row {
    std::string series;
    uint64_t x = 0;
    uint64_t cycles = 0;
    double millis = 0.0;
    std::string stats_json;  // Pre-rendered JSON object, or empty.
    std::vector<std::pair<std::string, std::string>> meta;
  };

  static std::string JsonEscaped(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string bench_;
  std::vector<std::pair<std::string, std::string>> params_;
  std::vector<Row> rows_;
};

}  // namespace memagg

#endif  // MEMAGG_BENCH_BENCH_COMMON_H_
