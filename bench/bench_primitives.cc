// google-benchmark microbenchmarks for the primitive operations underneath
// the aggregation operators: hash mixing, map insert/lookup, tree
// insert/lookup/iterate, and the sort kernels at several input sizes.
// Complements the per-figure harnesses with statistically repeated timings.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/sorters.h"
#include "data/dataset.h"
#include "hash/chaining_map.h"
#include "hash/dense_map.h"
#include "hash/hash_fn.h"
#include "hash/linear_probing_map.h"
#include "hash/sparse_map.h"
#include "tree/art.h"
#include "tree/btree.h"
#include "tree/judy.h"
#include "util/rng.h"

namespace memagg {
namespace {

void BM_HashKey(benchmark::State& state) {
  // lint:allow(raw-key-type): hash micro-bench feeds the raw mixer, no codec
  uint64_t key = 0x123456789abcdefULL;
  for (auto _ : state) {
    key = HashKey(key);
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_HashKey);

std::vector<uint64_t> RandomKeys(size_t n, uint64_t range) {
  Rng rng(91);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = rng.NextBounded(range);
  return keys;
}

template <typename Map>
void MapInsertBenchmark(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto keys = RandomKeys(n, n);
  for (auto _ : state) {
    Map map(n);
    for (uint64_t k : keys) ++map.GetOrInsert(k);
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

void BM_LinearProbingInsert(benchmark::State& state) {
  MapInsertBenchmark<LinearProbingMap<uint64_t>>(state);
}
BENCHMARK(BM_LinearProbingInsert)->Arg(1 << 14)->Arg(1 << 18);

void BM_ChainingInsert(benchmark::State& state) {
  MapInsertBenchmark<ChainingMap<uint64_t>>(state);
}
BENCHMARK(BM_ChainingInsert)->Arg(1 << 14)->Arg(1 << 18);

void BM_DenseInsert(benchmark::State& state) {
  MapInsertBenchmark<DenseMap<uint64_t>>(state);
}
BENCHMARK(BM_DenseInsert)->Arg(1 << 14)->Arg(1 << 18);

void BM_SparseInsert(benchmark::State& state) {
  MapInsertBenchmark<SparseMap<uint64_t>>(state);
}
BENCHMARK(BM_SparseInsert)->Arg(1 << 14)->Arg(1 << 18);

template <typename Tree>
void TreeInsertBenchmark(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto keys = RandomKeys(n, n);
  for (auto _ : state) {
    Tree tree;
    for (uint64_t k : keys) ++tree.GetOrInsert(k);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

void BM_ArtInsert(benchmark::State& state) {
  TreeInsertBenchmark<ArtTree<uint64_t>>(state);
}
BENCHMARK(BM_ArtInsert)->Arg(1 << 14)->Arg(1 << 18);

void BM_JudyInsert(benchmark::State& state) {
  TreeInsertBenchmark<JudyArray<uint64_t>>(state);
}
BENCHMARK(BM_JudyInsert)->Arg(1 << 14)->Arg(1 << 18);

void BM_BtreeInsert(benchmark::State& state) {
  TreeInsertBenchmark<BTree<uint64_t>>(state);
}
BENCHMARK(BM_BtreeInsert)->Arg(1 << 14)->Arg(1 << 18);

template <typename Sorter>
void SortBenchmark(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto input = RandomKeys(n, 1000000);
  std::vector<uint64_t> keys;
  for (auto _ : state) {
    state.PauseTiming();
    keys = input;
    state.ResumeTiming();
    Sorter{}(keys.data(), keys.data() + keys.size(), IdentityKey{});
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

void BM_Introsort(benchmark::State& state) {
  SortBenchmark<IntrosortSorter>(state);
}
BENCHMARK(BM_Introsort)->Arg(1 << 16)->Arg(1 << 20);

void BM_Spreadsort(benchmark::State& state) {
  SortBenchmark<SpreadsortSorter>(state);
}
BENCHMARK(BM_Spreadsort)->Arg(1 << 16)->Arg(1 << 20);

void BM_LsbRadixSort(benchmark::State& state) {
  SortBenchmark<LsbRadixSorter>(state);
}
BENCHMARK(BM_LsbRadixSort)->Arg(1 << 16)->Arg(1 << 20);

void BM_MsbRadixSort(benchmark::State& state) {
  SortBenchmark<MsbRadixSorter>(state);
}
BENCHMARK(BM_MsbRadixSort)->Arg(1 << 16)->Arg(1 << 20);

void BM_ZipfGeneration(benchmark::State& state) {
  for (auto _ : state) {
    DatasetSpec spec{Distribution::kZipf,
                     static_cast<uint64_t>(state.range(0)), 1000, 92};
    if (!IsValidSpec(spec)) continue;
    benchmark::DoNotOptimize(GenerateKeys(spec).data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ZipfGeneration)->Arg(1 << 18);

}  // namespace
}  // namespace memagg

BENCHMARK_MAIN();
