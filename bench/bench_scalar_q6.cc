// Figure 9: scalar aggregation Q6 (MEDIAN of the key column) over the
// tree-based and sort-based operators, all six Table 4 distributions,
// cardinality swept 10^2..10^7.
//
// Paper scale: 100M records. Container default: 4M.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/engine.h"
#include "data/dataset.h"

namespace memagg {
namespace {

int Run(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const uint64_t records =
      static_cast<uint64_t>(flags.GetInt("records", 4000000));
  const auto cardinalities = CardinalitySweep(flags, records);
  const auto labels = flags.GetList("algorithms", ScalarCapableLabels());

  PrintBanner("Figure 9: Scalar Aggregation Q6 (MEDIAN) - " +
                  std::to_string(records) + " records",
              "query execution cycles vs group-by cardinality");
  std::printf("dataset,cardinality,algorithm,total_cycles,median\n");

  for (Distribution distribution : kAllDistributions) {
    for (uint64_t cardinality : cardinalities) {
      if (cardinality > records) continue;
      DatasetSpec spec{distribution, records, cardinality, 86};
      if (!IsValidSpec(spec)) continue;
      const auto keys = GenerateKeys(spec);
      for (const std::string& label : labels) {
        auto aggregator = MakeScalarMedianAggregator(label);
        double median = 0.0;
        const BenchTiming timing = TimeOnce([&] {
          aggregator->Build(keys.data(), nullptr, keys.size());
          median = aggregator->Finalize();
        });
        std::printf("%s,%llu,%s,%llu,%.1f\n",
                    DistributionName(distribution).c_str(),
                    static_cast<unsigned long long>(cardinality),
                    label.c_str(),
                    static_cast<unsigned long long>(timing.cycles), median);
        std::fflush(stdout);
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace memagg

int main(int argc, char** argv) { return memagg::Run(argc, argv); }
