// SIMD lane microbenchmark: each SimdOps kernel timed per lane.
//
// The lane ablation behind docs/simd.md: every kernel from util/simd.h runs
// over an in-cache workload under each lane the machine supports (scalar,
// sse42, avx2) plus the runtime dispatcher, so the report shows (a) what
// each vector kernel buys over the scalar loop it replaced and (b) what the
// dispatch indirection costs on top of the native lane. The headline series
// is the Swiss-table control-byte probe: CI gates
// `tag_probe16/avx2 >= 1.5x tag_probe16/scalar` via
// tools/bench_compare.py --speedup-gate.
//
// Workloads fit in L1/L2 by construction (16 KiB control array, 4 KiB node
// pool, 128 KiB bucket pool) so the numbers measure compare throughput, not
// memory latency. Output: CSV rows to stdout + BENCH_simd.json.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/rng.h"
#include "util/simd.h"

namespace memagg {
namespace {

/// Keeps `value` (and everything that produced it) out of dead-code
/// elimination without a store.
inline void Consume(uint64_t value) { asm volatile("" : : "r"(value)); }

constexpr size_t kCtrlGroups = 1024;  // 16 KiB control array (L1-resident).
constexpr size_t kNodePool = 256;     // 256 x 16-byte node key arrays, 4 KiB.
constexpr size_t kBucketPool = 4096;  // 4-slot cuckoo buckets, 128 KiB.
constexpr size_t kHashBuffer = 8192;  // Batch-hash working set, 64 KiB x2.

/// Pre-generated probe workload shared by every lane, so series differ only
/// in the kernel implementation.
struct Workload {
  std::vector<uint8_t> ctrl;        // kCtrlGroups * kGroupWidth tag bytes.
  std::vector<uint32_t> group_off;  // Probe i hits ctrl[group_off[i]..+15].
  std::vector<uint8_t> probe_tag;   // 7-bit tag probed at step i.
  std::vector<uint8_t> node_keys;   // kNodePool * 32 bytes (Node16 = first
                                    // half, Node32 = whole array).
  std::vector<uint32_t> node_off;   // Probe i scans node_keys[node_off[i]..].
  std::vector<uint64_t> buckets;    // kBucketPool * 4 slot keys.
  std::vector<uint32_t> bucket_off;
  std::vector<uint64_t> bucket_key;
  std::vector<uint64_t> hash_in;
  std::vector<uint64_t> hash_out;
};

Workload MakeWorkload(size_t probes, Rng& rng) {
  Workload w;
  // Control bytes: ~1/8 empty, the rest random 7-bit tags — a table around
  // the load factor where probes see both hits and misses per group.
  w.ctrl.resize(kCtrlGroups * simd::kGroupWidth);
  for (uint8_t& byte : w.ctrl) {
    byte = rng.NextBounded(8) == 0
               ? simd::kCtrlEmpty
               : static_cast<uint8_t>(rng.Next() & 0x7f);
  }
  w.node_keys.resize(kNodePool * 32);
  for (uint8_t& byte : w.node_keys) {
    byte = static_cast<uint8_t>(rng.Next());
  }
  w.buckets.resize(kBucketPool * 4);
  for (uint64_t& key : w.buckets) key = rng.Next();

  w.group_off.reserve(probes);
  w.probe_tag.reserve(probes);
  w.node_off.reserve(probes);
  w.bucket_off.reserve(probes);
  w.bucket_key.reserve(probes);
  for (size_t i = 0; i < probes; ++i) {
    w.group_off.push_back(
        static_cast<uint32_t>(rng.NextBounded(kCtrlGroups)) *
        static_cast<uint32_t>(simd::kGroupWidth));
    w.probe_tag.push_back(static_cast<uint8_t>(rng.Next() & 0x7f));
    w.node_off.push_back(static_cast<uint32_t>(rng.NextBounded(kNodePool)) *
                         32);
    const uint32_t bucket =
        static_cast<uint32_t>(rng.NextBounded(kBucketPool)) * 4;
    w.bucket_off.push_back(bucket);
    // Half the bucket probes hit an occupied slot, half miss.
    w.bucket_key.push_back(rng.NextBounded(2) == 0
                               ? w.buckets[bucket + rng.NextBounded(4)]
                               : rng.Next());
  }
  w.hash_in.resize(kHashBuffer);
  for (uint64_t& key : w.hash_in) key = rng.Next();
  w.hash_out.resize(kHashBuffer);
  return w;
}

/// Best-of-`reps` timing of `fn` (first run doubles as cache warmup and is
/// never the minimum on a quiet machine anyway).
BenchTiming BestOf(int reps, const std::function<void()>& fn) {
  BenchTiming best;
  for (int r = 0; r < reps; ++r) {
    const BenchTiming t = TimeOnce(fn);
    if (r == 0 || t.cycles < best.cycles) best = t;
  }
  return best;
}

// `lane` names the series explicitly: DispatchOps::Name() resolves to the
// selected lane, which would collide with that lane's own native series.
template <simd::SimdOps Ops>
void RunLane(BenchReport& report, Workload& w, size_t probes, int reps,
             const std::string& lane) {
  struct Kernel {
    const char* name;
    std::function<void()> body;
  };
  const Kernel kernels[] = {
      {"tag_probe16",
       [&] {
         uint64_t sink = 0;
         for (size_t i = 0; i < probes; ++i) {
           sink += Ops::MatchByteTag(w.ctrl.data() + w.group_off[i],
                                     w.probe_tag[i]);
         }
         Consume(sink);
       }},
      {"match_empty16",
       [&] {
         uint64_t sink = 0;
         for (size_t i = 0; i < probes; ++i) {
           sink += Ops::MatchEmpty(w.ctrl.data() + w.group_off[i]);
         }
         Consume(sink);
       }},
      {"find_byte16",
       [&] {
         uint64_t sink = 0;
         for (size_t i = 0; i < probes; ++i) {
           sink += static_cast<uint64_t>(Ops::FindByte16(
               w.node_keys.data() + w.node_off[i], 16, w.probe_tag[i]));
         }
         Consume(sink);
       }},
      {"find_byte32",
       [&] {
         uint64_t sink = 0;
         for (size_t i = 0; i < probes; ++i) {
           sink += static_cast<uint64_t>(Ops::FindByte32(
               w.node_keys.data() + w.node_off[i], 32, w.probe_tag[i]));
         }
         Consume(sink);
       }},
      {"match_key4",
       [&] {
         uint64_t sink = 0;
         for (size_t i = 0; i < probes; ++i) {
           sink += static_cast<uint64_t>(Ops::MatchKey4(
               w.buckets.data() + w.bucket_off[i], w.bucket_key[i]));
         }
         Consume(sink);
       }},
      {"hash_batch",
       [&] {
         for (size_t done = 0; done < probes; done += kHashBuffer) {
           const size_t n = std::min(kHashBuffer, probes - done);
           Ops::HashBatch(w.hash_in.data(), n, w.hash_out.data());
         }
         Consume(w.hash_out[0]);
       }},
  };
  for (const Kernel& kernel : kernels) {
    const BenchTiming best = BestOf(reps, kernel.body);
    const std::string series = std::string(kernel.name) + "/" + lane;
    std::printf("%s,%llu,%.3f,%.2f\n", series.c_str(),
                static_cast<unsigned long long>(best.cycles), best.millis,
                static_cast<double>(best.cycles) /
                    static_cast<double>(probes));
    std::fflush(stdout);
    report.AddRow(series, probes, best.cycles, best.millis);
  }
}

int Run(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const size_t probes =
      static_cast<size_t>(flags.GetInt("probes", 1 << 22));
  const int reps = static_cast<int>(flags.GetInt("reps", 5));

  Rng rng;
  Workload w = MakeWorkload(probes, rng);

  PrintBanner("SIMD lane microbenchmark",
              "per-kernel cycles under each SimdOps lane; " +
                  std::to_string(probes) + " probes, best of " +
                  std::to_string(reps) + " reps, in-cache working sets");
  std::printf("series,cycles,millis,cycles_per_op\n");

  BenchReport report("simd");
  report.SetParam("probes", static_cast<uint64_t>(probes));
  report.SetParam("reps", static_cast<uint64_t>(reps));
  report.SetParam("active_lane", simd::DispatchOps::Name());

  RunLane<simd::ScalarOps>(report, w, probes, reps, "scalar");
  if (simd::SimdLaneSupported(simd::SimdLane::kSse42)) {
    RunLane<simd::Sse42Ops>(report, w, probes, reps, "sse42");
  } else {
    std::printf("# sse42 lane unsupported on this CPU: series skipped\n");
  }
  if (simd::SimdLaneSupported(simd::SimdLane::kAvx2)) {
    RunLane<simd::Avx2Ops>(report, w, probes, reps, "avx2");
  } else {
    std::printf("# avx2 lane unsupported on this CPU: series skipped\n");
  }
  RunLane<simd::DispatchOps>(report, w, probes, reps, "dispatch");

  report.WriteFile();
  return 0;
}

}  // namespace
}  // namespace memagg

int main(int argc, char** argv) { return memagg::Run(argc, argv); }
