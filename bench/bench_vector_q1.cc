// Figure 4: vector aggregation Q1 (COUNT GROUP BY) over all Table 4
// distributions, group-by cardinality swept 10^2..10^7 at fixed dataset
// size.
//
// Paper scale: 100M records. Container default: 4M (override with
// --records=100M --cardinalities=...). Output: one row per
// (distribution, cardinality, algorithm) with query execution cycles —
// the Figure 4 line charts.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/engine.h"
#include "data/dataset.h"

namespace memagg {
namespace {

int Run(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const uint64_t records =
      static_cast<uint64_t>(flags.GetInt("records", 4000000));
  const auto cardinalities = CardinalitySweep(flags, records);
  const auto labels = flags.GetList("algorithms", SerialLabels());
  const auto dataset_names =
      flags.GetList("datasets", {"Rseq", "Rseq-Shf", "Hhit", "Hhit-Shf",
                                 "Zipf", "MovC"});

  PrintBanner("Figure 4: Vector Aggregation Q1 (COUNT) - " +
                  std::to_string(records) + " records",
              "query execution cycles vs group-by cardinality");
  std::printf("dataset,cardinality,algorithm,total_cycles,build_ms,iterate_ms\n");

  BenchReport report("vector_q1");
  report.SetParam("records", records);

  for (const std::string& dataset_name : dataset_names) {
    const Distribution distribution = DistributionFromName(dataset_name);
    for (uint64_t cardinality : cardinalities) {
      if (cardinality > records) continue;
      DatasetSpec spec{distribution, records, cardinality, 77};
      if (!IsValidSpec(spec)) continue;
      const auto keys = GenerateKeys(spec);
      for (const std::string& label : labels) {
        const VectorQueryExecution execution =
            ExecuteVectorQuery(label, AggregateFunction::kCount, keys.data(),
                               nullptr, keys.size(), records);
        const QueryStats& stats = execution.stats;
        std::printf("%s,%llu,%s,%llu,%.1f,%.1f\n", dataset_name.c_str(),
                    static_cast<unsigned long long>(cardinality),
                    label.c_str(),
                    static_cast<unsigned long long>(stats.TotalCycles()),
                    stats.PhaseMillis(StatPhase::kBuild),
                    stats.PhaseMillis(StatPhase::kIterate));
        report.AddRow(dataset_name + "/" + label, cardinality,
                      stats.TotalCycles(), stats.TotalMillis(), &stats);
        std::fflush(stdout);
      }
    }
  }
  report.WriteFile();
  return 0;
}

}  // namespace
}  // namespace memagg

int main(int argc, char** argv) { return memagg::Run(argc, argv); }
