// Figure 7: impact of the key distribution on Q1, at low (10^3) and high
// (10^6) group-by cardinality, fixed dataset size.
//
// Paper scale: 100M records. Container default: 4M.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/engine.h"
#include "data/dataset.h"

namespace memagg {
namespace {

int Run(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const uint64_t records =
      static_cast<uint64_t>(flags.GetInt("records", 4000000));
  std::vector<uint64_t> cardinalities;
  for (const std::string& text :
       flags.GetList("cardinalities", {"1000", "1000000"})) {
    cardinalities.push_back(static_cast<uint64_t>(ParseHumanInt(text)));
  }
  const auto labels = flags.GetList("algorithms", SerialLabels());

  PrintBanner("Figure 7: Vector Q1 - Variable Key Distributions - " +
                  std::to_string(records) + " records",
              "query execution cycles per distribution, low vs high "
              "cardinality");
  std::printf("cardinality,dataset,algorithm,total_cycles,total_ms\n");

  for (uint64_t cardinality : cardinalities) {
    if (cardinality > records) continue;
    for (Distribution distribution : kAllDistributions) {
      DatasetSpec spec{distribution, records, cardinality, 84};
      if (!IsValidSpec(spec)) continue;
      const auto keys = GenerateKeys(spec);
      for (const std::string& label : labels) {
        auto aggregator =
            MakeVectorAggregator(label, AggregateFunction::kCount, records);
        const BenchTiming build = TimeOnce(
            [&] { aggregator->Build(keys.data(), nullptr, keys.size()); });
        VectorResult result;
        const BenchTiming iterate =
            TimeOnce([&] { result = aggregator->Iterate(); });
        std::printf("%llu,%s,%s,%llu,%.1f\n",
                    static_cast<unsigned long long>(cardinality),
                    DistributionName(distribution).c_str(), label.c_str(),
                    static_cast<unsigned long long>(build.cycles +
                                                    iterate.cycles),
                    build.millis + iterate.millis);
        std::fflush(stdout);
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace memagg

int main(int argc, char** argv) { return memagg::Run(argc, argv); }
