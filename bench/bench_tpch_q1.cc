// TPC-H Q1-shaped aggregation over the columnar Table layer (DESIGN.md,
// docs/data_model.md): lineitem with a 2-column composite key
// (l_returnflag, l_linestatus), a shipdate filter, and four aggregates
// (sum_qty, sum_base_price, sum_disc_price, count_order).
//
// Two jobs in one binary:
//
//   Validation. All measure columns are u64 fixed-point, so every operator
//   family must produce BYTE-IDENTICAL results regardless of partitioning,
//   threading, or adaptive mid-query switching. `--write-golden=PATH`
//   renders the canonical result text; `--check-golden=PATH` re-runs every
//   family (serial, parallel, Adaptive at 1 and N threads) and fails unless
//   each run matches the committed golden byte for byte. CI runs the check
//   under ASan (tools/make_golden.py drives both modes).
//
//   Benchmark. Default mode times each family over --reps repetitions,
//   prints CSV, and writes BENCH_tpch.json for tools/bench_compare.py.
//
// Paper scale: 100M+ records. Container default: 600k (golden: 200k).

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/engine.h"
#include "core/table_exec.h"
#include "data/lineitem.h"
#include "util/macros.h"

namespace memagg {
namespace {

TableQuery Q1Query() {
  TableQuery query;
  query.group_by = {"l_returnflag", "l_linestatus"};
  query.aggregates = {
      {AggregateFunction::kSum, "l_quantity", "sum_qty"},
      {AggregateFunction::kSum, "l_extendedprice", "sum_base_price"},
      {AggregateFunction::kSum, "disc_price", "sum_disc_price"},
      {AggregateFunction::kCount, "", "count_order"},
  };
  query.has_filter = true;
  query.filter_column = "l_shipdate";
  query.filter_max = kLineitemQ1ShipdateCutoff;
  return query;
}

/// One result row as `returnflag|linestatus|sum_qty|...|count_order`.
/// Aggregates are computed in doubles but must hold exact integers below
/// 2^53 (data/lineitem.h bounds the generator so they do) — rendered as
/// u64 so the golden text is bit-stable across platforms.
std::string CanonicalText(const TableQueryResult& result) {
  std::string text;
  for (size_t g = 0; g < result.group_keys.size(); ++g) {
    const DecodedKey& key = result.group_keys[g];
    MEMAGG_CHECK(key.size() == 2 && "Q1 keys have exactly two columns");
    text += key[0].ToString();
    text += '|';
    text += key[1].ToString();
    for (const std::vector<double>& column : result.aggregate_columns) {
      const double value = column[g];
      MEMAGG_CHECK(value >= 0 && value < 9007199254740992.0 &&
                   std::floor(value) == value &&
                   "aggregate exceeded the 2^53 fixed-point exactness bound");
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "|%" PRIu64,
                    static_cast<uint64_t>(value));
      text += buffer;
    }
    text += '\n';
  }
  return text;
}

struct RunSpec {
  std::string label;
  int threads = 1;
  std::string series() const {
    return label + "@" + std::to_string(threads);
  }
};

/// True for labels that accept a multi-threaded ExecutionContext; serial
/// families abort on num_threads > 1 (core/engine.cc), so --labels runs
/// clamp them to one thread.
bool ParallelCapable(const std::string& label) {
  for (const std::string& concurrent : ConcurrentLabels()) {
    if (label == concurrent) return true;
  }
  for (const char* capable : {"Hash_PLocal", "Hash_Striped", "Hash_PRadix",
                              "Hybrid", "Adaptive", "auto"}) {
    if (label == capable) return true;
  }
  return false;
}

/// Every family the result must be byte-stable across: all serial labels,
/// the parallel labels at `threads`, and the adaptive operator at both 1
/// and `threads` (mid-query switching must not perturb the sums).
std::vector<RunSpec> ValidationRuns(int threads) {
  std::vector<RunSpec> runs;
  for (const std::string& label : SerialLabels()) runs.push_back({label, 1});
  for (const char* label :
       {"Hash_TBBSC", "Hash_LC", "Hash_PLocal", "Hash_Striped", "Hash_PRadix",
        "Sort_BI", "Sort_QSLB", "Hybrid"}) {
    runs.push_back({label, threads});
  }
  runs.push_back({"Adaptive", 1});
  runs.push_back({"Adaptive", threads});
  return runs;
}

std::string ReadFileOrDie(const std::string& path) {
  FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open golden file %s\n", path.c_str());
    std::exit(1);
  }
  std::string text;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(file);
  return text;
}

std::string GoldenHeader(uint64_t records, uint64_t seed) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "# tpch_q1 golden: records=%" PRIu64 " seed=%" PRIu64
                " (tools/make_golden.py regenerates)\n"
                "# returnflag|linestatus|sum_qty|sum_base_price|"
                "sum_disc_price|count_order\n",
                records, seed);
  return buffer;
}

int Run(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const uint64_t records =
      static_cast<uint64_t>(flags.GetInt("records", 600000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 0x11e171));
  const int reps = static_cast<int>(flags.GetInt("reps", 3));
  const int threads = static_cast<int>(flags.GetInt("threads", 4));
  const std::string write_golden = flags.GetString("write-golden", "");
  const std::string check_golden = flags.GetString("check-golden", "");

  const Table table = GenerateLineitem(records, seed);
  const TableQuery query = Q1Query();

  if (!write_golden.empty()) {
    const TableQueryResult result =
        ExecuteTableQuery(table, query, "Hash_LP");
    const std::string golden = GoldenHeader(records, seed) +
                               CanonicalText(result);
    FILE* file = std::fopen(write_golden.c_str(), "wb");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", write_golden.c_str());
      return 1;
    }
    std::fwrite(golden.data(), 1, golden.size(), file);
    std::fclose(file);
    std::printf("wrote %s (%zu groups, %" PRIu64 " records)\n",
                write_golden.c_str(), result.group_keys.size(), records);
    return 0;
  }

  if (!check_golden.empty()) {
    const std::string golden = ReadFileOrDie(check_golden);
    int failures = 0;
    for (const RunSpec& run : ValidationRuns(threads)) {
      const TableQueryResult result =
          ExecuteTableQuery(table, query, run.label, run.threads);
      const std::string text =
          GoldenHeader(records, seed) + CanonicalText(result);
      if (text == golden) {
        std::printf("OK   %-16s (%zu groups)\n", run.series().c_str(),
                    result.group_keys.size());
      } else {
        ++failures;
        std::printf("FAIL %-16s\n--- golden ---\n%s--- got ---\n%s",
                    run.series().c_str(), golden.c_str(), text.c_str());
      }
    }
    if (failures > 0) {
      std::fprintf(stderr, "%d famil%s diverged from %s\n", failures,
                   failures == 1 ? "y" : "ies", check_golden.c_str());
      return 1;
    }
    std::printf("all families byte-identical to %s\n", check_golden.c_str());
    return 0;
  }

  // Benchmark mode.
  std::vector<RunSpec> runs;
  if (flags.Has("labels")) {
    for (const std::string& label : flags.GetList("labels", {})) {
      runs.push_back({label, ParallelCapable(label) ? threads : 1});
    }
  } else {
    runs = ValidationRuns(threads);
  }

  PrintBanner("TPC-H Q1 (columnar table, composite key) - " +
                  std::to_string(records) + " records",
              "four fixed-point aggregates over (l_returnflag, l_linestatus) "
              "with the shipdate filter; see docs/data_model.md");
  std::printf("algorithm,threads,rep,key_bits,groups,rows_scanned,cycles,"
              "millis\n");

  BenchReport report("tpch");
  report.SetParam("records", records);
  report.SetParam("seed", seed);
  report.SetParam("threads", static_cast<uint64_t>(threads));

  for (const RunSpec& run : runs) {
    for (int rep = 0; rep < reps; ++rep) {
      TableQueryResult result;
      const BenchTiming timing = TimeOnce([&] {
        result = ExecuteTableQuery(table, query, run.label, run.threads);
      });
      std::printf("%s,%d,%d,%d,%zu,%zu,%" PRIu64 ",%.3f\n", run.label.c_str(),
                  run.threads, rep, result.key_width_bits,
                  result.group_keys.size(), result.rows_scanned, timing.cycles,
                  timing.millis);
      std::fflush(stdout);
      if (rep == 0) {
        report.AddRow(run.series(), records, timing.cycles, timing.millis,
                      &result.stats);
        report.SetRowMeta("resolved_label", result.label);
        report.SetRowMeta("key_width_bits",
                          std::to_string(result.key_width_bits));
      }
    }
  }
  report.WriteFile();
  return 0;
}

}  // namespace
}  // namespace memagg

int main(int argc, char** argv) { return memagg::Run(argc, argv); }
