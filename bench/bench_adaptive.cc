// Adaptive operator vs the fixed strategies (DESIGN.md, docs/adaptive.md):
// Q1 (COUNT group-by) across the cardinality sweep on a shuffled-sequential
// and a Zipf-skewed key column.
//
// Three kinds of series per workload:
//   "<dist>/Adaptive"    — the adaptive operator, free to switch; rows carry
//                          the resolved strategy and switch trace as meta.
//   "<dist>/<strategy>"  — each inventory strategy pinned through the same
//                          migratable harness (force_strategy). These are
//                          the gate baselines: tools/bench_compare.py
//                          --adaptive-gate checks decision quality — the
//                          adaptive run must stay within the threshold of
//                          the best pinned strategy at every sweep point.
//   "<dist>+native/<label>" — the engine's native fixed operators, for
//                          context only. Their Build paths see all rows up
//                          front (e.g. two-pass radix), which no online
//                          operator can reproduce; the gate skips these
//                          groups because they contain no Adaptive row.
//
// Paper scale: 100M records on 4C/8T. Container default: 2M records.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/adaptive_aggregator.h"
#include "core/aggregate.h"
#include "core/engine.h"
#include "data/dataset.h"
#include "exec/executor.h"
#include "exec/task_scheduler.h"
#include "obs/query_stats.h"

namespace memagg {
namespace {

struct Measured {
  BenchTiming timing;
  size_t groups = 0;
  QueryStats stats;
  std::string trace;     // Adaptive only.
  std::string strategy;  // Adaptive only.
};

// The timed region covers construction + build + iterate for every series:
// the fixed operators allocate their full-size tables in the constructor
// (sized for the row-count upper bound), the adaptive operator sizes its
// tables from the sample inside Build — excluding construction would hide
// exactly the allocation work the two approaches trade.
Measured RunAdaptive(const std::vector<uint64_t>& keys, int threads,
                     const AdaptiveOptions& options) {
  std::unique_ptr<AdaptiveAggregator<CountAggregate>> aggregator;
  Measured out;
  const BenchTiming build = TimeOnce([&] {
    aggregator = std::make_unique<AdaptiveAggregator<CountAggregate>>(
        keys.size(), ExecutionContext{threads}, options);
    aggregator->Build(keys.data(), nullptr, keys.size());
  });
  VectorResult result;
  const BenchTiming iterate = TimeOnce([&] { result = aggregator->Iterate(); });
  out.timing = {build.cycles + iterate.cycles, build.millis + iterate.millis};
  out.groups = result.size();
  aggregator->CollectStats(&out.stats);
  out.trace = aggregator->switch_trace();
  out.strategy = AggStrategyName(aggregator->current_strategy());
  return out;
}

Measured RunFixed(const std::string& label, const std::vector<uint64_t>& keys,
                  int threads) {
  std::unique_ptr<VectorAggregator> aggregator;
  Measured out;
  const BenchTiming build = TimeOnce([&] {
    aggregator = MakeVectorAggregator(label, AggregateFunction::kCount,
                                      keys.size(), ExecutionContext{threads});
    aggregator->Build(keys.data(), nullptr, keys.size());
  });
  VectorResult result;
  const BenchTiming iterate = TimeOnce([&] { result = aggregator->Iterate(); });
  out.timing = {build.cycles + iterate.cycles, build.millis + iterate.millis};
  out.groups = result.size();
  aggregator->CollectStats(&out.stats);
  return out;
}

int Run(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const uint64_t records =
      static_cast<uint64_t>(flags.GetInt("records", 2000000));
  const int threads = static_cast<int>(flags.GetInt("threads", 4));
  const int reps = static_cast<int>(flags.GetInt("reps", 2));
  const auto cardinalities = CardinalitySweep(flags, records);
  std::vector<std::string> distribution_names;
  for (const std::string& name :
       flags.GetList("distributions", {"Rseq-Shf", "Zipf"})) {
    distribution_names.push_back(name);
  }
  // Native context series: the engine operators closest to the adaptive
  // inventory (worker-local/central merge, two-pass radix, the striped
  // shared map, the parallel sort).
  const std::vector<std::string> default_labels =
      threads > 1
          ? std::vector<std::string>{"Hash_PLocal", "Hash_PRadix",
                                     "Hash_Striped", "Sort_BI"}
          : std::vector<std::string>{"Hash_LP", "Sort_BI"};
  const auto labels = flags.GetList("algorithms", default_labels);

  // Calibration hooks (docs/adaptive.md): pin a strategy, change the sample
  // size, or fix the chunk size to measure the switching machinery itself.
  AdaptiveOptions options;
  options.force_strategy = static_cast<int>(flags.GetInt("force_strategy", -1));
  options.sample_morsels = static_cast<size_t>(
      flags.GetInt("sample_morsels", options.sample_morsels));
  options.chunk_morsels =
      static_cast<size_t>(flags.GetInt("chunk_morsels", 0));

  WarmUpScheduler();

  PrintBanner("Adaptive vs fixed strategies - " + std::to_string(records) +
                  " records, " + std::to_string(threads) + " threads",
              "Q1 (COUNT) cycles vs cardinality; adaptive rows carry the "
              "switch trace");
  std::printf(
      "distribution,cardinality,algorithm,threads,total_cycles,total_ms,"
      "groups,switches,trace\n");

  BenchReport report("adaptive");
  report.SetParam("records", records);
  report.SetParam("threads", static_cast<uint64_t>(threads));
  report.SetParam("reps", static_cast<uint64_t>(reps));

  for (const std::string& distribution_name : distribution_names) {
    const Distribution distribution =
        DistributionFromName(distribution_name);
    for (uint64_t cardinality : cardinalities) {
      DatasetSpec spec{distribution, records, cardinality, 88};
      if (!IsValidSpec(spec)) continue;
      const auto keys = GenerateKeys(spec);

      // Best-of-reps for every series; the adaptive decision path is
      // deterministic for a fixed dataset, so the kept trace is the trace.
      Measured adaptive;
      for (int rep = 0; rep < reps; ++rep) {
        Measured m = RunAdaptive(keys, threads, options);
        if (rep == 0 || m.timing.millis < adaptive.timing.millis) {
          adaptive = std::move(m);
        }
      }
      const uint64_t switches =
          adaptive.stats.Get(StatCounter::kStrategySwitches);
      std::printf("%s,%llu,Adaptive,%d,%llu,%.1f,%zu,%llu,%s\n",
                  distribution_name.c_str(),
                  static_cast<unsigned long long>(cardinality), threads,
                  static_cast<unsigned long long>(adaptive.timing.cycles),
                  adaptive.timing.millis, adaptive.groups,
                  static_cast<unsigned long long>(switches),
                  adaptive.trace.c_str());
      std::fflush(stdout);
      report.AddRow(distribution_name + "/Adaptive", cardinality,
                    adaptive.timing.cycles, adaptive.timing.millis,
                    &adaptive.stats);
      report.SetRowMeta("algorithm", "Adaptive");
      report.SetRowMeta("strategy", adaptive.strategy);
      report.SetRowMeta("switch_trace", adaptive.trace);

      for (int s = 0; s < kNumAggStrategies; ++s) {
        const AggStrategy strategy = static_cast<AggStrategy>(s);
        if (!StrategyApplicable(strategy, threads)) continue;
        AdaptiveOptions pinned;
        pinned.force_strategy = s;
        Measured fixed;
        for (int rep = 0; rep < reps; ++rep) {
          Measured m = RunAdaptive(keys, threads, pinned);
          if (rep == 0 || m.timing.millis < fixed.timing.millis) {
            fixed = std::move(m);
          }
        }
        const char* name = AggStrategyName(strategy);
        std::printf("%s,%llu,%s,%d,%llu,%.1f,%zu,0,-\n",
                    distribution_name.c_str(),
                    static_cast<unsigned long long>(cardinality), name,
                    threads,
                    static_cast<unsigned long long>(fixed.timing.cycles),
                    fixed.timing.millis, fixed.groups);
        std::fflush(stdout);
        report.AddRow(distribution_name + "/" + name, cardinality,
                      fixed.timing.cycles, fixed.timing.millis, &fixed.stats);
        report.SetRowMeta("algorithm", name);
      }

      for (const std::string& label : labels) {
        Measured fixed;
        for (int rep = 0; rep < reps; ++rep) {
          Measured m = RunFixed(label, keys, threads);
          if (rep == 0 || m.timing.millis < fixed.timing.millis) {
            fixed = std::move(m);
          }
        }
        std::printf("%s,%llu,%s,%d,%llu,%.1f,%zu,0,-\n",
                    distribution_name.c_str(),
                    static_cast<unsigned long long>(cardinality),
                    label.c_str(), threads,
                    static_cast<unsigned long long>(fixed.timing.cycles),
                    fixed.timing.millis, fixed.groups);
        std::fflush(stdout);
        report.AddRow(distribution_name + "+native/" + label, cardinality,
                      fixed.timing.cycles, fixed.timing.millis, &fixed.stats);
        report.SetRowMeta("algorithm", label);
      }
    }
  }
  report.WriteFile();
  return 0;
}

}  // namespace
}  // namespace memagg

int main(int argc, char** argv) { return memagg::Run(argc, argv); }
