// Ablation benchmarks for the design choices called out in the paper and in
// DESIGN.md:
//
//   (a) Hash_LP table sizing policy (paper Section 3.2.1): power-of-two
//       capacity with AND-masking vs prime and exact capacities with modulo
//       reduction.
//   (b) Spreadsort hybrid thresholds (Section 3.1.4): the radix->comparison
//       switch is what distinguishes Spreadsort from pure MSB radix sort and
//       pure Introsort — measured by running all three on the same inputs.
//   (c) Adaptive hybrid aggregation (Section 5.5 future work): hybrid vs
//       pure Hash_LP vs pure Spreadsort across the cardinality sweep,
//       showing the hybrid tracking the better of the two regimes.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/engine.h"
#include "core/hybrid_aggregator.h"
#include "core/sorters.h"
#include "data/dataset.h"
#include "hash/linear_probing_map.h"

namespace memagg {
namespace {

void RunSizingPolicyAblation(uint64_t records) {
  PrintBanner("Ablation (a): Hash_LP sizing policy",
              "Q1 build over " + std::to_string(records) +
                  " Rseq-Shf records; pow2+mask vs prime/exact+modulo");
  std::printf("policy,cardinality,build_cycles,build_ms\n");
  for (uint64_t cardinality : {1000ULL, 1000000ULL}) {
    if (cardinality > records) continue;
    DatasetSpec spec{Distribution::kRseqShuffled, records, cardinality, 111};
    if (!IsValidSpec(spec)) continue;
    const auto keys = GenerateKeys(spec);
    const struct {
      const char* name;
      SizingPolicy policy;
    } policies[] = {{"PowerOfTwo", SizingPolicy::kPowerOfTwo},
                    {"Prime", SizingPolicy::kPrime},
                    {"Exact", SizingPolicy::kExact}};
    for (const auto& p : policies) {
      LinearProbingMap<uint64_t> map(records, p.policy);
      const BenchTiming timing = TimeOnce([&] {
        // lint:allow(raw-key-type): legacy paper bench over raw synthetic keys
        for (uint64_t key : keys) ++map.GetOrInsert(key);
      });
      std::printf("%s,%llu,%llu,%.1f\n", p.name,
                  static_cast<unsigned long long>(cardinality),
                  static_cast<unsigned long long>(timing.cycles),
                  timing.millis);
      std::fflush(stdout);
    }
  }
}

void RunSortHybridAblation(uint64_t records) {
  PrintBanner("Ablation (b): Spreadsort hybrid vs its ingredients",
              "sorting " + std::to_string(records) +
                  " keys: pure MSB radix vs pure Introsort vs the hybrid");
  std::printf("distribution,algorithm,time_ms\n");
  for (MicroDistribution d : kAllMicroDistributions) {
    const auto input = GenerateMicroKeys(d, records);
    const struct {
      const char* name;
      void (*sort)(uint64_t*, uint64_t*);
    } sorts[] = {
        {"MSB Radix (no comparison phase)",
         [](uint64_t* f, uint64_t* l) { MsbRadixSorter{}(f, l, IdentityKey{}); }},
        {"Introsort (no radix phase)",
         [](uint64_t* f, uint64_t* l) { IntrosortSorter{}(f, l, IdentityKey{}); }},
        {"Spreadsort (hybrid)",
         [](uint64_t* f, uint64_t* l) {
           SpreadsortSorter{}(f, l, IdentityKey{});
         }},
    };
    for (const auto& s : sorts) {
      std::vector<uint64_t> keys = input;
      const BenchTiming timing =
          TimeOnce([&] { s.sort(keys.data(), keys.data() + keys.size()); });
      std::printf("%s,%s,%.1f\n", MicroDistributionName(d).c_str(), s.name,
                  timing.millis);
      std::fflush(stdout);
    }
  }
}

void RunAdaptiveHybridAblation(uint64_t records,
                               const std::vector<uint64_t>& cardinalities) {
  PrintBanner("Ablation (c): adaptive hybrid aggregation (Section 5.5)",
              "Q1 over Rseq-Shf, " + std::to_string(records) +
                  " records: Hybrid vs Hash_LP vs Spreadsort");
  std::printf("cardinality,algorithm,total_cycles,total_ms,sort_mode\n");
  for (uint64_t cardinality : cardinalities) {
    if (cardinality > records) continue;
    DatasetSpec spec{Distribution::kRseqShuffled, records, cardinality, 112};
    if (!IsValidSpec(spec)) continue;
    const auto keys = GenerateKeys(spec);
    for (const std::string& label :
         {std::string("Hybrid"), std::string("Hash_LP"),
          std::string("Spreadsort")}) {
      auto aggregator =
          MakeVectorAggregator(label, AggregateFunction::kCount, records);
      VectorResult result;
      const BenchTiming timing = TimeOnce([&] {
        aggregator->Build(keys.data(), nullptr, keys.size());
        result = aggregator->Iterate();
      });
      int sort_mode = -1;
      if (label == "Hybrid") {
        sort_mode = static_cast<HybridVectorAggregator<CountAggregate>*>(
                        aggregator.get())
                            ->in_sort_mode()
                        ? 1
                        : 0;
      }
      std::printf("%llu,%s,%llu,%.1f,%d\n",
                  static_cast<unsigned long long>(cardinality), label.c_str(),
                  static_cast<unsigned long long>(timing.cycles),
                  timing.millis, sort_mode);
      std::fflush(stdout);
    }
  }
}

void RunOrderedMphAblation(uint64_t records,
                           const std::vector<uint64_t>& cardinalities) {
  PrintBanner(
      "Ablation (d): order-preserving minimal perfect hashing (Section 3.2)",
      "the paper claims ordered hashing would be 'quite severe' for query "
      "time; Q1 over Rseq-Shf, " + std::to_string(records) +
          " records: Hash_MPH vs Hash_LP (unordered) vs Btree (ordered)");
  std::printf("cardinality,algorithm,total_cycles,total_ms\n");
  for (uint64_t cardinality : cardinalities) {
    DatasetSpec spec{Distribution::kRseqShuffled, records, cardinality, 113};
    if (!IsValidSpec(spec)) continue;
    const auto keys = GenerateKeys(spec);
    for (const std::string& label :
         {std::string("Hash_MPH"), std::string("Hash_LP"),
          std::string("Btree")}) {
      auto aggregator =
          MakeVectorAggregator(label, AggregateFunction::kCount, records);
      VectorResult result;
      const BenchTiming timing = TimeOnce([&] {
        aggregator->Build(keys.data(), nullptr, keys.size());
        result = aggregator->Iterate();
      });
      std::printf("%llu,%s,%llu,%.1f\n",
                  static_cast<unsigned long long>(cardinality), label.c_str(),
                  static_cast<unsigned long long>(timing.cycles),
                  timing.millis);
      std::fflush(stdout);
    }
  }
}

int Run(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const uint64_t records =
      static_cast<uint64_t>(flags.GetInt("records", 4000000));
  const auto cardinalities = CardinalitySweep(flags, records);
  RunSizingPolicyAblation(records);
  RunSortHybridAblation(records);
  RunAdaptiveHybridAblation(records, cardinalities);
  RunOrderedMphAblation(records, cardinalities);
  return 0;
}

}  // namespace
}  // namespace memagg

int main(int argc, char** argv) { return memagg::Run(argc, argv); }
