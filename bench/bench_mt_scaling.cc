// Figure 11: multithreaded scaling of Q1 and Q3 on Rseq at 10^3 and 10^6
// groups, threads swept 1..--max_threads, over the Table 8 concurrent
// algorithms (Hash_TBBSC, Hash_LC, Sort_QSLB, Sort_BI).
//
// Paper scale: 100M records on 4C/8T. Container default: 4M; on a
// single-core container the curves show threading overhead, not speedup.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/engine.h"
#include "data/dataset.h"
#include "exec/executor.h"
#include "exec/task_scheduler.h"

namespace memagg {
namespace {

int Run(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const uint64_t records =
      static_cast<uint64_t>(flags.GetInt("records", 4000000));
  const int max_threads = static_cast<int>(flags.GetInt("max_threads", 8));
  // --distribution=Zipf exercises the skewed regime where morsel-driven
  // claiming beats static chunking (paper Dimension 3 x Dimension 6).
  const Distribution distribution =
      DistributionFromName(flags.GetString("distribution", "Rseq"));
  std::vector<uint64_t> cardinalities;
  for (const std::string& text :
       flags.GetList("cardinalities", {"1000", "1000000"})) {
    cardinalities.push_back(static_cast<uint64_t>(ParseHumanInt(text)));
  }
  // Table 8 shared-structure operators plus the independent-tables extension
  // (Hash_PLocal; Cieslewicz & Ross-style thread-local aggregation).
  std::vector<std::string> default_labels = ConcurrentLabels();
  default_labels.push_back("Hash_PLocal");
  default_labels.push_back("Hash_Striped");
  default_labels.push_back("Hash_PRadix");
  const auto labels = flags.GetList("algorithms", default_labels);
  const auto values = GenerateValues(records, 1000000, 87);

  // Start the shared morsel scheduler before the measured region: after this
  // warm-up no query should create any thread (new_threads column == 0).
  WarmUpScheduler();

  PrintBanner("Figure 11: Multithreaded Scaling - " +
                  DistributionName(distribution) + " " +
                  std::to_string(records) + " records",
              "query execution cycles vs thread count, Q1 and Q3");
  std::printf(
      "query,cardinality,algorithm,threads,total_cycles,total_ms,"
      "new_threads\n");

  for (const char* query : {"Q1", "Q3"}) {
    const bool holistic = std::string(query) == "Q3";
    for (uint64_t cardinality : cardinalities) {
      if (cardinality > records) continue;
      DatasetSpec spec{distribution, records, cardinality, 88};
      if (!IsValidSpec(spec)) continue;
      const auto keys = GenerateKeys(spec);
      for (const std::string& label : labels) {
        for (int threads = 1; threads <= max_threads; ++threads) {
          const uint64_t threads_before =
              TaskScheduler::Global().stats().threads_created;
          auto aggregator = MakeVectorAggregator(
              label,
              holistic ? AggregateFunction::kMedian
                       : AggregateFunction::kCount,
              records, ExecutionContext{threads});
          const BenchTiming build = TimeOnce([&] {
            aggregator->Build(keys.data(),
                              holistic ? values.data() : nullptr, keys.size());
          });
          VectorResult result;
          const BenchTiming iterate =
              TimeOnce([&] { result = aggregator->Iterate(); });
          const uint64_t new_threads =
              TaskScheduler::Global().stats().threads_created - threads_before;
          std::printf("%s,%llu,%s,%d,%llu,%.1f,%llu\n", query,
                      static_cast<unsigned long long>(cardinality),
                      label.c_str(), threads,
                      static_cast<unsigned long long>(build.cycles +
                                                      iterate.cycles),
                      build.millis + iterate.millis,
                      static_cast<unsigned long long>(new_threads));
          std::fflush(stdout);
        }
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace memagg

int main(int argc, char** argv) { return memagg::Run(argc, argv); }
