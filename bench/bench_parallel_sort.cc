// Figure 10: parallel sort algorithm microbenchmark.
//
// Sorts --records random keys (1-1M) with Sort_BI, Sort_SS, Sort_TBB and
// Sort_QSLB at 1..--max_threads threads, plus the two fastest
// single-threaded sorts (Introsort, Spreadsort) as flat baselines.
//
// NOTE: on a single-core container the curves show threading overhead, not
// speedup; run on a multicore host for the paper's scaling shape.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/sorters.h"
#include "data/dataset.h"
#include "exec/executor.h"

namespace memagg {
namespace {

struct NamedParallelSort {
  std::string name;
  std::function<void(uint64_t*, uint64_t*, int)> fn;
};

int Run(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const uint64_t records =
      static_cast<uint64_t>(flags.GetInt("records", 10000000));
  const int max_threads = static_cast<int>(flags.GetInt("max_threads", 8));
  const auto input =
      GenerateMicroKeys(MicroDistribution::kRandom1To1M, records);
  // Start the shared pool outside the measured sorts.
  WarmUpScheduler();

  const std::vector<NamedParallelSort> parallel_sorts = {
      {"Sort_BI",
       [](uint64_t* f, uint64_t* l, int t) {
         BlockIndirectSorter{t}(f, l, IdentityKey{});
       }},
      {"Sort_SS",
       [](uint64_t* f, uint64_t* l, int t) {
         SamplesortSorter{t}(f, l, IdentityKey{});
       }},
      {"Sort_TBB",
       [](uint64_t* f, uint64_t* l, int t) {
         TaskQuicksortSorter{t}(f, l, IdentityKey{});
       }},
      {"Sort_QSLB",
       [](uint64_t* f, uint64_t* l, int t) {
         ParallelQuicksortSorter{t}(f, l, IdentityKey{});
       }},
  };

  PrintBanner("Figure 10: Parallel Sort Algorithm Microbenchmark",
              std::to_string(records) + " random keys (1-1M); Introsort and "
              "Spreadsort shown as single-threaded baselines");
  std::printf("algorithm,threads,time_ms\n");

  // Single-threaded baselines (flat lines in the figure).
  for (int threads = 1; threads <= max_threads; ++threads) {
    std::vector<uint64_t> keys = input;
    const BenchTiming intro = TimeOnce([&] {
      IntrosortSorter{}(keys.data(), keys.data() + keys.size(), IdentityKey{});
    });
    std::printf("Introsort,%d,%.1f\n", threads, intro.millis);
    keys = input;
    const BenchTiming spread = TimeOnce([&] {
      SpreadsortSorter{}(keys.data(), keys.data() + keys.size(),
                         IdentityKey{});
    });
    std::printf("Spreadsort,%d,%.1f\n", threads, spread.millis);
    std::fflush(stdout);
    // The baselines do not depend on the thread count; measure them once.
    if (threads == 1) break;
  }

  for (const NamedParallelSort& sort : parallel_sorts) {
    for (int threads = 1; threads <= max_threads; ++threads) {
      std::vector<uint64_t> keys = input;
      const BenchTiming timing = TimeOnce(
          [&] { sort.fn(keys.data(), keys.data() + keys.size(), threads); });
      std::printf("%s,%d,%.1f\n", sort.name.c_str(), threads, timing.millis);
      std::fflush(stdout);
    }
  }
  return 0;
}

}  // namespace
}  // namespace memagg

int main(int argc, char** argv) { return memagg::Run(argc, argv); }
