// Tests for order-preserving minimal perfect hashing and its aggregation
// operator (the paper's §3.2 "ordered hash table" design).

#include "core/mph_aggregator.h"
#include "hash/ordered_mph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/engine.h"
#include "data/dataset.h"
#include "test_util.h"
#include "util/rng.h"

namespace memagg {
namespace {

TEST(OrderedMphTest, EmptySet) {
  OrderedMinimalPerfectHash mph;
  mph.Build(nullptr, 0);
  EXPECT_EQ(mph.size(), 0u);
  EXPECT_EQ(mph.Slot(42), 0u);  // size() == "not found".
}

TEST(OrderedMphTest, SingleKey) {
  OrderedMinimalPerfectHash mph;
  const uint64_t key = 42;
  mph.Build(&key, 1);
  EXPECT_EQ(mph.size(), 1u);
  EXPECT_EQ(mph.Slot(42), 0u);
  EXPECT_EQ(mph.KeyAt(0), 42u);
  EXPECT_EQ(mph.Slot(41), 1u);  // Miss.
  EXPECT_EQ(mph.Slot(43), 1u);  // Miss.
}

TEST(OrderedMphTest, MinimalPerfectAndOrderPreserving) {
  Rng rng(501);
  std::set<uint64_t> key_set;
  while (key_set.size() < 5000) key_set.insert(rng.Next());
  std::vector<uint64_t> keys(key_set.begin(), key_set.end());
  ShuffleKeys(keys, 502);  // Build input need not be sorted.
  OrderedMinimalPerfectHash mph;
  mph.Build(keys.data(), keys.size());
  ASSERT_EQ(mph.size(), key_set.size());  // Minimal.
  size_t expected_slot = 0;
  for (uint64_t key : key_set) {  // std::set iterates in order.
    EXPECT_EQ(mph.Slot(key), expected_slot) << key;  // Perfect + ordered.
    EXPECT_EQ(mph.KeyAt(expected_slot), key);
    ++expected_slot;
  }
}

TEST(OrderedMphTest, MissesReportSize) {
  const std::vector<uint64_t> keys = {10, 20, 30};
  OrderedMinimalPerfectHash mph;
  mph.Build(keys.data(), keys.size());
  for (uint64_t miss : {0ULL, 5ULL, 15ULL, 25ULL, 35ULL, ~0ULL}) {
    EXPECT_EQ(mph.Slot(miss), 3u) << miss;
  }
}

TEST(OrderedMphTest, DuplicatesShareSlots) {
  const std::vector<uint64_t> keys = {7, 7, 7, 3, 3};
  OrderedMinimalPerfectHash mph;
  mph.Build(keys.data(), keys.size());
  EXPECT_EQ(mph.size(), 2u);
  EXPECT_EQ(mph.Slot(3), 0u);
  EXPECT_EQ(mph.Slot(7), 1u);
}

TEST(OrderedMphTest, ExhaustiveSmallSizes) {
  // Eytzinger layout edge cases around powers of two.
  for (size_t n = 1; n <= 70; ++n) {
    std::vector<uint64_t> keys;
    for (size_t i = 0; i < n; ++i) keys.push_back(i * 3 + 1);
    OrderedMinimalPerfectHash mph;
    mph.Build(keys.data(), keys.size());
    ASSERT_EQ(mph.size(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(mph.Slot(i * 3 + 1), i) << "n=" << n;
      ASSERT_EQ(mph.Slot(i * 3), n) << "n=" << n;      // Gap below.
      ASSERT_EQ(mph.Slot(i * 3 + 2), n) << "n=" << n;  // Gap above.
    }
  }
}

TEST(MphAggregatorTest, OrderedOutputMatchesReference) {
  DatasetSpec spec{Distribution::kZipf, 30000, 500, 503};
  const auto keys = GenerateKeys(spec);
  const auto values = GenerateValues(keys.size(), 1000, 504);
  for (AggregateFunction fn :
       {AggregateFunction::kCount, AggregateFunction::kMedian}) {
    auto aggregator = MakeVectorAggregator("Hash_MPH", fn, keys.size());
    aggregator->Build(keys.data(), values.data(), keys.size());
    const auto result = aggregator->Iterate();
    // Output is already key-ordered — the property the scheme buys.
    for (size_t i = 1; i < result.size(); ++i) {
      EXPECT_LT(result[i - 1].key, result[i].key);
    }
    EXPECT_EQ(result, ReferenceVectorAggregate(keys, values, fn))
        << AggregateFunctionName(fn);
  }
}

TEST(MphAggregatorTest, NativeRangeSearch) {
  DatasetSpec spec{Distribution::kRseqShuffled, 10000, 1000, 505};
  const auto keys = GenerateKeys(spec);
  auto aggregator =
      MakeVectorAggregator("Hash_MPH", AggregateFunction::kCount, keys.size());
  EXPECT_TRUE(aggregator->SupportsRange());
  aggregator->Build(keys.data(), nullptr, keys.size());
  const auto result = aggregator->IterateRange(100, 200);
  EXPECT_EQ(result, ReferenceVectorAggregate(keys, {},
                                             AggregateFunction::kCount, 100,
                                             200));
}

TEST(MphAggregatorTest, IncrementalBuildRebuilds) {
  const std::vector<uint64_t> part1 = {5, 1, 5};
  const std::vector<uint64_t> part2 = {9, 1};
  auto aggregator =
      MakeVectorAggregator("Hash_MPH", AggregateFunction::kCount, 8);
  aggregator->Build(part1.data(), nullptr, part1.size());
  aggregator->Build(part2.data(), nullptr, part2.size());
  const VectorResult expected = {{1, 2.0}, {5, 2.0}, {9, 1.0}};
  EXPECT_EQ(aggregator->Iterate(), expected);
}

}  // namespace
}  // namespace memagg
