// Tests for hash/hash_fn.h: the batched hash must be bit-identical to the
// scalar HashKey on every lane, and HashKeyAlt must remain statistically
// independent of HashKey (ISSUE 7 satellite) — cuckoo hashing places every
// key by the pair (HashKey, HashKeyAlt), so a refactor that quietly routes
// both through one mixer would collapse its two tables into one and turn
// the eviction BFS into a livelock. These tests pin the independence with
// numbers, not code inspection.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "hash/hash_fn.h"
#include "util/rng.h"
#include "util/simd.h"

namespace memagg {
namespace {

constexpr size_t kSamples = 1 << 16;

std::vector<uint64_t> SampleKeys() {
  std::vector<uint64_t> keys(kSamples);
  Rng rng(Rng::kDefaultSeed);
  for (auto& k : keys) k = rng.Next();
  // Structured keys too: small sequential values dominate real group-by
  // columns and are exactly where weak mixers fail.
  for (size_t i = 0; i < kSamples / 4; ++i) keys[i] = i;
  return keys;
}

TEST(HashFnTest, BatchMatchesScalar) {
  const auto keys = SampleKeys();
  std::vector<uint64_t> out(keys.size());
  HashKeysBatch(keys.data(), keys.size(), out.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(out[i], HashKey(keys[i])) << "i=" << i;
  }
}

TEST(HashFnTest, BatchHandlesShortAndUnalignedTails) {
  Rng rng(Rng::kDefaultSeed + 1);
  for (size_t n : {0u, 1u, 2u, 3u, 5u, 7u, 9u, 15u, 17u}) {
    std::vector<uint64_t> keys(n);
    for (auto& k : keys) k = rng.Next();
    std::vector<uint64_t> out(n);
    HashKeysBatch(keys.data(), n, out.data());
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], HashKey(keys[i]));
  }
}

TEST(HashFnTest, HashKeyDelegatesToSharedMixer) {
  // hash_fn.h and the SIMD lanes must share one set of constants; if they
  // drift, batch and scalar silently disagree only on vector hardware.
  Rng rng(Rng::kDefaultSeed + 2);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t k = rng.Next();
    EXPECT_EQ(HashKey(k), simd::HashMix64(k));
  }
}

/// Mean avalanche probability: fraction of output bits flipped when one
/// input bit flips, averaged over keys and input bits. Ideal: 0.5.
template <typename HashFn>
double AvalancheRate(HashFn hash, uint64_t seed) {
  Rng rng(seed);
  uint64_t flipped_bits = 0;
  constexpr int kKeys = 2048;
  for (int i = 0; i < kKeys; ++i) {
    const uint64_t key = rng.Next();
    const uint64_t base = hash(key);
    for (int bit = 0; bit < 64; ++bit) {
      flipped_bits += std::popcount(base ^ hash(key ^ (1ULL << bit)));
    }
  }
  return static_cast<double>(flipped_bits) / (64.0 * 64.0 * kKeys);
}

TEST(HashFnTest, HashKeyAvalanches) {
  const double rate = AvalancheRate([](uint64_t k) { return HashKey(k); },
                                    Rng::kDefaultSeed + 3);
  EXPECT_GT(rate, 0.47);
  EXPECT_LT(rate, 0.53);
}

TEST(HashFnTest, HashKeyAltAvalanches) {
  const double rate = AvalancheRate([](uint64_t k) { return HashKeyAlt(k); },
                                    Rng::kDefaultSeed + 4);
  EXPECT_GT(rate, 0.47);
  EXPECT_LT(rate, 0.53);
}

TEST(HashFnTest, AltIsIndependentOfPrimaryPerBit) {
  // If HashKeyAlt were a relabeling of HashKey, some output bit pair would
  // agree (or disagree) nearly always. Independent hashes agree on each bit
  // for ~half the keys.
  const auto keys = SampleKeys();
  int agreements[64] = {};
  for (const uint64_t k : keys) {
    const uint64_t same = ~(HashKey(k) ^ HashKeyAlt(k));
    for (int bit = 0; bit < 64; ++bit) {
      agreements[bit] += static_cast<int>((same >> bit) & 1);
    }
  }
  for (int bit = 0; bit < 64; ++bit) {
    const double rate = static_cast<double>(agreements[bit]) / kSamples;
    EXPECT_GT(rate, 0.45) << "bit " << bit;
    EXPECT_LT(rate, 0.55) << "bit " << bit;
  }
}

TEST(HashFnTest, AltGivesDistinctCuckooBuckets) {
  // The property cuckoo hashing actually needs: the two bucket choices
  // rarely coincide. For a table of 1024 buckets, independent hashes
  // collide with probability 1/1024; assert well under 1%.
  const auto keys = SampleKeys();
  constexpr uint64_t kMask = 1023;
  size_t same_bucket = 0;
  for (const uint64_t k : keys) {
    same_bucket +=
        static_cast<size_t>((HashKey(k) & kMask) == (HashKeyAlt(k) & kMask));
  }
  const double rate = static_cast<double>(same_bucket) / kSamples;
  EXPECT_LT(rate, 0.01);
  // And the batch path must not change the primary hash those buckets are
  // derived from.
  std::vector<uint64_t> batch(keys.size());
  HashKeysBatch(keys.data(), keys.size(), batch.data());
  for (size_t i = 0; i < 16; ++i) {
    ASSERT_EQ(batch[i] & kMask, HashKey(keys[i]) & kMask);
  }
}

TEST(HashFnTest, SentinelsAreDistinct) {
  EXPECT_NE(kEmptyKey, kDeletedKey);
  // The sentinels themselves must hash like any value (the maps reject them
  // as *keys*, but they flow through batch hashing of raw columns).
  EXPECT_EQ(HashKey(kEmptyKey), simd::HashMix64(kEmptyKey));
}

}  // namespace
}  // namespace memagg
