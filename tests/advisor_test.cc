// Tests for the Figure 12 decision-flow advisor: exhaustive over the input
// space, checking every leaf of the flow chart.

#include "core/advisor.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/query.h"

namespace memagg {
namespace {

WorkloadProfile Profile(OutputFormat out, FunctionCategory cat, bool worm,
                        bool range, bool prebuilt, int threads) {
  return WorkloadProfile{out, cat, worm, range, prebuilt, threads};
}

TEST(AdvisorTest, ScalarWoroPicksSpreadsort) {
  EXPECT_EQ(RecommendAlgorithm(Profile(OutputFormat::kScalar,
                                       FunctionCategory::kHolistic, false,
                                       false, false, 1)),
            "Spreadsort");
}

TEST(AdvisorTest, ScalarWormPicksJudy) {
  EXPECT_EQ(RecommendAlgorithm(Profile(OutputFormat::kScalar,
                                       FunctionCategory::kHolistic, true,
                                       false, false, 1)),
            "Judy");
}

TEST(AdvisorTest, VectorHolisticPicksSpreadsort) {
  EXPECT_EQ(RecommendAlgorithm(Profile(OutputFormat::kVector,
                                       FunctionCategory::kHolistic, false,
                                       false, false, 1)),
            "Spreadsort");
}

TEST(AdvisorTest, VectorHolisticMultithreadedPicksSortBI) {
  EXPECT_EQ(RecommendAlgorithm(Profile(OutputFormat::kVector,
                                       FunctionCategory::kHolistic, false,
                                       false, false, 8)),
            "Sort_BI");
}

TEST(AdvisorTest, VectorDistributivePicksHashLP) {
  EXPECT_EQ(RecommendAlgorithm(Profile(OutputFormat::kVector,
                                       FunctionCategory::kDistributive, false,
                                       false, false, 1)),
            "Hash_LP");
}

TEST(AdvisorTest, VectorDistributiveMultithreadedPicksTBBSC) {
  EXPECT_EQ(RecommendAlgorithm(Profile(OutputFormat::kVector,
                                       FunctionCategory::kDistributive, false,
                                       false, false, 4)),
            "Hash_TBBSC");
}

TEST(AdvisorTest, RangeWithPrebuiltIndexPicksBtree) {
  EXPECT_EQ(RecommendAlgorithm(Profile(OutputFormat::kVector,
                                       FunctionCategory::kDistributive, false,
                                       true, true, 1)),
            "Btree");
}

TEST(AdvisorTest, RangeWithoutPrebuiltIndexPicksART) {
  EXPECT_EQ(RecommendAlgorithm(Profile(OutputFormat::kVector,
                                       FunctionCategory::kDistributive, false,
                                       true, false, 1)),
            "ART");
}

TEST(AdvisorTest, AlgebraicTreatedLikeDistributive) {
  EXPECT_EQ(RecommendAlgorithm(Profile(OutputFormat::kVector,
                                       FunctionCategory::kAlgebraic, false,
                                       false, false, 1)),
            "Hash_LP");
}

TEST(AdvisorTest, ExhaustiveInputSpaceReturnsKnownLabels) {
  // Every combination must produce a label the engine can construct.
  for (OutputFormat out : {OutputFormat::kVector, OutputFormat::kScalar}) {
    for (FunctionCategory cat :
         {FunctionCategory::kDistributive, FunctionCategory::kAlgebraic,
          FunctionCategory::kHolistic}) {
      for (bool worm : {false, true}) {
        for (bool range : {false, true}) {
          for (bool prebuilt : {false, true}) {
            for (int threads : {1, 8}) {
              const auto profile =
                  Profile(out, cat, worm, range, prebuilt, threads);
              const std::string label = RecommendAlgorithm(profile);
              EXPECT_FALSE(label.empty());
              // The label must be constructible by the engine.
              if (out == OutputFormat::kScalar) {
                EXPECT_NE(MakeScalarMedianAggregator(label, threads), nullptr);
              } else {
                EXPECT_NE(MakeVectorAggregator(label,
                                               AggregateFunction::kCount, 64,
                                               CategoryOfLabel(label) ==
                                                       AlgorithmCategory::kTree
                                                   ? 1
                                                   : threads),
                          nullptr);
              }
            }
          }
        }
      }
    }
  }
}

TEST(AdvisorTest, ProfileForQueryDerivesFields) {
  const auto profile = ProfileForQuery(MakeQ7(), /*worm=*/true,
                                       /*prebuilt_index=*/true,
                                       /*num_threads=*/4);
  EXPECT_EQ(profile.output, OutputFormat::kVector);
  EXPECT_EQ(profile.category, FunctionCategory::kDistributive);
  EXPECT_TRUE(profile.worm);
  EXPECT_TRUE(profile.has_range_condition);
  EXPECT_TRUE(profile.prebuilt_index);
  EXPECT_EQ(profile.num_threads, 4);
  EXPECT_EQ(RecommendAlgorithm(profile), "Btree");
}

TEST(AdvisorTest, ExplanationMentionsRecommendation) {
  const auto profile = ProfileForQuery(MakeQ3());
  const std::string explanation = ExplainRecommendation(profile);
  EXPECT_NE(explanation.find(RecommendAlgorithm(profile)), std::string::npos);
  EXPECT_NE(explanation.find("holistic"), std::string::npos);
}

}  // namespace
}  // namespace memagg
