// Tests for the Figure 12 decision-flow advisor: exhaustive over the input
// space, checking every leaf of the flow chart, plus the edge behavior and
// error band of the sampling cardinality estimator.

#include "core/advisor.h"

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/query.h"
#include "data/zipf.h"

namespace memagg {
namespace {

WorkloadProfile Profile(OutputFormat out, FunctionCategory cat, bool worm,
                        bool range, bool prebuilt, int threads) {
  return WorkloadProfile{out, cat, worm, range, prebuilt, threads};
}

TEST(AdvisorTest, ScalarWoroPicksSpreadsort) {
  EXPECT_EQ(RecommendAlgorithm(Profile(OutputFormat::kScalar,
                                       FunctionCategory::kHolistic, false,
                                       false, false, 1)),
            "Spreadsort");
}

TEST(AdvisorTest, ScalarWormPicksJudy) {
  EXPECT_EQ(RecommendAlgorithm(Profile(OutputFormat::kScalar,
                                       FunctionCategory::kHolistic, true,
                                       false, false, 1)),
            "Judy");
}

TEST(AdvisorTest, VectorHolisticPicksSpreadsort) {
  EXPECT_EQ(RecommendAlgorithm(Profile(OutputFormat::kVector,
                                       FunctionCategory::kHolistic, false,
                                       false, false, 1)),
            "Spreadsort");
}

TEST(AdvisorTest, VectorHolisticWideKeyPicksIntrosort) {
  // Spreadsort's byte-radix passes pay per key byte, so past the paper's
  // 32-bit synthetic domain the comparison sort wins (the columnar layer
  // feeds real composite-key widths through key_width_bits).
  WorkloadProfile profile = Profile(OutputFormat::kVector,
                                    FunctionCategory::kHolistic, false, false,
                                    false, 1);
  profile.key_width_bits = 48;
  EXPECT_EQ(RecommendAlgorithm(profile), "Introsort");
  // At or below 32 bits the default recommendation is unchanged.
  profile.key_width_bits = 32;
  EXPECT_EQ(RecommendAlgorithm(profile), "Spreadsort");
}

TEST(AdvisorTest, VectorHolisticMultithreadedPicksSortBI) {
  EXPECT_EQ(RecommendAlgorithm(Profile(OutputFormat::kVector,
                                       FunctionCategory::kHolistic, false,
                                       false, false, 8)),
            "Sort_BI");
}

TEST(AdvisorTest, VectorDistributivePicksHashLP) {
  EXPECT_EQ(RecommendAlgorithm(Profile(OutputFormat::kVector,
                                       FunctionCategory::kDistributive, false,
                                       false, false, 1)),
            "Hash_LP");
}

TEST(AdvisorTest, VectorDistributiveMultithreadedPicksTBBSC) {
  EXPECT_EQ(RecommendAlgorithm(Profile(OutputFormat::kVector,
                                       FunctionCategory::kDistributive, false,
                                       false, false, 4)),
            "Hash_TBBSC");
}

TEST(AdvisorTest, RangeWithPrebuiltIndexPicksBtree) {
  EXPECT_EQ(RecommendAlgorithm(Profile(OutputFormat::kVector,
                                       FunctionCategory::kDistributive, false,
                                       true, true, 1)),
            "Btree");
}

TEST(AdvisorTest, RangeWithoutPrebuiltIndexPicksART) {
  EXPECT_EQ(RecommendAlgorithm(Profile(OutputFormat::kVector,
                                       FunctionCategory::kDistributive, false,
                                       true, false, 1)),
            "ART");
}

TEST(AdvisorTest, AlgebraicTreatedLikeDistributive) {
  EXPECT_EQ(RecommendAlgorithm(Profile(OutputFormat::kVector,
                                       FunctionCategory::kAlgebraic, false,
                                       false, false, 1)),
            "Hash_LP");
}

TEST(AdvisorTest, ExhaustiveInputSpaceReturnsKnownLabels) {
  // Every combination must produce a label the engine can construct.
  for (OutputFormat out : {OutputFormat::kVector, OutputFormat::kScalar}) {
    for (FunctionCategory cat :
         {FunctionCategory::kDistributive, FunctionCategory::kAlgebraic,
          FunctionCategory::kHolistic}) {
      for (bool worm : {false, true}) {
        for (bool range : {false, true}) {
          for (bool prebuilt : {false, true}) {
            for (int threads : {1, 8}) {
              const auto profile =
                  Profile(out, cat, worm, range, prebuilt, threads);
              const std::string label = RecommendAlgorithm(profile);
              EXPECT_FALSE(label.empty());
              // The label must be constructible by the engine.
              if (out == OutputFormat::kScalar) {
                EXPECT_NE(MakeScalarMedianAggregator(label, threads), nullptr);
              } else {
                EXPECT_NE(MakeVectorAggregator(label,
                                               AggregateFunction::kCount, 64,
                                               CategoryOfLabel(label) ==
                                                       AlgorithmCategory::kTree
                                                   ? 1
                                                   : threads),
                          nullptr);
              }
            }
          }
        }
      }
    }
  }
}

TEST(AdvisorTest, ProfileForQueryDerivesFields) {
  const auto profile = ProfileForQuery(MakeQ7(), /*worm=*/true,
                                       /*prebuilt_index=*/true,
                                       /*num_threads=*/4);
  EXPECT_EQ(profile.output, OutputFormat::kVector);
  EXPECT_EQ(profile.category, FunctionCategory::kDistributive);
  EXPECT_TRUE(profile.worm);
  EXPECT_TRUE(profile.has_range_condition);
  EXPECT_TRUE(profile.prebuilt_index);
  EXPECT_EQ(profile.num_threads, 4);
  EXPECT_EQ(RecommendAlgorithm(profile), "Btree");
}

TEST(AdvisorTest, ExplanationMentionsRecommendation) {
  const auto profile = ProfileForQuery(MakeQ3());
  const std::string explanation = ExplainRecommendation(profile);
  EXPECT_NE(explanation.find(RecommendAlgorithm(profile)), std::string::npos);
  EXPECT_NE(explanation.find("holistic"), std::string::npos);
}

// --- EstimateGroupCardinality edge behavior (see the advisor.h contract:
// 0 for n == 0, clamped to [1, n] otherwise, exact for n <= 4096, ratio
// error bounded by sqrt(n / sample_size)). ---

TEST(CardinalityEstimateTest, EmptyInputReturnsZero) {
  EXPECT_EQ(EstimateGroupCardinality(nullptr, 0), 0u);
  const uint64_t key = 42;
  EXPECT_EQ(EstimateGroupCardinality(&key, 0), 0u);
}

TEST(CardinalityEstimateTest, SingleGroupReturnsOne) {
  for (size_t n : {1u, 7u, 4096u, 100000u}) {
    const std::vector<uint64_t> keys(n, 0xdecafULL);
    EXPECT_EQ(EstimateGroupCardinality(keys.data(), n), 1u) << "n=" << n;
  }
}

TEST(CardinalityEstimateTest, SmallInputsAreExact) {
  // n <= the sample size: every key is inspected, the count is exact.
  std::vector<uint64_t> keys(4096);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i % 137;
  EXPECT_EQ(EstimateGroupCardinality(keys.data(), keys.size()), 137u);
}

TEST(CardinalityEstimateTest, AllDistinctStaysInBandAndBounds) {
  const size_t n = 1 << 20;
  std::vector<uint64_t> keys(n);
  std::iota(keys.begin(), keys.end(), uint64_t{0});
  const size_t estimate = EstimateGroupCardinality(keys.data(), n);
  EXPECT_GE(estimate, 1u);
  EXPECT_LE(estimate, n);
  // GEE error band: at most sqrt(n / 4096) off in ratio. All-distinct is
  // the estimator's hardest case (every sampled key is a singleton).
  const double band = std::sqrt(static_cast<double>(n) / 4096.0);
  EXPECT_GE(static_cast<double>(estimate), static_cast<double>(n) / band);
}

TEST(CardinalityEstimateTest, CyclicKeysDoNotResonateWithTheStride) {
  // keys[i] = i mod C: a stride sharing a factor with C samples only a
  // subset of the residues. The coprime-stride walk must still see ~all C
  // groups. C divides n here, the worst alignment.
  const size_t n = 1 << 20;
  const size_t cycle = 1 << 14;  // 16384 groups, gcd(n/4096, cycle) = 256.
  std::vector<uint64_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = i % cycle;
  const size_t estimate = EstimateGroupCardinality(keys.data(), n);
  EXPECT_LE(estimate, n);
  const double band = std::sqrt(static_cast<double>(n) / 4096.0);
  EXPECT_GE(static_cast<double>(estimate),
            static_cast<double>(cycle) / band);
}

TEST(CardinalityEstimateTest, ZipfExponentOneStaysInBounds) {
  // Heavy skew (e = 1.0): most rows are hot ranks, the tail is sparse.
  // The estimate must stay within [1, n] and not collapse below the
  // sample's own distinct count by construction.
  const size_t n = 1 << 20;
  const uint64_t cardinality = 100000;
  ZipfGenerator zipf(cardinality, 1.0);
  Rng rng(0x5eed5eed5eed5eedULL);
  std::vector<uint64_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = zipf.Next(rng);
  const size_t estimate = EstimateGroupCardinality(keys.data(), n);
  EXPECT_GE(estimate, 1u);
  EXPECT_LE(estimate, n);
  EXPECT_LE(estimate, static_cast<size_t>(cardinality) * 16);
}

}  // namespace
}  // namespace memagg
