// Tests for range-filtered aggregation (Q7, paper Section 5.6).

#include <gtest/gtest.h>

#include <string>

#include "core/engine.h"
#include "core/query.h"
#include "data/dataset.h"
#include "test_util.h"

namespace memagg {
namespace {

class RangeAggregation : public ::testing::TestWithParam<std::string> {};

TEST_P(RangeAggregation, PaperQ7Between500And1000) {
  DatasetSpec spec{Distribution::kRseqShuffled, 50000, 2000, 41};
  const auto keys = GenerateKeys(spec);
  auto aggregator =
      MakeVectorAggregator(GetParam(), AggregateFunction::kCount, keys.size());
  ASSERT_TRUE(aggregator->SupportsRange());
  aggregator->Build(keys.data(), nullptr, keys.size());
  const Query q7 = MakeQ7();
  auto result = aggregator->IterateRange(q7.range_lo, q7.range_hi);
  SortByKey(result);
  EXPECT_EQ(result, ReferenceVectorAggregate(keys, {},
                                             AggregateFunction::kCount,
                                             q7.range_lo, q7.range_hi));
}

TEST_P(RangeAggregation, VariousRangeWidths) {
  DatasetSpec spec{Distribution::kZipf, 30000, 1000, 42};
  const auto keys = GenerateKeys(spec);
  auto aggregator =
      MakeVectorAggregator(GetParam(), AggregateFunction::kCount, keys.size());
  aggregator->Build(keys.data(), nullptr, keys.size());
  const struct {
    uint64_t lo, hi;
  } ranges[] = {{0, ~0ULL}, {0, 0}, {250, 750}, {999, 999}, {2000, 3000}};
  for (const auto& range : ranges) {
    auto result = aggregator->IterateRange(range.lo, range.hi);
    SortByKey(result);
    EXPECT_EQ(result,
              ReferenceVectorAggregate(keys, {}, AggregateFunction::kCount,
                                       range.lo, range.hi))
        << "range [" << range.lo << ", " << range.hi << "]";
  }
}

TEST_P(RangeAggregation, RangeOfHolisticAggregate) {
  // Q7 in the paper is COUNT, but the operators compose: range + MEDIAN.
  DatasetSpec spec{Distribution::kRseqShuffled, 20000, 500, 43};
  const auto keys = GenerateKeys(spec);
  const auto values = GenerateValues(keys.size(), 1000, 44);
  auto aggregator = MakeVectorAggregator(GetParam(),
                                         AggregateFunction::kMedian,
                                         keys.size());
  aggregator->Build(keys.data(), values.data(), keys.size());
  auto result = aggregator->IterateRange(100, 200);
  SortByKey(result);
  EXPECT_EQ(result, ReferenceVectorAggregate(
                        keys, values, AggregateFunction::kMedian, 100, 200));
}

INSTANTIATE_TEST_SUITE_P(Trees, RangeAggregation,
                         ::testing::ValuesIn(TreeLabels()));

TEST(RangeSupportTest, SortOperatorsSupportRangeToo) {
  const std::vector<uint64_t> keys = {5, 1, 7, 5, 9, 1};
  auto aggregator =
      MakeVectorAggregator("Spreadsort", AggregateFunction::kCount,
                           keys.size());
  EXPECT_TRUE(aggregator->SupportsRange());
  aggregator->Build(keys.data(), nullptr, keys.size());
  auto result = aggregator->IterateRange(2, 8);
  SortByKey(result);
  const VectorResult expected = {{5, 2.0}, {7, 1.0}};
  EXPECT_EQ(result, expected);
}

TEST(RangeSupportTest, HashOperatorsDeclineRange) {
  auto aggregator =
      MakeVectorAggregator("Hash_LP", AggregateFunction::kCount, 16);
  EXPECT_FALSE(aggregator->SupportsRange());
}

}  // namespace
}  // namespace memagg
