// Unit tests for the synthetic dataset generators (paper Section 4).

#include "data/dataset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "data/zipf.h"
#include "util/rng.h"

namespace memagg {
namespace {

std::map<uint64_t, uint64_t> Histogram(const std::vector<uint64_t>& keys) {
  std::map<uint64_t, uint64_t> hist;
  for (uint64_t k : keys) ++hist[k];
  return hist;
}

TEST(DatasetNamesTest, RoundTrip) {
  for (Distribution d : kAllDistributions) {
    EXPECT_EQ(DistributionFromName(DistributionName(d)), d);
  }
}

TEST(RseqTest, CyclesThroughCardinality) {
  DatasetSpec spec{Distribution::kRseq, 10, 3, 1};
  const auto keys = GenerateKeys(spec);
  EXPECT_EQ(keys, (std::vector<uint64_t>{0, 1, 2, 0, 1, 2, 0, 1, 2, 0}));
}

TEST(RseqTest, DeterministicCardinality) {
  for (uint64_t c : {1ULL, 10ULL, 100ULL, 999ULL}) {
    DatasetSpec spec{Distribution::kRseq, 10000, c, 1};
    EXPECT_EQ(CountDistinct(GenerateKeys(spec)), c) << "cardinality " << c;
  }
}

TEST(RseqShuffledTest, SameMultisetAsRseq) {
  DatasetSpec spec{Distribution::kRseq, 5000, 37, 1};
  DatasetSpec shuffled_spec = spec;
  shuffled_spec.distribution = Distribution::kRseqShuffled;
  auto plain = GenerateKeys(spec);
  auto shuffled = GenerateKeys(shuffled_spec);
  EXPECT_NE(plain, shuffled);  // Actually shuffled...
  std::sort(plain.begin(), plain.end());
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(plain, shuffled);  // ...but the same records.
}

TEST(HhitTest, HeavyHitterIsHalfTheRecords) {
  DatasetSpec spec{Distribution::kHhit, 100000, 100, 7};
  const auto keys = GenerateKeys(spec);
  ASSERT_EQ(keys.size(), 100000u);
  const auto hist = Histogram(keys);
  EXPECT_EQ(hist.size(), 100u);  // Deterministic cardinality.
  uint64_t max_count = 0;
  for (const auto& [key, count] : hist) max_count = std::max(max_count, count);
  EXPECT_GE(max_count, 50000u);
}

TEST(HhitTest, UnshuffledConcentratesHeavyHitterInFirstHalf) {
  DatasetSpec spec{Distribution::kHhit, 10000, 50, 7};
  const auto keys = GenerateKeys(spec);
  // The first half is exactly the heavy hitter.
  for (size_t i = 1; i < keys.size() / 2; ++i) {
    EXPECT_EQ(keys[i], keys[0]);
  }
}

TEST(HhitShuffledTest, SpreadsHeavyHitter) {
  DatasetSpec spec{Distribution::kHhitShuffled, 10000, 50, 7};
  const auto keys = GenerateKeys(spec);
  const auto hist = Histogram(keys);
  EXPECT_EQ(hist.size(), 50u);
  // Heavy hitter should appear in the second half too.
  uint64_t heavy = 0;
  uint64_t max_count = 0;
  for (const auto& [key, count] : hist) {
    if (count > max_count) {
      max_count = count;
      heavy = key;
    }
  }
  const uint64_t in_second_half = static_cast<uint64_t>(
      std::count(keys.begin() + keys.size() / 2, keys.end(), heavy));
  EXPECT_GT(in_second_half, 1000u);
}

TEST(ZipfGeneratorTest, RanksInRange) {
  Rng rng;
  ZipfGenerator zipf(1000, 0.5);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LT(zipf.Next(rng), 1000u);
  }
}

TEST(ZipfGeneratorTest, FrequencyFollowsRank) {
  // P(k) ~ 1/sqrt(k+1): rank 0 should be drawn noticeably more often than
  // rank 99, about sqrt(100) = 10x.
  Rng rng;
  ZipfGenerator zipf(100, 0.5);
  std::vector<uint64_t> counts(100, 0);
  for (int i = 0; i < 200000; ++i) ++counts[zipf.Next(rng)];
  EXPECT_GT(counts[0], counts[99] * 5);
  EXPECT_LT(counts[0], counts[99] * 20);
}

TEST(ZipfGeneratorTest, UnitExponentUsesLogBranch) {
  // e == 1.0 switches H/HInverse to their log/exp forms (the power form
  // divides by 1-e). P(k) ~ 1/k: rank 0 about 100x rank 99, and every draw
  // stays in range.
  Rng rng;
  ZipfGenerator zipf(100, 1.0);
  std::vector<uint64_t> counts(100, 0);
  for (int i = 0; i < 400000; ++i) {
    const uint64_t rank = zipf.Next(rng);
    ASSERT_LT(rank, 100u);
    ++counts[rank];
  }
  EXPECT_GT(counts[0], counts[99] * 30);
  EXPECT_GT(counts[0], counts[9] * 3);  // Mass decreases along ranks.
  EXPECT_GT(counts[99], 0u);            // But the tail is still reachable.
}

TEST(ZipfGeneratorTest, ZeroExponentIsUniform) {
  // e == 0 degenerates to the uniform distribution: every rank equally
  // likely, so min and max counts stay within sampling noise of each other.
  Rng rng;
  ZipfGenerator zipf(100, 0.0);
  std::vector<uint64_t> counts(100, 0);
  for (int i = 0; i < 400000; ++i) {
    const uint64_t rank = zipf.Next(rng);
    ASSERT_LT(rank, 100u);
    ++counts[rank];
  }
  const auto [min_it, max_it] =
      std::minmax_element(counts.begin(), counts.end());
  EXPECT_GT(*min_it, 0u);
  // Expected 4000 per rank; 4 sigma of binomial noise is ~250. A 30% band
  // is far outside noise yet catches any rank-dependent skew.
  EXPECT_LT(*max_it, *min_it * 13 / 10 + 100);
}

TEST(ZipfGeneratorTest, SingleItem) {
  Rng rng;
  ZipfGenerator zipf(1, 0.5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Next(rng), 0u);
}

TEST(ZipfDatasetTest, CardinalityNearTargetWhenSmall) {
  // With c << n the realized cardinality should essentially hit the target.
  DatasetSpec spec{Distribution::kZipf, 1000000, 100, 3};
  const uint64_t distinct = CountDistinct(GenerateKeys(spec));
  EXPECT_GE(distinct, 95u);
  EXPECT_LE(distinct, 100u);
}

TEST(MovingClusterTest, KeysStayInSlidingWindow) {
  const uint64_t n = 100000;
  const uint64_t c = 10000;
  DatasetSpec spec{Distribution::kMovingCluster, n, c, 9};
  const auto keys = GenerateKeys(spec);
  constexpr uint64_t kWindow = 64;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t base = (c - kWindow) * i / n;
    EXPECT_GE(keys[i], base) << "at " << i;
    EXPECT_LE(keys[i], base + kWindow) << "at " << i;
  }
}

TEST(MovingClusterTest, CoversKeySpace) {
  DatasetSpec spec{Distribution::kMovingCluster, 1000000, 1000, 9};
  const auto keys = GenerateKeys(spec);
  const uint64_t max_key = *std::max_element(keys.begin(), keys.end());
  EXPECT_GT(max_key, 900u);
  EXPECT_LE(max_key, 1000u);
}

TEST(IsValidSpecTest, EnforcesPerDistributionConstraints) {
  // Cardinality bounds.
  EXPECT_FALSE(IsValidSpec({Distribution::kRseq, 100, 0, 1}));
  EXPECT_FALSE(IsValidSpec({Distribution::kRseq, 100, 101, 1}));
  EXPECT_TRUE(IsValidSpec({Distribution::kRseq, 100, 100, 1}));
  // Hhit: the heavy hitter must cover half the records.
  EXPECT_TRUE(IsValidSpec({Distribution::kHhit, 100, 51, 1}));
  EXPECT_FALSE(IsValidSpec({Distribution::kHhit, 100, 52, 1}));
  EXPECT_FALSE(IsValidSpec({Distribution::kHhitShuffled, 10000000, 10000000, 1}));
  // MovC: cardinality must cover the 64-wide window.
  EXPECT_FALSE(IsValidSpec({Distribution::kMovingCluster, 1000, 63, 1}));
  EXPECT_TRUE(IsValidSpec({Distribution::kMovingCluster, 1000, 64, 1}));
}

TEST(GeneratorsTest, DeterministicAcrossCalls) {
  for (Distribution d : kAllDistributions) {
    DatasetSpec spec{d, 10000, 100, 5};
    EXPECT_EQ(GenerateKeys(spec), GenerateKeys(spec)) << DistributionName(d);
  }
}

TEST(GeneratorsTest, SeedChangesProbabilisticData) {
  DatasetSpec a{Distribution::kZipf, 10000, 100, 5};
  DatasetSpec b = a;
  b.seed = 6;
  EXPECT_NE(GenerateKeys(a), GenerateKeys(b));
}

TEST(GenerateValuesTest, InRangeAndDeterministic) {
  const auto values = GenerateValues(10000, 500);
  EXPECT_EQ(values.size(), 10000u);
  for (uint64_t v : values) EXPECT_LT(v, 500u);
  EXPECT_EQ(values, GenerateValues(10000, 500));
}

TEST(ShuffleKeysTest, PermutesDeterministically) {
  std::vector<uint64_t> keys(1000);
  std::iota(keys.begin(), keys.end(), 0);
  auto a = keys;
  auto b = keys;
  ShuffleKeys(a, 11);
  ShuffleKeys(b, 11);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, keys);
  std::sort(a.begin(), a.end());
  EXPECT_EQ(a, keys);
}

TEST(MicroDistributionsTest, MatchTheirSpecs) {
  const uint64_t n = 100000;
  {
    const auto keys = GenerateMicroKeys(MicroDistribution::kRandom1To5, n);
    for (uint64_t k : keys) {
      EXPECT_GE(k, 1u);
      EXPECT_LE(k, 5u);
    }
  }
  {
    const auto keys = GenerateMicroKeys(MicroDistribution::kRandom1kTo1M, n);
    for (uint64_t k : keys) {
      EXPECT_GE(k, 1000u);
      EXPECT_LE(k, 1000000u);
    }
  }
  {
    const auto keys =
        GenerateMicroKeys(MicroDistribution::kPresortedSequential, n);
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    EXPECT_EQ(keys.front(), 0u);
    EXPECT_EQ(keys.back(), n - 1);
  }
  {
    const auto keys =
        GenerateMicroKeys(MicroDistribution::kReversedSequential, n);
    EXPECT_TRUE(std::is_sorted(keys.rbegin(), keys.rend()));
    EXPECT_EQ(keys.front(), n - 1);
    EXPECT_EQ(keys.back(), 0u);
  }
}

}  // namespace
}  // namespace memagg
