// Tests for the query-stats observability layer (src/obs/query_stats.h):
// merge semantics, the per-worker registry, the RAII phase timer, JSON
// serialization, and — end to end — that every engine-registered operator
// reports non-zero phase timings plus at least one operator-specific
// counter through ExecuteVectorQuery.

#include "obs/query_stats.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "data/dataset.h"
#include "test_util.h"

namespace memagg {
namespace {

TEST(QueryStatsTest, CountersSumByDefault) {
  QueryStats stats;
  stats.Add(StatCounter::kRehashes, 2);
  stats.Add(StatCounter::kRehashes, 3);
  EXPECT_EQ(stats.Get(StatCounter::kRehashes), 5u);
}

TEST(QueryStatsTest, MaxOfRaisesButNeverLowers) {
  QueryStats stats;
  stats.MaxOf(StatCounter::kProbeMax, 7);
  stats.MaxOf(StatCounter::kProbeMax, 3);
  EXPECT_EQ(stats.Get(StatCounter::kProbeMax), 7u);
}

TEST(QueryStatsTest, MergeSumsAndMaxesByCounterKind) {
  QueryStats a;
  a.Add(StatCounter::kHashEntries, 10);
  a.MaxOf(StatCounter::kProbeMax, 4);
  a.MaxOf(StatCounter::kWorkersUsed, 2);
  a.AddPhase(StatPhase::kBuild, 100, 1.0);

  QueryStats b;
  b.Add(StatCounter::kHashEntries, 5);
  b.MaxOf(StatCounter::kProbeMax, 9);
  b.MaxOf(StatCounter::kWorkersUsed, 1);
  b.AddPhase(StatPhase::kBuild, 50, 0.5);

  a.Merge(b);
  EXPECT_EQ(a.Get(StatCounter::kHashEntries), 15u);  // Sum-merged.
  EXPECT_EQ(a.Get(StatCounter::kProbeMax), 9u);      // Max-merged.
  EXPECT_EQ(a.Get(StatCounter::kWorkersUsed), 2u);   // Max-merged.
  EXPECT_EQ(a.PhaseCycles(StatPhase::kBuild), 150u);
  EXPECT_DOUBLE_EQ(a.PhaseMillis(StatPhase::kBuild), 1.5);
}

TEST(QueryStatsTest, TotalCountsOnlyBuildAndIterate) {
  // Subphases (partition/sort/merge) happen *inside* build or iterate;
  // adding them to the total would double-count.
  QueryStats stats;
  stats.AddPhase(StatPhase::kBuild, 100, 1.0);
  stats.AddPhase(StatPhase::kIterate, 50, 0.5);
  stats.AddPhase(StatPhase::kSort, 80, 0.8);
  stats.AddPhase(StatPhase::kPartition, 10, 0.1);
  stats.AddPhase(StatPhase::kMerge, 10, 0.1);
  EXPECT_EQ(stats.TotalCycles(), 150u);
  EXPECT_DOUBLE_EQ(stats.TotalMillis(), 1.5);
}

TEST(QueryStatsTest, PhaseTimerRecordsOnceEvenIfStoppedTwice) {
  QueryStats stats;
  {
    PhaseTimer timer(&stats, StatPhase::kBuild);
    timer.Stop();
    timer.Stop();  // Idempotent; destructor must not record again either.
  }
  if (StatsConfig::kEnabled) {
    EXPECT_GT(stats.PhaseCycles(StatPhase::kBuild), 0u);
  } else {
    EXPECT_EQ(stats.PhaseCycles(StatPhase::kBuild), 0u);
  }
  const uint64_t once = stats.PhaseCycles(StatPhase::kBuild);
  EXPECT_EQ(stats.PhaseCycles(StatPhase::kBuild), once);
}

TEST(QueryStatsTest, PhaseTimerToleratesNullTarget) {
  PhaseTimer timer(nullptr, StatPhase::kIterate);
  timer.Stop();  // Must not crash.
}

TEST(QueryStatsTest, RegistryShardsAreIndependentUntilCollect) {
  StatsRegistry registry(4);
  registry.WorkerShard(0).Add(StatCounter::kMorselsClaimed, 3);
  registry.WorkerShard(2).Add(StatCounter::kMorselsClaimed, 4);
  registry.WorkerShard(2).MaxOf(StatCounter::kWorkersUsed, 3);
  const QueryStats merged = registry.Collect();
  EXPECT_EQ(merged.Get(StatCounter::kMorselsClaimed), 7u);
  EXPECT_EQ(merged.Get(StatCounter::kWorkersUsed), 3u);
  registry.Reset();
  EXPECT_EQ(registry.Collect().Get(StatCounter::kMorselsClaimed), 0u);
}

// Out-of-range worker ids used to wrap modulo num_shards, silently aliasing
// two "workers" onto one shard and breaking the single-writer contract. They
// now fail loudly in all build modes.
TEST(QueryStatsDeathTest, RegistryRejectsOutOfRangeWorkerIds) {
  StatsRegistry registry(2);
  EXPECT_DEATH(registry.WorkerShard(5), "MEMAGG_CHECK");
  EXPECT_DEATH(registry.WorkerShard(-1), "MEMAGG_CHECK");
}

TEST(QueryStatsTest, ToJsonEmitsOnlyNonZeroFields) {
  QueryStats stats;
  stats.AddPhase(StatPhase::kBuild, 123, 0.5);
  stats.Add(StatCounter::kHashEntries, 42);
  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"build\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"hash_entries\":42"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"sort\""), std::string::npos) << json;
  EXPECT_EQ(json.find("\"rehashes\""), std::string::npos) << json;
  EXPECT_EQ(QueryStats{}.ToJson(),
            std::string("{\"phases\":{},\"counters\":{}}"));
}

// --- End-to-end: every engine label reports through ExecuteVectorQuery ----

struct LabelCase {
  std::string label;
  int threads;
};

std::vector<LabelCase> AllEngineCases() {
  std::vector<LabelCase> cases;
  for (const std::string& label : SerialLabels()) cases.push_back({label, 1});
  for (const char* label :
       {"Ttree", "Quicksort", "Sort_MSBRadix", "Sort_LSBRadix", "Hash_MPH",
        "Hybrid"}) {
    cases.push_back({label, 1});
  }
  for (const char* label :
       {"Hash_TBBSC", "Hash_LC", "Sort_BI", "Sort_QSLB", "Sort_SS",
        "Sort_TBB", "Hybrid", "Hash_PLocal", "Hash_Striped", "Hash_PRadix"}) {
    cases.push_back({label, 4});
  }
  return cases;
}

TEST(QueryStatsEndToEndTest, EveryOperatorReportsPhasesAndCounters) {
  if (!StatsConfig::kEnabled) GTEST_SKIP() << "stats compiled out";
  // Large enough that 4 threads get a multi-morsel grid (>= 2 * 16K rows).
  DatasetSpec spec{Distribution::kRseqShuffled, 100000, 500, 131};
  const auto keys = GenerateKeys(spec);
  const auto expected =
      ReferenceVectorAggregate(keys, {}, AggregateFunction::kCount);

  for (const LabelCase& c : AllEngineCases()) {
    SCOPED_TRACE(c.label + " threads=" + std::to_string(c.threads));
    VectorQueryExecution execution = ExecuteVectorQuery(
        c.label, AggregateFunction::kCount, keys.data(), nullptr, keys.size(),
        keys.size(), ExecutionContext{c.threads});
    SortByKey(execution.result);
    EXPECT_EQ(execution.result, expected);

    const QueryStats& stats = execution.stats;
    // Engine-recorded phases and universal counters.
    EXPECT_GT(stats.PhaseCycles(StatPhase::kBuild), 0u);
    EXPECT_GT(stats.PhaseCycles(StatPhase::kIterate), 0u);
    EXPECT_EQ(stats.Get(StatCounter::kRowsBuilt), keys.size());
    EXPECT_EQ(stats.Get(StatCounter::kGroupsOut), expected.size());
    EXPECT_EQ(stats.TotalCycles(), stats.PhaseCycles(StatPhase::kBuild) +
                                       stats.PhaseCycles(StatPhase::kIterate));

    // At least one operator-specific counter per algorithm family.
    switch (CategoryOfLabel(c.label)) {
      case AlgorithmCategory::kHash:
        EXPECT_GT(stats.Get(StatCounter::kHashEntries), 0u);
        break;
      case AlgorithmCategory::kTree:
        EXPECT_GT(stats.Get(StatCounter::kTreeNodes), 0u);
        break;
      case AlgorithmCategory::kSort:
        EXPECT_EQ(stats.Get(StatCounter::kRowsSorted), keys.size());
        EXPECT_GT(stats.PhaseCycles(StatPhase::kSort), 0u);
        break;
    }

    // Parallel hash operators drive the executor with the query's context,
    // so their morsel/worker accounting must surface. (Parallel sorts build
    // their executors inside the sort kernels, which take only a thread
    // count; Hybrid's build loop is serial by design.)
    if (c.threads > 1 && c.label.rfind("Hash", 0) == 0) {
      EXPECT_GT(stats.Get(StatCounter::kMorselsClaimed), 0u);
      EXPECT_GE(stats.Get(StatCounter::kWorkersUsed), 1u);
      EXPECT_LE(stats.Get(StatCounter::kWorkersUsed),
                static_cast<uint64_t>(c.threads));
    }
  }
}

TEST(QueryStatsEndToEndTest, ProbeStatsReportedForOpenAddressing) {
  if (!StatsConfig::kEnabled) GTEST_SKIP() << "stats compiled out";
  DatasetSpec spec{Distribution::kRseqShuffled, 20000, 1000, 132};
  const auto keys = GenerateKeys(spec);
  const auto execution =
      ExecuteVectorQuery("Hash_LP", AggregateFunction::kCount, keys.data(),
                         nullptr, keys.size(), keys.size());
  // Every resident entry probes at least once, so total >= entries >= max.
  EXPECT_EQ(execution.stats.Get(StatCounter::kHashEntries), 1000u);
  EXPECT_GE(execution.stats.Get(StatCounter::kProbeTotal), 1000u);
  EXPECT_GE(execution.stats.Get(StatCounter::kProbeMax), 1u);
}

TEST(QueryStatsEndToEndTest, RehashCounterFiresWhenTableIsUndersized) {
  if (!StatsConfig::kEnabled) GTEST_SKIP() << "stats compiled out";
  DatasetSpec spec{Distribution::kRseqShuffled, 20000, 10000, 133};
  const auto keys = GenerateKeys(spec);
  // expected_size=2 forces the linear-probing table to grow repeatedly.
  const auto execution = ExecuteVectorQuery(
      "Hash_LP", AggregateFunction::kCount, keys.data(), nullptr, keys.size(),
      /*expected_size=*/2);
  EXPECT_GT(execution.stats.Get(StatCounter::kRehashes), 0u);
}

TEST(QueryStatsEndToEndTest, HybridSpillCounterFiresPastThreshold) {
  if (!StatsConfig::kEnabled) GTEST_SKIP() << "stats compiled out";
  // 50000 distinct groups exceed the hybrid's 44000-group hash budget.
  DatasetSpec spec{Distribution::kRseqShuffled, 100000, 50000, 134};
  const auto keys = GenerateKeys(spec);
  const auto execution =
      ExecuteVectorQuery("Hybrid", AggregateFunction::kCount, keys.data(),
                         nullptr, keys.size(), keys.size());
  EXPECT_EQ(execution.stats.Get(StatCounter::kHybridSpills), 1u);
  EXPECT_GT(execution.stats.Get(StatCounter::kRowsSorted), 0u);
  EXPECT_GT(execution.stats.PhaseCycles(StatPhase::kSort), 0u);
}

TEST(QueryStatsEndToEndTest, LocalPartitionReportsMergeAccounting) {
  if (!StatsConfig::kEnabled) GTEST_SKIP() << "stats compiled out";
  DatasetSpec spec{Distribution::kRseqShuffled, 100000, 500, 135};
  const auto keys = GenerateKeys(spec);
  const auto execution =
      ExecuteVectorQuery("Hash_PLocal", AggregateFunction::kCount, keys.data(),
                         nullptr, keys.size(), keys.size(),
                         ExecutionContext{4});
  EXPECT_EQ(execution.stats.Get(StatCounter::kPartitions), 4u);
  EXPECT_GT(execution.stats.PhaseCycles(StatPhase::kMerge), 0u);
}

TEST(QueryStatsEndToEndTest, RadixPartitionReportsPartitionPhase) {
  if (!StatsConfig::kEnabled) GTEST_SKIP() << "stats compiled out";
  DatasetSpec spec{Distribution::kRseqShuffled, 100000, 500, 136};
  const auto keys = GenerateKeys(spec);
  const auto execution =
      ExecuteVectorQuery("Hash_PRadix", AggregateFunction::kCount, keys.data(),
                         nullptr, keys.size(), keys.size(),
                         ExecutionContext{4});
  EXPECT_EQ(execution.stats.Get(StatCounter::kPartitions), 4u);
  EXPECT_GT(execution.stats.PhaseCycles(StatPhase::kPartition), 0u);
  // The partition subphase is contained in build, never larger than it.
  EXPECT_LE(execution.stats.PhaseCycles(StatPhase::kPartition),
            execution.stats.PhaseCycles(StatPhase::kBuild));
}

TEST(QueryStatsEndToEndTest, CuckooKicksSurfaceUnderChurn) {
  if (!StatsConfig::kEnabled) GTEST_SKIP() << "stats compiled out";
  DatasetSpec spec{Distribution::kRseqShuffled, 50000, 20000, 137};
  const auto keys = GenerateKeys(spec);
  // An undersized cuckoo table must displace entries while growing.
  const auto execution = ExecuteVectorQuery(
      "Hash_LC", AggregateFunction::kCount, keys.data(), nullptr, keys.size(),
      /*expected_size=*/16);
  EXPECT_EQ(execution.stats.Get(StatCounter::kHashEntries), 20000u);
  EXPECT_GT(execution.stats.Get(StatCounter::kCuckooKicks), 0u);
}

}  // namespace
}  // namespace memagg
