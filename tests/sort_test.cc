// Unit and property tests for the serial sort algorithms, checked against
// std::sort across all micro distributions and adversarial inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/sorters.h"
#include "data/dataset.h"
#include "sort/heapsort.h"
#include "sort/insertion_sort.h"
#include "sort/introsort.h"
#include "sort/quicksort.h"
#include "sort/radix_sort.h"
#include "sort/sort_common.h"
#include "sort/spreadsort.h"
#include "util/rng.h"

namespace memagg {
namespace {

using KeySortFn = std::function<void(uint64_t*, uint64_t*)>;

struct NamedSort {
  std::string name;
  KeySortFn fn;
};

std::vector<NamedSort> AllKeySorts() {
  return {
      {"Quicksort",
       [](uint64_t* f, uint64_t* l) {
         QuickSort(f, l, KeyLess<IdentityKey>{});
       }},
      {"Introsort",
       [](uint64_t* f, uint64_t* l) {
         IntroSort(f, l, KeyLess<IdentityKey>{});
       }},
      {"Heapsort",
       [](uint64_t* f, uint64_t* l) { HeapSort(f, l, KeyLess<IdentityKey>{}); }},
      {"InsertionSort",
       [](uint64_t* f, uint64_t* l) {
         InsertionSort(f, l, KeyLess<IdentityKey>{});
       }},
      {"MsbRadix",
       [](uint64_t* f, uint64_t* l) { MsbRadixSort(f, l, IdentityKey{}); }},
      {"LsbRadix",
       [](uint64_t* f, uint64_t* l) { LsbRadixSort(f, l, IdentityKey{}); }},
      {"Spreadsort",
       [](uint64_t* f, uint64_t* l) { SpreadSort(f, l, IdentityKey{}); }},
  };
}

class SortCorrectness : public ::testing::TestWithParam<int> {
 protected:
  NamedSort sort() const { return AllKeySorts()[GetParam()]; }
};

void ExpectSortsLike(const KeySortFn& fn, std::vector<uint64_t> input) {
  std::vector<uint64_t> expected = input;
  std::sort(expected.begin(), expected.end());
  fn(input.data(), input.data() + input.size());
  EXPECT_EQ(input, expected);
}

TEST_P(SortCorrectness, EmptyAndSingleton) {
  ExpectSortsLike(sort().fn, {});
  ExpectSortsLike(sort().fn, {42});
}

TEST_P(SortCorrectness, SmallFixed) {
  ExpectSortsLike(sort().fn, {3, 1, 2});
  ExpectSortsLike(sort().fn, {2, 2, 2, 2});
  ExpectSortsLike(sort().fn, {5, 4, 3, 2, 1});
  ExpectSortsLike(sort().fn, {1, 2, 3, 4, 5});
}

TEST_P(SortCorrectness, AllMicroDistributions) {
  for (MicroDistribution d : kAllMicroDistributions) {
    ExpectSortsLike(sort().fn, GenerateMicroKeys(d, 20000));
  }
}

TEST_P(SortCorrectness, ExtremeValues) {
  Rng rng(3);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 5000; ++i) {
    switch (rng.NextBounded(4)) {
      case 0:
        keys.push_back(0);
        break;
      case 1:
        keys.push_back(~0ULL);
        break;
      case 2:
        keys.push_back(rng.Next());
        break;
      default:
        keys.push_back(rng.NextBounded(3));
        break;
    }
  }
  ExpectSortsLike(sort().fn, keys);
}

TEST_P(SortCorrectness, OrganPipe) {
  // Ascending then descending: a classic quicksort stress shape.
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 10000; ++i) keys.push_back(i);
  for (uint64_t i = 10000; i-- > 0;) keys.push_back(i);
  ExpectSortsLike(sort().fn, keys);
}

TEST_P(SortCorrectness, ManyDuplicatesFewDistinct) {
  Rng rng(4);
  std::vector<uint64_t> keys(50000);
  for (auto& k : keys) k = rng.NextBounded(2);
  ExpectSortsLike(sort().fn, keys);
}

TEST_P(SortCorrectness, SparseHighBits) {
  // Keys that differ only in high bytes exercise radix pass skipping.
  Rng rng(5);
  std::vector<uint64_t> keys(20000);
  for (auto& k : keys) k = rng.NextBounded(16) << 56;
  ExpectSortsLike(sort().fn, keys);
}

INSTANTIATE_TEST_SUITE_P(AllSorts, SortCorrectness,
                         ::testing::Range(0, 7),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return AllKeySorts()[info.param].name;
                         });

// --- Record (key, value) sorting used by the sort-based operators ---------

using Record = std::pair<uint64_t, uint64_t>;

template <typename Sorter>
void ExpectRecordSortGroupsKeys(Sorter sorter) {
  Rng rng(6);
  std::vector<Record> records(30000);
  for (uint64_t i = 0; i < records.size(); ++i) {
    records[i] = {rng.NextBounded(500), i};
  }
  std::vector<Record> expected = records;
  sorter(records.data(), records.data() + records.size(), PairFirstKey{});
  // Keys must be sorted.
  EXPECT_TRUE(std::is_sorted(
      records.begin(), records.end(),
      [](const Record& a, const Record& b) { return a.first < b.first; }));
  // And the multiset of records preserved.
  auto normalize = [](std::vector<Record> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(normalize(records), normalize(expected));
}

TEST(RecordSortTest, IntrosortGroupsRecords) {
  ExpectRecordSortGroupsKeys(IntrosortSorter{});
}

TEST(RecordSortTest, SpreadsortGroupsRecords) {
  ExpectRecordSortGroupsKeys(SpreadsortSorter{});
}

TEST(RecordSortTest, MsbRadixGroupsRecords) {
  ExpectRecordSortGroupsKeys(MsbRadixSorter{});
}

TEST(RecordSortTest, LsbRadixGroupsRecords) {
  ExpectRecordSortGroupsKeys(LsbRadixSorter{});
}

TEST(RecordSortTest, QuicksortGroupsRecords) {
  ExpectRecordSortGroupsKeys(QuicksortSorter{});
}

TEST(LsbRadixTest, IsStable) {
  // Equal keys must retain their input order (LSB radix is stable; the
  // sort-based aggregators do not rely on it, but the property is part of
  // the algorithm's contract).
  std::vector<Record> records = {{2, 0}, {1, 1}, {2, 2}, {1, 3}, {2, 4}};
  LsbRadixSort(records.data(), records.data() + records.size(),
               PairFirstKey{});
  EXPECT_EQ(records, (std::vector<Record>{
                         {1, 1}, {1, 3}, {2, 0}, {2, 2}, {2, 4}}));
}

TEST(IntrosortTest, HandlesQuicksortKillerAdversary) {
  // Median-of-three killer: organ-pipe-ish permutation that degrades plain
  // quicksort; introsort's depth bound must keep it O(n log n). We only
  // check correctness here (the time bound shows up as the test not hanging).
  const int n = 1 << 16;
  std::vector<uint64_t> keys(n);
  // McIlroy-style antiquicksort approximation: interleave extremes.
  for (int i = 0; i < n; ++i) {
    keys[i] = (i % 2 == 0) ? static_cast<uint64_t>(i)
                           : static_cast<uint64_t>(n - i);
  }
  ExpectSortsLike(
      [](uint64_t* f, uint64_t* l) { IntroSort(f, l, KeyLess<IdentityKey>{}); },
      keys);
}

}  // namespace
}  // namespace memagg
