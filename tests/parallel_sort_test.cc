// Tests for the four parallel sort algorithms (paper Section 5.8 / Figure
// 10): correctness against std::sort across thread counts and distributions.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "sort/block_indirect_sort.h"
#include "sort/parallel_quicksort.h"
#include "sort/samplesort.h"
#include "sort/sort_common.h"
#include "sort/task_quicksort.h"
#include "util/rng.h"

namespace memagg {
namespace {

using ParallelSortFn = std::function<void(uint64_t*, uint64_t*, int)>;

struct NamedParallelSort {
  std::string name;
  ParallelSortFn fn;
};

std::vector<NamedParallelSort> AllParallelSorts() {
  return {
      {"Sort_QSLB",
       [](uint64_t* f, uint64_t* l, int t) { ParallelQuickSort(f, l, t); }},
      {"Sort_BI",
       [](uint64_t* f, uint64_t* l, int t) { BlockIndirectSort(f, l, t); }},
      {"Sort_SS", [](uint64_t* f, uint64_t* l, int t) { SampleSort(f, l, t); }},
      {"Sort_TBB",
       [](uint64_t* f, uint64_t* l, int t) { TaskQuickSort(f, l, t); }},
  };
}

struct ParallelCase {
  int sort_index;
  int threads;
};

class ParallelSortCorrectness
    : public ::testing::TestWithParam<ParallelCase> {};

void ExpectSorted(const ParallelSortFn& fn, std::vector<uint64_t> input,
                  int threads) {
  std::vector<uint64_t> expected = input;
  std::sort(expected.begin(), expected.end());
  fn(input.data(), input.data() + input.size(), threads);
  ASSERT_EQ(input, expected);
}

TEST_P(ParallelSortCorrectness, RandomLarge) {
  const NamedParallelSort named = AllParallelSorts()[GetParam().sort_index];
  Rng rng(7);
  // Above the sequential threshold so the parallel path actually runs.
  std::vector<uint64_t> keys(200000);
  for (auto& k : keys) k = rng.Next();
  ExpectSorted(named.fn, keys, GetParam().threads);
}

TEST_P(ParallelSortCorrectness, AllMicroDistributions) {
  const NamedParallelSort named = AllParallelSorts()[GetParam().sort_index];
  for (MicroDistribution d : kAllMicroDistributions) {
    ExpectSorted(named.fn, GenerateMicroKeys(d, 100000), GetParam().threads);
  }
}

TEST_P(ParallelSortCorrectness, TinyInputFallsBackToSequential) {
  const NamedParallelSort named = AllParallelSorts()[GetParam().sort_index];
  ExpectSorted(named.fn, {}, GetParam().threads);
  ExpectSorted(named.fn, {3, 1, 2}, GetParam().threads);
}

TEST_P(ParallelSortCorrectness, AllEqualKeys) {
  const NamedParallelSort named = AllParallelSorts()[GetParam().sort_index];
  std::vector<uint64_t> keys(150000, 77);
  ExpectSorted(named.fn, keys, GetParam().threads);
}

std::vector<ParallelCase> AllCases() {
  std::vector<ParallelCase> cases;
  for (int s = 0; s < 4; ++s) {
    for (int t : {1, 2, 4, 8}) cases.push_back({s, t});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllSortsAllThreads, ParallelSortCorrectness, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<ParallelCase>& info) {
      return AllParallelSorts()[info.param.sort_index].name + "_t" +
             std::to_string(info.param.threads);
    });

TEST(ParallelRecordSortTest, BlockIndirectSortsRecords) {
  Rng rng(8);
  std::vector<std::pair<uint64_t, uint64_t>> records(120000);
  for (uint64_t i = 0; i < records.size(); ++i) {
    records[i] = {rng.NextBounded(1000), i};
  }
  BlockIndirectSort(records.data(), records.data() + records.size(),
                    KeyLess<PairFirstKey>{}, 4);
  EXPECT_TRUE(std::is_sorted(records.begin(), records.end(),
                             [](const auto& a, const auto& b) {
                               return a.first < b.first;
                             }));
}

TEST(ParallelRecordSortTest, ParallelQuicksortSortsRecords) {
  Rng rng(9);
  std::vector<std::pair<uint64_t, uint64_t>> records(120000);
  for (uint64_t i = 0; i < records.size(); ++i) {
    records[i] = {rng.Next(), i};
  }
  ParallelQuickSort(records.data(), records.data() + records.size(),
                    KeyLess<PairFirstKey>{}, 4);
  EXPECT_TRUE(std::is_sorted(records.begin(), records.end(),
                             [](const auto& a, const auto& b) {
                               return a.first < b.first;
                             }));
}

}  // namespace
}  // namespace memagg
