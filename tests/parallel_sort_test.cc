// Tests for the four parallel sort algorithms (paper Section 5.8 / Figure
// 10): correctness against std::sort across thread counts and distributions.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "sort/block_indirect_sort.h"
#include "sort/parallel_quicksort.h"
#include "sort/samplesort.h"
#include "sort/sort_common.h"
#include "sort/task_quicksort.h"
#include "util/rng.h"

namespace memagg {
namespace {

using ParallelSortFn = std::function<void(uint64_t*, uint64_t*, int)>;

struct NamedParallelSort {
  std::string name;
  ParallelSortFn fn;
};

std::vector<NamedParallelSort> AllParallelSorts() {
  return {
      {"Sort_QSLB",
       [](uint64_t* f, uint64_t* l, int t) { ParallelQuickSort(f, l, t); }},
      {"Sort_BI",
       [](uint64_t* f, uint64_t* l, int t) { BlockIndirectSort(f, l, t); }},
      {"Sort_SS", [](uint64_t* f, uint64_t* l, int t) { SampleSort(f, l, t); }},
      {"Sort_TBB",
       [](uint64_t* f, uint64_t* l, int t) { TaskQuickSort(f, l, t); }},
  };
}

struct ParallelCase {
  int sort_index;
  int threads;
};

class ParallelSortCorrectness
    : public ::testing::TestWithParam<ParallelCase> {};

void ExpectSorted(const ParallelSortFn& fn, std::vector<uint64_t> input,
                  int threads) {
  std::vector<uint64_t> expected = input;
  std::sort(expected.begin(), expected.end());
  fn(input.data(), input.data() + input.size(), threads);
  ASSERT_EQ(input, expected);
}

TEST_P(ParallelSortCorrectness, RandomLarge) {
  const NamedParallelSort named = AllParallelSorts()[GetParam().sort_index];
  Rng rng(7);
  // Above the sequential threshold so the parallel path actually runs.
  std::vector<uint64_t> keys(200000);
  for (auto& k : keys) k = rng.Next();
  ExpectSorted(named.fn, keys, GetParam().threads);
}

TEST_P(ParallelSortCorrectness, AllMicroDistributions) {
  const NamedParallelSort named = AllParallelSorts()[GetParam().sort_index];
  for (MicroDistribution d : kAllMicroDistributions) {
    ExpectSorted(named.fn, GenerateMicroKeys(d, 100000), GetParam().threads);
  }
}

TEST_P(ParallelSortCorrectness, TinyInputFallsBackToSequential) {
  const NamedParallelSort named = AllParallelSorts()[GetParam().sort_index];
  ExpectSorted(named.fn, {}, GetParam().threads);
  ExpectSorted(named.fn, {3, 1, 2}, GetParam().threads);
}

TEST_P(ParallelSortCorrectness, AllEqualKeys) {
  const NamedParallelSort named = AllParallelSorts()[GetParam().sort_index];
  std::vector<uint64_t> keys(150000, 77);
  ExpectSorted(named.fn, keys, GetParam().threads);
}

std::vector<ParallelCase> AllCases() {
  std::vector<ParallelCase> cases;
  for (int s = 0; s < 4; ++s) {
    for (int t : {1, 2, 4, 8}) cases.push_back({s, t});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllSortsAllThreads, ParallelSortCorrectness, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<ParallelCase>& info) {
      return AllParallelSorts()[info.param.sort_index].name + "_t" +
             std::to_string(info.param.threads);
    });

TEST(SampleSortSplitterTest, EqualSplitterRunsSpreadAcrossBuckets) {
  // Regression: with upper_bound-only routing, every record equal to a
  // splitter funnels into one bucket, so a duplicate-heavy input collapses
  // onto a single worker. The router must spread ties round-robin over
  // their full valid splitter span.
  std::less<uint64_t> less;
  // 7 splitters for 8 buckets, all equal: every value 5 may go anywhere.
  sort_internal::SplitterRouter<uint64_t, std::less<uint64_t>> router(
      std::vector<uint64_t>(7, 5), less);
  ASSERT_EQ(router.num_buckets(), 8u);
  std::vector<size_t> counts(router.num_buckets(), 0);
  const size_t n = 80000;
  for (size_t i = 0; i < n; ++i) ++counts[router.BucketOf(5, i)];
  for (size_t b = 0; b < counts.size(); ++b) {
    EXPECT_EQ(counts[b], n / 8) << "bucket " << b;
  }
  // Non-tie values still route by the splitter comparison alone.
  EXPECT_EQ(router.BucketOf(4, 0), 0u);
  EXPECT_EQ(router.BucketOf(4, 123), 0u);
  EXPECT_EQ(router.BucketOf(6, 0), 7u);
  EXPECT_EQ(router.BucketOf(6, 999), 7u);
}

TEST(SampleSortSplitterTest, SkewedInputKeepsBucketsBalanced) {
  // 90% of records share one key; the rest are uniform. End to end, no
  // bucket may exceed ~60% of n (the old routing put >90% in one bucket).
  Rng rng(11);
  const size_t n = 200000;
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) {
    k = rng.NextBounded(10) < 9 ? 42 : rng.NextBounded(1u << 20);
  }
  std::vector<uint64_t> expected = keys;
  std::sort(expected.begin(), expected.end());

  // Measure the bucket distribution through the router exactly as SampleSort
  // builds it: oversampled splitters from the input, ties spread by index.
  constexpr int kThreads = 8;
  Rng sample_rng;
  std::vector<uint64_t> sample(
      kThreads * sort_internal::kSampleOversampling);
  for (auto& s : sample) s = keys[sample_rng.NextBounded(n)];
  std::sort(sample.begin(), sample.end());
  std::vector<uint64_t> splitters(kThreads - 1);
  for (size_t i = 0; i + 1 < static_cast<size_t>(kThreads); ++i) {
    splitters[i] = sample[(i + 1) * sort_internal::kSampleOversampling];
  }
  sort_internal::SplitterRouter<uint64_t, std::less<uint64_t>> router(
      std::move(splitters), std::less<uint64_t>{});
  std::vector<size_t> counts(router.num_buckets(), 0);
  for (size_t i = 0; i < n; ++i) ++counts[router.BucketOf(keys[i], i)];
  const size_t largest = *std::max_element(counts.begin(), counts.end());
  EXPECT_LE(largest, n * 6 / 10)
      << "skewed input collapsed onto one samplesort bucket";

  // And the full sort over the same input stays correct.
  SampleSort(keys.data(), keys.data() + keys.size(), kThreads);
  EXPECT_EQ(keys, expected);
}

TEST(ParallelRecordSortTest, BlockIndirectSortsRecords) {
  Rng rng(8);
  std::vector<std::pair<uint64_t, uint64_t>> records(120000);
  for (uint64_t i = 0; i < records.size(); ++i) {
    records[i] = {rng.NextBounded(1000), i};
  }
  BlockIndirectSort(records.data(), records.data() + records.size(),
                    KeyLess<PairFirstKey>{}, 4);
  EXPECT_TRUE(std::is_sorted(records.begin(), records.end(),
                             [](const auto& a, const auto& b) {
                               return a.first < b.first;
                             }));
}

TEST(ParallelRecordSortTest, ParallelQuicksortSortsRecords) {
  Rng rng(9);
  std::vector<std::pair<uint64_t, uint64_t>> records(120000);
  for (uint64_t i = 0; i < records.size(); ++i) {
    records[i] = {rng.Next(), i};
  }
  ParallelQuickSort(records.data(), records.data() + records.size(),
                    KeyLess<PairFirstKey>{}, 4);
  EXPECT_TRUE(std::is_sorted(records.begin(), records.end(),
                             [](const auto& a, const auto& b) {
                               return a.first < b.first;
                             }));
}

}  // namespace
}  // namespace memagg
