// Tests for the one-call GroupByAggregate / ScalarAggregate facade.

#include "core/groupby.h"

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "test_util.h"

namespace memagg {
namespace {

TEST(GroupByTest, AutoCountMatchesReference) {
  DatasetSpec spec{Distribution::kZipf, 30000, 500, 201};
  const auto keys = GenerateKeys(spec);
  auto result = GroupByAggregate(keys, {}, AggregateFunction::kCount);
  SortByKey(result);
  EXPECT_EQ(result,
            ReferenceVectorAggregate(keys, {}, AggregateFunction::kCount));
}

TEST(GroupByTest, AutoMedianUsesSortPathAndMatches) {
  DatasetSpec spec{Distribution::kRseqShuffled, 30000, 500, 202};
  const auto keys = GenerateKeys(spec);
  const auto values = GenerateValues(keys.size(), 1000, 203);
  auto result = GroupByAggregate(keys, values, AggregateFunction::kMedian);
  SortByKey(result);
  EXPECT_EQ(result, ReferenceVectorAggregate(keys, values,
                                             AggregateFunction::kMedian));
}

TEST(GroupByTest, PinnedAlgorithm) {
  const std::vector<uint64_t> keys = {3, 1, 3, 2};
  GroupByOptions options;
  options.algorithm = "Btree";
  auto result =
      GroupByAggregate(keys, {}, AggregateFunction::kCount, options);
  const VectorResult expected = {{1, 1.0}, {2, 1.0}, {3, 2.0}};
  EXPECT_EQ(result, expected);  // Btree emits in key order already.
}

TEST(GroupByTest, RangeConditionRoutesToTree) {
  DatasetSpec spec{Distribution::kRseqShuffled, 20000, 1000, 204};
  const auto keys = GenerateKeys(spec);
  GroupByOptions options;
  options.has_range_condition = true;
  options.range_lo = 100;
  options.range_hi = 300;
  auto result =
      GroupByAggregate(keys, {}, AggregateFunction::kCount, options);
  SortByKey(result);
  EXPECT_EQ(result,
            ReferenceVectorAggregate(keys, {}, AggregateFunction::kCount,
                                     100, 300));
}

TEST(GroupByTest, RangeConditionOnHashPostFilters) {
  const std::vector<uint64_t> keys = {1, 5, 9, 5, 1};
  GroupByOptions options;
  options.algorithm = "Hash_LP";  // No native range support: post-filter.
  options.has_range_condition = true;
  options.range_lo = 2;
  options.range_hi = 8;
  auto result =
      GroupByAggregate(keys, {}, AggregateFunction::kCount, options);
  SortByKey(result);
  const VectorResult expected = {{5, 2.0}};
  EXPECT_EQ(result, expected);
}

TEST(GroupByTest, MultithreadedAuto) {
  DatasetSpec spec{Distribution::kHhitShuffled, 50000, 200, 205};
  const auto keys = GenerateKeys(spec);
  const auto values = GenerateValues(keys.size(), 100, 206);
  GroupByOptions options;
  options.num_threads = 4;  // Advisor picks Hash_TBBSC / Sort_BI.
  for (AggregateFunction fn :
       {AggregateFunction::kCount, AggregateFunction::kMedian}) {
    auto result = GroupByAggregate(keys, values, fn, options);
    SortByKey(result);
    EXPECT_EQ(result, ReferenceVectorAggregate(keys, values, fn))
        << AggregateFunctionName(fn);
  }
}

TEST(GroupByTest, EmptyInput) {
  auto result = GroupByAggregate({}, {}, AggregateFunction::kCount);
  EXPECT_TRUE(result.empty());
}

TEST(ScalarAggregateTest, AllFunctions) {
  const std::vector<uint64_t> column = {5, 1, 9, 1, 4};
  EXPECT_DOUBLE_EQ(ScalarAggregate(column, AggregateFunction::kCount), 5.0);
  EXPECT_DOUBLE_EQ(ScalarAggregate(column, AggregateFunction::kSum), 20.0);
  EXPECT_DOUBLE_EQ(ScalarAggregate(column, AggregateFunction::kMin), 1.0);
  EXPECT_DOUBLE_EQ(ScalarAggregate(column, AggregateFunction::kMax), 9.0);
  EXPECT_DOUBLE_EQ(ScalarAggregate(column, AggregateFunction::kAverage), 4.0);
  EXPECT_DOUBLE_EQ(ScalarAggregate(column, AggregateFunction::kMedian), 4.0);
  EXPECT_DOUBLE_EQ(ScalarAggregate(column, AggregateFunction::kMode), 1.0);
}

TEST(ScalarAggregateTest, MedianMatchesReferenceOnLargeColumn) {
  DatasetSpec spec{Distribution::kZipf, 50001, 1000, 207};
  const auto keys = GenerateKeys(spec);
  EXPECT_DOUBLE_EQ(ScalarAggregate(keys, AggregateFunction::kMedian),
                   ReferenceMedian(keys));
}

}  // namespace
}  // namespace memagg
