// Tests for the scalar aggregation operators (Q4-Q6, paper Section 5.7).

#include <gtest/gtest.h>

#include <string>

#include "core/engine.h"
#include "core/scalar.h"
#include "core/sorters.h"
#include "data/dataset.h"
#include "test_util.h"
#include "tree/art.h"

namespace memagg {
namespace {

TEST(StreamingCountTest, CountsRecords) {
  StreamingCountAggregator aggregator;
  const std::vector<uint64_t> keys = {1, 2, 3};
  aggregator.Build(keys.data(), nullptr, keys.size());
  aggregator.Build(keys.data(), nullptr, keys.size());
  EXPECT_DOUBLE_EQ(aggregator.Finalize(), 6.0);
}

TEST(StreamingAverageTest, AveragesValues) {
  StreamingAverageAggregator aggregator;
  const std::vector<uint64_t> keys = {0, 0, 0, 0};
  const std::vector<uint64_t> values = {1, 2, 3, 6};
  aggregator.Build(keys.data(), values.data(), values.size());
  EXPECT_DOUBLE_EQ(aggregator.Finalize(), 3.0);
}

TEST(ScalarMedianTest, OddCount) {
  SortScalarMedianAggregator<IntrosortSorter> aggregator;
  const std::vector<uint64_t> keys = {5, 1, 9};
  aggregator.Build(keys.data(), nullptr, keys.size());
  EXPECT_DOUBLE_EQ(aggregator.Finalize(), 5.0);
}

TEST(ScalarMedianTest, EvenCountAveragesMiddles) {
  SortScalarMedianAggregator<IntrosortSorter> aggregator;
  const std::vector<uint64_t> keys = {5, 1, 9, 2};
  aggregator.Build(keys.data(), nullptr, keys.size());
  EXPECT_DOUBLE_EQ(aggregator.Finalize(), 3.5);  // (2 + 5) / 2.
}

TEST(TreeScalarMedianTest, DuplicateHeavyColumn) {
  TreeScalarMedianAggregator<ArtTree> aggregator;
  // 10x "3", 1x "100": median is 3.
  std::vector<uint64_t> keys(10, 3);
  keys.push_back(100);
  aggregator.Build(keys.data(), nullptr, keys.size());
  EXPECT_DOUBLE_EQ(aggregator.Finalize(), 3.0);
}

TEST(TreeScalarMedianTest, EvenCountAcrossTwoGroups) {
  TreeScalarMedianAggregator<ArtTree> aggregator;
  const std::vector<uint64_t> keys = {1, 1, 2, 2};
  aggregator.Build(keys.data(), nullptr, keys.size());
  EXPECT_DOUBLE_EQ(aggregator.Finalize(), 1.5);
}

class ScalarMedianAcrossLabels : public ::testing::TestWithParam<std::string> {
};

TEST_P(ScalarMedianAcrossLabels, MatchesReferenceOnAllDistributions) {
  for (Distribution d : kAllDistributions) {
    DatasetSpec spec{d, 30001, 97, 31};  // Odd count: unambiguous median.
    const auto keys = GenerateKeys(spec);
    auto aggregator = MakeScalarMedianAggregator(GetParam());
    aggregator->Build(keys.data(), nullptr, keys.size());
    EXPECT_DOUBLE_EQ(aggregator->Finalize(), ReferenceMedian(keys))
        << DistributionName(d);
  }
}

TEST_P(ScalarMedianAcrossLabels, EvenRecordCount) {
  DatasetSpec spec{Distribution::kRseqShuffled, 30000, 97, 32};
  const auto keys = GenerateKeys(spec);
  auto aggregator = MakeScalarMedianAggregator(GetParam());
  aggregator->Build(keys.data(), nullptr, keys.size());
  EXPECT_DOUBLE_EQ(aggregator->Finalize(), ReferenceMedian(keys));
}

INSTANTIATE_TEST_SUITE_P(TreesAndSorts, ScalarMedianAcrossLabels,
                         ::testing::ValuesIn(ScalarCapableLabels()));

}  // namespace
}  // namespace memagg
