// Contract-violation (death) tests: the library aborts loudly via
// MEMAGG_CHECK instead of silently misbehaving.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "data/dataset.h"
#include "data/lineitem.h"
#include "util/cli.h"

namespace memagg {
namespace {

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, GenerateKeysRejectsInvalidSpec) {
  DatasetSpec spec{Distribution::kRseq, 10, 100, 1};  // cardinality > n.
  EXPECT_DEATH(GenerateKeys(spec), "cannot exceed the record count");
}

TEST(ContractDeathTest, GenerateKeysRejectsZeroCardinality) {
  DatasetSpec spec{Distribution::kRseq, 10, 0, 1};
  EXPECT_DEATH(GenerateKeys(spec), "cardinality must be at least 1");
}

TEST(ContractDeathTest, GenerateKeysRejectsOverconstrainedHhit) {
  DatasetSpec spec{Distribution::kHhit, 100, 99, 1};
  EXPECT_DEATH(GenerateKeys(spec), "cover half the records");
}

TEST(ContractDeathTest, GenerateKeysRejectsNarrowMovingCluster) {
  DatasetSpec spec{Distribution::kMovingCluster, 1000, 8, 1};
  EXPECT_DEATH(GenerateKeys(spec), "cardinality >= 64");
}

TEST(ContractDeathTest, GenerateValuesRejectsEmptyRange) {
  EXPECT_DEATH(GenerateValues(10, 0), "value_range must be at least 1");
}

TEST(ContractDeathTest, GenerateLineitemRejectsEmptyTable) {
  EXPECT_DEATH(GenerateLineitem(0), "at least one row");
}

TEST(ContractDeathTest, GenerateLineitemRejectsOversizedTable) {
  EXPECT_DEATH(GenerateLineitem((16ULL << 20) + 1), "exactness bound");
}

TEST(ContractDeathTest, UnknownAlgorithmLabelAborts) {
  EXPECT_DEATH(
      MakeVectorAggregator("Hash_Nope", AggregateFunction::kCount, 16),
      "Unknown algorithm label");
}

TEST(ContractDeathTest, SerialLabelRejectsMultipleThreads) {
  EXPECT_DEATH(
      MakeVectorAggregator("Hash_LP", AggregateFunction::kCount, 16,
                           /*num_threads=*/4),
      "MEMAGG_CHECK");
}

TEST(ContractDeathTest, HashLabelRejectsScalarMedian) {
  EXPECT_DEATH(MakeScalarMedianAggregator("Hash_LP"),
               "unsuitable for scalar median");
}

TEST(ContractDeathTest, HashOperatorRejectsRangeIterate) {
  auto aggregator =
      MakeVectorAggregator("Hash_Dense", AggregateFunction::kCount, 16);
  const std::vector<uint64_t> keys = {1, 2, 3};
  aggregator->Build(keys.data(), nullptr, keys.size());
  EXPECT_DEATH(aggregator->IterateRange(1, 2), "no native range search");
}

TEST(ContractDeathTest, UnknownDistributionNameAborts) {
  EXPECT_DEATH(DistributionFromName("Uniform"), "Unknown distribution");
}

TEST(ContractDeathTest, EmptyHumanIntAborts) {
  EXPECT_DEATH(ParseHumanInt(""), "MEMAGG_CHECK");
}

}  // namespace
}  // namespace memagg
