// Tests for the multithreaded aggregation operators (paper Section 5.8 /
// Table 8): Hash_TBBSC, Hash_LC, Sort_BI, Sort_QSLB across thread counts,
// verified against the naive reference.

#include <gtest/gtest.h>

#include <string>

#include "core/engine.h"
#include "data/dataset.h"
#include "test_util.h"

namespace memagg {
namespace {

struct Case {
  std::string label;
  int threads;
};

class ParallelAggregation : public ::testing::TestWithParam<Case> {};

constexpr uint64_t kRecords = 200000;
constexpr uint64_t kCardinality = 1000;

TEST_P(ParallelAggregation, Q1VectorCount) {
  const Case& c = GetParam();
  DatasetSpec spec{Distribution::kRseqShuffled, kRecords, kCardinality, 51};
  const auto keys = GenerateKeys(spec);
  auto aggregator = MakeVectorAggregator(c.label, AggregateFunction::kCount,
                                         keys.size(), c.threads);
  aggregator->Build(keys.data(), nullptr, keys.size());
  auto result = aggregator->Iterate();
  SortByKey(result);
  EXPECT_EQ(result,
            ReferenceVectorAggregate(keys, {}, AggregateFunction::kCount));
}

TEST_P(ParallelAggregation, Q3VectorMedian) {
  const Case& c = GetParam();
  DatasetSpec spec{Distribution::kZipf, kRecords, kCardinality, 52};
  const auto keys = GenerateKeys(spec);
  const auto values = GenerateValues(keys.size(), 100000, 53);
  auto aggregator = MakeVectorAggregator(c.label, AggregateFunction::kMedian,
                                         keys.size(), c.threads);
  aggregator->Build(keys.data(), values.data(), keys.size());
  auto result = aggregator->Iterate();
  SortByKey(result);
  EXPECT_EQ(result,
            ReferenceVectorAggregate(keys, values, AggregateFunction::kMedian));
}

TEST_P(ParallelAggregation, Q2VectorAverage) {
  const Case& c = GetParam();
  DatasetSpec spec{Distribution::kHhitShuffled, kRecords, 500, 54};
  const auto keys = GenerateKeys(spec);
  const auto values = GenerateValues(keys.size(), 1000, 55);
  auto aggregator = MakeVectorAggregator(c.label, AggregateFunction::kAverage,
                                         keys.size(), c.threads);
  aggregator->Build(keys.data(), values.data(), keys.size());
  auto result = aggregator->Iterate();
  SortByKey(result);
  const auto expected =
      ReferenceVectorAggregate(keys, values, AggregateFunction::kAverage);
  ASSERT_EQ(result.size(), expected.size());
  for (size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(result[i].key, expected[i].key);
    EXPECT_DOUBLE_EQ(result[i].value, expected[i].value);
  }
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  std::vector<std::string> labels = ConcurrentLabels();
  labels.push_back("Hash_PLocal");  // Independent-tables extension.
  labels.push_back("Hash_Striped");  // Lock-striping extension.
  labels.push_back("Hash_PRadix");  // Radix-partitioning extension.
  for (const std::string& label : labels) {
    for (int threads : {1, 2, 4, 8}) {
      cases.push_back({label, threads});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllConcurrentLabels, ParallelAggregation,
                         ::testing::ValuesIn(AllCases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return info.param.label + "_t" +
                                  std::to_string(info.param.threads);
                         });

}  // namespace
}  // namespace memagg
