// Unit and property tests for the tree indexes (paper Section 3.3): ART,
// Judy, Btree, Ttree. Verified against std::map (sorted-order oracle)
// including sorted iteration and range scans.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <type_traits>
#include <utility>
#include <vector>

#include "tree/art.h"
#include "tree/btree.h"
#include "tree/judy.h"
#include "tree/ttree.h"
#include "util/rng.h"

namespace memagg {
namespace {

using TreeTypes = ::testing::Types<ArtTree<uint64_t>, JudyArray<uint64_t>,
                                   BTree<uint64_t>, TTree<uint64_t>>;

template <typename T>
class TreeTest : public ::testing::Test {};

TYPED_TEST_SUITE(TreeTest, TreeTypes);

TYPED_TEST(TreeTest, EmptyTree) {
  TypeParam tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Find(1), nullptr);
  size_t visited = 0;
  tree.ForEach([&visited](uint64_t, const uint64_t&) { ++visited; });
  EXPECT_EQ(visited, 0u);
}

TYPED_TEST(TreeTest, InsertAndFind) {
  TypeParam tree;
  tree.GetOrInsert(10) = 100;
  tree.GetOrInsert(20) = 200;
  tree.GetOrInsert(0) = 7;
  EXPECT_EQ(tree.size(), 3u);
  ASSERT_NE(tree.Find(10), nullptr);
  EXPECT_EQ(*tree.Find(10), 100u);
  ASSERT_NE(tree.Find(0), nullptr);
  EXPECT_EQ(*tree.Find(0), 7u);
  EXPECT_EQ(tree.Find(15), nullptr);
  EXPECT_EQ(tree.Find(~0ULL), nullptr);
}

TYPED_TEST(TreeTest, GetOrInsertIsIdempotent) {
  TypeParam tree;
  tree.GetOrInsert(9) = 1;
  tree.GetOrInsert(9) += 1;
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(*tree.Find(9), 2u);
}

TYPED_TEST(TreeTest, IterationIsSorted) {
  TypeParam tree;
  Rng rng(12);
  std::map<uint64_t, uint64_t> reference;
  for (int i = 0; i < 50000; ++i) {
    const uint64_t key = rng.Next();
    tree.GetOrInsert(key) = key * 2;
    reference[key] = key * 2;
  }
  EXPECT_EQ(tree.size(), reference.size());
  std::vector<std::pair<uint64_t, uint64_t>> visited;
  tree.ForEach([&visited](uint64_t key, const uint64_t& value) {
    visited.push_back({key, value});
  });
  ASSERT_EQ(visited.size(), reference.size());
  auto it = reference.begin();
  for (size_t i = 0; i < visited.size(); ++i, ++it) {
    EXPECT_EQ(visited[i].first, it->first) << "position " << i;
    EXPECT_EQ(visited[i].second, it->second) << "position " << i;
  }
}

TYPED_TEST(TreeTest, DenseSequentialKeys) {
  TypeParam tree;
  constexpr uint64_t kCount = 100000;
  for (uint64_t k = 0; k < kCount; ++k) tree.GetOrInsert(k) = k + 1;
  EXPECT_EQ(tree.size(), kCount);
  for (uint64_t k = 0; k < kCount; ++k) {
    ASSERT_NE(tree.Find(k), nullptr) << k;
    EXPECT_EQ(*tree.Find(k), k + 1) << k;
  }
  EXPECT_EQ(tree.Find(kCount), nullptr);
}

TYPED_TEST(TreeTest, SparseHighBitKeys) {
  // Exercises deep prefixes / skip compression in the radix trees.
  TypeParam tree;
  std::vector<uint64_t> keys;
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) keys.push_back(rng.Next());
  keys.push_back(0);
  keys.push_back(~0ULL - 2);  // Stay clear of sentinels used by hash maps.
  for (uint64_t k : keys) tree.GetOrInsert(k) = ~k;
  for (uint64_t k : keys) {
    ASSERT_NE(tree.Find(k), nullptr) << k;
    EXPECT_EQ(*tree.Find(k), ~k) << k;
  }
}

TYPED_TEST(TreeTest, KeysDifferingOnlyInOneByte) {
  TypeParam tree;
  for (int byte = 0; byte < 8; ++byte) {
    for (uint64_t v = 0; v < 256; ++v) {
      tree.GetOrInsert(v << (8 * byte)) = v + 1;
    }
  }
  // 0 is shared across all byte positions: 8 * 256 - 7 duplicates of 0.
  EXPECT_EQ(tree.size(), 8u * 256u - 7u);
  for (int byte = 0; byte < 8; ++byte) {
    for (uint64_t v = 1; v < 256; ++v) {
      ASSERT_NE(tree.Find(v << (8 * byte)), nullptr);
    }
  }
}

TYPED_TEST(TreeTest, RangeScanMatchesReference) {
  TypeParam tree;
  std::map<uint64_t, uint64_t> reference;
  Rng rng(14);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.NextBounded(100000);
    tree.GetOrInsert(key) = key;
    reference[key] = key;
  }
  const struct {
    uint64_t lo, hi;
  } ranges[] = {{0, 100000},   {500, 1000},  {0, 0},
                {99999, 99999}, {70000, 30000} /* empty: lo > hi */,
                {50000, 50000}};
  for (const auto& range : ranges) {
    std::vector<uint64_t> got;
    tree.ForEachInRange(range.lo, range.hi,
                        [&got](uint64_t key, const uint64_t&) {
                          got.push_back(key);
                        });
    std::vector<uint64_t> want;
    if (range.lo <= range.hi) {
      for (auto it = reference.lower_bound(range.lo);
           it != reference.end() && it->first <= range.hi; ++it) {
        want.push_back(it->first);
      }
    }
    EXPECT_EQ(got, want) << "range [" << range.lo << ", " << range.hi << "]";
  }
}

TYPED_TEST(TreeTest, RangeScanFullKeySpace) {
  TypeParam tree;
  tree.GetOrInsert(0) = 1;
  tree.GetOrInsert(~0ULL) = 2;
  tree.GetOrInsert(1ULL << 63) = 3;
  std::vector<uint64_t> got;
  tree.ForEachInRange(0, ~0ULL, [&got](uint64_t key, const uint64_t&) {
    got.push_back(key);
  });
  EXPECT_EQ(got, (std::vector<uint64_t>{0, 1ULL << 63, ~0ULL}));
}

TYPED_TEST(TreeTest, VectorValuesSupported) {
  // Holistic aggregation buffers values per group.
  using TreeOfVectors = typename std::conditional<
      std::is_same<TypeParam, ArtTree<uint64_t>>::value,
      ArtTree<std::vector<uint64_t>>,
      typename std::conditional<
          std::is_same<TypeParam, JudyArray<uint64_t>>::value,
          JudyArray<std::vector<uint64_t>>,
          typename std::conditional<
              std::is_same<TypeParam, BTree<uint64_t>>::value,
              BTree<std::vector<uint64_t>>,
              TTree<std::vector<uint64_t>>>::type>::type>::type;
  TreeOfVectors tree;
  Rng rng(15);
  std::map<uint64_t, std::vector<uint64_t>> reference;
  for (int i = 0; i < 30000; ++i) {
    const uint64_t key = rng.NextBounded(100);
    const uint64_t value = rng.Next();
    tree.GetOrInsert(key).push_back(value);
    reference[key].push_back(value);
  }
  EXPECT_EQ(tree.size(), reference.size());
  tree.ForEach([&](uint64_t key, const std::vector<uint64_t>& values) {
    EXPECT_EQ(values, reference.at(key)) << key;
  });
}

TYPED_TEST(TreeTest, MemoryBytesGrowsWithContent) {
  TypeParam tree;
  const size_t before = tree.MemoryBytes();
  for (uint64_t k = 0; k < 10000; ++k) tree.GetOrInsert(k * 37) = k;
  EXPECT_GT(tree.MemoryBytes(), before);
}

// --- Structure-specific tests -----------------------------------------------

TEST(ArtTest, NodeGrowthChain) {
  // Forces Node4 -> Node16 -> Node32 -> Node48 -> Node256 growth at one
  // level.
  ArtTree<uint64_t> tree;
  for (uint64_t b = 0; b < 256; ++b) {
    tree.GetOrInsert(b) = b;
    // Every key so far must stay reachable after each growth step.
    for (uint64_t probe = 0; probe <= b; ++probe) {
      ASSERT_NE(tree.Find(probe), nullptr) << "after inserting " << b;
    }
  }
}

TEST(ArtTest, Node32AppearsInGrowthChain) {
  // 20 children at one level sit in the new Node32 tier (17..32).
  ArtTree<uint64_t> tree;
  for (uint64_t b = 0; b < 20; ++b) tree.GetOrInsert(b) = b;
  const auto stats = tree.ComputeNodeStats();
  EXPECT_EQ(stats.node32, 1u);
  EXPECT_EQ(stats.node48, 0u);
  EXPECT_EQ(stats.inner_nodes(), stats.node32 + stats.node4 + stats.node16 +
                                     stats.node48 + stats.node256);
}

TEST(ArtTest, UnsortedInsertsPreserveOrderAcrossGrowth) {
  // ISSUE 7 satellite: growing 4 -> 16 -> 32 -> 48 with inserts arriving in
  // a hostile order must keep in-order traversal sorted and every child
  // reachable. Node16/Node32 keep sorted key arrays (so straight copies
  // grow correctly); Node48 indexes by byte value. A shuffled byte order
  // exercises the insertion-shift path at every size.
  Rng rng(Rng::kDefaultSeed);
  std::vector<uint64_t> bytes;
  for (uint64_t b = 0; b < 60; ++b) bytes.push_back(b * 4 + 1);
  for (size_t i = bytes.size(); i > 1; --i) {
    std::swap(bytes[i - 1], bytes[rng.NextBounded(i)]);
  }
  ArtTree<uint64_t> tree;
  std::map<uint64_t, uint64_t> reference;
  for (const uint64_t b : bytes) {
    tree.GetOrInsert(b) = b * 10;
    reference[b] = b * 10;
    // Sorted iteration must match the oracle after every growth step.
    std::vector<std::pair<uint64_t, uint64_t>> got;
    tree.ForEach([&got](uint64_t k, const uint64_t& v) {
      got.emplace_back(k, v);
    });
    ASSERT_EQ(got.size(), reference.size());
    auto it = reference.begin();
    for (const auto& [k, v] : got) {
      ASSERT_EQ(k, it->first);
      ASSERT_EQ(v, it->second);
      ++it;
    }
  }
}

TEST(ArtTest, FuzzInsertLookupRoundTrip) {
  // Fuzz-style round-trip (ISSUE 7 satellite): random keys drawn from byte
  // distributions that exercise dense fan-out, deep shared prefixes (up to
  // 7 bytes — the kMaxPrefix ceiling for 8-byte keys), and prefix splits.
  Rng rng(Rng::kDefaultSeed ^ 0xa57);
  for (int round = 0; round < 8; ++round) {
    ArtTree<uint64_t> tree;
    std::map<uint64_t, uint64_t> reference;
    for (int i = 0; i < 4000; ++i) {
      uint64_t key;
      switch (rng.NextBounded(4)) {
        case 0:  // Dense small keys: grows wide low-level nodes.
          key = rng.NextBounded(512);
          break;
        case 1:  // Shared 6..7-byte prefix: max-length compressed paths.
          key = 0xabcdef0123450000ULL | rng.NextBounded(300);
          break;
        case 2:  // Two clusters differing high up: prefix splits.
          key = (rng.NextBounded(2) ? 0x1100000000000000ULL
                                    : 0x2200000000000000ULL) |
                rng.NextBounded(1 << 20);
          break;
        default:  // Uniform random.
          key = rng.Next();
          break;
      }
      if (key == ~0ULL) key = 0;  // Stay clear of map sentinels elsewhere.
      tree.GetOrInsert(key) += 1;
      reference[key] += 1;
    }
    ASSERT_EQ(tree.size(), reference.size());
    // Positive lookups: every reference key, with its aggregated count.
    for (const auto& [key, count] : reference) {
      const uint64_t* found = tree.Find(key);
      ASSERT_NE(found, nullptr) << "key " << key;
      ASSERT_EQ(*found, count);
    }
    // Negative lookups: perturbed keys absent from the reference.
    for (int i = 0; i < 2000; ++i) {
      const uint64_t probe = rng.Next();
      if (reference.count(probe) == 0) {
        ASSERT_EQ(tree.Find(probe), nullptr) << "probe " << probe;
      }
    }
    // Sorted traversal equals the oracle's.
    std::vector<uint64_t> got;
    tree.ForEach([&got](uint64_t k, const uint64_t&) { got.push_back(k); });
    ASSERT_EQ(got.size(), reference.size());
    auto it = reference.begin();
    for (const uint64_t k : got) {
      ASSERT_EQ(k, it->first);
      ++it;
    }
  }
}

TEST(ArtTest, PrefixSplit) {
  ArtTree<uint64_t> tree;
  // Two keys sharing a long prefix force a compressed path...
  tree.GetOrInsert(0x1111111111111100ULL) = 1;
  tree.GetOrInsert(0x1111111111111101ULL) = 2;
  // ...and this key splits that path at byte 3.
  tree.GetOrInsert(0x1111112211111100ULL) = 3;
  EXPECT_EQ(*tree.Find(0x1111111111111100ULL), 1u);
  EXPECT_EQ(*tree.Find(0x1111111111111101ULL), 2u);
  EXPECT_EQ(*tree.Find(0x1111112211111100ULL), 3u);
  EXPECT_EQ(tree.Find(0x1111111111111102ULL), nullptr);
}

TEST(JudyTest, LinearToBitmapBranchGrowth) {
  JudyArray<uint64_t> tree;
  // More than 7 children at the top-level branch byte forces the linear ->
  // bitmap promotion.
  for (uint64_t b = 0; b < 64; ++b) {
    tree.GetOrInsert(b << 56) = b;
    for (uint64_t probe = 0; probe <= b; ++probe) {
      ASSERT_NE(tree.Find(probe << 56), nullptr) << "after " << b;
    }
  }
}

TEST(BtreeTest, LeafChainCoversAllKeysInOrder) {
  BTree<uint64_t> tree;
  Rng rng(16);
  std::map<uint64_t, uint64_t> reference;
  for (int i = 0; i < 100000; ++i) {
    const uint64_t key = rng.NextBounded(1 << 20);
    tree.GetOrInsert(key) = key;
    reference[key] = key;
  }
  uint64_t previous = 0;
  bool first = true;
  size_t count = 0;
  tree.ForEach([&](uint64_t key, const uint64_t&) {
    if (!first) {
      EXPECT_GT(key, previous);
    }
    previous = key;
    first = false;
    ++count;
  });
  EXPECT_EQ(count, reference.size());
}

TEST(TtreeTest, StaysBalancedUnderSequentialInsert) {
  // Sequential inserts are the worst case for unbalanced BSTs; the AVL
  // rotations must keep lookups fast. Completion of this loop in test time
  // is itself the check; correctness is verified by lookups.
  TTree<uint64_t> tree;
  constexpr uint64_t kCount = 200000;
  for (uint64_t k = 0; k < kCount; ++k) tree.GetOrInsert(k) = k;
  for (uint64_t k = 0; k < kCount; k += 997) {
    ASSERT_NE(tree.Find(k), nullptr);
  }
}

TEST(TtreeTest, OverflowDisplacementPreservesEntries) {
  // Insert into the middle of full nodes to force displacement.
  TTree<uint64_t> tree;
  for (uint64_t k = 0; k < 10000; k += 2) tree.GetOrInsert(k) = k;
  for (uint64_t k = 1; k < 10000; k += 2) tree.GetOrInsert(k) = k;
  EXPECT_EQ(tree.size(), 10000u);
  for (uint64_t k = 0; k < 10000; ++k) {
    ASSERT_NE(tree.Find(k), nullptr) << k;
    EXPECT_EQ(*tree.Find(k), k);
  }
}

}  // namespace
}  // namespace memagg
