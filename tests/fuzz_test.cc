// Randomized differential testing: many small random workloads (random
// sizes, key ranges, value ranges, duplicates, extreme keys) run through
// every algorithm label and every aggregate function, checked against the
// naive reference. Catches interactions the structured suites miss.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/aggregate.h"
#include "core/engine.h"
#include "core/hash_aggregator.h"
#include "hash/linear_probing_map.h"
#include "test_util.h"
#include "util/rng.h"

namespace memagg {
namespace {

struct RandomWorkload {
  std::vector<uint64_t> keys;
  std::vector<uint64_t> values;
};

RandomWorkload MakeWorkload(Rng& rng) {
  RandomWorkload w;
  const size_t n = 1 + rng.NextBounded(3000);
  // Key ranges from "all duplicates" to "mostly distinct", occasionally with
  // extreme magnitudes.
  const uint64_t key_range = 1 + rng.NextBounded(2 * n);
  const uint64_t key_scale = 1ULL << rng.NextBounded(50);
  w.keys.reserve(n);
  w.values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t key = rng.NextBounded(key_range) * key_scale;
    if (rng.NextBounded(100) == 0) key = 0;
    if (rng.NextBounded(100) == 0) key = ~0ULL - 2;  // Near-max, non-sentinel.
    w.keys.push_back(key);
    w.values.push_back(rng.NextBounded(1 + rng.NextBounded(100000)));
  }
  return w;
}

TEST(FuzzTest, AllLabelsAllFunctionsAgreeWithReference) {
  Rng rng(20260706);
  std::vector<std::string> labels = SerialLabels();
  labels.push_back("Ttree");
  labels.push_back("Quicksort");
  labels.push_back("Sort_MSBRadix");
  labels.push_back("Sort_LSBRadix");
  labels.push_back("Hybrid");
  labels.push_back("Hash_MPH");
  constexpr int kRounds = 12;
  for (int round = 0; round < kRounds; ++round) {
    const RandomWorkload w = MakeWorkload(rng);
    for (AggregateFunction fn :
         {AggregateFunction::kCount, AggregateFunction::kSum,
          AggregateFunction::kMin, AggregateFunction::kMax,
          AggregateFunction::kAverage, AggregateFunction::kMedian,
          AggregateFunction::kMode}) {
      const auto expected = ReferenceVectorAggregate(w.keys, w.values, fn);
      for (const std::string& label : labels) {
        auto aggregator = MakeVectorAggregator(label, fn, w.keys.size());
        aggregator->Build(w.keys.data(), w.values.data(), w.keys.size());
        auto result = aggregator->Iterate();
        SortByKey(result);
        ASSERT_EQ(result.size(), expected.size())
            << "round " << round << " " << label << " "
            << AggregateFunctionName(fn);
        for (size_t i = 0; i < result.size(); ++i) {
          ASSERT_EQ(result[i].key, expected[i].key)
              << "round " << round << " " << label;
          ASSERT_DOUBLE_EQ(result[i].value, expected[i].value)
              << "round " << round << " " << label << " "
              << AggregateFunctionName(fn) << " key " << result[i].key;
        }
      }
    }
  }
}

TEST(FuzzTest, ConcurrentLabelsAgreeWithReference) {
  Rng rng(777);
  std::vector<std::string> labels = ConcurrentLabels();
  labels.push_back("Hash_PLocal");
  labels.push_back("Hash_Striped");
  labels.push_back("Hash_PRadix");
  for (int round = 0; round < 6; ++round) {
    const RandomWorkload w = MakeWorkload(rng);
    const int threads = 1 + static_cast<int>(rng.NextBounded(8));
    for (AggregateFunction fn :
         {AggregateFunction::kCount, AggregateFunction::kAverage,
          AggregateFunction::kMedian}) {
      const auto expected = ReferenceVectorAggregate(w.keys, w.values, fn);
      for (const std::string& label : labels) {
        auto aggregator =
            MakeVectorAggregator(label, fn, w.keys.size(), threads);
        aggregator->Build(w.keys.data(), w.values.data(), w.keys.size());
        auto result = aggregator->Iterate();
        SortByKey(result);
        ASSERT_EQ(result.size(), expected.size())
            << label << " t=" << threads;
        for (size_t i = 0; i < result.size(); ++i) {
          ASSERT_EQ(result[i].key, expected[i].key) << label;
          ASSERT_DOUBLE_EQ(result[i].value, expected[i].value)
              << label << " " << AggregateFunctionName(fn);
        }
      }
    }
  }
}

TEST(FuzzTest, RangeScansAgreeWithFilteredReference) {
  Rng rng(888);
  for (int round = 0; round < 10; ++round) {
    const RandomWorkload w = MakeWorkload(rng);
    uint64_t lo = rng.Next();
    uint64_t hi = rng.Next();
    if (lo > hi) std::swap(lo, hi);
    const auto expected = ReferenceVectorAggregate(
        w.keys, {}, AggregateFunction::kCount, lo, hi);
    for (const std::string& label : TreeLabels()) {
      auto aggregator =
          MakeVectorAggregator(label, AggregateFunction::kCount,
                               w.keys.size());
      aggregator->Build(w.keys.data(), nullptr, w.keys.size());
      auto result = aggregator->IterateRange(lo, hi);
      SortByKey(result);
      ASSERT_EQ(result, expected) << label << " round " << round;
    }
  }
}

TEST(FuzzTest, QuantileAggregatePercentiles) {
  // QuantileAggregate is policy-level (no engine enum); exercise it through
  // an operator template against a brute-force percentile.
  Rng rng(999);
  for (int round = 0; round < 8; ++round) {
    const RandomWorkload w = MakeWorkload(rng);
    HashVectorAggregator<LinearProbingMap, QuantileAggregate<90>> aggregator(
        w.keys.size());
    aggregator.Build(w.keys.data(), w.values.data(), w.keys.size());
    auto result = aggregator.Iterate();
    SortByKey(result);
    // Brute force.
    std::map<uint64_t, std::vector<uint64_t>> groups;
    for (size_t i = 0; i < w.keys.size(); ++i) {
      groups[w.keys[i]].push_back(w.values[i]);
    }
    ASSERT_EQ(result.size(), groups.size());
    size_t at = 0;
    for (auto& [key, values] : groups) {
      std::sort(values.begin(), values.end());
      size_t rank = (values.size() * 90 + 99) / 100;
      if (rank > 0) --rank;
      ASSERT_EQ(result[at].key, key);
      ASSERT_DOUBLE_EQ(result[at].value, static_cast<double>(values[rank]))
          << "key " << key << " count " << values.size();
      ++at;
    }
  }
}

TEST(QuantileTest, BoundaryPercentiles) {
  std::vector<uint64_t> values = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(PercentileOfRun(values.data(), values.size(), 0), 10.0);
  EXPECT_DOUBLE_EQ(PercentileOfRun(values.data(), values.size(), 100), 50.0);
  EXPECT_DOUBLE_EQ(PercentileOfRun(values.data(), values.size(), 50), 30.0);
  uint64_t one = 7;
  EXPECT_DOUBLE_EQ(PercentileOfRun(&one, 1, 25), 7.0);
}

}  // namespace
}  // namespace memagg
