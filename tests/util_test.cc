// Unit tests for the utility layer: bits, rng, prime, cli, thread pool,
// memory tracker, cycle timer.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "util/bits.h"
#include "util/cli.h"
#include "util/cycle_timer.h"
#include "util/memory_tracker.h"
#include "util/prime.h"
#include "util/rng.h"
#include "util/spinlock.h"
#include "exec/thread_pool.h"

namespace memagg {
namespace {

TEST(BitsTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(0), 1u);
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(4), 4u);
  EXPECT_EQ(NextPowerOfTwo(5), 8u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1ULL << 40), 1ULL << 40);
  EXPECT_EQ(NextPowerOfTwo((1ULL << 40) + 1), 1ULL << 41);
}

TEST(BitsTest, Log2Floor) {
  EXPECT_EQ(Log2Floor(1), 0);
  EXPECT_EQ(Log2Floor(2), 1);
  EXPECT_EQ(Log2Floor(3), 1);
  EXPECT_EQ(Log2Floor(4), 2);
  EXPECT_EQ(Log2Floor(1023), 9);
  EXPECT_EQ(Log2Floor(1024), 10);
  EXPECT_EQ(Log2Floor(~0ULL), 63);
}

TEST(BitsTest, Log2Ceil) {
  EXPECT_EQ(Log2Ceil(1), 0);
  EXPECT_EQ(Log2Ceil(2), 1);
  EXPECT_EQ(Log2Ceil(3), 2);
  EXPECT_EQ(Log2Ceil(4), 2);
  EXPECT_EQ(Log2Ceil(5), 3);
  EXPECT_EQ(Log2Ceil(1024), 10);
  EXPECT_EQ(Log2Ceil(1025), 11);
}

TEST(BitsTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(1ULL << 63));
  EXPECT_FALSE(IsPowerOfTwo((1ULL << 63) + 1));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng;
  for (uint64_t bound : {1ULL, 2ULL, 5ULL, 7ULL, 100ULL, 1000000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversRange) {
  Rng rng;
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 4u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng;
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextInRange(10, 12));
  EXPECT_EQ(seen, (std::set<uint64_t>{10, 11, 12}));
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, RoughlyUniform) {
  Rng rng;
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.NextBounded(kBuckets)];
  }
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(PrimeTest, IsPrimeSmall) {
  EXPECT_FALSE(IsPrime(0));
  EXPECT_FALSE(IsPrime(1));
  EXPECT_TRUE(IsPrime(2));
  EXPECT_TRUE(IsPrime(3));
  EXPECT_FALSE(IsPrime(4));
  EXPECT_TRUE(IsPrime(5));
  EXPECT_FALSE(IsPrime(9));
  EXPECT_TRUE(IsPrime(97));
  EXPECT_FALSE(IsPrime(91));  // 7 * 13
}

TEST(PrimeTest, IsPrimeLarge) {
  EXPECT_TRUE(IsPrime(1000000007ULL));
  EXPECT_TRUE(IsPrime(1000000009ULL));
  EXPECT_FALSE(IsPrime(1000000007ULL * 3));
  // Largest 64-bit prime.
  EXPECT_TRUE(IsPrime(18446744073709551557ULL));
  // Carmichael number (561 = 3*11*17) must not fool the test.
  EXPECT_FALSE(IsPrime(561));
  EXPECT_FALSE(IsPrime(1729));
}

TEST(PrimeTest, NextPrime) {
  EXPECT_EQ(NextPrime(0), 2u);
  EXPECT_EQ(NextPrime(2), 2u);
  EXPECT_EQ(NextPrime(3), 3u);
  EXPECT_EQ(NextPrime(4), 5u);
  EXPECT_EQ(NextPrime(90), 97u);
  EXPECT_EQ(NextPrime(1000000), 1000003u);
}

TEST(CliTest, ParsesFlags) {
  const char* argv[] = {"prog", "--records=4000000", "--datasets=Rseq,Zipf",
                        "--verbose", "--ratio=0.5"};
  CliFlags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("records", 0), 4000000);
  EXPECT_EQ(flags.GetList("datasets", {}),
            (std::vector<std::string>{"Rseq", "Zipf"}));
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio", 0.0), 0.5);
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_EQ(flags.GetString("missing", "dflt"), "dflt");
  EXPECT_FALSE(flags.Has("missing"));
  EXPECT_TRUE(flags.Has("records"));
}

TEST(CliTest, ParseHumanInt) {
  EXPECT_EQ(ParseHumanInt("123"), 123);
  EXPECT_EQ(ParseHumanInt("4e6"), 4000000);
  EXPECT_EQ(ParseHumanInt("10M"), 10000000);
  EXPECT_EQ(ParseHumanInt("100k"), 100000);
  EXPECT_EQ(ParseHumanInt("2G"), 2000000000);
  EXPECT_EQ(ParseHumanInt("1.5M"), 1500000);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, TasksCanSubmitTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.Submit([&pool, &count] {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&pool, &count] {
        count.fetch_add(1);
        pool.Submit([&count] { count.fetch_add(1); });
      });
    }
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, ParallelFor) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&hits](int64_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // Must not hang.
  SUCCEED();
}

TEST(SpinLockTest, MutualExclusion) {
  SpinLock lock;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&lock, &counter] {
      for (int i = 0; i < 10000; ++i) {
        std::lock_guard<SpinLock> guard(lock);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, 40000);
}

TEST(SpinLockTest, TryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(CycleTimerTest, MeasuresElapsedTime) {
  CycleTimer timer;
  timer.Start();
  volatile uint64_t sink = 0;
  for (int i = 0; i < 1000000; ++i) {
    sink = sink + static_cast<uint64_t>(i);
  }
  timer.Stop();
  EXPECT_GT(timer.ElapsedCycles(), 0u);
  EXPECT_GT(timer.ElapsedMillis(), 0.0);
  EXPECT_DOUBLE_EQ(timer.ElapsedSeconds(), timer.ElapsedMillis() / 1000.0);
}

TEST(MemoryTrackerTest, RssReadable) {
  const uint64_t rss = CurrentRssBytes();
  const uint64_t peak = PeakRssBytes();
  EXPECT_GT(rss, 0u);
  EXPECT_GE(peak, rss / 2);  // Peak is at least in the same ballpark.
}

#if defined(__linux__)
TEST(MemoryTrackerTest, RssPositiveAndConsistentWithStatm) {
  // CurrentRssBytes parses the "VmRSS: <kB> kB" line of /proc/self/status
  // (with SCNu64 — "%lu" into a uint64_t is UB where unsigned long is
  // 32-bit). Cross-check against the independent statm resident-page count.
  const uint64_t status_rss = CurrentRssBytes();
  ASSERT_GT(status_rss, 0u);

  FILE* file = std::fopen("/proc/self/statm", "r");
  ASSERT_NE(file, nullptr);
  long pages_total = 0;
  long pages_resident = 0;
  ASSERT_EQ(std::fscanf(file, "%ld %ld", &pages_total, &pages_resident), 2);
  std::fclose(file);
  const uint64_t statm_rss = static_cast<uint64_t>(pages_resident) *
                             static_cast<uint64_t>(sysconf(_SC_PAGESIZE));
  // Two snapshots at slightly different instants: same ballpark is enough
  // to prove the kB field parsed as a number, not garbage.
  EXPECT_GT(status_rss, statm_rss / 4);
  EXPECT_LT(status_rss, statm_rss * 4);
}
#endif

TEST(MemoryTrackerTest, ChildMeasurementSeesAllocation) {
  const uint64_t baseline = MeasurePeakRssInChild([] {});
  ASSERT_GT(baseline, 0u);
  constexpr size_t kAllocation = 64 << 20;  // 64 MiB.
  const uint64_t with_alloc = MeasurePeakRssInChild([] {
    std::vector<char> block(kAllocation, 1);
    // Touch every page so it is resident.
    volatile char sink = 0;
    for (size_t i = 0; i < block.size(); i += 4096) {
      sink = static_cast<char>(sink + block[i]);
    }
  });
  EXPECT_GT(with_alloc, baseline + kAllocation / 2);
}

}  // namespace
}  // namespace memagg
