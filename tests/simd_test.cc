// Lane-equivalence suite for util/simd.h (ISSUE 7 satellite): every SimdOps
// kernel must be bit-identical across scalar, SSE4.2, and AVX2 on random
// and adversarial inputs — the vector lanes replace scalar loops, so any
// divergence is a bug in the lane, not a tolerance. Runs under ASan/UBSan
// in CI; vector lanes are skipped (not failed) on hardware that lacks them.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "hash/hash_fn.h"
#include "util/rng.h"
#include "util/simd.h"

namespace memagg {
namespace {

using simd::kCtrlEmpty;
using simd::kGroupWidth;

// TagOfHash must produce a 7-bit tag: the control-byte scheme reserves the
// sign bit for kCtrlEmpty, and MatchEmpty's vector form reads sign bits.
static_assert(simd::TagOfHash(~0ULL) < 0x80);
static_assert(simd::TagOfHash(0x55aa55aa55aa55aaULL) < 0x80);
static_assert(kCtrlEmpty == 0x80);

/// A control-byte group is valid iff every byte is a 7-bit tag or
/// kCtrlEmpty — the only inputs the maps ever present to the kernels.
std::vector<std::vector<uint8_t>> CtrlGroupCorpus() {
  std::vector<std::vector<uint8_t>> corpus;
  Rng rng(Rng::kDefaultSeed);
  // Random valid groups: tags with scattered empties.
  for (int g = 0; g < 64; ++g) {
    std::vector<uint8_t> group(kGroupWidth);
    for (auto& b : group) {
      b = rng.NextBounded(5) == 0
              ? kCtrlEmpty
              : static_cast<uint8_t>(rng.NextBounded(128));
    }
    corpus.push_back(group);
  }
  // Adversarial shapes.
  corpus.push_back(std::vector<uint8_t>(kGroupWidth, 0x2a));  // All equal.
  corpus.push_back(std::vector<uint8_t>(kGroupWidth, kCtrlEmpty));  // Empty.
  std::vector<uint8_t> fifteen(kGroupWidth, 0x2a);  // 15/16 match.
  fifteen[7] = 0x2b;
  corpus.push_back(fifteen);
  std::vector<uint8_t> last_only(kGroupWidth, 0x01);  // Match in last lane.
  last_only[kGroupWidth - 1] = 0x2a;
  corpus.push_back(last_only);
  std::vector<uint8_t> first_only(kGroupWidth, 0x01);
  first_only[0] = 0x2a;
  corpus.push_back(first_only);
  corpus.push_back(std::vector<uint8_t>(kGroupWidth, 0x00));  // Tag zero.
  return corpus;
}

template <simd::SimdOps Ops>
void CheckGroupKernels() {
  const uint8_t probes[] = {0x00, 0x01, 0x2a, 0x2b, 0x7f};
  for (const auto& group : CtrlGroupCorpus()) {
    for (uint8_t tag : probes) {
      EXPECT_EQ(Ops::MatchByteTag(group.data(), tag),
                simd::ScalarOps::MatchByteTag(group.data(), tag))
          << "tag=" << int(tag);
    }
    EXPECT_EQ(Ops::MatchEmpty(group.data()),
              simd::ScalarOps::MatchEmpty(group.data()));
  }
}

template <simd::SimdOps Ops, size_t N>
void CheckFindByte() {
  Rng rng(Rng::kDefaultSeed ^ N);
  auto run = [](const uint8_t* keys, int count, uint8_t byte) {
    if constexpr (N == 16) return Ops::FindByte16(keys, count, byte);
    else return Ops::FindByte32(keys, count, byte);
  };
  auto oracle = [](const uint8_t* keys, int count, uint8_t byte) {
    if constexpr (N == 16)
      return simd::ScalarOps::FindByte16(keys, count, byte);
    else
      return simd::ScalarOps::FindByte32(keys, count, byte);
  };
  for (int trial = 0; trial < 256; ++trial) {
    uint8_t keys[N];
    for (auto& k : keys) k = static_cast<uint8_t>(rng.NextBounded(256));
    for (int count = 0; count <= static_cast<int>(N); ++count) {
      // Probe a present byte, an absent-ish byte, and the byte just past
      // the count boundary (must not be found).
      const uint8_t probes[] = {
          keys[0], keys[count == 0 ? 0 : count - 1],
          count < static_cast<int>(N) ? keys[count] : uint8_t{0xee},
          uint8_t{0xcd}};
      for (uint8_t byte : probes) {
        EXPECT_EQ(run(keys, count, byte), oracle(keys, count, byte))
            << "N=" << N << " count=" << count << " byte=" << int(byte);
      }
    }
  }
  // All-equal array: first index wins at every count.
  uint8_t same[N];
  std::memset(same, 0x5a, N);
  for (int count = 0; count <= static_cast<int>(N); ++count) {
    EXPECT_EQ(run(same, count, 0x5a), count == 0 ? -1 : 0);
    EXPECT_EQ(run(same, count, 0x5b), -1);
  }
  // Match exactly in the last valid lane.
  uint8_t last[N];
  std::memset(last, 0x11, N);
  last[N - 1] = 0x77;
  EXPECT_EQ(run(last, N, 0x77), static_cast<int>(N) - 1);
  EXPECT_EQ(run(last, N - 1, 0x77), -1);
}

template <simd::SimdOps Ops>
void CheckMatchKey4() {
  Rng rng(Rng::kDefaultSeed + 4);
  for (int trial = 0; trial < 512; ++trial) {
    uint64_t keys[4];
    for (auto& k : keys) {
      switch (rng.NextBounded(4)) {
        case 0: k = kEmptyKey; break;
        case 1: k = rng.NextBounded(4); break;  // Force duplicates.
        default: k = rng.Next(); break;
      }
    }
    const uint64_t probes[] = {keys[0], keys[1], keys[2], keys[3], kEmptyKey,
                               kDeletedKey, rng.Next(), 0};
    for (uint64_t probe : probes) {
      EXPECT_EQ(Ops::MatchKey4(keys, probe),
                simd::ScalarOps::MatchKey4(keys, probe));
    }
  }
  // Match in each individual slot, including the last.
  for (int slot = 0; slot < 4; ++slot) {
    uint64_t keys[4] = {1, 2, 3, 4};
    keys[slot] = 0xdeadbeef;
    EXPECT_EQ(Ops::MatchKey4(keys, 0xdeadbeef), slot);
  }
}

template <simd::SimdOps Ops>
void CheckHashBatch() {
  Rng rng(Rng::kDefaultSeed + 8);
  // Every size 0..67 covers the 2- and 4-wide main loops plus remainders.
  for (size_t n = 0; n <= 67; ++n) {
    std::vector<uint64_t> keys(n);
    for (auto& k : keys) k = rng.Next();
    if (n > 0) keys[0] = 0;           // Edge values.
    if (n > 1) keys[1] = ~0ULL;
    std::vector<uint64_t> out(n, 0xccccccccccccccccULL);
    Ops::HashBatch(keys.data(), n, out.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], HashKey(keys[i])) << "n=" << n << " i=" << i;
    }
  }
}

template <simd::SimdOps Ops>
void CheckAllKernels() {
  CheckGroupKernels<Ops>();
  CheckFindByte<Ops, 16>();
  CheckFindByte<Ops, 32>();
  CheckMatchKey4<Ops>();
  CheckHashBatch<Ops>();
}

TEST(SimdLaneEquivalence, ScalarSelfConsistent) {
  CheckAllKernels<simd::ScalarOps>();
}

TEST(SimdLaneEquivalence, Sse42MatchesScalar) {
  if (!simd::SimdLaneSupported(simd::SimdLane::kSse42)) {
    GTEST_SKIP() << "CPU lacks SSE4.2";
  }
  CheckAllKernels<simd::Sse42Ops>();
}

TEST(SimdLaneEquivalence, Avx2MatchesScalar) {
  if (!simd::SimdLaneSupported(simd::SimdLane::kAvx2)) {
    GTEST_SKIP() << "CPU lacks AVX2";
  }
  CheckAllKernels<simd::Avx2Ops>();
}

TEST(SimdLaneEquivalence, DispatchMatchesScalar) {
  // Whatever lane dispatch picked, results must match the scalar oracle.
  CheckAllKernels<simd::DispatchOps>();
}

TEST(SimdDispatch, ActiveLaneIsSupported) {
  EXPECT_TRUE(simd::SimdLaneSupported(simd::DispatchOps::Lane()));
  EXPECT_STREQ(simd::DispatchOps::Name(),
               simd::SimdLaneName(simd::DispatchOps::Lane()));
}

TEST(SimdDispatch, ScalarAlwaysSupported) {
  EXPECT_TRUE(simd::SimdLaneSupported(simd::SimdLane::kScalar));
}

TEST(SimdDispatch, LaneNames) {
  EXPECT_STREQ(simd::SimdLaneName(simd::SimdLane::kScalar), "scalar");
  EXPECT_STREQ(simd::SimdLaneName(simd::SimdLane::kSse42), "sse42");
  EXPECT_STREQ(simd::SimdLaneName(simd::SimdLane::kAvx2), "avx2");
}

}  // namespace
}  // namespace memagg
