// TSan-facing stress test for the three annotated hot structures:
// TaskScheduler/TaskGroup, StatsRegistry shards, and StripedMap. The Clang
// thread-safety annotations assert the locking protocol statically; this
// test drives the same invariants dynamically so the TSan CI job (and plain
// tier-1 runs) exercise what the annotations promise:
//
//   * TaskGroup queue/in-flight state is consistent under concurrent
//     Submit/Wait from many groups sharing one pool.
//   * StatsRegistry shard `w` is written only by the worker occupying slot
//     `w` of one parallel loop; Collect() between loops sees every claim.
//   * StripedMap stripe locks make Upsert linearizable per key.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/adaptive_aggregator.h"
#include "data/dataset.h"
#include "exec/executor.h"
#include "exec/task_scheduler.h"
#include "hash/linear_probing_map.h"
#include "hash/striped_map.h"
#include "obs/query_stats.h"
#include "util/rng.h"

namespace memagg {
namespace {

// Sized for TSan: large enough to force real interleavings (multiple
// morsels per worker, contended stripes), small enough to finish in seconds
// under 10-20x sanitizer slowdown.
constexpr int kQueryThreads = 4;
constexpr int kWorkersPerQuery = 4;
constexpr size_t kRowsPerQuery = 1 << 16;
constexpr uint64_t kKeyRange = 1024;

// Each "query" thread runs its own morsel loop (own TaskGroup, own
// StatsRegistry) over the shared process-wide scheduler while all of them
// upsert into one shared StripedMap.
TEST(ConcurrencyStressTest, SchedulerRegistryAndStripedMapTogether) {
  StripedMap<LinearProbingMap<uint64_t>> map(kKeyRange);
  std::atomic<uint64_t> morsels_recorded{0};
  std::vector<std::thread> queries;
  for (int q = 0; q < kQueryThreads; ++q) {
    queries.emplace_back([&map, &morsels_recorded, q] {
      StatsRegistry registry(kWorkersPerQuery);
      ExecutionContext ctx(kWorkersPerQuery);
      ctx.stats = &registry;
      ctx.morsel_rows = 1 << 12;  // Several morsels per worker.
      Executor exec(ctx);
      exec.ParallelFor(kRowsPerQuery, [&map, q](const Morsel& m) {
        Rng rng(static_cast<uint64_t>(q) * 7919 + m.index);
        for (size_t i = m.begin; i < m.end; ++i) {
          map.Upsert(rng.NextBounded(kKeyRange),
                     [](uint64_t& count) { ++count; });
        }
      });
      // Collect() between parallel phases must see every claimed morsel.
      if (StatsConfig::kEnabled) {
        const QueryStats stats = registry.Collect();
        EXPECT_EQ(stats.Get(StatCounter::kMorselsClaimed),
                  exec.NumMorsels(kRowsPerQuery));
        EXPECT_LE(stats.Get(StatCounter::kWorkersUsed),
                  static_cast<uint64_t>(kWorkersPerQuery));
        morsels_recorded.fetch_add(stats.Get(StatCounter::kMorselsClaimed),
                                   std::memory_order_relaxed);
      }
    });
  }
  for (auto& query : queries) query.join();

  // No update was lost across stripes: total count equals total rows.
  uint64_t total = 0;
  map.ForEach([&total](uint64_t, const uint64_t& count) { total += count; });
  EXPECT_EQ(total, static_cast<uint64_t>(kQueryThreads) * kRowsPerQuery);
  EXPECT_LE(map.size(), kKeyRange);
  if (StatsConfig::kEnabled) {
    EXPECT_GT(morsels_recorded.load(), 0u);
  }
}

// Many short-lived TaskGroups with nested submits, all sharing the global
// pool: group completion tracking (queue + in_flight under the group mutex)
// must never wait on another group's tasks or drop its own.
TEST(ConcurrencyStressTest, TaskGroupChurnWithNestedSubmits) {
  constexpr int kGroups = 64;
  constexpr int kTasksPerGroup = 32;
  const TaskScheduler::Stats before = TaskScheduler::Global().stats();
  std::atomic<uint64_t> executed{0};
  std::vector<std::thread> drivers;
  for (int d = 0; d < kQueryThreads; ++d) {
    drivers.emplace_back([&executed] {
      for (int g = 0; g < kGroups / kQueryThreads; ++g) {
        TaskGroup group(/*max_helpers=*/3);
        for (int t = 0; t < kTasksPerGroup; ++t) {
          group.Submit([&executed, &group] {
            // Nested submit from inside a task of the same group (the
            // task-pool quicksort pattern).
            group.Submit(
                [&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
            executed.fetch_add(1, std::memory_order_relaxed);
          });
        }
        group.Wait();
      }
    });
  }
  for (auto& driver : drivers) driver.join();
  EXPECT_EQ(executed.load(), 2ull * kGroups * kTasksPerGroup);
  const TaskScheduler::Stats after = TaskScheduler::Global().stats();
  EXPECT_GE(after.tasks_run, before.tasks_run);
  EXPECT_EQ(after.groups_opened - before.groups_opened,
            static_cast<uint64_t>(kGroups));
}

// Per-worker shards must merge exactly: every worker slot of one loop owns
// its shard, and no write is lost when loops run back-to-back.
TEST(ConcurrencyStressTest, StatsShardsMergeExactly) {
  StatsRegistry registry(kWorkersPerQuery);
  ExecutionContext ctx(kWorkersPerQuery);
  ctx.stats = &registry;
  ctx.morsel_rows = 1 << 10;
  Executor exec(ctx);
  constexpr int kLoops = 16;
  constexpr size_t kRows = 1 << 14;
  std::atomic<uint64_t> touched{0};
  for (int loop = 0; loop < kLoops; ++loop) {
    exec.ParallelFor(kRows, [&touched](const Morsel& m) {
      touched.fetch_add(m.end - m.begin, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(touched.load(), static_cast<uint64_t>(kLoops) * kRows);
  if (StatsConfig::kEnabled) {
    const QueryStats stats = registry.Collect();
    EXPECT_EQ(stats.Get(StatCounter::kMorselsClaimed),
              static_cast<uint64_t>(kLoops) * exec.NumMorsels(kRows));
  }
}

// Mid-switch migration under concurrency: the adaptive operator's
// ExtractPartialState/AbsorbPartialState run at a chunk barrier while the
// surrounding morsel loops use the full worker complement. Forced rotation
// at every boundary maximizes switch frequency, so TSan sees the handoff
// between the workers of the old strategy's last chunk and the new
// strategy's first chunk. Multiple query threads interleave their switches
// over the one shared scheduler pool.
TEST(ConcurrencyStressTest, AdaptiveMigrationAtEveryBoundary) {
  DatasetSpec spec{Distribution::kRseqShuffled, kRowsPerQuery, kKeyRange, 97};
  const auto keys = GenerateKeys(spec);
  const uint64_t distinct = CountDistinct(keys);
  std::vector<std::thread> queries;
  std::atomic<uint64_t> switches_seen{0};
  for (int q = 0; q < kQueryThreads; ++q) {
    queries.emplace_back([&keys, &switches_seen, distinct] {
      ExecutionContext ctx(kWorkersPerQuery);
      ctx.morsel_rows = 1 << 12;  // Several morsels per worker per chunk.
      AdaptiveOptions options;
      options.rotate = true;
      options.chunk_morsels = 1;
      AdaptiveAggregator<CountAggregate> adaptive(keys.size(), ctx, options);
      adaptive.Build(keys.data(), nullptr, keys.size());
      const auto result = adaptive.Iterate();
      EXPECT_EQ(result.size(), distinct);
      double total = 0;
      for (const GroupResult& row : result) total += row.value;
      EXPECT_DOUBLE_EQ(total, static_cast<double>(keys.size()));
      switches_seen.fetch_add(adaptive.strategy_switches(),
                              std::memory_order_relaxed);
    });
  }
  for (auto& query : queries) query.join();
  // 16 morsels per query, a forced switch at every interior boundary.
  EXPECT_GE(switches_seen.load(),
            static_cast<uint64_t>(kQueryThreads) * 10);
}

}  // namespace
}  // namespace memagg
