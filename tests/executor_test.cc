// Tests for the morsel-driven execution layer (src/exec/): morsel coverage,
// skewed-cost balancing, nested submits, serial fallthrough, empty input,
// and the scheduler's thread-creation stats hook.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "exec/executor.h"
#include "exec/morsel.h"
#include "exec/task_scheduler.h"

namespace memagg {
namespace {

TEST(MorselTest, GridCoversInputExactly) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{100}, size_t{65536},
                   size_t{65537}, size_t{1000000}}) {
    const size_t grain = ChooseMorselRows(n, 4);
    ASSERT_GE(grain, kMinMorselRows);
    ASSERT_LE(grain, kMaxMorselRows);
    MorselCursor cursor(n, grain);
    size_t covered = 0;
    size_t expected_begin = 0;
    Morsel m;
    while (cursor.TryClaim(0, &m)) {
      EXPECT_EQ(m.begin, expected_begin);
      EXPECT_GT(m.end, m.begin);
      covered += m.end - m.begin;
      expected_begin = m.end;
    }
    EXPECT_EQ(covered, n);
    EXPECT_FALSE(cursor.TryClaim(0, &m));  // Exhausted cursors stay dry.
  }
}

TEST(ExecutorTest, EveryIndexVisitedExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    const size_t n = 300000;
    std::vector<std::atomic<uint32_t>> visits(n);
    Executor exec{ExecutionContext{threads}};
    exec.ParallelFor(n, [&](const Morsel& m) {
      ASSERT_GE(m.worker, 0);
      ASSERT_LT(m.worker, exec.num_workers());
      for (size_t i = m.begin; i < m.end; ++i) {
        visits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(visits[i].load(), 1u) << "index " << i;
    }
  }
}

TEST(ExecutorTest, SkewedPerMorselCostStillCoversAndBalances) {
  // Morsel cost grows quadratically with position — the regime where static
  // equal-size chunking assigns one chunk all the work. The atomic cursor
  // must still cover everything, and no worker slot may claim more rows than
  // it could under dynamic claiming (trivially true) — we assert coverage
  // and that per-worker accounting sums to n.
  const size_t n = 400000;
  const int threads = 4;
  Executor exec{ExecutionContext{threads}};
  WorkerLocal<uint64_t> rows_per_worker(exec.num_workers());
  std::atomic<uint64_t> checksum{0};
  exec.ParallelFor(n, [&](const Morsel& m) {
    uint64_t local = 0;
    for (size_t i = m.begin; i < m.end; ++i) {
      // Skew: later rows are ~100x more expensive than early rows.
      const uint64_t reps = 1 + (i * 100) / n;
      for (uint64_t r = 0; r < reps; ++r) local += i ^ r;
    }
    checksum.fetch_add(local, std::memory_order_relaxed);
    rows_per_worker[m.worker] += m.end - m.begin;
  });
  uint64_t total_rows = 0;
  rows_per_worker.ForEach([&total_rows](uint64_t rows) { total_rows += rows; });
  EXPECT_EQ(total_rows, n);
  EXPECT_NE(checksum.load(), 0u);
}

TEST(ExecutorTest, SerialContextRunsOnCallingThreadWithoutThePool) {
  Executor exec{ExecutionContext{1}};
  const auto caller = std::this_thread::get_id();
  const uint64_t tasks_before = TaskScheduler::Global().stats().tasks_run;
  size_t rows = 0;
  exec.ParallelFor(100000, [&](const Morsel& m) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    rows += m.end - m.begin;
  });
  EXPECT_EQ(rows, 100000u);
  // Serial fallthrough never touches the scheduler.
  EXPECT_EQ(TaskScheduler::Global().stats().tasks_run, tasks_before);
}

TEST(ExecutorTest, EmptyInputDrainsWithoutWork) {
  Executor exec{ExecutionContext{8}};
  int calls = 0;
  exec.ParallelFor(0, [&](const Morsel&) { ++calls; });
  EXPECT_EQ(calls, 0);
  const double sum = exec.ParallelReduce(
      size_t{0}, 0.0,
      [](double& acc, const Morsel& m) {
        acc += static_cast<double>(m.end - m.begin);
      },
      [](double& into, double& from) { into += from; });
  EXPECT_EQ(sum, 0.0);
}

TEST(ExecutorTest, ParallelReduceSumsLikeSerial) {
  const size_t n = 250000;
  for (int threads : {1, 3, 8}) {
    Executor exec{ExecutionContext{threads}};
    const uint64_t sum = exec.ParallelReduce(
        n, uint64_t{0},
        [](uint64_t& acc, const Morsel& m) {
          for (size_t i = m.begin; i < m.end; ++i) acc += i;
        },
        [](uint64_t& into, uint64_t& from) { into += from; });
    EXPECT_EQ(sum, n * (n - 1) / 2);
  }
}

TEST(ExecutorTest, NestedParallelForIsSafe) {
  // An inner ParallelFor inside a morsel of an outer one must not deadlock
  // (the waiting caller always participates) and must cover its own range.
  Executor outer{ExecutionContext{4}};
  std::atomic<uint64_t> total{0};
  outer.ParallelFor(
      8,
      [&](const Morsel& outer_m) {
        for (size_t o = outer_m.begin; o < outer_m.end; ++o) {
          Executor inner{ExecutionContext{2}};
          inner.ParallelFor(40000, [&](const Morsel& inner_m) {
            total.fetch_add(inner_m.end - inner_m.begin,
                            std::memory_order_relaxed);
          });
        }
      },
      /*grain=*/1);
  EXPECT_EQ(total.load(), 8u * 40000u);
}

TEST(TaskGroupTest, TasksMaySubmitFurtherTasks) {
  TaskGroup group(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) {
    group.Submit([&group, &ran] {
      ran.fetch_add(1);
      group.Submit([&group, &ran] {
        ran.fetch_add(1);
        group.Submit([&ran] { ran.fetch_add(1); });
      });
    });
  }
  group.Wait();
  EXPECT_EQ(ran.load(), 12);
}

TEST(TaskGroupTest, WaitOnEmptyGroupReturnsImmediately) {
  TaskGroup group(2);
  group.Wait();  // Nothing submitted; must not hang.
  group.Wait();  // Wait must be re-entrant after a drain.
}

TEST(SchedulerStatsTest, NoThreadCreationAfterWarmUp) {
  WarmUpScheduler();
  const uint64_t threads_before = TaskScheduler::Global().stats().threads_created;
  EXPECT_GT(threads_before, 0u);
  // A steady-state parallel operation reuses the warm pool: zero new threads.
  Executor exec{ExecutionContext{8}};
  std::atomic<uint64_t> sink{0};
  for (int round = 0; round < 3; ++round) {
    exec.ParallelFor(200000, [&](const Morsel& m) {
      sink.fetch_add(m.end - m.begin, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(TaskScheduler::Global().stats().threads_created, threads_before);
  EXPECT_EQ(sink.load(), 3u * 200000u);
}

TEST(SchedulerStatsTest, ParallelismIsAtLeastOne) {
  EXPECT_GE(Parallelism(), 1);
}

}  // namespace
}  // namespace memagg
