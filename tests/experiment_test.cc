// Tests for the experiment framework (one-call Table 5 parameter points).

#include "core/experiment.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "test_util.h"

namespace memagg {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.dataset = {Distribution::kRseqShuffled, 20000, 256, 401};
  config.keep_rows = true;
  return config;
}

TEST(ExperimentTest, Q1AutoResolvesToAdaptiveAndMatchesReference) {
  ExperimentConfig config = SmallConfig();
  config.query = MakeQ1();
  const ExperimentResult result = RunExperiment(config);
  // "auto" means adaptive-at-runtime for vector queries (docs/adaptive.md),
  // not the static Figure 12 pick.
  EXPECT_EQ(result.algorithm, "Adaptive");
  EXPECT_EQ(result.num_groups, 256u);
  auto rows = result.rows;
  SortByKey(rows);
  const auto keys = GenerateKeys(config.dataset);
  EXPECT_EQ(rows, ReferenceVectorAggregate(keys, {},
                                           AggregateFunction::kCount));
  EXPECT_GT(result.build.cycles, 0u);
  EXPECT_GT(result.data_structure_bytes, 0u);
}

TEST(ExperimentTest, Q3AutoResolvesToAdaptiveAndMatchesReference) {
  ExperimentConfig config = SmallConfig();
  config.query = MakeQ3();
  const ExperimentResult result = RunExperiment(config);
  EXPECT_EQ(result.algorithm, "Adaptive");
  EXPECT_EQ(result.num_groups, 256u);
  auto rows = result.rows;
  SortByKey(rows);
  const auto keys = GenerateKeys(config.dataset);
  const auto values = GenerateValues(config.dataset.num_records,
                                     config.value_range, config.value_seed);
  EXPECT_EQ(rows, ReferenceVectorAggregate(keys, values,
                                           AggregateFunction::kMedian));
}

TEST(ExperimentTest, Q7RangeRestrictsGroups) {
  ExperimentConfig config = SmallConfig();
  config.query = MakeQ7(10, 19);
  const ExperimentResult result = RunExperiment(config);
  EXPECT_EQ(result.algorithm, "ART");  // Range + no prebuilt index.
  EXPECT_EQ(result.num_groups, 10u);
  for (const GroupResult& row : result.rows) {
    EXPECT_GE(row.key, 10u);
    EXPECT_LE(row.key, 19u);
  }
}

TEST(ExperimentTest, ScalarQueries) {
  ExperimentConfig config = SmallConfig();
  config.query = MakeQ4();
  EXPECT_DOUBLE_EQ(RunExperiment(config).scalar_value, 20000.0);

  config.query = MakeQ6();
  const ExperimentResult median = RunExperiment(config);
  EXPECT_EQ(median.algorithm, "Spreadsort");
  const auto keys = GenerateKeys(config.dataset);
  EXPECT_DOUBLE_EQ(median.scalar_value, ReferenceMedian(keys));
}

TEST(ExperimentTest, PinnedAlgorithmAndThreads) {
  ExperimentConfig config = SmallConfig();
  config.query = MakeQ1();
  config.algorithm = "Hash_TBBSC";
  config.num_threads = 4;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_EQ(result.algorithm, "Hash_TBBSC");
  EXPECT_EQ(result.num_groups, 256u);
}

TEST(ExperimentTest, RowsOmittedByDefault) {
  ExperimentConfig config = SmallConfig();
  config.keep_rows = false;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_TRUE(result.rows.empty());
  EXPECT_EQ(result.num_groups, 256u);  // Count still reported.
}

TEST(ExperimentTest, ResultsAgreeAcrossAlgorithmsViaFramework) {
  ExperimentConfig config = SmallConfig();
  config.query = MakeQ2();
  VectorResult baseline;
  for (const std::string& label : SerialLabels()) {
    config.algorithm = label;
    auto rows = RunExperiment(config).rows;
    SortByKey(rows);
    if (baseline.empty()) {
      baseline = rows;
      continue;
    }
    ASSERT_EQ(rows.size(), baseline.size()) << label;
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i].key, baseline[i].key) << label;
      EXPECT_DOUBLE_EQ(rows[i].value, baseline[i].value) << label;
    }
  }
}

}  // namespace
}  // namespace memagg
