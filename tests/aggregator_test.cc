// Integration tests: every serial algorithm label from Table 3 computes
// Q1 (vector COUNT), Q2 (vector AVG) and Q3 (vector MEDIAN) over every
// Table 4 dataset distribution, verified against the naive reference.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/engine.h"
#include "data/dataset.h"
#include "test_util.h"

namespace memagg {
namespace {

struct Case {
  std::string label;
  Distribution distribution;
};

class SerialAggregation : public ::testing::TestWithParam<Case> {};

constexpr uint64_t kRecords = 20000;
constexpr uint64_t kCardinality = 128;

TEST_P(SerialAggregation, Q1VectorCount) {
  const Case& c = GetParam();
  DatasetSpec spec{c.distribution, kRecords, kCardinality, 21};
  const auto keys = GenerateKeys(spec);
  auto aggregator =
      MakeVectorAggregator(c.label, AggregateFunction::kCount, keys.size());
  aggregator->Build(keys.data(), nullptr, keys.size());
  auto result = aggregator->Iterate();
  SortByKey(result);
  const auto expected =
      ReferenceVectorAggregate(keys, {}, AggregateFunction::kCount);
  EXPECT_EQ(result, expected);
  EXPECT_EQ(aggregator->NumGroups(), expected.size());
}

TEST_P(SerialAggregation, Q2VectorAverage) {
  const Case& c = GetParam();
  DatasetSpec spec{c.distribution, kRecords, kCardinality, 22};
  const auto keys = GenerateKeys(spec);
  const auto values = GenerateValues(keys.size(), 10000, 23);
  auto aggregator =
      MakeVectorAggregator(c.label, AggregateFunction::kAverage, keys.size());
  aggregator->Build(keys.data(), values.data(), keys.size());
  auto result = aggregator->Iterate();
  SortByKey(result);
  const auto expected =
      ReferenceVectorAggregate(keys, values, AggregateFunction::kAverage);
  ASSERT_EQ(result.size(), expected.size());
  for (size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(result[i].key, expected[i].key);
    EXPECT_DOUBLE_EQ(result[i].value, expected[i].value);
  }
}

TEST_P(SerialAggregation, Q3VectorMedian) {
  const Case& c = GetParam();
  DatasetSpec spec{c.distribution, kRecords, kCardinality, 24};
  const auto keys = GenerateKeys(spec);
  const auto values = GenerateValues(keys.size(), 10000, 25);
  auto aggregator =
      MakeVectorAggregator(c.label, AggregateFunction::kMedian, keys.size());
  aggregator->Build(keys.data(), values.data(), keys.size());
  auto result = aggregator->Iterate();
  SortByKey(result);
  const auto expected =
      ReferenceVectorAggregate(keys, values, AggregateFunction::kMedian);
  EXPECT_EQ(result, expected);
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (const std::string& label : SerialLabels()) {
    for (Distribution d : kAllDistributions) {
      cases.push_back({label, d});
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  std::string name =
      info.param.label + "_" + DistributionName(info.param.distribution);
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllLabelsAllDistributions, SerialAggregation,
                         ::testing::ValuesIn(AllCases()), CaseName);

// --- Additional aggregate functions (extension beyond the paper's queries) --

class ExtraFunctions : public ::testing::TestWithParam<std::string> {};

TEST_P(ExtraFunctions, SumMinMaxMode) {
  const std::string& label = GetParam();
  DatasetSpec spec{Distribution::kZipf, 10000, 64, 26};
  const auto keys = GenerateKeys(spec);
  const auto values = GenerateValues(keys.size(), 1000, 27);
  for (AggregateFunction fn :
       {AggregateFunction::kSum, AggregateFunction::kMin,
        AggregateFunction::kMax, AggregateFunction::kMode}) {
    auto aggregator = MakeVectorAggregator(label, fn, keys.size());
    aggregator->Build(keys.data(), values.data(), keys.size());
    auto result = aggregator->Iterate();
    SortByKey(result);
    EXPECT_EQ(result, ReferenceVectorAggregate(keys, values, fn))
        << AggregateFunctionName(fn);
  }
}

INSTANTIATE_TEST_SUITE_P(AllLabels, ExtraFunctions,
                         ::testing::ValuesIn(SerialLabels()));

// --- Multiple Build calls accumulate ----------------------------------------

TEST(AggregatorContractTest, IncrementalBuildAccumulates) {
  const std::vector<uint64_t> part1 = {1, 2, 3, 1};
  const std::vector<uint64_t> part2 = {2, 2, 4};
  auto aggregator =
      MakeVectorAggregator("Hash_LP", AggregateFunction::kCount, 16);
  aggregator->Build(part1.data(), nullptr, part1.size());
  aggregator->Build(part2.data(), nullptr, part2.size());
  auto result = aggregator->Iterate();
  SortByKey(result);
  const VectorResult expected = {{1, 2.0}, {2, 3.0}, {3, 1.0}, {4, 1.0}};
  EXPECT_EQ(result, expected);
}

TEST(AggregatorContractTest, BuildOwnedMatchesBuild) {
  DatasetSpec spec{Distribution::kZipf, 20000, 128, 30};
  const auto keys = GenerateKeys(spec);
  const auto values = GenerateValues(keys.size(), 1000, 31);
  for (const std::string& label : SerialLabels()) {
    for (AggregateFunction fn :
         {AggregateFunction::kCount, AggregateFunction::kMedian}) {
      auto by_copy = MakeVectorAggregator(label, fn, keys.size());
      by_copy->Build(keys.data(), values.data(), keys.size());
      auto by_move = MakeVectorAggregator(label, fn, keys.size());
      by_move->BuildOwned(std::vector<uint64_t>(keys),
                          std::vector<uint64_t>(values));
      auto want = by_copy->Iterate();
      auto got = by_move->Iterate();
      SortByKey(want);
      SortByKey(got);
      EXPECT_EQ(got, want) << label << " " << AggregateFunctionName(fn);
    }
  }
}

TEST(AggregatorContractTest, TreeAndSortOutputsAreKeySorted) {
  DatasetSpec spec{Distribution::kRseqShuffled, 5000, 100, 28};
  const auto keys = GenerateKeys(spec);
  for (const std::string& label :
       {std::string("ART"), std::string("Judy"), std::string("Btree"),
        std::string("Introsort"), std::string("Spreadsort")}) {
    auto aggregator =
        MakeVectorAggregator(label, AggregateFunction::kCount, keys.size());
    aggregator->Build(keys.data(), nullptr, keys.size());
    const auto result = aggregator->Iterate();
    for (size_t i = 1; i < result.size(); ++i) {
      EXPECT_LT(result[i - 1].key, result[i].key) << label;
    }
  }
}

TEST(AggregatorContractTest, SingleRecordDataset) {
  const std::vector<uint64_t> keys = {42};
  const std::vector<uint64_t> values = {7};
  for (const std::string& label : SerialLabels()) {
    auto aggregator =
        MakeVectorAggregator(label, AggregateFunction::kMedian, 1);
    aggregator->Build(keys.data(), values.data(), 1);
    const auto result = aggregator->Iterate();
    ASSERT_EQ(result.size(), 1u) << label;
    EXPECT_EQ(result[0].key, 42u) << label;
    EXPECT_DOUBLE_EQ(result[0].value, 7.0) << label;
  }
}

TEST(AggregatorContractTest, AllRecordsOneGroup) {
  DatasetSpec spec{Distribution::kRseq, 10000, 1, 29};
  const auto keys = GenerateKeys(spec);
  for (const std::string& label : SerialLabels()) {
    auto aggregator =
        MakeVectorAggregator(label, AggregateFunction::kCount, keys.size());
    aggregator->Build(keys.data(), nullptr, keys.size());
    const auto result = aggregator->Iterate();
    ASSERT_EQ(result.size(), 1u) << label;
    EXPECT_DOUBLE_EQ(result[0].value, 10000.0) << label;
  }
}

TEST(AggregatorContractTest, AllKeysDistinct) {
  std::vector<uint64_t> keys(5000);
  for (uint64_t i = 0; i < keys.size(); ++i) keys[i] = i * 7919;
  for (const std::string& label : SerialLabels()) {
    auto aggregator =
        MakeVectorAggregator(label, AggregateFunction::kCount, keys.size());
    aggregator->Build(keys.data(), nullptr, keys.size());
    auto result = aggregator->Iterate();
    EXPECT_EQ(result.size(), keys.size()) << label;
    for (const GroupResult& row : result) {
      EXPECT_DOUBLE_EQ(row.value, 1.0) << label;
    }
  }
}

}  // namespace
}  // namespace memagg
