// Concurrency tests for the two thread-safe hash tables (paper Section 5.8):
// ConcurrentChainingMap (Hash_TBBSC) and CuckooMap (Hash_LC).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "hash/concurrent_chaining_map.h"
#include "hash/cuckoo_map.h"
#include "util/rng.h"

namespace memagg {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 50000;

TEST(ConcurrentChainingMapTest, SingleThreadedBasics) {
  // Allocator handles are declared before the map: nodes live in a handle's
  // arena, so the map (and its node pointers) must be destroyed first.
  ConcurrentChainingMap<uint64_t>::Alloc alloc;
  ConcurrentChainingMap<uint64_t> map(64);
  map.GetOrInsert(1, alloc) = 10;
  map.GetOrInsert(2, alloc) = 20;
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.Find(1), nullptr);
  EXPECT_EQ(*map.Find(1), 10u);
  EXPECT_EQ(map.Find(3), nullptr);
}

TEST(ConcurrentChainingMapTest, ConcurrentCountsAreExact) {
  // All threads increment atomic counters for a shared key range; totals
  // must be exact (no lost inserts, no duplicate nodes).
  constexpr uint64_t kKeyRange = 512;
  using Map = ConcurrentChainingMap<std::atomic<uint64_t>>;
  std::vector<Map::Alloc> allocs(kThreads);  // One arena-backed pool each.
  Map map(kKeyRange);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, &allocs, t] {
      Rng rng(100 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        map.GetOrInsert(rng.NextBounded(kKeyRange), allocs[t])
            .fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  uint64_t total = 0;
  map.ForEach([&total](uint64_t, const std::atomic<uint64_t>& count) {
    total += count.load();
  });
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(map.size(), kKeyRange);
}

TEST(ConcurrentChainingMapTest, InsertRaceOnSameKeyYieldsOneNode) {
  // Hammer a single key from all threads: the CAS insert must converge on
  // exactly one node.
  using Map = ConcurrentChainingMap<std::atomic<uint64_t>>;
  std::vector<Map::Alloc> allocs(kThreads);
  Map map(16);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, &allocs, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        map.GetOrInsert(7, allocs[t]).fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.Find(7)->load(), static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

TEST(ConcurrentChainingMapTest, UndersizedBucketsStillCorrect) {
  // Chains much longer than one entry.
  using Map = ConcurrentChainingMap<std::atomic<uint64_t>>;
  std::vector<Map::Alloc> allocs(4);
  Map map(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&map, &allocs, t] {
      for (uint64_t k = 0; k < 1000; ++k) {
        map.GetOrInsert(k * 4 + t, allocs[t])
            .fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(map.size(), 4000u);
}

TEST(CuckooMapTest, ConcurrentUpsertCountsAreExact) {
  constexpr uint64_t kKeyRange = 512;
  CuckooMap<uint64_t> map(kKeyRange);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      Rng rng(200 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        map.Upsert(rng.NextBounded(kKeyRange), [](uint64_t& v) { ++v; });
      }
    });
  }
  for (auto& thread : threads) thread.join();
  uint64_t total = 0;
  map.ForEach([&total](uint64_t, const uint64_t& count) { total += count; });
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

TEST(CuckooMapTest, ConcurrentUpsertWithEvictionsAndGrowth) {
  // Undersized table + wide key range: forces displacement paths and at
  // least one concurrent Grow.
  CuckooMap<uint64_t> map(8);
  constexpr uint64_t kKeysPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (uint64_t k = 0; k < kKeysPerThread; ++k) {
        map.Upsert(t * kKeysPerThread + k, [](uint64_t& v) { ++v; });
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(map.size(), kThreads * kKeysPerThread);
  uint64_t total = 0;
  map.ForEach([&total](uint64_t, const uint64_t& count) { total += count; });
  EXPECT_EQ(total, kThreads * kKeysPerThread);  // Each key exactly once.
}

TEST(CuckooMapTest, ConcurrentVectorValues) {
  // The holistic (Q3) shape: per-group vectors appended under Upsert's
  // bucket locks.
  CuckooMap<std::vector<uint64_t>> map(64);
  constexpr uint64_t kKeyRange = 64;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&map, t] {
      Rng rng(300 + t);
      for (int i = 0; i < 20000; ++i) {
        const uint64_t value = rng.Next();
        map.Upsert(rng.NextBounded(kKeyRange),
                   [value](std::vector<uint64_t>& v) { v.push_back(value); });
      }
    });
  }
  for (auto& thread : threads) thread.join();
  uint64_t total = 0;
  map.ForEach([&total](uint64_t, const std::vector<uint64_t>& v) {
    total += v.size();
  });
  EXPECT_EQ(total, 4u * 20000u);
}

TEST(CuckooMapTest, ConcurrentGrowthStaysBounded) {
  // Regression test: when several threads overflowed the table at the same
  // size, each used to double it in turn after acquiring the resize lock —
  // one overflow event could multiply the bucket array by the number of
  // racing threads. Grow() now re-checks the bucket count it was asked to
  // grow *from* and skips if another thread already grew the table, so the
  // final footprint is bounded by the data, not by the thread count.
  CuckooMap<uint64_t> map(2);  // Deliberately undersized: many grows.
  constexpr uint64_t kKeysPerThread = 20000;
  constexpr uint64_t kTotalKeys = kThreads * kKeysPerThread;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (uint64_t k = 0; k < kKeysPerThread; ++k) {
        map.Upsert(static_cast<uint64_t>(t) * kKeysPerThread + k + 1,
                   [](uint64_t& v) { ++v; });
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(map.size(), kTotalKeys);
  // 4 slots per bucket; a duplicate-growth pile-up would overshoot this
  // bound by whole powers of two.
  EXPECT_LE(map.bucket_count() * 4, 8 * kTotalKeys);
  uint64_t total = 0;
  map.ForEach([&total](uint64_t, const uint64_t& count) { total += count; });
  EXPECT_EQ(total, kTotalKeys);
}

TEST(CuckooMapTest, MixedReadersAndWriters) {
  CuckooMap<uint64_t> map(1024);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> found{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&map, &stop, &found] {
      Rng rng(400);
      while (!stop.load(std::memory_order_relaxed)) {
        if (map.Contains(rng.NextBounded(4096))) {
          found.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (uint64_t k = 0; k < 4096; ++k) {
    map.Upsert(k, [](uint64_t& v) { ++v; });
  }
  stop.store(true);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(map.size(), 4096u);
}

}  // namespace
}  // namespace memagg
