// Property-based sweeps: invariants that must hold for every operator on
// every dataset distribution and cardinality, without reference to a golden
// output.
//
//   P1. Sum of Q1 group counts equals the number of records.
//   P2. Number of groups equals the number of distinct keys.
//   P3. Every group median lies within the value column's [min, max].
//   P4. All operators agree with each other (pairwise equality).
//   P5. Range iterate equals full iterate filtered by the range.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/engine.h"
#include "data/dataset.h"
#include "test_util.h"

namespace memagg {
namespace {

struct Sweep {
  Distribution distribution;
  uint64_t records;
  uint64_t cardinality;
};

class PropertySweep : public ::testing::TestWithParam<Sweep> {};

TEST_P(PropertySweep, CountsSumToRecordCount) {
  const Sweep& s = GetParam();
  DatasetSpec spec{s.distribution, s.records, s.cardinality, 61};
  const auto keys = GenerateKeys(spec);
  const uint64_t distinct = CountDistinct(keys);
  for (const std::string& label : SerialLabels()) {
    auto aggregator =
        MakeVectorAggregator(label, AggregateFunction::kCount, keys.size());
    aggregator->Build(keys.data(), nullptr, keys.size());
    const auto result = aggregator->Iterate();
    EXPECT_EQ(result.size(), distinct) << label;  // P2.
    double total = 0;
    for (const GroupResult& row : result) total += row.value;
    EXPECT_DOUBLE_EQ(total, static_cast<double>(s.records)) << label;  // P1.
  }
}

TEST_P(PropertySweep, MediansWithinValueBounds) {
  const Sweep& s = GetParam();
  DatasetSpec spec{s.distribution, s.records, s.cardinality, 62};
  const auto keys = GenerateKeys(spec);
  const auto values = GenerateValues(keys.size(), 5000, 63);
  const double lo = static_cast<double>(
      *std::min_element(values.begin(), values.end()));
  const double hi = static_cast<double>(
      *std::max_element(values.begin(), values.end()));
  for (const std::string& label :
       {std::string("Hash_LP"), std::string("ART"), std::string("Spreadsort")}) {
    auto aggregator =
        MakeVectorAggregator(label, AggregateFunction::kMedian, keys.size());
    aggregator->Build(keys.data(), values.data(), keys.size());
    for (const GroupResult& row : aggregator->Iterate()) {
      EXPECT_GE(row.value, lo) << label;  // P3.
      EXPECT_LE(row.value, hi) << label;
    }
  }
}

TEST_P(PropertySweep, AllOperatorsAgree) {
  const Sweep& s = GetParam();
  DatasetSpec spec{s.distribution, s.records, s.cardinality, 64};
  const auto keys = GenerateKeys(spec);
  const auto values = GenerateValues(keys.size(), 1000, 65);
  VectorResult baseline;
  for (const std::string& label : SerialLabels()) {
    auto aggregator =
        MakeVectorAggregator(label, AggregateFunction::kAverage, keys.size());
    aggregator->Build(keys.data(), values.data(), keys.size());
    auto result = aggregator->Iterate();
    SortByKey(result);
    if (baseline.empty()) {
      baseline = std::move(result);
      continue;
    }
    ASSERT_EQ(result.size(), baseline.size()) << label;  // P4.
    for (size_t i = 0; i < result.size(); ++i) {
      EXPECT_EQ(result[i].key, baseline[i].key) << label;
      EXPECT_DOUBLE_EQ(result[i].value, baseline[i].value) << label;
    }
  }
}

TEST_P(PropertySweep, RangeIterateEqualsFilteredIterate) {
  const Sweep& s = GetParam();
  DatasetSpec spec{s.distribution, s.records, s.cardinality, 66};
  const auto keys = GenerateKeys(spec);
  const uint64_t lo = s.cardinality / 4;
  const uint64_t hi = (3 * s.cardinality) / 4;
  for (const std::string& label : TreeLabels()) {
    auto aggregator =
        MakeVectorAggregator(label, AggregateFunction::kCount, keys.size());
    aggregator->Build(keys.data(), nullptr, keys.size());
    auto full = aggregator->Iterate();
    SortByKey(full);
    VectorResult filtered;
    for (const GroupResult& row : full) {
      if (row.key >= lo && row.key <= hi) filtered.push_back(row);
    }
    auto ranged = aggregator->IterateRange(lo, hi);
    SortByKey(ranged);
    EXPECT_EQ(ranged, filtered) << label;  // P5.
  }
}

std::vector<Sweep> AllSweeps() {
  std::vector<Sweep> sweeps;
  for (Distribution d : kAllDistributions) {
    for (uint64_t cardinality : {64ULL, 512ULL, 4096ULL}) {
      sweeps.push_back({d, 40000, cardinality});
    }
  }
  // Size sweep at fixed cardinality.
  sweeps.push_back({Distribution::kRseqShuffled, 1000, 64});
  sweeps.push_back({Distribution::kRseqShuffled, 100000, 64});
  return sweeps;
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributionsAndCardinalities, PropertySweep,
    ::testing::ValuesIn(AllSweeps()),
    [](const ::testing::TestParamInfo<Sweep>& info) {
      std::string name = DistributionName(info.param.distribution) + "_n" +
                         std::to_string(info.param.records) + "_c" +
                         std::to_string(info.param.cardinality);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace memagg
