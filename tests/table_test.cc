// Tests for the columnar data layer: StringDict, Column, Table
// (data/string_dict.h, data/table.h) and the lineitem generator
// (data/lineitem.h).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "data/lineitem.h"
#include "data/string_dict.h"
#include "data/table.h"

namespace memagg {
namespace {

TEST(StringDictTest, InternAssignsDenseCodesInFirstSeenOrder) {
  StringDict dict;
  EXPECT_EQ(dict.Intern("banana"), 0u);
  EXPECT_EQ(dict.Intern("apple"), 1u);
  EXPECT_EQ(dict.Intern("banana"), 0u);  // Idempotent.
  EXPECT_EQ(dict.Intern("cherry"), 2u);
  EXPECT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.String(0), "banana");
  EXPECT_EQ(dict.String(1), "apple");
  EXPECT_EQ(dict.String(2), "cherry");
}

TEST(StringDictTest, FindDoesNotIntern) {
  StringDict dict;
  dict.Intern("x");
  EXPECT_EQ(dict.Find("x"), 0u);
  EXPECT_EQ(dict.Find("y"), StringDict::kNoCode);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(StringDictTest, SortedTracksInsertionOrder) {
  StringDict sorted;
  sorted.Intern("A");
  sorted.Intern("B");
  sorted.Intern("C");
  EXPECT_TRUE(sorted.sorted());

  StringDict unsorted;
  unsorted.Intern("B");
  unsorted.Intern("A");
  EXPECT_FALSE(unsorted.sorted());
}

TEST(StringDictTest, FreezeSortedReordersCodes) {
  StringDict dict;
  dict.Intern("cherry");   // old 0
  dict.Intern("apple");    // old 1
  dict.Intern("banana");   // old 2
  EXPECT_FALSE(dict.sorted());
  const std::vector<uint32_t> remap = dict.FreezeSorted();
  EXPECT_TRUE(dict.sorted());
  EXPECT_EQ(remap, (std::vector<uint32_t>{2, 0, 1}));
  EXPECT_EQ(dict.String(0), "apple");
  EXPECT_EQ(dict.String(1), "banana");
  EXPECT_EQ(dict.String(2), "cherry");
  EXPECT_EQ(dict.Find("cherry"), 2u);
}

TEST(StringDictTest, BoundsSearchOnSortedDict) {
  StringDict dict;
  dict.Intern("b");
  dict.Intern("d");
  dict.Intern("f");
  EXPECT_EQ(dict.LowerBound("a"), 0u);
  EXPECT_EQ(dict.LowerBound("b"), 0u);
  EXPECT_EQ(dict.LowerBound("c"), 1u);
  EXPECT_EQ(dict.LowerBound("g"), 3u);
  EXPECT_EQ(dict.UpperBound("b"), 1u);
  EXPECT_EQ(dict.UpperBound("e"), 2u);
  EXPECT_EQ(dict.UpperBound("f"), 3u);
}

TEST(TableTest, AddColumnAndAccessors) {
  Table table;
  table.AddColumn("k", Column::U64({1, 2, 3}));
  table.AddColumn("v", Column::I64({-1, 0, 1}));
  table.AddColumn("w", Column::F64({0.5, 1.5, 2.5}));
  EXPECT_EQ(table.num_rows(), 3u);
  EXPECT_EQ(table.num_columns(), 3u);
  EXPECT_TRUE(table.HasColumn("v"));
  EXPECT_FALSE(table.HasColumn("missing"));
  EXPECT_EQ(table.ColumnIndex("w"), 2u);
  EXPECT_EQ(table.ColumnNameAt(0), "k");
  EXPECT_EQ(table.ColumnNamed("k").u64()[1], 2u);
  EXPECT_EQ(table.ColumnNamed("v").i64()[0], -1);
  EXPECT_GT(table.MemoryBytes(), 0u);
}

TEST(TableTest, StringColumnRoundTrip) {
  StringDict dict;
  const uint32_t a = dict.Intern("A");
  const uint32_t n = dict.Intern("N");
  Table table;
  table.AddColumn("flag", Column::String(std::move(dict), {a, n, a}));
  const Column& column = table.ColumnNamed("flag");
  EXPECT_EQ(column.type(), ColumnType::kString);
  EXPECT_EQ(column.dict().String(column.codes()[2]), "A");
}

TEST(TableTest, FreezeDictSortedRewritesCodesInPlace) {
  StringDict dict;
  dict.Intern("R");  // old 0
  dict.Intern("A");  // old 1
  Table table;
  table.AddColumn("flag", Column::String(std::move(dict), {0, 1, 0}));
  Column& column = table.MutableColumnAt(table.ColumnIndex("flag"));
  EXPECT_FALSE(column.dict().sorted());
  column.FreezeDictSorted();
  EXPECT_TRUE(column.dict().sorted());
  // Codes changed, decoded strings did not.
  EXPECT_EQ(column.dict().String(column.codes()[0]), "R");
  EXPECT_EQ(column.dict().String(column.codes()[1]), "A");
  EXPECT_EQ(column.codes()[0], 1u);
}

TEST(TableDeathTest, MismatchedRowCountAborts) {
  Table table;
  table.AddColumn("a", Column::U64({1, 2, 3}));
  EXPECT_DEATH(table.AddColumn("b", Column::U64({1})),
               "row count does not match");
}

TEST(TableDeathTest, DuplicateColumnNameAborts) {
  Table table;
  table.AddColumn("a", Column::U64({1}));
  EXPECT_DEATH(table.AddColumn("a", Column::U64({2})),
               "duplicate column name");
}

TEST(TableDeathTest, UnknownColumnAbortsWithName) {
  Table table;
  table.AddColumn("a", Column::U64({1}));
  EXPECT_DEATH(table.ColumnIndex("nope"), "Unknown column: nope");
}

TEST(TableDeathTest, WrongTypeAccessAborts) {
  Table table;
  table.AddColumn("a", Column::U64({1}));
  EXPECT_DEATH(table.ColumnNamed("a").i64(), "wrong type");
}

TEST(TableDeathTest, StringColumnRejectsOutOfDictCodes) {
  StringDict dict;
  dict.Intern("only");
  EXPECT_DEATH(Column::String(std::move(dict), {0, 7}),
               "not present in its dictionary");
}

TEST(LineitemTest, ShapeAndDeterminism) {
  const Table table = GenerateLineitem(1000, 42);
  EXPECT_EQ(table.num_rows(), 1000u);
  for (const char* name :
       {"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
        "l_discount", "l_tax", "l_shipdate", "disc_price"}) {
    EXPECT_TRUE(table.HasColumn(name)) << name;
  }
  // Deterministic in (n, seed).
  const Table again = GenerateLineitem(1000, 42);
  EXPECT_EQ(table.ColumnNamed("l_quantity").u64(),
            again.ColumnNamed("l_quantity").u64());
  const Table other_seed = GenerateLineitem(1000, 43);
  EXPECT_NE(table.ColumnNamed("l_quantity").u64(),
            other_seed.ColumnNamed("l_quantity").u64());
}

TEST(LineitemTest, ColumnDomainsAndCorrelations) {
  const Table table = GenerateLineitem(5000, 7);
  const auto& quantity = table.ColumnNamed("l_quantity").u64();
  const auto& extendedprice = table.ColumnNamed("l_extendedprice").u64();
  const auto& discount = table.ColumnNamed("l_discount").u64();
  const auto& shipdate = table.ColumnNamed("l_shipdate").u64();
  const auto& disc_price = table.ColumnNamed("disc_price").u64();
  const Column& returnflag = table.ColumnNamed("l_returnflag");
  const Column& linestatus = table.ColumnNamed("l_linestatus");
  EXPECT_TRUE(returnflag.dict().sorted());
  EXPECT_TRUE(linestatus.dict().sorted());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    EXPECT_GE(quantity[i], 1u);
    EXPECT_LE(quantity[i], 50u);
    EXPECT_LE(discount[i], 10u);
    EXPECT_LT(shipdate[i], kLineitemShipdateDays);
    EXPECT_EQ(disc_price[i], extendedprice[i] * (100 - discount[i]));
    // The dbgen-style correlation: open shipments are never returned.
    const std::string& status =
        linestatus.dict().String(linestatus.codes()[i]);
    const std::string& flag = returnflag.dict().String(returnflag.codes()[i]);
    if (status == "O") {
      EXPECT_EQ(flag, "N");
    }
  }
}

}  // namespace
}  // namespace memagg
