// Unit and property tests for the serial hash tables (paper Section 3.2):
// Hash_LP, Hash_SC, Hash_Sparse, Hash_Dense, Hash_LC (single-threaded use).
// All tables are verified against std::unordered_map across workloads.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "hash/chaining_map.h"
#include "hash/cuckoo_map.h"
#include "hash/dense_map.h"
#include "hash/linear_probing_map.h"
#include "hash/sparse_map.h"
#include "util/prime.h"
#include "util/rng.h"
#include "util/simd.h"

namespace memagg {
namespace {

using MapTypes =
    ::testing::Types<LinearProbingMap<uint64_t>, ChainingMap<uint64_t>,
                     SparseMap<uint64_t>, DenseMap<uint64_t>,
                     CuckooMap<uint64_t>>;

template <typename T>
class HashMapTest : public ::testing::Test {};

TYPED_TEST_SUITE(HashMapTest, MapTypes);

TYPED_TEST(HashMapTest, EmptyMap) {
  TypeParam map(16);
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find(1), nullptr);
  size_t visited = 0;
  map.ForEach([&visited](uint64_t, const uint64_t&) { ++visited; });
  EXPECT_EQ(visited, 0u);
}

TYPED_TEST(HashMapTest, InsertAndFind) {
  TypeParam map(16);
  map.GetOrInsert(5) = 50;
  map.GetOrInsert(7) = 70;
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.Find(5), nullptr);
  EXPECT_EQ(*map.Find(5), 50u);
  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_EQ(*map.Find(7), 70u);
  EXPECT_EQ(map.Find(6), nullptr);
}

TYPED_TEST(HashMapTest, GetOrInsertIsIdempotent) {
  TypeParam map(16);
  map.GetOrInsert(9) = 1;
  map.GetOrInsert(9) += 1;
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.Find(9), 2u);
}

TYPED_TEST(HashMapTest, ZeroKeySupported) {
  TypeParam map(16);
  map.GetOrInsert(0) = 123;
  ASSERT_NE(map.Find(0), nullptr);
  EXPECT_EQ(*map.Find(0), 123u);
}

TYPED_TEST(HashMapTest, GrowsFarBeyondExpectedSize) {
  // Deliberately undersized: exercises rehash/displacement paths.
  TypeParam map(4);
  constexpr uint64_t kCount = 50000;
  for (uint64_t k = 0; k < kCount; ++k) {
    map.GetOrInsert(k) = k * 3;
  }
  EXPECT_EQ(map.size(), kCount);
  for (uint64_t k = 0; k < kCount; ++k) {
    ASSERT_NE(map.Find(k), nullptr) << k;
    EXPECT_EQ(*map.Find(k), k * 3) << k;
  }
  EXPECT_EQ(map.Find(kCount), nullptr);
}

TYPED_TEST(HashMapTest, MatchesReferenceOnRandomWorkload) {
  TypeParam map(1024);
  std::unordered_map<uint64_t, uint64_t> reference;
  Rng rng(10);
  for (int i = 0; i < 200000; ++i) {
    const uint64_t key = rng.NextBounded(5000);
    ++map.GetOrInsert(key);
    ++reference[key];
  }
  EXPECT_EQ(map.size(), reference.size());
  size_t visited = 0;
  map.ForEach([&](uint64_t key, const uint64_t& value) {
    ++visited;
    auto it = reference.find(key);
    ASSERT_NE(it, reference.end()) << key;
    EXPECT_EQ(value, it->second) << key;
  });
  EXPECT_EQ(visited, reference.size());
}

TYPED_TEST(HashMapTest, AdversarialKeysSameLowBits) {
  // Keys sharing low bits before hashing; the mixer must spread them.
  TypeParam map(64);
  constexpr uint64_t kCount = 20000;
  for (uint64_t i = 0; i < kCount; ++i) {
    map.GetOrInsert(i << 20) = i;
  }
  EXPECT_EQ(map.size(), kCount);
  for (uint64_t i = 0; i < kCount; ++i) {
    ASSERT_NE(map.Find(i << 20), nullptr);
    EXPECT_EQ(*map.Find(i << 20), i);
  }
}

TYPED_TEST(HashMapTest, VectorValuesSupported) {
  // Holistic aggregation stores per-group buffers: values must support
  // non-trivial types.
  using ValueMap = typename std::conditional<
      std::is_same<TypeParam, LinearProbingMap<uint64_t>>::value,
      LinearProbingMap<std::vector<uint64_t>>,
      typename std::conditional<
          std::is_same<TypeParam, ChainingMap<uint64_t>>::value,
          ChainingMap<std::vector<uint64_t>>,
          typename std::conditional<
              std::is_same<TypeParam, SparseMap<uint64_t>>::value,
              SparseMap<std::vector<uint64_t>>,
              typename std::conditional<
                  std::is_same<TypeParam, DenseMap<uint64_t>>::value,
                  DenseMap<std::vector<uint64_t>>,
                  CuckooMap<std::vector<uint64_t>>>::type>::type>::type>::type;
  ValueMap map(8);
  Rng rng(11);
  std::map<uint64_t, std::vector<uint64_t>> reference;
  for (int i = 0; i < 30000; ++i) {
    const uint64_t key = rng.NextBounded(50);
    const uint64_t value = rng.Next();
    map.GetOrInsert(key).push_back(value);
    reference[key].push_back(value);
  }
  EXPECT_EQ(map.size(), reference.size());
  map.ForEach([&](uint64_t key, const std::vector<uint64_t>& values) {
    // Order within a group may differ across tables after rehash; compare
    // sorted.
    auto got = values;
    auto want = reference.at(key);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << key;
  });
}

TYPED_TEST(HashMapTest, MemoryBytesGrowsWithContent) {
  TypeParam map(16);
  const size_t before = map.MemoryBytes();
  for (uint64_t k = 0; k < 10000; ++k) map.GetOrInsert(k) = k;
  EXPECT_GT(map.MemoryBytes(), before);
}

// --- Table-specific behaviour ----------------------------------------------

TEST(LinearProbingTest, PowerOfTwoCapacity) {
  LinearProbingMap<uint64_t> map(1000);
  EXPECT_TRUE((map.capacity() & (map.capacity() - 1)) == 0);
  EXPECT_GE(map.capacity(), 1001u);
}

TEST(LinearProbingTest, PrimeSizingPolicy) {
  LinearProbingMap<uint64_t> map(1000, SizingPolicy::kPrime);
  EXPECT_TRUE(IsPrime(map.capacity()));
  for (uint64_t k = 0; k < 5000; ++k) map.GetOrInsert(k) = k;
  EXPECT_EQ(map.size(), 5000u);
  for (uint64_t k = 0; k < 5000; ++k) {
    ASSERT_NE(map.Find(k), nullptr);
    EXPECT_EQ(*map.Find(k), k);
  }
}

TEST(LinearProbingTest, ExactSizingPolicy) {
  LinearProbingMap<uint64_t> map(1000, SizingPolicy::kExact);
  for (uint64_t k = 0; k < 500; ++k) map.GetOrInsert(k) = k;
  EXPECT_EQ(map.size(), 500u);
  for (uint64_t k = 0; k < 500; ++k) {
    ASSERT_NE(map.Find(k), nullptr);
  }
}

TEST(DenseMapTest, CapacityStaysPowerOfTwo) {
  DenseMap<uint64_t> map(10);
  for (uint64_t k = 0; k < 10000; ++k) map.GetOrInsert(k) = k;
  EXPECT_TRUE((map.capacity() & (map.capacity() - 1)) == 0);
}

TEST(SparseMapTest, MemoryFootprintSmallerThanDense) {
  // The defining sparsehash property: at equal content, sparse tables carry
  // far less slack than dense tables.
  constexpr size_t kExpected = 1 << 16;
  SparseMap<uint64_t> sparse(kExpected);
  DenseMap<uint64_t> dense(kExpected);
  for (uint64_t k = 0; k < 1000; ++k) {
    sparse.GetOrInsert(k) = k;
    dense.GetOrInsert(k) = k;
  }
  EXPECT_LT(sparse.MemoryBytes(), dense.MemoryBytes() / 4);
}

TEST(CuckooMapTest, UpsertInsertsAndUpdates) {
  CuckooMap<uint64_t> map(64);
  map.Upsert(3, [](uint64_t& v) { v += 5; });
  map.Upsert(3, [](uint64_t& v) { v += 5; });
  ASSERT_NE(map.Find(3), nullptr);
  EXPECT_EQ(*map.Find(3), 10u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(CuckooMapTest, ContainsAndWithValue) {
  CuckooMap<uint64_t> map(64);
  map.GetOrInsert(11) = 42;
  EXPECT_TRUE(map.Contains(11));
  EXPECT_FALSE(map.Contains(12));
  uint64_t seen = 0;
  EXPECT_TRUE(map.WithValue(11, [&seen](uint64_t& v) { seen = v; }));
  EXPECT_EQ(seen, 42u);
  EXPECT_FALSE(map.WithValue(12, [](uint64_t&) {}));
}

TEST(ChainingMapTest, BucketCountIsPrime) {
  ChainingMap<uint64_t> map(1000);
  EXPECT_TRUE(IsPrime(map.bucket_count()));
}

// --- Sentinel-key regression tests (ISSUE 7 satellite) ----------------------
// The open-addressing tables reserve kEmptyKey to mark free slots. Inserting
// it used to be a debug-only DCHECK — in release builds the key silently
// aliased every empty slot (a lookup "finds" it anywhere, an insert corrupts
// occupancy). It now fails loudly in all build modes.

TEST(SentinelKeyDeathTest, DenseMapInsertRejectsEmptyKey) {
  DenseMap<uint64_t> map(16);
  EXPECT_DEATH(map.GetOrInsert(kEmptyKey), "kEmptyKey");
}

TEST(SentinelKeyDeathTest, DenseMapFindRejectsEmptyKey) {
  DenseMap<uint64_t> map(16);
  map.GetOrInsert(1) = 10;
  EXPECT_DEATH(map.Find(kEmptyKey), "kEmptyKey");
}

TEST(SentinelKeyDeathTest, LinearProbingInsertRejectsEmptyKey) {
  LinearProbingMap<uint64_t> map(16);
  EXPECT_DEATH(map.GetOrInsert(kEmptyKey), "kEmptyKey");
}

TEST(SentinelKeyDeathTest, LinearProbingFindRejectsEmptyKey) {
  LinearProbingMap<uint64_t> map(16);
  map.GetOrInsert(1) = 10;
  EXPECT_DEATH(map.Find(kEmptyKey), "kEmptyKey");
}

TEST(SentinelKeyDeathTest, CuckooUpsertRejectsEmptyKey) {
  CuckooMap<uint64_t> map(16);
  EXPECT_DEATH(map.Upsert(kEmptyKey, [](uint64_t& v) { v = 1; }),
               "kEmptyKey");
}

TYPED_TEST(HashMapTest, DeletedSentinelIsAnOrdinaryKey) {
  // None of the serial maps support erase, so kDeletedKey is just a large
  // key value — it must round-trip like any other and not collide with the
  // empty sentinel's handling.
  TypeParam map(16);
  map.GetOrInsert(kDeletedKey) = 42;
  map.GetOrInsert(kDeletedKey - 1) = 43;
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.Find(kDeletedKey), nullptr);
  EXPECT_EQ(*map.Find(kDeletedKey), 42u);
  ASSERT_NE(map.Find(kDeletedKey - 1), nullptr);
  EXPECT_EQ(*map.Find(kDeletedKey - 1), 43u);
}

// --- Probe-lane ablation: explicit SimdOps pins must agree -------------------
// The maps' Ops parameter exists so benchmarks can pin a lane; the pinned
// variants must be drop-in equivalent on real workloads (the kernel-level
// equivalence lives in simd_test.cc; this covers the map-level wiring:
// group loops, wrap-around, control-byte updates through rebuilds).

template <typename Map>
void FillAndCheck(Map& map) {
  Rng rng(Rng::kDefaultSeed + 7);
  std::unordered_map<uint64_t, uint64_t> reference;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.NextBounded(8192);
    map.GetOrInsert(key) += 1;
    reference[key] += 1;
  }
  ASSERT_EQ(map.size(), reference.size());
  for (const auto& [key, count] : reference) {
    const uint64_t* found = map.Find(key);
    ASSERT_NE(found, nullptr);
    ASSERT_EQ(*found, count);
  }
}

TEST(ProbeLaneTest, LinearProbingScalarLane) {
  LinearProbingMap<uint64_t, NullTracer, ArenaAllocator, simd::ScalarOps> map(
      4);
  FillAndCheck(map);
}

TEST(ProbeLaneTest, LinearProbingDispatchLanePrimeSizing) {
  // Prime capacities exercise the modular mirror tail and non-pow2 wrap.
  LinearProbingMap<uint64_t> map(3, SizingPolicy::kPrime);
  FillAndCheck(map);
  EXPECT_TRUE(IsPrime(map.capacity()));
}

TEST(ProbeLaneTest, LinearProbingScalarLaneExactSizing) {
  LinearProbingMap<uint64_t, NullTracer, ArenaAllocator, simd::ScalarOps> map(
      5, SizingPolicy::kExact);
  FillAndCheck(map);
}

TEST(ProbeLaneTest, DenseMapScalarLane) {
  DenseMap<uint64_t, NullTracer, simd::ScalarOps> map(4);
  FillAndCheck(map);
}

TEST(ProbeLaneTest, CuckooScalarLane) {
  CuckooMap<uint64_t, NullTracer, simd::ScalarOps> map(4);
  Rng rng(Rng::kDefaultSeed + 9);
  std::unordered_map<uint64_t, uint64_t> reference;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.NextBounded(8192);
    map.Upsert(key, [](uint64_t& v) { v += 1; });
    reference[key] += 1;
  }
  ASSERT_EQ(map.size(), reference.size());
  for (const auto& [key, count] : reference) {
    const uint64_t* found = map.Find(key);
    ASSERT_NE(found, nullptr);
    ASSERT_EQ(*found, count);
  }
}

TEST(ProbeLaneTest, ProbeStatsMatchScalarPlacement) {
  // Group probing must preserve the exact slot placement of the scalar
  // linear probe (the displacement histogram is observable via
  // ComputeProbeStats and asserted on by the stats layer).
  LinearProbingMap<uint64_t, NullTracer, ArenaAllocator, simd::ScalarOps>
      scalar(64);
  LinearProbingMap<uint64_t> dispatch(64);
  Rng rng(Rng::kDefaultSeed + 11);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t key = rng.NextBounded(4096);
    scalar.GetOrInsert(key) = key;
    dispatch.GetOrInsert(key) = key;
  }
  const auto s = scalar.ComputeProbeStats();
  const auto d = dispatch.ComputeProbeStats();
  EXPECT_EQ(s.entries, d.entries);
  EXPECT_EQ(s.max_probe, d.max_probe);
  EXPECT_EQ(s.total_probes, d.total_probes);
}

}  // namespace
}  // namespace memagg
