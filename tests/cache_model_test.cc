// Tests for the trace-driven cache/TLB simulator (src/sim/) and the traced
// operator instrumentation behind bench_cache_tlb --mode=sim.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/cache_model.h"
#include "sim/sim_tracer.h"
#include "sim/traced_engine.h"
#include "data/dataset.h"
#include "test_util.h"
#include "util/rng.h"

namespace memagg {
namespace {

TEST(SetAssociativeCacheTest, HitsAfterInsert) {
  SetAssociativeCache cache(4, 2);
  EXPECT_FALSE(cache.Access(1));  // Cold miss.
  EXPECT_TRUE(cache.Access(1));   // Now cached.
}

TEST(SetAssociativeCacheTest, LruEvictionWithinSet) {
  SetAssociativeCache cache(1, 2);  // One set, two ways.
  cache.Access(1);
  cache.Access(2);
  EXPECT_TRUE(cache.Access(1));   // 1 is MRU now, 2 is LRU.
  EXPECT_FALSE(cache.Access(3));  // Evicts 2.
  EXPECT_TRUE(cache.Access(1));
  EXPECT_FALSE(cache.Access(2));  // 2 was evicted.
}

TEST(SetAssociativeCacheTest, SetsAreIndependent) {
  SetAssociativeCache cache(2, 1);
  EXPECT_FALSE(cache.Access(0));  // Set 0.
  EXPECT_FALSE(cache.Access(1));  // Set 1.
  EXPECT_TRUE(cache.Access(0));   // Still resident: different sets.
  EXPECT_TRUE(cache.Access(1));
}

TEST(CacheModelTest, SequentialScanHasOneMissPerLine) {
  CacheModel model;
  std::vector<uint64_t> data(1 << 16);  // 512 KB: larger than L2.
  for (const uint64_t& v : data) model.Access(&v, sizeof(v));
  const CacheSimStats& stats = model.stats();
  // 8 accesses per 64-byte line -> 1/8 of accesses miss L1, none hit twice.
  EXPECT_EQ(stats.accesses, data.size());
  EXPECT_NEAR(static_cast<double>(stats.l1_misses),
              static_cast<double>(data.size()) / 8, data.size() / 64.0);
}

TEST(CacheModelTest, RepeatedSmallWorkingSetStaysCached) {
  CacheModel model;
  std::vector<uint64_t> data(1024);  // 8 KB: fits L1.
  for (int pass = 0; pass < 10; ++pass) {
    for (const uint64_t& v : data) model.Access(&v, sizeof(v));
  }
  // Only the first (cold) pass misses — at every level, since cold misses
  // propagate to the LLC. Nine further passes add nothing.
  EXPECT_LE(model.stats().l1_misses, data.size() / 8 + 16);
  EXPECT_LE(model.stats().llc_misses, data.size() / 8 + 16);
}

TEST(CacheModelTest, HugeRandomWorkingSetMissesLlc) {
  CacheModel model;
  // 64 MB working set, far beyond the 6 MB L3.
  const size_t n = (64u << 20) / sizeof(uint64_t);
  std::vector<uint64_t> data(n);
  Rng rng(71);
  uint64_t llc_baseline = model.stats().llc_misses;
  for (int i = 0; i < 100000; ++i) {
    model.Access(&data[rng.NextBounded(n)], sizeof(uint64_t));
  }
  // Random accesses over 64 MB should miss the LLC most of the time.
  EXPECT_GT(model.stats().llc_misses - llc_baseline, 80000u);
}

TEST(CacheModelTest, TlbMissesOnWidePageSpread) {
  CacheModel model;
  // Touch 4096 distinct pages repeatedly in a pattern wider than both TLBs
  // (64 + 1536 entries).
  const size_t pages = 4096;
  std::vector<char> data(pages * 4096);
  Rng rng(72);
  for (int i = 0; i < 100000; ++i) {
    model.Access(&data[rng.NextBounded(pages) * 4096], 1);
  }
  EXPECT_GT(model.stats().tlb_misses, 30000u);
}

TEST(CacheModelTest, NoTlbMissesWithinOnePage) {
  CacheModel model;
  std::vector<char> data(4096);
  for (int i = 0; i < 10000; ++i) model.Access(&data[i % 4096], 1);
  EXPECT_LE(model.stats().tlb_misses, 2u);  // At most the cold walk(s).
}

TEST(CacheModelTest, StraddlingAccessTouchesTwoLines) {
  CacheModel model;
  alignas(64) char data[128] = {};
  model.Access(&data[60], 8);  // Crosses the line boundary at 64.
  EXPECT_EQ(model.stats().accesses, 2u);
}

TEST(CacheModelTest, ResetStatsClearsCounters) {
  CacheModel model;
  int x = 0;
  model.Access(&x, sizeof(x));
  EXPECT_GT(model.stats().accesses, 0u);
  model.ResetStats();
  EXPECT_EQ(model.stats().accesses, 0u);
}

// --- Traced operators --------------------------------------------------------

TEST(TracedEngineTest, TracedOperatorsProduceCorrectResults) {
  DatasetSpec spec{Distribution::kRseqShuffled, 20000, 128, 73};
  const auto keys = GenerateKeys(spec);
  const auto values = GenerateValues(keys.size(), 1000, 74);
  const auto expected_count =
      ReferenceVectorAggregate(keys, {}, AggregateFunction::kCount);
  const auto expected_median =
      ReferenceVectorAggregate(keys, values, AggregateFunction::kMedian);
  CacheModel model;
  ScopedCacheSim bind(&model);
  for (const std::string& label :
       {std::string("Hash_LP"), std::string("Hash_SC"),
        std::string("Hash_Sparse"), std::string("Hash_Dense"),
        std::string("Hash_LC"), std::string("ART"), std::string("Judy"),
        std::string("Btree"), std::string("Ttree"), std::string("Introsort"),
        std::string("Spreadsort")}) {
    {
      auto aggregator = MakeTracedVectorAggregator(
          label, AggregateFunction::kCount, keys.size());
      aggregator->Build(keys.data(), nullptr, keys.size());
      auto result = aggregator->Iterate();
      SortByKey(result);
      EXPECT_EQ(result, expected_count) << label;
    }
    {
      auto aggregator = MakeTracedVectorAggregator(
          label, AggregateFunction::kMedian, keys.size());
      aggregator->Build(keys.data(), values.data(), keys.size());
      auto result = aggregator->Iterate();
      SortByKey(result);
      EXPECT_EQ(result, expected_median) << label;
    }
  }
  // The traced run must actually have produced traffic.
  EXPECT_GT(model.stats().accesses, keys.size());
}

TEST(TracedEngineTest, UnboundTracerIsSafe) {
  // With no model bound, traced operators still run (hooks are no-ops).
  auto aggregator =
      MakeTracedVectorAggregator("Hash_LP", AggregateFunction::kCount, 64);
  const std::vector<uint64_t> keys = {1, 2, 1};
  aggregator->Build(keys.data(), nullptr, keys.size());
  EXPECT_EQ(aggregator->Iterate().size(), 2u);
}

TEST(TracedEngineTest, ChainingMissesMoreThanLinearProbingAtHighCardinality) {
  // The paper's locality argument (Section 5.2-5.3): pointer-chasing
  // separate chaining touches more distinct lines than the contiguous
  // linear-probing table. The model must reproduce that ordering.
  DatasetSpec spec{Distribution::kRseqShuffled, 200000, 100000, 75};
  const auto keys = GenerateKeys(spec);
  auto measure = [&](const std::string& label) {
    CacheModel model;
    ScopedCacheSim bind(&model);
    auto aggregator = MakeTracedVectorAggregator(
        label, AggregateFunction::kCount, keys.size());
    aggregator->Build(keys.data(), nullptr, keys.size());
    aggregator->Iterate();
    return model.stats();
  };
  const CacheSimStats lp = measure("Hash_LP");
  const CacheSimStats sc = measure("Hash_SC");
  EXPECT_GT(sc.l1_misses, lp.l1_misses);
}

TEST(TracedEngineTest, LowCardinalityMissesFewerThanHighCardinality) {
  // More groups -> bigger working set -> more misses (Figure 6's low vs
  // high cardinality bars).
  auto measure = [](uint64_t cardinality) {
    DatasetSpec spec{Distribution::kRseqShuffled, 200000, cardinality, 76};
    const auto keys = GenerateKeys(spec);
    CacheModel model;
    ScopedCacheSim bind(&model);
    auto aggregator = MakeTracedVectorAggregator(
        "Hash_LP", AggregateFunction::kCount, keys.size());
    aggregator->Build(keys.data(), nullptr, keys.size());
    aggregator->Iterate();
    return model.stats();
  };
  const CacheSimStats low = measure(1000);
  const CacheSimStats high = measure(100000);
  EXPECT_GT(high.l1_misses, low.l1_misses);
}

}  // namespace
}  // namespace memagg
