// Tests for composite group-by key packing.

#include "util/composite_key.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/groupby.h"
#include "util/rng.h"

namespace memagg {
namespace {

TEST(CompositeKeyTest, Pack2RoundTrip) {
  Rng rng(301);
  for (int i = 0; i < 1000; ++i) {
    const uint32_t major = static_cast<uint32_t>(rng.Next());
    const uint32_t minor = static_cast<uint32_t>(rng.Next());
    uint32_t major_out = 0;
    uint32_t minor_out = 0;
    UnpackKey2(PackKey2(major, minor), &major_out, &minor_out);
    EXPECT_EQ(major_out, major);
    EXPECT_EQ(minor_out, minor);
  }
}

TEST(CompositeKeyTest, Pack2IsOrderPreserving) {
  // Lexicographic (major, minor) order must equal numeric key order.
  const std::vector<std::pair<uint32_t, uint32_t>> pairs = {
      {0, 0}, {0, 1}, {0, ~0u}, {1, 0}, {1, 5}, {2, 0}, {~0u, ~0u}};
  for (size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_LT(PackKey2(pairs[i - 1].first, pairs[i - 1].second),
              PackKey2(pairs[i].first, pairs[i].second))
        << i;
  }
}

TEST(CompositeKeyTest, Pack4RoundTrip) {
  uint16_t a, b, c, d;
  UnpackKey4(PackKey4(1, 2, 3, 4), &a, &b, &c, &d);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(c, 3);
  EXPECT_EQ(d, 4);
  UnpackKey4(PackKey4(0xffff, 0, 0xffff, 0), &a, &b, &c, &d);
  EXPECT_EQ(a, 0xffff);
  EXPECT_EQ(b, 0);
  EXPECT_EQ(c, 0xffff);
  EXPECT_EQ(d, 0);
}

TEST(CompositeKeyTest, PackKeyNVariableWidths) {
  const uint64_t values[3] = {5, 300, 2};
  const int widths[3] = {4, 10, 2};
  const uint64_t key = PackKeyN(values, widths);
  EXPECT_EQ(key, (5ULL << 12) | (300ULL << 2) | 2ULL);
}

TEST(CompositeKeyTest, MultiColumnGroupByEndToEnd) {
  // GROUP BY (region, product): pack both columns, aggregate, unpack.
  Rng rng(302);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 10000; ++i) {
    const uint32_t region = static_cast<uint32_t>(rng.NextBounded(4));
    const uint32_t product = static_cast<uint32_t>(rng.NextBounded(50));
    keys.push_back(PackKey2(region, product));
  }
  GroupByOptions options;
  options.algorithm = "Btree";  // Sorted output: groups in (region, product)
                                // order thanks to order preservation.
  const auto result =
      GroupByAggregate(keys, {}, AggregateFunction::kCount, options);
  EXPECT_LE(result.size(), 4u * 50u);
  double total = 0;
  uint32_t previous_region = 0;
  for (const GroupResult& row : result) {
    uint32_t region, product;
    UnpackKey2(row.key, &region, &product);
    EXPECT_LT(region, 4u);
    EXPECT_LT(product, 50u);
    EXPECT_GE(region, previous_region);  // Major column is sorted.
    previous_region = region;
    total += row.value;
  }
  EXPECT_DOUBLE_EQ(total, 10000.0);
  // Range condition on the leading column: region == 2 exactly covers
  // [PackKey2(2, 0), PackKey2(2, ~0u)].
  GroupByOptions range_options = options;
  range_options.has_range_condition = true;
  range_options.range_lo = PackKey2(2, 0);
  range_options.range_hi = PackKey2(2, ~0u);
  const auto region2 =
      GroupByAggregate(keys, {}, AggregateFunction::kCount, range_options);
  for (const GroupResult& row : region2) {
    uint32_t region, product;
    UnpackKey2(row.key, &region, &product);
    EXPECT_EQ(region, 2u);
  }
}

}  // namespace
}  // namespace memagg
