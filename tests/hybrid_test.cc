// Tests for the adaptive hybrid sort/hash aggregator (the paper's Section
// 5.5 future-work extension): correctness in pure-hash mode, across the
// switch boundary, and deep into sort mode, for distributive, algebraic and
// holistic aggregates.

#include "core/hybrid_aggregator.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "data/dataset.h"
#include "test_util.h"

namespace memagg {
namespace {

TEST(HybridTest, LowCardinalityStaysInHashMode) {
  HybridVectorAggregator<CountAggregate> aggregator(0, /*max_hash_groups=*/100);
  DatasetSpec spec{Distribution::kRseqShuffled, 50000, 50, 101};
  const auto keys = GenerateKeys(spec);
  aggregator.Build(keys.data(), nullptr, keys.size());
  EXPECT_FALSE(aggregator.in_sort_mode());
  auto result = aggregator.Iterate();
  SortByKey(result);
  EXPECT_EQ(result,
            ReferenceVectorAggregate(keys, {}, AggregateFunction::kCount));
}

TEST(HybridTest, HighCardinalitySwitchesToSortMode) {
  HybridVectorAggregator<CountAggregate> aggregator(0, /*max_hash_groups=*/100);
  DatasetSpec spec{Distribution::kRseqShuffled, 50000, 5000, 102};
  const auto keys = GenerateKeys(spec);
  aggregator.Build(keys.data(), nullptr, keys.size());
  EXPECT_TRUE(aggregator.in_sort_mode());
  auto result = aggregator.Iterate();
  SortByKey(result);
  EXPECT_EQ(result,
            ReferenceVectorAggregate(keys, {}, AggregateFunction::kCount));
}

TEST(HybridTest, SwitchMergesPartialsWithSortedRuns) {
  // Keys seen both before and after the switch must merge into one group.
  HybridVectorAggregator<CountAggregate> aggregator(0, /*max_hash_groups=*/10);
  std::vector<uint64_t> keys;
  // Phase 1: 11 distinct keys trigger the switch...
  for (uint64_t k = 0; k <= 10; ++k) keys.push_back(k);
  // ...phase 2: revisit old keys and add new ones.
  for (uint64_t k = 0; k <= 20; ++k) keys.push_back(k);
  aggregator.Build(keys.data(), nullptr, keys.size());
  EXPECT_TRUE(aggregator.in_sort_mode());
  auto result = aggregator.Iterate();
  SortByKey(result);
  ASSERT_EQ(result.size(), 21u);
  for (const GroupResult& row : result) {
    EXPECT_DOUBLE_EQ(row.value, row.key <= 10 ? 2.0 : 1.0) << row.key;
  }
}

TEST(HybridTest, HolisticSpillsRawValues) {
  HybridVectorAggregator<MedianAggregate> aggregator(0,
                                                     /*max_hash_groups=*/64);
  DatasetSpec spec{Distribution::kZipf, 30000, 1000, 103};
  const auto keys = GenerateKeys(spec);
  const auto values = GenerateValues(keys.size(), 500, 104);
  aggregator.Build(keys.data(), values.data(), keys.size());
  EXPECT_TRUE(aggregator.in_sort_mode());
  auto result = aggregator.Iterate();
  SortByKey(result);
  EXPECT_EQ(result, ReferenceVectorAggregate(keys, values,
                                             AggregateFunction::kMedian));
}

TEST(HybridTest, AverageAcrossSwitch) {
  HybridVectorAggregator<AverageAggregate> aggregator(0,
                                                      /*max_hash_groups=*/32);
  DatasetSpec spec{Distribution::kMovingCluster, 20000, 512, 105};
  const auto keys = GenerateKeys(spec);
  const auto values = GenerateValues(keys.size(), 1000, 106);
  aggregator.Build(keys.data(), values.data(), keys.size());
  auto result = aggregator.Iterate();
  SortByKey(result);
  const auto expected =
      ReferenceVectorAggregate(keys, values, AggregateFunction::kAverage);
  ASSERT_EQ(result.size(), expected.size());
  for (size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(result[i].key, expected[i].key);
    EXPECT_DOUBLE_EQ(result[i].value, expected[i].value);
  }
}

TEST(HybridTest, ExactlyAtThresholdDoesNotSwitch) {
  HybridVectorAggregator<CountAggregate> aggregator(0, /*max_hash_groups=*/5);
  const std::vector<uint64_t> keys = {1, 2, 3, 4, 5, 1, 2, 3};
  aggregator.Build(keys.data(), nullptr, keys.size());
  EXPECT_FALSE(aggregator.in_sort_mode());  // 5 groups == threshold.
  EXPECT_EQ(aggregator.Iterate().size(), 5u);
}

TEST(HybridTest, EngineLabelConstructsHybrid) {
  DatasetSpec spec{Distribution::kHhitShuffled, 40000, 2000, 107};
  const auto keys = GenerateKeys(spec);
  for (AggregateFunction fn :
       {AggregateFunction::kCount, AggregateFunction::kAverage,
        AggregateFunction::kMedian, AggregateFunction::kMode}) {
    const auto values = GenerateValues(keys.size(), 300, 108);
    auto aggregator = MakeVectorAggregator("Hybrid", fn, keys.size());
    aggregator->Build(keys.data(), values.data(), keys.size());
    auto result = aggregator->Iterate();
    SortByKey(result);
    EXPECT_EQ(result, ReferenceVectorAggregate(keys, values, fn))
        << AggregateFunctionName(fn);
  }
}

TEST(HybridTest, MatchesHashAndSortOperatorsOnEveryDistribution) {
  for (Distribution d : kAllDistributions) {
    for (uint64_t cardinality : {64ULL, 8192ULL}) {
      DatasetSpec spec{d, 60000, cardinality, 109};
      const auto keys = GenerateKeys(spec);
      auto hybrid =
          MakeVectorAggregator("Hybrid", AggregateFunction::kCount,
                               keys.size());
      auto reference_op =
          MakeVectorAggregator("Hash_LP", AggregateFunction::kCount,
                               keys.size());
      hybrid->Build(keys.data(), nullptr, keys.size());
      reference_op->Build(keys.data(), nullptr, keys.size());
      auto got = hybrid->Iterate();
      auto want = reference_op->Iterate();
      SortByKey(got);
      SortByKey(want);
      EXPECT_EQ(got, want) << DistributionName(d) << " c=" << cardinality;
    }
  }
}

TEST(HybridTest, NumGroupsIsExactAndConstInSortMode) {
  // Regression: NumGroups() used to const_cast and re-sort records_ on every
  // call, mutating the operator under a const method (a latent race with any
  // concurrent const access) and re-paying the sort each time. It must now
  // report the exact distinct-key count — spilled partials plus buffered
  // records, with keys spanning both deduplicated — without touching state.
  HybridVectorAggregator<CountAggregate> aggregator(0, /*max_hash_groups=*/10);
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k <= 10; ++k) keys.push_back(k);  // Triggers the spill.
  for (uint64_t k = 0; k <= 20; ++k) keys.push_back(k);  // Old + new keys.
  aggregator.Build(keys.data(), nullptr, keys.size());
  ASSERT_TRUE(aggregator.in_sort_mode());

  // Before Iterate(): exact count, stable across repeated calls.
  EXPECT_EQ(aggregator.NumGroups(), 21u);
  EXPECT_EQ(aggregator.NumGroups(), 21u);

  auto result = aggregator.Iterate();
  EXPECT_EQ(result.size(), 21u);

  // After Iterate(): still exact, and the result still matches the oracle.
  EXPECT_EQ(aggregator.NumGroups(), 21u);
  SortByKey(result);
  EXPECT_EQ(result,
            ReferenceVectorAggregate(keys, {}, AggregateFunction::kCount));
}

TEST(HybridTest, IncrementalBuildsSpanTheSwitch) {
  HybridVectorAggregator<CountAggregate> aggregator(0, /*max_hash_groups=*/50);
  std::vector<uint64_t> part1;
  std::vector<uint64_t> part2;
  for (uint64_t k = 0; k < 40; ++k) part1.push_back(k);      // Hash mode.
  for (uint64_t k = 0; k < 400; ++k) part2.push_back(k % 200);  // Switches.
  aggregator.Build(part1.data(), nullptr, part1.size());
  EXPECT_FALSE(aggregator.in_sort_mode());
  aggregator.Build(part2.data(), nullptr, part2.size());
  EXPECT_TRUE(aggregator.in_sort_mode());
  auto result = aggregator.Iterate();
  SortByKey(result);
  std::vector<uint64_t> all = part1;
  all.insert(all.end(), part2.begin(), part2.end());
  EXPECT_EQ(result,
            ReferenceVectorAggregate(all, {}, AggregateFunction::kCount));
}

}  // namespace
}  // namespace memagg
