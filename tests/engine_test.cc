// Tests for the engine registry (label -> operator mapping).

#include "core/engine.h"

#include <gtest/gtest.h>

#include "core/query.h"

namespace memagg {
namespace {

TEST(EngineTest, SerialLabelsMatchTable3) {
  EXPECT_EQ(SerialLabels(),
            (std::vector<std::string>{"ART", "Judy", "Btree", "Hash_SC",
                                      "Hash_LP", "Hash_Sparse", "Hash_Dense",
                                      "Hash_LC", "Introsort", "Spreadsort"}));
}

TEST(EngineTest, ConcurrentLabelsMatchTable8) {
  EXPECT_EQ(ConcurrentLabels(),
            (std::vector<std::string>{"Hash_TBBSC", "Hash_LC", "Sort_BI",
                                      "Sort_QSLB"}));
}

TEST(EngineTest, CategoryOfLabel) {
  EXPECT_EQ(CategoryOfLabel("Hash_LP"), AlgorithmCategory::kHash);
  EXPECT_EQ(CategoryOfLabel("Hash_TBBSC"), AlgorithmCategory::kHash);
  EXPECT_EQ(CategoryOfLabel("ART"), AlgorithmCategory::kTree);
  EXPECT_EQ(CategoryOfLabel("Judy"), AlgorithmCategory::kTree);
  EXPECT_EQ(CategoryOfLabel("Btree"), AlgorithmCategory::kTree);
  EXPECT_EQ(CategoryOfLabel("Ttree"), AlgorithmCategory::kTree);
  EXPECT_EQ(CategoryOfLabel("Introsort"), AlgorithmCategory::kSort);
  EXPECT_EQ(CategoryOfLabel("Spreadsort"), AlgorithmCategory::kSort);
  EXPECT_EQ(CategoryOfLabel("Sort_BI"), AlgorithmCategory::kSort);
}

TEST(EngineTest, EveryLabelConstructsEveryFunction) {
  for (const std::string& label : SerialLabels()) {
    for (AggregateFunction fn :
         {AggregateFunction::kCount, AggregateFunction::kSum,
          AggregateFunction::kMin, AggregateFunction::kMax,
          AggregateFunction::kAverage, AggregateFunction::kMedian,
          AggregateFunction::kMode}) {
      EXPECT_NE(MakeVectorAggregator(label, fn, 64), nullptr)
          << label << " " << AggregateFunctionName(fn);
    }
  }
}

TEST(EngineTest, ExtraSortLabelsConstruct) {
  for (const std::string& label :
       {std::string("Quicksort"), std::string("Sort_MSBRadix"),
        std::string("Sort_LSBRadix"), std::string("Sort_SS"),
        std::string("Sort_TBB"), std::string("Ttree")}) {
    EXPECT_NE(MakeVectorAggregator(label, AggregateFunction::kCount, 64),
              nullptr)
        << label;
  }
}

TEST(EngineTest, QueryDescriptorsMatchTable1) {
  EXPECT_EQ(MakeQ1().category(), FunctionCategory::kDistributive);
  EXPECT_EQ(MakeQ1().output, OutputFormat::kVector);
  EXPECT_EQ(MakeQ2().category(), FunctionCategory::kAlgebraic);
  EXPECT_EQ(MakeQ3().category(), FunctionCategory::kHolistic);
  EXPECT_EQ(MakeQ3().output, OutputFormat::kVector);
  EXPECT_EQ(MakeQ4().output, OutputFormat::kScalar);
  EXPECT_EQ(MakeQ5().output, OutputFormat::kScalar);
  EXPECT_EQ(MakeQ6().output, OutputFormat::kScalar);
  EXPECT_EQ(MakeQ6().category(), FunctionCategory::kHolistic);
  EXPECT_TRUE(MakeQ7().has_range_condition);
  EXPECT_EQ(MakeQ7().range_lo, 500u);
  EXPECT_EQ(MakeQ7().range_hi, 1000u);
}

}  // namespace
}  // namespace memagg
