// Tests for the KeyCodec layer (data/key_codec.h): planning, packed and
// dictionary encoding, order preservation, range bridging, and a fuzz
// round-trip (encode -> group -> decode vs a std::map oracle) over random
// multi-column schemas.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/table_exec.h"
#include "data/key_codec.h"
#include "data/string_dict.h"
#include "data/table.h"
#include "util/rng.h"

namespace memagg {
namespace {

Table TwoColumnTable() {
  Table table;
  StringDict dict;
  const uint32_t a = dict.Intern("A");
  const uint32_t n = dict.Intern("N");
  const uint32_t r = dict.Intern("R");
  table.AddColumn("flag", Column::String(std::move(dict), {a, n, r, a, n}));
  table.AddColumn("bucket", Column::U64({10, 11, 12, 10, 12}));
  table.AddColumn("value", Column::U64({1, 2, 3, 4, 5}));
  return table;
}

TEST(PlanKeyFieldsTest, BiasAndWidthFromColumnRanges) {
  const Table table = TwoColumnTable();
  const auto [plans, total_bits] = PlanKeyFields(table, {"flag", "bucket"});
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_EQ(plans[0].type, ColumnType::kString);
  EXPECT_EQ(plans[0].bits, 2);  // 3 distinct strings -> bit_width(2).
  EXPECT_EQ(plans[1].type, ColumnType::kU64);
  EXPECT_EQ(plans[1].bias, 10u);
  EXPECT_EQ(plans[1].bits, 2);  // Range 0..2.
  EXPECT_EQ(total_bits, 4);
}

TEST(PackedKeyCodecTest, RoundTripsAndPreservesOrder) {
  const Table table = TwoColumnTable();
  const auto codec = PackedKeyCodec::TryBuild(table, {"flag", "bucket"});
  ASSERT_TRUE(codec.has_value());
  EXPECT_EQ(codec->num_fields(), 2u);
  EXPECT_EQ(codec->width_bits(), 4);
  EXPECT_TRUE(codec->order_preserving());

  const std::vector<EncodedKey> keys = codec->EncodeAll();
  ASSERT_EQ(keys.size(), table.num_rows());
  // Rows 0 and 3 share ("A", 10): identical keys; all other pairs differ.
  EXPECT_EQ(keys[0], keys[3]);
  EXPECT_NE(keys[0], keys[1]);

  for (size_t row = 0; row < table.num_rows(); ++row) {
    const DecodedKey decoded = codec->Decode(keys[row]);
    ASSERT_EQ(decoded.size(), 2u);
    EXPECT_EQ(std::string(decoded[0].text),
              table.ColumnNamed("flag").dict().String(
                  table.ColumnNamed("flag").codes()[row]));
    EXPECT_EQ(decoded[1].u64, table.ColumnNamed("bucket").u64()[row]);
  }

  // Order preservation: encoded order == lexicographic (flag, bucket) order.
  // Row 1 ("N", 11) sorts after row 0 ("A", 10) and before row 2 ("R", 12).
  EXPECT_LT(keys[0], keys[1]);
  EXPECT_LT(keys[1], keys[2]);
}

TEST(PackedKeyCodecTest, SignedColumnsRoundTripAcrossZero) {
  Table table;
  table.AddColumn("delta", Column::I64({-5, -1, 0, 3, 7}));
  const auto codec = PackedKeyCodec::TryBuild(table, {"delta"});
  ASSERT_TRUE(codec.has_value());
  const std::vector<EncodedKey> keys = codec->EncodeAll();
  for (size_t row = 0; row < table.num_rows(); ++row) {
    EXPECT_EQ(codec->Decode(keys[row])[0].i64,
              table.ColumnNamed("delta").i64()[row]);
  }
  // Numeric order survives the sign boundary.
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(PackedKeyCodecTest, UnsortedDictDefeatsOrderPreservation) {
  Table table;
  StringDict dict;
  const uint32_t z = dict.Intern("zebra");
  const uint32_t a = dict.Intern("ant");
  table.AddColumn("animal", Column::String(std::move(dict), {z, a}));
  const auto codec = PackedKeyCodec::TryBuild(table, {"animal"});
  ASSERT_TRUE(codec.has_value());
  EXPECT_FALSE(codec->order_preserving());
}

TEST(PackedKeyCodecTest, WideSchemaFallsThrough) {
  // Two full-width columns cannot pack into 63 bits.
  Table table;
  table.AddColumn("hi", Column::U64({0, ~0ULL}));
  table.AddColumn("lo", Column::U64({0, ~0ULL}));
  EXPECT_FALSE(PackedKeyCodec::TryBuild(table, {"hi", "lo"}).has_value());
  // Even one full-domain column misses: 64 bits would collide with the
  // open-addressing sentinel keys.
  EXPECT_FALSE(PackedKeyCodec::TryBuild(table, {"hi"}).has_value());
}

TEST(PackedKeyCodecTest, EveryLegalWidthRoundTripsItsEndpoints) {
  // Exhaustive sweep of the packed budget: a single field of every width
  // 1..63 must build, report exactly that width, and round-trip both domain
  // endpoints with order preserved.
  for (int w = 1; w <= 63; ++w) {
    const uint64_t hi = (1ULL << w) - 1;
    Table table;
    table.AddColumn("k", Column::U64({0, hi}));
    const auto codec = PackedKeyCodec::TryBuild(table, {"k"});
    ASSERT_TRUE(codec.has_value()) << "width " << w;
    EXPECT_EQ(codec->width_bits(), w) << "width " << w;
    const std::vector<EncodedKey> keys = codec->EncodeAll();
    EXPECT_LT(keys[0], keys[1]) << "width " << w;
    EXPECT_EQ(codec->Decode(keys[0])[0].u64, 0u) << "width " << w;
    EXPECT_EQ(codec->Decode(keys[1])[0].u64, hi) << "width " << w;
  }
}

TEST(PackedKeyCodecTest, SixtyFourBitFieldRejectsToDict) {
  // A field whose range needs 64 bits would collide with the
  // open-addressing sentinels; exactly at the boundary the packed codec
  // declines and the dictionary codec takes over.
  Table table;
  table.AddColumn("k", Column::U64({0, 1ULL << 63}));
  EXPECT_FALSE(PackedKeyCodec::TryBuild(table, {"k"}).has_value());
  const DictKeyCodec codec = DictKeyCodec::Build(table, {"k"});
  EXPECT_EQ(codec.num_distinct(), 2u);
  EXPECT_EQ(codec.Decode(codec.encoded()[1])[0].u64, 1ULL << 63);
}

TEST(PackedKeyCodecTest, SixtyFiveBitCompositeRejectsToDict) {
  // 33 + 32 bits: each field alone packs, the composite does not.
  Table table;
  table.AddColumn("a", Column::U64({0, (1ULL << 33) - 1}));
  table.AddColumn("b", Column::U64({0, (1ULL << 32) - 1}));
  EXPECT_FALSE(PackedKeyCodec::TryBuild(table, {"a", "b"}).has_value());
  const DictKeyCodec codec = DictKeyCodec::Build(table, {"a", "b"});
  EXPECT_EQ(codec.num_distinct(), 2u);
  const DecodedKey wide = codec.Decode(codec.encoded()[1]);
  EXPECT_EQ(wide[0].u64, (1ULL << 33) - 1);
  EXPECT_EQ(wide[1].u64, (1ULL << 32) - 1);
}

TEST(PackedKeyCodecTest, SignedExtremesUseFullDomain) {
  // The order-preserving i64 mapping sends INT64_MIN to 0 and INT64_MAX to
  // ~0ULL, so the full signed domain needs all 64 bits: packing declines
  // and the dictionary codec round-trips the extremes.
  Table table;
  table.AddColumn("d", Column::I64({INT64_MIN, -1, 0, INT64_MAX}));
  EXPECT_FALSE(PackedKeyCodec::TryBuild(table, {"d"}).has_value());
  const DictKeyCodec codec = DictKeyCodec::Build(table, {"d"});
  EXPECT_EQ(codec.num_distinct(), 4u);
  EXPECT_EQ(codec.Decode(codec.encoded()[0])[0].i64, INT64_MIN);
  EXPECT_EQ(codec.Decode(codec.encoded()[3])[0].i64, INT64_MAX);
}

TEST(PackedKeyCodecTest, SignedSubrangesAtExtremesPackNarrow) {
  // Near-extreme but narrow signed ranges still pack: the bias soaks up
  // the offset on both sides of the domain.
  Table table;
  table.AddColumn("lo", Column::I64({INT64_MIN, INT64_MIN + 6}));
  table.AddColumn("hi", Column::I64({INT64_MAX - 9, INT64_MAX}));
  const auto codec = PackedKeyCodec::TryBuild(table, {"lo", "hi"});
  ASSERT_TRUE(codec.has_value());
  EXPECT_TRUE(codec->order_preserving());
  const std::vector<EncodedKey> keys = codec->EncodeAll();
  EXPECT_LT(keys[0], keys[1]);
  EXPECT_EQ(codec->Decode(keys[0])[0].i64, INT64_MIN);
  EXPECT_EQ(codec->Decode(keys[1])[1].i64, INT64_MAX);
}

TEST(PackedKeyCodecTest, LeadingFieldRangeCoversContiguousKeys) {
  const Table table = TwoColumnTable();
  const auto codec = PackedKeyCodec::TryBuild(table, {"flag", "bucket"});
  ASSERT_TRUE(codec.has_value());
  const std::vector<EncodedKey> keys = codec->EncodeAll();

  // ["A", "N"] selects rows with flag A or N (0, 1, 3, 4), not row 2 (R).
  const auto range = codec->LeadingFieldRange(
      {ColumnType::kString, 0, 0, "A"}, {ColumnType::kString, 0, 0, "N"});
  ASSERT_TRUE(range.has_value());
  for (const size_t row : {0u, 1u, 3u, 4u}) {
    EXPECT_GE(keys[row], range->first) << row;
    EXPECT_LE(keys[row], range->second) << row;
  }
  EXPECT_GT(keys[2], range->second);

  // Bounds need not be interned strings.
  const auto loose = codec->LeadingFieldRange(
      {ColumnType::kString, 0, 0, "0"}, {ColumnType::kString, 0, 0, "B"});
  ASSERT_TRUE(loose.has_value());
  EXPECT_EQ(loose->first, range->first);

  // An empty selection returns nullopt.
  EXPECT_FALSE(codec
                   ->LeadingFieldRange({ColumnType::kString, 0, 0, "X"},
                                       {ColumnType::kString, 0, 0, "Z"})
                   .has_value());
}

TEST(PackedKeyCodecTest, LeadingFieldRangeClampsIntegers) {
  Table table;
  table.AddColumn("k", Column::U64({100, 150, 200}));
  const auto codec = PackedKeyCodec::TryBuild(table, {"k"});
  ASSERT_TRUE(codec.has_value());
  // Bounds wider than the observed domain clamp to it.
  const auto range = codec->LeadingFieldRange({ColumnType::kU64, 0, 0, {}},
                                              {ColumnType::kU64, 500, 0, {}});
  ASSERT_TRUE(range.has_value());
  const std::vector<EncodedKey> keys = codec->EncodeAll();
  for (const EncodedKey key : keys) {
    EXPECT_GE(key, range->first);
    EXPECT_LE(key, range->second);
  }
  // A range entirely below the domain selects nothing.
  EXPECT_FALSE(codec
                   ->LeadingFieldRange({ColumnType::kU64, 0, 0, {}},
                                       {ColumnType::kU64, 99, 0, {}})
                   .has_value());
}

TEST(DictKeyCodecTest, WideSchemaRoundTrips) {
  Table table;
  table.AddColumn("hi", Column::U64({0, ~0ULL, 5, 0}));
  table.AddColumn("lo", Column::U64({1, 2, 3, 1}));
  const DictKeyCodec codec = DictKeyCodec::Build(table, {"hi", "lo"});
  EXPECT_FALSE(codec.order_preserving());
  EXPECT_EQ(codec.num_distinct(), 3u);  // Rows 0 and 3 collapse.
  const std::vector<EncodedKey>& keys = codec.encoded();
  ASSERT_EQ(keys.size(), 4u);
  EXPECT_EQ(keys[0], keys[3]);
  for (size_t row = 0; row < table.num_rows(); ++row) {
    const DecodedKey decoded = codec.Decode(keys[row]);
    EXPECT_EQ(decoded[0].u64, table.ColumnNamed("hi").u64()[row]);
    EXPECT_EQ(decoded[1].u64, table.ColumnNamed("lo").u64()[row]);
  }
  // Dense code space: width is bits of the code count, not the composite.
  EXPECT_LE(codec.width_bits(), 8);
  EXPECT_GT(codec.composite_bits(), kEncodedKeyBits);
}

TEST(DictKeyCodecTest, RowSubsetEncodesOnlySelectedRows) {
  Table table;
  table.AddColumn("hi", Column::U64({0, ~0ULL, 5}));
  table.AddColumn("lo", Column::U64({1, 2, 3}));
  const std::vector<uint64_t> rows = {2, 0};
  const DictKeyCodec codec = DictKeyCodec::Build(table, {"hi", "lo"}, &rows);
  ASSERT_EQ(codec.encoded().size(), 2u);
  EXPECT_EQ(codec.Decode(codec.encoded()[0])[0].u64, 5u);
  EXPECT_EQ(codec.Decode(codec.encoded()[1])[0].u64, 0u);
}

TEST(KeyCodecDeathTest, F64KeyColumnAborts) {
  Table table;
  table.AddColumn("x", Column::F64({1.0, 2.0}));
  EXPECT_DEATH(PlanKeyFields(table, {"x"}), "cannot be a group-by key");
}

TEST(KeyCodecDeathTest, RangeOnUnorderedCodecAborts) {
  Table table;
  StringDict dict;
  const uint32_t z = dict.Intern("z");
  const uint32_t a = dict.Intern("a");
  table.AddColumn("s", Column::String(std::move(dict), {z, a}));
  const auto codec = PackedKeyCodec::TryBuild(table, {"s"});
  ASSERT_TRUE(codec.has_value());
  EXPECT_DEATH(codec->LeadingFieldRange({ColumnType::kString, 0, 0, "a"},
                                        {ColumnType::kString, 0, 0, "z"}),
               "order-preserving");
}

// --- Fuzz round-trip ---------------------------------------------------------

/// Oracle key: decoded field values in a comparable, hashable form.
using OracleKey = std::vector<std::string>;

OracleKey ToOracleKey(const DecodedKey& decoded) {
  OracleKey key;
  key.reserve(decoded.size());
  for (const KeyFieldValue& field : decoded) key.push_back(field.ToString());
  return key;
}

/// Builds a random table with 1-4 key columns of random types (u64 with a
/// random bias/width, i64 crossing zero, or a string column that is sorted
/// or not by coin flip) plus a u64 measure, then checks that
/// encode -> group (COUNT + SUM through ExecuteTableQuery) -> decode agrees
/// with a std::map oracle computed straight from the source columns.
TEST(KeyCodecFuzzTest, EncodeGroupDecodeMatchesOracle) {
  Rng rng(0xf0220);
  const std::vector<std::string> labels = {"Hash_LP", "Introsort", "Btree"};
  for (int iteration = 0; iteration < 30; ++iteration) {
    const size_t num_rows = 50 + rng.NextBounded(400);
    const size_t num_key_columns = 1 + rng.NextBounded(4);
    Table table;
    std::vector<std::string> group_by;
    // One wide u64 column forces the DictKeyCodec path in some iterations;
    // at most one keeps the composite under DictKeyCodec's 128-bit cap
    // (the narrow cases below are all <= 11 bits wide).
    bool used_wide = false;
    for (size_t c = 0; c < num_key_columns; ++c) {
      std::string name = "k";
      name += std::to_string(c);
      group_by.push_back(name);
      uint64_t shape = rng.NextBounded(4);
      if (shape == 1 && used_wide) shape = 0;
      switch (shape) {
        case 0: {  // Narrow u64 with a bias.
          const uint64_t bias = rng.Next() >> 1;
          const uint64_t spread = 1 + rng.NextBounded(1000);
          std::vector<uint64_t> values(num_rows);
          for (auto& v : values) v = bias + rng.NextBounded(spread);
          table.AddColumn(name, Column::U64(std::move(values)));
          break;
        }
        case 1: {  // Wide u64: may push the schema past 63 bits.
          used_wide = true;
          std::vector<uint64_t> values(num_rows);
          for (auto& v : values) {
            v = rng.NextBounded(2) == 0 ? rng.Next() : rng.NextBounded(16);
          }
          table.AddColumn(name, Column::U64(std::move(values)));
          break;
        }
        case 2: {  // i64 crossing zero.
          std::vector<int64_t> values(num_rows);
          for (auto& v : values) {
            v = static_cast<int64_t>(rng.NextBounded(2001)) - 1000;
          }
          table.AddColumn(name, Column::I64(std::move(values)));
          break;
        }
        default: {  // Dictionary string, sorted by coin flip.
          StringDict dict;
          const size_t domain = 1 + rng.NextBounded(12);
          std::vector<uint32_t> codes(num_rows);
          for (auto& code : codes) {
            std::string text = "s";
            text += std::to_string(rng.NextBounded(domain));
            code = dict.Intern(text);
          }
          Column column = Column::String(std::move(dict), std::move(codes));
          if (rng.NextBounded(2) == 0) column.FreezeDictSorted();
          table.AddColumn(name, std::move(column));
          break;
        }
      }
    }
    std::vector<uint64_t> measure(num_rows);
    for (auto& v : measure) v = rng.NextBounded(1000);
    table.AddColumn("v", Column::U64(measure));

    // Oracle straight from the source columns.
    std::map<OracleKey, std::pair<uint64_t, uint64_t>> oracle;  // count, sum.
    for (size_t row = 0; row < num_rows; ++row) {
      OracleKey key;
      for (const std::string& name : group_by) {
        const Column& column = table.ColumnNamed(name);
        switch (column.type()) {
          case ColumnType::kU64:
            key.push_back(std::to_string(column.u64()[row]));
            break;
          case ColumnType::kI64:
            key.push_back(std::to_string(column.i64()[row]));
            break;
          case ColumnType::kString:
            key.push_back(column.dict().String(column.codes()[row]));
            break;
          case ColumnType::kF64:
            FAIL();
        }
      }
      auto& [count, sum] = oracle[key];
      ++count;
      sum += measure[row];
    }

    TableQuery query;
    query.group_by = group_by;
    query.aggregates = {{AggregateFunction::kCount, "", "count"},
                        {AggregateFunction::kSum, "v", "sum"}};
    const std::string& label = labels[iteration % labels.size()];
    const TableQueryResult result = ExecuteTableQuery(table, query, label);

    ASSERT_EQ(result.group_keys.size(), oracle.size())
        << "iteration " << iteration << " label " << label;
    for (size_t g = 0; g < result.group_keys.size(); ++g) {
      const auto it = oracle.find(ToOracleKey(result.group_keys[g]));
      ASSERT_NE(it, oracle.end()) << "iteration " << iteration;
      EXPECT_EQ(result.aggregate_columns[0][g],
                static_cast<double>(it->second.first));
      EXPECT_EQ(result.aggregate_columns[1][g],
                static_cast<double>(it->second.second));
    }
  }
}

}  // namespace
}  // namespace memagg
