// Tests for the typed execution front-end (core/table_exec.h): composite
// group-bys over every operator family, filters, key ranges, advisor
// routing, and the adaptive operator on composite keys.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/concepts.h"
#include "core/engine.h"
#include "core/table_exec.h"
#include "data/key_codec.h"
#include "data/lineitem.h"
#include "data/table.h"
#include "obs/query_stats.h"

namespace memagg {
namespace {

// The concept pins for the data layer live next to the code they gate.
static_assert(ColumnarTable<Table>);
static_assert(TableKeyCodec<PackedKeyCodec>);
static_assert(TableKeyCodec<DictKeyCodec>);

/// The TPC-H Q1 query shape over the lineitem generator's columns.
TableQuery Q1Query() {
  TableQuery query;
  query.group_by = {"l_returnflag", "l_linestatus"};
  query.aggregates = {{AggregateFunction::kSum, "l_quantity", "sum_qty"},
                      {AggregateFunction::kSum, "l_extendedprice",
                       "sum_base_price"},
                      {AggregateFunction::kSum, "disc_price",
                       "sum_disc_price"},
                      {AggregateFunction::kCount, "", "count_order"}};
  query.has_filter = true;
  query.filter_column = "l_shipdate";
  query.filter_max = kLineitemQ1ShipdateCutoff;
  return query;
}

/// Engine-free Q1 reference straight off the columns.
std::map<std::tuple<std::string, std::string>, std::vector<uint64_t>>
ReferenceQ1(const Table& table) {
  std::map<std::tuple<std::string, std::string>, std::vector<uint64_t>> ref;
  const Column& flag = table.ColumnNamed("l_returnflag");
  const Column& status = table.ColumnNamed("l_linestatus");
  const auto& quantity = table.ColumnNamed("l_quantity").u64();
  const auto& extendedprice = table.ColumnNamed("l_extendedprice").u64();
  const auto& disc_price = table.ColumnNamed("disc_price").u64();
  const auto& shipdate = table.ColumnNamed("l_shipdate").u64();
  for (size_t i = 0; i < table.num_rows(); ++i) {
    if (shipdate[i] > kLineitemQ1ShipdateCutoff) continue;
    auto& sums = ref[{flag.dict().String(flag.codes()[i]),
                      status.dict().String(status.codes()[i])}];
    if (sums.empty()) sums.resize(4);
    sums[0] += quantity[i];
    sums[1] += extendedprice[i];
    sums[2] += disc_price[i];
    sums[3] += 1;
  }
  return ref;
}

void ExpectMatchesReference(const Table& table, const TableQueryResult& result,
                            const std::string& context) {
  const auto ref = ReferenceQ1(table);
  ASSERT_EQ(result.group_keys.size(), ref.size()) << context;
  size_t g = 0;
  // std::map iterates in lexicographic key order == canonical result order.
  for (const auto& [key, sums] : ref) {
    EXPECT_EQ(std::string(result.group_keys[g][0].text), std::get<0>(key))
        << context;
    EXPECT_EQ(std::string(result.group_keys[g][1].text), std::get<1>(key))
        << context;
    for (size_t a = 0; a < 4; ++a) {
      EXPECT_EQ(result.aggregate_columns[a][g], static_cast<double>(sums[a]))
          << context << " aggregate " << a << " group " << g;
    }
    ++g;
  }
}

TEST(TableExecTest, Q1MatchesReferenceAcrossAllSerialFamilies) {
  const Table table = GenerateLineitem(20000, 1);
  for (const std::string& label : SerialLabels()) {
    const TableQueryResult result = ExecuteTableQuery(table, Q1Query(), label);
    EXPECT_EQ(result.label, label);
    EXPECT_TRUE(result.order_preserving);
    ExpectMatchesReference(table, result, label);
  }
}

TEST(TableExecTest, Q1MatchesReferenceAcrossParallelFamilies) {
  const Table table = GenerateLineitem(20000, 2);
  for (const char* label :
       {"Hash_TBBSC", "Hash_LC", "Hash_PLocal", "Hash_Striped", "Hash_PRadix",
        "Sort_BI", "Sort_QSLB", "Hybrid"}) {
    const TableQueryResult result =
        ExecuteTableQuery(table, Q1Query(), label, /*num_threads=*/4);
    ExpectMatchesReference(table, result, label);
  }
}

TEST(TableExecTest, Q1ThroughAdaptiveOperatorSerialAndParallel) {
  const Table table = GenerateLineitem(20000, 3);
  for (const int threads : {1, 4}) {
    const TableQueryResult result =
        ExecuteTableQuery(table, Q1Query(), "Adaptive", threads);
    ExpectMatchesReference(table, result,
                           "Adaptive/" + std::to_string(threads));
    // The adaptive operator really ran (it reports its final strategy).
    EXPECT_GT(result.stats.Get(StatCounter::kAdaptiveStrategy), 0u);
  }
}

TEST(TableExecTest, WideCompositeKeyTakesDictFallback) {
  Table table;
  table.AddColumn("wide", Column::U64({~0ULL, 5, ~0ULL, 9}));
  table.AddColumn("more", Column::U64({1, 2, 1, 3}));
  table.AddColumn("v", Column::U64({10, 20, 30, 40}));
  TableQuery query;
  query.group_by = {"wide", "more"};
  query.aggregates = {{AggregateFunction::kSum, "v", "sum_v"},
                      {AggregateFunction::kCount, "", "n"}};
  const TableQueryResult result = ExecuteTableQuery(table, query, "Hash_LP");
  EXPECT_FALSE(result.order_preserving);
  ASSERT_EQ(result.group_keys.size(), 3u);
  // Canonical order sorts by decoded tuple: (5,2) < (9,3) < (~0,1).
  EXPECT_EQ(result.group_keys[0][0].u64, 5u);
  EXPECT_EQ(result.group_keys[1][0].u64, 9u);
  EXPECT_EQ(result.group_keys[2][0].u64, ~0ULL);
  EXPECT_EQ(result.aggregate_columns[0][2], 40.0);  // 10 + 30.
  EXPECT_EQ(result.aggregate_columns[1][2], 2.0);
}

TEST(TableExecTest, KeyRangeNarrowsLeadingColumn) {
  const Table table = GenerateLineitem(5000, 4);
  TableQuery query = Q1Query();
  query.has_filter = false;  // Range only, to isolate the effect.
  query.has_key_range = true;
  query.key_range_lo = {ColumnType::kString, 0, 0, "N"};
  query.key_range_hi = {ColumnType::kString, 0, 0, "R"};
  const TableQueryResult result = ExecuteTableQuery(table, query, "Btree");
  // Only N and R return flags survive; A is cut.
  ASSERT_GE(result.group_keys.size(), 1u);
  for (const DecodedKey& key : result.group_keys) {
    EXPECT_NE(std::string(key[0].text), "A");
  }
  // Count matches a straight scan.
  const Column& flag = table.ColumnNamed("l_returnflag");
  uint64_t expected_rows = 0;
  for (const uint32_t code : flag.codes()) {
    if (flag.dict().String(code) != "A") ++expected_rows;
  }
  EXPECT_EQ(result.rows_scanned, expected_rows);
}

TEST(TableExecTest, EmptyKeyRangeYieldsEmptyResult) {
  const Table table = GenerateLineitem(100, 5);
  TableQuery query = Q1Query();
  query.has_filter = false;
  query.has_key_range = true;
  query.key_range_lo = {ColumnType::kString, 0, 0, "X"};
  query.key_range_hi = {ColumnType::kString, 0, 0, "Z"};
  const TableQueryResult result = ExecuteTableQuery(table, query, "Hash_LP");
  EXPECT_EQ(result.group_keys.size(), 0u);
  EXPECT_EQ(result.rows_scanned, 0u);
}

TEST(TableExecTest, AutoLabelRoutesThroughAdvisor) {
  const Table table = GenerateLineitem(2000, 6);
  TableQuery query = Q1Query();
  const TableQueryResult serial = ExecuteTableQuery(table, query, "auto");
  // Distributive vector query, narrow packed key -> the hash pick.
  EXPECT_EQ(serial.label, "Hash_LP");
  ExpectMatchesReference(table, serial, "auto/serial");

  const TableQueryResult parallel =
      ExecuteTableQuery(table, query, "auto", /*num_threads=*/4);
  EXPECT_EQ(parallel.label, "Hash_TBBSC");
  ExpectMatchesReference(table, parallel, "auto/parallel");
}

TEST(TableExecTest, AutoLabelSeesKeyWidth) {
  // Holistic aggregate over a narrow key: byte-radix sort. Over a wide key:
  // the advisor flips to the comparison sort.
  Table narrow;
  narrow.AddColumn("k", Column::U64({1, 2, 3, 1}));
  narrow.AddColumn("v", Column::U64({5, 6, 7, 8}));
  TableQuery query;
  query.group_by = {"k"};
  query.aggregates = {{AggregateFunction::kMedian, "v", "med"}};
  EXPECT_EQ(ExecuteTableQuery(narrow, query, "auto").label, "Spreadsort");

  Table wide;
  wide.AddColumn("k", Column::U64({1ULL << 40, 2, 3, 1}));
  wide.AddColumn("v", Column::U64({5, 6, 7, 8}));
  EXPECT_EQ(ExecuteTableQuery(wide, query, "auto").label, "Introsort");
}

TEST(TableExecTest, StatsAccumulateAcrossAggregates) {
  const Table table = GenerateLineitem(2000, 8);
  const TableQueryResult result =
      ExecuteTableQuery(table, Q1Query(), "Hash_LP");
  // Four aggregate runs, each consuming every filtered row.
  EXPECT_EQ(result.stats.Get(StatCounter::kRowsBuilt),
            4 * result.rows_scanned);
  EXPECT_GT(result.stats.TotalCycles(), 0u);
}

TEST(TableExecDeathTest, RangeOverDictCodecAborts) {
  Table table;
  table.AddColumn("wide", Column::U64({~0ULL, 5}));
  table.AddColumn("more", Column::U64({1, 2}));
  table.AddColumn("v", Column::U64({1, 1}));
  TableQuery query;
  query.group_by = {"wide", "more"};
  query.aggregates = {{AggregateFunction::kCount, "", "n"}};
  query.has_key_range = true;
  query.key_range_lo = {ColumnType::kU64, 0, 0, {}};
  query.key_range_hi = {ColumnType::kU64, 5, 0, {}};
  EXPECT_DEATH(ExecuteTableQuery(table, query, "Hash_LP"),
               "order-preserving");
}

TEST(TableExecDeathTest, NonU64MeasureAborts) {
  Table table;
  table.AddColumn("k", Column::U64({1, 2}));
  table.AddColumn("v", Column::F64({1.0, 2.0}));
  TableQuery query;
  query.group_by = {"k"};
  query.aggregates = {{AggregateFunction::kSum, "v", "s"}};
  EXPECT_DEATH(ExecuteTableQuery(table, query, "Hash_LP"),
               "must be u64 fixed-point");
}

TEST(TableExecDeathTest, EmptyGroupByAborts) {
  Table table;
  table.AddColumn("k", Column::U64({1}));
  TableQuery query;
  query.aggregates = {{AggregateFunction::kCount, "", "n"}};
  EXPECT_DEATH(ExecuteTableQuery(table, query, "Hash_LP"),
               "at least one group-by column");
}

}  // namespace
}  // namespace memagg
