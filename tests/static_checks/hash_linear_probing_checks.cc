// Pins hash/linear_probing_map.h's public type to its concept row
// (core/concepts.h). Compiling this TU is the test; it has no runtime code.

#include <cstdint>

#include "core/concepts.h"
#include "hash/linear_probing_map.h"
#include "mem/allocator.h"
#include "util/tracer.h"

namespace memagg {

static_assert(GroupMap<LinearProbingMap<uint64_t>, uint64_t>);
static_assert(GroupMap<LinearProbingMap<double>, double>);

// Every tracer/allocator combination stays a GroupMap.
static_assert(
    GroupMap<LinearProbingMap<uint64_t, NullTracer, GlobalNewAllocator>,
             uint64_t>);

// Hash_LP is serial: it must NOT advertise a concurrent interface.
static_assert(!ConcurrentGroupMap<LinearProbingMap<uint64_t>, uint64_t>);

}  // namespace memagg
