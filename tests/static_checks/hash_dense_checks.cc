// Pins hash/dense_map.h's public type to its concept row (core/concepts.h).
// Compiling this TU is the test; it has no runtime code.

#include <cstdint>

#include "core/concepts.h"
#include "hash/dense_map.h"

namespace memagg {

static_assert(GroupMap<DenseMap<uint64_t>, uint64_t>);
static_assert(GroupMap<DenseMap<double>, double>);

// Hash_Dense grows with the data; it is not an ordered store.
static_assert(!OrderedGroupStore<DenseMap<uint64_t>, uint64_t>);

}  // namespace memagg
