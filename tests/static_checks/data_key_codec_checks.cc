// Pins data/key_codec.h's public types to their concept row
// (core/concepts.h). Compiling this TU is the test; it has no runtime code.

#include "core/concepts.h"
#include "data/key_codec.h"
#include "data/table.h"

namespace memagg {

static_assert(TableKeyCodec<PackedKeyCodec>);
static_assert(TableKeyCodec<DictKeyCodec>);

// A Table is not a codec, and a codec is not a table.
static_assert(!TableKeyCodec<Table>);
static_assert(!ColumnarTable<PackedKeyCodec>);

}  // namespace memagg
