// Pins tree/judy.h's public type to its concept row (core/concepts.h).
// Compiling this TU is the test; it has no runtime code.

#include <cstdint>

#include "core/concepts.h"
#include "tree/judy.h"

namespace memagg {

static_assert(OrderedGroupStore<JudyArray<uint64_t>, uint64_t>);
static_assert(OrderedGroupStore<JudyArray<double>, double>);
static_assert(!GroupMap<JudyArray<uint64_t>, uint64_t>);

}  // namespace memagg
