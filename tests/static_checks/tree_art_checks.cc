// Pins tree/art.h's public types to their concept row (core/concepts.h).
// Compiling this TU is the test; it has no runtime code.

#include <cstdint>

#include "core/concepts.h"
#include "tree/art.h"

namespace memagg {

static_assert(OrderedGroupStore<ArtTree<uint64_t>, uint64_t>);
static_assert(OrderedGroupStore<ArtTree<double>, double>);

// The global-new ablation alias keeps the same contract.
static_assert(OrderedGroupStore<ArtTreeGlobalNew<uint64_t>, uint64_t>);

// Trees grow with the data: no (size_t) pre-sizing constructor, so the hash
// GroupMap role must NOT match.
static_assert(!GroupMap<ArtTree<uint64_t>, uint64_t>);

}  // namespace memagg
