// Pins every aggregate policy — the serial ones from core/aggregate.h and
// the Hash_TBBSC concurrent counterparts from core/parallel_aggregator.h —
// to AggregatePolicy / MergeableAggregatePolicy (core/concepts.h).
// Compiling this TU is the test; it has no runtime code.

#include "core/aggregate.h"
#include "core/concepts.h"
#include "core/parallel_aggregator.h"

namespace memagg {

// Serial policies: all mergeable (the partitioned operators need Merge).
static_assert(MergeableAggregatePolicy<CountAggregate>);
static_assert(MergeableAggregatePolicy<SumAggregate>);
static_assert(MergeableAggregatePolicy<MinAggregate>);
static_assert(MergeableAggregatePolicy<MaxAggregate>);
static_assert(MergeableAggregatePolicy<AverageAggregate>);
static_assert(MergeableAggregatePolicy<MedianAggregate>);
static_assert(MergeableAggregatePolicy<ModeAggregate>);

// Concurrent policies synchronize in place and are never partition-merged,
// so they model the base concept but not the mergeable refinement.
static_assert(AggregatePolicy<ConcurrentCountAggregate>);
static_assert(AggregatePolicy<ConcurrentSumAggregate>);
static_assert(AggregatePolicy<ConcurrentMinAggregate>);
static_assert(AggregatePolicy<ConcurrentMaxAggregate>);
static_assert(AggregatePolicy<ConcurrentAverageAggregate>);
static_assert(AggregatePolicy<ConcurrentMedianAggregate>);
static_assert(AggregatePolicy<ConcurrentModeAggregate>);
static_assert(!MergeableAggregatePolicy<ConcurrentSumAggregate>);
static_assert(!MergeableAggregatePolicy<ConcurrentMedianAggregate>);

}  // namespace memagg
