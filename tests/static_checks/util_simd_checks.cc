// Pins util/simd.h's lane types to the SimdOps concept. Compiling this TU
// is the test; it has no runtime code.

#include <cstdint>

#include "util/simd.h"

namespace memagg {

// Every shipped lane — and the runtime dispatcher — models SimdOps, so any
// container's Ops parameter accepts all four interchangeably.
static_assert(simd::SimdOps<simd::ScalarOps>);
static_assert(simd::SimdOps<simd::Sse42Ops>);
static_assert(simd::SimdOps<simd::Avx2Ops>);
static_assert(simd::SimdOps<simd::DispatchOps>);

// Negative modeling: a lane missing a kernel, or returning the wrong mask
// width, is not a SimdOps.
namespace {

struct MissingMatch {
  static constexpr simd::SimdLane Lane() { return simd::SimdLane::kScalar; }
  static constexpr const char* Name() { return "broken"; }
  // Missing: MatchByteTag and the rest of the kernel vocabulary.
};

struct NarrowMask : simd::ScalarOps {
  // Wrong return type: group masks are uint32_t, not uint16_t (bit 16..31
  // headroom for a future 32-wide group).
  static uint16_t MatchByteTag(const uint8_t*, uint8_t) { return 0; }
};

static_assert(!simd::SimdOps<MissingMatch>);
static_assert(!simd::SimdOps<NarrowMask>);

}  // namespace

// The control-byte scheme's two load-bearing constants.
static_assert(simd::kGroupWidth == 16);
static_assert(simd::kCtrlEmpty == 0x80);

}  // namespace memagg
