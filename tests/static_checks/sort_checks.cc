// Pins src/sort/'s public types to their concept rows (core/concepts.h):
// the key extractors and comparator from sort/sort_common.h and the record
// types the kernels permute. The sorter functors themselves live in
// core/sorters.h, which carries its own Sorter/ParallelSorter asserts.
// Compiling this TU is the test; it has no runtime code.

#include <cstdint>
#include <utility>

#include "core/concepts.h"
#include "core/sorters.h"
#include "sort/sort_common.h"

namespace memagg {

using Record = std::pair<uint64_t, uint64_t>;

static_assert(KeyExtractor<IdentityKey, uint64_t>);
static_assert(KeyExtractor<PairFirstKey, Record>);
static_assert(SortableRecord<uint64_t>);
static_assert(SortableRecord<Record>);

// KeyLess adapts an extractor into the comparator the comparison sorts use.
static_assert(std::predicate<KeyLess<IdentityKey>, uint64_t, uint64_t>);
static_assert(std::predicate<KeyLess<PairFirstKey>, Record, Record>);

// A serial sorter must not advertise a thread budget.
static_assert(!ParallelSorter<IntrosortSorter>);
static_assert(!ParallelSorter<SpreadsortSorter>);

}  // namespace memagg
