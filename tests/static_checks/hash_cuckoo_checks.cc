// Pins hash/cuckoo_map.h's public type to its concept rows
// (core/concepts.h): Hash_LC is the one structure that serves both the
// serial GroupMap role and the concurrent upsert role (paper Section 5.8).
// Compiling this TU is the test; it has no runtime code.

#include <cstdint>

#include "core/concepts.h"
#include "hash/cuckoo_map.h"

namespace memagg {

static_assert(GroupMap<CuckooMap<uint64_t>, uint64_t>);
static_assert(ConcurrentGroupMap<CuckooMap<uint64_t>, uint64_t>);
static_assert(UpsertGroupMap<CuckooMap<uint64_t>, uint64_t>);

// Its concurrency comes from locked upsert, not per-worker allocation.
static_assert(!SharedAllocGroupMap<CuckooMap<uint64_t>, uint64_t>);

}  // namespace memagg
