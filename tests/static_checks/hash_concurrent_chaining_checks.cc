// Pins hash/concurrent_chaining_map.h's public type to its concept row
// (core/concepts.h). Compiling this TU is the test; it has no runtime code.

#include <cstdint>

#include "core/concepts.h"
#include "hash/concurrent_chaining_map.h"

namespace memagg {

static_assert(ConcurrentGroupMap<ConcurrentChainingMap<uint64_t>, uint64_t>);
static_assert(SharedAllocGroupMap<ConcurrentChainingMap<uint64_t>, uint64_t>);

// Hash_TBBSC's insert requires the caller's allocator handle, so it must NOT
// satisfy the serial single-argument GroupMap surface.
static_assert(!GroupMap<ConcurrentChainingMap<uint64_t>, uint64_t>);
static_assert(!UpsertGroupMap<ConcurrentChainingMap<uint64_t>, uint64_t>);

}  // namespace memagg
