// Pins hash/striped_map.h's public type to its concept row
// (core/concepts.h). The wrapper cannot name core concepts itself (hash/
// sits below core/ in the include DAG), so its contract is pinned here.
// Compiling this TU is the test; it has no runtime code.

#include <cstdint>

#include "core/concepts.h"
#include "hash/chaining_map.h"
#include "hash/linear_probing_map.h"
#include "hash/striped_map.h"

namespace memagg {

static_assert(
    ConcurrentGroupMap<StripedMap<LinearProbingMap<uint64_t>>, uint64_t>);
static_assert(UpsertGroupMap<StripedMap<LinearProbingMap<uint64_t>>, uint64_t>);

// Striping is inner-map agnostic: any GroupMap works as the stripe type.
static_assert(ConcurrentGroupMap<StripedMap<ChainingMap<uint64_t>>, uint64_t>);

// Upserts must go through the stripe locks: no raw GetOrInsert surface.
static_assert(!GroupMap<StripedMap<LinearProbingMap<uint64_t>>, uint64_t>);

}  // namespace memagg
