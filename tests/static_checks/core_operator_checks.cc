// Pins one instantiation of every aggregation-operator family to
// AggregationOperator / ScalarOperator (core/concepts.h), so the engine
// registry's assumption — any factory product is a concrete
// Vector/ScalarAggregator — is checked where the families are defined.
// Compiling this TU is the test; it has no runtime code.

#include "core/adaptive_aggregator.h"
#include "core/aggregate.h"
#include "core/concepts.h"
#include "core/hash_aggregator.h"
#include "core/hybrid_aggregator.h"
#include "core/local_partition_aggregator.h"
#include "core/mph_aggregator.h"
#include "core/parallel_aggregator.h"
#include "core/radix_partition_aggregator.h"
#include "core/scalar.h"
#include "core/sort_aggregator.h"
#include "core/sorters.h"
#include "core/tree_aggregator.h"
#include "hash/linear_probing_map.h"
#include "tree/art.h"

namespace memagg {

static_assert(
    AggregationOperator<HashVectorAggregator<LinearProbingMap, SumAggregate>>);
static_assert(
    AggregationOperator<TreeVectorAggregator<ArtTree, SumAggregate>>);
static_assert(
    AggregationOperator<SortVectorAggregator<IntrosortSorter, SumAggregate>>);
static_assert(AggregationOperator<MphVectorAggregator<SumAggregate>>);
static_assert(AggregationOperator<HybridVectorAggregator<SumAggregate>>);
static_assert(AggregationOperator<LocalPartitionAggregator<SumAggregate>>);
static_assert(AggregationOperator<RadixPartitionAggregator<MedianAggregate>>);
static_assert(
    AggregationOperator<TbbStyleParallelAggregator<ConcurrentSumAggregate>>);
static_assert(AggregationOperator<CuckooParallelAggregator<SumAggregate>>);
static_assert(AggregationOperator<StripedParallelAggregator<SumAggregate>>);

static_assert(ScalarOperator<StreamingCountAggregator>);
static_assert(ScalarOperator<StreamingAverageAggregator>);
static_assert(ScalarOperator<SortScalarMedianAggregator<IntrosortSorter>>);
static_assert(ScalarOperator<TreeScalarMedianAggregator<ArtTree>>);

// The abstract interfaces themselves are not operators.
static_assert(!AggregationOperator<VectorAggregator>);
static_assert(!ScalarOperator<ScalarAggregator>);

// Adaptive-switchable strategies: the five named operator families plus the
// striped shared map expose the MigratableAggregator protocol structurally.
static_assert(
    MigratableOperator<HashVectorAggregator<LinearProbingMap, SumAggregate>>);
static_assert(MigratableOperator<TreeVectorAggregator<ArtTree, SumAggregate>>);
static_assert(MigratableOperator<LocalPartitionAggregator<SumAggregate>>);
static_assert(MigratableOperator<RadixPartitionAggregator<SumAggregate>>);
static_assert(
    MigratableOperator<SortVectorAggregator<BlockIndirectSorter, SumAggregate>>);
static_assert(MigratableOperator<StripedParallelAggregator<SumAggregate>>);
// Holistic policies migrate too (their states concatenate on Merge).
static_assert(MigratableOperator<RadixPartitionAggregator<MedianAggregate>>);

// Negative models: the TBB-style operator keeps atomic per-entry state that
// cannot be extracted as plain policy states; the adaptive operator itself
// is a consumer of the protocol, not a strategy; the abstract base alone
// does not satisfy the structural concept's constructability requirements.
static_assert(
    !MigratableOperator<TbbStyleParallelAggregator<ConcurrentSumAggregate>>);
static_assert(!MigratableOperator<AdaptiveAggregator<SumAggregate>>);
static_assert(!MigratableOperator<HybridVectorAggregator<SumAggregate>>);

// The adaptive operator is itself a first-class engine operator.
static_assert(AggregationOperator<AdaptiveAggregator<SumAggregate>>);
static_assert(AggregationOperator<AdaptiveAggregator<MedianAggregate>>);

}  // namespace memagg
