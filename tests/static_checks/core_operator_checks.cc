// Pins one instantiation of every aggregation-operator family to
// AggregationOperator / ScalarOperator (core/concepts.h), so the engine
// registry's assumption — any factory product is a concrete
// Vector/ScalarAggregator — is checked where the families are defined.
// Compiling this TU is the test; it has no runtime code.

#include "core/aggregate.h"
#include "core/concepts.h"
#include "core/hash_aggregator.h"
#include "core/hybrid_aggregator.h"
#include "core/local_partition_aggregator.h"
#include "core/mph_aggregator.h"
#include "core/parallel_aggregator.h"
#include "core/radix_partition_aggregator.h"
#include "core/scalar.h"
#include "core/sort_aggregator.h"
#include "core/sorters.h"
#include "core/tree_aggregator.h"
#include "hash/linear_probing_map.h"
#include "tree/art.h"

namespace memagg {

static_assert(
    AggregationOperator<HashVectorAggregator<LinearProbingMap, SumAggregate>>);
static_assert(
    AggregationOperator<TreeVectorAggregator<ArtTree, SumAggregate>>);
static_assert(
    AggregationOperator<SortVectorAggregator<IntrosortSorter, SumAggregate>>);
static_assert(AggregationOperator<MphVectorAggregator<SumAggregate>>);
static_assert(AggregationOperator<HybridVectorAggregator<SumAggregate>>);
static_assert(AggregationOperator<LocalPartitionAggregator<SumAggregate>>);
static_assert(AggregationOperator<RadixPartitionAggregator<MedianAggregate>>);
static_assert(
    AggregationOperator<TbbStyleParallelAggregator<ConcurrentSumAggregate>>);
static_assert(AggregationOperator<CuckooParallelAggregator<SumAggregate>>);
static_assert(AggregationOperator<StripedParallelAggregator<SumAggregate>>);

static_assert(ScalarOperator<StreamingCountAggregator>);
static_assert(ScalarOperator<StreamingAverageAggregator>);
static_assert(ScalarOperator<SortScalarMedianAggregator<IntrosortSorter>>);
static_assert(ScalarOperator<TreeScalarMedianAggregator<ArtTree>>);

// The abstract interfaces themselves are not operators.
static_assert(!AggregationOperator<VectorAggregator>);
static_assert(!ScalarOperator<ScalarAggregator>);

}  // namespace memagg
