// Pins hash/sparse_map.h's public type to its concept row (core/concepts.h).
// Compiling this TU is the test; it has no runtime code.

#include <cstdint>

#include "core/concepts.h"
#include "hash/sparse_map.h"
#include "mem/allocator.h"

namespace memagg {

static_assert(GroupMap<SparseMap<uint64_t>, uint64_t>);
static_assert(GroupMap<SparseMap<double>, double>);
static_assert(
    GroupMap<SparseMap<uint64_t, NullTracer, GlobalNewAllocator>, uint64_t>);

}  // namespace memagg
