// Pins hash/ordered_mph.h's public type's interface (core/concepts.h has no
// dedicated concept for a perfect-hash function, so the contract its
// consumer — core/mph_aggregator.h — relies on is spelled here directly).
// Compiling this TU is the test; it has no runtime code.

#include <concepts>
#include <cstddef>
#include <cstdint>

#include "hash/ordered_mph.h"

namespace memagg {

static_assert(std::default_initializable<OrderedMinimalPerfectHash>);
static_assert(requires(OrderedMinimalPerfectHash mph,
                       const OrderedMinimalPerfectHash& cmph,
                       const uint64_t* keys, size_t n, uint64_t key,
                       size_t slot) {
  mph.Build(keys, n);
  { cmph.size() } -> std::convertible_to<size_t>;
  { cmph.Slot(key) } -> std::same_as<size_t>;
  { cmph.KeyAt(slot) } -> std::same_as<uint64_t>;
  { cmph.MemoryBytes() } -> std::convertible_to<size_t>;
});

}  // namespace memagg
