// Pins data/table.h's public type to its concept row (core/concepts.h).
// Compiling this TU is the test; it has no runtime code.

#include "core/concepts.h"
#include "data/table.h"

namespace memagg {

static_assert(ColumnarTable<Table>);

// A bare column vector is not a table: no named-column surface.
static_assert(!ColumnarTable<Column>);

}  // namespace memagg
