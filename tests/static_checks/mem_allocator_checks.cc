// Pins mem/allocator.h's policies to the AllocatorPolicy concept (defined in
// that header so lower layers can constrain with it) and records each
// policy's wholesale-release stance. Compiling this TU is the test; it has
// no runtime code.

#include <cstdint>

#include "mem/allocator.h"

namespace memagg {

static_assert(AllocatorPolicy<GlobalNewAllocator>);
static_assert(AllocatorPolicy<ArenaAllocator>);
static_assert(AllocatorPolicy<PoolAllocator<uint64_t>>);

static_assert(!GlobalNewAllocator::kWholesaleRelease);
static_assert(ArenaAllocator::kWholesaleRelease);
static_assert(PoolAllocator<uint64_t>::kWholesaleRelease);

}  // namespace memagg
