// Pins hash/chaining_map.h's public types to their concept rows
// (core/concepts.h). Compiling this TU is the test; it has no runtime code.

#include <cstdint>

#include "core/concepts.h"
#include "hash/chaining_map.h"

namespace memagg {

static_assert(GroupMap<ChainingMap<uint64_t>, uint64_t>);
static_assert(GroupMap<ChainingMap<double>, double>);

// The global-new ablation alias keeps the same contract.
static_assert(GroupMap<ChainingMapGlobalNew<uint64_t>, uint64_t>);

// Hash_SC is serial: it must NOT advertise a concurrent interface.
static_assert(!ConcurrentGroupMap<ChainingMap<uint64_t>, uint64_t>);

}  // namespace memagg
