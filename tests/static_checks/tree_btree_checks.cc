// Pins tree/btree.h's public type to its concept row (core/concepts.h).
// Compiling this TU is the test; it has no runtime code.

#include <cstdint>

#include "core/concepts.h"
#include "tree/btree.h"

namespace memagg {

static_assert(OrderedGroupStore<BTree<uint64_t>, uint64_t>);
static_assert(OrderedGroupStore<BTree<double>, double>);
static_assert(!GroupMap<BTree<uint64_t>, uint64_t>);

}  // namespace memagg
