// Pins tree/ttree.h's public type to its concept row (core/concepts.h).
// Compiling this TU is the test; it has no runtime code.

#include <cstdint>

#include "core/concepts.h"
#include "tree/ttree.h"

namespace memagg {

static_assert(OrderedGroupStore<TTree<uint64_t>, uint64_t>);
static_assert(OrderedGroupStore<TTree<double>, double>);
static_assert(!GroupMap<TTree<uint64_t>, uint64_t>);

}  // namespace memagg
