// compile-fail: a SIMD lane without the group-probe kernel must be rejected
// at the container's Ops template parameter with SimdOps in the diagnostic.

#include <cstdint>

#include "hash/dense_map.h"
#include "util/simd.h"

namespace memagg {

struct HalfLane {
  static constexpr simd::SimdLane Lane() { return simd::SimdLane::kScalar; }
  static constexpr const char* Name() { return "half"; }
  // Missing: MatchByteTag/MatchEmpty/FindByte16/FindByte32/MatchKey4/
  // HashBatch.
};

using Broken = DenseMap<uint64_t, NullTracer, HalfLane>;
Broken* unused = nullptr;

}  // namespace memagg
