// compile-fail: a tree without range-filtered iteration must be rejected at
// TreeVectorAggregator's instantiation site with OrderedGroupStore in the
// diagnostic (native ForEachInRange is what makes a tree a tree here — Q7).

#include <cstddef>
#include <cstdint>

#include "core/aggregate.h"
#include "core/tree_aggregator.h"

namespace memagg {

template <typename V>
class NoRangeTree {
 public:
  NoRangeTree() = default;
  V& GetOrInsert(uint64_t key);
  const V* Find(uint64_t key) const;
  V* Find(uint64_t key);
  size_t size() const;
  size_t MemoryBytes() const;
  template <typename Fn>
  void ForEach(Fn fn) const;
  // Missing: ForEachInRange(lo, hi, fn) const.
};

using Broken = TreeVectorAggregator<NoRangeTree, SumAggregate>;
Broken* unused = nullptr;

}  // namespace memagg
