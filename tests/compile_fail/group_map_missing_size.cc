// compile-fail: a hash container without size() must be rejected at
// HashVectorAggregator's instantiation site with GroupMap in the diagnostic.

#include <cstddef>
#include <cstdint>

#include "core/aggregate.h"
#include "core/hash_aggregator.h"

namespace memagg {

template <typename V>
class NoSizeMap {
 public:
  explicit NoSizeMap(size_t expected_size);
  V& GetOrInsert(uint64_t key);
  const V* Find(uint64_t key) const;
  V* Find(uint64_t key);
  void Reserve(size_t expected_entries);
  size_t MemoryBytes() const;
  template <typename Fn>
  void ForEach(Fn fn) const;
};

using Broken = HashVectorAggregator<NoSizeMap, SumAggregate>;
Broken* unused = nullptr;

}  // namespace memagg
