// compile-fail: TreeScalarMedianAggregator walks groups in key order, so
// handing it a hash map must be rejected with OrderedGroupStore in the
// diagnostic — an unordered walk would return a wrong median silently.

#include "core/scalar.h"
#include "hash/dense_map.h"

namespace memagg {

using Broken = TreeScalarMedianAggregator<DenseMap>;
Broken* unused = nullptr;

}  // namespace memagg
