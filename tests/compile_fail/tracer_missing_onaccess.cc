// compile-fail: a tracer policy without the static OnAccess hook must be
// rejected at the container's template parameter with MemoryTracer in the
// diagnostic.

#include <cstddef>
#include <cstdint>

#include "hash/linear_probing_map.h"
#include "util/tracer.h"

namespace memagg {

struct SilentTracer {
  static constexpr bool kEnabled = true;
  // Missing: static void OnAccess(const void*, size_t).
};

using Broken = LinearProbingMap<uint64_t, SilentTracer>;
Broken* unused = nullptr;

}  // namespace memagg
