// compile-fail: an allocation policy without the compile-time
// kWholesaleRelease flag must be rejected with AllocatorPolicy in the
// diagnostic — destructor fast paths key on that flag, so omitting it would
// otherwise silently pick the slow path.

#include <cstddef>
#include <cstdint>

#include "hash/linear_probing_map.h"
#include "mem/allocator.h"

namespace memagg {

struct NoFlagAllocator {
  // Missing: static constexpr bool kWholesaleRelease.
  void* AllocateBytes(size_t bytes, size_t align);
  void DeallocateBytes(void* ptr, size_t bytes);
  AllocStats Stats() const;
};

using Broken = LinearProbingMap<uint64_t, NullTracer, NoFlagAllocator>;
Broken* unused = nullptr;

}  // namespace memagg
