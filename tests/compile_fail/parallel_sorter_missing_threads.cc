// compile-fail: a serial sorter handed to a parallel slot must be rejected
// with ParallelSorter in the diagnostic — the engine factories set
// .num_threads from the execution context, so a sorter without the field
// would silently run serial.

#include "core/concepts.h"
#include "core/sorters.h"

namespace memagg {

static_assert(ParallelSorter<IntrosortSorter>,
              "serial sorters have no thread budget to configure");

}  // namespace memagg
