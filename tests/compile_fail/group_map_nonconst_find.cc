// compile-fail: a hash container whose Find is not const-qualified must be
// rejected with GroupMap in the diagnostic (const-correct lookup is part of
// the contract — iterate-phase readers hold const references).

#include <cstddef>
#include <cstdint>

#include "core/aggregate.h"
#include "core/hash_aggregator.h"

namespace memagg {

template <typename V>
class NonConstFindMap {
 public:
  explicit NonConstFindMap(size_t expected_size);
  V& GetOrInsert(uint64_t key);
  // Missing: const V* Find(uint64_t) const.
  V* Find(uint64_t key);
  void Reserve(size_t expected_entries);
  size_t size() const;
  size_t MemoryBytes() const;
  template <typename Fn>
  void ForEach(Fn fn) const;
};

using Broken = HashVectorAggregator<NonConstFindMap, SumAggregate>;
Broken* unused = nullptr;

}  // namespace memagg
