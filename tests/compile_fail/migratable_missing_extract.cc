// compile-fail: an operator that consumes morsels but cannot hand its
// partial group state over (no ExtractPartialState/AbsorbPartialState) is
// not adaptive-switchable, and the diagnostic must say MigratableOperator —
// the adaptive operator's switch protocol depends on both directions.

#include <cstddef>
#include <cstdint>

#include "core/aggregate.h"
#include "core/concepts.h"
#include "core/migratable.h"
#include "core/operator.h"
#include "core/result.h"

namespace memagg {

class ConsumeOnlyAggregator : public VectorAggregator {
 public:
  using Partial = PartialAggState<SumAggregate>;

  void Build(const uint64_t* keys, const uint64_t* values, size_t n) override;
  VectorResult Iterate() override;

  void BeginConsume(int num_workers, size_t expected_rows);
  void ConsumeMorsel(const uint64_t* keys, const uint64_t* values,
                     const Morsel& m);
  ProgressSnapshot Progress() const;
  VectorResult Finish();
  // Missing: Partial ExtractPartialState() and
  // void AbsorbPartialState(Partial&&).
};

static_assert(MigratableOperator<ConsumeOnlyAggregator>,
              "switchable strategies must expose partial-state migration");

}  // namespace memagg
