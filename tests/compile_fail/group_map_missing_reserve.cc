// compile-fail: a hash container without Reserve must be rejected with
// GroupMap in the diagnostic — ReserveGroups() calls it unconditionally.

#include <cstddef>
#include <cstdint>

#include "core/aggregate.h"
#include "core/hash_aggregator.h"

namespace memagg {

template <typename V>
class NoReserveMap {
 public:
  explicit NoReserveMap(size_t expected_size);
  V& GetOrInsert(uint64_t key);
  const V* Find(uint64_t key) const;
  V* Find(uint64_t key);
  size_t size() const;
  size_t MemoryBytes() const;
  template <typename Fn>
  void ForEach(Fn fn) const;
};

using Broken = HashVectorAggregator<NoReserveMap, SumAggregate>;
Broken* unused = nullptr;

}  // namespace memagg
