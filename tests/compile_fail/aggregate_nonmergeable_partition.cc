// compile-fail: a partitioned operator must reject an aggregate policy
// without Merge — worker-local partial states have to be combined — with
// MergeableAggregatePolicy in the diagnostic.

#include <cstdint>

#include "core/local_partition_aggregator.h"

namespace memagg {

struct NonMergeableSum {
  using State = uint64_t;
  static constexpr bool kNeedsValues = true;
  static void Update(State& state, uint64_t value);
  static double Finalize(const State& state);
  // Missing: static void Merge(State& into, State& from).
};

using Broken = LocalPartitionAggregator<NonMergeableSum>;
Broken* unused = nullptr;

}  // namespace memagg
