// compile-fail: a sort functor that only handles plain key arrays (no
// (key, value) record overload) must be rejected at SortVectorAggregator's
// instantiation site with Sorter in the diagnostic — holistic aggregates
// sort records, not keys.

#include <cstdint>

#include "core/aggregate.h"
#include "core/sort_aggregator.h"

namespace memagg {

struct KeysOnlySorter {
  void operator()(uint64_t* first, uint64_t* last, IdentityKey key_of) const;
  // Missing: the generic overload over (key, value) records.
};

using Broken = SortVectorAggregator<KeysOnlySorter, SumAggregate>;
Broken* unused = nullptr;

}  // namespace memagg
