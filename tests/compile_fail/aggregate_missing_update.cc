// compile-fail: an aggregate policy without a static Update step must be
// rejected at the operator's instantiation site with AggregatePolicy in the
// diagnostic.

#include <cstdint>

#include "core/hash_aggregator.h"
#include "hash/linear_probing_map.h"

namespace memagg {

struct NoUpdateAggregate {
  using State = uint64_t;
  static constexpr bool kNeedsValues = false;
  // Missing: static void Update(State&, uint64_t).
  static double Finalize(const State& state);
};

using Broken = HashVectorAggregator<LinearProbingMap, NoUpdateAggregate>;
Broken* unused = nullptr;

}  // namespace memagg
