// compile-fail: a type that does not derive from VectorAggregator is not an
// aggregation operator, and the diagnostic must say AggregationOperator —
// the engine registry's products all go through that interface.

#include <cstddef>
#include <cstdint>

#include "core/concepts.h"
#include "core/result.h"

namespace memagg {

class FreestandingAggregator {
 public:
  void Build(const uint64_t* keys, const uint64_t* values, size_t n);
  VectorResult Iterate();
};

static_assert(AggregationOperator<FreestandingAggregator>,
              "operators must derive from VectorAggregator");

}  // namespace memagg
