// compile-fail: an allocation policy without DeallocateBytes must be
// rejected at the container's template parameter with AllocatorPolicy in
// the diagnostic (wholesale-release arenas still get per-array frees from
// rebuild paths).

#include <cstddef>
#include <cstdint>

#include "hash/linear_probing_map.h"
#include "mem/allocator.h"

namespace memagg {

struct LeakyAllocator {
  static constexpr bool kWholesaleRelease = false;
  void* AllocateBytes(size_t bytes, size_t align);
  // Missing: void DeallocateBytes(void* ptr, size_t bytes).
  AllocStats Stats() const;
};

using Broken = LinearProbingMap<uint64_t, NullTracer, LeakyAllocator>;
Broken* unused = nullptr;

}  // namespace memagg
