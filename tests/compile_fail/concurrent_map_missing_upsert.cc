// compile-fail: a "concurrent" table with neither a locked Upsert nor
// shared-insert-with-worker-allocator must be rejected with
// ConcurrentGroupMap in the diagnostic (paper Section 5.8: thread-safe
// insert AND update is the qualifying bar).

#include <cstddef>
#include <cstdint>

#include "core/concepts.h"

namespace memagg {

class PutGetOnlyMap {
 public:
  explicit PutGetOnlyMap(size_t expected_size);
  // Thread-safe put/get is NOT enough: no Upsert, no GetOrInsert(key, alloc).
  void Put(uint64_t key, uint64_t value);
  bool Get(uint64_t key, uint64_t* value) const;
  size_t size() const;
  size_t MemoryBytes() const;
  template <typename Fn>
  void ForEach(Fn fn) const;
};

static_assert(ConcurrentGroupMap<PutGetOnlyMap, uint64_t>,
              "put/get tables do not qualify as concurrent group maps");

}  // namespace memagg
