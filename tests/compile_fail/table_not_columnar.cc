// compile-fail: the execution front-end's table-generic helpers must reject
// a type without the columnar surface, with ColumnarTable in the
// diagnostic — a keys/values pair of raw vectors is the legacy harness
// shape, not a table.

#include <cstdint>
#include <vector>

#include "core/table_exec.h"

namespace memagg {

struct RawHarnessInput {
  std::vector<uint64_t> keys;
  std::vector<uint64_t> values;
};

size_t Broken(const RawHarnessInput& input, const TableQuery& query) {
  return QueryFootprintBytes(input, query);
}

}  // namespace memagg
