// compile-fail: a codec that can only encode must be rejected with
// TableKeyCodec in the diagnostic — the execution front-end decodes every
// result key back to column values, so an encode-only codec would strand
// the results as opaque integers.

#include <cstddef>
#include <vector>

#include "core/table_exec.h"
#include "util/encoded_key.h"

namespace memagg {

class EncodeOnlyCodec {
 public:
  size_t num_fields() const;
  int width_bits() const;
  bool order_preserving() const;
  std::vector<EncodedKey> EncodeAll() const;
  // No Decode(EncodedKey).
};

void Broken(const EncodeOnlyCodec& codec, const std::vector<EncodedKey>& keys) {
  DecodeKeyColumn(codec, keys);
}

}  // namespace memagg
