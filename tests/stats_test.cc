// Tests for the on-demand structure diagnostics (probe distances, chain
// lengths, node populations, tree shapes).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "hash/chaining_map.h"
#include "hash/linear_probing_map.h"
#include "tree/art.h"
#include "tree/btree.h"
#include "tree/judy.h"
#include "tree/ttree.h"
#include "util/rng.h"

namespace memagg {
namespace {

TEST(ProbeStatsTest, EmptyTable) {
  LinearProbingMap<uint64_t> map(64);
  const auto stats = map.ComputeProbeStats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.max_probe, 0u);
  EXPECT_DOUBLE_EQ(stats.average_probe(), 0.0);
}

TEST(ProbeStatsTest, LowLoadHasShortProbes) {
  LinearProbingMap<uint64_t> map(100000);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) map.GetOrInsert(rng.Next()) = 1;
  const auto stats = map.ComputeProbeStats();
  EXPECT_EQ(stats.entries, map.size());
  EXPECT_LT(stats.average_probe(), 1.2);  // Nearly collision-free.
  EXPECT_LT(stats.load_factor, 0.01);
}

TEST(ProbeStatsTest, HighLoadShowsClustering) {
  // Exact-sized small table filled to just below the growth threshold.
  LinearProbingMap<uint64_t> sparse_table(1 << 16);
  LinearProbingMap<uint64_t> dense_table(4);  // Grows, ends near 0.7 load.
  Rng rng(2);
  for (int i = 0; i < 40000; ++i) {
    const uint64_t key = rng.Next();
    sparse_table.GetOrInsert(key) = 1;
    dense_table.GetOrInsert(key) = 1;
  }
  const auto sparse_stats = sparse_table.ComputeProbeStats();
  const auto dense_stats = dense_table.ComputeProbeStats();
  EXPECT_GT(dense_stats.load_factor, sparse_stats.load_factor);
  EXPECT_GT(dense_stats.average_probe(), sparse_stats.average_probe());
}

TEST(ChainStatsTest, CountsChains) {
  ChainingMap<uint64_t> map(1000);
  for (uint64_t k = 0; k < 500; ++k) map.GetOrInsert(k) = k;
  const auto stats = map.ComputeChainStats();
  EXPECT_GT(stats.used_buckets, 0u);
  EXPECT_GE(stats.max_chain, 1u);
  EXPECT_GE(stats.average_chain, 1.0);
  // Average chain can't exceed max.
  EXPECT_LE(stats.average_chain, static_cast<double>(stats.max_chain));
}

TEST(ChainStatsTest, UndersizedTableHasLongChains) {
  ChainingMap<uint64_t> small(1000);
  // Suppress growth by staying at load factor <= 1 relative to final bucket
  // count; instead compare against a well-sized table.
  ChainingMap<uint64_t> big(100000);
  for (uint64_t k = 0; k < 900; ++k) {
    small.GetOrInsert(k) = k;
    big.GetOrInsert(k) = k;
  }
  EXPECT_GE(small.ComputeChainStats().average_chain,
            big.ComputeChainStats().average_chain);
}

TEST(ArtStatsTest, DenseKeysUseBigNodes) {
  ArtTree<uint64_t> tree;
  for (uint64_t k = 0; k < 65536; ++k) tree.GetOrInsert(k) = k;
  const auto stats = tree.ComputeNodeStats();
  EXPECT_EQ(stats.leaves, 65536u);
  // Dense byte fanout: Node256 dominates the populated levels.
  EXPECT_GT(stats.node256, 200u);
  EXPECT_GT(stats.total_prefix_bytes, 0u);  // Path compression engaged.
  EXPECT_LE(stats.max_depth, 9u);           // <= 8 key bytes + root level.
}

TEST(ArtStatsTest, SparseKeysUseSmallNodes) {
  ArtTree<uint64_t> tree;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) tree.GetOrInsert(rng.Next()) = 1;
  const auto stats = tree.ComputeNodeStats();
  EXPECT_EQ(stats.leaves, tree.size());
  // Random 64-bit keys diverge early: almost everything is a Node4/16.
  EXPECT_GT(stats.node4 + stats.node16, stats.node48 + stats.node256);
}

TEST(JudyStatsTest, CompressionAccounting) {
  JudyArray<uint64_t> tree;
  for (uint64_t k = 0; k < 100000; ++k) tree.GetOrInsert(k) = k;
  const auto stats = tree.ComputeNodeStats();
  EXPECT_GT(stats.bitmap_leaves, 0u);
  EXPECT_GT(stats.bitmap_branches + stats.linear_branches, 0u);
  EXPECT_GT(stats.total_skip_bytes, 0u);  // Narrow pointers in use.
}

TEST(BtreeStatsTest, HeightAndFill) {
  BTree<uint64_t> tree;
  const auto empty_stats = tree.ComputeTreeStats();
  EXPECT_EQ(empty_stats.height, 0u);
  for (uint64_t k = 0; k < 100000; ++k) tree.GetOrInsert(k) = k;
  const auto stats = tree.ComputeTreeStats();
  // log_8(1e5) ~ 5.5 levels at minimum half-full fanout 8.
  EXPECT_GE(stats.height, 4u);
  EXPECT_LE(stats.height, 8u);
  EXPECT_GT(stats.leaves, 100000u / 16u);
  EXPECT_GE(stats.leaf_fill, 0.5);  // Split-in-half => at least half full.
  EXPECT_LE(stats.leaf_fill, 1.0);
  EXPECT_GT(stats.inner_nodes, 0u);
}

TEST(TtreeStatsTest, AvlHeightBound) {
  TTree<uint64_t> tree;
  for (uint64_t k = 0; k < 100000; ++k) tree.GetOrInsert(k) = k;
  const auto stats = tree.ComputeTreeStats();
  EXPECT_GT(stats.nodes, 0u);
  const double worst_avl =
      1.44 * std::log2(static_cast<double>(stats.nodes)) + 2;
  EXPECT_LE(static_cast<double>(stats.height), worst_avl);
  EXPECT_GT(stats.node_fill, 0.4);
  EXPECT_LE(stats.node_fill, 1.0);
}

}  // namespace
}  // namespace memagg
