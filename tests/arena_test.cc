// Lifetime and accounting tests for the arena-backed memory layer
// (src/mem/): chunked bump Arena, ArenaAllocator size-class freelists,
// PoolAllocator node recycling, and per-worker arena isolation under the
// morsel executor. Runs under the ASan leak-check job like every other
// test, so wholesale release paths double as leak regression tests.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <utility>
#include <vector>

#include "exec/executor.h"
#include "hash/chaining_map.h"
#include "mem/allocator.h"
#include "mem/arena.h"
#include "mem/worker_arenas.h"
#include "tree/art.h"

namespace memagg {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  std::vector<std::pair<char*, size_t>> blocks;
  for (size_t bytes : {1u, 7u, 8u, 24u, 100u, 4000u, 70000u}) {
    void* p = arena.Allocate(bytes, 16);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u);
    std::memset(p, 0xAB, bytes);  // ASan catches any overlap/overflow.
    blocks.push_back({static_cast<char*>(p), bytes});
  }
  for (size_t i = 0; i < blocks.size(); ++i) {
    for (size_t j = i + 1; j < blocks.size(); ++j) {
      const bool disjoint = blocks[i].first + blocks[i].second <=
                                blocks[j].first ||
                            blocks[j].first + blocks[j].second <=
                                blocks[i].first;
      EXPECT_TRUE(disjoint) << "blocks " << i << " and " << j << " overlap";
    }
  }
  EXPECT_GE(arena.bytes_used(), 1u + 7 + 8 + 24 + 100 + 4000 + 70000);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(ArenaTest, ChunksGrowGeometricallyAndOversizedRequestsFit) {
  Arena arena;
  // Force several chunk boundaries.
  for (int i = 0; i < 1000; ++i) arena.Allocate(1024, 8);
  const AllocStats stats = arena.Stats();
  EXPECT_GT(stats.chunks, 1u);
  EXPECT_GE(stats.bytes_reserved, stats.bytes_used);
  // A request larger than the max chunk size still succeeds (exact-fit).
  void* big = arena.Allocate(4u << 20, 8);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0, 4u << 20);
}

TEST(ArenaTest, ResetReusesMemoryAcrossQueries) {
  Arena arena;
  for (int i = 0; i < 100; ++i) arena.Allocate(512, 8);
  const uint64_t reserved_before = arena.bytes_reserved();
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  // The newest chunk is retained, so a same-shaped second query allocates
  // from memory already reserved.
  EXPECT_GT(arena.bytes_reserved(), 0u);
  EXPECT_LE(arena.bytes_reserved(), reserved_before);
  const uint64_t retained = arena.bytes_reserved();
  void* p = arena.Allocate(512, 8);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(arena.bytes_reserved(), retained);  // No new chunk needed.
  EXPECT_EQ(arena.resets(), 1u);
}

TEST(ArenaAllocatorTest, FreelistRecyclesSameSizeClass) {
  ArenaAllocator alloc;
  void* a = alloc.AllocateBytes(64, 8);
  alloc.DeallocateBytes(a, 64);
  void* b = alloc.AllocateBytes(64, 8);
  EXPECT_EQ(a, b);  // Same size class -> block comes back off the freelist.
  EXPECT_EQ(alloc.Stats().freelist_reuses, 1u);
}

// A value type that counts destructor runs, for exactly-once semantics.
struct DtorCounter {
  static int destroyed;
  std::vector<uint64_t> payload{1, 2, 3};  // Non-trivially destructible.
  ~DtorCounter() { ++destroyed; }
};
int DtorCounter::destroyed = 0;

TEST(ArenaAllocatorTest, NonTrivialValueDestroyedExactlyOnce) {
  DtorCounter::destroyed = 0;
  {
    ChainingMap<DtorCounter> map(16);
    map.GetOrInsert(1);
    map.GetOrInsert(2);
    map.GetOrInsert(1);  // Existing group: no new value.
    EXPECT_EQ(map.size(), 2u);
  }
  // The map's destructor must run each Value destructor exactly once even
  // though the node memory itself is released wholesale by the arena.
  EXPECT_EQ(DtorCounter::destroyed, 2);
}

TEST(ArenaAllocatorTest, TrivialValuesSkipDestructorWalkAndDoNotLeak) {
  // With a trivially-destructible value the destructor does no node walk at
  // all; ASan verifies the arena still releases every chunk.
  ChainingMap<uint64_t> map(4);  // Undersized: forces growth + many nodes.
  for (uint64_t k = 0; k < 10000; ++k) map.GetOrInsert(k) = k;
  EXPECT_EQ(map.size(), 10000u);
  const AllocStats stats = map.AllocatorStats();
  EXPECT_GT(stats.chunks, 0u);
  EXPECT_GT(stats.bytes_used, 0u);
}

TEST(ArenaAllocatorTest, GlobalNewAblationBehavesIdentically) {
  ChainingMap<uint64_t> arena_map(64);
  ChainingMapGlobalNew<uint64_t> global_map(64);
  for (uint64_t k = 0; k < 5000; ++k) {
    arena_map.GetOrInsert(k % 977) += 1;
    global_map.GetOrInsert(k % 977) += 1;
  }
  EXPECT_EQ(arena_map.size(), global_map.size());
  arena_map.ForEach([&global_map](uint64_t key, const uint64_t& value) {
    const uint64_t* other = global_map.Find(key);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(*other, value);
  });
  // The ablation allocator reports no arena activity.
  EXPECT_EQ(global_map.AllocatorStats().chunks, 0u);
  EXPECT_GT(arena_map.AllocatorStats().chunks, 0u);
}

TEST(ArtTreeArenaTest, TreeNodesLiveInArena) {
  ArtTree<uint64_t> tree;
  for (uint64_t k = 0; k < 4096; ++k) tree.GetOrInsert(k * 7919) = k;
  EXPECT_EQ(tree.size(), 4096u);
  const AllocStats stats = tree.AllocatorStats();
  EXPECT_GT(stats.chunks, 0u);
  EXPECT_GT(stats.bytes_used, 0u);
}

TEST(WorkerArenasTest, WorkersAllocateIsolatedUnderParallelFor) {
  constexpr int kWorkers = 4;
  WorkerArenas arenas(kWorkers);
  ExecutionContext ctx(kWorkers);
  ctx.arenas = &arenas;
  // Each worker bump-allocates from its own arena; blocks from different
  // workers must never alias even though allocations race in time.
  std::vector<std::set<void*>> blocks(kWorkers);
  Executor(ctx).ParallelFor(
      4096,
      [&](const Morsel& m) {
        for (size_t i = m.begin; i < m.end; ++i) {
          blocks[m.worker].insert(arenas.ForWorker(m.worker).Allocate(32, 8));
        }
      },
      /*grain=*/64);
  std::set<void*> all;
  size_t total = 0;
  for (const auto& worker_blocks : blocks) {
    total += worker_blocks.size();
    all.insert(worker_blocks.begin(), worker_blocks.end());
  }
  EXPECT_EQ(total, 4096u);
  EXPECT_EQ(all.size(), total) << "arenas handed out an aliased block";
  EXPECT_GE(arenas.Stats().bytes_used, 4096u * 32);
  // Wholesale reuse across queries: one Reset rewinds every worker arena.
  arenas.ResetAll();
  EXPECT_EQ(arenas.Stats().bytes_used, 0u);
}

TEST(WorkerArenasTest, LeaseCountsTrackHoldersAndMovesTransfer) {
  WorkerArenas arenas(2);
  EXPECT_EQ(arenas.active_leases(), 0);
  {
    WorkerArenas::Lease outer = arenas.Acquire();
    EXPECT_EQ(arenas.active_leases(), 1);
    WorkerArenas::Lease moved = std::move(outer);
    EXPECT_EQ(arenas.active_leases(), 1);  // Transfer, not a second hold.
    {
      WorkerArenas::Lease inner = arenas.Acquire();
      EXPECT_EQ(arenas.active_leases(), 2);
    }
    EXPECT_EQ(arenas.active_leases(), 1);
    moved.Release();
    EXPECT_EQ(arenas.active_leases(), 0);
    arenas.ResetAll();  // Quiescent again: reset is allowed.
  }
}

TEST(WorkerArenasDeathTest, ResetAllWithActiveLeaseAborts) {
  WorkerArenas arenas(2);
  const WorkerArenas::Lease lease = arenas.Acquire();
  // Nodes allocated from the pool are still reachable through whoever holds
  // the lease, so a wholesale rewind must trip the quiescence check.
  EXPECT_DEATH(arenas.ResetAll(), "leases are active");
}

TEST(PoolAllocatorTest, DeletedNodesAreRecycled) {
  struct Node {
    uint64_t key;
    Node* next;
  };
  PoolAllocator<Node> pool;
  Node* a = pool.New(Node{1, nullptr});
  pool.Delete(a);
  Node* b = pool.New(Node{2, nullptr});
  EXPECT_EQ(static_cast<void*>(a), static_cast<void*>(b));
  EXPECT_EQ(pool.Stats().freelist_reuses, 1u);
}

}  // namespace
}  // namespace memagg
