// Tests for the lock-rank deadlock enforcer (util/lock_rank.h).
//
// The death tests exercise each violation class the enforcer checks: rank
// inversion, same-rank nesting outside a sanctioned protocol, same-rank
// address-order breaches, re-acquiring a held lock, releasing an unheld
// lock, and blocking/cooperative waits entered with a lock held. The stress
// tests run the real concurrent structures under enforcement (and under
// TSan in the tsan CI job) to prove the repo-wide rank assignment holds on
// hot paths, not just in the unit fixtures.
//
// Without -DMEMAGG_LOCK_RANK=ON the enforcer compiles to no-ops; the death
// tests would not die, so they are compiled out. The positive tests (legal
// orders complete, structures work) still run and must pass in both modes.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/task_scheduler.h"
#include "exec/thread_pool.h"
#include "hash/cuckoo_map.h"
#include "hash/striped_map.h"
#include "hash/linear_probing_map.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/spinlock.h"

namespace memagg {
namespace {

#if defined(MEMAGG_LOCK_RANK)

using LockRankDeathTest = ::testing::Test;

TEST(LockRankDeathTest, RankInversionDies) {
  Mutex low(LockRank::kTaskGroup);
  Mutex high(LockRank::kMapStripe);
  EXPECT_DEATH(
      {
        MutexLock hold_high(high);
        MutexLock hold_low(low);  // 500 held, acquiring 200: inversion.
      },
      "rank inversion");
}

TEST(LockRankDeathTest, AscendingRanksAreLegal) {
  Mutex low(LockRank::kTaskGroup);
  Mutex high(LockRank::kMapStripe);
  {
    MutexLock hold_low(low);
    MutexLock hold_high(high);
    EXPECT_EQ(lockrank::HeldCount(), 2);
  }
  EXPECT_EQ(lockrank::HeldCount(), 0);
}

TEST(LockRankDeathTest, SameRankWithoutProtocolDies) {
  // kMapStripe has no same-rank sanction: StripedMap holds one stripe at a
  // time, so two at once is a latent ABBA deadlock between two threads.
  Mutex a(LockRank::kMapStripe);
  Mutex b(LockRank::kMapStripe);
  EXPECT_DEATH(
      {
        MutexLock hold_a(a);
        MutexLock hold_b(b);
      },
      "same-rank");
}

TEST(LockRankDeathTest, SameRankAddressOrderedIsLegalAscending) {
  // kCuckooStripe models the StripePair protocol: several locks of the rank
  // may be held, strictly ascending by address.
  SpinLock locks[2];
  locks[0].SetRank(LockRank::kCuckooStripe);
  locks[1].SetRank(LockRank::kCuckooStripe);
  locks[0].lock();
  locks[1].lock();
  EXPECT_EQ(lockrank::HeldCount(), 2);
  locks[1].unlock();
  locks[0].unlock();
  EXPECT_EQ(lockrank::HeldCount(), 0);
}

TEST(LockRankDeathTest, SameRankAddressOrderBreachDies) {
  SpinLock locks[2];
  locks[0].SetRank(LockRank::kCuckooStripe);
  locks[1].SetRank(LockRank::kCuckooStripe);
  EXPECT_DEATH(
      {
        locks[1].lock();
        locks[0].lock();  // Descending address within the same rank.
      },
      "address order");
}

TEST(LockRankDeathTest, ReacquiringHeldLockDies) {
  // Self-deadlock on any non-recursive primitive; checked even for
  // unranked locks, *before* the real lock call would hang.
  Mutex mu;  // kUnranked.
  EXPECT_DEATH(
      {
        MutexLock outer(mu);
        mu.Lock();
      },
      "re-acquiring");
}

TEST(LockRankDeathTest, ReleasingUnheldLockDies) {
  Mutex mu;
  EXPECT_DEATH(mu.Unlock(), "does not hold");
}

TEST(LockRankDeathTest, TaskGroupWaitWhileHoldingLockDies) {
  // TaskGroup::Wait drains tasks on the calling thread; entering it with
  // any lock held deadlocks as soon as a drained task wants that lock.
  Mutex mu(LockRank::kAggregateState);
  EXPECT_DEATH(
      {
        TaskGroup group(1);
        group.Submit([] {});
        MutexLock hold(mu);
        group.Wait();
      },
      "TaskGroup::Wait");
}

TEST(LockRankDeathTest, ThreadPoolWaitWhileHoldingLockDies) {
  Mutex mu;  // Even unranked locks make a blocking wait a deadlock risk.
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        MutexLock hold(mu);
        pool.Wait();
      },
      "ThreadPool::Wait");
}

TEST(LockRankDeathTest, TryLockIsExemptFromOrdering) {
  // try_lock can't block, so probing "backwards" is legal (failed probes
  // simply return); but the acquisition is still recorded for release and
  // re-acquisition tracking.
  Mutex low(LockRank::kTaskGroup);
  Mutex high(LockRank::kMapStripe);
  MutexLock hold_high(high);
  ASSERT_TRUE(low.TryLock());
  EXPECT_EQ(lockrank::HeldCount(), 2);
  low.Unlock();
  EXPECT_EQ(lockrank::HeldCount(), 1);
}

TEST(LockRankDeathTest, UnrankedNestingIsUnordered) {
  // Default-constructed locks (tests, scratch code) opt out of ordering.
  Mutex a;
  Mutex b;
  MutexLock hold_b(b);
  MutexLock hold_a(a);
  EXPECT_EQ(lockrank::HeldCount(), 2);
}

TEST(LockRankDeathTest, RankedUnderUnrankedIsLegal) {
  // An unranked lock on the stack must not constrain ranked acquisitions.
  Mutex unranked;
  Mutex ranked(LockRank::kTaskGroup);
  MutexLock hold_unranked(unranked);
  MutexLock hold_ranked(ranked);
  EXPECT_EQ(lockrank::HeldCount(), 2);
}

TEST(LockRankDeathTest, HeldStackIsPerThread) {
  // A lock held by one thread must not order acquisitions on another.
  Mutex low(LockRank::kTaskGroup);
  Mutex high(LockRank::kMapStripe);
  MutexLock hold_high(high);
  std::thread other([&low] {
    MutexLock hold_low(low);  // Would invert if stacks were shared.
    EXPECT_EQ(lockrank::HeldCount(), 1);
  });
  other.join();
}

#endif  // MEMAGG_LOCK_RANK

// ---------------------------------------------------------------------------
// Positive coverage: the real structures run clean under enforcement. These
// run in every build mode (without the flag they are plain stress tests) and
// under TSan in CI, where the enforcer's TLS bookkeeping is itself checked
// for races against the structures' locking.

TEST(LockRankStressTest, CuckooMapConcurrentGrowthHoldsRankOrder) {
  // Drives the deepest nesting in the repo — resize (shared) -> eviction ->
  // stripe pairs — including Grow's writer acquisitions, under enforcement.
  CuckooMap<uint64_t> map(16);  // Tiny: forces MakeSpace + Grow.
  constexpr int kThreads = 4;
  constexpr uint64_t kKeysPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (uint64_t i = 0; i < kKeysPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>(t) * kKeysPerThread + i + 1;
        map.Upsert(key, [](uint64_t& v) { ++v; });
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(map.size(), kThreads * kKeysPerThread);
}

TEST(LockRankStressTest, StripedMapUpsertsHoldRankOrder) {
  StripedMap<LinearProbingMap<uint64_t>> map(/*expected_size=*/1024,
                                             /*num_stripes=*/8);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map] {
      for (uint64_t key = 1; key <= 20000; ++key) {
        map.Upsert(key, [](uint64_t& v) { ++v; });
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(map.size(), 20000u);
}

TEST(LockRankStressTest, SchedulerWaitFromCleanStackCompletes) {
  // TaskGroup::Wait's AssertNoneHeld must pass on the normal path, including
  // nested groups driven from inside pool tasks (where the outer group's
  // mutex is dropped around the task body).
  ExecutionContext ctx;
  ctx.num_threads = 4;
  Executor exec(ctx);
  std::atomic<uint64_t> sum{0};
  exec.ParallelFor(100000, [&sum](const Morsel& m) {
    uint64_t local = 0;
    for (size_t i = m.begin; i < m.end; ++i) local += i;
    sum.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 100000ull * 99999ull / 2);
}

}  // namespace
}  // namespace memagg
